// The §5 case study end to end: Figure 7's code listings (Clang vs Chrome
// matmul) followed by Figure 8's size sweep.
package main

import (
	"fmt"
	"log"

	"repro/internal/spec"
)

func main() {
	listings, err := spec.Fig7()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(listings)

	h := spec.NewHarness()
	sweep, err := h.Fig8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sweep)
}
