// Quickstart: compile one program for every engine, run it on the simulated
// CPU, and compare the hardware counters — the reproduction's core loop in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/toolchain"
)

const program = `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() {
  print_int(fib(24));
  print_nl();
  return 0;
}`

func main() {
	engines := []*codegen.EngineConfig{
		codegen.Native(),  // Clang-like: graph colouring, fused addressing
		codegen.Firefox(), // SpiderMonkey: linear scan + safety checks
		codegen.Chrome(),  // V8: fewer registers, loop-entry jumps, padding
	}

	fmt.Printf("%-10s %8s %12s %10s %10s %10s\n",
		"engine", "time", "instructions", "loads", "branches", "L1i-miss")
	var nativeMs float64
	for _, cfg := range engines {
		res, err := toolchain.Run(program, cfg, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Proc.Inst.Counters
		ms := c.Seconds() * 1000
		if cfg.Name == "native" {
			nativeMs = ms
		}
		fmt.Printf("%-10s %6.2fms %12d %10d %10d %10d   (%.2fx native)\n",
			cfg.Name, ms, c.Instructions, c.Loads, c.Branches, c.L1IMisses, ms/nativeMs)
	}
}
