// Unix processes in the browser: a parent program spawns a child, they talk
// through a pipe, and results land in the shared BrowserFS — the Browsix
// capabilities the paper's harness is built on (Figure 2).
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/kernel"
	"repro/internal/toolchain"
)

const childSrc = `
int main(int argc, char **argv) {
  /* Reads words from stdin, writes their lengths to /tmp/lengths.txt. */
  char buf[256];
  int n = sys_read(0, buf, 255);
  buf[n] = 0;
  int fd = sys_open("/tmp/lengths.txt", 64 | 512 | 1, 0);
  int i = 0;
  while (i < n) {
    int start = i;
    while (i < n && buf[i] != ' ' && buf[i] != '\n') { i++; }
    if (i > start) { fd_put_int(fd, i - start); sys_write(fd, "\n", 1); }
    while (i < n && (buf[i] == ' ' || buf[i] == '\n')) { i++; }
  }
  sys_close(fd);
  return 0;
}`

const parentSrc = `
int main(int argc, char **argv) {
  int fds[2];
  sys_pipe(fds);
  /* Redirect the child's stdin to the pipe's read end. */
  int savedIn = 0;
  sys_dup2(fds[0], 0);
  char *args[2];
  args[0] = "child";
  args[1] = (char*)0;
  int pid = sys_spawn("/bin/child", args);
  if (pid < 0) { return 1; }
  sys_write(fds[1], "unix in your browser tab\n", 25);
  sys_close(fds[1]);
  int code = sys_wait(pid);
  print_str("child exited with ");
  print_int(code);
  print_nl();
  return code;
}`

func main() {
	cfg := codegen.Firefox()
	parent, err := toolchain.Build(parentSrc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	child, err := toolchain.Build(childSrc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	k := kernel.New(nil)
	if err := k.FS.MkdirAll("/tmp"); err != nil {
		log.Fatal(err)
	}
	k.RegisterBinary("/bin/parent", parent)
	k.RegisterBinary("/bin/child", child)

	p, err := k.Spawn(nil, "/bin/parent", []string{"parent"}, [3]*kernel.FD{})
	if err != nil {
		log.Fatal(err)
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("console: %q (exit %d)\n", string(k.Console), code)

	lengths, err := k.FS.ReadFile("/tmp/lengths.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/tmp/lengths.txt:\n%s", lengths)
	fmt.Printf("parent spent %.2f%% of its time in Browsix syscalls\n", p.BrowsixShare()*100)
}
