package repro_test

// One benchmark per table and figure in the paper's evaluation. Each runs
// the corresponding experiment and reports the paper's headline aggregate as
// custom benchmark metrics (ratios vs native, counts, shares). Run with:
//
//	go test -bench . -benchtime 1x -v
//
// The suites are deterministic; results are memoized within a run.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/browserfs"
	"repro/internal/codegen"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/toolchain"
	"repro/internal/workloads"
)

var (
	harness   = spec.NewHarness()
	specOnce  sync.Once
	polyOnce  sync.Once
	asmOnce   sync.Once
	specSuite *spec.SuiteResults
	polySuite *spec.SuiteResults
	asmSuite  *spec.SuiteResults
)

func specResults(b *testing.B) *spec.SuiteResults {
	specOnce.Do(func() {
		r, err := harness.RunSPEC()
		if err != nil {
			b.Fatal(err)
		}
		specSuite = r
	})
	if specSuite == nil {
		b.Skip("earlier suite failure")
	}
	return specSuite
}

func polyResults(b *testing.B) *spec.SuiteResults {
	polyOnce.Do(func() {
		r, err := harness.RunPolybench()
		if err != nil {
			b.Fatal(err)
		}
		polySuite = r
	})
	if polySuite == nil {
		b.Skip("earlier suite failure")
	}
	return polySuite
}

func asmResults(b *testing.B) *spec.SuiteResults {
	asmOnce.Do(func() {
		r, err := harness.RunAsmJS()
		if err != nil {
			b.Fatal(err)
		}
		asmSuite = r
	})
	if asmSuite == nil {
		b.Skip("earlier suite failure")
	}
	return asmSuite
}

// BenchmarkFig1_PolybenchThresholds counts kernels within 1.1x/1.5x/2x/2.5x
// of native (paper: 13 of 24 within 1.1x in 2019).
func BenchmarkFig1_PolybenchThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := polyResults(b)
		counts := map[float64]int{}
		for r := range s.R {
			best := stats.Min([]float64{
				s.R[r][1].Seconds / s.R[r][0].Seconds,
				s.R[r][2].Seconds / s.R[r][0].Seconds,
			})
			for _, th := range []float64{1.1, 1.5, 2.0, 2.5} {
				if best < th {
					counts[th]++
				}
			}
		}
		b.ReportMetric(float64(counts[1.1]), "within1.1x")
		b.ReportMetric(float64(counts[1.5]), "within1.5x")
		b.ReportMetric(float64(counts[2.0]), "within2x")
		b.ReportMetric(float64(counts[2.5]), "within2.5x")
		b.Log("\n" + spec.Fig1(s))
	}
}

// BenchmarkFig3a_PolybenchRelative reports Polybench wasm-vs-native geomeans
// (paper: near parity, far below the SPEC gap).
func BenchmarkFig3a_PolybenchRelative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := polyResults(b)
		b.ReportMetric(stats.Geomean(s.Relative(1)), "chrome-x")
		b.ReportMetric(stats.Geomean(s.Relative(2)), "firefox-x")
		b.Log("\n" + spec.Fig3(s, "Figure 3a — PolybenchC"))
	}
}

// BenchmarkFig3b_SPECRelative reports the headline result (paper: 1.55x
// Chrome, 1.45x Firefox geomean).
func BenchmarkFig3b_SPECRelative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := specResults(b)
		b.ReportMetric(stats.Geomean(s.Relative(1)), "chrome-x")
		b.ReportMetric(stats.Geomean(s.Relative(2)), "firefox-x")
		b.Log("\n" + spec.Fig3(s, "Figure 3b — SPEC CPU"))
	}
}

// BenchmarkTable1_SPECTimes reports geomean and median slowdowns (paper:
// geomean 1.55x/1.45x, median 1.53x/1.54x).
func BenchmarkTable1_SPECTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := specResults(b)
		b.ReportMetric(stats.Geomean(s.Relative(1)), "chrome-geomean-x")
		b.ReportMetric(stats.Median(s.Relative(1)), "chrome-median-x")
		b.ReportMetric(stats.Geomean(s.Relative(2)), "firefox-geomean-x")
		b.ReportMetric(stats.Median(s.Relative(2)), "firefox-median-x")
		b.Log("\n" + spec.Table1(s))
	}
}

// BenchmarkTable2_CompileTimes reports the Clang/Chrome compile-time ratio
// (paper: Clang is orders of magnitude slower than the wasm JIT).
func BenchmarkTable2_CompileTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, w := range workloads.SPECCPU() {
			nat, err := toolchain.Build(w.Source, codegen.Native())
			if err != nil {
				b.Fatal(err)
			}
			chr, err := toolchain.Build(w.Source, codegen.Chrome())
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, nat.CompileTime.Seconds()/chr.CompileTime.Seconds())
		}
		b.ReportMetric(stats.Geomean(ratios), "clang/chrome-x")
		s, err := harness.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + s)
	}
}

// BenchmarkFig4_BrowsixOverhead reports the mean %-time-in-Browsix (paper:
// mean 0.2%, max 1.2%).
func BenchmarkFig4_BrowsixOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := specResults(b)
		var shares []float64
		for r := range s.R {
			shares = append(shares, s.R[r][2].BrowsixShare*100)
		}
		b.ReportMetric(stats.Mean(shares), "mean-%")
		b.ReportMetric(stats.Max(shares), "max-%")
		b.Log("\n" + spec.Fig4(s))
	}
}

// BenchmarkFig5_AsmJS reports wasm's speedup over asm.js per browser
// (paper: 1.54x Chrome, 1.39x Firefox).
func BenchmarkFig5_AsmJS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := specResults(b)
		a := asmResults(b)
		var rc, rf []float64
		for r := range w.R {
			rc = append(rc, a.R[r][0].Seconds/w.R[r][1].Seconds)
			rf = append(rf, a.R[r][1].Seconds/w.R[r][2].Seconds)
		}
		b.ReportMetric(stats.Geomean(rc), "chrome-x")
		b.ReportMetric(stats.Geomean(rf), "firefox-x")
		b.Log("\n" + spec.Fig5(w, a))
	}
}

// BenchmarkFig6_AsmJSBest reports best-asm.js vs best-wasm (paper: 1.3x).
func BenchmarkFig6_AsmJSBest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := specResults(b)
		a := asmResults(b)
		var ratios []float64
		for r := range w.R {
			bw := stats.Min([]float64{w.R[r][1].Seconds, w.R[r][2].Seconds})
			ba := stats.Min([]float64{a.R[r][0].Seconds, a.R[r][1].Seconds})
			ratios = append(ratios, ba/bw)
		}
		b.ReportMetric(stats.Geomean(ratios), "best-x")
		b.Log("\n" + spec.Fig6(w, a))
	}
}

// BenchmarkFig7_MatmulCodegen reports the instruction-count gap of the §5
// case study (paper: 28 Clang instructions vs 53 for Chrome).
func BenchmarkFig7_MatmulCodegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := spec.MatmulSource(16, 18, 19)
		nat, err := toolchain.Build(src, codegen.Native())
		if err != nil {
			b.Fatal(err)
		}
		chr, err := toolchain.Build(src, codegen.Chrome())
		if err != nil {
			b.Fatal(err)
		}
		var ni, ci int
		for _, st := range nat.Stats {
			if st.Name == "matmul" {
				ni = st.Insts
			}
		}
		for _, st := range chr.Stats {
			if st.Name == "matmul" {
				ci = st.Insts
			}
		}
		b.ReportMetric(float64(ni), "native-insts")
		b.ReportMetric(float64(ci), "chrome-insts")
		listing, err := spec.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + listing)
	}
}

// BenchmarkFig8_MatmulSweep reports the matmul slowdown range across sizes
// (paper: always between 2x and 3.4x).
func BenchmarkFig8_MatmulSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var worst, best float64
		for _, sz := range spec.Fig8Sizes {
			w := &workloads.Workload{
				Name:   "matmul-sweep",
				Source: spec.MatmulSource(sz[0], sz[1], sz[2]),
			}
			w.Name = w.Name + "-" + string(rune('a'+sz[0]/10))
			rs, err := harness.RunSuite([]*workloads.Workload{w}, spec.EngineSet())
			if err != nil {
				b.Fatal(err)
			}
			r := rs[0][1].Seconds / rs[0][0].Seconds
			if best == 0 || r < best {
				best = r
			}
			if r > worst {
				worst = r
			}
		}
		b.ReportMetric(best, "chrome-min-x")
		b.ReportMetric(worst, "chrome-max-x")
		s, err := harness.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + s)
	}
}

// BenchmarkFig9_Counters reports the Table 4 geomeans of the Figure 9
// counter panels (paper: loads 2.02x/1.92x, stores 2.30x/2.16x, branches
// 1.75x/1.65x, cond 1.65x/1.62x, instructions 1.80x/1.75x, cycles
// 1.54x/1.38x).
func BenchmarkFig9_Counters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := specResults(b)
		b.ReportMetric(stats.Geomean(s.CounterRatios(perf.AllLoadsRetired, 1)), "loads-chrome-x")
		b.ReportMetric(stats.Geomean(s.CounterRatios(perf.AllStoresRetired, 1)), "stores-chrome-x")
		b.ReportMetric(stats.Geomean(s.CounterRatios(perf.BranchesRetired, 1)), "branches-chrome-x")
		b.ReportMetric(stats.Geomean(s.CounterRatios(perf.InstructionsRetired, 1)), "insts-chrome-x")
		b.ReportMetric(stats.Geomean(s.CounterRatios(perf.CPUCycles, 1)), "cycles-chrome-x")
		b.Log("\n" + spec.Fig9(s))
		b.Log("\n" + spec.Table4(s))
	}
}

// BenchmarkFig10_ICache reports L1 icache miss inflation (paper: 2.83x
// Chrome / 2.04x Firefox geomean; sjeng 26.5x/18.6x).
func BenchmarkFig10_ICache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := specResults(b)
		c := s.CounterRatios(perf.L1ICacheLoadMisses, 1)
		f := s.CounterRatios(perf.L1ICacheLoadMisses, 2)
		b.ReportMetric(stats.Geomean(c), "chrome-x")
		b.ReportMetric(stats.Geomean(f), "firefox-x")
		for wi, w := range s.Workloads {
			if w.Name == "458.sjeng" {
				b.ReportMetric(c[wi], "sjeng-chrome-x")
			}
		}
		b.Log("\n" + spec.Fig10(s))
	}
}

// --- Ablations: isolate each §6 root cause on the matmul case study. ---

func ablationRun(b *testing.B, cfg *codegen.EngineConfig) float64 {
	w := &workloads.Workload{Name: "matmul-ablate-" + cfg.Name, Source: spec.MatmulSource(40, 44, 48)}
	res, err := toolchain.Run(w.Source, cfg, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res.Proc.Inst.Counters.Seconds()
}

// BenchmarkAblation_StackChecks measures the cost of per-function stack
// overflow checks (§6.2.2) by disabling them in the Chrome config.
func BenchmarkAblation_StackChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationRun(b, codegen.Chrome())
		cfg := codegen.Chrome()
		cfg.Name = "chrome-nostackchk"
		cfg.StackCheck = false
		off := ablationRun(b, cfg)
		b.ReportMetric(on/off, "with/without-x")
	}
}

// BenchmarkAblation_LoopRotation measures Clang's loop rotation (§5.1.3) by
// disabling it in the native config.
func BenchmarkAblation_LoopRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rotated := ablationRun(b, codegen.Native())
		cfg := codegen.Native()
		cfg.Name = "native-norotate"
		cfg.RotateLoops = false
		plain := ablationRun(b, cfg)
		b.ReportMetric(plain/rotated, "unrotated/rotated-x")
	}
}

// BenchmarkAblation_AddressingModes measures x86 addressing-mode fusion
// (§6.1.3) by disabling it in the native config.
func BenchmarkAblation_AddressingModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fused := ablationRun(b, codegen.Native())
		cfg := codegen.Native()
		cfg.Name = "native-nofuse"
		cfg.FuseAddressing = false
		cfg.FuseRMW = false
		plain := ablationRun(b, cfg)
		b.ReportMetric(plain/fused, "unfused/fused-x")
	}
}

// BenchmarkAblation_IndirectChecks measures call_indirect checks (§6.2.3)
// on the dispatch-heavy povray workload.
func BenchmarkAblation_IndirectChecks(b *testing.B) {
	var povray *workloads.Workload
	for _, w := range workloads.SPECCPU() {
		if w.Name == "453.povray" {
			povray = w
		}
	}
	for i := 0; i < b.N; i++ {
		run := func(cfg *codegen.EngineConfig) float64 {
			res, err := toolchain.Run(povray.Source, cfg, nil, povray.Files)
			if err != nil {
				b.Fatal(err)
			}
			return res.Proc.Inst.Counters.Seconds()
		}
		on := run(codegen.Chrome())
		cfg := codegen.Chrome()
		cfg.Name = "chrome-noindchk"
		cfg.IndirectCheck = false
		off := run(cfg)
		b.ReportMetric(on/off, "with/without-x")
	}
}

// BenchmarkAblation_BrowserFSAppend reproduces the §2 BrowserFS fix: the
// original grow-exactly-on-append policy vs the >=4 KiB growth policy
// (paper: 464.h264ref's kernel time went from 25s to under 1.5s).
func BenchmarkAblation_BrowserFSAppend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measure := func(policy browserfs.GrowthPolicy) (uint64, uint64) {
			fs := browserfs.NewWithPolicy(policy)
			ino, err := fs.Create("/out.dat")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 64)
			var off int64
			for k := 0; k < 20000; k++ {
				ino.WriteAt(buf, off, policy)
				off += int64(len(buf))
			}
			return ino.GrowCopies, ino.GrowBytes
		}
		copies1, bytes1 := measure(browserfs.GrowExact)
		copies2, bytes2 := measure(browserfs.GrowChunked)
		b.ReportMetric(float64(bytes1)/float64(bytes2+1), "bytes-copied-x")
		b.ReportMetric(float64(copies1), "exact-reallocs")
		b.ReportMetric(float64(copies2), "chunked-reallocs")
		_ = bytes1
	}
}

// BenchmarkSimThroughput measures raw simulator speed — the engine that
// produces every number in this file — as simulated instructions retired
// per wall-clock second. The sim-inst/s metric is the headline for the
// pre-decoded micro-op engine and tracks the speedup trajectory across PRs.
func BenchmarkSimThroughput(b *testing.B) {
	for _, cfg := range []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()} {
		b.Run(cfg.Name, func(b *testing.B) {
			benchSimThroughput(b, cfg, "sim-inst/s")
		})
	}
	// Fidelity-tier variants on the native config: the functional fast path
	// (sim-func-inst/s, the ≥5x target) and the sampled tier at default
	// windows (sim-sampled-inst/s, in between).
	b.Run("native-functional", func(b *testing.B) {
		benchSimThroughput(b, codegen.Native().ApplyFidelity(codegen.FidelityFunctional, codegen.SampleWindows{}), "sim-func-inst/s")
	})
	b.Run("native-sampled", func(b *testing.B) {
		benchSimThroughput(b, codegen.Native().ApplyFidelity(codegen.FidelitySampled, codegen.SampleWindows{}), "sim-sampled-inst/s")
	})
}

func benchSimThroughput(b *testing.B, cfg *codegen.EngineConfig, metric string) {
	w := workloads.Polybench()[0] // 2mm: FP matrix kernel
	cm, err := toolchain.Build(w.Source, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := toolchain.RunCompiled(cm, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Proc.Inst.Counters.Instructions
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(insts)/secs, metric)
	}
}

// BenchmarkSpawnAllocs measures per-process allocation on the spawn path:
// build once through the shared cache, then spawn/run/tear down repeatedly.
// With the machine-memory recycle pool, allocations and bytes per spawn stay
// flat instead of scaling with process count (each un-pooled spawn used to
// allocate the full linear/globals/table/stack image).
func BenchmarkSpawnAllocs(b *testing.B) {
	const src = `
int main() {
  int acc; int j;
  acc = 0;
  for (j = 0; j < 1000; j++) { acc += j; }
  print_int(acc);
  print_nl();
  return 0;
}`
	ctx := context.Background()
	cm, err := pipeline.Compile(ctx, &pipeline.Request{Module: src, Config: codegen.Chrome()})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pools.
	if _, err := pipeline.Execute(ctx, cm, &pipeline.Request{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Execute(ctx, cm, &pipeline.Request{})
		if err != nil {
			b.Fatal(err)
		}
		if res.ExitCode != 0 {
			b.Fatalf("exit %d", res.ExitCode)
		}
	}
}

// BenchmarkCompile_Chrome measures raw module compile throughput for the
// browser backend (the "fast to compile" design goal).
func BenchmarkCompile_Chrome(b *testing.B) {
	w := workloads.SPECCPU()[0]
	m, err := toolchain.BuildWasm(w.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile(m, codegen.Chrome()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile_Native measures the optimizing backend for comparison.
func BenchmarkCompile_Native(b *testing.B) {
	w := workloads.SPECCPU()[0]
	m, err := toolchain.BuildWasm(w.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile(m, codegen.Native()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileAllocs pins the cold-compile path's allocation behaviour
// and wall-clock: a full module compile (no build cache involved) per
// iteration, with the pooled compile arenas keeping allocs/op flat. ns/op is
// the cold-compile latency; allocs/op and B/op track the arena discipline —
// CI records all three into BENCH_ci.json so compile-path regressions show
// up in the trend report alongside sim-inst/s.
func BenchmarkCompileAllocs(b *testing.B) {
	for _, cfg := range []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()} {
		b.Run(cfg.Name, func(b *testing.B) {
			w := workloads.SPECCPU()[0]
			m, err := toolchain.BuildWasm(w.Source)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the scratch pool so the benchmark measures steady state.
			if _, err := codegen.Compile(m, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codegen.Compile(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
