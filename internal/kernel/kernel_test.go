package kernel

import (
	"testing"

	"repro/internal/browserfs"
)

func TestPipeRoundTrip(t *testing.T) {
	p := NewPipe()
	go func() {
		p.Write([]byte("hello "))
		p.Write([]byte("world"))
		p.CloseWrite()
	}()
	var got []byte
	buf := make([]byte, 4)
	for {
		n, err := p.Read(buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "hello world" {
		t.Errorf("got %q", got)
	}
}

func TestPipeBackpressure(t *testing.T) {
	p := NewPipe()
	p.Cap = 8
	done := make(chan struct{})
	go func() {
		p.Write(make([]byte, 64)) // must block until reader drains
		close(done)
	}()
	total := 0
	buf := make([]byte, 16)
	for total < 64 {
		n, _ := p.Read(buf)
		total += n
	}
	<-done
}

func TestBrokenPipe(t *testing.T) {
	p := NewPipe()
	p.CloseRead()
	if _, err := p.Write([]byte("x")); err == nil {
		t.Error("write to closed-read pipe should fail")
	}
}

func TestFDTable(t *testing.T) {
	k := New(browserfs.New())
	p := &Process{Kernel: k}
	f := NewConsoleFD(k)
	fd := p.installFD(f)
	if fd != 0 {
		t.Errorf("first fd = %d", fd)
	}
	if err := p.dup2(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.getFD(5); !ok {
		t.Error("dup2 target missing")
	}
	if err := p.closeFD(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.getFD(0); ok {
		t.Error("fd 0 should be closed")
	}
	if _, ok := p.getFD(5); !ok {
		t.Error("dup'ed fd must survive closing the original")
	}
}

func TestFileFDSeek(t *testing.T) {
	fs := browserfs.New()
	ino, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFileFD(fs, ino, false)
	fd.ref()
	fd.Write([]byte("abcdef"))
	if pos, _ := fd.Seek(2, 0); pos != 2 {
		t.Errorf("seek set: %d", pos)
	}
	b := make([]byte, 2)
	fd.Read(b)
	if string(b) != "cd" {
		t.Errorf("read after seek: %q", b)
	}
	if pos, _ := fd.Seek(-1, 2); pos != 5 {
		t.Errorf("seek end: %d", pos)
	}
}
