package kernel

import (
	"testing"

	"repro/internal/browserfs"
	"repro/internal/cpu"
	"repro/internal/x86"
)

// TestChargeCopyChunks pins the §2 chunking accounting: a transfer that
// exactly fills k aux buffers is k chunks and k-1 extra message round-trips
// (the historical off-by-one charged k+1 chunks at exact multiples).
func TestChargeCopyChunks(t *testing.T) {
	cost := func(n int) uint64 {
		p := &Process{Inst: &cpu.Instance{Machine: cpu.NewMachine(x86.NewProgram(), 1, 1)}}
		p.chargeCopy(n)
		return p.BrowsixCycles
	}
	bytesCost := func(n int) uint64 { return uint64(float64(n) * CopyCyclesPerByte) }
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 0},
		{1, bytesCost(1)},
		{AuxBufferSize - 1, bytesCost(AuxBufferSize - 1)},
		// Exactly one full buffer: one chunk, zero extra round-trips.
		{AuxBufferSize, bytesCost(AuxBufferSize)},
		{AuxBufferSize + 1, bytesCost(AuxBufferSize+1) + MsgRoundTripCycles},
		// Exactly two full buffers: two chunks, one extra round-trip.
		{2 * AuxBufferSize, bytesCost(2*AuxBufferSize) + MsgRoundTripCycles},
	}
	for _, c := range cases {
		if got := cost(c.n); got != c.want {
			t.Errorf("chargeCopy(%d): %d browsix cycles, want %d", c.n, got, c.want)
		}
	}
}

func TestPipeRoundTrip(t *testing.T) {
	p := NewPipe()
	go func() {
		p.Write([]byte("hello "))
		p.Write([]byte("world"))
		p.CloseWrite()
	}()
	var got []byte
	buf := make([]byte, 4)
	for {
		n, err := p.Read(buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "hello world" {
		t.Errorf("got %q", got)
	}
}

func TestPipeBackpressure(t *testing.T) {
	p := NewPipe()
	p.Cap = 8
	done := make(chan struct{})
	go func() {
		p.Write(make([]byte, 64)) // must block until reader drains
		close(done)
	}()
	total := 0
	buf := make([]byte, 16)
	for total < 64 {
		n, _ := p.Read(buf)
		total += n
	}
	<-done
}

func TestBrokenPipe(t *testing.T) {
	p := NewPipe()
	p.CloseRead()
	if _, err := p.Write([]byte("x")); err == nil {
		t.Error("write to closed-read pipe should fail")
	}
}

func TestFDTable(t *testing.T) {
	k := New(browserfs.New())
	p := &Process{Kernel: k}
	f := NewConsoleFD(k)
	fd := p.installFD(f)
	if fd != 0 {
		t.Errorf("first fd = %d", fd)
	}
	if err := p.dup2(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.getFD(5); !ok {
		t.Error("dup2 target missing")
	}
	if err := p.closeFD(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.getFD(0); ok {
		t.Error("fd 0 should be closed")
	}
	if _, ok := p.getFD(5); !ok {
		t.Error("dup'ed fd must survive closing the original")
	}
}

func TestFileFDSeek(t *testing.T) {
	fs := browserfs.New()
	ino, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFileFD(fs, ino, false)
	fd.ref()
	fd.Write([]byte("abcdef"))
	if pos, _ := fd.Seek(2, 0); pos != 2 {
		t.Errorf("seek set: %d", pos)
	}
	b := make([]byte, 2)
	fd.Read(b)
	if string(b) != "cd" {
		t.Errorf("read after seek: %q", b)
	}
	if pos, _ := fd.Seek(-1, 2); pos != 5 {
		t.Errorf("seek end: %d", pos)
	}
}
