// Package kernel implements Browsix-Wasm: an in-process Unix kernel that
// WebAssembly processes talk to through message-passing system calls.
// Processes stand in for WebWorkers (one goroutine each); the kernel's big
// lock models the single-threaded JavaScript main context; every syscall
// pays a message round-trip plus auxiliary-buffer copy costs, exactly the
// §2 transport the paper builds (64 MB aux SharedArrayBuffer, chunked
// transfers, data copied between process memory and the aux buffer).
package kernel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/browserfs"
	"repro/internal/codegen"
	"repro/internal/cpu"
	"repro/internal/sched"
)

// DefaultPollInterval is how many retired instructions a process executes
// between context-cancellation polls (~10 ms of simulated work at the
// engine's throughput): fine enough that cancellation preempts promptly,
// coarse enough to be invisible in the profile.
const DefaultPollInterval = 2 << 20

// AuxBufferSize is the per-process auxiliary shared buffer (§2: 64 MB).
const AuxBufferSize = 64 << 20

// Syscall cost model, in cycles at the simulated 3.5 GHz clock.
const (
	// MsgRoundTripCycles is the process↔kernel message cost (the paper:
	// "sending a message between process and kernel JavaScript contexts"
	// dominates the copies).
	MsgRoundTripCycles = 4200
	// CopyCyclesPerByte models memcpy bandwidth (~28 GB/s).
	CopyCyclesPerByte = 0.125
	// ServiceCycles is the in-kernel handling cost per syscall.
	ServiceCycles = 900
)

// auxPool recycles aux buffers across process lifetimes: the buffer is
// pure staging (every syscall writes the region it then reads), so a
// recycled buffer's stale contents are never observable, and reuse avoids
// zeroing 64 MB on every spawn.
var auxPool = sync.Pool{
	New: func() any {
		b := make([]byte, AuxBufferSize)
		return &b
	},
}

// ExitError unwinds a process on exit().
type ExitError struct{ Code int }

func (e *ExitError) Error() string { return fmt.Sprintf("exit(%d)", e.Code) }

// WatchdogError kills a process from the kernel's interrupt poll when a
// watchdog limit (Kernel.Deadline or Kernel.MaxInsts) is exceeded. The
// machine flushes its cycle accounting before the interrupt error unwinds,
// so the process's counters are an accurate partial result at the kill
// point — pipeline.ExecContext repackages them into a TimeoutError.
type WatchdogError struct {
	// Wall is true when the wall-clock deadline expired, false when the
	// retired-instruction limit was hit.
	Wall bool
	// Insts is the process's retired-instruction count at the kill.
	Insts uint64
}

func (e *WatchdogError) Error() string {
	if e.Wall {
		return fmt.Sprintf("kernel: watchdog: wall-clock deadline exceeded (%d insts retired)", e.Insts)
	}
	return fmt.Sprintf("kernel: watchdog: instruction limit exceeded (%d insts retired)", e.Insts)
}

// Kernel is one Browsix-Wasm kernel instance.
type Kernel struct {
	FS *browserfs.FS

	mu       sync.Mutex
	procs    map[int]*Process
	nextPID  int
	binaries map[string]*codegen.CompiledModule

	// Console accumulates writes to fds 1/2 that reach the "browser
	// console" (no redirection).
	Console []byte

	// Hooks are the Browsix-SPEC perf callbacks fired by processes'
	// perf_begin/perf_end runtime XHRs (Figure 2 steps 4 and 6).
	Hooks PerfHooks

	// Ctx, when non-nil, is polled by every process this kernel spawns
	// (every PollInterval retired instructions): cancelling it preempts
	// in-flight simulations, not just queued ones. Set it before the first
	// Spawn.
	Ctx context.Context

	// PollInterval overrides DefaultPollInterval (retired instructions
	// between polls).
	PollInterval uint64

	// Deadline, when nonzero, is the watchdog's wall-clock limit: every
	// process this kernel spawns checks it at its interrupt polls and dies
	// with a WatchdogError once it passes. The deadline is shared by the
	// whole process tree (one job = one kernel = one deadline), so a parent
	// blocked in sys_wait trips its own poll after its hung child is
	// killed. Set it before the first Spawn.
	Deadline time.Time

	// MaxInsts, when nonzero, kills any single process that retires more
	// than this many instructions (checked at interrupt polls, so overshoot
	// is at most one poll interval). Per process, not per tree: it bounds a
	// runaway loop, while Deadline bounds a forking tree.
	MaxInsts uint64

	// Legacy selects the pre-predecode instruction-at-a-time dispatch loop
	// for every process this kernel spawns. Architectural behavior and perf
	// counters are identical to the default micro-op engine (that is pinned
	// by the differential suites); the knob exists so oracles can run the
	// same compiled code under both dispatchers. Set it before the first
	// Spawn.
	Legacy bool
}

// New creates a kernel over the given filesystem.
func New(fs *browserfs.FS) *Kernel {
	if fs == nil {
		fs = browserfs.New()
	}
	return &Kernel{
		FS:       fs,
		procs:    map[int]*Process{},
		nextPID:  1,
		binaries: map[string]*codegen.CompiledModule{},
	}
}

// RegisterBinary installs a compiled module as an executable at path.
func (k *Kernel) RegisterBinary(path string, cm *codegen.CompiledModule) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.binaries[path] = cm
}

// LookupBinary returns the executable registered at path.
func (k *Kernel) LookupBinary(path string) (*codegen.CompiledModule, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	cm, ok := k.binaries[path]
	return cm, ok
}

// Process is one Browsix-Wasm process: a WebWorker running a compiled wasm
// module with its own linear memory and a 64 MB aux buffer shared with the
// kernel.
type Process struct {
	PID    int
	Kernel *Kernel
	Inst   *cpu.Instance
	Args   []string
	// Path is the binary the process was spawned from.
	Path string

	fdmu sync.Mutex
	fds  []*FD

	aux []byte

	// BrowsixCycles accumulates simulated time spent in the kernel and the
	// syscall transport on behalf of this process (Figure 4's numerator).
	BrowsixCycles uint64
	// Syscalls counts syscall invocations.
	Syscalls uint64

	done     chan struct{}
	ExitCode int
	ExitErr  error

	parent *Process
	// budgeted records that this process's goroutine holds a shared
	// scheduler token (best-effort, acquired at Spawn), returned when the
	// process exits.
	budgeted bool
}

// Done returns a channel closed when the process exits.
func (p *Process) Done() <-chan struct{} { return p.done }

// TotalCycles returns the process's total simulated cycles.
func (p *Process) TotalCycles() uint64 { return p.Inst.Counters.Cycles }

// BrowsixShare returns the fraction of time spent in Browsix (Figure 4).
func (p *Process) BrowsixShare() float64 {
	t := p.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(p.BrowsixCycles) / float64(t)
}

// chargeBrowsix charges transport/kernel cycles to both the machine clock
// and the Browsix accounting.
func (p *Process) chargeBrowsix(cycles uint64) {
	p.Inst.Machine.AddCycles(cycles * 4)
	p.BrowsixCycles += cycles
}

// chargeCopy charges an aux-buffer copy of n bytes, chunked at the aux
// buffer size (§2: transfers larger than 64 MB are split). A transfer that
// exactly fills k buffers is k chunks — k-1 extra message round-trips —
// not k+1.
func (p *Process) chargeCopy(n int) {
	chunks := (n + AuxBufferSize - 1) / AuxBufferSize
	if chunks == 0 {
		chunks = 1
	}
	p.chargeBrowsix(uint64(float64(n)*CopyCyclesPerByte) + uint64(chunks-1)*MsgRoundTripCycles)
}

// copyIn copies process-memory bytes into the aux buffer (for syscalls that
// pass buffers to the kernel) and returns the aux view.
func (p *Process) copyIn(addr, n uint32) ([]byte, error) {
	if int64(addr)+int64(n) > int64(len(p.Inst.Linear)) {
		return nil, errors.New("fault: bad address")
	}
	if int(n) > len(p.aux) {
		n = uint32(len(p.aux))
	}
	copy(p.aux[:n], p.Inst.Linear[addr:addr+n])
	p.chargeCopy(int(n))
	return p.aux[:n], nil
}

// copyOut copies aux-buffer bytes back into process memory.
func (p *Process) copyOut(addr uint32, data []byte) error {
	if int64(addr)+int64(len(data)) > int64(len(p.Inst.Linear)) {
		return errors.New("fault: bad address")
	}
	copy(p.Inst.Linear[addr:], data)
	p.chargeCopy(len(data))
	return nil
}

// cstring reads a NUL-terminated string from process memory via the aux
// protocol.
func (p *Process) cstring(addr uint32) (string, error) {
	lin := p.Inst.Linear
	if int64(addr) >= int64(len(lin)) {
		return "", errors.New("fault: bad string address")
	}
	end := int(addr)
	for end < len(lin) && lin[end] != 0 {
		end++
	}
	s := string(lin[addr:end])
	p.chargeCopy(len(s))
	return s, nil
}

// Spawn creates a process from the binary at path with the given argv
// (argv[0] is the program name) and starts it. The new process inherits the
// parent's stdio descriptors (or fresh console stdio when parent is nil).
func (k *Kernel) Spawn(parent *Process, path string, argv []string, stdio [3]*FD) (*Process, error) {
	cm, ok := k.LookupBinary(path)
	if !ok {
		return nil, fmt.Errorf("kernel: no such binary %q", path)
	}
	inst, err := cpu.Load(cm)
	if err != nil {
		return nil, err
	}
	inst.Machine.NoPredecode = k.Legacy
	if ctx, deadline, maxInsts := k.Ctx, k.Deadline, k.MaxInsts; ctx != nil || !deadline.IsZero() || maxInsts > 0 {
		every := k.PollInterval
		if every == 0 {
			every = DefaultPollInterval
		}
		m := inst.Machine
		inst.Machine.SetInterrupt(every, func() error {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if maxInsts > 0 && m.Counters.Instructions >= maxInsts {
				return &WatchdogError{Insts: m.Counters.Instructions}
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return &WatchdogError{Wall: true, Insts: m.Counters.Instructions}
			}
			return nil
		})
	}
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	p := &Process{
		PID:    pid,
		Kernel: k,
		Inst:   inst,
		Args:   argv,
		Path:   path,
		aux:    *auxPool.Get().(*[]byte),
		done:   make(chan struct{}),
		parent: parent,
	}
	k.procs[pid] = p
	k.mu.Unlock()

	for i := 0; i < 3; i++ {
		fd := stdio[i]
		if fd == nil {
			fd = &FD{kind: fdConsole, kernel: k}
		}
		fd.ref()
		p.fds = append(p.fds, fd)
	}

	bindSyscalls(p)

	// A process is a long-running goroutine doing real simulation work, so
	// it charges the shared scheduler budget like any other worker —
	// best-effort (a deeply forking tree must not deadlock against its own
	// budget), but enough that unixproc-style fork storms are counted
	// against the global bound instead of multiplying past it.
	p.budgeted = sched.Shared().TryAcquire(1)

	go p.run()
	return p, nil
}

// run executes the process to completion.
func (p *Process) run() {
	defer close(p.done)
	if p.budgeted {
		defer sched.Shared().Release(1)
	}
	defer func() {
		aux := p.aux
		p.aux = nil
		auxPool.Put(&aux)
	}()
	// A process's memory image dies with it, like a real exiting process:
	// the machine's buffers are scrubbed and recycled for future spawns.
	// Counters survive on the instance — results outlive processes.
	defer p.Inst.ReleaseMemory()
	defer p.closeAllFDs()
	// Containment boundary: a panic on a process goroutine (an engine or
	// syscall-handler bug, an injected fault) would kill the whole test
	// process. Convert it to the same structured error shape the scheduler
	// uses, delivered through the ordinary WaitPID path. Registered last so
	// it runs first, before cleanup, stopping the unwind.
	defer func() {
		if pe := sched.CapturePanic("process "+p.Path, recover()); pe != nil {
			p.ExitErr = pe
			p.ExitCode = 128
		}
	}()
	argc, argvPtr, err := p.writeArgs()
	if err != nil {
		p.ExitErr = err
		p.ExitCode = 127
		return
	}
	ret, err := p.Inst.Invoke("_start", uint64(argc), uint64(argvPtr))
	if err != nil {
		var ee *ExitError
		if errors.As(err, &ee) {
			p.ExitCode = ee.Code
			return
		}
		p.ExitErr = err
		p.ExitCode = 128
		return
	}
	p.ExitCode = int(int32(ret))
}

// argsBase is where the loader writes argv into the process image. The
// mini-C runtime reserves [1024, 4096) for it.
const argsBase = 1024

// writeArgs lays out argv in process memory: pointer array then strings.
// Pointer slots follow the binary's data model (4 or 8 bytes).
func (p *Process) writeArgs() (int, uint32, error) {
	lin := p.Inst.Linear
	ps := p.Inst.CM.PtrSize
	if ps == 0 {
		ps = 4
	}
	ptrs := argsBase
	off := argsBase + ps*(len(p.Args)+1)
	putPtr := func(slot int, v uint32) {
		putU32(lin, slot, v)
		if ps == 8 {
			putU32(lin, slot+4, 0)
		}
	}
	for i, a := range p.Args {
		if off+len(a)+1 >= argsBase+3072 {
			return 0, 0, errors.New("kernel: argv too large")
		}
		putPtr(ptrs+ps*i, uint32(off))
		copy(lin[off:], a)
		lin[off+len(a)] = 0
		off += len(a) + 1
	}
	putPtr(ptrs+ps*len(p.Args), 0)
	return len(p.Args), uint32(ptrs), nil
}

func putU32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

// WaitPID blocks until pid exits, returning its exit code.
func (k *Kernel) WaitPID(pid int) (int, error) {
	k.mu.Lock()
	p, ok := k.procs[pid]
	k.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("kernel: no such pid %d", pid)
	}
	<-p.done
	k.mu.Lock()
	delete(k.procs, pid)
	k.mu.Unlock()
	if p.ExitErr != nil {
		return p.ExitCode, p.ExitErr
	}
	return p.ExitCode, nil
}

// Proc returns a live process by pid.
func (k *Kernel) Proc(pid int) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}
