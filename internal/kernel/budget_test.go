package kernel_test

// External-package test (pipeline imports kernel, so the toolchain needed to
// compile real spawn chains is only reachable from kernel_test): process
// spawns must charge the shared scheduler budget, so a workload that fans
// out with sys_spawn cannot multiply the process-wide parallelism bound.

import (
	"context"
	"testing"

	"repro/internal/codegen"
	"repro/internal/kernel"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

const leafSrc = `
int main() { print_int(7); print_nl(); return 0; }`

const midSrc = `
int main() {
  char *args[2];
  args[0] = "leaf";
  args[1] = (char*)0;
  int pid = sys_spawn("/bin/leaf", args);
  if (pid < 0) { return 111; }
  return sys_wait(pid);
}`

const rootSrc = `
int main() {
  char *args[2];
  args[0] = "mid";
  args[1] = (char*)0;
  int pid = sys_spawn("/bin/mid", args);
  if (pid < 0) { return 112; }
  return sys_wait(pid);
}`

// TestSpawnChargesSchedBudget runs a three-deep spawn chain (root waits on
// mid waits on leaf) against a shared budget of 2 and pins the protocol:
// each live process best-effort borrows one token, the chain's token
// high-water mark never exceeds the budget capacity (the third process runs
// unbudgeted rather than blocking — spawn must never deadlock on tokens),
// and every borrowed token is back after the chain exits.
func TestSpawnChargesSchedBudget(t *testing.T) {
	cfg := codegen.Native()
	var bins [3]*codegen.CompiledModule
	for i, src := range []string{rootSrc, midSrc, leafSrc} {
		cm, err := pipeline.Compile(context.Background(), &pipeline.Request{Module: src, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		bins[i] = cm
	}

	// Resize after the builds so compile-helper tokens don't pollute the
	// peak we are pinning.
	prev := sched.SetSharedCapacity(2)
	defer sched.SetSharedCapacity(prev)
	b := sched.Shared()
	inUseBefore := b.InUse()
	b.ResetPeak()

	k := kernel.New(nil)
	k.RegisterBinary("/bin/root", bins[0])
	k.RegisterBinary("/bin/mid", bins[1])
	k.RegisterBinary("/bin/leaf", bins[2])
	p, err := k.Spawn(nil, "/bin/root", []string{"root"}, [3]*kernel.FD{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("spawn chain exited %d, want 0", code)
	}

	if peak := b.Peak(); peak > b.Capacity() {
		t.Errorf("spawn chain peaked at %d tokens, capacity is %d", peak, b.Capacity())
	}
	if peak := b.Peak(); peak <= inUseBefore {
		t.Errorf("spawn chain never charged the budget (peak %d, baseline %d)", peak, inUseBefore)
	}
	if got := b.InUse(); got != inUseBefore {
		t.Errorf("tokens leaked: in-use %d after the chain, want %d", got, inUseBefore)
	}
}
