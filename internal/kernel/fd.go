package kernel

import (
	"errors"
	"sync"

	"repro/internal/browserfs"
)

// fdKind distinguishes descriptor backings.
type fdKind int

const (
	fdFile fdKind = iota
	fdPipeR
	fdPipeW
	fdConsole
	fdNull
)

// FD is an open file description (shared across dup'ed descriptors).
type FD struct {
	mu     sync.Mutex
	kind   fdKind
	ino    *browserfs.Inode
	fs     *browserfs.FS
	pos    int64
	pipe   *Pipe
	kernel *Kernel
	refs   int
	append bool
}

func (f *FD) ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

func (f *FD) unref() {
	f.mu.Lock()
	f.refs--
	last := f.refs == 0
	f.mu.Unlock()
	if last {
		switch f.kind {
		case fdPipeR:
			f.pipe.CloseRead()
		case fdPipeW:
			f.pipe.CloseWrite()
		}
	}
}

// NewFileFD opens an inode-backed descriptor.
func NewFileFD(fs *browserfs.FS, ino *browserfs.Inode, append_ bool) *FD {
	fd := &FD{kind: fdFile, ino: ino, fs: fs, append: append_}
	if append_ {
		fd.pos = int64(ino.Size())
	}
	return fd
}

// NewConsoleFD returns a descriptor that appends to the kernel console.
func NewConsoleFD(k *Kernel) *FD { return &FD{kind: fdConsole, kernel: k} }

// Read fills buf, blocking on pipes.
func (f *FD) Read(buf []byte) (int, error) {
	switch f.kind {
	case fdFile:
		f.mu.Lock()
		n := f.ino.ReadAt(buf, f.pos)
		f.pos += int64(n)
		f.mu.Unlock()
		return n, nil
	case fdPipeR:
		return f.pipe.Read(buf)
	case fdNull, fdConsole:
		return 0, nil // EOF
	}
	return 0, errors.New("bad fd for read")
}

// Write writes buf, blocking on full pipes.
func (f *FD) Write(buf []byte) (int, error) {
	switch f.kind {
	case fdFile:
		f.mu.Lock()
		n := f.ino.WriteAt(buf, f.pos, f.fs.Policy)
		f.pos += int64(n)
		f.mu.Unlock()
		return n, nil
	case fdPipeW:
		return f.pipe.Write(buf)
	case fdConsole:
		f.kernel.mu.Lock()
		f.kernel.Console = append(f.kernel.Console, buf...)
		f.kernel.mu.Unlock()
		return len(buf), nil
	case fdNull:
		return len(buf), nil
	}
	return 0, errors.New("bad fd for write")
}

// Seek repositions a file descriptor.
func (f *FD) Seek(off int64, whence int) (int64, error) {
	if f.kind != fdFile {
		return 0, errors.New("illegal seek")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case 0:
		f.pos = off
	case 1:
		f.pos += off
	case 2:
		f.pos = int64(f.ino.Size()) + off
	default:
		return 0, errors.New("bad whence")
	}
	if f.pos < 0 {
		f.pos = 0
	}
	return f.pos, nil
}

// Pipe is a bounded in-kernel byte channel.
type Pipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	closedW bool
	closedR bool
	// Cap bounds buffering (64 KiB, like the Browsix pipes after the §2
	// allocation fixes).
	Cap int
}

// NewPipe returns an empty pipe.
func NewPipe() *Pipe {
	p := &Pipe{Cap: 64 * 1024}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Read blocks until data is available or the write side closes.
func (p *Pipe) Read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closedW {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		return 0, nil // EOF
	}
	n := copy(buf, p.buf)
	p.buf = p.buf[n:]
	p.cond.Broadcast()
	return n, nil
}

// Write blocks while the pipe is full; writing to a pipe with no reader
// returns an error (EPIPE).
func (p *Pipe) Write(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for len(buf) > 0 {
		if p.closedR {
			return total, errors.New("broken pipe")
		}
		for len(p.buf) >= p.Cap && !p.closedR {
			p.cond.Wait()
		}
		if p.closedR {
			return total, errors.New("broken pipe")
		}
		n := p.Cap - len(p.buf)
		if n > len(buf) {
			n = len(buf)
		}
		p.buf = append(p.buf, buf[:n]...)
		buf = buf[n:]
		total += n
		p.cond.Broadcast()
	}
	return total, nil
}

// CloseWrite marks the writer side closed, waking readers.
func (p *Pipe) CloseWrite() {
	p.mu.Lock()
	p.closedW = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// CloseRead marks the reader side closed, waking writers.
func (p *Pipe) CloseRead() {
	p.mu.Lock()
	p.closedR = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// --- process fd table ---

func (p *Process) getFD(fd int) (*FD, bool) {
	p.fdmu.Lock()
	defer p.fdmu.Unlock()
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return nil, false
	}
	return p.fds[fd], true
}

func (p *Process) installFD(f *FD) int {
	p.fdmu.Lock()
	defer p.fdmu.Unlock()
	f.ref()
	for i, e := range p.fds {
		if e == nil {
			p.fds[i] = f
			return i
		}
	}
	p.fds = append(p.fds, f)
	return len(p.fds) - 1
}

func (p *Process) closeFD(fd int) error {
	p.fdmu.Lock()
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		p.fdmu.Unlock()
		return errors.New("bad fd")
	}
	f := p.fds[fd]
	p.fds[fd] = nil
	p.fdmu.Unlock()
	f.unref()
	return nil
}

func (p *Process) dup2(old, new_ int) error {
	p.fdmu.Lock()
	if old < 0 || old >= len(p.fds) || p.fds[old] == nil || new_ < 0 || new_ > 1024 {
		p.fdmu.Unlock()
		return errors.New("bad fd")
	}
	f := p.fds[old]
	for new_ >= len(p.fds) {
		p.fds = append(p.fds, nil)
	}
	prev := p.fds[new_]
	f.ref()
	p.fds[new_] = f
	p.fdmu.Unlock()
	if prev != nil {
		prev.unref()
	}
	return nil
}

func (p *Process) closeAllFDs() {
	p.fdmu.Lock()
	fds := p.fds
	p.fds = nil
	p.fdmu.Unlock()
	for _, f := range fds {
		if f != nil {
			f.unref()
		}
	}
}

// StdioFDs returns the process's current stdio descriptors (for spawning
// children that inherit them).
func (p *Process) StdioFDs() [3]*FD {
	var out [3]*FD
	p.fdmu.Lock()
	for i := 0; i < 3 && i < len(p.fds); i++ {
		out[i] = p.fds[i]
	}
	p.fdmu.Unlock()
	return out
}
