package kernel

import (
	"errors"
	"fmt"

	"repro/internal/browserfs"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/x86"
)

// Open flags understood by sys_open (a simplified O_* set).
const (
	ORdonly = 0
	OWronly = 1
	ORdwr   = 2
	OCreat  = 64
	OTrunc  = 512
	OAppend = 1024
)

// sysHandler services one syscall for process p; args are the raw i32
// arguments, and the return value lands in RAX (as a sign-extended i32).
type sysHandler func(p *Process, args [4]uint32) (int32, error)

var sysTable map[string]sysHandler

func init() {
	sysTable = map[string]sysHandler{
		"env.sys_open":      sysOpen,
		"env.sys_close":     sysClose,
		"env.sys_read":      sysRead,
		"env.sys_write":     sysWrite,
		"env.sys_lseek":     sysLseek,
		"env.sys_stat_size": sysStatSize,
		"env.sys_unlink":    sysUnlink,
		"env.sys_mkdir":     sysMkdir,
		"env.sys_pipe":      sysPipe,
		"env.sys_dup2":      sysDup2,
		"env.sys_spawn":     sysSpawn,
		"env.sys_wait":      sysWait,
		"env.sys_exit":      sysExit,
		"env.sys_getpid":    sysGetpid,
		"env.sys_now":       sysNow,
		"env.perf_begin":    sysPerfBegin,
		"env.perf_end":      sysPerfEnd,
	}
}

// PerfHooks are installed by Browsix-SPEC: the process's userspace runtime
// issues perf_begin/perf_end XHRs around main (Figure 2 steps 4 and 6).
type PerfHooks struct {
	Begin func(p *Process)
	End   func(p *Process)
}

// bindSyscalls wires the process's host imports to the kernel.
func bindSyscalls(p *Process) {
	cm := p.Inst.CM
	argRegs := cm.Engine.ArgGP
	handlers := make([]sysHandler, len(cm.HostImports))
	names := cm.HostImports
	for i, name := range names {
		handlers[i] = sysTable[name]
	}
	p.Inst.BindHost(func(m *cpu.Machine, imp int) error {
		if imp < 0 || imp >= len(handlers) || handlers[imp] == nil {
			return fmt.Errorf("kernel: unknown import %d", imp)
		}
		// Message round-trip + kernel service cost (§2 transport).
		p.Syscalls++
		p.chargeBrowsix(MsgRoundTripCycles + ServiceCycles)
		// Fault site on the transport, keyed by import name: an injected
		// error models a kernel-side message failure and kills the process
		// accountably (the error unwinds through Invoke into ExitErr).
		if err := fault.Check(fault.SiteSyscall, names[imp]); err != nil {
			return err
		}
		var args [4]uint32
		for i := 0; i < 4 && i < len(argRegs); i++ {
			args[i] = uint32(m.Regs[argRegs[i]])
		}
		ret, err := handlers[imp](p, args)
		if err != nil {
			return err
		}
		m.Regs[x86.RAX] = uint64(uint32(ret))
		return nil
	})
}

// errno maps filesystem errors onto negative return values.
func errno(err error) int32 {
	switch err {
	case nil:
		return 0
	case browserfs.ErrNotExist:
		return -2 // ENOENT
	case browserfs.ErrExist:
		return -17 // EEXIST
	case browserfs.ErrIsDir:
		return -21 // EISDIR
	case browserfs.ErrNotDir:
		return -20 // ENOTDIR
	case browserfs.ErrNotEmpty:
		return -39 // ENOTEMPTY
	}
	return -1 // EPERM catch-all
}

func sysOpen(p *Process, a [4]uint32) (int32, error) {
	path, err := p.cstring(a[0])
	if err != nil {
		return -14, nil // EFAULT
	}
	flags := int(a[1])
	fs := p.Kernel.FS
	var ino *browserfs.Inode
	var ferr error
	switch {
	case flags&OCreat != 0 && flags&OTrunc != 0:
		ino, ferr = fs.Create(path)
	case flags&OCreat != 0:
		ino, ferr = fs.OpenOrCreate(path)
	default:
		ino, ferr = fs.Open(path)
	}
	if ferr != nil {
		return errno(ferr), nil
	}
	if ino.Mode.IsDir() {
		return errno(browserfs.ErrIsDir), nil
	}
	fd := p.installFD(NewFileFD(fs, ino, flags&OAppend != 0))
	return int32(fd), nil
}

func sysClose(p *Process, a [4]uint32) (int32, error) {
	if err := p.closeFD(int(a[0])); err != nil {
		return -9, nil // EBADF
	}
	return 0, nil
}

func sysRead(p *Process, a [4]uint32) (int32, error) {
	f, ok := p.getFD(int(a[0]))
	if !ok {
		return -9, nil
	}
	n := int(a[2])
	total := 0
	buf := a[1]
	// Chunk reads at the aux-buffer size (§2).
	for total < n {
		chunk := n - total
		if chunk > len(p.aux) {
			chunk = len(p.aux)
		}
		got, err := f.Read(p.aux[:chunk])
		if err != nil {
			return -5, nil // EIO
		}
		if got == 0 {
			break
		}
		if err := p.copyOut(buf+uint32(total), p.aux[:got]); err != nil {
			return -14, nil
		}
		total += got
		if got < chunk {
			break
		}
	}
	return int32(total), nil
}

func sysWrite(p *Process, a [4]uint32) (int32, error) {
	f, ok := p.getFD(int(a[0]))
	if !ok {
		return -9, nil
	}
	n := int(a[2])
	total := 0
	buf := a[1]
	for total < n {
		chunk := n - total
		if chunk > len(p.aux) {
			chunk = len(p.aux)
		}
		view, err := p.copyIn(buf+uint32(total), uint32(chunk))
		if err != nil {
			return -14, nil
		}
		wrote, werr := f.Write(view)
		if werr != nil {
			return -32, nil // EPIPE
		}
		total += wrote
		if wrote < chunk {
			break
		}
	}
	return int32(total), nil
}

func sysLseek(p *Process, a [4]uint32) (int32, error) {
	f, ok := p.getFD(int(a[0]))
	if !ok {
		return -9, nil
	}
	pos, err := f.Seek(int64(int32(a[1])), int(a[2]))
	if err != nil {
		return -29, nil // ESPIPE
	}
	return int32(pos), nil
}

func sysStatSize(p *Process, a [4]uint32) (int32, error) {
	path, err := p.cstring(a[0])
	if err != nil {
		return -14, nil
	}
	ino, ferr := p.Kernel.FS.Open(path)
	if ferr != nil {
		return errno(ferr), nil
	}
	return int32(ino.Size()), nil
}

func sysUnlink(p *Process, a [4]uint32) (int32, error) {
	path, err := p.cstring(a[0])
	if err != nil {
		return -14, nil
	}
	return errno(p.Kernel.FS.Unlink(path)), nil
}

func sysMkdir(p *Process, a [4]uint32) (int32, error) {
	path, err := p.cstring(a[0])
	if err != nil {
		return -14, nil
	}
	return errno(p.Kernel.FS.Mkdir(path)), nil
}

func sysPipe(p *Process, a [4]uint32) (int32, error) {
	pipe := NewPipe()
	r := &FD{kind: fdPipeR, pipe: pipe}
	w := &FD{kind: fdPipeW, pipe: pipe}
	rfd := p.installFD(r)
	wfd := p.installFD(w)
	var out [8]byte
	putU32(out[:], 0, uint32(rfd))
	putU32(out[:], 4, uint32(wfd))
	if err := p.copyOut(a[0], out[:]); err != nil {
		return -14, nil
	}
	return 0, nil
}

func sysDup2(p *Process, a [4]uint32) (int32, error) {
	if err := p.dup2(int(a[0]), int(a[1])); err != nil {
		return -9, nil
	}
	return int32(a[1]), nil
}

func sysSpawn(p *Process, a [4]uint32) (int32, error) {
	path, err := p.cstring(a[0])
	if err != nil {
		return -14, nil
	}
	// argv: array of char* terminated by NULL. Pointer slots follow the
	// binary's data model (4 bytes for wasm32, 8 for the native build).
	var argv []string
	lin := p.Inst.Linear
	ps := uint32(p.Inst.CM.PtrSize)
	if ps == 0 {
		ps = 4
	}
	for off := a[1]; ; off += ps {
		if int(off)+int(ps) > len(lin) {
			return -14, nil
		}
		ptr := uint32(lin[off]) | uint32(lin[off+1])<<8 | uint32(lin[off+2])<<16 | uint32(lin[off+3])<<24
		if ptr == 0 {
			break
		}
		s, err := p.cstring(ptr)
		if err != nil {
			return -14, nil
		}
		argv = append(argv, s)
		if len(argv) > 256 {
			return -7, nil // E2BIG
		}
	}
	child, err := p.Kernel.Spawn(p, path, argv, p.StdioFDs())
	if err != nil {
		return -2, nil
	}
	return int32(child.PID), nil
}

func sysWait(p *Process, a [4]uint32) (int32, error) {
	code, err := p.Kernel.WaitPID(int(a[0]))
	if err != nil {
		var we *WatchdogError
		if errors.As(err, &we) {
			// The watchdog killed the waited child. The deadline governs the
			// whole process chain (one job = one kernel = one deadline), so
			// the kill unwinds the waiting parent too instead of degrading
			// into an opaque ECHILD — the root WaitPID then reports the
			// timeout no matter how deep in the chain the hang was.
			return -10, err
		}
		return -10, nil // ECHILD
	}
	return int32(code), nil
}

func sysExit(p *Process, a [4]uint32) (int32, error) {
	return 0, &ExitError{Code: int(int32(a[0]))}
}

func sysGetpid(p *Process, a [4]uint32) (int32, error) {
	return int32(p.PID), nil
}

// sysNow returns simulated milliseconds (derived from the cycle counter so
// runs are deterministic).
func sysNow(p *Process, a [4]uint32) (int32, error) {
	return int32(p.Inst.Counters.Cycles / 3_500_000), nil
}

func sysPerfBegin(p *Process, a [4]uint32) (int32, error) {
	if p.Kernel.Hooks.Begin != nil {
		p.Kernel.Hooks.Begin(p)
	}
	return 0, nil
}

func sysPerfEnd(p *Process, a [4]uint32) (int32, error) {
	if p.Kernel.Hooks.End != nil {
		p.Kernel.Hooks.End(p)
	}
	return 0, nil
}
