package pipeline

// Per-job watchdog: every execution can carry a wall-clock deadline and a
// retired-instruction ceiling, enforced inside the kernel's existing
// SetInterrupt polling (no extra goroutines, no timers racing the
// simulation). A tripped watchdog kills the process tree and surfaces as a
// typed TimeoutError carrying the counters accumulated up to the kill — the
// partial result is real data (the machine flushes its cycle accounting on
// the interrupt path), not garbage, so degraded suite rows can still report
// how far a hung workload got.
//
// Limits resolve like every other knob (internal/config): a per-request
// value on pipeline.Request wins, then the $REPRO_JOB_TIMEOUT /
// $REPRO_JOB_MAX_INSTS environment, then "unbounded".

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/perf"
)

// TimeoutError reports a run killed by the per-job watchdog. Partial holds
// the waited process's counters at the kill point — accurate (cycles are
// flushed before the interrupt unwinds) but incomplete by definition.
type TimeoutError struct {
	// Label identifies the job (the workload name on suite paths, argv[0]
	// otherwise).
	Label string
	// Wall is true when the wall-clock deadline expired, false when the
	// instruction limit was hit.
	Wall bool
	// Timeout and MaxInsts are the limits that were armed.
	Timeout  time.Duration
	MaxInsts uint64
	// Partial is the killed process's perf counters at the kill.
	Partial perf.Counters
}

func (e *TimeoutError) Error() string {
	if e.Wall {
		return fmt.Sprintf("pipeline: %s: watchdog timeout after %v (%d insts retired)",
			e.Label, e.Timeout, e.Partial.Instructions)
	}
	return fmt.Sprintf("pipeline: %s: watchdog instruction limit %d hit (%d insts retired)",
		e.Label, e.MaxInsts, e.Partial.Instructions)
}

var (
	limitsOnce sync.Once
	limitsMu   sync.Mutex
	jobLimits  config.Limits
)

// initLimitsFromEnv parses the watchdog knobs once per process, warning on
// unparsable values instead of silently running unguarded — someone who
// armed a timeout and mistyped it should not discover that via a hung CI
// job.
func initLimitsFromEnv() {
	l, errs := config.LimitsFromEnv()
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "pipeline: %v; that watchdog limit is disabled\n", err)
	}
	jobLimits = l
}

// JobLimits returns the armed per-job watchdog limits (zero = disabled).
func JobLimits() (timeout time.Duration, maxInsts uint64) {
	limitsOnce.Do(initLimitsFromEnv)
	limitsMu.Lock()
	defer limitsMu.Unlock()
	return jobLimits.Timeout.Std(), jobLimits.MaxInsts
}

// effectiveLimits resolves one request's watchdog bounds: the request's own
// Limits when any are set, else the process-wide JobLimits. A request that
// sets only one field still overrides both — "this request's policy" is
// atomic, not merged field-by-field with the environment.
func effectiveLimits(req config.Limits) (timeout time.Duration, maxInsts uint64) {
	if !req.IsZero() {
		return req.Timeout.Std(), req.MaxInsts
	}
	return JobLimits()
}

// SetJobLimits overrides the watchdog limits process-wide and returns a
// restore function (tests; zero disables a limit).
func SetJobLimits(timeout time.Duration, maxInsts uint64) (restore func()) {
	limitsOnce.Do(initLimitsFromEnv)
	limitsMu.Lock()
	defer limitsMu.Unlock()
	prev := jobLimits
	jobLimits = config.Limits{Timeout: config.Duration(timeout), MaxInsts: maxInsts}
	return func() {
		limitsMu.Lock()
		defer limitsMu.Unlock()
		jobLimits = prev
	}
}
