package pipeline

// Per-job watchdog: every ExecContext run can carry a wall-clock deadline
// and a retired-instruction ceiling, enforced inside the kernel's existing
// SetInterrupt polling (no extra goroutines, no timers racing the
// simulation). A tripped watchdog kills the process tree and surfaces as a
// typed TimeoutError carrying the counters accumulated up to the kill — the
// partial result is real data (the machine flushes its cycle accounting on
// the interrupt path), not garbage, so degraded suite rows can still report
// how far a hung workload got.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/perf"
)

// Environment knobs for the per-job watchdog.
const (
	// jobTimeoutEnv is a time.Duration ("30s", "2m") bounding each job's
	// wall-clock execution; unset or zero disables the deadline.
	jobTimeoutEnv = "REPRO_JOB_TIMEOUT"
	// jobMaxInstsEnv bounds each process's retired instructions; unset or
	// zero disables the limit.
	jobMaxInstsEnv = "REPRO_JOB_MAX_INSTS"
)

// TimeoutError reports a run killed by the per-job watchdog. Partial holds
// the waited process's counters at the kill point — accurate (cycles are
// flushed before the interrupt unwinds) but incomplete by definition.
type TimeoutError struct {
	// Label identifies the job (the workload name on suite paths, argv[0]
	// otherwise).
	Label string
	// Wall is true when the wall-clock deadline expired, false when the
	// instruction limit was hit.
	Wall bool
	// Timeout and MaxInsts are the limits that were armed.
	Timeout  time.Duration
	MaxInsts uint64
	// Partial is the killed process's perf counters at the kill.
	Partial perf.Counters
}

func (e *TimeoutError) Error() string {
	if e.Wall {
		return fmt.Sprintf("pipeline: %s: watchdog timeout after %v (%d insts retired)",
			e.Label, e.Timeout, e.Partial.Instructions)
	}
	return fmt.Sprintf("pipeline: %s: watchdog instruction limit %d hit (%d insts retired)",
		e.Label, e.MaxInsts, e.Partial.Instructions)
}

var (
	limitsOnce  sync.Once
	limitsMu    sync.Mutex
	jobTimeout  time.Duration
	jobMaxInsts uint64
)

// initLimitsFromEnv parses the watchdog knobs once per process, warning on
// unparsable values instead of silently running unguarded — someone who
// armed a timeout and mistyped it should not discover that via a hung CI
// job.
func initLimitsFromEnv() {
	if v := os.Getenv(jobTimeoutEnv); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			fmt.Fprintf(os.Stderr, "pipeline: %s=%q is not a duration; watchdog deadline disabled\n", jobTimeoutEnv, v)
		} else {
			jobTimeout = d
		}
	}
	if v := os.Getenv(jobMaxInstsEnv); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: %s=%q is not an instruction count; watchdog limit disabled\n", jobMaxInstsEnv, v)
		} else {
			jobMaxInsts = n
		}
	}
}

// JobLimits returns the armed per-job watchdog limits (zero = disabled).
func JobLimits() (timeout time.Duration, maxInsts uint64) {
	limitsOnce.Do(initLimitsFromEnv)
	limitsMu.Lock()
	defer limitsMu.Unlock()
	return jobTimeout, jobMaxInsts
}

// SetJobLimits overrides the watchdog limits process-wide and returns a
// restore function (tests; zero disables a limit).
func SetJobLimits(timeout time.Duration, maxInsts uint64) (restore func()) {
	limitsOnce.Do(initLimitsFromEnv)
	limitsMu.Lock()
	defer limitsMu.Unlock()
	prevT, prevN := jobTimeout, jobMaxInsts
	jobTimeout, jobMaxInsts = timeout, maxInsts
	return func() {
		limitsMu.Lock()
		defer limitsMu.Unlock()
		jobTimeout, jobMaxInsts = prevT, prevN
	}
}
