// Package pipeline is the shared artifact and execution layer every run
// path in the reproduction sits on: a process-wide content-addressed build
// cache (one compile per distinct mini-C source × engine configuration, no
// matter how many harnesses, tests, or CLIs ask for it) layered over a
// disk-backed artifact store (one compile per content address across
// processes — repeated CLI invocations, test runs, and CI jobs start warm),
// a budget-bounded job scheduler for suite fan-out (internal/sched: suite
// jobs and the per-function compile fan-out inside them draw workers from
// one process-wide token budget, so parallelism is ~GOMAXPROCS at any
// nesting depth), and the canonical "run one binary in a fresh kernel"
// helper. The spec harness, the toolchain front-end, the workloads
// differential tests, and the cmd/* binaries all build and execute through
// this package, so builds are shared and suite parallelism is governed in
// one place.
//
// The unit of work is the serializable Request (module, engine, argv,
// files, fidelity, limits) and its Result (exit code, stdout, counters,
// cache traffic, typed error class); the canonical verbs are Compile,
// Execute, and Do in request.go. The same struct a test builds in-process
// is what cmd/repro-serve accepts as an HTTP body, so there is exactly one
// spelling of "run this program under that engine" across the repo and the
// wire.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/minic"
	"repro/internal/wasm"
)

// ABIFor returns the data model an engine compiles: x86-64 for the native
// configuration, wasm32 for the browser engines.
func ABIFor(cfg *codegen.EngineConfig) minic.ABI {
	if cfg.Name == "native" {
		return minic.ABI64
	}
	return minic.ABI32
}

// Key returns the content address of one build: a hash of the mini-C source
// and the full engine configuration. Two configs that differ in any field —
// not just the name — hash differently, so ablation configs never collide
// with the stock engines even when a caller forgets to rename them.
func Key(src string, cfg *codegen.EngineConfig) string {
	h := sha256.New()
	io.WriteString(h, src)
	h.Write([]byte{0})
	// %#v spells out every exported field by name, so the key tracks
	// EngineConfig growth without a hand-maintained encoder.
	fmt.Fprintf(h, "%#v", *cfg)
	return hex.EncodeToString(h.Sum(nil))
}

// buildEntry is one cache slot. The entry is published in the map before
// the compile runs; once.Do makes concurrent requesters of the same key
// share a single compile instead of racing.
type buildEntry struct {
	once sync.Once
	cm   *codegen.CompiledModule
	err  error
	// outcome is the cache traffic the winning requester generated (one
	// disk hit or one miss); later requesters report a memory hit instead.
	// Per-request Results carry it so a serving client can see whether its
	// run compiled cold without racing other tenants for the global totals.
	outcome CacheStats
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*buildEntry{}
	stats      CacheStats
)

// CacheStats counts build-cache traffic since process start (or a snapshot,
// via Sub). A memory hit found the module already resident; a disk hit
// loaded it from the cross-process artifact store; a remote hit fetched a
// verified artifact from the shared remote tier; a miss ran the compiler.
// Corrupt counts artifacts that read back undecodable (truncation, bit
// flips, version skew) — each is also a miss — and Quarantined counts how
// many of those were successfully moved aside for inspection rather than
// deleted. A nonzero Corrupt in a suite summary is a disk or encoder
// problem worth chasing; silent deletion used to hide it.
//
// The Remote* counters make remote-tier degradation observable without ever
// making it a failure: RemotePuts counts successful async publishes,
// RemoteErrors counts remote calls that exhausted their retries (each one
// silently fell back to the local tiers), and RemoteRejects counts fetched
// payloads that failed sha256 verification (rejected, never decoded, and
// negative-cached for the process). A local-only run reports all four as
// zero, and they are omitted from the wire when zero, so a run that never
// touched a remote serializes exactly as it did before the tier existed.
// The JSON spellings are part of the serving wire format (see Request) and
// are pinned by golden fixtures; do not rename casually.
type CacheStats struct {
	MemHits       uint64 `json:"mem_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Misses        uint64 `json:"misses"`
	Corrupt       uint64 `json:"corrupt,omitempty"`
	Quarantined   uint64 `json:"quarantined,omitempty"`
	RemoteHits    uint64 `json:"remote_hits,omitempty"`
	RemotePuts    uint64 `json:"remote_puts,omitempty"`
	RemoteErrors  uint64 `json:"remote_errors,omitempty"`
	RemoteRejects uint64 `json:"remote_rejects,omitempty"`
}

// Sub returns the per-interval delta s - prev; bracket a suite with Stats()
// calls to get its traffic.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		MemHits:       s.MemHits - prev.MemHits,
		DiskHits:      s.DiskHits - prev.DiskHits,
		Misses:        s.Misses - prev.Misses,
		Corrupt:       s.Corrupt - prev.Corrupt,
		Quarantined:   s.Quarantined - prev.Quarantined,
		RemoteHits:    s.RemoteHits - prev.RemoteHits,
		RemotePuts:    s.RemotePuts - prev.RemotePuts,
		RemoteErrors:  s.RemoteErrors - prev.RemoteErrors,
		RemoteRejects: s.RemoteRejects - prev.RemoteRejects,
	}
}

// Compiles returns the number of compiler runs (misses).
func (s CacheStats) Compiles() uint64 { return s.Misses }

func (s CacheStats) String() string {
	out := fmt.Sprintf("mem=%d disk=%d miss=%d", s.MemHits, s.DiskHits, s.Misses)
	if s.Corrupt != 0 || s.Quarantined != 0 {
		out += fmt.Sprintf(" corrupt=%d quarantined=%d", s.Corrupt, s.Quarantined)
	}
	if s.RemoteHits != 0 || s.RemotePuts != 0 || s.RemoteErrors != 0 || s.RemoteRejects != 0 {
		out += fmt.Sprintf(" remote: hits=%d puts=%d errors=%d rejects=%d",
			s.RemoteHits, s.RemotePuts, s.RemoteErrors, s.RemoteRejects)
	}
	return out
}

// Stats snapshots the build-cache counters.
func Stats() CacheStats {
	buildMu.Lock()
	defer buildMu.Unlock()
	return stats
}

func countDiskHit() {
	buildMu.Lock()
	stats.DiskHits++
	buildMu.Unlock()
}

func countMiss() {
	buildMu.Lock()
	stats.Misses++
	buildMu.Unlock()
}

func countCorrupt() {
	buildMu.Lock()
	stats.Corrupt++
	buildMu.Unlock()
}

func countQuarantined() {
	buildMu.Lock()
	stats.Quarantined++
	buildMu.Unlock()
}

func countRemoteHit() {
	buildMu.Lock()
	stats.RemoteHits++
	buildMu.Unlock()
}

func countRemotePut() {
	buildMu.Lock()
	stats.RemotePuts++
	buildMu.Unlock()
}

func countRemoteError() {
	buildMu.Lock()
	stats.RemoteErrors++
	buildMu.Unlock()
}

func countRemoteReject() {
	buildMu.Lock()
	stats.RemoteRejects++
	buildMu.Unlock()
}

// build compiles src for cfg through the process-wide cache, layered over
// the disk-backed artifact store. The returned module is shared (the same
// pointer for the same content) and must be treated as immutable;
// instantiation state lives in cpu.Machine, not here. Failed builds are
// cached too (in memory only): identical inputs fail identically.
//
// Cancellation is deliberately stripped before the compile runs: a cache
// entry is shared by every requester of the same content, so one caller's
// cancelled context must never abort (or, worse, poison with its
// cancellation error) a compile another caller is waiting on — and cached
// failures stay input-deterministic. What survives is the context's values,
// in particular the shared scheduler's pool marker: a build reached from
// inside a RunJobs job (a suite shard) compiles without double-charging the
// worker budget for the goroutine it is already running on.
//
// The returned CacheStats is this request's own traffic — exactly one of
// {MemHits: 1}, {DiskHits: 1}, or {Misses: 1} on the non-fault paths — and
// sums across requesters to the global Stats deltas: concurrent identical
// requests singleflight into one disk hit or miss plus N-1 memory hits.
func build(ctx context.Context, src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, CacheStats, error) {
	k := Key(src, cfg)
	var mine CacheStats
	buildMu.Lock()
	e, ok := buildCache[k]
	if !ok {
		e = &buildEntry{}
		buildCache[k] = e
	} else {
		stats.MemHits++
		mine.MemHits++
	}
	buildMu.Unlock()
	e.once.Do(func() {
		// The compile fault site fires before the store is consulted, keyed
		// by the suite-provided label (workload name) or the engine name, so
		// an injected compile panic can never be masked by a warm cache.
		if ferr := fault.Check(fault.SiteCompile, buildLabel(ctx, cfg)); ferr != nil {
			e.err = ferr
			return
		}
		s := artifactStore()
		if s != nil {
			if cm, ok := s.load(k, cfg); ok {
				countDiskHit()
				e.outcome.DiskHits++
				e.cm = cm
				return
			}
		}
		// Disk missed: try the shared remote tier before paying for a
		// compile. Cancellation is stripped for the same reason it is for
		// the compile below — the fetched artifact is shared state. Any
		// remote failure (timeout, breaker open, bad payload) lands here as
		// a miss; the remote tier is an accelerator, never a dependency.
		if rc := remoteCache(); rc != nil {
			if data, ok := rc.fetch(context.WithoutCancel(ctx), k); ok {
				if cm, derr := codegen.DecodeModule(data, cfg); derr == nil {
					countRemoteHit()
					e.outcome.RemoteHits++
					e.cm = cm
					if s != nil {
						// Backfill the local store so the next process on
						// this host hits disk instead of the network. A
						// write failure only costs that future hit.
						s.saveBytes(k, data)
					}
					return
				}
				// Verified bytes that still fail to decode mean version skew
				// between fleets (trailer ok, format drift): reject and
				// negative-cache like a corrupt payload.
				rc.reject(k)
			}
		}
		countMiss()
		e.outcome.Misses++
		e.cm, e.err = buildUncached(context.WithoutCancel(ctx), src, cfg)
		if e.err == nil && (s != nil || remoteCache() != nil) {
			if data, eerr := codegen.EncodeModule(e.cm); eerr == nil {
				if s != nil {
					s.saveBytes(k, data)
				}
				if rc := remoteCache(); rc != nil {
					rc.enqueuePut(k, data)
				}
			}
		}
	})
	if mine.MemHits == 0 {
		// This requester created the entry: report the winner's outcome
		// (its own, unless it lost the once race to a faster second
		// requester — the counts still sum correctly either way).
		mine = e.outcome
	}
	if e.cm == nil && e.err == nil {
		// The entry's compile panicked: once.Do marks the entry done on the
		// way out of the unwinding, leaving both fields nil. The panicking
		// requester propagates the panic to its job boundary (JobPanicError);
		// every later requester of the same content gets this deterministic
		// error instead of a nil module.
		return nil, mine, fmt.Errorf("pipeline: build of %s panicked (poisoned cache entry)", k[:12])
	}
	return e.cm, mine, e.err
}

// Build compiles src for cfg through the shared cache.
//
// Deprecated: construct a Request and use Compile — this wrapper survives
// one release so out-of-tree callers keep compiling.
func Build(src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	return BuildContext(context.Background(), src, cfg)
}

// BuildContext is Build under a caller context.
//
// Deprecated: construct a Request and use Compile — this wrapper survives
// one release so out-of-tree callers keep compiling.
func BuildContext(ctx context.Context, src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	cm, _, err := build(ctx, src, cfg)
	return cm, err
}

// buildLabel is the compile fault site's key: the fault.WithLabel value when
// a suite layer attached one (the workload name), else the engine name.
func buildLabel(ctx context.Context, cfg *codegen.EngineConfig) string {
	if l := fault.LabelOf(ctx); l != "" {
		return l
	}
	return cfg.Name
}

// wasmSrcPrefix tags a raw wasm binary travelling through the string-keyed
// build path (Request.Wasm). The NUL bytes cannot appear in mini-C source,
// so wasm modules and source programs can never collide on a content
// address, and the cache, store, and singleflight layers need no second
// code path.
const wasmSrcPrefix = "\x00wasm\x00"

// buildUncached is the raw mini-C → engine pipeline with no caching. A
// wasmSrcPrefix-tagged src is a raw wasm binary instead: decoded,
// validated, and compiled directly, skipping the mini-C front-end.
func buildUncached(ctx context.Context, src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	if raw, ok := strings.CutPrefix(src, wasmSrcPrefix); ok {
		m, err := wasm.Decode([]byte(raw))
		if err != nil {
			return nil, fmt.Errorf("decoding wasm module: %w", err)
		}
		if err := wasm.Validate(m); err != nil {
			return nil, fmt.Errorf("validating wasm module: %w", err)
		}
		cm, err := codegen.CompileContext(ctx, m, cfg)
		if err != nil {
			return nil, err
		}
		// Raw wasm is always the wasm32 data model, whatever the engine's
		// ABI for mini-C would be: pointers handed to _start are i32.
		cm.PtrSize = 4
		return cm, nil
	}
	abi := ABIFor(cfg)
	m, err := minic.Compile(src, abi)
	if err != nil {
		return nil, err
	}
	cm, err := codegen.CompileContext(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	cm.PtrSize = abi.PtrSize
	return cm, nil
}
