package pipeline

// Remote artifact tier: a shared HTTP cache layered under the disk store, so
// a fleet of workers built from the same binary compiles each distinct
// (source × engine config) once, fleet-wide. Lookup order is memory → disk →
// remote → compile; publication is disk-first, then an async bounded-queue
// PUT to the remote so a build never waits on the network.
//
// The tier is an accelerator, never a dependency: every remote failure —
// connection refused, timeout, 5xx, corrupt payload — degrades to a plain
// cache miss. Containment is layered: each call carries a short per-attempt
// deadline ($REPRO_REMOTE_TIMEOUT), retries ride the store's shared
// capped-jittered backoff loop (retryIOCtx), fetched bytes are sha256-
// verified before they are ever decoded (bad payloads are rejected, counted,
// and negative-cached for the process), and a three-state circuit breaker
// (closed → open after N consecutive failures → half-open probe) stops a
// dead remote from charging every build its timeout.
//
// Artifacts are namespaced by the *client's* compiler fingerprint —
// /artifact/<fp>/<key> — the same generation scoping the local store uses,
// so a fleet of identical binaries shares warmth and a stale-compiler
// artifact can never cross into a newer build.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/config"
	"repro/internal/fault"
)

// maxArtifactBytes bounds a single artifact on the wire (both directions).
// Far above any real module (workload artifacts are KBs); a limit exists so
// a confused or hostile peer cannot balloon a worker or the server.
const maxArtifactBytes = 64 << 20

// putQueueDepth bounds the async publish queue. Publishes beyond it are
// dropped and counted — a slow remote costs warmth, never backpressure.
const putQueueDepth = 64

// errBreakerOpen is returned (internally) when the breaker refuses a call.
var errBreakerOpen = errors.New("pipeline: remote breaker open")

// breakerState is the circuit breaker's three states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// remoteTier is the client side of the remote artifact cache.
type remoteTier struct {
	base    string // server base URL, no trailing slash
	fp      string // this binary's compiler fingerprint (default namespace)
	timeout time.Duration
	client  *http.Client

	// Circuit breaker. now is injectable so tests drive the cooldown
	// without wall-clock sleeps.
	mu       sync.Mutex
	state    breakerState
	fails    int
	probing  bool
	openedAt time.Time
	trip     int
	cooldown time.Duration
	now      func() time.Time

	// Negative cache: fp/key pairs whose fetched payload failed
	// verification. Gates GETs only — PUTs stay allowed, so a local
	// recompile heals a corrupt remote copy.
	negMu sync.Mutex
	neg   map[string]struct{}

	// Async publish queue. ctx parents every background put; shutdown
	// (tests — a production tier lives for the process) cancels it and
	// waits on workerDone.
	putOnce    sync.Once
	putCh      chan putJob
	workerDone chan struct{}
	ctx        context.Context
	cancel     context.CancelFunc
	pending    atomic.Int64
	drops      atomic.Uint64
}

type putJob struct {
	fp   string
	key  string
	data []byte
}

// newRemoteTier builds a client for base with the given knobs; zero knob
// values select the config defaults.
func newRemoteTier(base, fp string, timeout time.Duration, trip int, cooldown time.Duration) *remoteTier {
	if timeout <= 0 {
		timeout = config.DefaultRemoteTimeout
	}
	if trip <= 0 {
		trip = config.DefaultRemoteBreakerFails
	}
	if cooldown <= 0 {
		cooldown = config.DefaultRemoteBreakerCooldown
	}
	t := &remoteTier{
		base:     strings.TrimRight(base, "/"),
		fp:       fp,
		timeout:  timeout,
		client:   &http.Client{},
		trip:     trip,
		cooldown: cooldown,
		now:      time.Now,
		neg:      map[string]struct{}{},
	}
	t.ctx, t.cancel = context.WithCancel(context.Background())
	return t
}

var (
	remoteMu  sync.Mutex
	theRemote *remoteTier
	remoteSet bool
)

// remoteCache returns the process-wide remote tier, opening it from the
// environment on first use. Nil means the tier is disabled.
func remoteCache() *remoteTier {
	remoteMu.Lock()
	defer remoteMu.Unlock()
	if !remoteSet {
		theRemote = openDefaultRemote()
		remoteSet = true
	}
	return theRemote
}

// setRemote replaces the process remote tier (tests). Passing nil disables
// the layer; the previous tier is returned for restoration.
func setRemote(t *remoteTier) *remoteTier {
	remoteMu.Lock()
	defer remoteMu.Unlock()
	prev := theRemote
	theRemote = t
	remoteSet = true
	return prev
}

var warnRemoteOnce sync.Once

// openDefaultRemote resolves the remote tier from the environment. Bad
// tuning knobs warn once and fall back to defaults — misconfigured tuning
// must not silently disable the tier, and must never fail a build.
func openDefaultRemote() *remoteTier {
	base := os.Getenv(config.EnvRemoteCache)
	switch base {
	case "", "off", "0", "none":
		return nil
	}
	var errs []error
	timeout, err := config.ParseRemoteTimeout(os.Getenv(config.EnvRemoteTimeout))
	if err != nil {
		errs = append(errs, err)
	}
	trip, err := config.ParseBreakerFails(os.Getenv(config.EnvRemoteBreakerFails))
	if err != nil {
		errs = append(errs, err)
	}
	cooldown, err := config.ParseBreakerCooldown(os.Getenv(config.EnvRemoteBreakerCooldown))
	if err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		warnRemoteOnce.Do(func() {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "%v; using default\n", e)
			}
		})
	}
	fp, err := compilerFingerprint()
	if err != nil {
		// Without a fingerprint the remote namespace is undefined; the
		// local store is disabled for the same reason.
		return nil
	}
	return newRemoteTier(base, fp, timeout, trip, cooldown)
}

// ---- circuit breaker ----

// admit reports whether a remote call may proceed. An open breaker past its
// cooldown transitions to half-open and admits exactly one probe; everyone
// else is refused until the probe reports.
func (t *remoteTier) admit() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case breakerOpen:
		if t.now().Sub(t.openedAt) < t.cooldown {
			return false
		}
		t.state = breakerHalfOpen
		t.probing = true
		return true
	case breakerHalfOpen:
		if t.probing {
			return false
		}
		t.probing = true
		return true
	}
	return true
}

// success records a completed remote call (a 404 miss counts: the remote
// answered). Any success closes the breaker.
func (t *remoteTier) success() {
	t.mu.Lock()
	t.state = breakerClosed
	t.fails = 0
	t.probing = false
	t.mu.Unlock()
}

// failure records a failed remote call. A failed half-open probe reopens
// immediately; in closed state trip consecutive failures open the breaker.
func (t *remoteTier) failure() {
	t.mu.Lock()
	t.probing = false
	t.fails++
	if t.state == breakerHalfOpen || t.fails >= t.trip {
		t.state = breakerOpen
		t.openedAt = t.now()
		t.fails = 0
	}
	t.mu.Unlock()
}

// breakerString reports the breaker state for observability. An open
// breaker whose cooldown has elapsed reads as "half-open": that is what the
// next call will find, and it lets a watcher see recovery coming without
// mutating the state machine.
func (t *remoteTier) breakerString() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == breakerOpen && t.now().Sub(t.openedAt) >= t.cooldown {
		return breakerHalfOpen.String()
	}
	return t.state.String()
}

// ---- negative cache ----

func negKey(fp, key string) string { return fp + "/" + key }

func (t *remoteTier) negCached(fp, key string) bool {
	t.negMu.Lock()
	_, ok := t.neg[negKey(fp, key)]
	t.negMu.Unlock()
	return ok
}

// reject records a payload that failed verification (or decoded as garbage
// despite a valid trailer — format skew): counted, and negative-cached so
// this process never re-fetches the poisoned key.
func (t *remoteTier) reject(key string) { t.rejectFP(t.fp, key) }

func (t *remoteTier) rejectFP(fp, key string) {
	countRemoteReject()
	t.negMu.Lock()
	t.neg[negKey(fp, key)] = struct{}{}
	t.negMu.Unlock()
}

// ---- HTTP calls ----

func (t *remoteTier) url(fp, key string) string {
	return t.base + "/artifact/" + fp + "/" + key
}

// httpGet fetches one artifact. A 404 maps to fs.ErrNotExist — the shared
// retry loop treats that as a miss, not a fault.
func (t *remoteTier) httpGet(ctx context.Context, fp, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(fp, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
		if err != nil {
			return nil, err
		}
		if len(data) > maxArtifactBytes {
			return nil, fmt.Errorf("pipeline: remote artifact %s exceeds %d bytes", key[:12], maxArtifactBytes)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, fs.ErrNotExist
	default:
		return nil, fmt.Errorf("pipeline: remote GET %s: %s", key[:12], resp.Status)
	}
}

func (t *remoteTier) httpPut(ctx context.Context, fp, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.url(fp, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("pipeline: remote PUT %s: %s", key[:12], resp.Status)
	}
	return nil
}

// ---- verified get / put (breaker + retry + verification) ----

// get fetches and verifies one artifact from namespace fp. Misses return
// fs.ErrNotExist; transport failures (after retries) count one RemoteError
// and feed the breaker; payloads failing sha256 verification are rejected,
// counted, and negative-cached, never returned.
func (t *remoteTier) get(ctx context.Context, fp, key string) ([]byte, error) {
	if t.negCached(fp, key) {
		return nil, fs.ErrNotExist
	}
	if !t.admit() {
		return nil, errBreakerOpen
	}
	var data []byte
	err := retryIOCtx(ctx, fault.SiteRemoteGet, key, ioAttempts, t.timeout, func(actx context.Context) error {
		var gerr error
		data, gerr = t.httpGet(actx, fp, key)
		return gerr
	})
	if errors.Is(err, fs.ErrNotExist) {
		t.success()
		return nil, fs.ErrNotExist
	}
	if err != nil {
		t.failure()
		countRemoteError()
		return nil, err
	}
	t.success()
	verr := fault.Check(fault.SiteRemoteVerify, key)
	if verr == nil {
		verr = codegen.VerifyArtifact(data)
	}
	if verr != nil {
		t.rejectFP(fp, key)
		return nil, fmt.Errorf("pipeline: remote artifact %s rejected: %w", key[:12], verr)
	}
	return data, nil
}

// put publishes one artifact to namespace fp through the same breaker and
// retry containment as get.
func (t *remoteTier) put(ctx context.Context, fp, key string, data []byte) error {
	if !t.admit() {
		return errBreakerOpen
	}
	err := retryIOCtx(ctx, fault.SiteRemotePut, key, ioAttempts, t.timeout, func(actx context.Context) error {
		return t.httpPut(actx, fp, key, data)
	})
	if err != nil {
		t.failure()
		countRemoteError()
		return err
	}
	t.success()
	countRemotePut()
	return nil
}

// fetch is build's read path: a verified artifact or a miss, never an error.
func (t *remoteTier) fetch(ctx context.Context, key string) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	data, err := t.get(ctx, t.fp, key)
	if err != nil {
		return nil, false
	}
	return data, true
}

// ---- async publish queue ----

// enqueuePut queues an artifact for background publication. Never blocks:
// a full queue drops the publish and counts it. The worker goroutine starts
// lazily on the first enqueue and lives for the process — it is a daemon,
// like the store's sweep machinery.
func (t *remoteTier) enqueuePut(key string, data []byte) {
	if t == nil {
		return
	}
	t.startWorker()
	t.pending.Add(1)
	select {
	case t.putCh <- putJob{fp: t.fp, key: key, data: data}:
	default:
		t.pending.Add(-1)
		t.drops.Add(1)
	}
}

func (t *remoteTier) startWorker() {
	t.putOnce.Do(func() {
		t.putCh = make(chan putJob, putQueueDepth)
		t.workerDone = make(chan struct{})
		go t.putWorker()
	})
}

func (t *remoteTier) putWorker() {
	defer close(t.workerDone)
	for {
		select {
		case <-t.ctx.Done():
			return
		case j := <-t.putCh:
			// Errors (including breaker-open) are already contained and
			// counted inside put; a failed publish only costs fleet
			// warmth. The tier's lifecycle ctx parents the call, so
			// shutdown cancels an in-flight attempt.
			t.put(t.ctx, j.fp, j.key, j.data)
			t.pending.Add(-1)
		}
	}
}

// shutdown cancels background publication and waits for the worker to exit.
// Tests call it between tier swaps so a leaked worker can never outlive its
// test; production tiers are daemons and never shut down.
func (t *remoteTier) shutdown() {
	if t == nil {
		return
	}
	t.cancel()
	t.startWorker()
	<-t.workerDone
}

// flush waits until the publish queue drains or timeout elapses, reporting
// whether it drained. Polling an atomic pending count (rather than a
// WaitGroup) keeps enqueuePut race-free against concurrent flushes.
func (t *remoteTier) flush(timeout time.Duration) bool {
	if t == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for t.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// RemoteFlush drains the remote tier's async publish queue, waiting at most
// timeout. Long-lived processes that just finished a suite call it before
// reporting totals so trailing publishes reach the fleet; it reports whether
// the queue drained. With no remote tier armed it returns true immediately.
func RemoteFlush(timeout time.Duration) bool {
	remoteMu.Lock()
	t := theRemote
	set := remoteSet
	remoteMu.Unlock()
	if !set || t == nil {
		return true
	}
	return t.flush(timeout)
}

// RemoteInfo is the remote tier's observable state for /statz and totals.
type RemoteInfo struct {
	Base       string `json:"base"`
	Breaker    string `json:"breaker"`
	PutDrops   uint64 `json:"put_drops,omitempty"`
	PutPending int64  `json:"put_pending,omitempty"`
}

// RemoteState reports the remote tier's base URL and breaker state; ok is
// false when no remote tier is configured. It never opens the tier itself:
// reporting must not change what the process is doing.
func RemoteState() (RemoteInfo, bool) {
	remoteMu.Lock()
	t := theRemote
	remoteMu.Unlock()
	if t == nil {
		return RemoteInfo{}, false
	}
	return RemoteInfo{
		Base:       t.base,
		Breaker:    t.breakerString(),
		PutDrops:   t.drops.Load(),
		PutPending: t.pending.Load(),
	}, true
}

// ---- exported client (cmd/repro-cache) ----

// Remote is an explicit client for a remote artifact cache, sharing the
// build path's breaker, retry, and verification machinery. The pipeline's
// own remote tier is configured from the environment; Remote exists for
// tools (cmd/repro-cache push/pull) that address the cache directly and
// across fingerprint namespaces.
type Remote struct {
	t *remoteTier
}

// NewRemote builds a client for base, tuning timeout and breaker from the
// environment knobs exactly like the build path. The returned client is
// independent of the process's own remote tier.
func NewRemote(base string) *Remote {
	timeout, _ := config.ParseRemoteTimeout(os.Getenv(config.EnvRemoteTimeout))
	trip, _ := config.ParseBreakerFails(os.Getenv(config.EnvRemoteBreakerFails))
	cooldown, _ := config.ParseBreakerCooldown(os.Getenv(config.EnvRemoteBreakerCooldown))
	return &Remote{t: newRemoteTier(base, "", timeout, trip, cooldown)}
}

// Get fetches and verifies one artifact from namespace fp (a compiler
// fingerprint). Misses return fs.ErrNotExist.
func (r *Remote) Get(ctx context.Context, fp, key string) ([]byte, error) {
	return r.t.get(ctx, fp, key)
}

// Put publishes one artifact to namespace fp.
func (r *Remote) Put(ctx context.Context, fp, key string, data []byte) error {
	return r.t.put(ctx, fp, key, data)
}

// Breaker reports the client's breaker state.
func (r *Remote) Breaker() string { return r.t.breakerString() }

// RemoteTotals is the server-side inventory GET /artifacts returns.
type RemoteTotals struct {
	Count        int                     `json:"count"`
	Bytes        int64                   `json:"bytes"`
	Fingerprints map[string]RemoteFPInfo `json:"fingerprints,omitempty"`
}

// RemoteFPInfo is one fingerprint generation's share of the inventory.
// Keys is only populated when the listing was requested with keys (the
// pull path needs them; totals does not).
type RemoteFPInfo struct {
	Count int      `json:"count"`
	Bytes int64    `json:"bytes"`
	Keys  []string `json:"keys,omitempty"`
}

// Totals fetches the server's artifact inventory; withKeys asks for the
// per-generation key lists (cmd/repro-cache pull).
func (r *Remote) Totals(ctx context.Context, withKeys bool) (RemoteTotals, error) {
	var out RemoteTotals
	url := r.t.base + "/artifacts"
	if withKeys {
		url += "?keys=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return out, err
	}
	resp, err := r.t.client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return out, fmt.Errorf("pipeline: remote totals: %s", resp.Status)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out)
	return out, err
}

// ---- server side ----

var (
	fpRe  = regexp.MustCompile(`^c-[0-9a-f]{16}$`)
	keyRe = regexp.MustCompile(`^[0-9a-f]{64}$`)
)

// artifactHandler serves the shared cache: per-fingerprint diskStores under
// one root, reusing the local store's atomic publication, retry loop, and
// LRU eviction — the server is just a disk store with an HTTP front.
type artifactHandler struct {
	root   string // "" = disabled; every route answers 503
	budget int64  // per-generation store size budget

	mu     sync.Mutex
	stores map[string]*diskStore
	mux    *http.ServeMux
}

// ArtifactHandler serves GET/PUT /artifact/{fp}/{key} and GET /artifacts
// over the environment-configured cache location ($REPRO_CACHE_DIR
// semantics, including "off" to disable — a disabled store answers 503 so a
// misconfigured server is loud, not silently empty).
func ArtifactHandler() http.Handler {
	root := os.Getenv(cacheDirEnv)
	switch root {
	case "off", "0", "none":
		return ArtifactHandlerAt("", 0)
	case "":
		base, err := os.UserCacheDir()
		if err != nil {
			return ArtifactHandlerAt("", 0)
		}
		root = filepath.Join(base, "repro-wasm", "artifacts")
	}
	budget := int64(defaultMaxBytes)
	if n, err := parseCacheMax(os.Getenv(cacheMaxEnv)); err == nil && n > 0 {
		budget = n
	}
	return ArtifactHandlerAt(root, budget)
}

// ArtifactHandlerAt serves the artifact routes over an explicit root
// (tests, embedders). An empty root disables the store: every route answers
// 503. A zero budget selects the default store budget.
func ArtifactHandlerAt(root string, budget int64) http.Handler {
	if budget <= 0 {
		budget = defaultMaxBytes
	}
	h := &artifactHandler{root: root, budget: budget, stores: map[string]*diskStore{}}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("GET /artifact/{fp}/{key}", h.get)
	h.mux.HandleFunc("PUT /artifact/{fp}/{key}", h.put)
	h.mux.HandleFunc("GET /artifacts", h.list)
	return h
}

func (h *artifactHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// storeFor opens (once) the diskStore for one fingerprint generation.
func (h *artifactHandler) storeFor(fp string) *diskStore {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.stores[fp]; ok {
		return s
	}
	s := openStore(filepath.Join(h.root, fp), h.budget)
	if s != nil {
		h.stores[fp] = s
	}
	return s
}

// params validates the {fp}/{key} path segments; a false return has already
// written the error response.
func (h *artifactHandler) params(w http.ResponseWriter, r *http.Request) (fp, key string, ok bool) {
	if h.root == "" {
		http.Error(w, "artifact store disabled", http.StatusServiceUnavailable)
		return "", "", false
	}
	fp, key = r.PathValue("fp"), r.PathValue("key")
	if !fpRe.MatchString(fp) || !keyRe.MatchString(key) {
		http.Error(w, "bad artifact address", http.StatusBadRequest)
		return "", "", false
	}
	return fp, key, true
}

func (h *artifactHandler) get(w http.ResponseWriter, r *http.Request) {
	fp, key, ok := h.params(w, r)
	if !ok {
		return
	}
	s := h.storeFor(fp)
	if s == nil {
		http.Error(w, "artifact store unavailable", http.StatusServiceUnavailable)
		return
	}
	data, ok := s.loadBytes(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (h *artifactHandler) put(w http.ResponseWriter, r *http.Request) {
	fp, key, ok := h.params(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		http.Error(w, "artifact too large or unreadable", http.StatusBadRequest)
		return
	}
	// The server never trusts a payload: a worker with a bad disk or a
	// confused client must not poison the fleet. Integrity only — the key
	// binds source × config, which the server cannot recompute.
	if err := codegen.VerifyArtifact(data); err != nil {
		http.Error(w, fmt.Sprintf("artifact rejected: %v", err), http.StatusBadRequest)
		return
	}
	s := h.storeFor(fp)
	if s == nil {
		http.Error(w, "artifact store unavailable", http.StatusServiceUnavailable)
		return
	}
	if err := s.saveBytes(key, data); err != nil {
		http.Error(w, "artifact store write failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *artifactHandler) list(w http.ResponseWriter, r *http.Request) {
	if h.root == "" {
		http.Error(w, "artifact store disabled", http.StatusServiceUnavailable)
		return
	}
	withKeys := r.URL.Query().Get("keys") != ""
	out := RemoteTotals{Fingerprints: map[string]RemoteFPInfo{}}
	gens, err := os.ReadDir(h.root)
	if err == nil {
		for _, gen := range gens {
			if !gen.IsDir() || !fpRe.MatchString(gen.Name()) {
				continue
			}
			s := h.storeFor(gen.Name())
			if s == nil {
				continue
			}
			s.evictMu.Lock()
			files, serr := s.scan(time.Now())
			s.evictMu.Unlock()
			if serr != nil {
				continue
			}
			var info RemoteFPInfo
			for _, f := range files {
				info.Count++
				info.Bytes += f.size
				if withKeys {
					info.Keys = append(info.Keys, strings.TrimSuffix(filepath.Base(f.path), artifactExt))
				}
			}
			out.Fingerprints[gen.Name()] = info
			out.Count += info.Count
			out.Bytes += info.Bytes
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
