package pipeline

// Internal tests for the remote artifact tier: fleet warmth (a second
// worker with an empty local store resolves builds from the remote without
// compiling), every failure shape degrading to a local build (dead remote,
// hung remote, corrupt payload), the circuit breaker's three states, and
// the acceptance-shaped degraded-suite run whose results must be
// byte-identical to a run with no remote at all.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/fault"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Now().UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// withTestRemote serves an artifact cache from a temp root and points the
// process's remote tier at it. Returns the tier, the server root (to plant
// or inspect server-side artifacts), and the test server for handler-level
// poking. State is restored on cleanup.
func withTestRemote(t *testing.T, trip int, cooldown time.Duration) (*remoteTier, string, *httptest.Server) {
	t.Helper()
	root := t.TempDir()
	ts := httptest.NewServer(ArtifactHandlerAt(root, 0))
	t.Cleanup(ts.Close)
	fp, err := compilerFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRemoteTier(ts.URL, fp, time.Second, trip, cooldown)
	prev := setRemote(rt)
	// Shutdown before restoring: the async publish worker must not outlive
	// the test (it reads the swappable retry clock and fault registry).
	t.Cleanup(func() {
		rt.shutdown()
		setRemote(prev)
	})
	return rt, root, ts
}

// remoteProbeSrc is a fixed probe for tests that never touch the global
// build cache (handler-level tests using buildUncached).
const remoteProbeSrc = `
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 40; i++) { acc += i * 7; }
  print_int(acc);
  print_nl();
  return 0;
}`

// remoteSrcNonce makes uniqueRemoteSrc keys process-unique, so repeated
// runs of one test in a single process (-count=2) never resolve from the
// global memory cache warmed by the previous run.
var remoteSrcNonce atomic.Int64

func uniqueRemoteSrc(seed int) string {
	n := remoteSrcNonce.Add(1)
	return fmt.Sprintf(`
int main() {
  int i; int acc;
  acc = %d;
  for (i = 0; i < 40; i++) { acc += i * %d; }
  print_int(acc);
  print_nl();
  return 0;
}`, int(n)*1000+seed, seed+2)
}

// TestRemoteWarmsSecondWorker is the tier's reason to exist: worker A
// compiles once and publishes; worker B — an empty local store, an empty
// memory cache — resolves the same build from the remote with zero
// compiles, backfills its local store, and executes bit-identically.
func TestRemoteWarmsSecondWorker(t *testing.T) {
	rt, _, _ := withTestRemote(t, 3, time.Minute)
	withTestStore(t, defaultMaxBytes)
	cfg := codegen.Chrome()
	src := uniqueRemoteSrc(0)
	key := Key(src, cfg)

	before := Stats()
	cmA, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.flush(5 * time.Second) {
		t.Fatal("publish queue did not drain")
	}
	d := Stats().Sub(before)
	if d.Misses != 1 || d.RemotePuts != 1 || d.RemoteErrors != 0 {
		t.Fatalf("worker A should compile once and publish once: %v", d)
	}

	// Worker B: fresh local store, no memory entry, same remote.
	withTestStore(t, defaultMaxBytes)
	dropMemEntry(key)
	before = Stats()
	cmB, err := Build(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d = Stats().Sub(before)
	if d.RemoteHits != 1 || d.Misses != 0 || d.DiskHits != 0 {
		t.Fatalf("worker B should resolve from the remote without compiling: %v", d)
	}

	o1, i1, c1 := execCounters(t, cmA)
	o2, i2, c2 := execCounters(t, cmB)
	if o1 != o2 || i1 != i2 || c1 != c2 {
		t.Errorf("remote-loaded module diverged: out %q/%q insts %d/%d cycles %d/%d", o1, o2, i1, i2, c1, c2)
	}

	// The remote hit backfilled worker B's local store: the next cold
	// build hits disk, not the network.
	dropMemEntry(key)
	before = Stats()
	if _, err := Build(src, cfg); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.DiskHits != 1 || d.RemoteHits != 0 {
		t.Errorf("remote hit did not backfill the local store: %v", d)
	}
}

// TestRemoteDeadServerDegradesToCompile: a connection-refused remote costs
// RemoteErrors, never a build failure, and trips the breaker after the
// configured consecutive failures — after which builds skip the remote
// without charging further errors.
func TestRemoteDeadServerDegradesToCompile(t *testing.T) {
	rt, _, ts := withTestRemote(t, 2, time.Minute)
	clock := newFakeClock()
	rt.now = clock.Now
	ts.Close() // connection refused from the first call
	withTestStore(t, defaultMaxBytes)
	hookRetryClock(t, func(int64) int64 { return 0 })
	cfg := codegen.Native()

	srcs := make([]string, 3)
	for i := range srcs {
		srcs[i] = uniqueRemoteSrc(i)
	}
	before := Stats()
	for _, src := range srcs {
		cm, err := Build(src, cfg)
		if err != nil || cm == nil {
			t.Fatalf("dead remote failed a build: %v", err)
		}
		// Drain the async publish between builds so the failure sequence
		// is deterministic: fetch fails, then its put fails.
		rt.flush(5 * time.Second)
	}
	d := Stats().Sub(before)
	if d.Misses != 3 {
		t.Fatalf("all three builds should compile locally: %v", d)
	}
	// Build 1's fetch and put fail (two consecutive failures, tripping the
	// trip=2 breaker); every later call is refused admission and charged
	// nothing.
	if d.RemoteErrors != 2 {
		t.Errorf("RemoteErrors = %d, want 2 (breaker opens after trip=2, later calls refused)", d.RemoteErrors)
	}
	if got := rt.breakerString(); got != "open" {
		t.Errorf("breaker = %q, want open", got)
	}

	// Cooldown elapses: the breaker reads half-open (the next call will
	// probe), and a successful probe closes it.
	clock.Advance(2 * time.Minute)
	if got := rt.breakerString(); got != "half-open" {
		t.Errorf("breaker after cooldown = %q, want half-open", got)
	}
}

// TestRemoteCorruptPayloadRejected: a remote artifact that fails sha256
// verification is rejected (never decoded into the build), counted, and
// negative-cached; the local recompile republishes, healing the remote via
// the still-allowed PUT path.
func TestRemoteCorruptPayloadRejected(t *testing.T) {
	rt, root, _ := withTestRemote(t, 3, time.Minute)
	withTestStore(t, defaultMaxBytes)
	cfg := codegen.Firefox()
	src := uniqueRemoteSrc(5)
	key := Key(src, cfg)

	// Plant a corrupt artifact on the server, bypassing its PUT
	// verification (a rotted disk, not a bad client).
	p := filepath.Join(root, rt.fp, key[:2], key+artifactExt)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("RPAM garbage that is not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := Stats()
	cm, err := Build(src, cfg)
	if err != nil {
		t.Fatalf("corrupt remote payload failed the build: %v", err)
	}
	if !rt.flush(5 * time.Second) {
		t.Fatal("publish queue did not drain")
	}
	d := Stats().Sub(before)
	if d.RemoteRejects != 1 || d.RemoteHits != 0 || d.Misses != 1 {
		t.Fatalf("corrupt payload must reject and recompile: %v", d)
	}
	o, _, _ := execCounters(t, cm)
	if o == "" {
		t.Error("recompiled module produced no output")
	}

	// The async PUT healed the remote copy.
	healed, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if codegen.VerifyArtifact(healed) != nil {
		t.Error("recompile did not heal the corrupt remote artifact")
	}

	// The key is negative-cached: a later cold build in this process does
	// not trust the (now healed) remote copy and recompiles instead.
	withTestStore(t, defaultMaxBytes)
	dropMemEntry(key)
	before = Stats()
	if _, err := Build(src, cfg); err != nil {
		t.Fatal(err)
	}
	d = Stats().Sub(before)
	if d.RemoteHits != 0 || d.Misses != 1 || d.RemoteRejects != 0 {
		t.Errorf("negative cache must gate re-fetches of a poisoned key: %v", d)
	}
}

// TestRemoteHangContainedByDeadline: an injected hang at remote.get is cut
// off by the per-attempt deadline — the build completes locally in attempt
// timeouts, not the hang's duration.
func TestRemoteHangContainedByDeadline(t *testing.T) {
	rt, _, _ := withTestRemote(t, 3, time.Minute)
	rt.timeout = 50 * time.Millisecond
	withTestStore(t, defaultMaxBytes)
	hookRetryClock(t, func(int64) int64 { return 0 })
	disarm, err := fault.ArmSpec("remote.get=delay:*:30s")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	start := time.Now()
	cm, err := Build(uniqueRemoteSrc(9), codegen.Chrome())
	elapsed := time.Since(start)
	if err != nil || cm == nil {
		t.Fatalf("hung remote failed the build: %v", err)
	}
	// Compilation time dominates; the remote cost at most
	// ioAttempts × 50ms, nowhere near the 30s hang.
	if elapsed > 10*time.Second {
		t.Errorf("hang was not contained by the deadline: build took %v", elapsed)
	}
	if d, _ := fault.Fired(fault.SiteRemoteGet), fault.Hits(fault.SiteRemoteGet); d == 0 {
		t.Error("hang fault never fired; test exercised nothing")
	}
}

// TestDegradedRemoteSuite is the acceptance shape: a pre-warmed remote goes
// bad mid-suite (errors, then a corrupt payload) — the suite completes with
// results byte-identical to a run with no remote at all, the degradation is
// visible in RemoteErrors/RemoteRejects, and the breaker is observed open
// and then half-open on the way to recovery.
func TestDegradedRemoteSuite(t *testing.T) {
	cfg := codegen.Chrome()
	srcs := make([]string, 5)
	keys := make([]string, 5)
	for i := range srcs {
		srcs[i] = uniqueRemoteSrc(i)
		keys[i] = Key(srcs[i], cfg)
	}

	// Baseline: no remote tier at all.
	type run struct {
		out          string
		insts, cycls uint64
	}
	baseline := make([]run, len(srcs))
	prevRemote := setRemote(nil)
	t.Cleanup(func() { setRemote(prevRemote) })
	withTestStore(t, defaultMaxBytes)
	for i, src := range srcs {
		dropMemEntry(keys[i])
		cm, err := Build(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i].out, baseline[i].insts, baseline[i].cycls = execCounters(t, cm)
	}

	// Pre-warm a remote from a healthy worker pass. trip=1 so the first
	// failed call opens the breaker: with the fake clock frozen, the open
	// breaker then refuses every later call — including the async
	// publishes, whose successes would otherwise close it mid-suite and
	// race the state observations below.
	rt, _, _ := withTestRemote(t, 1, time.Minute)
	clock := newFakeClock()
	rt.now = clock.Now
	withTestStore(t, defaultMaxBytes)
	for i, src := range srcs {
		dropMemEntry(keys[i])
		if _, err := Build(src, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.flush(5 * time.Second) {
		t.Fatal("publish queue did not drain")
	}

	// Degraded pass: empty local store and memory, remote armed to fail —
	// one fetch's worth of get errors (tripping the trip=1 breaker on the
	// first build) and one corrupt payload at the post-recovery verify.
	hookRetryClock(t, func(int64) int64 { return 0 })
	disarm, err := fault.ArmSpec(fmt.Sprintf("remote.get=error:%d,remote.verify=error:1", ioAttempts))
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	withTestStore(t, defaultMaxBytes)
	before := Stats()

	var sawOpen, sawHalfOpen bool
	degraded := make([]run, len(srcs))
	for i, src := range srcs {
		dropMemEntry(keys[i])
		if i == 3 {
			// Cooldown elapses mid-suite: the breaker must be observed
			// half-open before the probe that closes it. Drain the publish
			// queue first so a queued PUT cannot probe (and close the
			// breaker) between the advance and the observation.
			if !rt.flush(5 * time.Second) {
				t.Fatal("publish queue did not drain before cooldown advance")
			}
			clock.Advance(2 * time.Minute)
		}
		switch rt.breakerString() {
		case "open":
			sawOpen = true
		case "half-open":
			sawHalfOpen = true
		}
		cm, err := Build(src, cfg)
		if err != nil {
			t.Fatalf("degraded suite run %d failed: %v", i, err)
		}
		degraded[i].out, degraded[i].insts, degraded[i].cycls = execCounters(t, cm)
	}

	for i := range srcs {
		if degraded[i] != baseline[i] {
			t.Errorf("run %d diverged under remote degradation: %+v vs baseline %+v", i, degraded[i], baseline[i])
		}
	}
	d := Stats().Sub(before)
	if d.RemoteErrors == 0 {
		t.Error("degraded suite recorded no RemoteErrors; faults never bit")
	}
	if d.RemoteRejects == 0 {
		t.Error("degraded suite recorded no RemoteRejects; corrupt payload never bit")
	}
	if !sawOpen {
		t.Error("breaker was never observed open")
	}
	if !sawHalfOpen {
		t.Error("breaker was never observed half-open")
	}
	if got := rt.breakerString(); got != "closed" {
		t.Errorf("breaker after recovery = %q, want closed", got)
	}
	// Degradation is observable but not fatal: every build above returned
	// a working module, and at least the post-recovery tail hit the remote.
	if d.RemoteHits == 0 {
		t.Error("no RemoteHits after breaker recovery; the warm remote was never used")
	}
}

// TestArtifactHandlerValidation pins the server's contract: malformed
// addresses 400, missing artifacts 404, corrupt payloads 400 and are never
// stored, a disabled store answers 503, and a valid round trip survives
// byte-identically and shows up in the inventory.
func TestArtifactHandlerValidation(t *testing.T) {
	root := t.TempDir()
	ts := httptest.NewServer(ArtifactHandlerAt(root, 0))
	defer ts.Close()
	client := ts.Client()

	const fp = "c-0123456789abcdef"
	key := Key(remoteProbeSrc, codegen.Native())

	do := func(method, url string, body []byte) *http.Response {
		t.Helper()
		var req *http.Request
		var err error
		if body != nil {
			req, err = http.NewRequest(method, url, bytes.NewReader(body))
		} else {
			req, err = http.NewRequest(method, url, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Malformed addresses.
	for _, url := range []string{
		ts.URL + "/artifact/not-a-fp/" + key,
		ts.URL + "/artifact/" + fp + "/nothex",
		ts.URL + "/artifact/" + fp + "/" + key[:40],
	} {
		if resp := do(http.MethodGet, url, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", url, resp.StatusCode)
		}
	}

	// Miss.
	if resp := do(http.MethodGet, ts.URL+"/artifact/"+fp+"/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing artifact GET = %d, want 404", resp.StatusCode)
	}

	// Corrupt PUT is rejected and not stored.
	if resp := do(http.MethodPut, ts.URL+"/artifact/"+fp+"/"+key, []byte("not an artifact")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt PUT = %d, want 400", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(root, fp, key[:2], key+artifactExt)); !os.IsNotExist(err) {
		t.Error("rejected payload reached the store")
	}

	// Valid round trip.
	cm, err := buildUncached(context.Background(), remoteProbeSrc, codegen.Native())
	if err != nil {
		t.Fatal(err)
	}
	data, err := codegen.EncodeModule(cm)
	if err != nil {
		t.Fatal(err)
	}
	if resp := do(http.MethodPut, ts.URL+"/artifact/"+fp+"/"+key, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT = %d, want 204", resp.StatusCode)
	}
	r := NewRemote(ts.URL)
	got, err := r.Get(context.Background(), fp, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Error("artifact did not round trip byte-identically")
	}
	inv, err := r.Totals(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Count != 1 || inv.Fingerprints[fp].Count != 1 || len(inv.Fingerprints[fp].Keys) != 1 {
		t.Errorf("inventory after one PUT: %+v", inv)
	}

	// Disabled store: every route answers 503.
	off := httptest.NewServer(ArtifactHandlerAt("", 0))
	defer off.Close()
	for _, probe := range []struct{ method, url string }{
		{http.MethodGet, off.URL + "/artifact/" + fp + "/" + key},
		{http.MethodPut, off.URL + "/artifact/" + fp + "/" + key},
		{http.MethodGet, off.URL + "/artifacts"},
	} {
		if resp := do(probe.method, probe.url, nil); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s with disabled store = %d, want 503", probe.method, probe.url, resp.StatusCode)
		}
	}
}

// TestRemotePutQueueDropsWhenFull: a full publish queue drops (and counts)
// instead of blocking the enqueuer.
func TestRemotePutQueueDropsWhenFull(t *testing.T) {
	// A tier whose put worker is wedged: point it at a server that never
	// responds within the timeout, then overfill the queue.
	blocked := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer slow.Close()
	defer close(blocked)
	fp, _ := compilerFingerprint()
	rt := newRemoteTier(slow.URL, fp, 50*time.Millisecond, 1000, time.Minute)
	// The wedged worker must not outlive the test and race later tests'
	// retry-clock hooks.
	t.Cleanup(rt.shutdown)

	payload := []byte("x")
	for i := 0; i < putQueueDepth+16; i++ {
		rt.enqueuePut(fmt.Sprintf("%064d", i), payload)
	}
	if rt.drops.Load() == 0 {
		t.Error("overfilled queue recorded no drops")
	}
	// The enqueuers never blocked (we got here); pending is bounded by the
	// queue depth plus the one the worker holds.
	if p := rt.pending.Load(); p > putQueueDepth+1 {
		t.Errorf("pending = %d, want <= %d", p, putQueueDepth+1)
	}
}
