package pipeline

// Internal tests for the disk-backed artifact store: every damage shape a
// shared cache directory can accumulate — truncation, bit flips, stale
// format versions, concurrent writers — must read as a clean miss that
// recompiles and republishes, never as an error or a wrong module, and the
// recompiled module must be bit-identical in execution to an uncached build.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codegen"
)

const storeProbeSrc = `
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 50; i++) { acc += i * 3; }
  print_int(acc);
  print_nl();
  return 0;
}`

// withTestStore points the process at a fresh store in a temp dir and wipes
// the in-memory cache entries for the probe keys, so every Build in the
// test exercises the disk path. State is restored on cleanup.
func withTestStore(t *testing.T, maxBytes int64) *diskStore {
	t.Helper()
	s := openStore(filepath.Join(t.TempDir(), "artifacts"), maxBytes)
	if s == nil {
		t.Fatal("openStore failed in temp dir")
	}
	prev := setStore(s)
	t.Cleanup(func() { setStore(prev) })
	return s
}

// dropMemEntry evicts one key from the in-memory layer so the next Build
// goes back to disk.
func dropMemEntry(key string) {
	buildMu.Lock()
	delete(buildCache, key)
	buildMu.Unlock()
}

// execCounters runs cm in a fresh kernel and returns the retired
// instruction and cycle counters.
func execCounters(t *testing.T, cm *codegen.CompiledModule) (string, uint64, uint64) {
	t.Helper()
	res, err := Exec(cm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Proc.Inst.FlushCycles()
	c := res.Proc.Inst.Counters
	return res.Stdout, c.Instructions, c.Cycles
}

// TestStoreRoundTripBitIdentical checks a disk-loaded module executes
// bit-identically to the uncached compile it was stored from.
func TestStoreRoundTripBitIdentical(t *testing.T) {
	withTestStore(t, defaultMaxBytes)
	cfg := codegen.Chrome()
	key := Key(storeProbeSrc, cfg)

	fresh, err := Build(storeProbeSrc, cfg) // miss: compiles and publishes
	if err != nil {
		t.Fatal(err)
	}
	dropMemEntry(key)
	before := Stats()
	loaded, err := Build(storeProbeSrc, cfg) // disk hit
	if err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.DiskHits != 1 || d.Misses != 0 {
		t.Errorf("expected exactly one disk hit, got %v", d)
	}
	if loaded == fresh {
		t.Fatal("expected a distinct module instance from the disk layer")
	}
	o1, i1, c1 := execCounters(t, fresh)
	o2, i2, c2 := execCounters(t, loaded)
	if o1 != o2 || i1 != i2 || c1 != c2 {
		t.Errorf("disk-loaded module diverged: out %q/%q insts %d/%d cycles %d/%d", o1, o2, i1, i2, c1, c2)
	}
}

// corruptionCase mutates a stored artifact in place.
type corruptionCase struct {
	name   string
	mutate func(t *testing.T, path string)
}

// TestStoreCorruptionFallsBackToRecompile checks each damage shape falls
// back to a silent recompile: Build returns a working module and no error,
// a miss is counted, and execution counters match the clean build exactly.
func TestStoreCorruptionFallsBackToRecompile(t *testing.T) {
	cfg := codegen.Firefox()
	key := Key(storeProbeSrc, cfg)

	// Reference counters from a store-less build.
	prev := setStore(nil)
	t.Cleanup(func() { setStore(prev) })
	ref, err := buildUncached(context.Background(), storeProbeSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refOut, refInsts, refCycles := execCounters(t, ref)

	cases := []corruptionCase{
		{"truncated", func(t *testing.T, p string) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, p string) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x04
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-version", func(t *testing.T, p string) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[4] = byte(codegen.ArtifactVersion + 7)
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, p string) {
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := withTestStore(t, defaultMaxBytes)
			dropMemEntry(key)                                    // force the publish path against this store
			if _, err := Build(storeProbeSrc, cfg); err != nil { // publish clean artifact
				t.Fatal(err)
			}
			p := s.path(key)
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("artifact not published: %v", err)
			}
			tc.mutate(t, p)
			dropMemEntry(key)

			before := Stats()
			cm, err := Build(storeProbeSrc, cfg)
			if err != nil {
				t.Fatalf("corrupt artifact surfaced an error: %v", err)
			}
			d := Stats().Sub(before)
			if d.Misses != 1 || d.DiskHits != 0 {
				t.Errorf("damage must count as a miss: %v", d)
			}
			out, insts, cycles := execCounters(t, cm)
			if out != refOut || insts != refInsts || cycles != refCycles {
				t.Errorf("recompiled module not bit-identical to uncached build: out %q/%q insts %d/%d cycles %d/%d",
					out, refOut, insts, refInsts, cycles, refCycles)
			}
			// The recompile republishes a clean artifact over the damage.
			dropMemEntry(key)
			before = Stats()
			if _, err := Build(storeProbeSrc, cfg); err != nil {
				t.Fatal(err)
			}
			if d := Stats().Sub(before); d.DiskHits != 1 {
				t.Errorf("recompile did not republish a readable artifact: %v", d)
			}
		})
	}
}

// TestStoreConcurrentWriters hammers one key from many goroutines that all
// bypass the in-memory layer (fresh entries each round), so disk loads,
// saves, and renames race. Every returned module must work; nothing may
// error.
func TestStoreConcurrentWriters(t *testing.T) {
	withTestStore(t, defaultMaxBytes)
	cfg := codegen.Native()
	key := Key(storeProbeSrc, cfg)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cm, err := Build(storeProbeSrc, cfg)
				if err != nil {
					errs <- err
					return
				}
				if _, ok := cm.FindExport("_start"); !ok {
					errs <- fmt.Errorf("module missing _start")
					return
				}
				dropMemEntry(key)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The survivor on disk must be a valid artifact.
	dropMemEntry(key)
	before := Stats()
	if _, err := Build(storeProbeSrc, cfg); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.DiskHits != 1 {
		t.Errorf("surviving artifact unreadable after writer race: %v", d)
	}
}

// TestFingerprintPruning checks old compiler-generation directories are
// pruned oldest-first while the active generation and the most recent
// others survive.
func TestFingerprintPruning(t *testing.T) {
	root := t.TempDir()
	const active = "c-deadbeefdeadbeef"
	if err := os.MkdirAll(filepath.Join(root, active), 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keepFingerprints+3; i++ {
		name := fmt.Sprintf("c-%016x", i)
		p := filepath.Join(root, name)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		// Monotonic mtimes: generation i is older than i+1.
		mt := time.Now().Add(-time.Duration(keepFingerprints+4-i) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	pruneFingerprints(root, active)
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != keepFingerprints {
		t.Fatalf("kept %d generations %v, want %d", len(names), names, keepFingerprints)
	}
	keep := map[string]bool{active: true}
	for i := keepFingerprints + 3 - (keepFingerprints - 1); i < keepFingerprints+3; i++ {
		keep[fmt.Sprintf("c-%016x", i)] = true
	}
	for _, n := range names {
		if !keep[n] {
			t.Errorf("generation %s should have been pruned (survivors %v)", n, names)
		}
	}
}

// TestCompilerFingerprintStable checks the fingerprint is deterministic
// within one process (it keys the store root).
func TestCompilerFingerprintStable(t *testing.T) {
	a, err := compilerFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := compilerFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != len("c-")+16 {
		t.Errorf("fingerprint unstable or malformed: %q vs %q", a, b)
	}
}

// TestStoreEvictionBoundsSize checks the LRU sweep keeps the store under
// its byte budget and prefers evicting the least-recently-used artifacts.
func TestStoreEvictionBoundsSize(t *testing.T) {
	// A tiny budget: every artifact for this source is ~10-60 KB, so a
	// 64 KB budget forces eviction after a couple of publishes.
	s := withTestStore(t, 64<<10)
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("int main() { print_int(%d); print_nl(); return 0; }", i*1000)
	}
	for _, src := range srcs {
		if _, err := Build(src, codegen.Native()); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	var count int
	err := filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == artifactExt {
			total += info.Size()
			count++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total > 64<<10 {
		t.Errorf("store holds %d bytes, budget 64 KiB", total)
	}
	if count == 0 {
		t.Error("eviction removed everything; most-recent artifacts should survive")
	}
	// The most recently written artifact must still be loadable.
	last := Key(srcs[len(srcs)-1], codegen.Native())
	dropMemEntry(last)
	before := Stats()
	if _, err := Build(srcs[len(srcs)-1], codegen.Native()); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.DiskHits != 1 {
		t.Errorf("most recent artifact was evicted: %v", d)
	}
}

// TestStoreInspectAndGC pins the cmd/repro-cache surface: ListArtifacts
// reports every stored artifact LRU-first, and GCStore removes exactly the
// oldest entries needed to reach the target.
func TestStoreInspectAndGC(t *testing.T) {
	withTestStore(t, 1<<30)

	var keys []string
	var sizes = map[string]int64{}
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("%s\n// inspect variant %d\n", storeProbeSrc, i)
		cfg := codegen.Chrome()
		if _, err := Build(src, cfg); err != nil {
			t.Fatal(err)
		}
		k := Key(src, cfg)
		keys = append(keys, k)
		// Spread mtimes so LRU order is unambiguous, oldest = keys[0].
		p := theStore.path(k)
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("artifact %d not on disk: %v", i, err)
		}
		sizes[k] = info.Size()
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(p, mt, mt)
	}

	arts, err := ListArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(keys) {
		t.Fatalf("ListArtifacts found %d artifacts, want %d", len(arts), len(keys))
	}
	for i, a := range arts {
		if a.Key != keys[i] {
			t.Errorf("entry %d: key %s, want %s (LRU-first order)", i, a.Key, keys[i])
		}
		if a.Size != sizes[keys[i]] {
			t.Errorf("entry %d: size %d, want %d", i, a.Size, sizes[keys[i]])
		}
	}
	if dir, ok := StoreDir(); !ok || dir != theStore.dir {
		t.Errorf("StoreDir = %q, %v; want %q, true", dir, ok, theStore.dir)
	}

	// GC down to the two newest artifacts' total.
	target := sizes[keys[2]] + sizes[keys[3]]
	removed, freed, err := GCStore(target)
	if err != nil {
		t.Fatal(err)
	}
	wantFreed := sizes[keys[0]] + sizes[keys[1]]
	if removed != 2 || freed != wantFreed {
		t.Fatalf("GCStore removed %d/%d bytes, want 2/%d", removed, freed, wantFreed)
	}
	arts, err = ListArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 || arts[0].Key != keys[2] || arts[1].Key != keys[3] {
		t.Fatalf("after GC: %d artifacts left, oldest victims must go first", len(arts))
	}

	// The evicted builds are recoverable: a rebuild recompiles and
	// republishes under the same key.
	dropMemEntry(keys[0])
	src0 := fmt.Sprintf("%s\n// inspect variant %d\n", storeProbeSrc, 0)
	if _, err := Build(src0, codegen.Chrome()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(theStore.path(keys[0])); err != nil {
		t.Errorf("evicted artifact not republished after rebuild: %v", err)
	}
}

// TestGCReclaimsStaleTemps checks the explicit GC pass removes orphaned
// temp files old enough to be from a dead writer, but not fresh ones.
func TestGCReclaimsStaleTemps(t *testing.T) {
	s := withTestStore(t, 1<<30)
	sub := filepath.Join(s.dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, ".tmp-stale")
	fresh := filepath.Join(sub, ".tmp-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	os.Chtimes(stale, old, old)

	if _, _, err := GCStore(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (possible in-flight writer) must survive GC")
	}
}

// TestSweepLockElectsOneSweeper pins the cross-process sweep coordination:
// while another process holds the sweep sentinel, this process's
// publish-path eviction skips the sweep entirely (no files are removed even
// far over budget), and once the sentinel is released the next publish
// sweeps as usual.
func TestSweepLockElectsOneSweeper(t *testing.T) {
	// A 1-byte budget makes every publish want to sweep.
	s := withTestStore(t, 1)

	// Simulate a concurrent process mid-sweep: a fresh sentinel at the
	// store root.
	lock := filepath.Join(s.dir, sweepLockName)
	if err := os.WriteFile(lock, []byte("424242\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	srcs := []string{
		"int main() { print_int(111); print_nl(); return 0; }",
		"int main() { print_int(222); print_nl(); return 0; }",
	}
	for _, src := range srcs {
		if _, err := Build(src, codegen.Native()); err != nil {
			t.Fatal(err)
		}
	}
	count := func() (n int) {
		files, err := s.scan(time.Now())
		if err != nil {
			t.Fatal(err)
		}
		return len(files)
	}
	if got := count(); got != len(srcs) {
		t.Fatalf("%d artifacts on disk with sweep locked elsewhere, want %d (sweep must be skipped)", got, len(srcs))
	}

	// Release the sentinel: the next publish elects this process and
	// sweeps the store back under its (1-byte) budget.
	if err := os.Remove(lock); err != nil {
		t.Fatal(err)
	}
	if _, err := Build("int main() { print_int(333); print_nl(); return 0; }", codegen.Native()); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 0 {
		t.Errorf("%d artifacts survived an unlocked sweep under a 1-byte budget, want 0", got)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Error("sweep sentinel not released after the sweep")
	}
}

// TestSweepLockStaleSentinelIsStolen pins crash recovery: a sentinel older
// than staleSweepLockAge (a sweeper that died mid-walk) does not disable
// eviction — the next publish steals it and sweeps.
func TestSweepLockStaleSentinelIsStolen(t *testing.T) {
	s := withTestStore(t, 1)

	lock := filepath.Join(s.dir, sweepLockName)
	if err := os.WriteFile(lock, []byte("424242\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleSweepLockAge)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := Build("int main() { print_int(444); print_nl(); return 0; }", codegen.Native()); err != nil {
		t.Fatal(err)
	}
	files, err := s.scan(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("%d artifacts survived: stale sentinel was not stolen", len(files))
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Error("stolen sentinel not released after the sweep")
	}
}

// TestTryLockSweepMutualExclusion pins the sentinel protocol itself: one
// winner among concurrent claimants, release enables the next claim.
func TestTryLockSweepMutualExclusion(t *testing.T) {
	s := withTestStore(t, 1<<30)
	now := time.Now()
	if !s.tryLockSweep(now) {
		t.Fatal("first claim failed")
	}
	if s.tryLockSweep(now) {
		t.Fatal("second claim succeeded while held")
	}
	s.unlockSweep()
	if !s.tryLockSweep(now) {
		t.Fatal("claim after release failed")
	}
	s.unlockSweep()
}

// TestScanReclaimsOrphanedStolenSentinel pins the crash-leak cleanup: a
// .sweep-lock.stale-<pid> left by a thief that died between rename and
// remove is reclaimed by the next old-enough scan, while a fresh one (a
// steal in progress) survives.
func TestScanReclaimsOrphanedStolenSentinel(t *testing.T) {
	s := withTestStore(t, 1<<30)
	orphan := filepath.Join(s.dir, sweepLockName+".stale-4242")
	fresh := filepath.Join(s.dir, sweepLockName+".stale-4243")
	for _, p := range []string{orphan, fresh} {
		if err := os.WriteFile(p, []byte("4242\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleSweepLockAge)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	s.evictMu.Lock()
	_, err := s.scan(time.Now())
	s.evictMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("old orphaned stolen sentinel survived scan")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh stolen sentinel (steal in progress) must survive scan")
	}
}

// TestQuarantineKeepsCorruptArtifact asserts the corruption response in
// detail: the damaged file is moved (not deleted) into quarantine/ with the
// .quarantined suffix, the move is visible in CacheStats.Corrupt and
// .Quarantined, and the quarantined copy never re-enters the store's
// artifact scan.
func TestQuarantineKeepsCorruptArtifact(t *testing.T) {
	cfg := codegen.Firefox()
	key := Key(storeProbeSrc, cfg)
	s := withTestStore(t, defaultMaxBytes)
	dropMemEntry(key)
	if _, err := Build(storeProbeSrc, cfg); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	dropMemEntry(key)

	before := Stats()
	if _, err := Build(storeProbeSrc, cfg); err != nil {
		t.Fatalf("corrupt artifact surfaced an error: %v", err)
	}
	d := Stats().Sub(before)
	if d.Corrupt != 1 || d.Quarantined != 1 {
		t.Errorf("corruption not counted: corrupt=%d quarantined=%d, want 1/1", d.Corrupt, d.Quarantined)
	}
	if d.Misses != 1 {
		t.Errorf("corruption must read as a miss: %v", d)
	}

	qpath := filepath.Join(s.dir, quarantineDirName, filepath.Base(p)+quarantinedExt)
	st, err := os.Stat(qpath)
	if err != nil {
		t.Fatalf("damaged artifact not preserved in quarantine: %v", err)
	}
	if st.Size() != int64(len(data)/2) {
		t.Errorf("quarantined copy is %d bytes, want the damaged %d", st.Size(), len(data)/2)
	}

	// The recompile republished a clean artifact; a scan must see only that
	// artifact (the quarantined copy is invisible to eviction accounting).
	files, err := s.scan(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f.path, quarantineDirName) {
			t.Errorf("scan counted quarantined file %s as an artifact", f.path)
		}
	}

	// A fresh quarantined file survives a sweep; an old one is reclaimed.
	s.reclaimQuarantine(time.Now())
	if _, err := os.Stat(qpath); err != nil {
		t.Error("fresh quarantined artifact must survive reclamation")
	}
	s.reclaimQuarantine(time.Now().Add(staleQuarantineAge + time.Hour))
	if _, err := os.Stat(qpath); !os.IsNotExist(err) {
		t.Error("stale quarantined artifact must be reclaimed")
	}
}

// sleepLog collects the backoffs a hooked retry clock would have slept.
// Mutex-guarded: the remote tier's publish worker retries off-thread, so
// the recorder can be hit concurrently with the test body.
type sleepLog struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (l *sleepLog) add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.slept = append(l.slept, d)
}

func (l *sleepLog) all() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]time.Duration(nil), l.slept...)
}

// hookRetryClock replaces the retry loop's sleep and jitter sources with
// deterministic recorders for the test's duration: sleeps are logged, not
// slept, and jitter is pinned to jit(n).
func hookRetryClock(t *testing.T, jit func(int64) int64) *sleepLog {
	t.Helper()
	log := &sleepLog{}
	prev := retryTime.Load()
	retryTime.Store(&retryClock{
		sleep:  func(ctx context.Context, d time.Duration) { log.add(d) },
		jitter: jit,
	})
	t.Cleanup(func() { retryTime.Store(prev) })
	return log
}

// TestRetryIODeterministicBackoff pins the retry loop's schedule without
// wall-clock sleeps: with jitter pinned to zero the backoffs are exactly
// 5ms then 10ms, the op is attempted ioAttempts times on persistent
// failure, and a transient failure recovers on the attempt it stops
// failing.
func TestRetryIODeterministicBackoff(t *testing.T) {
	slept := hookRetryClock(t, func(int64) int64 { return 0 })

	calls := 0
	err := retryIO("test.site", "k", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient failure did not recover: err=%v calls=%d", err, calls)
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond}
	if got := slept.all(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", got, want)
	}

	before := len(slept.all())
	calls = 0
	err = retryIO("test.site", "k", func() error {
		calls++
		return fmt.Errorf("persistent")
	})
	if err == nil || calls != ioAttempts {
		t.Errorf("persistent failure: err=%v calls=%d, want error after %d attempts", err, calls, ioAttempts)
	}
	if got := len(slept.all()) - before; got != ioAttempts-1 {
		t.Errorf("%d sleeps for %d attempts, want %d", got, ioAttempts, ioAttempts-1)
	}
}

// TestRetryIOJitterCapsBackoff pins the jitter bound: with jitter pinned to
// its maximum (n-1) each backoff at most doubles — 5ms base jitters to
// <10ms, never beyond.
func TestRetryIOJitterCapsBackoff(t *testing.T) {
	slept := hookRetryClock(t, func(n int64) int64 { return n - 1 })

	retryIO("test.site", "k", func() error { return fmt.Errorf("always") })
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if got := slept.all(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("max-jitter backoff schedule = %v, want %v", got, want)
	}
}

// TestRetryIONotExistShortCircuits: a missing artifact is the normal miss
// path — one attempt, no sleeps, error passed through.
func TestRetryIONotExistShortCircuits(t *testing.T) {
	slept := hookRetryClock(t, func(int64) int64 { return 0 })
	calls := 0
	err := retryIO("test.site", "k", func() error {
		calls++
		return fmt.Errorf("wrapped: %w", fs.ErrNotExist)
	})
	if got := slept.all(); !errors.Is(err, fs.ErrNotExist) || calls != 1 || len(got) != 0 {
		t.Errorf("miss retried: err=%v calls=%d sleeps=%v", err, calls, got)
	}
}

// TestRetryIOCtxStopsOnDoneParent: a canceled parent context ends the loop
// at the next backoff boundary instead of burning the remaining attempts.
func TestRetryIOCtxStopsOnDoneParent(t *testing.T) {
	hookRetryClock(t, func(int64) int64 { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := retryIOCtx(ctx, "test.site", "k", ioAttempts, 0, func(context.Context) error {
		calls++
		cancel()
		return fmt.Errorf("transient")
	})
	// The op's own error survives (more informative than context.Canceled),
	// but the loop must not burn the remaining attempts.
	if err == nil || calls != 1 {
		t.Errorf("canceled parent did not stop the loop: err=%v calls=%d", err, calls)
	}
}

// TestRetryIOCtxPerAttemptDeadline: with an attempt timeout armed, each
// attempt gets its own deadline — an op that waits on its context times out
// per attempt, and the loop still runs every attempt.
func TestRetryIOCtxPerAttemptDeadline(t *testing.T) {
	hookRetryClock(t, func(int64) int64 { return 0 })
	calls := 0
	start := time.Now()
	err := retryIOCtx(context.Background(), "test.site", "k", ioAttempts, 20*time.Millisecond,
		func(actx context.Context) error {
			calls++
			<-actx.Done()
			return actx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) || calls != ioAttempts {
		t.Errorf("per-attempt deadline: err=%v calls=%d", err, calls)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("attempts did not run under their own deadlines: took %v", elapsed)
	}
}

// TestParseCacheMax pins the $REPRO_CACHE_MAX_BYTES parse contract: empty
// selects the default, a positive integer is honored, and anything else is
// an error (which the env reader reports once and ignores).
func TestParseCacheMax(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false}, // empty means "use the default", signaled as n == 0
		{"1048576", 1 << 20, false},
		{"0", 0, true},
		{"-5", 0, true},
		{"2GB", 0, true},
		{"lots", 0, true},
	}
	for _, tc := range cases {
		n, err := parseCacheMax(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseCacheMax(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && n != tc.want {
			t.Errorf("parseCacheMax(%q) = %d, want %d", tc.in, n, tc.want)
		}
	}
}
