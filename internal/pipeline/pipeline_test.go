package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/pipeline"
)

const addSrc = `
int main() {
  print_int(40 + 2);
  print_nl();
  return 0;
}`

// TestBuildContentAddressing checks that the cache is keyed by content:
// identical (source, config) pairs share one compiled module, and a config
// that differs in any field — even under the same name — gets its own build.
func TestBuildContentAddressing(t *testing.T) {
	ctx := context.Background()
	a, err := pipeline.Compile(ctx, &pipeline.Request{Module: addSrc, Config: codegen.Chrome()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Compile(ctx, &pipeline.Request{Module: addSrc, Config: codegen.Chrome()})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical builds must share one module")
	}
	ablated := codegen.Chrome() // same Name, different content
	ablated.StackCheck = false
	c, err := pipeline.Compile(ctx, &pipeline.Request{Module: addSrc, Config: ablated})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("ablated config must not collide with the stock engine")
	}
	if pipeline.Key(addSrc, codegen.Chrome()) == pipeline.Key(addSrc, ablated) {
		t.Error("key must cover every config field, not just the name")
	}
	if pipeline.Key(addSrc, codegen.Chrome()) == pipeline.Key(addSrc+" ", codegen.Chrome()) {
		t.Error("key must cover the source")
	}
}

// TestBuildCachesFailures checks failed builds are cached and fail the same
// way each time.
func TestBuildCachesFailures(t *testing.T) {
	const bad = `int main() { return `
	ctx := context.Background()
	_, err1 := pipeline.Compile(ctx, &pipeline.Request{Module: bad, Config: codegen.Native()})
	_, err2 := pipeline.Compile(ctx, &pipeline.Request{Module: bad, Config: codegen.Native()})
	if err1 == nil || err2 == nil {
		t.Fatal("truncated source must fail to build")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached failure diverged: %v vs %v", err1, err2)
	}
}

// TestBuildCacheConcurrent hammers the shared cache and the scheduler from
// many goroutines (run under -race). Every requester of one key must get
// the same module pointer, and concurrent first requests must not duplicate
// modules.
func TestBuildCacheConcurrent(t *testing.T) {
	srcs := make([]string, 4)
	for i := range srcs {
		// i is baked into the source so every test run re-exercises the
		// first-build race on fresh keys, not just cache hits.
		srcs[i] = fmt.Sprintf(`
int main() {
  int acc; int j;
  acc = %d;
  for (j = 0; j < 100; j++) { acc += j; }
  print_int(acc);
  print_nl();
  return 0;
}`, i)
	}
	cfgs := []*codegen.EngineConfig{codegen.Native(), codegen.Chrome(), codegen.Firefox()}

	var mu sync.Mutex
	seen := map[string]*codegen.CompiledModule{}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, src := range srcs {
				for _, cfg := range cfgs {
					cm, err := pipeline.Compile(context.Background(), &pipeline.Request{Module: src, Config: cfg})
					if err != nil {
						t.Error(err)
						return
					}
					k := pipeline.Key(src, cfg)
					mu.Lock()
					if prev, ok := seen[k]; ok && prev != cm {
						t.Errorf("key %s resolved to two modules", k[:12])
					}
					seen[k] = cm
					mu.Unlock()
				}
			}
		}()
	}
	// Concurrently run executions through the scheduler against the same
	// cache, mirroring suite behaviour.
	jobs := make([]pipeline.Job, 8)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			res, err := pipeline.Do(ctx, &pipeline.Request{Module: addSrc, Config: codegen.Firefox()})
			if err != nil {
				return err
			}
			if res.Stdout != "42\n" {
				return fmt.Errorf("stdout %q", res.Stdout)
			}
			return nil
		}
	}
	if err := pipeline.RunJobs(context.Background(), 0, jobs); err != nil {
		t.Error(err)
	}
	wg.Wait()
}

// TestRunJobsAggregatesAllErrors checks every failure is reported, in job
// order, not just the first.
func TestRunJobsAggregatesAllErrors(t *testing.T) {
	errA := errors.New("job-a failed")
	errB := errors.New("job-b failed")
	jobs := []pipeline.Job{
		func(ctx context.Context) error { return errA },
		func(ctx context.Context) error { return nil },
		func(ctx context.Context) error { return errB },
	}
	err := pipeline.RunJobs(context.Background(), 2, jobs)
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregate missing a failure: %v", err)
	}
	s := err.Error()
	if strings.Index(s, "job-a") > strings.Index(s, "job-b") {
		t.Errorf("errors not in job order: %q", s)
	}
}

// TestRunJobsBounded checks the worker cap actually bounds concurrency.
func TestRunJobsBounded(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	jobs := make([]pipeline.Job, 24)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
			sum := 0
			for j := 0; j < 1000; j++ {
				sum += j
			}
			_ = sum
			return nil
		}
	}
	if err := pipeline.RunJobs(context.Background(), workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, cap %d", p, workers)
	}
}

// TestRunJobsCancellation checks a cancelled context stops dispatch and is
// reported in the aggregate.
func TestRunJobsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]pipeline.Job, 16)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			started.Add(1)
			<-release
			return nil
		}
	}
	done := make(chan error, 1)
	go func() { done <- pipeline.RunJobs(ctx, 2, jobs) }()
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate must include the context error, got %v", err)
	}
	// The feeder re-checks ctx before every dispatch, so after cancel at
	// most one racing send goes out; the queue never fully dispatches.
	if n := started.Load(); n == 16 {
		t.Error("cancellation should stop dispatching queued jobs")
	}
}

// TestCancelPreemptsInFlight checks the ROADMAP item this PR closes: the
// simulator inner loop polls the scheduler context, so cancelling mid-run
// preempts a hung workload instead of waiting for it to finish (it never
// would).
func TestCancelPreemptsInFlight(t *testing.T) {
	const hung = `int main() { while (1) { } return 0; }`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := pipeline.Do(ctx, &pipeline.Request{Module: hung, Config: codegen.Native()})
		done <- err
	}()
	// Give the workload time to compile and enter its infinite loop, then
	// cancel while it is executing.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("preempted run returned %v, want context.Canceled in the chain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not preempt the in-flight run")
	}
}

// TestExecRunsFiles checks the shared exec path materializes the filesystem
// image (including nested directories) before spawn.
func TestExecRunsFiles(t *testing.T) {
	const src = `
char buf[32];
int main() {
  int fd = sys_open("/data/sub/in.txt", 0, 0);
  if (fd < 0) { return 1; }
  int n = sys_read(fd, buf, 31);
  sys_close(fd);
  sys_write(1, buf, n);
  return 0;
}`
	res, err := pipeline.Do(context.Background(), &pipeline.Request{
		Module: src,
		Config: codegen.Native(),
		Files:  map[string][]byte{"/data/sub/in.txt": []byte("pipelined")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || res.Stdout != "pipelined" {
		t.Fatalf("exit %d stdout %q", res.ExitCode, res.Stdout)
	}
}

// TestDeprecatedWrappers pins the compatibility contract of the pre-Request
// API: Build/Exec/Run (and their Context forms) survive as thin wrappers so
// out-of-tree callers keep compiling, and they must agree with the canonical
// verbs — same cached module pointer, same output.
func TestDeprecatedWrappers(t *testing.T) {
	cm, err := pipeline.Build(addSrc, codegen.Chrome())
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := pipeline.Compile(context.Background(), &pipeline.Request{Module: addSrc, Config: codegen.Chrome()})
	if err != nil {
		t.Fatal(err)
	}
	if cm != canonical {
		t.Error("Build and Compile must share one cache entry")
	}
	res, err := pipeline.Exec(cm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "42\n" || res.ExitCode != 0 {
		t.Fatalf("Exec: exit %d stdout %q", res.ExitCode, res.Stdout)
	}
	res, err = pipeline.RunContext(context.Background(), addSrc, codegen.Chrome(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "42\n" {
		t.Fatalf("RunContext: stdout %q", res.Stdout)
	}
	if res.Proc == nil {
		t.Error("legacy RunResult must keep exposing the process")
	}
}
