package pipeline

// Pre-Request entry points. Each positional form below is a thin deprecated
// wrapper over the canonical Request verbs in request.go (Compile, Execute,
// Do) and survives one release so out-of-tree callers keep compiling; the
// Build/BuildContext pair lives next to the cache in pipeline.go.

import (
	"context"

	"repro/internal/codegen"
	"repro/internal/kernel"
)

// RunResult captures one program execution under the kernel — the
// pre-Request result shape, kept for the deprecated wrappers. New code
// receives a Result (which adds counters, cache traffic, and a typed error
// class) from Execute and Do.
type RunResult struct {
	ExitCode int
	Stdout   string
	Proc     *kernel.Process
}

// runResult converts the canonical Result to the legacy shape.
func runResult(res *Result) *RunResult {
	return &RunResult{ExitCode: res.ExitCode, Stdout: res.Stdout, Proc: res.Proc}
}

// Exec executes an already-built binary in a fresh kernel.
//
// Deprecated: construct a Request and use Execute — this wrapper survives
// one release so out-of-tree callers keep compiling.
func Exec(cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	return ExecContext(context.Background(), cm, argv, files)
}

// ExecContext is Exec under a caller context.
//
// Deprecated: construct a Request and use Execute — this wrapper survives
// one release so out-of-tree callers keep compiling.
func ExecContext(ctx context.Context, cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	res, err := Execute(ctx, cm, &Request{Argv: argv, Files: files})
	if err != nil {
		return nil, err
	}
	return runResult(res), nil
}

// Run builds src for cfg through the shared cache and executes it.
//
// Deprecated: construct a Request and use Do — this wrapper survives one
// release so out-of-tree callers keep compiling.
func Run(src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	return RunContext(context.Background(), src, cfg, argv, files)
}

// RunContext builds src for cfg through the shared cache and executes it
// under ctx.
//
// Deprecated: construct a Request and use Do — this wrapper survives one
// release so out-of-tree callers keep compiling.
func RunContext(ctx context.Context, src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	res, err := Do(ctx, &Request{Module: src, Config: cfg, Argv: argv, Files: files})
	if err != nil {
		return nil, err
	}
	return runResult(res), nil
}
