package pipeline

import (
	"context"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/kernel"
)

// RunResult captures one program execution under the kernel.
type RunResult struct {
	ExitCode int
	Stdout   string
	Proc     *kernel.Process
}

// Exec executes an already-built binary in a fresh kernel populated with
// files, spawns it with argv, and waits for completion. This is the single
// run path shared by the toolchain front-end, the workloads differential
// tests, and the benchmarks.
func Exec(cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	return ExecContext(context.Background(), cm, argv, files)
}

// ExecContext is Exec under a caller context. Every process in the run's
// kernel polls ctx while executing, so cancellation preempts a simulation
// mid-run — a hung workload does not outlive its scheduler.
func ExecContext(ctx context.Context, cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	k := kernel.New(nil)
	k.Ctx = ctx
	for p, data := range files {
		if err := k.FS.WriteFileAll(p, data); err != nil {
			return nil, fmt.Errorf("pipeline: populating %s: %w", p, err)
		}
	}
	k.RegisterBinary("/bin/prog", cm)
	if len(argv) == 0 {
		argv = []string{"prog"}
	}
	p, err := k.Spawn(nil, "/bin/prog", argv, [3]*kernel.FD{})
	if err != nil {
		return nil, err
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		return nil, fmt.Errorf("pipeline: process failed: %w", err)
	}
	return &RunResult{ExitCode: code, Stdout: string(k.Console), Proc: p}, nil
}

// Run builds src for cfg through the shared cache and executes it.
func Run(src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	return RunContext(context.Background(), src, cfg, argv, files)
}

// RunContext builds src for cfg through the shared cache and executes it
// under ctx (see ExecContext; the build only uses ctx for scheduler-budget
// accounting, see BuildContext).
func RunContext(ctx context.Context, src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	cm, err := BuildContext(ctx, src, cfg)
	if err != nil {
		return nil, err
	}
	return ExecContext(ctx, cm, argv, files)
}
