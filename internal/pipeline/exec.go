package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/kernel"
)

// RunResult captures one program execution under the kernel.
type RunResult struct {
	ExitCode int
	Stdout   string
	Proc     *kernel.Process
}

// Exec executes an already-built binary in a fresh kernel populated with
// files, spawns it with argv, and waits for completion. This is the single
// run path shared by the toolchain front-end, the workloads differential
// tests, and the benchmarks.
func Exec(cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	return ExecContext(context.Background(), cm, argv, files)
}

// ExecContext is Exec under a caller context. Every process in the run's
// kernel polls ctx while executing, so cancellation preempts a simulation
// mid-run — a hung workload does not outlive its scheduler. When the
// per-job watchdog is armed (JobLimits), the same polling enforces a
// wall-clock deadline and an instruction ceiling; a tripped limit returns a
// TimeoutError carrying the partial counters.
func ExecContext(ctx context.Context, cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	if len(argv) == 0 {
		argv = []string{"prog"}
	}
	label := fault.LabelOf(ctx)
	if label == "" {
		label = argv[0]
	}
	timeout, maxInsts := JobLimits()
	k := kernel.New(nil)
	k.Ctx = ctx
	if timeout > 0 {
		k.Deadline = time.Now().Add(timeout)
	}
	k.MaxInsts = maxInsts
	// The exec fault site sits after the deadline is armed, so an injected
	// delay ("hang") burns the job's wall-clock budget and the watchdog
	// kills the run at its first interrupt poll — the honest simulation of
	// a hung workload, partial counters included.
	if err := fault.Check(fault.SiteExec, label); err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", label, err)
	}
	for p, data := range files {
		if err := k.FS.WriteFileAll(p, data); err != nil {
			return nil, fmt.Errorf("pipeline: populating %s: %w", p, err)
		}
	}
	k.RegisterBinary("/bin/prog", cm)
	p, err := k.Spawn(nil, "/bin/prog", argv, [3]*kernel.FD{})
	if err != nil {
		return nil, err
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		var we *kernel.WatchdogError
		if errors.As(err, &we) {
			return nil, &TimeoutError{
				Label:    label,
				Wall:     we.Wall,
				Timeout:  timeout,
				MaxInsts: maxInsts,
				Partial:  p.Inst.Counters,
			}
		}
		return nil, fmt.Errorf("pipeline: process failed: %w", err)
	}
	return &RunResult{ExitCode: code, Stdout: string(k.Console), Proc: p}, nil
}

// Run builds src for cfg through the shared cache and executes it.
func Run(src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	return RunContext(context.Background(), src, cfg, argv, files)
}

// RunContext builds src for cfg through the shared cache and executes it
// under ctx (see ExecContext; the build only uses ctx for scheduler-budget
// accounting, see BuildContext).
func RunContext(ctx context.Context, src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	// When faults are armed, default the fault-site label to argv[0] (the
	// workload name on suite paths) so compile/exec rules can target one
	// workload without every caller threading WithLabel itself.
	if fault.Enabled() && fault.LabelOf(ctx) == "" && len(argv) > 0 {
		ctx = fault.WithLabel(ctx, argv[0])
	}
	cm, err := BuildContext(ctx, src, cfg)
	if err != nil {
		return nil, err
	}
	return ExecContext(ctx, cm, argv, files)
}
