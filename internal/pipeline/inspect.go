package pipeline

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store inspection and explicit GC, the API under cmd/repro-cache. All
// functions operate on the process's active store (the same one Build
// uses): REPRO_CACHE_DIR resolution, the compiler-fingerprint subdirectory,
// and the size budget all apply.

// ArtifactInfo describes one stored artifact.
type ArtifactInfo struct {
	// Key is the artifact's content address (pipeline.Key).
	Key string
	// Size is the encoded artifact size in bytes.
	Size int64
	// ModTime is the artifact's LRU clock: loads refresh it on every hit.
	ModTime time.Time
	// Path is the artifact file.
	Path string
}

// StoreDir reports the active store's root directory — the compiler-
// fingerprint subdirectory artifacts live under. ok is false when the disk
// layer is disabled (REPRO_CACHE_DIR=off, or no writable location).
func StoreDir() (dir string, ok bool) {
	s := artifactStore()
	if s == nil {
		return "", false
	}
	return s.dir, true
}

// StoreBudget reports the active store's size budget in bytes, or 0 when
// the disk layer is disabled.
func StoreBudget() int64 {
	s := artifactStore()
	if s == nil {
		return 0
	}
	return s.maxBytes
}

// ListArtifacts enumerates the active store's artifacts sorted
// least-recently-used first (the order an eviction sweep removes them).
// A disabled disk layer returns an error.
func ListArtifacts() ([]ArtifactInfo, error) {
	s := artifactStore()
	if s == nil {
		return nil, fmt.Errorf("pipeline: artifact store disabled")
	}
	s.evictMu.Lock()
	files, err := s.scan(time.Now())
	s.evictMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("pipeline: scanning artifact store: %w", err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	out := make([]ArtifactInfo, len(files))
	for i, f := range files {
		out[i] = ArtifactInfo{
			Key:     strings.TrimSuffix(filepath.Base(f.path), artifactExt),
			Size:    f.size,
			ModTime: f.mtime,
			Path:    f.path,
		}
	}
	return out, nil
}

// GCStore runs an explicit eviction pass on the active store, removing
// least-recently-used artifacts until the total fits under maxBytes
// (maxBytes <= 0 selects the configured budget). Stale temp files from
// interrupted writers are reclaimed as part of the scan. It returns how
// many artifacts were removed and how many bytes they freed. Unlike the
// automatic publish-path sweep, an explicit GC does not defer to the
// cross-process sweep sentinel: the user asked for a sweep, and a
// concurrent sweeper is safe (just redundant), so skipping silently would
// be worse than double-scanning.
func GCStore(maxBytes int64) (removed int, freed int64, err error) {
	s := artifactStore()
	if s == nil {
		return 0, 0, fmt.Errorf("pipeline: artifact store disabled")
	}
	if maxBytes <= 0 {
		maxBytes = s.maxBytes
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	removed, freed = s.sweepTo(maxBytes)
	return removed, freed, nil
}
