package pipeline

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/codegen"
)

// Store inspection and explicit GC, the API under cmd/repro-cache. All
// functions operate on the process's active store (the same one Build
// uses): REPRO_CACHE_DIR resolution, the compiler-fingerprint subdirectory,
// and the size budget all apply.

// ArtifactInfo describes one stored artifact.
type ArtifactInfo struct {
	// Key is the artifact's content address (pipeline.Key).
	Key string
	// Size is the encoded artifact size in bytes.
	Size int64
	// ModTime is the artifact's LRU clock: loads refresh it on every hit.
	ModTime time.Time
	// Path is the artifact file.
	Path string
}

// StoreDir reports the active store's root directory — the compiler-
// fingerprint subdirectory artifacts live under. ok is false when the disk
// layer is disabled (REPRO_CACHE_DIR=off, or no writable location).
func StoreDir() (dir string, ok bool) {
	s := artifactStore()
	if s == nil {
		return "", false
	}
	return s.dir, true
}

// StoreBudget reports the active store's size budget in bytes, or 0 when
// the disk layer is disabled.
func StoreBudget() int64 {
	s := artifactStore()
	if s == nil {
		return 0
	}
	return s.maxBytes
}

// ListArtifacts enumerates the active store's artifacts sorted
// least-recently-used first (the order an eviction sweep removes them).
// A disabled disk layer returns an error.
func ListArtifacts() ([]ArtifactInfo, error) {
	s := artifactStore()
	if s == nil {
		return nil, fmt.Errorf("pipeline: artifact store disabled")
	}
	s.evictMu.Lock()
	files, err := s.scan(time.Now())
	s.evictMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("pipeline: scanning artifact store: %w", err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	out := make([]ArtifactInfo, len(files))
	for i, f := range files {
		out[i] = ArtifactInfo{
			Key:     strings.TrimSuffix(filepath.Base(f.path), artifactExt),
			Size:    f.size,
			ModTime: f.mtime,
			Path:    f.path,
		}
	}
	return out, nil
}

// Generations lists every compiler-fingerprint generation directory under
// the store root (the parent of the active store). cmd/repro-cache's
// push/pull sync all of them: the tool's own generation is scoped to its
// own binary and is empty (the tool never compiles), so syncing only the
// active store would sync nothing.
func Generations() ([]string, error) {
	s := artifactStore()
	if s == nil {
		return nil, fmt.Errorf("pipeline: artifact store disabled")
	}
	root := filepath.Dir(s.dir)
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading store root: %w", err)
	}
	var out []string
	for _, ent := range ents {
		if ent.IsDir() && fpRe.MatchString(ent.Name()) {
			out = append(out, ent.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// generationStore opens generation fp's store under the active store's
// root, with the active store's budget.
func generationStore(fp string) (*diskStore, error) {
	s := artifactStore()
	if s == nil {
		return nil, fmt.Errorf("pipeline: artifact store disabled")
	}
	if !fpRe.MatchString(fp) {
		return nil, fmt.Errorf("pipeline: %q is not a compiler fingerprint", fp)
	}
	g := openStore(filepath.Join(filepath.Dir(s.dir), fp), s.maxBytes)
	if g == nil {
		return nil, fmt.Errorf("pipeline: cannot open generation %s", fp)
	}
	return g, nil
}

// ListArtifactsFP enumerates one fingerprint generation's artifacts,
// least-recently-used first.
func ListArtifactsFP(fp string) ([]ArtifactInfo, error) {
	g, err := generationStore(fp)
	if err != nil {
		return nil, err
	}
	g.evictMu.Lock()
	files, err := g.scan(time.Now())
	g.evictMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("pipeline: scanning generation %s: %w", fp, err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	out := make([]ArtifactInfo, len(files))
	for i, f := range files {
		out[i] = ArtifactInfo{
			Key:     strings.TrimSuffix(filepath.Base(f.path), artifactExt),
			Size:    f.size,
			ModTime: f.mtime,
			Path:    f.path,
		}
	}
	return out, nil
}

// ReadArtifact reads the raw encoded bytes of one artifact in generation
// fp. A missing artifact is an fs.ErrNotExist-wrapping error.
func ReadArtifact(fp, key string) ([]byte, error) {
	g, err := generationStore(fp)
	if err != nil {
		return nil, err
	}
	data, ok := g.loadBytes(key)
	if !ok {
		return nil, fmt.Errorf("pipeline: artifact %s/%s: %w", fp, key[:12], fs.ErrNotExist)
	}
	return data, nil
}

// WriteArtifact verifies and atomically publishes encoded artifact bytes
// into generation fp; the write path cmd/repro-cache pull uses.
func WriteArtifact(fp, key string, data []byte) error {
	if err := codegen.VerifyArtifact(data); err != nil {
		return fmt.Errorf("pipeline: artifact %s rejected: %w", key[:12], err)
	}
	g, err := generationStore(fp)
	if err != nil {
		return err
	}
	return g.saveBytes(key, data)
}

// HasArtifact reports whether generation fp already stores key.
func HasArtifact(fp, key string) bool {
	g, err := generationStore(fp)
	if err != nil {
		return false
	}
	_, err = os.Stat(g.path(key))
	return err == nil
}

// GCStore runs an explicit eviction pass on the active store, removing
// least-recently-used artifacts until the total fits under maxBytes
// (maxBytes <= 0 selects the configured budget). Stale temp files from
// interrupted writers are reclaimed as part of the scan. It returns how
// many artifacts were removed and how many bytes they freed. Unlike the
// automatic publish-path sweep, an explicit GC does not defer to the
// cross-process sweep sentinel: the user asked for a sweep, and a
// concurrent sweeper is safe (just redundant), so skipping silently would
// be worse than double-scanning.
func GCStore(maxBytes int64) (removed int, freed int64, err error) {
	s := artifactStore()
	if s == nil {
		return 0, 0, fmt.Errorf("pipeline: artifact store disabled")
	}
	if maxBytes <= 0 {
		maxBytes = s.maxBytes
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	removed, freed = s.sweepTo(maxBytes)
	return removed, freed, nil
}
