package pipeline

// The unified request API. A Request is the one serializable unit of work
// every entry point shares: the CLI flags of cmd/wasmrun, the suite
// harnesses, and an HTTP body POSTed to cmd/repro-serve all resolve into
// the same struct, and the three canonical verbs all take it:
//
//	Compile(ctx, req)      build req.Module for its engine (cached)
//	Execute(ctx, cm, req)  run an already-built module under req's policy
//	Do(ctx, req)           Compile then Execute — the serving unit
//
// The pre-Request positional forms (Build/BuildContext, Exec/ExecContext,
// Run/RunContext) survive as thin deprecated wrappers for one release.
//
// JSON field spellings here are the serving wire format, pinned by golden
// fixtures in wire_test.go. Decoding tolerates unknown fields, so the
// format can grow without breaking older clients.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codegen"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/perf"
)

// Request is one unit of compile-and-run work. The zero value is not
// runnable: Module and an engine (Engine name or explicit Config) are
// required; everything else defaults.
type Request struct {
	// Module is the program to run: mini-C source text, the toolchain's
	// input language (compiled to the wasm32 or x86-64 data model
	// according to the engine configuration).
	Module string `json:"module"`

	// Wasm is an alternative program form: a raw wasm binary module
	// (base64 on the wire), decoded and validated instead of going through
	// the mini-C front-end. Exactly one of Module and Wasm may be set. The
	// fuzzing oracle feeds generated modules through this field so they
	// share the build cache and kernel policy with every other run path.
	Wasm []byte `json:"wasm,omitempty"`

	// Dispatch selects the simulator's dispatch loop: "" or "predecode"
	// (the default micro-op engine) or "legacy" (the retained
	// instruction-at-a-time interpreter). An execution property, not a
	// build property: it does not enter the build's content address.
	Dispatch string `json:"dispatch,omitempty"`

	// Engine names a stock engine configuration ("native", "chrome",
	// "firefox", "asmjs-chrome", "asmjs-firefox"). It is the wire-friendly
	// way to pick an engine; Config overrides it when both are set.
	Engine string `json:"engine,omitempty"`

	// Config is the full engine configuration, for ablation studies and
	// other custom configurations that have no stock name. In-process
	// callers usually set this; wire clients usually set Engine.
	Config *codegen.EngineConfig `json:"config,omitempty"`

	// Argv is the program's argument vector (argv[0] defaults to "prog";
	// suite paths pass the workload name, which also keys fault rules).
	Argv []string `json:"argv,omitempty"`

	// Files populates the fresh kernel's filesystem before spawn, path →
	// contents (base64 on the wire, per encoding/json []byte convention).
	Files map[string][]byte `json:"files,omitempty"`

	// Fidelity overrides the simulation tier ("exact", "functional",
	// "sampled"); empty keeps the engine configuration's tier. The
	// effective tier is part of the build's content address, so tiers
	// never share cached artifacts.
	Fidelity string `json:"fidelity,omitempty"`

	// Limits bounds this run: a wall-clock deadline and a retired-
	// instruction ceiling enforced by the per-job watchdog. Zero falls
	// back to the process-wide $REPRO_JOB_TIMEOUT / $REPRO_JOB_MAX_INSTS.
	Limits config.Limits `json:"limits,omitzero"`
}

// ResolveConfig returns the engine configuration this request runs under:
// Config if set, else the stock engine named by Engine, with a non-empty
// Fidelity applied to a copy (the caller's config is never mutated). The
// error is ClassBadRequest — it names accepted values and is safe to echo
// to a wire client.
func (r *Request) ResolveConfig() (*codegen.EngineConfig, error) {
	cfg := r.Config
	if cfg == nil {
		if r.Engine == "" {
			return nil, badRequestf("request needs an engine name or an explicit config")
		}
		c, err := codegen.Engine(r.Engine)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		cfg = c
	}
	if r.Fidelity == "" {
		return cfg, nil
	}
	f, err := codegen.ParseFidelity(r.Fidelity)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	cp := *cfg
	cp.Fidelity = f
	return &cp, nil
}

// Result is the serializable outcome of one Request: the run's observable
// behavior (exit code, stdout), its full perf counters, and the build-cache
// traffic this request generated (exactly one of mem/disk/miss on success —
// a warm second request reports Misses == 0). Err is set when the daemon
// serializes a failure (see ResultForError); in-process callers get a Go
// error from the verbs instead.
type Result struct {
	ExitCode int           `json:"exit_code"`
	Stdout   string        `json:"stdout"`
	Counters perf.Counters `json:"counters"`
	Cache    CacheStats    `json:"cache"`
	Err      *ErrorInfo    `json:"error,omitempty"`

	// Proc is the in-process handle to the simulated process (kernel
	// state, Browsix share, raw instance); never serialized.
	Proc *kernel.Process `json:"-"`
}

// ErrClass partitions failures for wire clients and dashboards: what a
// retry can fix (timeout, canceled) versus what it cannot (bad_request,
// compile), and what is the service's own problem (internal).
type ErrClass string

// Error classes, from the client's fault to the service's.
const (
	// ClassBadRequest: the request itself is malformed — unknown engine,
	// bad fidelity spelling, missing module.
	ClassBadRequest ErrClass = "bad_request"
	// ClassCompile: the module failed to build (parse or codegen error).
	// Deterministic: identical requests fail identically.
	ClassCompile ErrClass = "compile"
	// ClassTimeout: the per-job watchdog killed the run (wall-clock or
	// instruction limit); partial counters are real data.
	ClassTimeout ErrClass = "timeout"
	// ClassCanceled: the caller (or a draining server) canceled the run.
	ClassCanceled ErrClass = "canceled"
	// ClassFault: an armed fault-injection rule fired.
	ClassFault ErrClass = "fault"
	// ClassRuntime: the program ran and failed in simulation (spawn
	// failure, kernel error) — distinct from a nonzero ExitCode, which is
	// a successful Result.
	ClassRuntime ErrClass = "runtime"
	// ClassInternal: everything else; the service's problem.
	ClassInternal ErrClass = "internal"
)

// ErrorInfo is the wire form of a failed request.
type ErrorInfo struct {
	Class   ErrClass `json:"class"`
	Message string   `json:"message"`
}

func (e *ErrorInfo) Error() string { return fmt.Sprintf("%s: %s", e.Class, e.Message) }

// classedError tags an error with the stage it came from; Classify unwraps
// it after the more specific checks (timeout, fault, cancel) have had their
// chance.
type classedError struct {
	class ErrClass
	err   error
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

func badRequestf(format string, args ...any) error {
	return &classedError{ClassBadRequest, fmt.Errorf("pipeline: "+format, args...)}
}

// Classify maps any error returned by the verbs to its wire class.
// Specific causes win over stage tags: a fault injected during a compile is
// ClassFault, not ClassCompile.
func Classify(err error) ErrClass {
	if err == nil {
		return ""
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return ClassTimeout
	}
	var ie *fault.InjectedError
	if errors.As(err, &ie) {
		return ClassFault
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	return ClassInternal
}

// ErrorInfoFor converts an error to its wire form (nil for nil).
func ErrorInfoFor(err error) *ErrorInfo {
	if err == nil {
		return nil
	}
	return &ErrorInfo{Class: Classify(err), Message: err.Error()}
}

// ResultForError converts a failed run into a serializable Result: the
// error's class and message, ExitCode -1, and — for watchdog kills — the
// partial counters accumulated up to the kill, which are accurate data
// worth returning to the client.
func ResultForError(err error) *Result {
	res := &Result{ExitCode: -1, Err: ErrorInfoFor(err)}
	var te *TimeoutError
	if errors.As(err, &te) {
		res.Counters = te.Partial
	}
	return res
}

// Compile resolves req's engine and builds req.Module through the shared
// content-addressed cache (memory, then disk store, then the compiler).
// The returned module is shared and immutable; see build for the
// singleflight and cancellation contract.
func Compile(ctx context.Context, req *Request) (*codegen.CompiledModule, error) {
	cm, _, err := compileCounted(ctx, req)
	return cm, err
}

// compileCounted is Compile plus this request's own cache traffic, for
// Result.Cache.
func compileCounted(ctx context.Context, req *Request) (*codegen.CompiledModule, CacheStats, error) {
	cfg, err := req.ResolveConfig()
	if err != nil {
		return nil, CacheStats{}, err
	}
	src := req.Module
	if len(req.Wasm) > 0 {
		if req.Module != "" {
			return nil, CacheStats{}, badRequestf("request sets both mini-C module and raw wasm; pick one")
		}
		src = wasmSrcPrefix + string(req.Wasm)
	}
	cm, delta, err := build(ctx, src, cfg)
	if err != nil {
		return nil, delta, &classedError{ClassCompile, err}
	}
	return cm, delta, nil
}

// legacyDispatch maps Request.Dispatch to the kernel's Legacy flag. The
// error is ClassBadRequest.
func legacyDispatch(d string) (bool, error) {
	switch d {
	case "", "predecode":
		return false, nil
	case "legacy":
		return true, nil
	}
	return false, badRequestf("unknown dispatch %q (want \"predecode\" or \"legacy\")", d)
}

// Execute runs an already-built module under req's policy — argv, files,
// and watchdog limits (req.Limits, falling back to the process-wide knobs)
// — in a fresh kernel, and waits for completion. Every process in the
// run's kernel polls ctx while executing, so cancellation preempts a
// simulation mid-run; a tripped limit returns a TimeoutError (ClassTimeout)
// carrying the partial counters.
func Execute(ctx context.Context, cm *codegen.CompiledModule, req *Request) (*Result, error) {
	argv := req.Argv
	if len(argv) == 0 {
		argv = []string{"prog"}
	}
	label := fault.LabelOf(ctx)
	if label == "" {
		label = argv[0]
	}
	legacy, err := legacyDispatch(req.Dispatch)
	if err != nil {
		return nil, err
	}
	timeout, maxInsts := effectiveLimits(req.Limits)
	k := kernel.New(nil)
	k.Legacy = legacy
	k.Ctx = ctx
	if timeout > 0 {
		k.Deadline = time.Now().Add(timeout)
	}
	k.MaxInsts = maxInsts
	// The exec fault site sits after the deadline is armed, so an injected
	// delay ("hang") burns the job's wall-clock budget and the watchdog
	// kills the run at its first interrupt poll — the honest simulation of
	// a hung workload, partial counters included.
	if err := fault.Check(fault.SiteExec, label); err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", label, err)
	}
	for p, data := range req.Files {
		if err := k.FS.WriteFileAll(p, data); err != nil {
			return nil, &classedError{ClassRuntime, fmt.Errorf("pipeline: populating %s: %w", p, err)}
		}
	}
	k.RegisterBinary("/bin/prog", cm)
	p, err := k.Spawn(nil, "/bin/prog", argv, [3]*kernel.FD{})
	if err != nil {
		return nil, &classedError{ClassRuntime, err}
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		var we *kernel.WatchdogError
		if errors.As(err, &we) {
			return nil, &TimeoutError{
				Label:    label,
				Wall:     we.Wall,
				Timeout:  timeout,
				MaxInsts: maxInsts,
				Partial:  p.Inst.Counters,
			}
		}
		return nil, &classedError{ClassRuntime, fmt.Errorf("pipeline: process failed: %w", err)}
	}
	return &Result{
		ExitCode: code,
		Stdout:   string(k.Console),
		Counters: p.Inst.Counters,
		Proc:     p,
	}, nil
}

// Do is the serving unit: Compile then Execute, one Request in, one Result
// out. The Result carries this request's own build-cache traffic — a warm
// repeat of an identical request reports Cache.Misses == 0.
func Do(ctx context.Context, req *Request) (*Result, error) {
	// When faults are armed, default the fault-site label to argv[0] (the
	// workload name on suite paths) so compile/exec rules can target one
	// workload without every caller threading WithLabel itself.
	if fault.Enabled() && fault.LabelOf(ctx) == "" && len(req.Argv) > 0 {
		ctx = fault.WithLabel(ctx, req.Argv[0])
	}
	cm, delta, err := compileCounted(ctx, req)
	if err != nil {
		return nil, err
	}
	res, err := Execute(ctx, cm, req)
	if err != nil {
		return nil, err
	}
	res.Cache = delta
	return res, nil
}
