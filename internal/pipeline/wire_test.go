package pipeline_test

// Wire-format pins for the serving API. The JSON spellings of Request,
// Result, and CacheStats are a contract with repro-serve clients: golden
// fixtures here fail if a field is renamed or its encoding changes, and the
// tolerance tests pin that decoding ignores unknown fields, so the format
// can grow without breaking deployed clients.

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/perf"
	"repro/internal/pipeline"
)

// TestRequestWireGolden pins the Request wire spelling, including the
// base64 []byte convention for Files and the human-readable Duration in
// Limits.
func TestRequestWireGolden(t *testing.T) {
	req := &pipeline.Request{
		Module:   "int main() { return 0; }",
		Engine:   "chrome",
		Argv:     []string{"prog", "-n"},
		Files:    map[string][]byte{"/in.txt": []byte("hi")},
		Fidelity: "sampled",
		Limits: config.Limits{
			Timeout:  config.Duration(300 * time.Millisecond),
			MaxInsts: 1000,
		},
	}
	const golden = `{"module":"int main() { return 0; }","engine":"chrome","argv":["prog","-n"],"files":{"/in.txt":"aGk="},"fidelity":"sampled","limits":{"timeout":"300ms","max_insts":1000}}`
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != golden {
		t.Errorf("request wire format drifted:\n got %s\nwant %s", b, golden)
	}
	var back pipeline.Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Module != req.Module || back.Engine != req.Engine ||
		back.Fidelity != req.Fidelity || back.Limits != req.Limits ||
		string(back.Files["/in.txt"]) != "hi" || len(back.Argv) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

// TestRequestMinimalOmitsDefaults: a minimal request serializes to just its
// module and engine — zero limits, nil files, and empty argv stay off the
// wire (limits relies on omitzero, which omitempty cannot do for structs).
func TestRequestMinimalOmitsDefaults(t *testing.T) {
	b, err := json.Marshal(&pipeline.Request{Module: "m", Engine: "native"})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"module":"m","engine":"native"}`
	if string(b) != golden {
		t.Errorf("minimal request:\n got %s\nwant %s", b, golden)
	}
}

// TestRequestWasmWireGolden pins the raw-wasm request form: Wasm rides the
// wire base64-encoded under "wasm", Dispatch under "dispatch", and both
// stay off the wire entirely for mini-C requests (omitempty — pinned by
// TestRequestMinimalOmitsDefaults above).
func TestRequestWasmWireGolden(t *testing.T) {
	req := &pipeline.Request{
		Wasm:     []byte{0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00},
		Engine:   "native",
		Dispatch: "legacy",
	}
	const golden = `{"module":"","wasm":"AGFzbQEAAAA=","dispatch":"legacy","engine":"native"}`
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != golden {
		t.Errorf("wasm request wire format drifted:\n got %s\nwant %s", b, golden)
	}
	var back pipeline.Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if string(back.Wasm) != string(req.Wasm) || back.Dispatch != "legacy" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

// TestResultWireGolden pins the Result wire spelling: snake_case cache
// counters, the nested error object, and that the in-process Proc handle
// never leaks onto the wire.
func TestResultWireGolden(t *testing.T) {
	res := &pipeline.Result{
		ExitCode: 1,
		Stdout:   "42\n",
		Counters: perf.Counters{Instructions: 7, Cycles: 9},
		Cache:    pipeline.CacheStats{MemHits: 1},
		Err:      &pipeline.ErrorInfo{Class: pipeline.ClassTimeout, Message: "killed"},
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{
		`"exit_code":1`,
		`"stdout":"42\n"`,
		`"cache":{"mem_hits":1,"disk_hits":0,"misses":0}`,
		`"error":{"class":"timeout","message":"killed"}`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("result wire format missing %s in %s", want, s)
		}
	}
	if strings.Contains(s, "Proc") || strings.Contains(s, "proc") {
		t.Errorf("Proc must not serialize: %s", s)
	}
}

// TestCacheStatsWireGolden pins CacheStats exactly, including that the
// failure counters (corrupt, quarantined) are omitted when zero.
func TestCacheStatsWireGolden(t *testing.T) {
	b, err := json.Marshal(pipeline.CacheStats{MemHits: 3, DiskHits: 2, Misses: 1})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"mem_hits":3,"disk_hits":2,"misses":1}`
	if string(b) != golden {
		t.Errorf("cache stats:\n got %s\nwant %s", b, golden)
	}
	b, err = json.Marshal(pipeline.CacheStats{Misses: 1, Corrupt: 4, Quarantined: 5})
	if err != nil {
		t.Fatal(err)
	}
	const goldenFail = `{"mem_hits":0,"disk_hits":0,"misses":1,"corrupt":4,"quarantined":5}`
	if string(b) != goldenFail {
		t.Errorf("cache stats with failures:\n got %s\nwant %s", b, goldenFail)
	}
	// The remote-tier counters ride the same struct, omitted when zero (so
	// a local-only run serializes exactly as before the tier existed) and
	// spelled remote_* when not.
	b, err = json.Marshal(pipeline.CacheStats{Misses: 1, RemoteHits: 2, RemotePuts: 3, RemoteErrors: 4, RemoteRejects: 5})
	if err != nil {
		t.Fatal(err)
	}
	const goldenRemote = `{"mem_hits":0,"disk_hits":0,"misses":1,"remote_hits":2,"remote_puts":3,"remote_errors":4,"remote_rejects":5}`
	if string(b) != goldenRemote {
		t.Errorf("cache stats with remote traffic:\n got %s\nwant %s", b, goldenRemote)
	}
}

// TestUnknownFieldTolerance: decoding skips fields this version does not
// know, in the request, its limits, and the result alike — the growth
// contract for older daemons and newer clients (and vice versa).
func TestUnknownFieldTolerance(t *testing.T) {
	var req pipeline.Request
	err := json.Unmarshal([]byte(`{
		"module": "m", "engine": "native",
		"priority": 9, "trace_id": "abc",
		"limits": {"timeout": "1s", "gpu_seconds": 3}
	}`), &req)
	if err != nil {
		t.Fatalf("unknown request fields must be tolerated: %v", err)
	}
	if req.Module != "m" || req.Engine != "native" || req.Limits.Timeout.Std() != time.Second {
		t.Errorf("known fields lost among unknown ones: %+v", req)
	}
	var res pipeline.Result
	err = json.Unmarshal([]byte(`{"exit_code": 0, "stdout": "x", "billing_cents": 12}`), &res)
	if err != nil {
		t.Fatalf("unknown result fields must be tolerated: %v", err)
	}
	if res.Stdout != "x" {
		t.Errorf("known fields lost: %+v", res)
	}
}

// TestLimitsDurationForms: Limits.Timeout decodes both wire forms — a Go
// duration string and raw nanoseconds — and rejects garbage.
func TestLimitsDurationForms(t *testing.T) {
	var l config.Limits
	if err := json.Unmarshal([]byte(`{"timeout":"250ms"}`), &l); err != nil || l.Timeout.Std() != 250*time.Millisecond {
		t.Errorf("string form: %v %v", l.Timeout, err)
	}
	if err := json.Unmarshal([]byte(`{"timeout":250000000}`), &l); err != nil || l.Timeout.Std() != 250*time.Millisecond {
		t.Errorf("nanosecond form: %v %v", l.Timeout, err)
	}
	if err := json.Unmarshal([]byte(`{"timeout":"soon"}`), &l); err == nil {
		t.Error("garbage duration must be rejected")
	}
}
