package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/config"
	"repro/internal/fault"
)

// Disk-backed artifact store: the persistence layer under the in-memory
// build cache. Artifacts are codegen.EncodeModule outputs (versioned header,
// sha256 integrity trailer) stored one file per pipeline.Key in a two-level
// fan-out directory. Everything is best-effort: a missing, truncated,
// bit-flipped, or version-stale artifact reads as a cache miss and triggers
// a recompile that overwrites it; an unwritable store directory disables the
// layer entirely. The store never surfaces an error to Build callers.
//
// Cross-process safety comes from atomic publication: writers produce the
// artifact in a temp file in the destination directory and rename it into
// place, so readers only ever observe complete files, and concurrent writers
// of one key (identical content by construction) just race renames.

// Environment knobs (canonical names in internal/config).
const (
	// cacheDirEnv overrides the store location. The values "off", "0", and
	// "none" disable the disk layer.
	cacheDirEnv = config.EnvCacheDir
	// cacheMaxEnv overrides the store size budget in bytes.
	cacheMaxEnv = config.EnvCacheMaxBytes
	// summaryEnv names a file that ReportTotals appends to, so CI can
	// surface per-process summaries that `go test` elides for passing
	// packages.
	summaryEnv = config.EnvCacheSummary

	// defaultMaxBytes bounds the store at 512 MB; the LRU sweep evicts
	// oldest-read artifacts once the total exceeds it.
	defaultMaxBytes = 512 << 20

	artifactExt = ".rpa"
)

// ReportTotals prints the process's cache totals, labeled (the suites'
// TestMain hooks call it on exit). `go test` only shows a passing package's
// output under -v, so when $REPRO_CACHE_SUMMARY names a file the line is
// also appended there — CI jobs cat it at the end to get the per-job
// memory/disk hit-miss summary regardless of verbosity.
func ReportTotals(label string) {
	line := fmt.Sprintf("[pipeline] %s cache totals: %v\n", label, Stats())
	if info, ok := RemoteState(); ok {
		line = fmt.Sprintf("[pipeline] %s cache totals: %v breaker=%s\n", label, Stats(), info.Breaker)
	}
	fmt.Print(line)
	if p := os.Getenv(summaryEnv); p != "" {
		if f, err := os.OpenFile(p, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			f.WriteString(line)
			f.Close()
		}
	}
}

// diskStore is one artifact store rooted at dir.
type diskStore struct {
	dir      string
	maxBytes int64

	// evictMu serializes eviction sweeps within the process and guards
	// curBytes/sized. Across processes the sweep sentinel (tryLockSweep)
	// elects a single sweeper; a concurrent sweep would still be safe
	// (removal of a file another process just read is benign — the reader
	// has its bytes), the sentinel only removes the wasted double scan.
	evictMu sync.Mutex
	// curBytes approximates the store's total size so publishes far under
	// budget skip the full directory sweep; it is seeded by one scan and
	// re-trued by every real sweep. Overwrites of an existing key
	// over-count, which only makes a sweep happen sooner, never later.
	curBytes int64
	sized    bool
}

var (
	storeMu  sync.Mutex
	theStore *diskStore
	storeSet bool
)

// artifactStore returns the process-wide disk store, opening it on first
// use. A nil return means the disk layer is disabled (explicitly, or because
// no writable location exists).
func artifactStore() *diskStore {
	storeMu.Lock()
	defer storeMu.Unlock()
	if !storeSet {
		theStore = openDefaultStore()
		storeSet = true
	}
	return theStore
}

// setStore replaces the process store (tests). Passing nil disables the
// layer; the previous store is returned for restoration.
func setStore(s *diskStore) *diskStore {
	storeMu.Lock()
	defer storeMu.Unlock()
	prev := theStore
	theStore = s
	storeSet = true
	return prev
}

// openDefaultStore resolves the store location from the environment. The
// actual store root is a compiler-fingerprint subdirectory of the
// configured location: pipeline.Key covers the inputs (source × config)
// but not the compiler, so without the fingerprint a store populated
// before a minic/codegen change would keep serving stale modules — a
// miscompilation fix would "pass" the suites without ever running.
func openDefaultStore() *diskStore {
	dir := os.Getenv(cacheDirEnv)
	switch dir {
	case "off", "0", "none":
		return nil
	case "":
		base, err := os.UserCacheDir()
		if err != nil {
			return nil
		}
		dir = filepath.Join(base, "repro-wasm", "artifacts")
	}
	maxBytes := int64(defaultMaxBytes)
	if n, err := parseCacheMax(os.Getenv(cacheMaxEnv)); err != nil {
		// An unparsable budget falls back to the default rather than
		// silently disabling the layer (REPRO_CACHE_DIR=off is the one
		// disable switch) — but loudly: a user who set the knob and mistyped
		// it would otherwise run at 512 MB and never know.
		warnCacheMaxOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "%v; using default %d\n", err, int64(defaultMaxBytes))
		})
	} else if n > 0 {
		maxBytes = n
	}
	fp, err := compilerFingerprint()
	if err != nil {
		// Without a fingerprint stale-compiler artifacts are
		// indistinguishable from fresh ones; correctness beats warmth.
		return nil
	}
	s := openStore(filepath.Join(dir, fp), maxBytes)
	if s != nil {
		pruneFingerprints(dir, fp)
	}
	return s
}

var warnCacheMaxOnce sync.Once

// parseCacheMax parses a $REPRO_CACHE_MAX_BYTES value (the shared contract
// lives in internal/config). Empty selects the default (ok with n == 0);
// anything that is not a positive integer is an error — the caller decides
// whether to warn, but never silently treats a typo as "use the default".
func parseCacheMax(v string) (n int64, err error) {
	return config.ParseCacheMaxBytes(v)
}

// compilerFingerprint identifies the code that produced an artifact: a hash
// of the running executable. The Go build cache rebuilds the binary
// whenever any transitively compiled source changes, so artifacts from an
// older compiler land under a different fingerprint and can never be
// served to a newer one. (The cost: any rebuild cold-starts the store;
// re-running an unchanged binary — the common warm path — still hits.)
func compilerFingerprint() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return "c-" + hex.EncodeToString(h.Sum(nil))[:16], nil
}

// keepFingerprints bounds how many compiler generations the store retains
// (the active one plus the most recently used others — useful when
// switching between branches or between test binaries of different
// packages).
const keepFingerprints = 8

// pruneFingerprints removes the oldest compiler-generation directories
// under root, keeping the active one (touched so it reads as newest) and
// the keepFingerprints-1 most recently used others. This is the only
// cleanup old generations get — per-generation LRU eviction never crosses
// fingerprint boundaries.
func pruneFingerprints(root, active string) {
	now := time.Now()
	os.Chtimes(filepath.Join(root, active), now, now)
	ents, err := os.ReadDir(root)
	if err != nil {
		return
	}
	type gen struct {
		name  string
		mtime time.Time
	}
	var gens []gen
	for _, ent := range ents {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "c-") || ent.Name() == active {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		gens = append(gens, gen{ent.Name(), info.ModTime()})
	}
	if len(gens) <= keepFingerprints-1 {
		return
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].mtime.After(gens[j].mtime) })
	for _, g := range gens[keepFingerprints-1:] {
		os.RemoveAll(filepath.Join(root, g.name))
	}
}

// openStore opens (creating if needed) a store rooted at dir, returning nil
// when the location is unusable.
func openStore(dir string, maxBytes int64) *diskStore {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &diskStore{dir: dir, maxBytes: maxBytes}
}

// path returns the artifact file for key, fanned out by the first key byte
// so one directory never accumulates the whole store.
func (s *diskStore) path(key string) string {
	if len(key) < 2 {
		key = "zz" + key
	}
	return filepath.Join(s.dir, key[:2], key+artifactExt)
}

// ioAttempts is how many times a store read or write is tried before the
// failure is treated as a miss. Transient errors (NFS hiccups, AV scanners
// holding files, injected faults) get two retries with capped jittered
// backoff; a missing artifact is the normal miss path and never retried.
const ioAttempts = 3

// retryClock is the backoff loop's time source, swappable so tests can pin
// attempt counts and backoff schedules without wall-clock sleeps or a live
// math/rand stream. It is held in an atomic so a swap never races a
// background reader (the remote tier's publish worker retries off-thread);
// sleep returns early when ctx is done (best-effort; the loop re-checks
// ctx after every sleep).
type retryClock struct {
	sleep  func(ctx context.Context, d time.Duration)
	jitter func(n int64) int64
}

var retryTime atomic.Pointer[retryClock]

func init() {
	retryTime.Store(&retryClock{
		sleep: func(ctx context.Context, d time.Duration) {
			if ctx.Done() == nil {
				time.Sleep(d)
				return
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		},
		jitter: func(n int64) int64 { return rand.Int63n(n) },
	})
}

// retryIO runs op up to ioAttempts times, sleeping a capped jittered backoff
// between attempts (5–10ms, 10–20ms). fs.ErrNotExist is returned immediately:
// an absent artifact is a cache miss, not a transient fault. The fault check
// sits inside the loop so count-limited injected errors exercise the retries.
func retryIO(site, key string, op func() error) error {
	return retryIOCtx(context.Background(), site, key, ioAttempts, 0,
		func(context.Context) error { return op() })
}

// retryIOCtx is the retry loop shared by the disk store and the remote
// tier: up to attempts tries of op, capped jittered backoff between them,
// fs.ErrNotExist passed through untried (a miss is not a fault). When
// attemptTimeout is nonzero each attempt — including its fault check — runs
// under its own deadline, so an injected or real hang costs one timeout,
// not the rule's full delay; a done parent ctx stops the loop.
func retryIOCtx(ctx context.Context, site, key string, attempts int, attemptTimeout time.Duration, op func(context.Context) error) error {
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			clock := retryTime.Load()
			backoff := time.Duration(1<<attempt) * 5 * time.Millisecond / 2
			backoff += time.Duration(clock.jitter(int64(backoff) + 1))
			clock.sleep(ctx, backoff)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if attemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, attemptTimeout)
		}
		if err = fault.CheckCtx(actx, site, key); err == nil {
			err = op(actx)
		}
		cancel()
		if err == nil || errors.Is(err, fs.ErrNotExist) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// loadBytes reads the raw artifact bytes for key. A read error is retried
// (retryIO); a missing artifact is a plain miss. Successful reads refresh
// the LRU position. No decoding or verification happens here — load and the
// artifact-serving endpoint layer their own checks on top.
func (s *diskStore) loadBytes(key string) ([]byte, bool) {
	p := s.path(key)
	var data []byte
	err := retryIO(fault.SiteStoreRead, key, func() error {
		var rerr error
		data, rerr = os.ReadFile(p)
		return rerr
	})
	if err != nil {
		return nil, false
	}
	now := time.Now()
	os.Chtimes(p, now, now) // LRU touch; best-effort
	return data, true
}

// load reads and decodes the artifact for key, reattaching cfg. A read error
// is retried (retryIO); decode failure — truncation, corruption, version
// mismatch — quarantines the artifact (so the subsequent recompile
// republishes a clean one, and the corrupt bytes stay inspectable) and
// reports a miss via ok=false.
func (s *diskStore) load(key string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, bool) {
	data, ok := s.loadBytes(key)
	if !ok {
		return nil, false
	}
	cm, err := codegen.DecodeModule(data, cfg)
	if err != nil {
		s.quarantine(s.path(key))
		return nil, false
	}
	return cm, true
}

// saveBytes atomically publishes already-encoded artifact bytes under key,
// then sweeps the store back under its size budget. Publication is retried
// like reads; persistent failure leaves the store without the artifact,
// which only costs a future recompile. The caller is responsible for the
// bytes being a valid artifact for key (build encodes its own output; the
// remote paths verify before saving).
func (s *diskStore) saveBytes(key string, data []byte) error {
	p := s.path(key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := retryIO(fault.SiteStoreWrite, key, func() error {
		return s.publish(dir, p, data)
	})
	if err != nil {
		return err
	}
	s.evict(int64(len(data)))
	return nil
}

// publish writes data to a temp file in dir and renames it over p. Atomic
// publication: concurrent writers of one key rename complete files over each
// other; readers never see a partial artifact.
func (s *diskStore) publish(dir, p string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Quarantine layout: corrupt artifacts are moved (not deleted) to
// quarantine/<base>.rpa.quarantined under the store root. The extra suffix
// keeps scan from ever counting them as artifacts again; the age bound keeps
// a store that keeps corrupting (bad disk) from leaking space forever.
const (
	quarantineDirName = "quarantine"
	quarantinedExt    = ".quarantined"
	// staleQuarantineAge is how long a quarantined artifact is kept for
	// inspection before a sweep reclaims it.
	staleQuarantineAge = 24 * time.Hour
)

// quarantine moves the corrupt artifact at p aside instead of silently
// deleting it: corruption is a signal (bad disk, torn write, encoder bug)
// that should stay visible in CacheStats and inspectable on disk. Falls back
// to removal when the move fails — a corrupt artifact must never be
// re-served either way.
func (s *diskStore) quarantine(p string) {
	countCorrupt()
	qdir := filepath.Join(s.dir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(p)
		return
	}
	if err := os.Rename(p, filepath.Join(qdir, filepath.Base(p)+quarantinedExt)); err != nil {
		os.Remove(p)
		return
	}
	countQuarantined()
}

// reclaimQuarantine removes quarantined artifacts old enough that nobody is
// coming back to inspect them. Called from scan, so reclamation rides the
// same sweeps that bound the store's size.
func (s *diskStore) reclaimQuarantine(now time.Time) {
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDirName))
	if err != nil {
		return
	}
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), quarantinedExt) {
			continue
		}
		if info, err := ent.Info(); err == nil && now.Sub(info.ModTime()) > staleQuarantineAge {
			os.Remove(filepath.Join(s.dir, quarantineDirName, ent.Name()))
		}
	}
}

// storedFile is one artifact during an eviction sweep.
type storedFile struct {
	path  string
	size  int64
	mtime time.Time
}

// sweepLockName is the cross-process sweep sentinel at the store root.
// Concurrent `go test` processes sharing one REPRO_CACHE_DIR each used to
// sweep independently — safe (removals of just-read files are benign) but
// wasteful: every process walked the whole store. The sentinel elects one
// sweeper: whoever creates it (O_EXCL) sweeps; everyone else skips, keeps
// its over-budget size accounting, and retries at its next publish, by
// which point the elected sweeper has usually brought the store under
// budget anyway.
const sweepLockName = ".sweep-lock"

// staleSweepLockAge is how old the sentinel must be before another process
// steals it: far longer than any sweep (milliseconds), short enough that a
// sweeper killed mid-walk cannot disable eviction for the store's lifetime.
const staleSweepLockAge = 10 * time.Minute

// tryLockSweep claims the sweep sentinel. It never blocks: a fresh sentinel
// means another process is sweeping and the caller should skip; a stale one
// (crashed sweeper) is removed and the claim retried once.
func (s *diskStore) tryLockSweep(now time.Time) bool {
	p := filepath.Join(s.dir, sweepLockName)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return true
		}
		if !os.IsExist(err) {
			// Unwritable root: the store is best-effort everywhere else
			// too, so just skip the sweep.
			return false
		}
		info, serr := os.Stat(p)
		if serr != nil {
			// The holder released between our create and stat; retry once.
			continue
		}
		if now.Sub(info.ModTime()) <= staleSweepLockAge {
			return false
		}
		// Stale sentinel from a crashed sweeper: steal it by renaming it
		// aside. The rename is the atomic election — exactly one contender
		// succeeds (the rest see ENOENT and report the lock busy), so a
		// loser's cleanup can never delete the sentinel the winner is
		// about to create with O_EXCL.
		stolen := fmt.Sprintf("%s.stale-%d", p, os.Getpid())
		if os.Rename(p, stolen) != nil {
			return false
		}
		os.Remove(stolen)
	}
	return false
}

// unlockSweep releases the sweep sentinel.
func (s *diskStore) unlockSweep() {
	os.Remove(filepath.Join(s.dir, sweepLockName))
}

// staleTempAge is how old an unpublished .tmp-* file must be before a sweep
// reclaims it: long enough that a concurrent writer's in-flight temp file
// is never deleted under it, short enough that crashed writers cannot leak
// space across runs.
const staleTempAge = time.Hour

// evict charges justWrote bytes against the running size total and, once
// the budget is exceeded, sweeps the store back under it. mtime is the LRU
// clock: load refreshes it on every hit. The running total makes the common
// under-budget publish O(1) — only sweeps walk the directory, and only one
// process at a time does (the sweep sentinel): a loser keeps its
// over-budget accounting and retries at its next publish.
func (s *diskStore) evict(justWrote int64) {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	if s.sized {
		s.curBytes += justWrote
		if s.curBytes <= s.maxBytes {
			return
		}
	}
	if !s.tryLockSweep(time.Now()) {
		return
	}
	defer s.unlockSweep()
	// Sweep to 90% of the budget, not the budget itself: a store hovering
	// at its cap would otherwise pay a full directory walk on every
	// publish. The slack amortizes one walk over many publishes. (Explicit
	// GCStore still targets the exact budget — the user asked for it.)
	s.sweepTo(s.maxBytes - s.maxBytes/10)
}

// scan walks the store, reclaiming stale temp files from interrupted
// writers along the way, and returns every artifact on disk. An unreadable
// store root is an error, so callers can tell "empty" from "unknown" and
// leave the size accounting alone. Callers hold evictMu.
func (s *diskStore) scan(now time.Time) ([]storedFile, error) {
	var files []storedFile
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, sub := range subdirs {
		if sub.Name() == quarantineDirName {
			s.reclaimQuarantine(now)
			continue
		}
		if !sub.IsDir() {
			// A .sweep-lock.stale-<pid> orphan is a stolen sentinel whose
			// thief died between the rename-aside and the remove; reclaim
			// it once it is old enough that the thief is certainly gone.
			if strings.HasPrefix(sub.Name(), sweepLockName+".stale-") {
				if info, err := sub.Info(); err == nil && now.Sub(info.ModTime()) > staleSweepLockAge {
					os.Remove(filepath.Join(s.dir, sub.Name()))
				}
			}
			continue
		}
		ents, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, ent := range ents {
			p := filepath.Join(s.dir, sub.Name(), ent.Name())
			info, err := ent.Info()
			if err != nil {
				continue
			}
			if filepath.Ext(ent.Name()) != artifactExt {
				// Orphaned temp file from a writer that died between
				// CreateTemp and Rename.
				if strings.HasPrefix(ent.Name(), ".tmp-") && now.Sub(info.ModTime()) > staleTempAge {
					os.Remove(p)
				}
				continue
			}
			files = append(files, storedFile{path: p, size: info.Size(), mtime: info.ModTime()})
		}
	}
	return files, nil
}

// sweepTo walks the store and removes least-recently-used artifacts until
// the total fits under target bytes, re-truing the running size total.
// Callers hold evictMu. It reports how many artifacts were removed and the
// bytes they freed. A failed scan leaves the size accounting untouched
// (the next sweep retries) rather than re-truing it to zero.
func (s *diskStore) sweepTo(target int64) (removed int, freed int64) {
	files, err := s.scan(time.Now())
	if err != nil {
		return 0, 0
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total > target {
		sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
		for _, f := range files {
			if total <= target {
				break
			}
			if os.Remove(f.path) == nil {
				total -= f.size
				removed++
				freed += f.size
			}
		}
	}
	s.curBytes = total
	s.sized = true
	return removed, freed
}
