package pipeline

import (
	"context"

	"repro/internal/sched"
)

// Job is one unit of suite work; an alias of the shared scheduler's job type
// (the implementation lives in internal/sched so leaf packages like codegen
// can fan work out through the same pool without importing the pipeline).
type Job = sched.Job

// DefaultWorkers is the scheduler's default parallelism: the machine's
// GOMAXPROCS, instead of a hardcoded width.
func DefaultWorkers() int { return sched.DefaultWorkers() }

// RunJobs executes jobs on a bounded worker pool and returns every failure,
// joined with errors.Join in job order (not completion order). workers <= 0
// selects DefaultWorkers. When ctx is cancelled, queued jobs are abandoned,
// in-flight jobs see the cancelled context, and ctx's error is included in
// the aggregate.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	return sched.RunJobs(ctx, workers, jobs)
}
