package pipeline

import (
	"context"

	"repro/internal/sched"
)

// Job is one unit of suite work; an alias of the shared scheduler's job type
// (the implementation lives in internal/sched so leaf packages like codegen
// can fan work out through the same pool without importing the pipeline).
type Job = sched.Job

// DefaultWorkers is the scheduler's default parallelism: the machine's
// GOMAXPROCS, instead of a hardcoded width.
func DefaultWorkers() int { return sched.DefaultWorkers() }

// RunJobs executes jobs with bounded parallelism and returns every failure,
// joined with errors.Join in job order (not completion order). workers <= 0
// selects DefaultWorkers. The width is additionally capped by the
// process-wide scheduler budget (sched.Shared): the calling goroutine
// always participates, and extra workers exist only while a budget token
// can be borrowed — so suite fan-out and the per-function compile fan-out
// inside each suite job (codegen.Compile, reached through Build) share one
// pool instead of multiplying, keeping a cold suite start at roughly
// GOMAXPROCS runnable goroutines at any nesting depth. When ctx is
// cancelled, undispatched jobs are abandoned, in-flight jobs see the
// cancelled context, and ctx's error is included in the aggregate.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	return sched.RunJobs(ctx, workers, jobs)
}

// WeightedJob is a job with a dispatch weight (for suite work, the
// workload's expected simulated instruction count).
type WeightedJob = sched.WeightedJob

// RunJobsWeighted is RunJobs with longest-job-first dispatch: jobs are
// claimed in descending weight order so heavyweight workloads start early
// instead of serializing at the tail. Error aggregation order and all
// budget-sharing behavior match RunJobs.
func RunJobsWeighted(ctx context.Context, workers int, jobs []WeightedJob) error {
	return sched.RunJobsWeighted(ctx, workers, jobs)
}
