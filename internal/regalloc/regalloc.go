// Package regalloc implements the two register allocators contrasted by the
// paper: the fast linear-scan allocator used by the browser JITs (V8 and
// SpiderMonkey, after Wimmer & Franz) and an iterated graph-colouring
// allocator standing in for Clang's greedy allocator. Both consume internal/ir
// functions and produce a per-vreg location assignment.
package regalloc

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/x86"
)

// LocKind distinguishes assignment results.
type LocKind uint8

// Location kinds.
const (
	LocNone LocKind = iota
	LocReg
	LocSpill
)

// Location is where a vreg lives for its whole lifetime (no live-range
// splitting in this model; splitting is approximated by the allocators'
// spill decisions).
type Location struct {
	Kind LocKind
	Reg  x86.Reg
	Slot int // spill slot index (8 bytes per slot)
}

// Result is the output of allocation.
type Result struct {
	Loc        []Location
	NumSlots   int
	UsedCallee []x86.Reg // callee-saved registers the function must preserve
	Spills     int       // number of spilled vregs (for diagnostics)
}

// Config describes the register environment of a target engine.
type Config struct {
	GP []x86.Reg // allocatable GPRs, in preference order
	FP []x86.Reg // allocatable XMMs
	// CalleeSavedGP lists which of GP survive calls. Values live across a
	// call must land in one of these or spill.
	CalleeSavedGP map[x86.Reg]bool
}

// interval is a live interval over linearized instruction positions.
type interval struct {
	v           ir.VReg
	start, end  int
	crossesCall bool
	weight      float64 // spill cost estimate
	uses        int
}

// buildIntervals linearizes the function and computes one conservative
// interval per vreg, extended over blocks where the vreg is live.
func buildIntervals(f *ir.Func, lv *ir.Liveness) ([]interval, []int) {
	// Global positions.
	pos := 0
	blockStart := make([]int, len(f.Blocks))
	blockEnd := make([]int, len(f.Blocks))
	var callPos []int
	type ref struct{ def bool }
	starts := make([]int, f.NumV)
	ends := make([]int, f.NumV)
	uses := make([]int, f.NumV)
	weight := make([]float64, f.NumV)
	seen := make([]bool, f.NumV)
	touch := func(v ir.VReg, p int, w float64) {
		if !seen[v] {
			starts[v], ends[v] = p, p
			seen[v] = true
		} else {
			if p < starts[v] {
				starts[v] = p
			}
			if p > ends[v] {
				ends[v] = p
			}
		}
		uses[v]++
		weight[v] += w
	}
	// Parameters are defined at function entry, before the first
	// instruction: their intervals begin at -1 so two params never share a
	// register and a call at position 0 still counts as crossed.
	for _, p := range f.Params {
		touch(p, -1, 1)
	}
	for bi, b := range f.Blocks {
		blockStart[bi] = pos
		w := 1.0
		if f.LoopDepth != nil {
			for d := 0; d < f.LoopDepth[bi]; d++ {
				w *= 10
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			in.VisitUses(func(v ir.VReg) { touch(v, pos, w) })
			if d := in.Defs(); d != ir.NoV {
				touch(d, pos, w)
			}
			if in.Op.IsCall() {
				callPos = append(callPos, pos)
			}
			pos++
		}
		blockEnd[bi] = pos - 1
	}
	// Extend intervals over live ranges: a vreg live-in at a block lives
	// from the block start; live-out lives to the block end.
	for bi := range f.Blocks {
		lv.In[bi].ForEach(func(v ir.VReg) {
			if !seen[v] {
				return
			}
			if blockStart[bi] < starts[v] {
				starts[v] = blockStart[bi]
			}
			if blockEnd[bi] > ends[v] {
				ends[v] = blockEnd[bi]
			}
		})
		lv.Out[bi].ForEach(func(v ir.VReg) {
			if !seen[v] {
				return
			}
			if blockEnd[bi] > ends[v] {
				ends[v] = blockEnd[bi]
			}
		})
	}
	var ivs []interval
	for v := 0; v < f.NumV; v++ {
		if !seen[v] {
			continue
		}
		iv := interval{v: ir.VReg(v), start: starts[v], end: ends[v], uses: uses[v], weight: weight[v]}
		for _, cp := range callPos {
			if cp > iv.start && cp < iv.end {
				iv.crossesCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})
	return ivs, callPos
}

// LinearScan allocates with the Poletto/Sarkar linear-scan algorithm: one
// pass over intervals sorted by start, spilling the interval with the
// furthest end when registers run out. This mirrors the browsers' fast
// online allocators and deliberately produces more spills than colouring.
func LinearScan(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	ivs, _ := buildIntervals(f, lv)
	res := &Result{Loc: make([]Location, f.NumV)}
	usedCallee := map[x86.Reg]bool{}

	for _, class := range []ir.Class{ir.GP, ir.FP} {
		var regs []x86.Reg
		if class == ir.GP {
			regs = cfg.GP
		} else {
			regs = cfg.FP
		}
		free := make(map[x86.Reg]bool, len(regs))
		for _, r := range regs {
			free[r] = true
		}
		type activeIv struct {
			interval
			reg x86.Reg
		}
		var active []activeIv

		expire := func(p int) {
			k := 0
			for _, a := range active {
				if a.end < p {
					free[a.reg] = true
				} else {
					active[k] = a
					k++
				}
			}
			active = active[:k]
		}
		allowed := func(iv interval, r x86.Reg) bool {
			if class == ir.FP {
				// All XMM regs are caller-saved; call-crossing FP
				// values must spill.
				return !iv.crossesCall
			}
			if iv.crossesCall && !cfg.CalleeSavedGP[r] {
				return false
			}
			return true
		}
		spillSlot := func(v ir.VReg) {
			res.Loc[v] = Location{Kind: LocSpill, Slot: res.NumSlots}
			res.NumSlots++
			res.Spills++
		}

		for _, iv := range ivs {
			if f.Class[iv.v] != class {
				continue
			}
			expire(iv.start)
			if class == ir.FP && iv.crossesCall {
				spillSlot(iv.v)
				continue
			}
			var got x86.Reg = 0xff
			for _, r := range regs {
				if free[r] && allowed(iv, r) {
					got = r
					break
				}
			}
			if got == 0xff {
				// Spill the active interval ending furthest away if it
				// ends later than ours (Poletto heuristic), provided its
				// register is legal for us.
				victim := -1
				for i, a := range active {
					if !allowed(iv, a.reg) {
						continue
					}
					if victim < 0 || a.end > active[victim].end {
						victim = i
					}
				}
				if victim >= 0 && active[victim].end > iv.end {
					a := active[victim]
					spillSlot(a.v)
					got = a.reg
					active = append(active[:victim], active[victim+1:]...)
				} else {
					spillSlot(iv.v)
					continue
				}
			}
			free[got] = false
			if cfg.CalleeSavedGP[got] {
				usedCallee[got] = true
			}
			res.Loc[iv.v] = Location{Kind: LocReg, Reg: got}
			active = append(active, activeIv{iv, got})
		}
	}
	for r := range usedCallee {
		res.UsedCallee = append(res.UsedCallee, r)
	}
	sort.Slice(res.UsedCallee, func(i, j int) bool { return res.UsedCallee[i] < res.UsedCallee[j] })
	return res
}
