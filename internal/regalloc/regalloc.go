// Package regalloc implements the two register allocators contrasted by the
// paper: the fast linear-scan allocator used by the browser JITs (V8 and
// SpiderMonkey, after Wimmer & Franz) and an iterated graph-colouring
// allocator standing in for Clang's greedy allocator. Both consume internal/ir
// functions and produce a per-vreg location assignment.
//
// Both allocators run out of a Scratch, which owns every transient: interval
// tables, the dense-bitset interference graph, worklists, and the Result
// itself. A compile pipeline keeps one Scratch per worker and allocates
// nothing in steady state; the package-level LinearScan/GraphColor wrappers
// allocate a fresh Scratch per call for one-shot users.
package regalloc

import (
	"cmp"
	"slices"

	"repro/internal/ir"
	"repro/internal/x86"
)

// LocKind distinguishes assignment results.
type LocKind uint8

// Location kinds.
const (
	LocNone LocKind = iota
	LocReg
	LocSpill
)

// Location is where a vreg lives for its whole lifetime (no live-range
// splitting in this model; splitting is approximated by the allocators'
// spill decisions).
type Location struct {
	Kind LocKind
	Reg  x86.Reg
	Slot int // spill slot index (8 bytes per slot)
}

// Result is the output of allocation.
type Result struct {
	Loc        []Location
	NumSlots   int
	UsedCallee []x86.Reg // callee-saved registers the function must preserve
	Spills     int       // number of spilled vregs (for diagnostics)
}

// Config describes the register environment of a target engine.
type Config struct {
	GP []x86.Reg // allocatable GPRs, in preference order
	FP []x86.Reg // allocatable XMMs
	// CalleeSavedGP lists which of GP survive calls. Values live across a
	// call must land in one of these or spill.
	CalleeSavedGP map[x86.Reg]bool
}

// Scratch owns the recyclable working state of both allocators, including
// the returned Result: a Result is valid until the next allocation on the
// same Scratch.
type Scratch struct {
	res Result

	// Interval construction (both allocators' cost model).
	blockStart []int
	blockEnd   []int
	callPos    []int
	starts     []int
	ends       []int
	uses       []int
	weight     []float64
	seen       []bool
	ivs        []interval
	active     []activeIv

	// Graph colouring.
	g       igraph
	crosses []bool
	present []bool
	moves   []move
	liveBuf ir.Bitset
	nbBuf   ir.Bitset
	nodes   []ir.VReg
	work    []ir.VReg
	stack   []ir.VReg
	repSeen []bool
	removed []bool
	colorOf []x86.Reg // NoReg = uncoloured
	spilled []bool
	callee  []x86.Reg // callee-saved subset of the class regs, in order

	// usedCallee accumulator, indexed by register number.
	used [64]bool
}

// grown returns s resized to n elements with all elements zeroed.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resetResult recycles the scratch Result for a function with numV vregs.
func (s *Scratch) resetResult(numV int) *Result {
	r := &s.res
	r.Loc = grown(r.Loc, numV)
	r.NumSlots = 0
	r.Spills = 0
	r.UsedCallee = r.UsedCallee[:0]
	clear(s.used[:])
	return r
}

// collectUsedCallee appends the accumulated callee-saved registers in
// ascending register order (the same order the map-and-sort version
// produced).
func (s *Scratch) collectUsedCallee(r *Result) {
	for reg := range s.used {
		if s.used[reg] {
			r.UsedCallee = append(r.UsedCallee, x86.Reg(reg))
		}
	}
}

// interval is a live interval over linearized instruction positions.
type interval struct {
	v           ir.VReg
	start, end  int
	crossesCall bool
	weight      float64 // spill cost estimate
	uses        int
}

// activeIv is an interval currently holding a register in linear scan.
type activeIv struct {
	interval
	reg x86.Reg
}

// buildIntervals linearizes the function and computes one conservative
// interval per vreg, extended over blocks where the vreg is live. The
// returned slice is scratch-owned.
func (s *Scratch) buildIntervals(f *ir.Func, lv *ir.Liveness) []interval {
	pos := 0
	s.blockStart = grown(s.blockStart, len(f.Blocks))
	s.blockEnd = grown(s.blockEnd, len(f.Blocks))
	s.callPos = s.callPos[:0]
	s.starts = grown(s.starts, f.NumV)
	s.ends = grown(s.ends, f.NumV)
	s.uses = grown(s.uses, f.NumV)
	s.weight = grown(s.weight, f.NumV)
	s.seen = grown(s.seen, f.NumV)
	touch := func(v ir.VReg, p int, w float64) {
		if !s.seen[v] {
			s.starts[v], s.ends[v] = p, p
			s.seen[v] = true
		} else {
			if p < s.starts[v] {
				s.starts[v] = p
			}
			if p > s.ends[v] {
				s.ends[v] = p
			}
		}
		s.uses[v]++
		s.weight[v] += w
	}
	// Parameters are defined at function entry, before the first
	// instruction: their intervals begin at -1 so two params never share a
	// register and a call at position 0 still counts as crossed.
	for _, p := range f.Params {
		touch(p, -1, 1)
	}
	for bi, b := range f.Blocks {
		s.blockStart[bi] = pos
		w := 1.0
		if f.LoopDepth != nil {
			for d := 0; d < f.LoopDepth[bi]; d++ {
				w *= 10
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			in.VisitUses(func(v ir.VReg) { touch(v, pos, w) })
			if d := in.Defs(); d != ir.NoV {
				touch(d, pos, w)
			}
			if in.Op.IsCall() {
				s.callPos = append(s.callPos, pos)
			}
			pos++
		}
		s.blockEnd[bi] = pos - 1
	}
	// Extend intervals over live ranges: a vreg live-in at a block lives
	// from just before the block start; live-out lives to the block end.
	// The -1 matters when the block's first instruction is a call: a vreg
	// live-in there is live THROUGH that call (its defs are in predecessor
	// blocks), unlike a vreg the call itself defines, and the strict
	// cp > start in the crossesCall scan below must see it as crossing —
	// same reason parameter intervals begin at -1.
	for bi := range f.Blocks {
		lv.In[bi].ForEach(func(v ir.VReg) {
			if !s.seen[v] {
				return
			}
			if s.blockStart[bi]-1 < s.starts[v] {
				s.starts[v] = s.blockStart[bi] - 1
			}
			if s.blockEnd[bi] > s.ends[v] {
				s.ends[v] = s.blockEnd[bi]
			}
		})
		lv.Out[bi].ForEach(func(v ir.VReg) {
			if !s.seen[v] {
				return
			}
			if s.blockEnd[bi] > s.ends[v] {
				s.ends[v] = s.blockEnd[bi]
			}
		})
	}
	s.ivs = s.ivs[:0]
	for v := 0; v < f.NumV; v++ {
		if !s.seen[v] {
			continue
		}
		iv := interval{v: ir.VReg(v), start: s.starts[v], end: s.ends[v], uses: s.uses[v], weight: s.weight[v]}
		for _, cp := range s.callPos {
			if cp > iv.start && cp < iv.end {
				iv.crossesCall = true
				break
			}
		}
		s.ivs = append(s.ivs, iv)
	}
	// The (start, v) key is unique per interval, so the sort is a total
	// order and any sorting algorithm produces the same permutation.
	slices.SortFunc(s.ivs, func(a, b interval) int {
		if a.start != b.start {
			return cmp.Compare(a.start, b.start)
		}
		return cmp.Compare(a.v, b.v)
	})
	return s.ivs
}

// LinearScan allocates with the Poletto/Sarkar linear-scan algorithm through
// a fresh Scratch. See Scratch.LinearScan.
func LinearScan(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	return new(Scratch).LinearScan(f, lv, cfg)
}

// LinearScan allocates with the Poletto/Sarkar linear-scan algorithm: one
// pass over intervals sorted by start, spilling the interval with the
// furthest end when registers run out. This mirrors the browsers' fast
// online allocators and deliberately produces more spills than colouring.
// The Result is scratch-owned: valid until the next allocation on s.
func (s *Scratch) LinearScan(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	ivs := s.buildIntervals(f, lv)
	res := s.resetResult(f.NumV)

	// free is indexed by register number; only registers of the current
	// class are ever marked free, so the check below doubles as the class
	// membership test.
	var free [64]bool

	for _, class := range []ir.Class{ir.GP, ir.FP} {
		var regs []x86.Reg
		if class == ir.GP {
			regs = cfg.GP
		} else {
			regs = cfg.FP
		}
		clear(free[:])
		for _, r := range regs {
			free[r] = true
		}
		s.active = s.active[:0]
		active := s.active

		expire := func(p int) {
			k := 0
			for _, a := range active {
				if a.end < p {
					free[a.reg] = true
				} else {
					active[k] = a
					k++
				}
			}
			active = active[:k]
		}
		allowed := func(iv interval, r x86.Reg) bool {
			if class == ir.FP {
				// All XMM regs are caller-saved; call-crossing FP
				// values must spill.
				return !iv.crossesCall
			}
			if iv.crossesCall && !cfg.CalleeSavedGP[r] {
				return false
			}
			return true
		}
		spillSlot := func(v ir.VReg) {
			res.Loc[v] = Location{Kind: LocSpill, Slot: res.NumSlots}
			res.NumSlots++
			res.Spills++
		}

		for _, iv := range ivs {
			if f.Class[iv.v] != class {
				continue
			}
			expire(iv.start)
			if class == ir.FP && iv.crossesCall {
				spillSlot(iv.v)
				continue
			}
			var got x86.Reg = 0xff
			for _, r := range regs {
				if free[r] && allowed(iv, r) {
					got = r
					break
				}
			}
			if got == 0xff {
				// Spill the active interval ending furthest away if it
				// ends later than ours (Poletto heuristic), provided its
				// register is legal for us.
				victim := -1
				for i, a := range active {
					if !allowed(iv, a.reg) {
						continue
					}
					if victim < 0 || a.end > active[victim].end {
						victim = i
					}
				}
				if victim >= 0 && active[victim].end > iv.end {
					a := active[victim]
					spillSlot(a.v)
					got = a.reg
					active = append(active[:victim], active[victim+1:]...)
				} else {
					spillSlot(iv.v)
					continue
				}
			}
			free[got] = false
			if cfg.CalleeSavedGP[got] {
				s.used[got] = true
			}
			res.Loc[iv.v] = Location{Kind: LocReg, Reg: got}
			active = append(active, activeIv{iv, got})
		}
		if cap(active) > cap(s.active) {
			s.active = active // keep the grown buffer for next time
		}
	}
	s.collectUsedCallee(res)
	return res
}
