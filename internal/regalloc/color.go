package regalloc

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/x86"
)

// GraphColor allocates with an iterated Chaitin/Briggs-style graph-colouring
// allocator with conservative move coalescing, standing in for Clang's greedy
// allocator. It consistently produces fewer spills and fewer moves than
// LinearScan, which is the paper's §6.1.2 point.
func GraphColor(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	res := &Result{Loc: make([]Location, f.NumV)}
	usedCallee := map[x86.Reg]bool{}

	for _, class := range []ir.Class{ir.GP, ir.FP} {
		var regs []x86.Reg
		if class == ir.GP {
			regs = cfg.GP
		} else {
			regs = cfg.FP
		}
		colorClass(f, lv, cfg, class, regs, res, usedCallee)
	}
	for r := range usedCallee {
		res.UsedCallee = append(res.UsedCallee, r)
	}
	sort.Slice(res.UsedCallee, func(i, j int) bool { return res.UsedCallee[i] < res.UsedCallee[j] })
	return res
}

type igraph struct {
	n     int
	adj   []map[ir.VReg]bool
	alias []ir.VReg // union-find for coalescing
}

func (g *igraph) find(v ir.VReg) ir.VReg {
	for g.alias[v] != v {
		g.alias[v] = g.alias[g.alias[v]]
		v = g.alias[v]
	}
	return v
}

func (g *igraph) addEdge(a, b ir.VReg) {
	a, b = g.find(a), g.find(b)
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = map[ir.VReg]bool{}
	}
	if g.adj[b] == nil {
		g.adj[b] = map[ir.VReg]bool{}
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

func (g *igraph) interferes(a, b ir.VReg) bool {
	a, b = g.find(a), g.find(b)
	return a == b || g.adj[a][b]
}

func colorClass(f *ir.Func, lv *ir.Liveness, cfg *Config, class ir.Class,
	regs []x86.Reg, res *Result, usedCallee map[x86.Reg]bool) {

	inClass := func(v ir.VReg) bool { return f.Class[v] == class }

	// Build interference graph + collect stats by walking blocks backward.
	g := &igraph{n: f.NumV, adj: make([]map[ir.VReg]bool, f.NumV), alias: make([]ir.VReg, f.NumV)}
	for i := range g.alias {
		g.alias[i] = ir.VReg(i)
	}
	weight := make([]float64, f.NumV)
	crossesCall := make([]bool, f.NumV)
	present := make([]bool, f.NumV)
	type move struct{ dst, src ir.VReg }
	var moves []move

	for bi, b := range f.Blocks {
		live := lv.Out[bi].Copy()
		w := 1.0
		if f.LoopDepth != nil {
			for d := 0; d < f.LoopDepth[bi]; d++ {
				w *= 10
			}
		}
		for i := len(b.Ins) - 1; i >= 0; i-- {
			in := &b.Ins[i]
			d := in.Defs()
			if d != ir.NoV && inClass(d) {
				present[d] = true
				weight[d] += w
				// Def interferes with everything live after it,
				// except a move source (coalescable).
				var moveSrc ir.VReg = ir.NoV
				if in.Op == ir.Mov && in.A != ir.NoV && inClass(in.A) {
					moveSrc = in.A
					moves = append(moves, move{dst: d, src: in.A})
				}
				live.ForEach(func(v ir.VReg) {
					if v != d && v != moveSrc && inClass(v) {
						g.addEdge(d, v)
					}
				})
			}
			if in.Op.IsCall() {
				live.ForEach(func(v ir.VReg) {
					if v != d && inClass(v) {
						crossesCall[v] = true
					}
				})
			}
			if d != ir.NoV {
				live.Clear(d)
			}
			in.VisitUses(func(v ir.VReg) {
				live.Set(v)
				if inClass(v) {
					present[v] = true
					weight[v] += w
				}
			})
		}
	}

	// Parameters are all live at function entry and therefore interfere
	// pairwise (and with anything else live-in to the entry block).
	for i, p := range f.Params {
		if !inClass(p) {
			continue
		}
		for _, q := range f.Params[i+1:] {
			if inClass(q) {
				g.addEdge(p, q)
			}
		}
		lv.In[0].ForEach(func(v ir.VReg) {
			if v != p && inClass(v) {
				g.addEdge(p, v)
			}
		})
	}

	// Conservative (Briggs) coalescing: merge move-related pairs whose
	// combined high-degree neighbour count stays below K.
	K := len(regs)
	degree := func(v ir.VReg) int { return len(g.adj[g.find(v)]) }
	for _, mv := range moves {
		a, b := g.find(mv.dst), g.find(mv.src)
		if a == b || g.interferes(a, b) {
			continue
		}
		if crossesCall[a] != crossesCall[b] {
			continue // keep call-crossing property exact
		}
		// Count combined neighbours of significant degree.
		nb := map[ir.VReg]bool{}
		for n := range g.adj[a] {
			nb[g.find(n)] = true
		}
		for n := range g.adj[b] {
			nb[g.find(n)] = true
		}
		high := 0
		for n := range nb {
			if len(g.adj[n]) >= K {
				high++
			}
		}
		if high >= K {
			continue
		}
		// Merge b into a.
		g.alias[b] = a
		for n := range g.adj[b] {
			g.addEdge(a, n)
			delete(g.adj[n], b)
		}
		g.adj[b] = nil
		weight[a] += weight[b]
		crossesCall[a] = crossesCall[a] || crossesCall[b]
	}

	// Nodes to colour: representatives only.
	var nodes []ir.VReg
	repSeen := map[ir.VReg]bool{}
	for v := 0; v < f.NumV; v++ {
		if !present[v] || !inClass(ir.VReg(v)) {
			continue
		}
		r := g.find(ir.VReg(v))
		if !repSeen[r] {
			repSeen[r] = true
			nodes = append(nodes, r)
		}
	}

	// Allowed registers per node (call-crossing GP nodes restricted to
	// callee-saved; call-crossing FP nodes must spill).
	allowedRegs := func(v ir.VReg) []x86.Reg {
		if !crossesCall[v] {
			return regs
		}
		if class == ir.FP {
			return nil
		}
		var out []x86.Reg
		for _, r := range regs {
			if cfg.CalleeSavedGP[r] {
				out = append(out, r)
			}
		}
		return out
	}

	// Simplify: repeatedly remove nodes with degree < len(allowed); the
	// rest are spill candidates pushed optimistically.
	removed := map[ir.VReg]bool{}
	var stack []ir.VReg
	work := append([]ir.VReg(nil), nodes...)
	for len(work) > 0 {
		progressed := false
		k := 0
		for _, v := range work {
			deg := 0
			for n := range g.adj[v] {
				if !removed[n] {
					deg++
				}
			}
			if deg < len(allowedRegs(v)) {
				removed[v] = true
				stack = append(stack, v)
				progressed = true
			} else {
				work[k] = v
				k++
			}
		}
		work = work[:k]
		if !progressed && len(work) > 0 {
			// Pick the cheapest spill candidate (lowest weight/degree)
			// and push it optimistically.
			best := 0
			bestScore := -1.0
			for i, v := range work {
				deg := float64(degree(v) + 1)
				score := weight[v] / deg
				if bestScore < 0 || score < bestScore {
					bestScore = score
					best = i
				}
			}
			v := work[best]
			removed[v] = true
			stack = append(stack, v)
			work = append(work[:best], work[best+1:]...)
		}
	}

	// Select: pop and assign the first allowed colour not used by a
	// coloured neighbour; failures become actual spills.
	color := map[ir.VReg]x86.Reg{}
	spilled := map[ir.VReg]bool{}
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		taken := map[x86.Reg]bool{}
		for n := range g.adj[v] {
			if c, ok := color[g.find(n)]; ok {
				taken[c] = true
			}
		}
		assigned := false
		for _, r := range allowedRegs(v) {
			if !taken[r] {
				color[v] = r
				assigned = true
				if cfg.CalleeSavedGP[r] {
					usedCallee[r] = true
				}
				break
			}
		}
		if !assigned {
			spilled[v] = true
		}
	}

	// Write results through aliases.
	for v := 0; v < f.NumV; v++ {
		if !present[v] || !inClass(ir.VReg(v)) {
			continue
		}
		rep := g.find(ir.VReg(v))
		if c, ok := color[rep]; ok {
			res.Loc[v] = Location{Kind: LocReg, Reg: c}
			continue
		}
		if spilled[rep] {
			// Allocate one slot per representative.
			if res.Loc[rep].Kind != LocSpill || rep == ir.VReg(v) {
				if res.Loc[rep].Kind != LocSpill {
					res.Loc[rep] = Location{Kind: LocSpill, Slot: res.NumSlots}
					res.NumSlots++
					res.Spills++
				}
			}
			res.Loc[v] = res.Loc[rep]
		}
	}
}
