package regalloc

import (
	"repro/internal/ir"
	"repro/internal/x86"
)

// GraphColor allocates with an iterated Chaitin/Briggs-style graph-colouring
// allocator through a fresh Scratch. See Scratch.GraphColor.
func GraphColor(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	return new(Scratch).GraphColor(f, lv, cfg)
}

// GraphColor allocates with an iterated Chaitin/Briggs-style graph-colouring
// allocator with conservative move coalescing, standing in for Clang's greedy
// allocator. It consistently produces fewer spills and fewer moves than
// LinearScan, which is the paper's §6.1.2 point. The Result is scratch-owned:
// valid until the next allocation on s.
func (s *Scratch) GraphColor(f *ir.Func, lv *ir.Liveness, cfg *Config) *Result {
	res := s.resetResult(f.NumV)

	for _, class := range []ir.Class{ir.GP, ir.FP} {
		var regs []x86.Reg
		if class == ir.GP {
			regs = cfg.GP
		} else {
			regs = cfg.FP
		}
		s.colorClass(f, lv, cfg, class, regs, res)
	}
	s.collectUsedCallee(res)
	return res
}

// igraph is the interference graph as dense bitset rows: one row of
// ceil(n/64) words per vreg, bit b of row a set when a and b interfere.
// Dense rows replace the former []map[ir.VReg]bool adjacency both to kill
// the per-edge map allocations and for cache locality on high-NumV
// functions; neighbour iteration is a word scan and degree is a popcount.
type igraph struct {
	n     int
	w     int // words per row
	rows  []uint64
	alias []ir.VReg // union-find for coalescing
}

// reset sizes the graph for n vregs, clearing all edges and aliases.
func (g *igraph) reset(n int) {
	g.n = n
	g.w = (n + 63) / 64
	g.rows = grown(g.rows, n*g.w)
	if cap(g.alias) < n {
		g.alias = make([]ir.VReg, n)
	}
	g.alias = g.alias[:n]
	for i := range g.alias {
		g.alias[i] = ir.VReg(i)
	}
}

// row returns v's adjacency bitset.
func (g *igraph) row(v ir.VReg) ir.Bitset {
	return ir.Bitset(g.rows[int(v)*g.w : (int(v)+1)*g.w])
}

func (g *igraph) find(v ir.VReg) ir.VReg {
	for g.alias[v] != v {
		g.alias[v] = g.alias[g.alias[v]]
		v = g.alias[v]
	}
	return v
}

func (g *igraph) addEdge(a, b ir.VReg) {
	a, b = g.find(a), g.find(b)
	if a == b {
		return
	}
	g.row(a).Set(b)
	g.row(b).Set(a)
}

func (g *igraph) interferes(a, b ir.VReg) bool {
	a, b = g.find(a), g.find(b)
	return a == b || g.row(a).Has(b)
}

// degree is the popcount of the row. Rows only ever hold live
// representatives (coalescing rewrites neighbour rows), so this equals the
// former len(adj[v]).
func (g *igraph) degree(v ir.VReg) int { return g.row(v).Count() }

// move is a coalescable copy.
type move struct{ dst, src ir.VReg }

func (s *Scratch) colorClass(f *ir.Func, lv *ir.Liveness, cfg *Config, class ir.Class,
	regs []x86.Reg, res *Result) {

	inClass := func(v ir.VReg) bool { return f.Class[v] == class }

	// Build interference graph + collect stats by walking blocks backward.
	g := &s.g
	g.reset(f.NumV)
	s.weight = grown(s.weight, f.NumV)
	s.crosses = grown(s.crosses, f.NumV)
	s.present = grown(s.present, f.NumV)
	s.moves = s.moves[:0]
	weight, crossesCall, present := s.weight, s.crosses, s.present
	nw := (f.NumV + 63) / 64
	s.liveBuf = grown(s.liveBuf, nw)
	s.nbBuf = grown(s.nbBuf, nw)

	for bi, b := range f.Blocks {
		live := lv.Out[bi].CopyInto(s.liveBuf)
		w := 1.0
		if f.LoopDepth != nil {
			for d := 0; d < f.LoopDepth[bi]; d++ {
				w *= 10
			}
		}
		for i := len(b.Ins) - 1; i >= 0; i-- {
			in := &b.Ins[i]
			d := in.Defs()
			if d != ir.NoV && inClass(d) {
				present[d] = true
				weight[d] += w
				// Def interferes with everything live after it,
				// except a move source (coalescable).
				var moveSrc ir.VReg = ir.NoV
				if in.Op == ir.Mov && in.A != ir.NoV && inClass(in.A) {
					moveSrc = in.A
					s.moves = append(s.moves, move{dst: d, src: in.A})
				}
				live.ForEach(func(v ir.VReg) {
					if v != d && v != moveSrc && inClass(v) {
						g.addEdge(d, v)
					}
				})
			}
			if in.Op.IsCall() {
				live.ForEach(func(v ir.VReg) {
					if v != d && inClass(v) {
						crossesCall[v] = true
					}
				})
			}
			if d != ir.NoV {
				live.Clear(d)
			}
			in.VisitUses(func(v ir.VReg) {
				live.Set(v)
				if inClass(v) {
					present[v] = true
					weight[v] += w
				}
			})
		}
	}

	// Parameters are all live at function entry and therefore interfere
	// pairwise (and with anything else live-in to the entry block).
	for i, p := range f.Params {
		if !inClass(p) {
			continue
		}
		for _, q := range f.Params[i+1:] {
			if inClass(q) {
				g.addEdge(p, q)
			}
		}
		lv.In[0].ForEach(func(v ir.VReg) {
			if v != p && inClass(v) {
				g.addEdge(p, v)
			}
		})
	}

	// Conservative (Briggs) coalescing: merge move-related pairs whose
	// combined high-degree neighbour count stays below K.
	K := len(regs)
	for _, mv := range s.moves {
		a, b := g.find(mv.dst), g.find(mv.src)
		if a == b || g.interferes(a, b) {
			continue
		}
		if crossesCall[a] != crossesCall[b] {
			continue // keep call-crossing property exact
		}
		// Count combined neighbours of significant degree.
		nb := s.nbBuf
		clear(nb)
		g.row(a).ForEach(func(n ir.VReg) { nb.Set(g.find(n)) })
		g.row(b).ForEach(func(n ir.VReg) { nb.Set(g.find(n)) })
		high := 0
		nb.ForEach(func(n ir.VReg) {
			if g.degree(n) >= K {
				high++
			}
		})
		if high >= K {
			continue
		}
		// Merge b into a.
		g.alias[b] = a
		g.row(b).ForEach(func(n ir.VReg) {
			g.addEdge(a, n)
			g.row(n).Clear(b)
		})
		clear(g.row(b))
		weight[a] += weight[b]
		crossesCall[a] = crossesCall[a] || crossesCall[b]
	}

	// Nodes to colour: representatives only.
	s.nodes = s.nodes[:0]
	s.repSeen = grown(s.repSeen, f.NumV)
	for v := 0; v < f.NumV; v++ {
		if !present[v] || !inClass(ir.VReg(v)) {
			continue
		}
		r := g.find(ir.VReg(v))
		if !s.repSeen[r] {
			s.repSeen[r] = true
			s.nodes = append(s.nodes, r)
		}
	}

	// Allowed registers per node (call-crossing GP nodes restricted to
	// callee-saved, precomputed once; call-crossing FP nodes must spill).
	s.callee = s.callee[:0]
	for _, r := range regs {
		if cfg.CalleeSavedGP[r] {
			s.callee = append(s.callee, r)
		}
	}
	allowedRegs := func(v ir.VReg) []x86.Reg {
		if !crossesCall[v] {
			return regs
		}
		if class == ir.FP {
			return nil
		}
		return s.callee
	}

	// Simplify: repeatedly remove nodes with degree < len(allowed); the
	// rest are spill candidates pushed optimistically.
	s.removed = grown(s.removed, f.NumV)
	removed := s.removed
	s.stack = s.stack[:0]
	s.work = append(s.work[:0], s.nodes...)
	work := s.work
	for len(work) > 0 {
		progressed := false
		k := 0
		for _, v := range work {
			deg := 0
			g.row(v).ForEach(func(n ir.VReg) {
				if !removed[n] {
					deg++
				}
			})
			if deg < len(allowedRegs(v)) {
				removed[v] = true
				s.stack = append(s.stack, v)
				progressed = true
			} else {
				work[k] = v
				k++
			}
		}
		work = work[:k]
		if !progressed && len(work) > 0 {
			// Pick the cheapest spill candidate (lowest weight/degree)
			// and push it optimistically.
			best := 0
			bestScore := -1.0
			for i, v := range work {
				deg := float64(g.degree(g.find(v)) + 1)
				score := weight[v] / deg
				if bestScore < 0 || score < bestScore {
					bestScore = score
					best = i
				}
			}
			v := work[best]
			removed[v] = true
			s.stack = append(s.stack, v)
			work = append(work[:best], work[best+1:]...)
		}
	}

	// Select: pop and assign the first allowed colour not used by a
	// coloured neighbour; failures become actual spills.
	s.colorOf = grown(s.colorOf, f.NumV)
	s.spilled = grown(s.spilled, f.NumV)
	colorOf, spilled := s.colorOf, s.spilled
	for i := range colorOf {
		colorOf[i] = x86.NoReg
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		v := s.stack[i]
		var taken uint64
		g.row(v).ForEach(func(n ir.VReg) {
			if c := colorOf[g.find(n)]; c != x86.NoReg {
				taken |= 1 << c
			}
		})
		assigned := false
		for _, r := range allowedRegs(v) {
			if taken&(1<<r) == 0 {
				colorOf[v] = r
				assigned = true
				if cfg.CalleeSavedGP[r] {
					s.used[r] = true
				}
				break
			}
		}
		if !assigned {
			spilled[v] = true
		}
	}

	// Write results through aliases.
	for v := 0; v < f.NumV; v++ {
		if !present[v] || !inClass(ir.VReg(v)) {
			continue
		}
		rep := g.find(ir.VReg(v))
		if c := colorOf[rep]; c != x86.NoReg {
			res.Loc[v] = Location{Kind: LocReg, Reg: c}
			continue
		}
		if spilled[rep] {
			// Allocate one slot per representative.
			if res.Loc[rep].Kind != LocSpill || rep == ir.VReg(v) {
				if res.Loc[rep].Kind != LocSpill {
					res.Loc[rep] = Location{Kind: LocSpill, Slot: res.NumSlots}
					res.NumSlots++
					res.Spills++
				}
			}
			res.Loc[v] = res.Loc[rep]
		}
	}
}
