package regalloc

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/x86"
)

// buildCallCrossing builds: f(p0) { v1 = call g(); v2 = rem(v1, p0); ret v2 }
func buildCallCrossing() *ir.Func {
	f := &ir.Func{Name: "f"}
	p0 := f.NewV(ir.GP)
	f.Params = []ir.VReg{p0}
	b := f.NewBlock()
	v1 := f.NewV(ir.GP)
	v2 := f.NewV(ir.GP)
	b.Ins = append(b.Ins,
		ir.Ins{Op: ir.Call, Dst: v1, A: ir.NoV, B: ir.NoV, Extra: ir.NoV, Callee: 1},
		ir.Ins{Op: ir.RemU, Dst: v2, A: v1, B: p0, Extra: ir.NoV, W: 4},
		ir.Ins{Op: ir.Ret, Dst: ir.NoV, A: v2, B: ir.NoV, Extra: ir.NoV},
	)
	ir.ComputeLoopDepth(f)
	return f
}

func testConfig() *Config {
	return &Config{
		GP:            []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.R12, x86.R14},
		FP:            []x86.Reg{x86.XMM0, x86.XMM1},
		CalleeSavedGP: map[x86.Reg]bool{x86.R12: true, x86.R14: true},
	}
}

func checkCallCrossing(t *testing.T, name string, res *Result, f *ir.Func) {
	t.Helper()
	p0 := f.Params[0]
	loc := res.Loc[p0]
	switch loc.Kind {
	case LocReg:
		if loc.Reg != x86.R12 && loc.Reg != x86.R14 {
			t.Errorf("%s: call-crossing param assigned caller-saved %s", name, loc.Reg)
		}
	case LocSpill:
		// fine
	default:
		t.Errorf("%s: param not allocated", name)
	}
}

func TestLinearScanCallCrossingParam(t *testing.T) {
	f := buildCallCrossing()
	lv := ir.ComputeLiveness(f)
	res := LinearScan(f, lv, testConfig())
	checkCallCrossing(t, "linearscan", res, f)
}

func TestGraphColorCallCrossingParam(t *testing.T) {
	f := buildCallCrossing()
	lv := ir.ComputeLiveness(f)
	res := GraphColor(f, lv, testConfig())
	checkCallCrossing(t, "graphcolor", res, f)
}

func TestNoAliasedRegisters(t *testing.T) {
	// Two params both live at entry must not share a register.
	f := &ir.Func{Name: "g"}
	p0 := f.NewV(ir.GP)
	p1 := f.NewV(ir.GP)
	f.Params = []ir.VReg{p0, p1}
	b := f.NewBlock()
	v := f.NewV(ir.GP)
	b.Ins = append(b.Ins,
		ir.Ins{Op: ir.Add, Dst: v, A: p0, B: p1, Extra: ir.NoV, W: 4},
		ir.Ins{Op: ir.Ret, Dst: ir.NoV, A: v, B: ir.NoV, Extra: ir.NoV},
	)
	ir.ComputeLoopDepth(f)
	lv := ir.ComputeLiveness(f)
	for _, alloc := range []func(*ir.Func, *ir.Liveness, *Config) *Result{LinearScan, GraphColor} {
		res := alloc(f, lv, testConfig())
		l0, l1 := res.Loc[p0], res.Loc[p1]
		if l0.Kind == LocReg && l1.Kind == LocReg && l0.Reg == l1.Reg {
			t.Errorf("params share register %s", l0.Reg)
		}
	}
}

// resultSnapshot deep-copies the scratch-owned parts of a Result.
func resultSnapshot(r *Result) Result {
	return Result{
		Loc:        append([]Location(nil), r.Loc...),
		NumSlots:   r.NumSlots,
		UsedCallee: append([]x86.Reg(nil), r.UsedCallee...),
		Spills:     r.Spills,
	}
}

func sameResult(a, b *Result) bool {
	if a.NumSlots != b.NumSlots || a.Spills != b.Spills ||
		len(a.Loc) != len(b.Loc) || len(a.UsedCallee) != len(b.UsedCallee) {
		return false
	}
	for i := range a.Loc {
		if a.Loc[i] != b.Loc[i] {
			return false
		}
	}
	for i := range a.UsedCallee {
		if a.UsedCallee[i] != b.UsedCallee[i] {
			return false
		}
	}
	return true
}

// TestScratchReuseIsDeterministic allocates the same function repeatedly
// through one Scratch and checks the recycled state never changes the
// assignment — for both allocators, interleaved so each sees the other's
// leftovers.
func TestScratchReuseIsDeterministic(t *testing.T) {
	f := buildCallCrossing()
	lv := ir.ComputeLiveness(f)
	cfg := testConfig()
	s := new(Scratch)
	wantLS := resultSnapshot(LinearScan(f, lv, cfg))
	wantGC := resultSnapshot(GraphColor(f, lv, cfg))
	for i := 0; i < 5; i++ {
		gotLS := s.LinearScan(f, lv, cfg)
		if !sameResult(&wantLS, gotLS) {
			t.Fatalf("round %d: linear scan diverged on scratch reuse", i)
		}
		gotGC := s.GraphColor(f, lv, cfg)
		if !sameResult(&wantGC, gotGC) {
			t.Fatalf("round %d: graph colouring diverged on scratch reuse", i)
		}
	}
}
