package fault

// Tests for the injection registry: the $REPRO_FAULTS grammar, rule
// matching and count consumption, the three fault kinds, and the per-site
// counters the containment tests assert against.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, rs []*Rule)
	}{
		{spec: "compile=panic", check: func(t *testing.T, rs []*Rule) {
			if len(rs) != 1 {
				t.Fatalf("got %d rules, want 1", len(rs))
			}
			r := rs[0]
			if r.Site != "compile" || r.Match != "" || r.Kind != KindPanic || r.Count != 1 {
				t.Errorf("rule = %+v", r)
			}
		}},
		{spec: "exec@durbin=delay:2:5s", check: func(t *testing.T, rs []*Rule) {
			r := rs[0]
			if r.Site != "exec" || r.Match != "durbin" || r.Kind != KindDelay ||
				r.Count != 2 || r.Delay != 5*time.Second {
				t.Errorf("rule = %+v", r)
			}
		}},
		{spec: "store.read=error:*", check: func(t *testing.T, rs []*Rule) {
			if rs[0].Count != Unlimited {
				t.Errorf("count = %d, want Unlimited", rs[0].Count)
			}
		}},
		{spec: "exec@lbm=hang", check: func(t *testing.T, rs []*Rule) {
			if rs[0].Kind != KindDelay || rs[0].Delay != 30*time.Second {
				t.Errorf("hang rule = %+v", rs[0])
			}
		}},
		{spec: "a=error:1, b=panic", check: func(t *testing.T, rs []*Rule) {
			if len(rs) != 2 || rs[1].Site != "b" {
				t.Errorf("rules = %+v", rs)
			}
		}},
		{spec: "", wantErr: true},
		{spec: "compile", wantErr: true},
		{spec: "=panic", wantErr: true},
		{spec: "compile=", wantErr: true},
		{spec: "compile=explode", wantErr: true},
		{spec: "compile=panic:0", wantErr: true},
		{spec: "compile=panic:-3", wantErr: true},
		{spec: "compile=panic:nope", wantErr: true},
		{spec: "compile=error:1:5s", wantErr: true}, // arg on a non-delay rule
		{spec: "exec=delay:1:fast", wantErr: true},
	}
	for _, tc := range cases {
		rs, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): no error, want one", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		tc.check(t, rs)
	}
}

func TestErrorFaultFiresCountTimes(t *testing.T) {
	disarm, err := ArmSpec("site.x@keyed=error:2")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	if err := Check("site.x", "other"); err != nil {
		t.Fatalf("non-matching key injected: %v", err)
	}
	if err := Check("site.other", "keyed"); err != nil {
		t.Fatalf("non-matching site injected: %v", err)
	}
	var inj *InjectedError
	for i := 0; i < 2; i++ {
		err := Check("site.x", "keyed-one")
		if !errors.As(err, &inj) {
			t.Fatalf("fire %d: got %v, want InjectedError", i, err)
		}
		if inj.Site != "site.x" {
			t.Errorf("fire %d: site %q", i, inj.Site)
		}
	}
	if err := Check("site.x", "keyed-one"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
	if got := Fired("site.x"); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
	if got := Hits("site.x"); got < 4 {
		t.Errorf("Hits = %d, want >= 4", got)
	}
}

func TestPanicFault(t *testing.T) {
	disarm := Arm(&Rule{Site: "boom", Kind: KindPanic, Count: 1})
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Error("panic fault did not panic")
		}
	}()
	Check("boom", "")
}

func TestDelayFaultSleeps(t *testing.T) {
	disarm := Arm(&Rule{Site: "slow", Kind: KindDelay, Count: 1, Delay: 50 * time.Millisecond})
	defer disarm()
	start := time.Now()
	if err := Check("slow", ""); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("delay fault slept %v, want >= 50ms", d)
	}
}

// TestCheckCtxDelayCutShortByDeadline pins the remote tier's hang
// containment: a delay fault checked under a context deadline returns the
// context's error as soon as the deadline passes, instead of sleeping the
// rule's full duration.
func TestCheckCtxDelayCutShortByDeadline(t *testing.T) {
	disarm := Arm(&Rule{Site: "slow.ctx", Kind: KindDelay, Count: 1, Delay: 30 * time.Second})
	defer disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := CheckCtx(ctx, "slow.ctx", "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cut-short delay returned %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("delay ignored the deadline: slept %v", d)
	}
	if got := Fired("slow.ctx"); got != 1 {
		t.Errorf("cut-short delay must still count as fired: %d", got)
	}
}

// TestCheckCtxDelayCompletesUnderLongDeadline: a delay shorter than the
// deadline sleeps its full duration and passes, same as plain Check.
func TestCheckCtxDelayCompletesUnderLongDeadline(t *testing.T) {
	disarm := Arm(&Rule{Site: "slow.ok", Kind: KindDelay, Count: 1, Delay: 30 * time.Millisecond})
	defer disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := CheckCtx(ctx, "slow.ok", ""); err != nil {
		t.Fatalf("completed delay returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delay slept only %v, want >= 30ms", d)
	}
}

func TestDisarmRemovesOnlyItsRules(t *testing.T) {
	d1 := Arm(&Rule{Site: "a", Kind: KindError, Count: Unlimited})
	d2 := Arm(&Rule{Site: "b", Kind: KindError, Count: Unlimited})
	d1()
	if err := Check("a", ""); err != nil {
		t.Errorf("disarmed rule fired: %v", err)
	}
	if err := Check("b", ""); err == nil {
		t.Error("surviving rule did not fire")
	}
	d2()
	if Enabled() {
		t.Error("registry still enabled after all disarms")
	}
}

func TestCheckFastPathWhenDisarmed(t *testing.T) {
	if Enabled() {
		t.Skip("rules armed via environment")
	}
	// Not a benchmark assertion, just the contract: disarmed checks are
	// error-free and never count hits.
	before := Hits("cold.site")
	for i := 0; i < 100; i++ {
		if err := Check("cold.site", "k"); err != nil {
			t.Fatalf("disarmed check injected: %v", err)
		}
	}
	if got := Hits("cold.site"); got != before {
		t.Errorf("disarmed checks counted hits: %d -> %d", before, got)
	}
}

func TestWithLabelRoundTrip(t *testing.T) {
	ctx := WithLabel(nil, "durbin")
	if got := LabelOf(ctx); got != "durbin" {
		t.Errorf("LabelOf = %q, want durbin", got)
	}
	if got := LabelOf(nil); got != "" {
		t.Errorf("LabelOf(nil) = %q, want empty", got)
	}
}
