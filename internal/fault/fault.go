// Package fault is the deterministic fault-injection registry behind the
// run pipeline's failure-containment tests. Code at a containment boundary
// declares a named site — the store's read and write paths, the compiler,
// the exec path, the kernel's syscall dispatch — and calls Check there; a
// test (or $REPRO_FAULTS in the environment) arms rules that make specific
// checks fail with an error, a panic, or a wall-clock delay. Every
// containment path in the repository is provable under injection instead of
// waiting for a real disk error, compiler bug, or hung simulation.
//
// The package is a leaf (standard library only) so every layer — including
// internal/sched and internal/codegen, which the pipeline itself sits on —
// can declare sites without import cycles.
//
// Sites are cheap when nothing is armed: Check is one atomic load. Hit and
// fire counters are only maintained while at least one rule is armed, so
// benchmarks without $REPRO_FAULTS pay nothing for the bookkeeping.
//
// The environment syntax, a comma-separated rule list:
//
//	REPRO_FAULTS=site[@match]=kind[:count][:arg][,...]
//
// where site names the injection point, match (optional) is a substring the
// site's key must contain for the rule to fire (workload names, artifact
// keys, and syscall names are the usual keys), kind is "error", "panic",
// "delay", or "hang" (delay with a 30s default), count is how many checks
// the rule fires on (default 1, "*" = every check), and arg is the delay
// duration for delay faults (default 250ms). Examples:
//
//	REPRO_FAULTS=compile@durbin=panic            panic durbin's compile once
//	REPRO_FAULTS=exec@lbm=delay:1:10s            stall lbm's exec 10s once
//	REPRO_FAULTS=store.read=error:2              fail the first two store reads
//	REPRO_FAULTS=syscall@sys_write=error:*       fail every sys_write
package fault

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
)

// Env is the environment variable rules are parsed from at first use (the
// canonical name lives in internal/config).
const Env = config.EnvFaults

// Canonical site names wired through the run pipeline. Sites are open-ended
// (any string works); these constants exist so arming code and checking
// code cannot drift apart.
const (
	// SiteStoreRead is the artifact store's read path; keyed by artifact
	// content address. Injected errors exercise the read retry loop.
	SiteStoreRead = "store.read"
	// SiteStoreWrite is the artifact store's publish path; keyed by
	// artifact content address.
	SiteStoreWrite = "store.write"
	// SiteCompile is the build pipeline's compile entry, hit once per
	// distinct build; keyed by the build label (fault.WithLabel — the
	// workload name on suite paths, the engine name otherwise).
	SiteCompile = "compile"
	// SiteExec is the execution path, hit before a kernel is spawned;
	// keyed by argv[0] (the workload name on suite paths).
	SiteExec = "exec"
	// SiteSyscall is the kernel's syscall dispatch; keyed by the import
	// name (e.g. "env.sys_write"). An injected error kills the process
	// accountably, like a kernel-side transport failure would.
	SiteSyscall = "syscall"
	// SiteCodegenFunc is the per-function compile fan-out inside
	// codegen.Compile; keyed by function name. Panics here land inside
	// nested scheduler jobs, the deepest containment boundary.
	SiteCodegenFunc = "codegen.func"
	// SiteRemoteGet is the remote artifact tier's fetch path; keyed by
	// artifact content address. Checked with the per-call deadline, so an
	// injected hang simulates a stalled remote that the deadline contains.
	SiteRemoteGet = "remote.get"
	// SiteRemotePut is the remote artifact tier's publish path; keyed by
	// artifact content address.
	SiteRemotePut = "remote.put"
	// SiteRemoteVerify is the remote tier's payload verification; an
	// injected error simulates a corrupt fetched artifact (rejected,
	// counted, negative-cached — never decoded into a build).
	SiteRemoteVerify = "remote.verify"
)

// Kind is the failure a rule injects.
type Kind uint8

const (
	// KindError makes Check return an *InjectedError.
	KindError Kind = iota + 1
	// KindPanic makes Check panic (containment layers must convert it to a
	// structured error; see sched.JobPanicError).
	KindPanic
	// KindDelay makes Check sleep for the rule's Delay and then pass. With
	// the pipeline watchdog armed this is how a hung run is simulated.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Unlimited as a Rule.Count makes the rule fire on every matching check.
const Unlimited = -1

// Rule arms one fault: at site Site, for keys containing Match (empty
// matches every key), inject Kind. Count > 0 fires on that many checks then
// disarms the rule; Unlimited never disarms.
type Rule struct {
	Site  string
	Match string
	Kind  Kind
	Count int64
	// Delay is the sleep for KindDelay rules (default 250ms).
	Delay time.Duration

	left atomic.Int64
}

// InjectedError is the error KindError checks return.
type InjectedError struct {
	Site string
	Key  string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at %s (key %q)", e.Site, e.Key)
}

// registry is the armed-rule set plus the per-site counters. A plain mutex
// suffices: checks only take it while armed != 0, and armed checks are
// orders of magnitude rarer than the simulated work around them.
var (
	armed   atomic.Int32 // number of armed rules; Check's fast-path gate
	mu      sync.Mutex
	rules   []*Rule
	hits    = map[string]uint64{} // site -> checks observed while armed
	fired   = map[string]uint64{} // site -> faults injected
	envOnce sync.Once
)

// initFromEnv arms $REPRO_FAULTS rules exactly once per process. An
// unparsable spec warns loudly on stderr — someone who armed faults and got
// a fault-free run would draw exactly the wrong conclusion — but does not
// abort: the containment machinery must itself degrade gracefully.
func initFromEnv() {
	envOnce.Do(func() {
		v := os.Getenv(Env)
		if v == "" {
			return
		}
		rs, err := ParseSpec(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring unparsable %s=%q: %v\n", Env, v, err)
			return
		}
		Arm(rs...)
	})
}

// ParseSpec parses the $REPRO_FAULTS syntax into rules (see the package
// comment for the grammar).
func ParseSpec(spec string) ([]*Rule, error) {
	var out []*Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rhs, ok := strings.Cut(part, "=")
		if !ok || site == "" || rhs == "" {
			return nil, fmt.Errorf("rule %q: want site[@match]=kind[:count][:arg]", part)
		}
		r := &Rule{Count: 1, Delay: 250 * time.Millisecond}
		r.Site, r.Match, _ = strings.Cut(site, "@")
		if r.Site == "" {
			return nil, fmt.Errorf("rule %q: empty site", part)
		}
		fields := strings.SplitN(rhs, ":", 3)
		switch fields[0] {
		case "error":
			r.Kind = KindError
		case "panic":
			r.Kind = KindPanic
		case "delay":
			r.Kind = KindDelay
		case "hang":
			// A hang is a delay long enough that only a watchdog ends it.
			r.Kind = KindDelay
			r.Delay = 30 * time.Second
		default:
			return nil, fmt.Errorf("rule %q: unknown kind %q", part, fields[0])
		}
		if len(fields) > 1 && fields[1] != "" {
			if fields[1] == "*" {
				r.Count = Unlimited
			} else {
				n, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("rule %q: bad count %q", part, fields[1])
				}
				r.Count = n
			}
		}
		if len(fields) > 2 && fields[2] != "" {
			if r.Kind != KindDelay {
				return nil, fmt.Errorf("rule %q: arg only applies to delay faults", part)
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("rule %q: bad delay %q", part, fields[2])
			}
			r.Delay = d
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty fault spec")
	}
	return out, nil
}

// Arm installs rules and returns a disarm function that removes exactly
// those rules (tests defer it). Arming validates nothing — use ParseSpec
// for string specs.
func Arm(rs ...*Rule) (disarm func()) {
	mu.Lock()
	for _, r := range rs {
		r.left.Store(r.Count)
		rules = append(rules, r)
	}
	mu.Unlock()
	armed.Add(int32(len(rs)))
	return func() {
		mu.Lock()
		kept := rules[:0]
		for _, have := range rules {
			removed := false
			for _, r := range rs {
				if have == r {
					removed = true
					break
				}
			}
			if !removed {
				kept = append(kept, have)
			}
		}
		removed := len(rules) - len(kept)
		rules = kept
		mu.Unlock()
		armed.Add(int32(-removed))
	}
}

// ArmSpec parses and arms a $REPRO_FAULTS-syntax spec (test convenience).
func ArmSpec(spec string) (disarm func(), err error) {
	rs, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return Arm(rs...), nil
}

// Enabled reports whether any rule is armed (after lazily arming
// $REPRO_FAULTS). Callers can use it to skip fault-only bookkeeping.
func Enabled() bool {
	initFromEnv()
	return armed.Load() != 0
}

// Check consults the registry at a named site. With no rules armed it is a
// single atomic load. With rules armed it counts the hit and applies the
// first matching rule: KindError returns an *InjectedError, KindPanic
// panics with a tagged value, KindDelay sleeps and passes. A rule's count
// is consumed per fire; exhausted rules stay installed but inert (their
// fire totals remain inspectable).
func Check(site, key string) error {
	return CheckCtx(context.Background(), site, key)
}

// CheckCtx is Check under a caller context: an injected delay sleeps until
// the rule's duration elapses or ctx is done, whichever comes first, and a
// cut-short delay returns ctx.Err(). Sites with a per-call deadline (the
// remote artifact tier) use it so an injected hang is contained by the
// deadline instead of stalling the caller for the full 30s — the honest
// simulation of a stalled dependency behind a timeout.
func CheckCtx(ctx context.Context, site, key string) error {
	initFromEnv()
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	hits[site]++
	var match *Rule
	for _, r := range rules {
		if r.Site != site || (r.Match != "" && !strings.Contains(key, r.Match)) {
			continue
		}
		// Consume one firing; Unlimited counts go negative harmlessly.
		if r.Count != Unlimited && r.left.Add(-1) < 0 {
			continue
		}
		match = r
		break
	}
	if match != nil {
		fired[site]++
	}
	mu.Unlock()
	if match == nil {
		return nil
	}
	switch match.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s (key %q)", site, key))
	case KindDelay:
		if ctx.Done() == nil {
			time.Sleep(match.Delay)
			return nil
		}
		t := time.NewTimer(match.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	default:
		return &InjectedError{Site: site, Key: key}
	}
}

// Hits reports how many Check calls site has observed while rules were
// armed.
func Hits(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Fired reports how many faults have been injected at site.
func Fired(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return fired[site]
}

// labelKey carries a human-meaningful label (usually a workload name)
// through context from suite layers down to the sites that check faults
// beneath them.
type labelKey struct{}

// WithLabel attaches a fault-site key to ctx; sites reached beneath it
// (compile, exec) use the label as their Check key so rules can target one
// workload out of a suite.
func WithLabel(ctx context.Context, label string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, labelKey{}, label)
}

// LabelOf extracts the label WithLabel attached, or "".
func LabelOf(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(labelKey{}).(string)
	return s
}
