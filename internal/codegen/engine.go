// Package codegen compiles WebAssembly modules to the modeled x86-64 target
// under four engine configurations: Clang-like native code, Chrome (V8),
// Firefox (SpiderMonkey), and asm.js. The configurations encode exactly the
// §5/§6 root causes the paper identifies: register allocator choice, reserved
// registers, per-function stack-overflow checks, indirect-call checks,
// loop-entry jumps, addressing-mode and read-modify-write fusion, loop
// rotation, and compare/branch fusion.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/x86"
)

// AllocKind selects the register allocator.
type AllocKind uint8

// Allocator kinds.
const (
	AllocLinearScan AllocKind = iota
	AllocGraphColor
)

// EngineConfig describes one code generator. Every field is one of the
// paper's root causes, so ablations can toggle them individually.
type EngineConfig struct {
	Name string

	// Allocator selects linear scan (browser JITs, §6.1.2) or graph
	// colouring (Clang).
	Allocator AllocKind

	// GP/FP are the allocatable registers in preference order. The
	// browsers' sets exclude the JavaScript-reserved registers (§6.1.1).
	GP []x86.Reg
	FP []x86.Reg

	// CalleeSaved registers survive calls in this engine's convention.
	CalleeSaved []x86.Reg

	// ArgGP/ArgFP are the argument-passing registers.
	ArgGP []x86.Reg
	ArgFP []x86.Reg

	// Scratch registers are reserved for spill traffic and address
	// materialization (V8: r10; SpiderMonkey: r11; plus a second for
	// two-operand memory sequences).
	Scratch  [2]x86.Reg
	ScratchF x86.Reg

	// MemBase holds the linear-memory base at runtime (V8 uses rbx in the
	// paper's Figure 7c; SpiderMonkey r15).
	MemBase x86.Reg

	// ShadowSP promotes wasm global 0 (the Emscripten shadow stack
	// pointer) to a dedicated register. Clang native keeps its stack
	// pointer in a register; wasm engines cannot and access the global
	// through memory.
	ShadowSP x86.Reg // NoReg when not promoted

	// StackCheck inserts the per-function stack-overflow check (§6.2.2).
	StackCheck bool

	// IndirectCheck inserts table-bounds and signature checks on
	// call_indirect (§6.2.3).
	IndirectCheck bool

	// LoopEntryJump emits Chrome's extra jump into loop bodies that skips
	// the loop-head reload sequence on the first iteration (§5.1.3).
	LoopEntryJump bool

	// RotateLoops converts top-test loops into bottom-test form with an
	// entry guard, Clang's single-branch-per-iteration shape (§5.1.3).
	RotateLoops bool

	// FuseAddressing folds base+index*scale+disp chains into memory
	// operands (§6.1.3). Chrome "does not take advantage of these modes".
	FuseAddressing bool

	// FuseRMW folds load-op-store on the same address into a single
	// read-modify-write instruction (Figure 7b line 14).
	FuseRMW bool

	// SpillOperandFusion lets instructions use spill slots as memory
	// operands directly instead of reloading into a scratch register.
	SpillOperandFusion bool

	// CmpFusion fuses compare+branch. asm.js materializes the |0-coerced
	// boolean first.
	CmpFusion bool

	// HeapMask emits the asm.js heap-index masking AND before every
	// linear-memory access.
	HeapMask bool

	// NopPad aligns function entries to this many bytes with nops
	// (V8 pads; contributes to the larger Chrome code footprint).
	NopPad int

	// Fidelity selects the simulation tier the compiled module runs under
	// (see fidelity.go). It does not change generated code, but it is part
	// of the content address: cached artifacts and memoized suite results
	// never mix fidelities.
	Fidelity Fidelity

	// SamplePeriod/SampleDetail/SampleWarmup override the sampled tier's
	// window schedule, in retired instructions (0 = simulator default).
	SamplePeriod uint64
	SampleDetail uint64
	SampleWarmup uint64
}

// Native returns the Clang-like native configuration.
// Reserved: rsp, rbp (frame), r14 (memory base), r10/r11 (spill scratch),
// r13 (shadow stack pointer register, standing in for native rsp usage).
func Native() *EngineConfig {
	return &EngineConfig{
		Name:      "native",
		Allocator: AllocGraphColor,
		GP: []x86.Reg{
			x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RSI, x86.RDI,
			x86.R8, x86.R9, x86.R12, x86.R15,
		},
		FP: []x86.Reg{
			x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5,
			x86.XMM6, x86.XMM7, x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11,
			x86.XMM12, x86.XMM13,
		},
		CalleeSaved:        []x86.Reg{x86.RBX, x86.R12, x86.R15},
		ArgGP:              []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9},
		ArgFP:              []x86.Reg{x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5},
		Scratch:            [2]x86.Reg{x86.R10, x86.R11},
		ScratchF:           x86.XMM15,
		MemBase:            x86.R14,
		ShadowSP:           x86.R13,
		StackCheck:         false,
		IndirectCheck:      false,
		LoopEntryJump:      false,
		RotateLoops:        true,
		FuseAddressing:     true,
		FuseRMW:            true,
		SpillOperandFusion: true,
		CmpFusion:          true,
	}
}

// Chrome returns the V8 configuration: linear scan, r13 reserved for GC
// roots, r10 and xmm13 reserved as scratch, rbx as heap base, stack and
// indirect-call checks, loop-entry jumps, and function-entry nop padding.
func Chrome() *EngineConfig {
	return &EngineConfig{
		Name:      "chrome",
		Allocator: AllocLinearScan,
		GP: []x86.Reg{
			x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
			x86.R8, x86.R9, x86.R12, x86.R14, x86.R15,
		},
		FP: []x86.Reg{
			x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5,
			x86.XMM6, x86.XMM7, x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11, x86.XMM12,
		},
		CalleeSaved:        []x86.Reg{x86.R12, x86.R14},
		ArgGP:              []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8},
		ArgFP:              []x86.Reg{x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5},
		Scratch:            [2]x86.Reg{x86.R10, x86.R11},
		ScratchF:           x86.XMM13,
		MemBase:            x86.RBX,
		ShadowSP:           x86.NoReg,
		StackCheck:         true,
		IndirectCheck:      true,
		LoopEntryJump:      true,
		RotateLoops:        false,
		FuseAddressing:     false,
		FuseRMW:            false,
		SpillOperandFusion: false,
		CmpFusion:          true,
		NopPad:             32,
	}
}

// Firefox returns the SpiderMonkey configuration: linear scan, r15 reserved
// as the heap base, r11 and xmm15 reserved as scratch. One more allocatable
// GPR than Chrome, no loop-entry jumps, no padding — which is why Firefox
// comes out somewhat faster in the paper.
func Firefox() *EngineConfig {
	return &EngineConfig{
		Name:      "firefox",
		Allocator: AllocLinearScan,
		GP: []x86.Reg{
			x86.RAX, x86.RCX, x86.RDX, x86.RBX, x86.RSI, x86.RDI,
			x86.R8, x86.R9, x86.R12, x86.R13, x86.R14,
		},
		FP: []x86.Reg{
			x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5,
			x86.XMM6, x86.XMM7, x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11,
			x86.XMM12, x86.XMM13,
		},
		CalleeSaved:        []x86.Reg{x86.R12, x86.R13, x86.R14},
		ArgGP:              []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9},
		ArgFP:              []x86.Reg{x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5},
		Scratch:            [2]x86.Reg{x86.R11, x86.R10},
		ScratchF:           x86.XMM15,
		MemBase:            x86.R15,
		ShadowSP:           x86.NoReg,
		StackCheck:         true,
		IndirectCheck:      true,
		LoopEntryJump:      false,
		RotateLoops:        false,
		FuseAddressing:     false,
		FuseRMW:            false,
		SpillOperandFusion: false,
		CmpFusion:          true,
	}
}

// AsmJSChrome returns the asm.js-in-Chrome configuration: the wasm pipeline
// plus heap-index masking, no compare/branch fusion (|0 boolean
// materialization), and one fewer allocatable register (the second typed-
// array view base).
func AsmJSChrome() *EngineConfig {
	c := Chrome()
	c.Name = "asmjs-chrome"
	c.GP = c.GP[:len(c.GP)-1]
	c.HeapMask = true
	c.CmpFusion = false
	return c
}

// AsmJSFirefox returns the asm.js-in-Firefox configuration.
func AsmJSFirefox() *EngineConfig {
	c := Firefox()
	c.Name = "asmjs-firefox"
	c.GP = c.GP[:len(c.GP)-1]
	c.HeapMask = true
	c.CmpFusion = false
	return c
}

// isCalleeSaved reports whether r is callee-saved under cfg.
func (cfg *EngineConfig) isCalleeSaved(r x86.Reg) bool {
	for _, c := range cfg.CalleeSaved {
		if c == r {
			return true
		}
	}
	return false
}

// calleeSavedSet returns the callee-saved set as a map for the allocators.
func (cfg *EngineConfig) calleeSavedSet() map[x86.Reg]bool {
	m := make(map[x86.Reg]bool, len(cfg.CalleeSaved))
	for _, r := range cfg.CalleeSaved {
		m[r] = true
	}
	return m
}

// engineByName maps knob spellings to stock engine constructors — the one
// registry behind every "-engine" flag and the serving wire format, so a
// new configuration becomes addressable everywhere by being added here.
var engineByName = map[string]func() *EngineConfig{
	"native":        Native,
	"chrome":        Chrome,
	"firefox":       Firefox,
	"asmjs-chrome":  AsmJSChrome,
	"asmjs-firefox": AsmJSFirefox,
}

// EngineNames lists the stock engine spellings Engine accepts, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineByName))
	for n := range engineByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Engine returns a fresh stock configuration by its knob spelling, or an
// error naming the accepted spellings (a user-facing message: it surfaces
// on CLI flags and serving requests alike).
func Engine(name string) (*EngineConfig, error) {
	ctor, ok := engineByName[name]
	if !ok {
		return nil, fmt.Errorf("codegen: unknown engine %q (want one of %s)",
			name, strings.Join(EngineNames(), ", "))
	}
	return ctor(), nil
}
