package codegen

import (
	"cmp"
	"slices"

	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/x86"
)

// memOperandFor computes the x86 memory operand for a Load/Store with address
// vreg addr and displacement off. Browser engines emit
// [membase + addr*1 + off] (Figure 7c); the native config, whose linear
// memory starts at process address 0, addresses [addr + off] directly and may
// fuse an add/shift chain into [base + index*scale + off] (§6.1.3).
func (e *emitter) memOperandFor(b *ir.Block, idx int, addr ir.VReg, off int32) x86.Mem {
	if m, ok := e.fusedMem[&b.Ins[idx]]; ok {
		return m
	}
	areg := e.addrReg(addr)
	if e.cfg.HeapMask {
		// asm.js heap masking: scratch = addr & mask.
		e.emit(x86.Inst{Op: x86.OMov, W: 4, Dst: x86.R(e.s0()), Src: x86.R(areg)})
		e.emit(x86.Inst{Op: x86.OAnd, W: 4, Dst: x86.R(e.s0()), Src: x86.Imm(x86.LinearMax - 1), Comment: "heap mask"})
		areg = e.s0()
	}
	if e.cfg.MemBase != x86.NoReg {
		return x86.Mem{Base: e.cfg.MemBase, Index: areg, Scale: 1, Disp: off}
	}
	return x86.Mem{Base: areg, Index: x86.NoReg, Disp: off}
}

// addrReg materializes the address vreg (zero-extended u32) into a register.
func (e *emitter) addrReg(addr ir.VReg) x86.Reg {
	l := e.loc(addr)
	if l.Kind == regalloc.LocReg {
		return l.Reg
	}
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s0()), Src: e.spillMem(l.Slot)})
	return e.s0()
}

// fuseAddressesInBlock runs before emission of block b. For each address
// vreg whose every use is a memory access in b and whose definition is a
// foldable add/shift chain, it records the fused operand for every access
// and marks the chain instructions skipped. The decision is all-or-nothing
// per address vreg so a skipped def never leaves a consumer behind.
//
// Accesses are grouped by sorting an (addr, idx) pair list from the scratch
// rather than a per-block map; groups are independent (each access belongs
// to exactly one address vreg and probeFuse reads no fusion state), so the
// processing order does not affect the result.
func (e *emitter) fuseAddressesInBlock(b *ir.Block) {
	if !e.cfg.FuseAddressing {
		return
	}
	acc := e.sc.accesses[:0]
	for i := range b.Ins {
		in := &b.Ins[i]
		if in.Op == ir.Load || in.Op == ir.Store {
			acc = append(acc, accessRef{addr: in.A, idx: i})
		}
	}
	e.sc.accesses = acc[:0]
	slices.SortFunc(acc, func(a, c accessRef) int {
		if a.addr != c.addr {
			return cmp.Compare(a.addr, c.addr)
		}
		return cmp.Compare(a.idx, c.idx)
	})
	for lo := 0; lo < len(acc); {
		hi := lo
		for hi < len(acc) && acc[hi].addr == acc[lo].addr {
			hi++
		}
		addr, group := acc[lo].addr, acc[lo:hi]
		lo = hi
		if e.uses[addr] != len(group) {
			continue // address escapes to non-memory uses or other blocks
		}
		plans := e.sc.fusePlans[:0]
		skip1, skip2 := -1, -1
		ok := true
		for _, g := range group {
			m, s1, s2, good := e.probeFuse(b, g.idx, addr, b.Ins[g.idx].Off)
			if !good {
				ok = false
				break
			}
			plans = append(plans, fusePlan{at: g.idx, mem: m})
			skip1, skip2 = s1, s2 // identical def chain for every access
		}
		e.sc.fusePlans = plans[:0]
		if !ok {
			continue
		}
		for _, p := range plans {
			e.fusedMem[&b.Ins[p.at]] = p.mem
		}
		if skip1 >= 0 {
			e.skip[&b.Ins[skip1]] = true
		}
		if skip2 >= 0 {
			e.skip[&b.Ins[skip2]] = true
		}
	}
}

// probeFuse computes the fused memory operand for one access without
// mutating state. It returns the operand, the def-chain indices that become
// dead (-1 = none), and whether fusion is legal.
func (e *emitter) probeFuse(b *ir.Block, idx int, addr ir.VReg, off int32) (x86.Mem, int, int, bool) {
	defIdx := -1
	for i := idx - 1; i >= 0 && i >= idx-24; i-- {
		if b.Ins[i].Dst == addr {
			defIdx = i
			break
		}
	}
	if defIdx < 0 {
		return x86.Mem{}, -1, -1, false
	}
	def := &b.Ins[defIdx]
	if def.Op != ir.Add {
		return x86.Mem{}, -1, -1, false
	}
	if def.B == ir.NoV {
		// addr = x + imm: fold into displacement.
		x := def.A
		no := int64(off) + def.Imm
		if no < 0 || no > 1<<30 || !e.inReg(x) || e.redefined(b, defIdx, idx, x) {
			return x86.Mem{}, -1, -1, false
		}
		return x86.Mem{Base: e.loc(x).Reg, Index: x86.NoReg, Disp: int32(no)}, defIdx, -1, true
	}
	x, y := def.A, def.B
	for swap := 0; swap < 2; swap++ {
		if swap == 1 {
			x, y = y, x
		}
		yDef := -1
		for i := defIdx - 1; i >= 0 && i >= defIdx-24; i-- {
			if b.Ins[i].Dst == y {
				yDef = i
				break
			}
		}
		if yDef >= 0 {
			yd := &b.Ins[yDef]
			if yd.Op == ir.Shl && yd.B == ir.NoV && yd.Imm >= 0 && yd.Imm <= 3 &&
				e.uses[y] == 1 && e.inReg(yd.A) && e.inReg(x) &&
				!e.redefined(b, yDef, idx, yd.A) && !e.redefined(b, defIdx, idx, x) {
				return x86.Mem{Base: e.loc(x).Reg, Index: e.loc(yd.A).Reg, Scale: 1 << uint(yd.Imm), Disp: off},
					defIdx, yDef, true
			}
		}
	}
	x, y = def.A, def.B
	if e.inReg(x) && e.inReg(y) && !e.redefined(b, defIdx, idx, x) && !e.redefined(b, defIdx, idx, y) {
		return x86.Mem{Base: e.loc(x).Reg, Index: e.loc(y).Reg, Scale: 1, Disp: off}, defIdx, -1, true
	}
	return x86.Mem{}, -1, -1, false
}

func (e *emitter) inReg(v ir.VReg) bool { return e.loc(v).Kind == regalloc.LocReg }

// redefined reports whether the value of v — or the physical register
// holding it — is overwritten between instructions (from, to). The register
// check matters because the allocator may have ended v's interval at its
// last IR use, which fusion extends past. Calls are treated as clobbering
// everything.
func (e *emitter) redefined(b *ir.Block, from, to int, v ir.VReg) bool {
	reg := e.loc(v).Reg
	for i := from + 1; i < to; i++ {
		in := &b.Ins[i]
		if in.Dst == v {
			return true
		}
		if in.Op.IsCall() {
			return true
		}
		if in.Dst != ir.NoV {
			l := e.loc(in.Dst)
			if l.Kind == regalloc.LocReg && l.Reg == reg {
				return true
			}
		}
	}
	return false
}

func loadX86(kind ir.LoadKind) (op x86.Op, w uint8) {
	switch kind {
	case ir.L32:
		return x86.OMov, 4
	case ir.L64:
		return x86.OMov, 8
	case ir.L8S:
		return x86.OMovSX8, 4
	case ir.L8U:
		return x86.OMovZX8, 4
	case ir.L16S:
		return x86.OMovSX16, 4
	case ir.L16U:
		return x86.OMovZX16, 4
	case ir.L32S:
		return x86.OMovSXD, 8
	case ir.L32U:
		return x86.OMov, 4
	case ir.LF32:
		return x86.OMovsd, 4
	case ir.LF64:
		return x86.OMovsd, 8
	}
	return x86.OMov, 4
}

func (e *emitter) emitLoad(b *ir.Block, idx int) {
	in := &b.Ins[idx]
	if e.loc(in.Dst).Kind == regalloc.LocNone {
		// Dead load: wasm loads can trap, so engines keep them; emit into
		// a scratch.
		mem := e.memOperandFor(b, idx, in.A, in.Off)
		op, w := loadX86(in.Kind)
		if in.Kind == ir.LF32 || in.Kind == ir.LF64 {
			e.emit(x86.Inst{Op: op, W: w, Dst: x86.R(e.sf()), Src: x86.M(mem)})
		} else {
			e.emit(x86.Inst{Op: op, W: w, Dst: x86.R(e.s1()), Src: x86.M(mem)})
		}
		return
	}
	mem := e.memOperandFor(b, idx, in.A, in.Off)
	op, w := loadX86(in.Kind)
	if e.f.Class[in.Dst] == ir.FP {
		d, flush := e.dstFP(in.Dst)
		e.emit(x86.Inst{Op: op, W: w, Dst: x86.R(d), Src: x86.M(mem)})
		flush()
		return
	}
	d, flush := e.dstGP(in.Dst)
	// i64 sign-extending sub-word loads need 64-bit movsx forms; the W
	// field covers it (simulator sign-extends to W).
	if in.W == 8 && (in.Kind == ir.L8S || in.Kind == ir.L16S) {
		w = 8
	}
	e.emit(x86.Inst{Op: op, W: w, Dst: x86.R(d), Src: x86.M(mem)})
	flush()
}

func (e *emitter) emitStore(b *ir.Block, idx int) {
	in := &b.Ins[idx]
	// Read-modify-write fusion (native): add [mem], src.
	if info, ok := e.rmwAt[in]; ok {
		mem := e.memOperandFor(b, idx, in.A, in.Off)
		var src x86.Operand
		if info.hasB {
			src = e.readGPOperand(info.binB, e.s1())
			if src.Kind == x86.KMem {
				// Can't have two memory operands; reload.
				e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s1()), Src: src})
				src = x86.R(e.s1())
			}
		} else {
			src = x86.Imm(info.imm)
		}
		e.emit(x86.Inst{Op: binX[info.op], W: info.w, Dst: x86.M(mem), Src: src, Comment: "rmw"})
		return
	}

	w := uint8(in.Kind.Bytes())
	if in.B != ir.NoV && e.f.Class[in.B] == ir.FP {
		s := e.readFP(in.B, w)
		mem := e.memOperandFor(b, idx, in.A, in.Off)
		e.emit(x86.Inst{Op: x86.OMovsd, W: w, Dst: x86.M(mem), Src: x86.R(s)})
		return
	}
	var src x86.Operand
	if in.B != ir.NoV {
		src = x86.R(e.readGP(in.B, e.s1(), w))
	} else {
		src = x86.Imm(in.Imm)
	}
	mem := e.memOperandFor(b, idx, in.A, in.Off)
	e.emit(x86.Inst{Op: x86.OMov, W: w, Dst: x86.M(mem), Src: src})
}
