package codegen_test

// Pins the core contract of the parallel compile pipeline: serial and
// function-parallel compilation produce byte-identical serialized artifacts
// (so pipeline content addresses stay valid at any worker count), and the
// pooled compile scratch is safe under concurrent module compiles (run these
// with -race).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/minic"
	"repro/internal/sched"
	"repro/internal/wasm"
	"repro/internal/workloads"
)

// multiFuncSource is a mini-C program with enough functions — including
// float constants, masks, loops, and indirect control flow — to exercise
// every cross-function coupling of the compiler (entry labels, rodata
// interning order, fragment merging).
const multiFuncSource = `
double scale(double x) { return x * 2.5 + 0.125; }
double flip(double x) { return -x; }
int addmul(int a, int b) { return a * b + a; }
int looped(int n) {
  int i; int acc;
  acc = 0;
  for (i = 0; i < n; i++) { acc += addmul(i, 3); }
  return acc;
}
int main() {
  double d;
  d = scale(4.0) + flip(2.0);
  print_int(looped(10) + (int)d);
  print_nl();
  return 0;
}`

// buildModule compiles mini-C to a wasm module for the engine's ABI.
func buildModule(t testing.TB, src string, cfg *codegen.EngineConfig) *wasm.Module {
	t.Helper()
	abi := minic.ABI32
	if cfg.Name == "native" {
		abi = minic.ABI64
	}
	m, err := minic.Compile(src, abi)
	if err != nil {
		t.Fatalf("minic: %v", err)
	}
	return m
}

// encodeNormalized serializes cm with the wall-clock CompileTime zeroed —
// the single nondeterministic field of the artifact format.
func encodeNormalized(t testing.TB, cm *codegen.CompiledModule) []byte {
	t.Helper()
	saved := cm.CompileTime
	cm.CompileTime = 0
	data, err := codegen.EncodeModule(cm)
	cm.CompileTime = saved
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// compileAt compiles m with the given worker count and returns the
// normalized artifact bytes.
func compileAt(t testing.TB, m *wasm.Module, cfg *codegen.EngineConfig, workers int) []byte {
	t.Helper()
	prev := codegen.Workers
	codegen.Workers = workers
	defer func() { codegen.Workers = prev }()
	cm, err := codegen.Compile(m, cfg)
	if err != nil {
		t.Fatalf("%s: compile (workers=%d): %v", cfg.Name, workers, err)
	}
	return encodeNormalized(t, cm)
}

// compileAtBudget compiles m with the given worker cap while the shared
// scheduler budget is pinned to tokens, returning the normalized artifact
// bytes.
func compileAtBudget(t testing.TB, m *wasm.Module, cfg *codegen.EngineConfig, workers, tokens int) []byte {
	t.Helper()
	prev := sched.SetSharedCapacity(tokens)
	defer sched.SetSharedCapacity(prev)
	return compileAt(t, m, cfg, workers)
}

// TestCompileDeterminism pins serial == parallel, byte for byte, for every
// engine configuration, on both a hand-written multi-function module and a
// real workload — and at every scheduler budget size: a compile that can
// borrow no helpers, a few, or plenty must produce the same artifact.
func TestCompileDeterminism(t *testing.T) {
	sources := map[string]string{
		"multifunc": multiFuncSource,
		"workload":  workloads.SPECCPU()[0].Source,
	}
	for name, src := range sources {
		for _, cfg := range engines() {
			t.Run(name+"/"+cfg.Name, func(t *testing.T) {
				m := buildModule(t, src, cfg)
				serial := compileAt(t, m, cfg, 1)
				parallel := compileAt(t, m, cfg, 8)
				if !bytes.Equal(serial, parallel) {
					t.Fatalf("serial and parallel artifacts differ (%d vs %d bytes)",
						len(serial), len(parallel))
				}
				// Repeat with a warm scratch pool: recycled arenas must not
				// leak state between compiles.
				again := compileAt(t, m, cfg, 8)
				if !bytes.Equal(serial, again) {
					t.Fatal("warm-pool recompile produced a different artifact")
				}
				// And across budget sizes, including a budget of one token
				// (no helpers at all — pure inline compilation).
				for _, tokens := range []int{1, 2, 16} {
					got := compileAtBudget(t, m, cfg, 8, tokens)
					if !bytes.Equal(serial, got) {
						t.Fatalf("artifact differs at budget %d (%d vs %d bytes)",
							tokens, len(serial), len(got))
					}
				}
			})
		}
	}
}

// TestCompileScratchStress hammers the pooled compile scratch from many
// goroutines compiling different modules under different configs at once;
// run with -race to check the pool and the shared rodata index. Each result
// is compared against a reference compile.
func TestCompileScratchStress(t *testing.T) {
	type job struct {
		name string
		m    *wasm.Module
		cfg  *codegen.EngineConfig
		want []byte
	}
	srcs := []string{multiFuncSource, workloads.Polybench()[0].Source}
	var jobs []job
	for si, src := range srcs {
		for _, cfg := range engines() {
			m := buildModule(t, src, cfg)
			jobs = append(jobs, job{
				name: fmt.Sprintf("src%d/%s", si, cfg.Name),
				m:    m,
				cfg:  cfg,
				want: compileAt(t, m, cfg, 1),
			})
		}
	}
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*rounds)
	for r := 0; r < rounds; r++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				cm, err := codegen.Compile(j.m, j.cfg)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", j.name, err)
					return
				}
				cm.CompileTime = 0
				got, err := codegen.EncodeModule(cm)
				if err != nil {
					errs <- fmt.Errorf("%s: encode: %v", j.name, err)
					return
				}
				if !bytes.Equal(got, j.want) {
					errs <- fmt.Errorf("%s: concurrent compile diverged", j.name)
				}
			}(j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
