package codegen

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/wasm"
	"repro/internal/x86"
)

// moduleCtx is shared emission state across a module's functions.
type moduleCtx struct {
	prog      *x86.Program
	cfg       *EngineConfig
	nextLabel int
	funcLabel []int // module-function index -> entry label
	tableSize int
	rodata    []byte
	roIndex   map[uint64]uint32
	hostNames []string
}

// floatConst interns an 8-byte float constant in rodata, returning its
// absolute address.
func (c *moduleCtx) floatConst(v float64, w uint8) uint32 {
	var bits uint64
	if w == 4 {
		bits = uint64(math.Float32bits(float32(v))) | 1<<63 // distinct key space
	} else {
		bits = math.Float64bits(v)
	}
	if a, ok := c.roIndex[bits]; ok {
		return a
	}
	addr := uint32(x86.RodataBase) + uint32(len(c.rodata))
	var buf [8]byte
	if w == 4 {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
	} else {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	}
	c.rodata = append(c.rodata, buf[:]...)
	c.roIndex[bits] = addr
	return addr
}

// maskConst interns the abs/neg bit masks.
func (c *moduleCtx) maskConst(signFlip bool, w uint8) uint32 {
	var v uint64
	switch {
	case signFlip && w == 8:
		v = 0x8000000000000000
	case signFlip && w == 4:
		v = 0x80000000
	case !signFlip && w == 8:
		v = 0x7fffffffffffffff
	default:
		v = 0x7fffffff
	}
	key := v ^ 0xdeadbeef<<32 // avoid colliding with float keys
	if a, ok := c.roIndex[key]; ok {
		return a
	}
	addr := uint32(x86.RodataBase) + uint32(len(c.rodata))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	c.rodata = append(c.rodata, buf[:]...)
	c.roIndex[key] = addr
	return addr
}

func (c *moduleCtx) hostName(i int) string {
	if i >= 0 && i < len(c.hostNames) {
		return c.hostNames[i]
	}
	return fmt.Sprintf("host%d", i)
}

// TableEntry is one indirect-call table slot.
type TableEntry struct {
	SigID   int
	FuncIdx int // module-function index; -1 = null
}

// FuncStats records per-function compilation metrics (Figure 7 analysis).
type FuncStats struct {
	Name      string
	Insts     int
	CodeBytes uint32
	Spills    int
	UsedRegs  int
	IRLen     int
	NumBlocks int
}

// CompiledModule is the output of compiling a module for one engine.
type CompiledModule struct {
	Engine  *EngineConfig
	Module  *wasm.Module
	Prog    *x86.Program
	Entries []int // module-function index -> instruction index
	Table   []TableEntry
	// GlobalInit holds initial global values (raw bits).
	GlobalInit []uint64
	// Data segments to copy into linear memory at instantiation.
	Data []wasm.Data
	// MemPages is the initial linear-memory size in pages.
	MemPages uint32
	MemMax   uint32
	// Rodata is mapped at x86.RodataBase.
	Rodata []byte
	// HostImports lists imported functions in index order ("env.name").
	HostImports []string
	// Exports maps exported function names to module-function indices.
	Exports map[string]int
	// Stats per function, plus compile time.
	Stats       []FuncStats
	CompileTime time.Duration
	TotalSpills int

	// PtrSize is the source data model (4 = wasm32, 8 = native x86-64);
	// set by the toolchain driver so loaders lay out argv correctly.
	PtrSize int
}

// Compile lowers, optimizes, allocates, and emits every function of m under
// the engine configuration cfg.
func Compile(m *wasm.Module, cfg *EngineConfig) (*CompiledModule, error) {
	start := time.Now()
	ctx := &moduleCtx{
		prog:    x86.NewProgram(),
		cfg:     cfg,
		roIndex: map[uint64]uint32{},
	}

	// Host imports.
	for _, im := range m.Imports {
		if im.Kind == wasm.ExternFunc {
			ctx.hostNames = append(ctx.hostNames, im.Module+"."+im.Name)
		}
	}
	ctx.prog.HostNames = ctx.hostNames

	// Function labels.
	ctx.funcLabel = make([]int, len(m.Funcs))
	for i := range m.Funcs {
		ctx.nextLabel++
		ctx.funcLabel[i] = ctx.nextLabel
	}

	// Table.
	cm := &CompiledModule{Engine: cfg, Module: m, Exports: map[string]int{}}
	if len(m.Tables) > 0 {
		ctx.tableSize = int(m.Tables[0].Limits.Min)
		cm.Table = make([]TableEntry, ctx.tableSize)
		for i := range cm.Table {
			cm.Table[i] = TableEntry{SigID: -1, FuncIdx: -1}
		}
		nimp := m.NumImportedFuncs()
		for _, e := range m.Elems {
			off, _ := constI32(e.Offset)
			for i, fidx := range e.Funcs {
				fi := int(fidx) - nimp
				if fi < 0 {
					return nil, fmt.Errorf("codegen: imported function in table (unsupported)")
				}
				slot := int(off) + i
				if slot < 0 || slot >= len(cm.Table) {
					return nil, fmt.Errorf("codegen: element segment out of range")
				}
				cm.Table[slot] = TableEntry{SigID: int(m.Funcs[fi].TypeIdx), FuncIdx: fi}
			}
		}
	}

	// Compile each function.
	raCfg := &regalloc.Config{GP: cfg.GP, FP: cfg.FP, CalleeSavedGP: cfg.calleeSavedSet()}
	for fi := range m.Funcs {
		f, err := LowerFunc(m, fi, cfg)
		if err != nil {
			return nil, err
		}
		Optimize(f)
		if cfg.Allocator == AllocGraphColor {
			OptimizeNative(f)
		}
		lv := ir.ComputeLiveness(f)
		var ra *regalloc.Result
		if cfg.Allocator == AllocGraphColor {
			ra = regalloc.GraphColor(f, lv, raCfg)
		} else {
			ra = regalloc.LinearScan(f, lv, raCfg)
		}
		em := &emitter{ctx: ctx, cfg: cfg, f: f, ra: ra}
		startIns := len(ctx.prog.Code)
		if err := em.emitFunc(); err != nil {
			return nil, err
		}
		irLen := 0
		for _, b := range f.Blocks {
			irLen += len(b.Ins)
		}
		cm.Stats = append(cm.Stats, FuncStats{
			Name:      f.Name,
			Insts:     len(ctx.prog.Code) - startIns,
			Spills:    ra.Spills,
			IRLen:     irLen,
			NumBlocks: len(f.Blocks),
		})
		cm.TotalSpills += ra.Spills
	}

	if err := ctx.prog.ResolveTargets(); err != nil {
		return nil, err
	}
	ctx.prog.Layout()
	for i := range cm.Stats {
		f := ctx.prog.Funcs[i]
		var bytes uint32
		for j := f.Start; j < f.End; j++ {
			bytes += uint32(ctx.prog.Code[j].Size)
		}
		cm.Stats[i].CodeBytes = bytes
	}

	// Entries.
	cm.Prog = ctx.prog
	cm.Entries = make([]int, len(m.Funcs))
	for i, l := range ctx.funcLabel {
		idx, ok := ctx.prog.LabelTarget(l)
		if !ok {
			return nil, fmt.Errorf("codegen: function %d entry label unresolved", i)
		}
		cm.Entries[i] = idx
	}

	// Globals.
	for _, g := range m.Globals {
		v, err := constBits(g.Init)
		if err != nil {
			return nil, err
		}
		cm.GlobalInit = append(cm.GlobalInit, v)
	}

	// Memory + data.
	if len(m.Mems) > 0 {
		cm.MemPages = m.Mems[0].Min
		cm.MemMax = m.Mems[0].Max
		if !m.Mems[0].HasMax {
			cm.MemMax = x86.LinearMax / wasm.PageSize
		}
	}
	cm.Data = m.Data
	cm.Rodata = ctx.rodata
	cm.HostImports = ctx.hostNames

	nimp := m.NumImportedFuncs()
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			fi := int(e.Index) - nimp
			if fi >= 0 {
				cm.Exports[e.Name] = fi
			}
		}
	}

	cm.CompileTime = time.Since(start)
	return cm, nil
}

func constI32(in wasm.Instr) (int32, error) {
	if in.Op != wasm.OpI32Const {
		return 0, fmt.Errorf("codegen: non-constant offset")
	}
	return int32(in.I64), nil
}

func constBits(in wasm.Instr) (uint64, error) {
	switch in.Op {
	case wasm.OpI32Const:
		return uint64(uint32(int32(in.I64))), nil
	case wasm.OpI64Const:
		return uint64(in.I64), nil
	case wasm.OpF32Const:
		return uint64(math.Float32bits(float32(in.F64))), nil
	case wasm.OpF64Const:
		return math.Float64bits(in.F64), nil
	}
	return 0, fmt.Errorf("codegen: unsupported global initializer %s", wasm.OpName(in.Op))
}

// FindExport returns the module-function index of an exported function.
func (cm *CompiledModule) FindExport(name string) (int, bool) {
	fi, ok := cm.Exports[name]
	return fi, ok
}

// DisasmFunc returns the Figure 7-style listing of a function by name.
func (cm *CompiledModule) DisasmFunc(name string) (string, bool) {
	for i, f := range cm.Prog.Funcs {
		if f.Name == name {
			return cm.Prog.Disasm(i), true
		}
	}
	return "", false
}
