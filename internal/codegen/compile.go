package codegen

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/wasm"
	"repro/internal/x86"
)

// moduleCtx is shared emission state across a module's functions. During
// the parallel emission phase it is effectively read-only: the rodata pool
// is fully populated by a serial prescan (prescanConsts) before emitters
// run and then sealed, so floatConst/maskConst only ever hit the intern
// index — a sealed-pool miss (a prescan/emission mismatch bug) panics via
// roMiss rather than interning at a scheduling-dependent address.
type moduleCtx struct {
	cfg       *EngineConfig
	funcLabel []int // module-function index -> entry label
	tableSize int
	roMu      sync.Mutex
	roSealed  bool // set after prescan: emission-phase misses are a bug
	rodata    []byte
	roIndex   map[uint64]uint32
	hostNames []string
}

// roMiss is the sealed-pool miss path: the serial prescan is supposed to
// have interned every constant emission will ask for. A miss after sealing
// means prescanConsts and the emitter disagreed about some instruction; in
// parallel emission the constant's address would then depend on goroutine
// scheduling, silently breaking the byte-identical-artifact invariant the
// store keys rely on. Fail loudly and deterministically instead.
func (c *moduleCtx) roMiss(what string) {
	panic(fmt.Sprintf("codegen: rodata %s requested during emission but not interned by prescan", what))
}

// floatConst interns an 8-byte float constant in rodata, returning its
// absolute address.
func (c *moduleCtx) floatConst(v float64, w uint8) uint32 {
	var bits uint64
	if w == 4 {
		bits = uint64(math.Float32bits(float32(v))) | 1<<63 // distinct key space
	} else {
		bits = math.Float64bits(v)
	}
	c.roMu.Lock()
	defer c.roMu.Unlock()
	if a, ok := c.roIndex[bits]; ok {
		return a
	}
	if c.roSealed {
		c.roMiss(fmt.Sprintf("float constant %v/w%d", v, w))
	}
	addr := uint32(x86.RodataBase) + uint32(len(c.rodata))
	var buf [8]byte
	if w == 4 {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
	} else {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	}
	c.rodata = append(c.rodata, buf[:]...)
	c.roIndex[bits] = addr
	return addr
}

// maskConst interns the abs/neg bit masks.
func (c *moduleCtx) maskConst(signFlip bool, w uint8) uint32 {
	var v uint64
	switch {
	case signFlip && w == 8:
		v = 0x8000000000000000
	case signFlip && w == 4:
		v = 0x80000000
	case !signFlip && w == 8:
		v = 0x7fffffffffffffff
	default:
		v = 0x7fffffff
	}
	key := v ^ 0xdeadbeef<<32 // avoid colliding with float keys
	c.roMu.Lock()
	defer c.roMu.Unlock()
	if a, ok := c.roIndex[key]; ok {
		return a
	}
	if c.roSealed {
		c.roMiss(fmt.Sprintf("mask constant signFlip=%v/w%d", signFlip, w))
	}
	addr := uint32(x86.RodataBase) + uint32(len(c.rodata))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	c.rodata = append(c.rodata, buf[:]...)
	c.roIndex[key] = addr
	return addr
}

// prescanConsts interns, in IR order, every rodata constant function f's
// emission will request: FConst materializations (skipping dead
// destinations and +0.0, exactly as the emitter does) and the FAbs/FNeg
// masks. Compile runs it serially in function order between the parallel
// frontend and emission phases, so constant addresses — and therefore the
// emitted instruction bytes — are independent of emission concurrency and
// identical to what a fully serial compile interns.
func prescanConsts(ctx *moduleCtx, f *ir.Func, ra *regalloc.Result) {
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			switch in.Op {
			case ir.FConst:
				if ra.Loc[in.Dst].Kind == regalloc.LocNone {
					continue
				}
				if in.F64 == 0 && !math.Signbit(in.F64) {
					continue
				}
				ctx.floatConst(in.F64, in.W)
			case ir.FAbs:
				ctx.maskConst(false, in.W)
			case ir.FNeg:
				ctx.maskConst(true, in.W)
			}
		}
	}
}

func (c *moduleCtx) hostName(i int) string {
	if i >= 0 && i < len(c.hostNames) {
		return c.hostNames[i]
	}
	return fmt.Sprintf("host%d", i)
}

// TableEntry is one indirect-call table slot.
type TableEntry struct {
	SigID   int
	FuncIdx int // module-function index; -1 = null
}

// FuncStats records per-function compilation metrics (Figure 7 analysis).
type FuncStats struct {
	Name      string
	Insts     int
	CodeBytes uint32
	Spills    int
	UsedRegs  int
	IRLen     int
	NumBlocks int
}

// CompiledModule is the output of compiling a module for one engine.
type CompiledModule struct {
	Engine  *EngineConfig
	Module  *wasm.Module
	Prog    *x86.Program
	Entries []int // module-function index -> instruction index
	Table   []TableEntry
	// GlobalInit holds initial global values (raw bits).
	GlobalInit []uint64
	// Data segments to copy into linear memory at instantiation.
	Data []wasm.Data
	// MemPages is the initial linear-memory size in pages.
	MemPages uint32
	MemMax   uint32
	// Rodata is mapped at x86.RodataBase.
	Rodata []byte
	// HostImports lists imported functions in index order ("env.name").
	HostImports []string
	// Exports maps exported function names to module-function indices.
	Exports map[string]int
	// Stats per function, plus compile time.
	Stats       []FuncStats
	CompileTime time.Duration
	TotalSpills int

	// PtrSize is the source data model (4 = wasm32, 8 = native x86-64);
	// set by the toolchain driver so loaders lay out argv correctly.
	PtrSize int
}

// Compile lowers, optimizes, allocates, and emits every function of m under
// the engine configuration cfg.
//
// Functions compile independently: the frontend (lowering, optimization,
// liveness, register allocation) and the emission of per-function machine
// fragments both fan out over the shared scheduler, borrowing worker slots
// from the process-wide budget (sched.Shared; Workers caps the width), with
// two short serial passes between them — the rodata prescan that fixes
// constant addresses in function order, and the fragment merge that
// concatenates the fragments and resolves branch/call targets to global
// instruction indices. When concurrent suite jobs hold the whole budget the
// compile simply runs serially on its caller's goroutine. The output is
// byte-identical at any worker count and any budget size.
func Compile(m *wasm.Module, cfg *EngineConfig) (*CompiledModule, error) {
	return CompileContext(context.Background(), m, cfg)
}

// CompileContext is Compile under a caller context. The context's role is
// scheduler accounting: when it carries the shared scheduler's pool marker
// (the compile was reached from inside a RunJobs job, as
// pipeline.BuildContext arranges), the per-function fan-out skips the
// best-effort self token its goroutine is already charged for. A
// cancellable context also stops dispatching function jobs once cancelled;
// note that Build's cache deliberately strips cancellation before calling
// this, so shared compiles are never aborted by one requester.
func CompileContext(ctx context.Context, m *wasm.Module, cfg *EngineConfig) (*CompiledModule, error) {
	start := time.Now()
	mctx := &moduleCtx{
		cfg:     cfg,
		roIndex: map[uint64]uint32{},
	}

	// Host imports.
	for _, im := range m.Imports {
		if im.Kind == wasm.ExternFunc {
			mctx.hostNames = append(mctx.hostNames, im.Module+"."+im.Name)
		}
	}

	// Function labels.
	mctx.funcLabel = make([]int, len(m.Funcs))
	for i := range m.Funcs {
		mctx.funcLabel[i] = i + 1
	}

	// Table.
	cm := &CompiledModule{Engine: cfg, Module: m, Exports: map[string]int{}}
	if len(m.Tables) > 0 {
		mctx.tableSize = int(m.Tables[0].Limits.Min)
		cm.Table = make([]TableEntry, mctx.tableSize)
		for i := range cm.Table {
			cm.Table[i] = TableEntry{SigID: -1, FuncIdx: -1}
		}
		nimp := m.NumImportedFuncs()
		for _, e := range m.Elems {
			off, _ := constI32(e.Offset)
			for i, fidx := range e.Funcs {
				fi := int(fidx) - nimp
				if fi < 0 {
					return nil, fmt.Errorf("codegen: imported function in table (unsupported)")
				}
				slot := int(off) + i
				if slot < 0 || slot >= len(cm.Table) {
					return nil, fmt.Errorf("codegen: element segment out of range")
				}
				cm.Table[slot] = TableEntry{SigID: int(m.Funcs[fi].TypeIdx), FuncIdx: fi}
			}
		}
	}

	// Phase 1 (parallel): frontend — lower, optimize, liveness, allocate.
	// Each function carries its pooled scratch through to emission.
	raCfg := &regalloc.Config{GP: cfg.GP, FP: cfg.FP, CalleeSavedGP: cfg.calleeSavedSet()}
	n := len(m.Funcs)
	frags := make([]*compileScratch, n)
	releaseAll := func() {
		for _, sc := range frags {
			if sc != nil {
				sc.release()
			}
		}
	}
	err := runPerFunc(ctx, n, func(fi int) error {
		sc := getScratch()
		frags[fi] = sc
		f, err := lowerFuncInto(m, fi, cfg, sc)
		if err != nil {
			return err
		}
		// Fault site inside the nested fan-out, keyed by function name: an
		// injected panic here unwinds through a scheduler worker at the
		// deepest containment boundary the pipeline has.
		if err := fault.Check(fault.SiteCodegenFunc, f.Name); err != nil {
			return err
		}
		optimize(sc, f)
		if cfg.Allocator == AllocGraphColor {
			optimizeNative(sc, f)
		}
		lv := sc.live.ComputeLiveness(f)
		if cfg.Allocator == AllocGraphColor {
			sc.res = sc.ra.GraphColor(f, lv, raCfg)
		} else {
			sc.res = sc.ra.LinearScan(f, lv, raCfg)
		}
		sc.f = f
		return nil
	})
	if err != nil {
		releaseAll()
		return nil, err
	}

	// Phase 2 (serial): intern rodata constants in function order, so
	// constant addresses match a serial compile exactly. The pool is then
	// sealed: an emission-phase miss (a prescan/emitter mismatch bug)
	// panics instead of interning at a scheduling-dependent address.
	for _, sc := range frags {
		prescanConsts(mctx, sc.f, sc.res)
	}
	mctx.roSealed = true

	// Phase 3 (parallel): emit every function into its scratch fragment.
	err = runPerFunc(ctx, n, func(fi int) error {
		sc := frags[fi]
		em := &emitter{ctx: mctx, cfg: cfg, f: sc.f, ra: sc.res, sc: sc, prog: sc.frag}
		if err := em.emitFunc(); err != nil {
			return err
		}
		irLen := 0
		for _, b := range sc.f.Blocks {
			irLen += len(b.Ins)
		}
		sc.stats = FuncStats{
			Name:      sc.f.Name,
			Insts:     len(sc.frag.Code),
			Spills:    sc.res.Spills,
			IRLen:     irLen,
			NumBlocks: len(sc.f.Blocks),
		}
		return nil
	})
	if err != nil {
		releaseAll()
		return nil, err
	}

	// Phase 4 (serial): merge fragments in function order.
	prog, err := mergeFragments(mctx, frags)
	if err != nil {
		releaseAll()
		return nil, err
	}
	for _, sc := range frags {
		cm.Stats = append(cm.Stats, sc.stats)
		cm.TotalSpills += sc.stats.Spills
	}
	releaseAll()

	prog.Layout()
	for i := range cm.Stats {
		f := prog.Funcs[i]
		var bytes uint32
		for j := f.Start; j < f.End; j++ {
			bytes += uint32(prog.Code[j].Size)
		}
		cm.Stats[i].CodeBytes = bytes
	}

	// Entries.
	cm.Prog = prog
	cm.Entries = make([]int, len(m.Funcs))
	for i, l := range mctx.funcLabel {
		idx, ok := prog.LabelTarget(l)
		if !ok {
			return nil, fmt.Errorf("codegen: function %d entry label unresolved", i)
		}
		cm.Entries[i] = idx
	}

	// Globals.
	for _, g := range m.Globals {
		v, err := constBits(g.Init)
		if err != nil {
			return nil, err
		}
		cm.GlobalInit = append(cm.GlobalInit, v)
	}

	// Memory + data.
	if len(m.Mems) > 0 {
		cm.MemPages = m.Mems[0].Min
		cm.MemMax = m.Mems[0].Max
		if !m.Mems[0].HasMax {
			cm.MemMax = x86.LinearMax / wasm.PageSize
		}
	}
	cm.Data = m.Data
	cm.Rodata = mctx.rodata
	cm.HostImports = mctx.hostNames

	nimp := m.NumImportedFuncs()
	for _, e := range m.Exports {
		if e.Kind == wasm.ExternFunc {
			fi := int(e.Index) - nimp
			if fi >= 0 {
				cm.Exports[e.Name] = fi
			}
		}
	}

	cm.CompileTime = time.Since(start)
	return cm, nil
}

// mergeFragments concatenates the per-function fragment programs in
// function order into one module program, resolving fragment-local
// (negative) labels and function entry labels to global instruction
// indices. This replaces the serial path's incremental Bind/ResolveTargets:
// the merged program binds exactly the function entry labels, matching what
// DecodeModule reconstructs.
func mergeFragments(ctx *moduleCtx, frags []*compileScratch) (*x86.Program, error) {
	total := 0
	for _, sc := range frags {
		total += len(sc.frag.Code)
	}
	prog := x86.NewProgram()
	prog.HostNames = ctx.hostNames
	prog.Code = make([]x86.Inst, 0, total)

	fragStart := make([]int, len(frags))
	entryIdx := make([]int, len(frags))
	off := 0
	for i, sc := range frags {
		fragStart[i] = off
		li, ok := sc.frag.LabelTarget(ctx.funcLabel[i])
		if !ok {
			return nil, fmt.Errorf("codegen: function %d entry label unbound in fragment", i)
		}
		entryIdx[i] = off + li
		off += len(sc.frag.Code)
	}

	for i, sc := range frags {
		resolve := func(t int) (int, error) {
			if t < 0 {
				idx, ok := sc.frag.LabelTarget(t)
				if !ok {
					return 0, fmt.Errorf("x86: undefined label L%d in function %d", t, i)
				}
				return idx + fragStart[i], nil
			}
			// Positive labels are function entries (funcLabel[fi] = fi+1).
			fi := t - 1
			if fi < 0 || fi >= len(frags) {
				return 0, fmt.Errorf("x86: undefined entry label L%d in function %d", t, i)
			}
			return entryIdx[fi], nil
		}
		base := len(prog.Code)
		prog.Code = append(prog.Code, sc.frag.Code...)
		var err error
		for j := base; j < len(prog.Code); j++ {
			in := &prog.Code[j]
			switch in.Op {
			case x86.OJmp, x86.OJcc, x86.OCall:
				if in.Target, err = resolve(in.Target); err != nil {
					return nil, err
				}
			case x86.OJmpTable:
				for k, t := range in.TableTargets {
					if in.TableTargets[k], err = resolve(t); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, fn := range sc.frag.Funcs {
			fn.Start += fragStart[i]
			fn.End += fragStart[i]
			prog.Funcs = append(prog.Funcs, fn)
			prog.FuncByLabel[fn.Label] = len(prog.Funcs) - 1
		}
		prog.BindAt(ctx.funcLabel[i], entryIdx[i])
	}
	return prog, nil
}

func constI32(in wasm.Instr) (int32, error) {
	if in.Op != wasm.OpI32Const {
		return 0, fmt.Errorf("codegen: non-constant offset")
	}
	return int32(in.I64), nil
}

func constBits(in wasm.Instr) (uint64, error) {
	switch in.Op {
	case wasm.OpI32Const:
		return uint64(uint32(int32(in.I64))), nil
	case wasm.OpI64Const:
		return uint64(in.I64), nil
	case wasm.OpF32Const:
		return uint64(math.Float32bits(float32(in.F64))), nil
	case wasm.OpF64Const:
		return math.Float64bits(in.F64), nil
	}
	return 0, fmt.Errorf("codegen: unsupported global initializer %s", wasm.OpName(in.Op))
}

// FindExport returns the module-function index of an exported function.
func (cm *CompiledModule) FindExport(name string) (int, bool) {
	fi, ok := cm.Exports[name]
	return fi, ok
}

// DisasmFunc returns the Figure 7-style listing of a function by name.
func (cm *CompiledModule) DisasmFunc(name string) (string, bool) {
	for i, f := range cm.Prog.Funcs {
		if f.Name == name {
			return cm.Prog.Disasm(i), true
		}
	}
	return "", false
}
