package codegen

import (
	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/x86"
)

// emitCall handles Call, CallHost, and CallInd.
func (e *emitter) emitCall(in *ir.Ins) {
	// For indirect calls, load and check the target before argument moves
	// so the index register cannot be clobbered by the argument shuffle.
	if in.Op == ir.CallInd {
		idx := e.readGP(in.A, e.s1(), 4)
		if idx != e.s1() {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s1()), Src: x86.R(idx)})
		}
		if e.cfg.IndirectCheck {
			// Table bounds check (§6.2.3).
			e.emit(x86.Inst{Op: x86.OCmp, W: 4, Dst: x86.R(e.s1()), Src: x86.Imm(int64(e.ctx.tableSize)), Comment: "table bounds"})
			e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCAE, Target: e.trapL})
		}
		e.emit(x86.Inst{Op: x86.OShl, W: 8, Dst: x86.R(e.s1()), Src: x86.Imm(4)}) // *16
	}

	e.setupArgs(in.Args)

	switch in.Op {
	case ir.Call:
		e.emit(x86.Inst{Op: x86.OCall, Target: e.ctx.funcLabel[in.Callee]})
	case ir.CallHost:
		e.emit(x86.Inst{Op: x86.OCallHost, Host: in.Callee, Comment: e.ctx.hostName(in.Callee)})
	case ir.CallInd:
		tbase := uint32(x86.TableBase)
		tb := x86.Mem{Base: x86.NoReg, Index: e.s1(), Scale: 1, Disp: int32(tbase)}
		if e.cfg.IndirectCheck {
			// Signature check: table entry holds [sig, entry].
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s0()), Src: x86.M(tb)})
			e.emit(x86.Inst{Op: x86.OCmp, W: 8, Dst: x86.R(e.s0()), Src: x86.Imm(int64(in.SigID)), Comment: "sig check"})
			e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCNE, Target: e.trapL})
		}
		entry := tb
		entry.Disp += 8
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s0()), Src: x86.M(entry)})
		e.emit(x86.Inst{Op: x86.OCallR, W: 8, Dst: x86.R(e.s0())})
	}

	// Stack-arg cleanup.
	if n := e.stackArgCount(in.Args); n > 0 {
		e.emit(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSP), Src: x86.Imm(int64(n) * 8)})
	}

	if in.Dst != ir.NoV {
		e.storeCallResult(in.Dst, e.f.Class[in.Dst] == ir.FP)
	}
}

func (e *emitter) stackArgCount(args []ir.VReg) int {
	gi, fi, si := 0, 0, 0
	for _, a := range args {
		if e.f.Class[a] == ir.FP {
			if fi < len(e.cfg.ArgFP) {
				fi++
			} else {
				si++
			}
		} else {
			if gi < len(e.cfg.ArgGP) {
				gi++
			} else {
				si++
			}
		}
	}
	return si
}

// setupArgs moves argument vregs into the calling convention's registers and
// stack slots.
func (e *emitter) setupArgs(args []ir.VReg) {
	nStack := e.stackArgCount(args)
	if nStack > 0 {
		e.emit(x86.Inst{Op: x86.OSub, W: 8, Dst: x86.R(x86.RSP), Src: x86.Imm(int64(nStack) * 8)})
	}
	// The pmoves staging buffer is idle outside prologue(), which never
	// emits calls; parallelMoves copies into the separate pending buffer.
	moves := e.sc.pmoves[:0]
	gi, fi, si := 0, 0, 0
	for _, a := range args {
		fp := e.f.Class[a] == ir.FP
		var src x86.Operand
		l := e.loc(a)
		switch l.Kind {
		case regalloc.LocReg:
			src = x86.R(l.Reg)
		case regalloc.LocSpill:
			src = e.spillMem(l.Slot)
		default:
			src = x86.Imm(0) // dead value; pass zero
		}
		var dstReg x86.Reg = x86.NoReg
		stackSlot := -1
		if fp {
			if fi < len(e.cfg.ArgFP) {
				dstReg = e.cfg.ArgFP[fi]
				fi++
			} else {
				stackSlot = si
				si++
			}
		} else {
			if gi < len(e.cfg.ArgGP) {
				dstReg = e.cfg.ArgGP[gi]
				gi++
			} else {
				stackSlot = si
				si++
			}
		}
		if stackSlot >= 0 {
			// Stack args are written immediately (before register moves
			// could clobber sources? No: register moves happen after, and
			// these stores read sources from their original locations,
			// which register moves have not touched yet).
			dst := x86.MB(x86.RSP, int32(stackSlot*8))
			if src.Kind == x86.KImm {
				e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: dst, Src: src})
			} else if fp {
				s := e.readFP(a, 8)
				e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: dst, Src: x86.R(s)})
			} else {
				s := e.readGP(a, e.s0(), 8)
				e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: dst, Src: x86.R(s)})
			}
			continue
		}
		if src.Kind == x86.KImm {
			e.emit(x86.Inst{Op: x86.OXor, W: 4, Dst: x86.R(dstReg), Src: x86.R(dstReg)})
			continue
		}
		moves = append(moves, pmove{dst: x86.R(dstReg), src: src, fp: fp})
	}
	e.sc.pmoves = moves[:0]
	e.parallelMoves(moves)
}

// storeCallResult moves rax/xmm0 into the destination location.
func (e *emitter) storeCallResult(dst ir.VReg, fp bool) {
	l := e.loc(dst)
	if l.Kind == regalloc.LocNone {
		return
	}
	if fp {
		switch l.Kind {
		case regalloc.LocReg:
			if l.Reg != x86.XMM0 {
				e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: x86.R(l.Reg), Src: x86.R(x86.XMM0)})
			}
		case regalloc.LocSpill:
			e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: e.spillMem(l.Slot), Src: x86.R(x86.XMM0)})
		}
		return
	}
	switch l.Kind {
	case regalloc.LocReg:
		if l.Reg != x86.RAX {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(l.Reg), Src: x86.R(x86.RAX)})
		}
	case regalloc.LocSpill:
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(l.Slot), Src: x86.R(x86.RAX)})
	}
}
