package codegen

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/x86"
)

// absMem builds an absolute-address memory operand. The simulator
// zero-extends the displacement of base-less operands.
func absMem(addr uint32) x86.Operand {
	return x86.Operand{Kind: x86.KMem, Mem: x86.Mem{Base: x86.NoReg, Index: x86.NoReg, Disp: int32(addr)}}
}

// ccX maps an IR condition to an x86 condition (integer, signed/unsigned).
func ccX(c ir.CC) x86.CC {
	switch c {
	case ir.CCEq:
		return x86.CCE
	case ir.CCNe:
		return x86.CCNE
	case ir.CCLt:
		return x86.CCL
	case ir.CCLe:
		return x86.CCLE
	case ir.CCGt:
		return x86.CCG
	case ir.CCGe:
		return x86.CCGE
	case ir.CCLtU:
		return x86.CCB
	case ir.CCLeU:
		return x86.CCBE
	case ir.CCGtU:
		return x86.CCA
	case ir.CCGeU:
		return x86.CCAE
	}
	return x86.CCNone
}

var binX = map[ir.Op]x86.Op{
	ir.Add: x86.OAdd, ir.Sub: x86.OSub, ir.Mul: x86.OImul,
	ir.And: x86.OAnd, ir.Or: x86.OOr, ir.Xor: x86.OXor,
}

var fbinX = map[ir.Op]x86.Op{
	ir.FAdd: x86.OAddsd, ir.FSub: x86.OSubsd, ir.FMul: x86.OMulsd,
	ir.FDiv: x86.ODivsd, ir.FMin: x86.OMinsd, ir.FMax: x86.OMaxsd,
}

// emitIns emits one IR instruction.
func (e *emitter) emitIns(b *ir.Block, idx int, bi int) error {
	in := &b.Ins[idx]
	switch in.Op {
	case ir.Nop:

	case ir.Const:
		if e.loc(in.Dst).Kind == regalloc.LocNone {
			return nil
		}
		d, flush := e.dstGP(in.Dst)
		if in.Imm == 0 {
			e.emit(x86.Inst{Op: x86.OXor, W: 4, Dst: x86.R(d), Src: x86.R(d)})
		} else {
			w := in.W
			if in.Imm < 0 && w == 8 {
				w = 8
			}
			e.emit(x86.Inst{Op: x86.OMovImm, W: w, Dst: x86.R(d), Src: x86.Imm(in.Imm)})
		}
		flush()

	case ir.FConst:
		if e.loc(in.Dst).Kind == regalloc.LocNone {
			return nil
		}
		d, flush := e.dstFP(in.Dst)
		if in.F64 == 0 && !math.Signbit(in.F64) {
			e.emit(x86.Inst{Op: x86.OXorpd, W: 8, Dst: x86.R(d), Src: x86.R(d)})
		} else {
			addr := e.ctx.floatConst(in.F64, in.W)
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(d), Src: absMem(addr)})
		}
		flush()

	case ir.Mov:
		if e.loc(in.Dst).Kind == regalloc.LocNone {
			return nil
		}
		if e.f.Class[in.Dst] == ir.FP {
			d, flush := e.dstFP(in.Dst)
			s := e.readFPOperand(in.A, 8)
			if s.Kind == x86.KReg && s.Reg == d {
				return nil
			}
			e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: x86.R(d), Src: s})
			flush()
			return nil
		}
		dl := e.loc(in.Dst)
		sl := e.loc(in.A)
		if dl.Kind == regalloc.LocReg && sl.Kind == regalloc.LocReg && dl.Reg == sl.Reg {
			return nil
		}
		if dl.Kind == regalloc.LocSpill && sl.Kind == regalloc.LocReg {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(dl.Slot), Src: x86.R(sl.Reg)})
			return nil
		}
		d, flush := e.dstGP(in.Dst)
		s := e.readGPOperand(in.A, d) // reload directly into dst when spilled
		if s.Kind == x86.KReg && s.Reg == d {
			flush()
			return nil
		}
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: s})
		flush()

	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor:
		e.emitBin(in)

	case ir.Shl, ir.ShrS, ir.ShrU, ir.Rotl, ir.Rotr:
		e.emitShift(in)

	case ir.DivS, ir.DivU, ir.RemS, ir.RemU:
		e.emitDiv(in)

	case ir.Clz, ir.Ctz, ir.Popcnt:
		var op x86.Op
		switch in.Op {
		case ir.Clz:
			op = x86.OBsr // modeled as lzcnt
		case ir.Ctz:
			op = x86.OBsf // modeled as tzcnt
		default:
			op = x86.OPopcnt
		}
		d, flush := e.dstGP(in.Dst)
		s := e.readGPOperand(in.A, e.s1())
		e.emit(x86.Inst{Op: op, W: in.W, Dst: x86.R(d), Src: s})
		flush()

	case ir.Eqz:
		d, flush := e.dstGP(in.Dst)
		a := e.readGP(in.A, e.s1(), in.W)
		e.emit(x86.Inst{Op: x86.OTest, W: in.W, Dst: x86.R(a), Src: x86.R(a)})
		e.emit(x86.Inst{Op: x86.OSet, CC: x86.CCE, W: 1, Dst: x86.R(d)})
		e.emit(x86.Inst{Op: x86.OMovZX8, W: 4, Dst: x86.R(d), Src: x86.R(d)})
		flush()

	case ir.Cmp:
		e.emitCmpSet(in, false)

	case ir.FCmp:
		e.emitCmpSet(in, true)

	case ir.Select:
		e.emitSelect(in)

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FMin, ir.FMax:
		// readFPOperand never emits (spilled values become memory
		// operands), so the ordering below cannot clobber the FP scratch.
		d, flush := e.dstFP(in.Dst)
		bop := e.readFPOperand(in.B, in.W)
		if bop.Kind == x86.KReg && bop.Reg == d {
			// dst==b: preserve b in the scratch before a overwrites d.
			if d == e.sf() {
				// dst is itself the scratch (spilled dst) and b lives in
				// it only if b is also the scratch — impossible since
				// readFPOperand returns allocated regs or memory.
				panic("codegen: fp scratch collision")
			}
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(e.sf()), Src: bop})
			bop = x86.R(e.sf())
		}
		aop := e.readFPOperand(in.A, in.W)
		if aop.Kind != x86.KReg || aop.Reg != d {
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(d), Src: aop})
		}
		e.emit(x86.Inst{Op: fbinX[in.Op], W: in.W, Dst: x86.R(d), Src: bop})
		flush()

	case ir.FSqrt:
		d, flush := e.dstFP(in.Dst)
		s := e.readFPOperand(in.A, in.W)
		e.emit(x86.Inst{Op: x86.OSqrtsd, W: in.W, Dst: x86.R(d), Src: s})
		flush()

	case ir.FAbs:
		d, flush := e.dstFP(in.Dst)
		a := e.readFP(in.A, in.W)
		if d != a {
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(d), Src: x86.R(a)})
		}
		e.emit(x86.Inst{Op: x86.OAndpd, W: in.W, Dst: x86.R(d), Src: absMem(e.ctx.maskConst(false, in.W))})
		flush()

	case ir.FNeg:
		d, flush := e.dstFP(in.Dst)
		a := e.readFP(in.A, in.W)
		if d != a {
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(d), Src: x86.R(a)})
		}
		e.emit(x86.Inst{Op: x86.OXorpd, W: in.W, Dst: x86.R(d), Src: absMem(e.ctx.maskConst(true, in.W))})
		flush()

	case ir.FCeil, ir.FFloor, ir.FTrunc, ir.FNearest:
		var mode int64
		switch in.Op {
		case ir.FNearest:
			mode = 0
		case ir.FFloor:
			mode = 1
		case ir.FCeil:
			mode = 2
		case ir.FTrunc:
			mode = 3
		}
		d, flush := e.dstFP(in.Dst)
		s := e.readFPOperand(in.A, in.W)
		e.emit(x86.Inst{Op: x86.ORound, W: in.W, Dst: x86.R(d), Src: s, Target: int(mode)})
		flush()

	case ir.ExtS:
		d, flush := e.dstGP(in.Dst)
		s := e.readGPOperand(in.A, e.s1())
		e.emit(x86.Inst{Op: x86.OMovSXD, W: 8, Dst: x86.R(d), Src: s})
		flush()

	case ir.ExtU, ir.Wrap:
		// mov r32 zero-extends; wrap is the same operation.
		d, flush := e.dstGP(in.Dst)
		s := e.readGPOperand(in.A, d)
		if s.Kind == x86.KReg && s.Reg == d {
			// Ensure upper bits cleared for ExtU/Wrap.
			e.emit(x86.Inst{Op: x86.OMov, W: 4, Dst: x86.R(d), Src: x86.R(d)})
		} else {
			e.emit(x86.Inst{Op: x86.OMov, W: 4, Dst: x86.R(d), Src: s})
		}
		flush()

	case ir.I2F:
		d, flush := e.dstFP(in.Dst)
		s := e.readGPOperand(in.A, e.s1())
		w := uint8(in.Imm) // source int width
		e.emit(x86.Inst{Op: x86.OCvtsi2sd, W: w, Dst: x86.R(d), Src: s, Uns: in.Unsigned,
			Comment: fmt.Sprintf("-> f%d", in.W*8)})
		if in.W == 4 {
			e.emit(x86.Inst{Op: x86.OCvtsd2ss, W: 8, Dst: x86.R(d), Src: x86.R(d)})
		}
		flush()

	case ir.F2I:
		d, flush := e.dstGP(in.Dst)
		s := e.readFPOperand(in.A, uint8(in.Imm))
		e.emit(x86.Inst{Op: x86.OCvttsd2si, W: in.W, Dst: x86.R(d), Src: s, Uns: in.Unsigned,
			Comment: fmt.Sprintf("from f%d", in.Imm*8)})
		flush()

	case ir.F2F:
		d, flush := e.dstFP(in.Dst)
		s := e.readFPOperand(in.A, 8)
		if in.W == 4 {
			e.emit(x86.Inst{Op: x86.OCvtsd2ss, W: 8, Dst: x86.R(d), Src: s})
		} else {
			e.emit(x86.Inst{Op: x86.OCvtss2sd, W: 4, Dst: x86.R(d), Src: s})
		}
		flush()

	case ir.BitcastIF:
		d, flush := e.dstFP(in.Dst)
		s := e.readGP(in.A, e.s1(), in.W)
		e.emit(x86.Inst{Op: x86.OMovq, W: in.W, Dst: x86.R(d), Src: x86.R(s)})
		flush()

	case ir.BitcastFI:
		d, flush := e.dstGP(in.Dst)
		s := e.readFP(in.A, in.W)
		e.emit(x86.Inst{Op: x86.OMovq, W: in.W, Dst: x86.R(d), Src: x86.R(s)})
		flush()

	case ir.Load:
		e.emitLoad(b, idx)

	case ir.Store:
		e.emitStore(b, idx)

	case ir.GlobalLd:
		if e.loc(in.Dst).Kind == regalloc.LocNone {
			return nil
		}
		if in.Imm == 0 && e.cfg.ShadowSP != x86.NoReg {
			d, flush := e.dstGP(in.Dst)
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(e.cfg.ShadowSP), Comment: "shadow sp"})
			flush()
			return nil
		}
		addr := uint32(x86.GlobalsBase) + uint32(in.Imm)*8
		if e.f.Class[in.Dst] == ir.FP {
			d, flush := e.dstFP(in.Dst)
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: x86.R(d), Src: absMem(addr)})
			flush()
		} else {
			d, flush := e.dstGP(in.Dst)
			e.emit(x86.Inst{Op: x86.OMov, W: in.W, Dst: x86.R(d), Src: absMem(addr)})
			flush()
		}

	case ir.GlobalSt:
		if in.Imm == 0 && e.cfg.ShadowSP != x86.NoReg {
			s := e.readGP(in.A, e.s0(), 8)
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.cfg.ShadowSP), Src: x86.R(s), Comment: "shadow sp"})
			return nil
		}
		addr := uint32(x86.GlobalsBase) + uint32(in.Imm)*8
		if e.f.Class[in.A] == ir.FP {
			s := e.readFP(in.A, in.W)
			e.emit(x86.Inst{Op: x86.OMovsd, W: in.W, Dst: absMem(addr), Src: x86.R(s)})
		} else {
			s := e.readGP(in.A, e.s0(), in.W)
			e.emit(x86.Inst{Op: x86.OMov, W: in.W, Dst: absMem(addr), Src: x86.R(s)})
		}

	case ir.MemSize:
		d, flush := e.dstGP(in.Dst)
		e.emit(x86.Inst{Op: x86.OMov, W: 4, Dst: x86.R(d), Src: absMem(x86.MemPagesAddr)})
		flush()

	case ir.MemGrow:
		// Builtin host call: delta in the first arg register.
		s := e.readGP(in.A, e.s0(), 4)
		if s != e.cfg.ArgGP[0] {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.cfg.ArgGP[0]), Src: x86.R(s)})
		}
		e.emit(x86.Inst{Op: x86.OCallHost, Host: -1, Comment: "memory.grow"})
		e.storeCallResult(in.Dst, false)

	case ir.Call, ir.CallHost, ir.CallInd:
		e.emitCall(in)

	case ir.Jump:
		e.jumpTo(in.Targets[0], bi)

	case ir.Cond:
		a := e.readGP(in.A, e.s0(), 4)
		e.emit(x86.Inst{Op: x86.OTest, W: 4, Dst: x86.R(a), Src: x86.R(a)})
		e.condJump(x86.CCNE, in.Targets[0], in.Targets[1], bi)

	case ir.CondCmp:
		if in.Unsigned { // float compare marker from fuseCond
			cc := e.emitFloatCompare(in.A, in.B, in.CC, in.W)
			// eq/ne need a parity guard for the unordered (NaN) case.
			if in.CC == ir.CCEq {
				e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCP, Target: e.blockLabel[in.Targets[1]], Comment: "unordered"})
			} else if in.CC == ir.CCNe {
				e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCP, Target: e.blockLabel[in.Targets[0]], Comment: "unordered"})
			}
			e.condJump(cc, in.Targets[0], in.Targets[1], bi)
			return nil
		}
		a := e.readGP(in.A, e.s0(), in.W)
		var src x86.Operand
		if in.B != ir.NoV {
			src = e.readGPOperand(in.B, e.s1())
		} else {
			src = x86.Imm(in.Imm)
		}
		if src.Kind == x86.KImm && src.Imm == 0 && (in.CC == ir.CCEq || in.CC == ir.CCNe) {
			e.emit(x86.Inst{Op: x86.OTest, W: in.W, Dst: x86.R(a), Src: x86.R(a)})
		} else {
			e.emit(x86.Inst{Op: x86.OCmp, W: in.W, Dst: x86.R(a), Src: src})
		}
		e.condJump(ccX(in.CC), in.Targets[0], in.Targets[1], bi)

	case ir.BrTable:
		a := e.readGP(in.A, e.s0(), 4)
		n := len(in.Targets) - 1 // last is default
		def := in.Targets[n]
		e.emit(x86.Inst{Op: x86.OCmp, W: 4, Dst: x86.R(a), Src: x86.Imm(int64(n))})
		e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCAE, Target: e.blockLabel[def]})
		tt := make([]int, n)
		for i := 0; i < n; i++ {
			tt[i] = e.blockLabel[in.Targets[i]]
		}
		e.emit(x86.Inst{Op: x86.OJmpTable, Dst: x86.R(a), TableTargets: tt})

	case ir.Ret:
		if in.A != ir.NoV {
			if e.f.Class[in.A] == ir.FP {
				s := e.readFP(in.A, 8)
				if s != x86.XMM0 {
					e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: x86.R(x86.XMM0), Src: x86.R(s)})
				}
			} else {
				s := e.readGP(in.A, x86.RAX, 8)
				if s != x86.RAX {
					e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: x86.R(s)})
				}
			}
		}
		e.emit(x86.Inst{Op: x86.OJmp, Target: e.epilogueL})

	case ir.Trap:
		e.emit(x86.Inst{Op: x86.OJmp, Target: e.trapL})

	default:
		return fmt.Errorf("codegen: unhandled IR op %v", in.Op)
	}
	return nil
}

// condJump emits the taken/fallthrough pair for a conditional terminator.
func (e *emitter) condJump(cc x86.CC, taken, fall, bi int) {
	next := e.nextBlockID(bi)
	switch {
	case fall == next:
		e.emit(x86.Inst{Op: x86.OJcc, CC: cc, Target: e.blockLabel[taken]})
	case taken == next:
		e.emit(x86.Inst{Op: x86.OJcc, CC: cc.Negate(), Target: e.blockLabel[fall]})
	default:
		e.emit(x86.Inst{Op: x86.OJcc, CC: cc, Target: e.blockLabel[taken]})
		e.emit(x86.Inst{Op: x86.OJmp, Target: e.blockLabel[fall]})
	}
}

// emitBin emits dst = a op b for add/sub/mul/and/or/xor.
func (e *emitter) emitBin(in *ir.Ins) {
	if e.loc(in.Dst).Kind == regalloc.LocNone {
		return
	}
	d, flush := e.dstGP(in.Dst)
	a := e.readGP(in.A, e.s0(), in.W)
	var src x86.Operand
	if in.B != ir.NoV {
		src = e.readGPOperand(in.B, e.s1())
	} else {
		src = x86.Imm(in.Imm)
	}
	commutative := in.Op == ir.Add || in.Op == ir.Mul || in.Op == ir.And || in.Op == ir.Or || in.Op == ir.Xor
	switch {
	case a == d:
		// dst already holds a.
	case src.Kind == x86.KReg && src.Reg == d && commutative:
		src = x86.R(a)
	case src.Kind == x86.KReg && src.Reg == d:
		// dst==b, non-commutative: compute in scratch.
		s := e.s1()
		if s == src.Reg {
			s = e.s0()
		}
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(s), Src: x86.R(a)})
		e.emit(x86.Inst{Op: binX[in.Op], W: in.W, Dst: x86.R(s), Src: src})
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(s)})
		flush()
		return
	default:
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(a)})
	}
	e.emit(x86.Inst{Op: binX[in.Op], W: in.W, Dst: x86.R(d), Src: src})
	flush()
}

// emitShift emits shifts and rotates, handling the CL constraint.
func (e *emitter) emitShift(in *ir.Ins) {
	if e.loc(in.Dst).Kind == regalloc.LocNone {
		return
	}
	var op x86.Op
	switch in.Op {
	case ir.Shl:
		op = x86.OShl
	case ir.ShrS:
		op = x86.OSar
	case ir.ShrU:
		op = x86.OShr
	case ir.Rotl:
		op = x86.ORol
	case ir.Rotr:
		op = x86.ORor
	}
	d, flush := e.dstGP(in.Dst)

	if in.B == ir.NoV {
		// Constant shift amount: no other operand can alias d, so a
		// spilled value may reload straight into it.
		a := e.readGP(in.A, d, in.W)
		if a != d {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(a)})
		}
		mask := int64(31)
		if in.W == 8 {
			mask = 63
		}
		e.emit(x86.Inst{Op: op, W: in.W, Dst: x86.R(d), Src: x86.Imm(in.Imm & mask)})
		flush()
		return
	}

	// Variable shift: the count must be in CL. Compute the value into a
	// scratch, save rcx into the reserved frame slot, load the count,
	// shift, and restore. The value must NOT stage through d: the count
	// vreg often dies at the shift, so the allocator may give B's register
	// to Dst, and writing d before B is read would corrupt the count.
	val := e.s0()
	a := e.readGP(in.A, val, in.W)
	if a != val {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(val), Src: x86.R(a)})
	}
	bl := e.loc(in.B)
	bInRCX := bl.Kind == regalloc.LocReg && bl.Reg == x86.RCX
	if !bInRCX {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(e.divSlot(0)), Src: x86.R(x86.RCX), Comment: "save rcx"})
		bsrc := e.readGPOperand(in.B, e.s1())
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RCX), Src: bsrc})
	}
	e.emit(x86.Inst{Op: op, W: in.W, Dst: x86.R(val), Src: x86.R(x86.RCX)}) // count in CL
	if !bInRCX {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RCX), Src: e.spillMem(e.divSlot(0)), Comment: "restore rcx"})
	}
	if d != val {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(val)})
	}
	flush()
}

// emitDiv emits the rax/rdx division dance.
func (e *emitter) emitDiv(in *ir.Ins) {
	signed := in.Op == ir.DivS || in.Op == ir.RemS
	wantRem := in.Op == ir.RemS || in.Op == ir.RemU

	// Save rax/rdx unconditionally (they may hold other live values).
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(e.divSlot(0)), Src: x86.R(x86.RAX), Comment: "save rax"})
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(e.divSlot(1)), Src: x86.R(x86.RDX), Comment: "save rdx"})

	// wasm defines INT_MIN rem -1 as 0, but idiv faults on it, so a signed
	// rem guards the divisor — unless it is a compile-time constant that
	// cannot be -1, which keeps the emitted code (and thus the pinned
	// counter goldens) unchanged for the common `x % const` case.
	needGuard := signed && wantRem
	if needGuard {
		if v, ok := e.constOf(in.B); ok && v != -1 && v != int64(^uint32(0)) {
			needGuard = false
		}
	}

	// Divisor into scratch first (it might live in rax/rdx). A guarded rem
	// also always copies: it rewrites the divisor below.
	bsrc := e.readGPOperand(in.B, e.s1())
	div := e.s1()
	if bsrc.Kind == x86.KReg && !needGuard {
		if bsrc.Reg == x86.RAX || bsrc.Reg == x86.RDX {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(div), Src: bsrc})
		} else {
			div = bsrc.Reg
		}
	} else {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(div), Src: bsrc})
	}
	if needGuard {
		// A divisor of 1 has the same remainder as -1 for every dividend
		// (always 0), so rewriting -1 → 1 fixes the faulting case without
		// branching.
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s0()), Src: x86.Imm(1)})
		e.emit(x86.Inst{Op: x86.OCmp, W: in.W, Dst: x86.R(div), Src: x86.Imm(-1), Comment: "rem -1 guard"})
		e.emit(x86.Inst{Op: x86.OCmov, CC: x86.CCE, W: 8, Dst: x86.R(div), Src: x86.R(e.s0())})
	}

	// Dividend into rax.
	asrc := e.readGPOperand(in.A, e.s0())
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: asrc})
	if signed {
		e.emit(x86.Inst{Op: x86.OCdq, W: in.W})
		e.emit(x86.Inst{Op: x86.OIdiv, W: in.W, Dst: x86.R(div)})
	} else {
		e.emit(x86.Inst{Op: x86.OXor, W: 4, Dst: x86.R(x86.RDX), Src: x86.R(x86.RDX)})
		e.emit(x86.Inst{Op: x86.ODiv, W: in.W, Dst: x86.R(div)})
	}
	resReg := x86.RAX
	if wantRem {
		resReg = x86.RDX
	}
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s0()), Src: x86.R(resReg)})
	if in.W == 4 {
		// Results of 32-bit division are zero-extended.
		e.emit(x86.Inst{Op: x86.OMov, W: 4, Dst: x86.R(e.s0()), Src: x86.R(e.s0())})
	}
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: e.spillMem(e.divSlot(0)), Comment: "restore rax"})
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RDX), Src: e.spillMem(e.divSlot(1)), Comment: "restore rdx"})

	if e.loc(in.Dst).Kind == regalloc.LocNone {
		return
	}
	d, flush := e.dstGP(in.Dst)
	if d != e.s0() {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(e.s0())})
	}
	flush()
}

// emitFloatCompare emits ucomisd with NaN-correct operand ordering and
// returns the x86 condition to branch on.
func (e *emitter) emitFloatCompare(a, b ir.VReg, cc ir.CC, w uint8) x86.CC {
	switch cc {
	case ir.CCLtU, ir.CCLeU: // lt / le: swap operands, test with a/ae
		rb := e.readFP(b, w)
		sa := e.readFPOperand(a, w) // memory operand when spilled
		e.emit(x86.Inst{Op: x86.OUcomisd, W: w, Dst: x86.R(rb), Src: sa})
		if cc == ir.CCLtU {
			return x86.CCA
		}
		return x86.CCAE
	}
	ra := e.readFP(a, w)
	switch cc {
	case ir.CCGtU, ir.CCGeU:
		sb := e.readFPOperand(b, w)
		e.emit(x86.Inst{Op: x86.OUcomisd, W: w, Dst: x86.R(ra), Src: sb})
		if cc == ir.CCGtU {
			return x86.CCA
		}
		return x86.CCAE
	case ir.CCEq, ir.CCNe:
		sb := e.readFPOperand(b, w)
		e.emit(x86.Inst{Op: x86.OUcomisd, W: w, Dst: x86.R(ra), Src: sb})
		// The simulator models ucomisd flags exactly; eq must exclude
		// unordered. Use the two-condition sequence via scratch:
		// setnp s; sete/setne fixups are done by callers materializing;
		// for branches we return E/NE and emit an extra parity guard.
		if cc == ir.CCEq {
			return x86.CCE // callers emit a JP guard via emitParityGuard
		}
		return x86.CCNE
	}
	sb := e.readFPOperand(b, w)
	e.emit(x86.Inst{Op: x86.OUcomisd, W: w, Dst: x86.R(ra), Src: sb})
	return ccX(cc)
}

// emitCmpSet materializes a comparison as 0/1.
func (e *emitter) emitCmpSet(in *ir.Ins, float bool) {
	if e.loc(in.Dst).Kind == regalloc.LocNone {
		return
	}
	var cc x86.CC
	if float {
		cc = e.emitFloatCompare(in.A, in.B, in.CC, in.W)
	} else {
		a := e.readGP(in.A, e.s0(), in.W)
		var src x86.Operand
		if in.B != ir.NoV {
			src = e.readGPOperand(in.B, e.s1())
		} else {
			src = x86.Imm(in.Imm)
		}
		e.emit(x86.Inst{Op: x86.OCmp, W: in.W, Dst: x86.R(a), Src: src})
		cc = ccX(in.CC)
	}
	d, flush := e.dstGP(in.Dst)
	e.emit(x86.Inst{Op: x86.OSet, CC: cc, W: 1, Dst: x86.R(d)})
	if float && (in.CC == ir.CCEq || in.CC == ir.CCNe) {
		// Fix up the unordered case: setnp s1; and/or with it.
		e.emit(x86.Inst{Op: x86.OSet, CC: x86.CCNP, W: 1, Dst: x86.R(e.s1())})
		if in.CC == ir.CCEq {
			e.emit(x86.Inst{Op: x86.OAnd, W: 4, Dst: x86.R(d), Src: x86.R(e.s1())})
		} else {
			e.emit(x86.Inst{Op: x86.OSet, CC: x86.CCP, W: 1, Dst: x86.R(e.s1())})
			e.emit(x86.Inst{Op: x86.OOr, W: 4, Dst: x86.R(d), Src: x86.R(e.s1())})
		}
	}
	e.emit(x86.Inst{Op: x86.OMovZX8, W: 4, Dst: x86.R(d), Src: x86.R(d)})
	flush()
}

// emitSelect emits dst = A(cond) ? B : Extra.
func (e *emitter) emitSelect(in *ir.Ins) {
	if e.loc(in.Dst).Kind == regalloc.LocNone {
		return
	}
	if e.f.Class[in.Dst] == ir.FP {
		// Branchy form through a frame slot (no cmov for SSE scalars).
		fv := e.readFP(in.Extra, in.W)
		e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: e.spillMem(e.divSlot(0)), Src: x86.R(fv)})
		c := e.readGP(in.A, e.s0(), 4)
		skip := e.newLabel()
		e.emit(x86.Inst{Op: x86.OTest, W: 4, Dst: x86.R(c), Src: x86.R(c)})
		e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCE, Target: skip})
		tv := e.readFP(in.B, in.W)
		e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: e.spillMem(e.divSlot(0)), Src: x86.R(tv)})
		e.prog.Bind(skip)
		d, flush := e.dstFP(in.Dst)
		e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: x86.R(d), Src: e.spillMem(e.divSlot(0))})
		flush()
		return
	}
	// s1 = false-val; cmovne s1, true-val; dst = s1. Using the scratch as
	// the staging register avoids all aliasing hazards between dst and the
	// three operands.
	fv := e.readGPOperand(in.Extra, e.s1())
	if fv.Kind != x86.KReg || fv.Reg != e.s1() {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(e.s1()), Src: fv})
	}
	c := e.readGP(in.A, e.s0(), 4)
	e.emit(x86.Inst{Op: x86.OTest, W: 4, Dst: x86.R(c), Src: x86.R(c)})
	tv := e.readGPOperand(in.B, e.s0())
	e.emit(x86.Inst{Op: x86.OCmov, CC: x86.CCNE, W: 8, Dst: x86.R(e.s1()), Src: tv})
	d, flush := e.dstGP(in.Dst)
	if d != e.s1() {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(d), Src: x86.R(e.s1())})
	}
	flush()
}
