package codegen

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/wasm"
	"repro/internal/x86"
)

// Artifact format: a versioned header, a flat field-by-field payload, and a
// sha256 integrity trailer over everything before it. The encoding is fully
// deterministic (maps are emitted in sorted key order) so identical modules
// produce identical artifacts, and decoding never trusts a length field
// without checking it against the remaining input, so truncated or bit-flipped
// artifacts fail cleanly with an error instead of a panic or an over-sized
// allocation.
//
// Layout-derived fields (Inst.Addr/Size, Program.CodeBytes) and the label
// table are not stored: Layout() is deterministic over the instruction stream
// and function entry labels are recoverable from FuncInfo, so both are
// reconstructed on decode. The engine configuration is not stored either —
// the content address (pipeline.Key) already covers every EngineConfig field,
// so the decoder takes the caller's config and reattaches it.

// artifactMagic and ArtifactVersion prefix every encoded module. Bump the
// version whenever the payload layout, the Inst field set, or anything else
// that changes decode semantics moves; stale artifacts then read as a version
// mismatch and fall back to a recompile.
var artifactMagic = [4]byte{'R', 'P', 'A', 'M'}

// ArtifactVersion is the current artifact format version.
const ArtifactVersion = 1

// trailerSize is the sha256 integrity trailer length.
const trailerSize = sha256.Size

// headerSize is magic + u32 version.
const headerSize = 8

// EncodeModule serializes cm into the artifact format.
func EncodeModule(cm *CompiledModule) ([]byte, error) {
	if cm == nil || cm.Prog == nil || cm.Module == nil {
		return nil, fmt.Errorf("codegen: cannot encode incomplete module")
	}
	e := &encBuf{}
	e.raw(artifactMagic[:])
	e.u32(ArtifactVersion)

	// Source wasm module, through the existing binary codec.
	e.bytes(wasm.Encode(cm.Module))

	// Program.
	p := cm.Prog
	e.uvarint(uint64(len(p.Code)))
	for i := range p.Code {
		encodeInst(e, &p.Code[i])
	}
	e.uvarint(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		e.str(f.Name)
		e.varint(int64(f.Label))
		e.uvarint(uint64(f.Start))
		e.uvarint(uint64(f.End))
		e.varint(int64(f.SigID))
	}
	e.strs(p.HostNames)

	// Module-level tables.
	e.uvarint(uint64(len(cm.Entries)))
	for _, v := range cm.Entries {
		e.uvarint(uint64(v))
	}
	e.uvarint(uint64(len(cm.Table)))
	for _, te := range cm.Table {
		e.varint(int64(te.SigID))
		e.varint(int64(te.FuncIdx))
	}
	e.uvarint(uint64(len(cm.GlobalInit)))
	for _, v := range cm.GlobalInit {
		e.u64(v)
	}
	e.uvarint(uint64(len(cm.Data)))
	for _, d := range cm.Data {
		e.uvarint(uint64(d.MemIdx))
		e.u8(uint8(d.Offset.Op))
		e.varint(d.Offset.I64)
		e.bytes(d.Bytes)
	}
	e.u32(cm.MemPages)
	e.u32(cm.MemMax)
	e.bytes(cm.Rodata)
	e.strs(cm.HostImports)

	names := make([]string, 0, len(cm.Exports))
	for name := range cm.Exports {
		names = append(names, name)
	}
	sort.Strings(names)
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		e.str(name)
		e.uvarint(uint64(cm.Exports[name]))
	}

	e.uvarint(uint64(len(cm.Stats)))
	for _, s := range cm.Stats {
		e.str(s.Name)
		e.varint(int64(s.Insts))
		e.uvarint(uint64(s.CodeBytes))
		e.varint(int64(s.Spills))
		e.varint(int64(s.UsedRegs))
		e.varint(int64(s.IRLen))
		e.varint(int64(s.NumBlocks))
	}
	e.varint(int64(cm.CompileTime))
	e.varint(int64(cm.TotalSpills))
	e.u8(uint8(cm.PtrSize))

	sum := sha256.Sum256(e.b)
	return append(e.b, sum[:]...), nil
}

// VerifyArtifact checks data is a structurally plausible artifact — magic,
// current format version, and the sha256 integrity trailer — without
// decoding it into a module. The remote cache tier calls it on every
// fetched payload (and the serving side on every published one) so corrupt
// bytes are rejected before any decoder state is built from them; a full
// DecodeModule still re-verifies and bounds-checks everything.
func VerifyArtifact(data []byte) error {
	if len(data) < headerSize+trailerSize {
		return fmt.Errorf("codegen: artifact truncated (%d bytes)", len(data))
	}
	for i := range artifactMagic {
		if data[i] != artifactMagic[i] {
			return fmt.Errorf("codegen: bad artifact magic")
		}
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ArtifactVersion {
		return fmt.Errorf("codegen: artifact version %d, want %d", v, ArtifactVersion)
	}
	payload, trailer := data[:len(data)-trailerSize], data[len(data)-trailerSize:]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], trailer) != 1 {
		return fmt.Errorf("codegen: artifact integrity check failed")
	}
	return nil
}

// DecodeModule deserializes an artifact produced by EncodeModule, verifying
// the version header and the integrity trailer, and reattaches cfg as the
// module's engine configuration. The caller is responsible for only handing
// in artifacts stored under cfg's content address.
func DecodeModule(data []byte, cfg *EngineConfig) (*CompiledModule, error) {
	if err := VerifyArtifact(data); err != nil {
		return nil, err
	}
	payload := data[:len(data)-trailerSize]

	d := &decBuf{b: payload[headerSize:]}
	cm := &CompiledModule{Engine: cfg, Exports: map[string]int{}}

	mb := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	m, err := wasm.Decode(mb)
	if err != nil {
		return nil, fmt.Errorf("codegen: embedded wasm module: %w", err)
	}
	cm.Module = m

	p := x86.NewProgram()
	n := d.count()
	p.Code = make([]x86.Inst, n)
	for i := 0; i < n && d.err == nil; i++ {
		decodeInstBin(d, &p.Code[i])
	}
	n = d.count()
	p.Funcs = make([]x86.FuncInfo, n)
	for i := 0; i < n && d.err == nil; i++ {
		f := &p.Funcs[i]
		f.Name = d.str()
		f.Label = int(d.varint())
		f.Start = int(d.uvarint())
		f.End = int(d.uvarint())
		f.SigID = int(d.varint())
		// Branch targets were resolved to instruction indices before
		// encoding; only function entry labels survive, via FuncInfo.
		p.BindAt(f.Label, f.Start)
		p.FuncByLabel[f.Label] = i
	}
	p.HostNames = d.strs()
	cm.Prog = p

	n = d.count()
	cm.Entries = make([]int, n)
	for i := 0; i < n && d.err == nil; i++ {
		cm.Entries[i] = int(d.uvarint())
	}
	n = d.count()
	cm.Table = make([]TableEntry, n)
	for i := 0; i < n && d.err == nil; i++ {
		cm.Table[i] = TableEntry{SigID: int(d.varint()), FuncIdx: int(d.varint())}
	}
	n = d.count()
	cm.GlobalInit = make([]uint64, n)
	for i := 0; i < n && d.err == nil; i++ {
		cm.GlobalInit[i] = d.u64()
	}
	n = d.count()
	cm.Data = make([]wasm.Data, n)
	for i := 0; i < n && d.err == nil; i++ {
		cm.Data[i] = wasm.Data{
			MemIdx: uint32(d.uvarint()),
			Offset: wasm.Instr{Op: wasm.Opcode(d.u8()), I64: d.varint()},
			Bytes:  d.bytes(),
		}
	}
	cm.MemPages = d.u32()
	cm.MemMax = d.u32()
	cm.Rodata = d.bytes()
	cm.HostImports = d.strs()

	n = d.count()
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		cm.Exports[name] = int(d.uvarint())
	}

	n = d.count()
	cm.Stats = make([]FuncStats, n)
	for i := 0; i < n && d.err == nil; i++ {
		s := &cm.Stats[i]
		s.Name = d.str()
		s.Insts = int(d.varint())
		s.CodeBytes = uint32(d.uvarint())
		s.Spills = int(d.varint())
		s.UsedRegs = int(d.varint())
		s.IRLen = int(d.varint())
		s.NumBlocks = int(d.varint())
	}
	cm.CompileTime = time.Duration(d.varint())
	cm.TotalSpills = int(d.varint())
	cm.PtrSize = int(d.u8())

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("codegen: artifact has %d trailing bytes", len(d.b)-d.off)
	}
	if err := validateDecoded(cm); err != nil {
		return nil, err
	}
	// Addr, Size, and CodeBytes are deterministic over the instruction
	// stream, so re-deriving them is both smaller and self-consistent.
	p.Layout()
	return cm, nil
}

// validateDecoded checks the cross-references a hostile or damaged artifact
// could break even with an intact hash trailer format (index ranges between
// independently length-prefixed sections).
func validateDecoded(cm *CompiledModule) error {
	nc := len(cm.Prog.Code)
	for i, f := range cm.Prog.Funcs {
		if f.Start < 0 || f.End < f.Start || f.End > nc {
			return fmt.Errorf("codegen: artifact function %d range [%d,%d) outside code", i, f.Start, f.End)
		}
	}
	for i, ent := range cm.Entries {
		if ent < 0 || ent >= nc {
			return fmt.Errorf("codegen: artifact entry %d out of range", i)
		}
	}
	if len(cm.Entries) != len(cm.Module.Funcs) {
		return fmt.Errorf("codegen: artifact has %d entries for %d functions", len(cm.Entries), len(cm.Module.Funcs))
	}
	for name, fi := range cm.Exports {
		if fi < 0 || fi >= len(cm.Entries) {
			return fmt.Errorf("codegen: artifact export %q out of range", name)
		}
	}
	for i, te := range cm.Table {
		if te.FuncIdx >= len(cm.Entries) {
			return fmt.Errorf("codegen: artifact table slot %d out of range", i)
		}
	}
	return nil
}

// Inst flag bits in the encoded stream.
const (
	instFlagUns = 1 << iota
	instFlagComment
	instFlagTableTargets
)

func encodeInst(e *encBuf, in *x86.Inst) {
	e.u8(uint8(in.Op))
	e.u8(in.W)
	e.u8(uint8(in.CC))
	var flags uint8
	if in.Uns {
		flags |= instFlagUns
	}
	if in.Comment != "" {
		flags |= instFlagComment
	}
	if len(in.TableTargets) > 0 {
		flags |= instFlagTableTargets
	}
	e.u8(flags)
	encodeOperand(e, &in.Dst)
	encodeOperand(e, &in.Src)
	e.varint(int64(in.Target))
	e.varint(int64(in.Host))
	if flags&instFlagTableTargets != 0 {
		e.uvarint(uint64(len(in.TableTargets)))
		for _, t := range in.TableTargets {
			e.varint(int64(t))
		}
	}
	if flags&instFlagComment != 0 {
		e.str(in.Comment)
	}
}

func decodeInstBin(d *decBuf, in *x86.Inst) {
	in.Op = x86.Op(d.u8())
	in.W = d.u8()
	in.CC = x86.CC(d.u8())
	flags := d.u8()
	in.Uns = flags&instFlagUns != 0
	decodeOperand(d, &in.Dst)
	decodeOperand(d, &in.Src)
	in.Target = int(d.varint())
	in.Host = int(d.varint())
	if flags&instFlagTableTargets != 0 {
		n := d.count()
		in.TableTargets = make([]int, n)
		for i := 0; i < n && d.err == nil; i++ {
			in.TableTargets[i] = int(d.varint())
		}
	}
	if flags&instFlagComment != 0 {
		in.Comment = d.str()
	}
}

func encodeOperand(e *encBuf, o *x86.Operand) {
	e.u8(uint8(o.Kind))
	switch o.Kind {
	case x86.KReg:
		e.u8(uint8(o.Reg))
	case x86.KImm:
		e.varint(o.Imm)
	case x86.KMem:
		e.u8(uint8(o.Mem.Base))
		e.u8(uint8(o.Mem.Index))
		e.u8(o.Mem.Scale)
		e.varint(int64(o.Mem.Disp))
	}
}

func decodeOperand(d *decBuf, o *x86.Operand) {
	o.Kind = x86.OperandKind(d.u8())
	switch o.Kind {
	case x86.KNone:
	case x86.KReg:
		o.Reg = x86.Reg(d.u8())
	case x86.KImm:
		o.Imm = d.varint()
	case x86.KMem:
		o.Mem.Base = x86.Reg(d.u8())
		o.Mem.Index = x86.Reg(d.u8())
		o.Mem.Scale = d.u8()
		o.Mem.Disp = int32(d.varint())
	default:
		d.fail("bad operand kind")
	}
}

// encBuf is a little-endian append-only encoder.
type encBuf struct{ b []byte }

func (e *encBuf) raw(p []byte) { e.b = append(e.b, p...) }
func (e *encBuf) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encBuf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

func (e *encBuf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }

func (e *encBuf) bytes(p []byte) {
	e.uvarint(uint64(len(p)))
	e.raw(p)
}

func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encBuf) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// decBuf is the matching bounds-checked decoder. The first failure latches
// into err; every subsequent read returns zero values, so decode loops can
// run to completion and check err once.
type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("codegen: artifact corrupt at byte %d: %s", d.off, msg)
	}
}

func (d *decBuf) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated")
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *decBuf) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *decBuf) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *decBuf) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and sanity-checks it against the remaining
// input (every element takes at least one byte), so a corrupt length prefix
// cannot drive a huge allocation.
func (d *decBuf) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail("length prefix exceeds input")
		return 0
	}
	if v > math.MaxInt32 {
		d.fail("length prefix out of range")
		return 0
	}
	return int(v)
}

func (d *decBuf) bytes() []byte {
	n := d.count()
	p := d.take(n)
	if p == nil {
		return nil
	}
	// Copy out: the artifact buffer may be pooled or mmap'd by callers.
	return append([]byte(nil), p...)
}

func (d *decBuf) str() string { return string(d.take(d.count())) }

func (d *decBuf) strs() []string {
	n := d.count()
	ss := make([]string, n)
	for i := 0; i < n && d.err == nil; i++ {
		ss[i] = d.str()
	}
	return ss
}
