package codegen_test

import (
	"math"
	"testing"

	"repro/internal/codegen"
	"repro/internal/cpu"
	"repro/internal/wasm"
)

// engines under test.
func engines() []*codegen.EngineConfig {
	return []*codegen.EngineConfig{
		codegen.Native(), codegen.Chrome(), codegen.Firefox(),
		codegen.AsmJSChrome(), codegen.AsmJSFirefox(),
	}
}

// runBoth executes fn on the interpreter and on every engine, checking that
// results agree.
func runBoth(t *testing.T, m *wasm.Module, export string, args ...uint64) {
	t.Helper()
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := wasm.Instantiate(m, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	want, wantErr := inst.Invoke(export, args...)

	for _, cfg := range engines() {
		cm, err := codegen.Compile(m, cfg)
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg.Name, err)
		}
		mi, err := cpu.Load(cm)
		if err != nil {
			t.Fatalf("%s: load: %v", cfg.Name, err)
		}
		mi.BindHost(nil)
		got, gotErr := mi.Invoke(export, args...)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("%s: trap mismatch: interp=%v machine=%v", cfg.Name, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if len(want) > 0 && got != want[0] {
			t.Errorf("%s: %s(%v) = %#x, interpreter says %#x", cfg.Name, export, args, got, want[0])
		}
	}
}

func TestCompileAdd(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("add", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	fb.LocalGet(0).LocalGet(1).Op(wasm.OpI32Add)
	b.Export("add", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "add", 2, 40)
	runBoth(t, m, "add", 0xffffffff, 1)
}

func TestCompileLoopSum(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("sum", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}, wasm.I32, wasm.I32)
	fb.Block(wasm.BlockVoid)
	fb.Loop(wasm.BlockVoid)
	fb.LocalGet(1).LocalGet(0).Op(wasm.OpI32GeS).BrIf(1)
	fb.LocalGet(2).LocalGet(1).Op(wasm.OpI32Add).LocalSet(2)
	fb.LocalGet(1).I32Const(1).Op(wasm.OpI32Add).LocalSet(1)
	fb.Br(0)
	fb.End()
	fb.End()
	fb.LocalGet(2)
	b.Export("sum", wasm.ExternFunc, fb.Index())
	m := b.Module()
	for _, n := range []uint64{0, 1, 7, 100, 10000} {
		runBoth(t, m, "sum", n)
	}
}

func TestCompileMemory(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.Memory(1, 2)
	// fill(n): for i in 0..n: mem[i*4] = i*3; then checksum.
	fb := b.Func("fill", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}, wasm.I32, wasm.I32)
	fb.Block(wasm.BlockVoid)
	fb.Loop(wasm.BlockVoid)
	fb.LocalGet(1).LocalGet(0).Op(wasm.OpI32GeU).BrIf(1)
	// mem[i*4] = i*3
	fb.LocalGet(1).I32Const(2).Op(wasm.OpI32Shl)
	fb.LocalGet(1).I32Const(3).Op(wasm.OpI32Mul)
	fb.Store(wasm.OpI32Store, 0)
	fb.LocalGet(1).I32Const(1).Op(wasm.OpI32Add).LocalSet(1)
	fb.Br(0)
	fb.End()
	fb.End()
	// checksum
	fb.I32Const(0).LocalSet(1)
	fb.Block(wasm.BlockVoid)
	fb.Loop(wasm.BlockVoid)
	fb.LocalGet(1).LocalGet(0).Op(wasm.OpI32GeU).BrIf(1)
	fb.LocalGet(2)
	fb.LocalGet(1).I32Const(2).Op(wasm.OpI32Shl).Load(wasm.OpI32Load, 0)
	fb.Op(wasm.OpI32Add).LocalSet(2)
	fb.LocalGet(1).I32Const(1).Op(wasm.OpI32Add).LocalSet(1)
	fb.Br(0)
	fb.End()
	fb.End()
	fb.LocalGet(2)
	b.Export("fill", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "fill", 100)
	runBoth(t, m, "fill", 4000)
}

func TestCompileIfElse(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("clamp", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	fb.LocalGet(0).I32Const(0).Op(wasm.OpI32LtS)
	fb.If(wasm.BlockOf(wasm.I32))
	fb.I32Const(0)
	fb.Else()
	fb.LocalGet(0).I32Const(100).Op(wasm.OpI32GtS)
	fb.If(wasm.BlockOf(wasm.I32))
	fb.I32Const(100)
	fb.Else()
	fb.LocalGet(0)
	fb.End()
	fb.End()
	b.Export("clamp", wasm.ExternFunc, fb.Index())
	m := b.Module()
	for _, v := range []uint64{5, 0, 100, 101, 0xffffffff, 50} {
		runBoth(t, m, "clamp", v)
	}
}

func TestCompileCallIndirect(t *testing.T) {
	b := wasm.NewModuleBuilder()
	sig := wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}
	inc := b.Func("inc", sig)
	inc.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
	dbl := b.Func("dbl", sig)
	dbl.LocalGet(0).I32Const(2).Op(wasm.OpI32Mul)
	b.Table(3)
	b.Elem(0, []uint32{inc.Index(), dbl.Index()})
	disp := b.Func("dispatch", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	disp.LocalGet(1).LocalGet(0).CallIndirect(sig)
	b.Export("dispatch", wasm.ExternFunc, disp.Index())
	m := b.Module()
	runBoth(t, m, "dispatch", 0, 10)
	runBoth(t, m, "dispatch", 1, 10)
	runBoth(t, m, "dispatch", 2, 10) // null entry: traps everywhere
	runBoth(t, m, "dispatch", 9, 10) // out of bounds: traps everywhere
}

func TestCompileRecursion(t *testing.T) {
	b := wasm.NewModuleBuilder()
	sig := wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}}
	fb := b.Func("fib", sig)
	fb.LocalGet(0).I64Const(2).Op(wasm.OpI64LtS)
	fb.If(wasm.BlockOf(wasm.I64))
	fb.LocalGet(0)
	fb.Else()
	fb.LocalGet(0).I64Const(1).Op(wasm.OpI64Sub).Call(fb.Index())
	fb.LocalGet(0).I64Const(2).Op(wasm.OpI64Sub).Call(fb.Index())
	fb.Op(wasm.OpI64Add)
	fb.End()
	b.Export("fib", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "fib", 15)
}

func TestCompileF64(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("norm", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.F64}})
	fb.LocalGet(0).LocalGet(0).Op(wasm.OpF64Mul)
	fb.LocalGet(1).LocalGet(1).Op(wasm.OpF64Mul)
	fb.Op(wasm.OpF64Add).Op(wasm.OpF64Sqrt)
	b.Export("norm", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "norm", math.Float64bits(3), math.Float64bits(4))
	runBoth(t, m, "norm", math.Float64bits(-1.5), math.Float64bits(2.25))
}

func TestCompileF64Compare(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("flt", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.I32}})
	fb.LocalGet(0).LocalGet(1).Op(wasm.OpF64Lt)
	b.Export("flt", wasm.ExternFunc, fb.Index())
	feq := b.Func("feq", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.I32}})
	feq.LocalGet(0).LocalGet(1).Op(wasm.OpF64Eq)
	b.Export("feq", wasm.ExternFunc, feq.Index())
	m := b.Module()
	nan := math.Float64bits(math.NaN())
	one := math.Float64bits(1)
	two := math.Float64bits(2)
	runBoth(t, m, "flt", one, two)
	runBoth(t, m, "flt", two, one)
	runBoth(t, m, "flt", nan, one)
	runBoth(t, m, "flt", one, nan)
	runBoth(t, m, "feq", one, one)
	runBoth(t, m, "feq", nan, nan)
}

func TestCompileDivRem(t *testing.T) {
	b := wasm.NewModuleBuilder()
	for _, op := range []struct {
		name string
		op   wasm.Opcode
	}{
		{"divs", wasm.OpI32DivS}, {"divu", wasm.OpI32DivU},
		{"rems", wasm.OpI32RemS}, {"remu", wasm.OpI32RemU},
	} {
		fb := b.Func(op.name, wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
		fb.LocalGet(0).LocalGet(1).Op(op.op)
		b.Export(op.name, wasm.ExternFunc, fb.Index())
	}
	m := b.Module()
	neg7 := uint64(uint32(0xfffffff9))
	for _, name := range []string{"divs", "divu", "rems", "remu"} {
		runBoth(t, m, name, 100, 7)
		runBoth(t, m, name, neg7, 2)
		runBoth(t, m, name, 100, 0) // trap
	}
}

func TestCompileBrTable(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("sel", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	fb.Block(wasm.BlockVoid)
	fb.Block(wasm.BlockVoid)
	fb.Block(wasm.BlockVoid)
	fb.LocalGet(0)
	fb.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: []uint32{0, 1, 2}})
	fb.End()
	fb.I32Const(10).Return()
	fb.End()
	fb.I32Const(20).Return()
	fb.End()
	fb.I32Const(30)
	b.Export("sel", wasm.ExternFunc, fb.Index())
	m := b.Module()
	for _, v := range []uint64{0, 1, 2, 3, 99} {
		runBoth(t, m, "sel", v)
	}
}

func TestCompileGlobals(t *testing.T) {
	b := wasm.NewModuleBuilder()
	g0 := b.GlobalI32(1 << 16) // shadow stack pointer convention slot
	g1 := b.GlobalI32(7)
	fb := b.Func("bump", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	// g0 -= 16 (spill frame); g1 += arg; result = g1 + g0; g0 += 16
	fb.GlobalGet(g0).I32Const(16).Op(wasm.OpI32Sub).GlobalSet(g0)
	fb.GlobalGet(g1).LocalGet(0).Op(wasm.OpI32Add).GlobalSet(g1)
	fb.GlobalGet(g1).GlobalGet(g0).Op(wasm.OpI32Add)
	fb.GlobalGet(g0).I32Const(16).Op(wasm.OpI32Add).GlobalSet(g0)
	b.Export("bump", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "bump", 5)
}

func TestCompileSelect(t *testing.T) {
	b := wasm.NewModuleBuilder()
	fb := b.Func("max", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	fb.LocalGet(0).LocalGet(1)
	fb.LocalGet(0).LocalGet(1).Op(wasm.OpI32GtS)
	fb.Op(wasm.OpSelect)
	b.Export("max", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "max", 3, 9)
	runBoth(t, m, "max", 9, 3)
	runBoth(t, m, "max", 0xfffffffe, 1)
}

func TestCompileHostCall(t *testing.T) {
	b := wasm.NewModuleBuilder()
	ft := wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}
	imp := b.ImportFunc("env", "twice", ft)
	fb := b.Func("run", ft)
	fb.LocalGet(0).Call(imp)
	fb.I32Const(1).Op(wasm.OpI32Add)
	b.Export("run", wasm.ExternFunc, fb.Index())
	m := b.Module()

	for _, cfg := range engines() {
		cm, err := codegen.Compile(m, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		mi, err := cpu.Load(cm)
		if err != nil {
			t.Fatal(err)
		}
		arg0 := cfg.ArgGP[0]
		mi.BindHost(func(mach *cpu.Machine, imp int) error {
			v := mach.Regs[arg0]
			mach.Regs[0] = v * 2 // RAX
			return nil
		})
		got, err := mi.Invoke("run", 21)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if uint32(got) != 43 {
			t.Errorf("%s: run(21) = %d, want 43", cfg.Name, got)
		}
	}
}

func TestMemoryGrowCompiled(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.Memory(1, 4)
	fb := b.Func("grow", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	fb.LocalGet(0).Op(wasm.OpMemoryGrow)
	fb.Op(wasm.OpMemorySize).Op(wasm.OpI32Add)
	b.Export("grow", wasm.ExternFunc, fb.Index())
	m := b.Module()
	runBoth(t, m, "grow", 2) // 1 (old) + 3 (new size) = 4
}

// TestNativeSmallerThanChrome checks the paper's core code-size claim on a
// matmul-like kernel: native codegen emits meaningfully fewer instructions.
func TestNativeSmallerThanChrome(t *testing.T) {
	m := buildMatmulModule()
	nat, err := codegen.Compile(m, codegen.Native())
	if err != nil {
		t.Fatal(err)
	}
	chr, err := codegen.Compile(m, codegen.Chrome())
	if err != nil {
		t.Fatal(err)
	}
	ni := nat.Stats[0].Insts
	ci := chr.Stats[0].Insts
	if ni >= ci {
		t.Errorf("native matmul has %d instructions, chrome %d; expected native < chrome", ni, ci)
	}
	t.Logf("matmul instructions: native=%d chrome=%d", ni, ci)
}

// buildMatmulModule builds matmul over i32 matrices at fixed sizes
// (the §5 case study shape) indexing memory directly.
func buildMatmulModule() *wasm.Module {
	const NI, NJ, NK = 8, 8, 8
	b := wasm.NewModuleBuilder()
	b.Memory(1, 1)
	// matmul(C, A, B base addrs)
	ft := wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32}}
	fb := b.Func("matmul", ft, wasm.I32, wasm.I32, wasm.I32) // i, k, j
	i, k, j := uint32(3), uint32(4), uint32(5)
	C, A, B := uint32(0), uint32(1), uint32(2)

	fb.I32Const(0).LocalSet(i)
	fb.Block(wasm.BlockVoid)
	fb.Loop(wasm.BlockVoid)
	fb.LocalGet(i).I32Const(NI).Op(wasm.OpI32GeS).BrIf(1)
	{
		fb.I32Const(0).LocalSet(k)
		fb.Block(wasm.BlockVoid)
		fb.Loop(wasm.BlockVoid)
		fb.LocalGet(k).I32Const(NK).Op(wasm.OpI32GeS).BrIf(1)
		{
			fb.I32Const(0).LocalSet(j)
			fb.Block(wasm.BlockVoid)
			fb.Loop(wasm.BlockVoid)
			fb.LocalGet(j).I32Const(NJ).Op(wasm.OpI32GeS).BrIf(1)
			{
				// C[i*NJ+j] += A[i*NK+k] * B[k*NJ+j]
				// addrC = C + (i*NJ+j)*4
				fb.LocalGet(C)
				fb.LocalGet(i).I32Const(NJ).Op(wasm.OpI32Mul)
				fb.LocalGet(j).Op(wasm.OpI32Add)
				fb.I32Const(2).Op(wasm.OpI32Shl)
				fb.Op(wasm.OpI32Add)
				// value = load C + A*B
				fb.LocalGet(C)
				fb.LocalGet(i).I32Const(NJ).Op(wasm.OpI32Mul)
				fb.LocalGet(j).Op(wasm.OpI32Add)
				fb.I32Const(2).Op(wasm.OpI32Shl)
				fb.Op(wasm.OpI32Add)
				fb.Load(wasm.OpI32Load, 0)
				fb.LocalGet(A)
				fb.LocalGet(i).I32Const(NK).Op(wasm.OpI32Mul)
				fb.LocalGet(k).Op(wasm.OpI32Add)
				fb.I32Const(2).Op(wasm.OpI32Shl)
				fb.Op(wasm.OpI32Add)
				fb.Load(wasm.OpI32Load, 0)
				fb.LocalGet(B)
				fb.LocalGet(k).I32Const(NJ).Op(wasm.OpI32Mul)
				fb.LocalGet(j).Op(wasm.OpI32Add)
				fb.I32Const(2).Op(wasm.OpI32Shl)
				fb.Op(wasm.OpI32Add)
				fb.Load(wasm.OpI32Load, 0)
				fb.Op(wasm.OpI32Mul)
				fb.Op(wasm.OpI32Add)
				fb.Store(wasm.OpI32Store, 0)
				fb.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).LocalSet(j)
			}
			fb.Br(0)
			fb.End()
			fb.End()
			fb.LocalGet(k).I32Const(1).Op(wasm.OpI32Add).LocalSet(k)
		}
		fb.Br(0)
		fb.End()
		fb.End()
		fb.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
	}
	fb.Br(0)
	fb.End()
	fb.End()
	b.Export("matmul", wasm.ExternFunc, fb.Index())

	// checksum over C
	cs := b.Func("checksum", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}, wasm.I32, wasm.I32)
	cs.Block(wasm.BlockVoid)
	cs.Loop(wasm.BlockVoid)
	cs.LocalGet(1).I32Const(NI * NJ).Op(wasm.OpI32GeS).BrIf(1)
	cs.LocalGet(2)
	cs.LocalGet(0).LocalGet(1).I32Const(2).Op(wasm.OpI32Shl).Op(wasm.OpI32Add).Load(wasm.OpI32Load, 0)
	cs.Op(wasm.OpI32Add).LocalSet(2)
	cs.LocalGet(1).I32Const(1).Op(wasm.OpI32Add).LocalSet(1)
	cs.Br(0)
	cs.End()
	cs.End()
	cs.LocalGet(2)
	b.Export("checksum", wasm.ExternFunc, cs.Index())

	// init fills A and B with i*7+3 patterns
	init := b.Func("init", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}}, wasm.I32)
	init.Block(wasm.BlockVoid)
	init.Loop(wasm.BlockVoid)
	init.LocalGet(2).I32Const(NI * NK).Op(wasm.OpI32GeS).BrIf(1)
	init.LocalGet(0).LocalGet(2).I32Const(2).Op(wasm.OpI32Shl).Op(wasm.OpI32Add)
	init.LocalGet(2).I32Const(7).Op(wasm.OpI32Mul).I32Const(3).Op(wasm.OpI32Add)
	init.Store(wasm.OpI32Store, 0)
	init.LocalGet(1).LocalGet(2).I32Const(2).Op(wasm.OpI32Shl).Op(wasm.OpI32Add)
	init.LocalGet(2).I32Const(5).Op(wasm.OpI32Mul).I32Const(1).Op(wasm.OpI32Add)
	init.Store(wasm.OpI32Store, 0)
	init.LocalGet(2).I32Const(1).Op(wasm.OpI32Add).LocalSet(2)
	init.Br(0)
	init.End()
	init.End()
	b.Export("init", wasm.ExternFunc, init.Index())
	return b.Module()
}

// TestMatmulDifferential runs the full matmul on every engine and the
// interpreter and compares checksums.
func TestMatmulDifferential(t *testing.T) {
	m := buildMatmulModule()
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	const cAddr, aAddr, bAddr = 0, 4096, 8192

	inst, err := wasm.Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("init", aAddr, bAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("matmul", cAddr, aAddr, bAddr); err != nil {
		t.Fatal(err)
	}
	want, err := inst.Invoke("checksum", cAddr)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range engines() {
		cm, err := codegen.Compile(m, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		mi, err := cpu.Load(cm)
		if err != nil {
			t.Fatal(err)
		}
		mi.BindHost(nil)
		if _, err := mi.Invoke("init", aAddr, bAddr); err != nil {
			t.Fatalf("%s init: %v", cfg.Name, err)
		}
		if _, err := mi.Invoke("matmul", cAddr, aAddr, bAddr); err != nil {
			t.Fatalf("%s matmul: %v", cfg.Name, err)
		}
		got, err := mi.Invoke("checksum", cAddr)
		if err != nil {
			t.Fatalf("%s checksum: %v", cfg.Name, err)
		}
		if uint32(got) != uint32(want[0]) {
			t.Errorf("%s: checksum = %#x, interpreter %#x", cfg.Name, got, want[0])
		}
	}
}
