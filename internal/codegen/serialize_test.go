package codegen_test

import (
	"bytes"
	"testing"

	"repro/internal/codegen"
	"repro/internal/cpu"
)

// buildArtifactModule compiles the shared matmul module (loops, floats,
// indirect-call table machinery absent but calls present) for cfg.
func buildArtifactModule(t *testing.T, cfg *codegen.EngineConfig) *codegen.CompiledModule {
	t.Helper()
	cm, err := codegen.Compile(buildMatmulModule(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestArtifactRoundTrip checks that an encoded module decodes to something
// that executes bit-identically to the original: same result, same retired
// instruction and cycle counters, same disassembly, and a byte-identical
// re-encoding.
func TestArtifactRoundTrip(t *testing.T) {
	for _, cfg := range engines() {
		t.Run(cfg.Name, func(t *testing.T) {
			cm := buildArtifactModule(t, cfg)
			data, err := codegen.EncodeModule(cm)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codegen.DecodeModule(data, cfg)
			if err != nil {
				t.Fatal(err)
			}

			run := func(m *codegen.CompiledModule) (uint64, uint64, uint64) {
				const cAddr, aAddr, bAddr = 0, 4096, 8192
				inst, err := cpu.Load(m)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := inst.Invoke("init", aAddr, bAddr); err != nil {
					t.Fatal(err)
				}
				if _, err := inst.Invoke("matmul", cAddr, aAddr, bAddr); err != nil {
					t.Fatal(err)
				}
				got, err := inst.Invoke("checksum", cAddr)
				if err != nil {
					t.Fatal(err)
				}
				inst.FlushCycles()
				return got, inst.Counters.Instructions, inst.Counters.Cycles
			}
			v1, i1, c1 := run(cm)
			v2, i2, c2 := run(dec)
			if v1 != v2 {
				t.Errorf("decoded module computed %d, original %d", v2, v1)
			}
			if i1 != i2 || c1 != c2 {
				t.Errorf("counters diverged: insts %d/%d cycles %d/%d", i1, i2, c1, c2)
			}

			if cm.Prog.CodeBytes != dec.Prog.CodeBytes {
				t.Errorf("CodeBytes %d != %d after relayout", dec.Prog.CodeBytes, cm.Prog.CodeBytes)
			}
			d1, ok1 := cm.DisasmFunc("matmul")
			d2, ok2 := dec.DisasmFunc("matmul")
			if !ok1 || !ok2 || d1 != d2 {
				t.Errorf("disassembly diverged after round trip")
			}
			if cm.CompileTime != dec.CompileTime {
				t.Errorf("CompileTime %v != %v", dec.CompileTime, cm.CompileTime)
			}
			if cm.PtrSize != dec.PtrSize || cm.TotalSpills != dec.TotalSpills {
				t.Errorf("scalar fields diverged")
			}

			re, err := codegen.EncodeModule(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, re) {
				t.Errorf("re-encoding is not byte-identical (%d vs %d bytes)", len(data), len(re))
			}
		})
	}
}

// TestArtifactRejectsDamage checks the decoder fails cleanly — an error, not
// a panic or a silently wrong module — for every damage shape the disk store
// must survive.
func TestArtifactRejectsDamage(t *testing.T) {
	cfg := codegen.Chrome()
	cm := buildArtifactModule(t, cfg)
	data, err := codegen.EncodeModule(cm)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, 8, len(data) / 2, len(data) - 1} {
			if _, err := codegen.DecodeModule(data[:n], cfg); err == nil {
				t.Errorf("truncation to %d bytes not detected", n)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		// Flip a bit in every region: header, early payload, late payload,
		// trailer.
		for _, off := range []int{5, 40, len(data) / 2, len(data) - 10} {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x10
			if _, err := codegen.DecodeModule(mut, cfg); err == nil {
				t.Errorf("bit flip at %d not detected", off)
			}
		}
	})
	t.Run("stale-version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[4] = byte(codegen.ArtifactVersion + 1)
		if _, err := codegen.DecodeModule(mut, cfg); err == nil {
			t.Error("future version not rejected")
		}
		mut[4] = 0
		if _, err := codegen.DecodeModule(mut, cfg); err == nil {
			t.Error("version 0 not rejected")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] = 'X'
		if _, err := codegen.DecodeModule(mut, cfg); err == nil {
			t.Error("bad magic not rejected")
		}
	})
}

// TestVerifyArtifact pins the decode-free integrity check the remote cache
// tier gates payloads with: a clean artifact verifies, and every damage
// shape the decoder rejects is caught before any decoding happens.
func TestVerifyArtifact(t *testing.T) {
	cfg := codegen.Firefox()
	cm := buildArtifactModule(t, cfg)
	data, err := codegen.EncodeModule(cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := codegen.VerifyArtifact(data); err != nil {
		t.Fatalf("clean artifact failed verification: %v", err)
	}
	mutations := map[string][]byte{
		"empty":       {},
		"short":       data[:8],
		"truncated":   data[:len(data)/2],
		"bad-magic":   append([]byte{'X'}, data[1:]...),
		"missing-end": data[:len(data)-1],
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x20
	mutations["bit-flip"] = flip
	stale := append([]byte(nil), data...)
	stale[4] = byte(codegen.ArtifactVersion + 1)
	mutations["stale-version"] = stale
	for name, mut := range mutations {
		if err := codegen.VerifyArtifact(mut); err == nil {
			t.Errorf("%s artifact passed verification", name)
		}
	}
	// Verification is the decoder's outer gate: anything VerifyArtifact
	// rejects, DecodeModule must reject too.
	for name, mut := range mutations {
		if _, err := codegen.DecodeModule(mut, cfg); err == nil {
			t.Errorf("%s artifact passed DecodeModule despite failing verification", name)
		}
	}
}
