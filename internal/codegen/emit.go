package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/x86"
)

// emitter lowers one allocated IR function to x86, into a per-function
// fragment program. Fragment-local control flow uses negative label ids
// allocated by newLabel; the only positive label an emitter touches is the
// function's pre-assigned entry label. Compile merges the fragments in
// function order and resolves both kinds to global instruction indices, so
// the merged stream is byte-identical no matter how many workers emitted.
type emitter struct {
	ctx  *moduleCtx
	cfg  *EngineConfig
	f    *ir.Func
	ra   *regalloc.Result
	sc   *compileScratch
	prog *x86.Program // the fragment being emitted into

	blockLabel []int
	epilogueL  int
	trapL      int
	localL     int // fragment-local label allocator; ids count down from -1
	uses       []int
	skip       map[*ir.Ins]bool // instructions folded into others
	rmwAt      map[*ir.Ins]*rmwInfo
	fusedMem   map[*ir.Ins]x86.Mem
	loopHead   []bool
	constVals  map[ir.VReg]int64 // single-def Const vregs; built lazily by constOf
}

// constOf reports the compile-time constant value of v: v must have exactly
// one definition in the function, and that definition must be a Const.
func (e *emitter) constOf(v ir.VReg) (int64, bool) {
	if e.constVals == nil {
		defs := map[ir.VReg]int{}
		vals := map[ir.VReg]int64{}
		for _, b := range e.f.Blocks {
			for i := range b.Ins {
				in := &b.Ins[i]
				if in.Dst == ir.NoV {
					continue
				}
				defs[in.Dst]++
				if in.Op == ir.Const {
					vals[in.Dst] = in.Imm
				}
			}
		}
		e.constVals = map[ir.VReg]int64{}
		for dst, n := range defs {
			if n == 1 {
				if imm, ok := vals[dst]; ok {
					e.constVals[dst] = imm
				}
			}
		}
	}
	imm, ok := e.constVals[v]
	return imm, ok
}

type rmwInfo struct {
	op   ir.Op
	binB ir.VReg
	imm  int64
	hasB bool
	w    uint8
}

// newLabel allocates a fragment-local label (negative, so it can never
// collide with a function entry label).
func (e *emitter) newLabel() int {
	e.localL--
	return e.localL
}

func (e *emitter) emit(in x86.Inst) { e.prog.Append(in) }

func (e *emitter) s0() x86.Reg { return e.cfg.Scratch[0] }
func (e *emitter) s1() x86.Reg { return e.cfg.Scratch[1] }
func (e *emitter) sf() x86.Reg { return e.cfg.ScratchF }

// spillMem returns the frame slot operand for spill slot s.
func (e *emitter) spillMem(s int) x86.Operand {
	return x86.MB(x86.RBP, int32(-8-8*s))
}

func (e *emitter) loc(v ir.VReg) regalloc.Location { return e.ra.Loc[v] }

// readGP materializes GP vreg v into a register, using the given scratch if
// it is spilled.
func (e *emitter) readGP(v ir.VReg, scratch x86.Reg, w uint8) x86.Reg {
	l := e.loc(v)
	switch l.Kind {
	case regalloc.LocReg:
		return l.Reg
	case regalloc.LocSpill:
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(scratch), Src: e.spillMem(l.Slot)})
		return scratch
	}
	// Dead value (e.g. unused param): any register works; zero scratch.
	e.emit(x86.Inst{Op: x86.OXor, W: 4, Dst: x86.R(scratch), Src: x86.R(scratch)})
	return scratch
}

// readGPOperand returns v as an instruction operand: its register, or its
// spill slot directly when the engine fuses spill operands, else a reload.
func (e *emitter) readGPOperand(v ir.VReg, scratch x86.Reg) x86.Operand {
	l := e.loc(v)
	if l.Kind == regalloc.LocSpill && e.cfg.SpillOperandFusion {
		return e.spillMem(l.Slot)
	}
	return x86.R(e.readGP(v, scratch, 8))
}

// readFP materializes FP vreg v into an XMM register.
func (e *emitter) readFP(v ir.VReg, w uint8) x86.Reg {
	l := e.loc(v)
	switch l.Kind {
	case regalloc.LocReg:
		return l.Reg
	case regalloc.LocSpill:
		e.emit(x86.Inst{Op: x86.OMovsd, W: w, Dst: x86.R(e.sf()), Src: e.spillMem(l.Slot)})
		return e.sf()
	}
	e.emit(x86.Inst{Op: x86.OXorpd, W: 8, Dst: x86.R(e.sf()), Src: x86.R(e.sf())})
	return e.sf()
}

// readFPOperand returns v as an SSE instruction operand. Spilled FP values
// are always used as memory operands (scalar SSE ops take them directly),
// which also keeps the single FP scratch free for the destination.
func (e *emitter) readFPOperand(v ir.VReg, w uint8) x86.Operand {
	l := e.loc(v)
	if l.Kind == regalloc.LocSpill {
		return e.spillMem(l.Slot)
	}
	return x86.R(e.readFP(v, w))
}

// dstGP returns the register to compute a GP result in, plus a flush func
// that stores it back if the vreg is spilled.
func (e *emitter) dstGP(v ir.VReg) (x86.Reg, func()) {
	l := e.loc(v)
	switch l.Kind {
	case regalloc.LocReg:
		return l.Reg, func() {}
	case regalloc.LocSpill:
		s := e.s0()
		return s, func() {
			e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(l.Slot), Src: x86.R(s)})
		}
	}
	return e.s0(), func() {} // dead
}

func (e *emitter) dstFP(v ir.VReg) (x86.Reg, func()) {
	l := e.loc(v)
	switch l.Kind {
	case regalloc.LocReg:
		return l.Reg, func() {}
	case regalloc.LocSpill:
		s := e.sf()
		return s, func() {
			e.emit(x86.Inst{Op: x86.OMovsd, W: 8, Dst: e.spillMem(l.Slot), Src: x86.R(s)})
		}
	}
	return e.sf(), func() {}
}

// emitFunc emits the whole function into the fragment and records FuncInfo.
func (e *emitter) emitFunc() error {
	f := e.f
	sc := e.sc
	e.prog.Reset()
	e.localL = 0
	start := len(e.prog.Code)

	// Nop padding (Chrome pads function entries).
	if e.cfg.NopPad > 0 {
		for i := 0; i < e.cfg.NopPad/8; i++ {
			e.emit(x86.Inst{Op: x86.ONop})
		}
	}

	entry := e.ctx.funcLabel[f.Index]
	e.prog.Bind(entry)

	sc.blockLabel = growSlice(sc.blockLabel, len(f.Blocks))
	e.blockLabel = sc.blockLabel
	for i := range f.Blocks {
		e.blockLabel[i] = e.newLabel()
	}
	e.epilogueL = e.newLabel()
	e.trapL = e.newLabel()
	sc.useBuf = useCountsInto(sc.useBuf, f)
	e.uses = sc.useBuf
	clear(sc.skip)
	clear(sc.rmwAt)
	clear(sc.fusedMem)
	sc.rmwInfos = sc.rmwInfos[:0]
	e.skip = sc.skip
	e.rmwAt = sc.rmwAt
	e.fusedMem = sc.fusedMem
	sc.loopHead = growSlice(sc.loopHead, len(f.Blocks))
	e.loopHead = sc.loopHead
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s <= b.ID {
				e.loopHead[s] = true
			}
		}
	}

	e.prologue()

	for bi, b := range f.Blocks {
		e.prog.Bind(e.blockLabel[b.ID])
		if e.cfg.LoopEntryJump && e.loopHead[b.ID] {
			// Chrome's loop shape: the back edge lands on a reload point
			// that the entry path jumps over (Figure 7c lines 5-10).
			after := e.newLabel()
			// The bind above is the back-edge target; move it: rebind a
			// fresh label as the block label target... The block label is
			// already bound here; emit the entry jump inside instead.
			e.emit(x86.Inst{Op: x86.OJmp, Target: after, Comment: "loop entry"})
			e.emit(x86.Inst{Op: x86.ONop, Comment: "reload point"})
			e.prog.Bind(after)
			_ = after
		}
		if err := e.emitBlock(b, bi); err != nil {
			return fmt.Errorf("%s b%d: %w", f.Name, b.ID, err)
		}
	}

	// Epilogue.
	e.prog.Bind(e.epilogueL)
	e.restoreCalleeSaved()
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RSP), Src: x86.R(x86.RBP)})
	e.emit(x86.Inst{Op: x86.OPop, W: 8, Dst: x86.R(x86.RBP)})
	e.emit(x86.Inst{Op: x86.ORet})

	// Shared trap (out-of-line, like the engines' OOL trap stubs).
	e.prog.Bind(e.trapL)
	e.emit(x86.Inst{Op: x86.OUd2})

	e.prog.Funcs = append(e.prog.Funcs, x86.FuncInfo{
		Name:  f.Name,
		Label: entry,
		Start: start,
		End:   len(e.prog.Code),
		SigID: f.SigID,
	})
	return nil
}

// frameSlots returns spill slots + callee-saved save area + 2 fixed slots
// for the rax/rdx/rcx save dance around div/shift.
func (e *emitter) frameSlots() int {
	return e.ra.NumSlots + len(e.ra.UsedCallee) + 2
}

func (e *emitter) csSlot(i int) int  { return e.ra.NumSlots + i }
func (e *emitter) divSlot(i int) int { return e.ra.NumSlots + len(e.ra.UsedCallee) + i }

func (e *emitter) prologue() {
	// Stack-overflow check (§6.2.2): every wasm function entry compares
	// rsp against the engine's stack limit.
	if e.cfg.StackCheck {
		e.emit(x86.Inst{
			Op: x86.OCmp, W: 8,
			Dst:     x86.R(x86.RSP),
			Src:     absMem(x86.StackLimitAddr),
			Comment: "stack check",
		})
		e.emit(x86.Inst{Op: x86.OJcc, CC: x86.CCBE, Target: e.trapL, Comment: "stack overflow"})
	}
	e.emit(x86.Inst{Op: x86.OPush, W: 8, Dst: x86.R(x86.RBP)})
	e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RBP), Src: x86.R(x86.RSP)})
	fs := e.frameSlots()
	if fs > 0 {
		e.emit(x86.Inst{Op: x86.OSub, W: 8, Dst: x86.R(x86.RSP), Src: x86.Imm(int64(fs) * 8)})
	}
	for i, r := range e.ra.UsedCallee {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: e.spillMem(e.csSlot(i)), Src: x86.R(r), Comment: "save callee-saved"})
	}

	// Move parameters from argument registers / caller stack into their
	// assigned locations.
	moves := e.sc.pmoves[:0]
	gi, fi, si := 0, 0, 0
	for _, p := range e.f.Params {
		cls := e.f.Class[p]
		l := e.loc(p)
		var src x86.Operand
		fp := cls == ir.FP
		if fp {
			if fi < len(e.cfg.ArgFP) {
				src = x86.R(e.cfg.ArgFP[fi])
				fi++
			} else {
				src = x86.MB(x86.RBP, int32(16+8*si))
				si++
			}
		} else {
			if gi < len(e.cfg.ArgGP) {
				src = x86.R(e.cfg.ArgGP[gi])
				gi++
			} else {
				src = x86.MB(x86.RBP, int32(16+8*si))
				si++
			}
		}
		if l.Kind == regalloc.LocNone {
			continue
		}
		var dst x86.Operand
		if l.Kind == regalloc.LocReg {
			dst = x86.R(l.Reg)
		} else {
			dst = e.spillMem(l.Slot)
		}
		moves = append(moves, pmove{dst: dst, src: src, fp: fp})
	}
	e.sc.pmoves = moves[:0]
	e.parallelMoves(moves)
}

func (e *emitter) restoreCalleeSaved() {
	for i, r := range e.ra.UsedCallee {
		e.emit(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(r), Src: e.spillMem(e.csSlot(i))})
	}
}

// pmove is one move for the parallel-move resolver.
type pmove struct {
	dst, src x86.Operand
	fp       bool
}

// parallelMoves emits moves such that no source register is clobbered before
// it is read, breaking cycles with the scratch registers.
func (e *emitter) parallelMoves(moves []pmove) {
	emitMove := func(m pmove) {
		op := x86.OMov
		if m.fp {
			op = x86.OMovsd
		}
		if m.dst.Kind == x86.KMem && m.src.Kind == x86.KMem {
			// mem->mem goes through scratch. Scratch 0 is used so that an
			// indirect-call target staged in scratch 1 survives the moves.
			s := e.s0()
			sop := x86.OMov
			if m.fp {
				s = e.sf()
				sop = x86.OMovsd
			}
			e.emit(x86.Inst{Op: sop, W: 8, Dst: x86.R(s), Src: m.src})
			e.emit(x86.Inst{Op: sop, W: 8, Dst: m.dst, Src: x86.R(s)})
			return
		}
		e.emit(x86.Inst{Op: op, W: 8, Dst: m.dst, Src: m.src})
	}
	pending := append(e.sc.pending[:0], moves...)
	e.sc.pending = pending[:0]
	for len(pending) > 0 {
		progressed := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			if m.dst.Kind == x86.KReg {
				blocked := false
				for j, o := range pending {
					if j != i && o.src.Kind == x86.KReg && o.src.Reg == m.dst.Reg {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			}
			emitMove(m)
			pending = append(pending[:i], pending[i+1:]...)
			progressed = true
			i--
		}
		if !progressed {
			// Cycle among registers: save the first destination into a
			// scratch and redirect its readers there.
			m := pending[0]
			s := e.s0()
			op := x86.OMov
			if m.fp {
				s = e.sf()
				op = x86.OMovsd
			}
			e.emit(x86.Inst{Op: op, W: 8, Dst: x86.R(s), Src: x86.R(m.dst.Reg)})
			for j := range pending {
				if pending[j].src.Kind == x86.KReg && pending[j].src.Reg == m.dst.Reg {
					pending[j].src = x86.R(s)
				}
			}
		}
	}
}

// nextBlockID returns the id of the block emitted after index bi, or -1.
func (e *emitter) nextBlockID(bi int) int {
	if bi+1 < len(e.f.Blocks) {
		return e.f.Blocks[bi+1].ID
	}
	return -1
}

func (e *emitter) jumpTo(block int, bi int) {
	if block != e.nextBlockID(bi) {
		e.emit(x86.Inst{Op: x86.OJmp, Target: e.blockLabel[block]})
	}
}

func (e *emitter) emitBlock(b *ir.Block, bi int) error {
	e.fuseAddressesInBlock(b)
	for i := 0; i < len(b.Ins); i++ {
		in := &b.Ins[i]
		if e.skip[in] {
			continue
		}
		// Detect native read-modify-write fusion.
		if e.cfg.FuseRMW && in.Op == ir.Load && i+2 < len(b.Ins) {
			e.tryRMW(b, i)
			if e.skip[in] {
				continue
			}
		}
		if err := e.emitIns(b, i, bi); err != nil {
			return err
		}
	}
	return nil
}

// tryRMW looks for Load t=[a+off]; op u=t,x; Store [a+off]=u and marks the
// load and op as fused into the store.
func (e *emitter) tryRMW(b *ir.Block, i int) {
	ld := &b.Ins[i]
	op := &b.Ins[i+1]
	st := &b.Ins[i+2]
	switch op.Op {
	case ir.Add, ir.Sub, ir.And, ir.Or, ir.Xor:
	default:
		return
	}
	if st.Op != ir.Store || ld.Op != ir.Load {
		return
	}
	if ld.Kind != ir.L32 && ld.Kind != ir.L64 {
		return
	}
	if st.Kind != ld.Kind || st.A != ld.A || st.Off != ld.Off || st.B != op.Dst {
		return
	}
	if op.A != ld.Dst || e.uses[ld.Dst] != 1 || e.uses[op.Dst] != 1 {
		return
	}
	info := rmwInfo{op: op.Op, w: op.W}
	if op.B != ir.NoV {
		info.binB = op.B
		info.hasB = true
	} else {
		info.imm = op.Imm
	}
	e.sc.rmwInfos = append(e.sc.rmwInfos, info)
	e.skip[ld] = true
	e.skip[op] = true
	e.rmwAt[st] = &e.sc.rmwInfos[len(e.sc.rmwInfos)-1]
}
