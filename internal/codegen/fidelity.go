package codegen

// Simulation-fidelity tier selection. The tier lives on EngineConfig — not
// because it changes generated code (it does not), but because everything
// downstream keys on the config: pipeline.Key hashes every EngineConfig
// field, so compiled artifacts, the disk store, and the spec harness's
// memoized results can never mix fidelities. internal/cpu interprets the
// tier (see cpu.Machine.SetFidelity); this file only defines the knob and
// its environment plumbing, keeping codegen the single package a caller
// needs to configure an engine.

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/config"
)

// Fidelity selects how much of the microarchitecture the simulator models.
type Fidelity uint8

const (
	// FidelityExact is the full micro-op engine: every dcache/icache access
	// and branch prediction modeled on every retired instruction. The zero
	// value, today's behavior, and the oracle the other tiers are measured
	// against.
	FidelityExact Fidelity = iota
	// FidelityFunctional retires instructions and updates architectural
	// state plus the exact-by-construction counters (instructions, loads,
	// stores, branches) but models no caches, branch predictor, or cycles.
	FidelityFunctional
	// FidelitySampled alternates functional fast-forward windows with
	// detailed exact windows on a deterministic instruction schedule
	// (SMARTS-style), extrapolating the timing-derived counters — cycles,
	// cache misses, branch mispredicts — from the measured windows. Each
	// detailed window is preceded by an exact warm-up whose timing is
	// discarded, bounding cold-structure bias.
	FidelitySampled
)

// String returns the tier's knob spelling.
func (f Fidelity) String() string {
	switch f {
	case FidelityFunctional:
		return "functional"
	case FidelitySampled:
		return "sampled"
	default:
		return "exact"
	}
}

// ParseFidelity parses a $REPRO_FIDELITY / -fidelity value.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "", "exact":
		return FidelityExact, nil
	case "functional":
		return FidelityFunctional, nil
	case "sampled":
		return FidelitySampled, nil
	}
	return FidelityExact, fmt.Errorf("codegen: unknown fidelity %q (want exact, functional, or sampled)", s)
}

// Environment knobs (canonical names in internal/config). FidelityEnv
// selects the tier; the window knobs override the sampled tier's schedule
// in retired instructions (0 or unset keeps the cpu package's defaults).
const (
	FidelityEnv     = config.EnvFidelity
	SamplePeriodEnv = config.EnvSamplePeriod
	SampleDetailEnv = config.EnvSampleDetail
	SampleWarmupEnv = config.EnvSampleWarmup
)

// SampleWindows is a sampled-tier schedule override, in retired
// instructions; zero fields keep the simulator defaults.
type SampleWindows struct {
	Period, Detail, Warmup uint64
}

// FidelityFromEnv reads $REPRO_FIDELITY and the window knobs. set reports
// whether $REPRO_FIDELITY was present at all, so callers can let an
// explicit flag win over an unset environment.
func FidelityFromEnv() (f Fidelity, w SampleWindows, set bool, err error) {
	v, ok := os.LookupEnv(FidelityEnv)
	if ok {
		if f, err = ParseFidelity(v); err != nil {
			return FidelityExact, SampleWindows{}, true, err
		}
	}
	for _, k := range []struct {
		env string
		dst *uint64
	}{{SamplePeriodEnv, &w.Period}, {SampleDetailEnv, &w.Detail}, {SampleWarmupEnv, &w.Warmup}} {
		s := os.Getenv(k.env)
		if s == "" {
			continue
		}
		n, perr := strconv.ParseUint(s, 10, 64)
		if perr != nil {
			return f, w, ok, fmt.Errorf("codegen: %s=%q is not a non-negative instruction count", k.env, s)
		}
		*k.dst = n
	}
	return f, w, ok, nil
}

// ApplyFidelity sets the tier and window schedule on cfg and returns cfg,
// so engine constructors chain: codegen.Chrome().ApplyFidelity(f, w).
// Stock constructors never read the environment themselves — a stray
// $REPRO_FIDELITY must not silently change what a test or golden harness
// measures — so applying the env knob is always an explicit caller step.
func (cfg *EngineConfig) ApplyFidelity(f Fidelity, w SampleWindows) *EngineConfig {
	cfg.Fidelity = f
	cfg.SamplePeriod = w.Period
	cfg.SampleDetail = w.Detail
	cfg.SampleWarmup = w.Warmup
	return cfg
}

// ApplyFidelityEnv applies the environment's fidelity selection to every
// config. It is the one-liner the cmd binaries and suite plumbing share.
func ApplyFidelityEnv(cfgs ...*EngineConfig) error {
	f, w, _, err := FidelityFromEnv()
	if err != nil {
		return err
	}
	for _, cfg := range cfgs {
		cfg.ApplyFidelity(f, w)
	}
	return nil
}

// ResolveFidelity resolves a -fidelity flag value against the environment:
// an explicit non-empty flag wins over $REPRO_FIDELITY, and the window
// schedule always comes from the $REPRO_SAMPLE_* knobs. A malformed
// environment is an error even when the flag overrides the tier — a typo'd
// knob should fail loudly, not be half-read.
func ResolveFidelity(flagVal string) (Fidelity, SampleWindows, error) {
	f, w, _, err := FidelityFromEnv()
	if err != nil {
		return FidelityExact, SampleWindows{}, err
	}
	if flagVal != "" {
		if f, err = ParseFidelity(flagVal); err != nil {
			return FidelityExact, SampleWindows{}, err
		}
	}
	return f, w, nil
}
