package codegen_test

// Panic-containment stress for the compile fan-out (run with -race): a
// panic injected into one module's per-function codegen must surface as
// that module's typed compile failure while every concurrently compiling
// sibling finishes with a byte-identical artifact — at a starved budget
// (no helper tokens), a tight one, and a roomy one.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/wasm"
)

// stressModuleSrc builds a module whose function names carry the module
// index, so a codegen.func fault rule can target exactly one module of the
// fleet.
func stressModuleSrc(i int) string {
	return fmt.Sprintf(`
int helper_m%d(int a, int b) { return a * b + %d; }
int spin_m%d(int n) {
  int i; int acc;
  acc = 0;
  for (i = 0; i < n; i++) { acc += helper_m%d(i, 3); }
  return acc;
}
int main() {
  print_int(spin_m%d(12));
  print_nl();
  return 0;
}`, i, i, i, i, i)
}

// TestCompileFaultContainmentStress arms an unlimited panic fault on one
// module's functions, then compiles the whole fleet concurrently through
// nested RunJobs (module fan-out outside, per-function fan-out inside) at
// shared budgets 1, 2, and 16. The faulted module must fail with a
// JobPanicError carrying a stack; every other module's artifact must be
// byte-identical to its fault-free reference.
func TestCompileFaultContainmentStress(t *testing.T) {
	const nMods = 6
	const faulted = 2
	cfg := codegen.Firefox()

	mods := make([]*wasm.Module, nMods)
	refs := make([][]byte, nMods)
	for i := range mods {
		mods[i] = buildModule(t, stressModuleSrc(i), cfg)
		refs[i] = compileAt(t, mods[i], cfg, 4)
	}

	disarm, err := fault.ArmSpec(fmt.Sprintf("codegen.func@helper_m%d=panic:*", faulted))
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()

	for _, tokens := range []int{1, 2, 16} {
		t.Run(fmt.Sprintf("budget-%d", tokens), func(t *testing.T) {
			prevCap := sched.SetSharedCapacity(tokens)
			defer sched.SetSharedCapacity(prevCap)
			prevW := codegen.Workers
			codegen.Workers = 4
			defer func() { codegen.Workers = prevW }()

			arts := make([][]byte, nMods)
			errs := make([]error, nMods)
			var wg sync.WaitGroup
			for i := range mods {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					cm, err := codegen.CompileContext(context.Background(), mods[i], cfg)
					if err != nil {
						errs[i] = err
						return
					}
					arts[i] = encodeNormalized(t, cm)
				}()
			}
			wg.Wait()

			for i := range mods {
				if i == faulted {
					if errs[i] == nil {
						t.Fatalf("module %d: fault armed but compile succeeded", i)
					}
					var pe *sched.JobPanicError
					if !errors.As(errs[i], &pe) {
						t.Fatalf("module %d: error is not a JobPanicError: %v", i, errs[i])
					}
					if len(pe.Stack) == 0 {
						t.Errorf("module %d: contained panic lost its stack", i)
					}
					continue
				}
				if errs[i] != nil {
					t.Errorf("module %d: sibling of the faulted compile failed: %v", i, errs[i])
					continue
				}
				if !bytes.Equal(arts[i], refs[i]) {
					t.Errorf("module %d: artifact differs from fault-free reference under injected sibling panic (budget %d)", i, tokens)
				}
			}
		})
	}
}
