package codegen

import (
	"context"
	"sync"

	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/wasm"
	"repro/internal/x86"
)

// Workers caps per-function compile parallelism inside Compile. 0 selects
// the scheduler default (GOMAXPROCS); 1 forces serial compilation. The cap
// is an upper bound, not a reservation: the actual fan-out borrows worker
// slots from the process-wide scheduler budget (sched.Shared), so many
// modules compiling concurrently — suite cold start — collectively stay
// within one budget instead of spawning Workers goroutines each. The
// setting never affects output: serial and parallel compiles of the same
// module produce byte-identical programs at any budget size (pinned by
// TestCompileDeterminism).
var Workers int

// compileScratch owns every transient of one function's compilation — the
// lowerer and its IR arena, the optimizer worklists, liveness, register
// allocation, and the emitter's fragment program — pooled via sync.Pool the
// way cpu pools machine memory. A function compile acquires one scratch,
// carries it from lowering through emission, and releases it after the
// module merge; steady-state compiles allocate almost nothing.
type compileScratch struct {
	arena ir.FuncArena
	lo    lowerer
	vtype []wasm.ValType // vreg -> wasm type (dense; replaces the old map)
	live  ir.LivenessScratch
	ra    regalloc.Scratch

	// Optimizer state.
	useBuf   []int
	constDef map[ir.VReg]int
	reach    []bool
	remap    []int
	blkStack []int
	// localCSE state (native config only).
	defCount []int
	useBlock []int
	isParam  []bool
	gen      map[ir.VReg]int
	avail    map[cseVerKey]cseAvail
	replaced map[ir.VReg]ir.VReg

	// Per-function results carried from the frontend phase to emission.
	f   *ir.Func
	res *regalloc.Result

	// Emitter state.
	frag       *x86.Program // per-function fragment, merged by Compile
	blockLabel []int
	skip       map[*ir.Ins]bool
	rmwAt      map[*ir.Ins]*rmwInfo
	rmwInfos   []rmwInfo
	fusedMem   map[*ir.Ins]x86.Mem
	loopHead   []bool
	accesses   []accessRef
	fusePlans  []fusePlan
	pmoves     []pmove
	pending    []pmove
	stats      FuncStats
}

// accessRef is one memory access (instruction index) grouped by address vreg
// during address fusion.
type accessRef struct {
	addr ir.VReg
	idx  int
}

// fusePlan records one fused memory operand during address fusion.
type fusePlan struct {
	at  int
	mem x86.Mem
}

// cseVerKey identifies a pure computation plus the def-versions of its
// operands (see localCSE).
type cseVerKey struct {
	k      cseKey
	va, vb int
}

// cseAvail is one available expression during localCSE.
type cseAvail struct {
	v   ir.VReg
	gen int // v's def version when recorded; stale when v is redefined
}

var scratchPool = sync.Pool{New: func() any {
	return &compileScratch{
		constDef: map[ir.VReg]int{},
		gen:      map[ir.VReg]int{},
		avail:    map[cseVerKey]cseAvail{},
		replaced: map[ir.VReg]ir.VReg{},
		skip:     map[*ir.Ins]bool{},
		rmwAt:    map[*ir.Ins]*rmwInfo{},
		fusedMem: map[*ir.Ins]x86.Mem{},
		frag:     x86.NewProgram(),
	}
}}

func getScratch() *compileScratch { return scratchPool.Get().(*compileScratch) }

// release returns the scratch to the pool. The caller must be done with
// every scratch-owned object (the IR func, the allocation result, and the
// fragment program's instruction slice).
func (sc *compileScratch) release() {
	sc.f = nil
	sc.res = nil
	scratchPool.Put(sc)
}

// growSlice returns s resized to n elements, all zeroed.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// compileWorkers resolves the Workers knob.
func compileWorkers() int {
	if Workers > 0 {
		return Workers
	}
	return sched.DefaultWorkers()
}

// runPerFunc runs fn for every function index, fanning out over the shared
// scheduler when more than one worker is configured. Extra workers are
// borrowed from the process-wide budget (sched.Shared) token by token
// inside RunJobs — a compile that starts while suite fan-out holds every
// token runs serially on the calling goroutine, and one that outlives the
// contention picks up freed tokens mid-run. ctx carries the scheduler's
// pool marker when the compile was reached from inside a fan-out
// (pipeline.BuildContext threads it through), so a nested compile never
// double-charges the budget for its own goroutine; a cancelled ctx stops
// dispatching further functions on the serial and parallel paths alike.
// Outputs are index-addressed, so serial and parallel runs are
// indistinguishable on success.
func runPerFunc(ctx context.Context, n int, fn func(int) error) error {
	workers := compileWorkers()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make([]sched.Job, n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) error { return fn(i) }
	}
	return sched.RunJobs(ctx, workers, jobs)
}
