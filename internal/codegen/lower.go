package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/wasm"
)

// classOf maps a wasm value type to a register class.
func classOf(t wasm.ValType) ir.Class {
	if t.IsFloat() {
		return ir.FP
	}
	return ir.GP
}

func widthOf(t wasm.ValType) uint8 {
	switch t {
	case wasm.I64, wasm.F64:
		return 8
	}
	return 4
}

// lctrl is a structured-control frame during lowering.
type lctrl struct {
	op      wasm.Opcode // OpBlock, OpLoop, OpIf; 0 = function frame
	follow  *ir.Block   // continuation after end
	header  *ir.Block   // loop header (branch target)
	elseB   *ir.Block
	sawElse bool
	resultV ir.VReg // carries the block result (NoV when none)
	resType wasm.ValType
	stackH  int

	// skipped marks frames opened inside unreachable code.
	skipped bool

	// Rotated-loop support (native config).
	rotated bool
	rotTest []wasm.Instr // the pure test sequence re-evaluated at latches
	rotExit int          // wasm branch depth of the exit, relative to inside the loop
	body    *ir.Block    // rotated loop body (back-edge target)
}

// lowerer converts one wasm function body to IR. Its slices (value stack,
// control frames, locals, vreg types) and the IR func it builds into are
// owned by a compileScratch, so repeated lowerings reuse their capacity.
type lowerer struct {
	m      *wasm.Module
	cfg    *EngineConfig
	sc     *compileScratch
	f      *ir.Func
	cur    *ir.Block
	stack  []ir.VReg
	locals []ir.VReg
	ctrls  []lctrl
	nimp   int
	body   []wasm.Instr
	dead   bool // current position unreachable
}

// LowerFunc lowers module function fi (module space, not import space)
// through a fresh scratch. The result is not pooled; one-shot callers and
// tests use this, Compile goes through lowerFuncInto.
func LowerFunc(m *wasm.Module, fi int, cfg *EngineConfig) (*ir.Func, error) {
	return lowerFuncInto(m, fi, cfg, getScratch())
}

// lowerFuncInto lowers module function fi into sc's arena.
func lowerFuncInto(m *wasm.Module, fi int, cfg *EngineConfig, sc *compileScratch) (*ir.Func, error) {
	wf := &m.Funcs[fi]
	ft := m.Types[wf.TypeIdx]
	lo := &sc.lo
	*lo = lowerer{
		m:      m,
		cfg:    cfg,
		sc:     sc,
		f:      sc.arena.Reset(),
		stack:  lo.stack[:0],
		locals: lo.locals[:0],
		ctrls:  lo.ctrls[:0],
		nimp:   m.NumImportedFuncs(),
		body:   wf.Body,
	}
	sc.vtype = sc.vtype[:0]
	lo.f.Name = m.FuncName(uint32(m.NumImportedFuncs() + fi))
	lo.f.SigID = int(wf.TypeIdx)
	lo.f.Index = fi
	lo.cur = lo.newBlock()

	// Locals: params then declared locals.
	for _, p := range ft.Params {
		v := lo.newV(p)
		lo.locals = append(lo.locals, v)
		lo.f.Params = append(lo.f.Params, v)
	}
	for _, l := range wf.Locals {
		v := lo.newV(l)
		lo.locals = append(lo.locals, v)
		// Wasm locals start zeroed.
		if classOf(l) == ir.GP {
			lo.emit(ir.Ins{Op: ir.Const, Dst: v, Imm: 0, W: widthOf(l), A: ir.NoV, B: ir.NoV, Extra: ir.NoV})
		} else {
			lo.emit(ir.Ins{Op: ir.FConst, Dst: v, F64: 0, W: widthOf(l), A: ir.NoV, B: ir.NoV, Extra: ir.NoV})
		}
	}
	if len(ft.Results) > 0 {
		lo.f.HasRet = true
		lo.f.RetType = classOf(ft.Results[0])
	}

	// Function frame.
	var resV ir.VReg = ir.NoV
	var resT wasm.ValType
	if len(ft.Results) > 0 {
		resT = ft.Results[0]
		resV = lo.newV(resT)
	}
	lo.ctrls = append(lo.ctrls, lctrl{op: 0, resultV: resV, resType: resT})

	if err := lo.run(); err != nil {
		return nil, fmt.Errorf("%s: %w", lo.f.Name, err)
	}
	ir.ComputeLoopDepth(lo.f)
	return lo.f, nil
}

func (lo *lowerer) newV(t wasm.ValType) ir.VReg {
	v := lo.f.NewV(classOf(t))
	lo.sc.vtype = append(lo.sc.vtype, t)
	return v
}

// vtypeOf returns the wasm type of vreg v.
func (lo *lowerer) vtypeOf(v ir.VReg) wasm.ValType { return lo.sc.vtype[v] }

// newBlock appends a recycled block to the function under construction.
func (lo *lowerer) newBlock() *ir.Block { return lo.sc.arena.NewBlock() }

func (lo *lowerer) emit(in ir.Ins) {
	// Normalize absent operands.
	if in.A == 0 && in.Op == ir.Const {
		in.A = ir.NoV
	}
	lo.cur.Ins = append(lo.cur.Ins, in)
}

func (lo *lowerer) push(v ir.VReg) { lo.stack = append(lo.stack, v) }

func (lo *lowerer) pop() ir.VReg {
	v := lo.stack[len(lo.stack)-1]
	lo.stack = lo.stack[:len(lo.stack)-1]
	return v
}

// ins is a convenience constructor initializing operand fields to NoV.
func ins(op ir.Op) ir.Ins {
	return ir.Ins{Op: op, Dst: ir.NoV, A: ir.NoV, B: ir.NoV, Extra: ir.NoV}
}

// startBlock switches emission to b.
func (lo *lowerer) startBlock(b *ir.Block) { lo.cur = b }

// terminate emits t and marks the position dead until the next label.
func (lo *lowerer) terminate(t ir.Ins) {
	lo.emit(t)
	lo.dead = true
}

// run walks the wasm body.
func (lo *lowerer) run() error {
	pc := 0
	for pc < len(lo.body) {
		in := &lo.body[pc]
		if lo.dead {
			// Skip unreachable instructions, tracking nesting.
			switch in.Op {
			case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
				lo.ctrls = append(lo.ctrls, lctrl{op: in.Op, resultV: ir.NoV, skipped: true})
			case wasm.OpElse:
				fr := &lo.ctrls[len(lo.ctrls)-1]
				if !fr.skipped && fr.op == wasm.OpIf {
					// The then-arm ended dead; else arm is reachable.
					fr.sawElse = true
					lo.dead = false
					lo.startBlock(fr.elseB)
					lo.stack = lo.stack[:fr.stackH]
				}
			case wasm.OpEnd:
				fr := lo.ctrls[len(lo.ctrls)-1]
				lo.ctrls = lo.ctrls[:len(lo.ctrls)-1]
				if !fr.skipped {
					// Frame was live before the dead region: resume at
					// its continuation if anything branches there.
					if fr.op == 0 {
						pc++
						continue
					}
					if fr.op == wasm.OpIf && !fr.sawElse && fr.elseB != nil {
						// if without else: else arm is the follow path.
						lo.startBlock(fr.elseB)
						lo.emitJump(fr.follow)
					}
					lo.dead = false
					lo.startBlock(fr.follow)
					lo.stack = lo.stack[:fr.stackH]
					if fr.resultV != ir.NoV {
						lo.push(fr.resultV)
					}
				}
			}
			pc++
			continue
		}

		np, err := lo.step(pc, in)
		if err != nil {
			return fmt.Errorf("pc %d (%s): %w", pc, in, err)
		}
		pc = np
	}
	return nil
}

// emitJump appends a jump to b.
func (lo *lowerer) emitJump(b *ir.Block) {
	t := ins(ir.Jump)
	tg := lo.sc.arena.Targets(1)
	tg[0] = b.ID
	t.Targets = tg
	lo.emit(t)
}

// targets2 carves a two-entry branch-target list from the arena.
func (lo *lowerer) targets2(a, b int) []int {
	tg := lo.sc.arena.Targets(2)
	tg[0], tg[1] = a, b
	return tg
}

// frameAt returns the control frame for wasm branch depth d.
func (lo *lowerer) frameAt(d int) *lctrl {
	return &lo.ctrls[len(lo.ctrls)-1-d]
}

// branchTargetForJump prepares a plain jump to the frame at depth d,
// emitting the result move if the frame carries one. It returns the target
// block id. For rotated loops it re-evaluates the loop test (see
// emitRotatedBackedge), in which case it returns -1 (branch fully emitted).
func (lo *lowerer) branchToFrame(d int) error {
	fr := lo.frameAt(d)
	if fr.op == wasm.OpLoop {
		if fr.rotated {
			return lo.emitRotatedBackedge(fr)
		}
		lo.emitJump(fr.header)
		return nil
	}
	if fr.op == 0 {
		// Branch to the function frame = return.
		t := ins(ir.Ret)
		if fr.resultV != ir.NoV {
			t.A = lo.stack[len(lo.stack)-1]
		}
		lo.emit(t)
		return nil
	}
	if fr.resultV != ir.NoV {
		mv := ins(ir.Mov)
		mv.Dst = fr.resultV
		mv.A = lo.stack[len(lo.stack)-1]
		mv.W = widthOf(fr.resType)
		lo.emit(mv)
	}
	lo.emitJump(fr.follow)
	return nil
}

// emitRotatedBackedge re-evaluates a rotated loop's test sequence and emits
// the bottom-test conditional branch: taken -> loop exit, fallthrough ->
// loop body.
func (lo *lowerer) emitRotatedBackedge(fr *lctrl) error {
	// Re-lower the pure test sequence inline.
	for i := range fr.rotTest {
		tin := &fr.rotTest[i]
		if _, err := lo.step(-1, tin); err != nil {
			return fmt.Errorf("rotated test: %w", err)
		}
	}
	cond := lo.pop()
	exitFr := lo.frameAt(fr.rotExit)
	if exitFr.resultV != ir.NoV {
		return fmt.Errorf("rotated loop exit carries a result")
	}
	var exitID int
	if exitFr.op == wasm.OpLoop {
		exitID = exitFr.header.ID
	} else {
		exitID = exitFr.follow.ID
	}
	t := lo.fuseCond(cond)
	t.Targets = lo.targets2(exitID, fr.body.ID)
	lo.emit(t)
	return nil
}

// fuseCond builds a Cond/CondCmp terminator from a condition vreg, fusing a
// just-emitted compare when the engine supports it.
func (lo *lowerer) fuseCond(cond ir.VReg) ir.Ins {
	if lo.cfg.CmpFusion && len(lo.cur.Ins) > 0 {
		last := &lo.cur.Ins[len(lo.cur.Ins)-1]
		if (last.Op == ir.Cmp || last.Op == ir.FCmp || last.Op == ir.Eqz) && last.Dst == cond {
			fused := *last
			lo.cur.Ins = lo.cur.Ins[:len(lo.cur.Ins)-1]
			t := ins(ir.CondCmp)
			t.A, t.B = fused.A, fused.B
			t.Imm = fused.Imm
			t.W = fused.W
			if fused.Op == ir.Eqz {
				t.CC = ir.CCEq
				t.B = ir.NoV
				t.Imm = 0
			} else {
				t.CC = fused.CC
			}
			if fused.Op == ir.FCmp {
				t.Unsigned = true // marks float compare for the emitter
			}
			return t
		}
	}
	t := ins(ir.Cond)
	t.A = cond
	return t
}

// protectLocal copies any abstract-stack references to local vreg v into
// fresh temporaries before v is overwritten.
func (lo *lowerer) protectLocal(v ir.VReg) {
	for i, s := range lo.stack {
		if s == v {
			t := lo.vtypeOf(v)
			nv := lo.newV(t)
			mv := ins(ir.Mov)
			mv.Dst = nv
			mv.A = v
			mv.W = widthOf(t)
			lo.emit(mv)
			lo.stack[i] = nv
		}
	}
}

// scanRotatable checks whether the loop starting after pc (which indexes the
// OpLoop) begins with a pure test sequence ending in br_if to an enclosing
// frame. It returns the sequence, the br_if depth, and the pc just past the
// br_if, or ok=false.
func (lo *lowerer) scanRotatable(pc int) (seq []wasm.Instr, depth int, next int, ok bool) {
	delta := 0
	for i := pc + 1; i < len(lo.body); i++ {
		in := &lo.body[i]
		if in.Op.IsLoad() {
			// Loads are safe to re-execute at the latch: re-entering the
			// loop header would perform the same load.
			if delta < 1 {
				return nil, 0, 0, false
			}
			continue
		}
		switch in.Op {
		case wasm.OpLocalGet, wasm.OpGlobalGet, wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			delta++
		case wasm.OpI32Eqz, wasm.OpI64Eqz, wasm.OpI32WrapI64, wasm.OpI64ExtendI32S, wasm.OpI64ExtendI32U:
			if delta < 1 {
				return nil, 0, 0, false
			}
		case wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS, wasm.OpI32GtU,
			wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU,
			wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS, wasm.OpI64GtU,
			wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU,
			wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge,
			wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge,
			wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
			wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor:
			if delta < 2 {
				return nil, 0, 0, false
			}
			delta--
		case wasm.OpBrIf:
			if delta != 1 || in.I64 == 0 {
				return nil, 0, 0, false
			}
			// Sequence consumed nothing below its own pushes and leaves
			// exactly the condition: rotatable.
			return lo.body[pc+1 : i], int(in.I64), i + 1, true
		default:
			return nil, 0, 0, false
		}
		if i-pc > 24 { // keep guards small, like a real compiler would
			return nil, 0, 0, false
		}
	}
	return nil, 0, 0, false
}
