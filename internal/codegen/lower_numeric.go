package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/wasm"
)

type binDesc struct {
	op ir.Op
	w  uint8
	t  wasm.ValType
}

type cmpDesc struct {
	cc    ir.CC
	w     uint8
	float bool
}

var binOps = map[wasm.Opcode]binDesc{
	wasm.OpI32Add: {ir.Add, 4, wasm.I32}, wasm.OpI32Sub: {ir.Sub, 4, wasm.I32},
	wasm.OpI32Mul:  {ir.Mul, 4, wasm.I32},
	wasm.OpI32DivS: {ir.DivS, 4, wasm.I32}, wasm.OpI32DivU: {ir.DivU, 4, wasm.I32},
	wasm.OpI32RemS: {ir.RemS, 4, wasm.I32}, wasm.OpI32RemU: {ir.RemU, 4, wasm.I32},
	wasm.OpI32And: {ir.And, 4, wasm.I32}, wasm.OpI32Or: {ir.Or, 4, wasm.I32},
	wasm.OpI32Xor: {ir.Xor, 4, wasm.I32}, wasm.OpI32Shl: {ir.Shl, 4, wasm.I32},
	wasm.OpI32ShrS: {ir.ShrS, 4, wasm.I32}, wasm.OpI32ShrU: {ir.ShrU, 4, wasm.I32},
	wasm.OpI32Rotl: {ir.Rotl, 4, wasm.I32}, wasm.OpI32Rotr: {ir.Rotr, 4, wasm.I32},

	wasm.OpI64Add: {ir.Add, 8, wasm.I64}, wasm.OpI64Sub: {ir.Sub, 8, wasm.I64},
	wasm.OpI64Mul:  {ir.Mul, 8, wasm.I64},
	wasm.OpI64DivS: {ir.DivS, 8, wasm.I64}, wasm.OpI64DivU: {ir.DivU, 8, wasm.I64},
	wasm.OpI64RemS: {ir.RemS, 8, wasm.I64}, wasm.OpI64RemU: {ir.RemU, 8, wasm.I64},
	wasm.OpI64And: {ir.And, 8, wasm.I64}, wasm.OpI64Or: {ir.Or, 8, wasm.I64},
	wasm.OpI64Xor: {ir.Xor, 8, wasm.I64}, wasm.OpI64Shl: {ir.Shl, 8, wasm.I64},
	wasm.OpI64ShrS: {ir.ShrS, 8, wasm.I64}, wasm.OpI64ShrU: {ir.ShrU, 8, wasm.I64},
	wasm.OpI64Rotl: {ir.Rotl, 8, wasm.I64}, wasm.OpI64Rotr: {ir.Rotr, 8, wasm.I64},

	wasm.OpF32Add: {ir.FAdd, 4, wasm.F32}, wasm.OpF32Sub: {ir.FSub, 4, wasm.F32},
	wasm.OpF32Mul: {ir.FMul, 4, wasm.F32}, wasm.OpF32Div: {ir.FDiv, 4, wasm.F32},
	wasm.OpF32Min: {ir.FMin, 4, wasm.F32}, wasm.OpF32Max: {ir.FMax, 4, wasm.F32},

	wasm.OpF64Add: {ir.FAdd, 8, wasm.F64}, wasm.OpF64Sub: {ir.FSub, 8, wasm.F64},
	wasm.OpF64Mul: {ir.FMul, 8, wasm.F64}, wasm.OpF64Div: {ir.FDiv, 8, wasm.F64},
	wasm.OpF64Min: {ir.FMin, 8, wasm.F64}, wasm.OpF64Max: {ir.FMax, 8, wasm.F64},
}

var unOps = map[wasm.Opcode]binDesc{
	wasm.OpI32Clz: {ir.Clz, 4, wasm.I32}, wasm.OpI32Ctz: {ir.Ctz, 4, wasm.I32},
	wasm.OpI32Popcnt: {ir.Popcnt, 4, wasm.I32},
	wasm.OpI64Clz:    {ir.Clz, 8, wasm.I64}, wasm.OpI64Ctz: {ir.Ctz, 8, wasm.I64},
	wasm.OpI64Popcnt: {ir.Popcnt, 8, wasm.I64},
	wasm.OpF32Abs:    {ir.FAbs, 4, wasm.F32}, wasm.OpF32Neg: {ir.FNeg, 4, wasm.F32},
	wasm.OpF32Sqrt: {ir.FSqrt, 4, wasm.F32},
	wasm.OpF32Ceil: {ir.FCeil, 4, wasm.F32}, wasm.OpF32Floor: {ir.FFloor, 4, wasm.F32},
	wasm.OpF32Trunc: {ir.FTrunc, 4, wasm.F32}, wasm.OpF32Nearest: {ir.FNearest, 4, wasm.F32},
	wasm.OpF64Abs: {ir.FAbs, 8, wasm.F64}, wasm.OpF64Neg: {ir.FNeg, 8, wasm.F64},
	wasm.OpF64Sqrt: {ir.FSqrt, 8, wasm.F64},
	wasm.OpF64Ceil: {ir.FCeil, 8, wasm.F64}, wasm.OpF64Floor: {ir.FFloor, 8, wasm.F64},
	wasm.OpF64Trunc: {ir.FTrunc, 8, wasm.F64}, wasm.OpF64Nearest: {ir.FNearest, 8, wasm.F64},
}

var cmpOps = map[wasm.Opcode]cmpDesc{
	wasm.OpI32Eq: {ir.CCEq, 4, false}, wasm.OpI32Ne: {ir.CCNe, 4, false},
	wasm.OpI32LtS: {ir.CCLt, 4, false}, wasm.OpI32LtU: {ir.CCLtU, 4, false},
	wasm.OpI32GtS: {ir.CCGt, 4, false}, wasm.OpI32GtU: {ir.CCGtU, 4, false},
	wasm.OpI32LeS: {ir.CCLe, 4, false}, wasm.OpI32LeU: {ir.CCLeU, 4, false},
	wasm.OpI32GeS: {ir.CCGe, 4, false}, wasm.OpI32GeU: {ir.CCGeU, 4, false},

	wasm.OpI64Eq: {ir.CCEq, 8, false}, wasm.OpI64Ne: {ir.CCNe, 8, false},
	wasm.OpI64LtS: {ir.CCLt, 8, false}, wasm.OpI64LtU: {ir.CCLtU, 8, false},
	wasm.OpI64GtS: {ir.CCGt, 8, false}, wasm.OpI64GtU: {ir.CCGtU, 8, false},
	wasm.OpI64LeS: {ir.CCLe, 8, false}, wasm.OpI64LeU: {ir.CCLeU, 8, false},
	wasm.OpI64GeS: {ir.CCGe, 8, false}, wasm.OpI64GeU: {ir.CCGeU, 8, false},

	wasm.OpF32Eq: {ir.CCEq, 4, true}, wasm.OpF32Ne: {ir.CCNe, 4, true},
	wasm.OpF32Lt: {ir.CCLtU, 4, true}, wasm.OpF32Gt: {ir.CCGtU, 4, true},
	wasm.OpF32Le: {ir.CCLeU, 4, true}, wasm.OpF32Ge: {ir.CCGeU, 4, true},

	wasm.OpF64Eq: {ir.CCEq, 8, true}, wasm.OpF64Ne: {ir.CCNe, 8, true},
	wasm.OpF64Lt: {ir.CCLtU, 8, true}, wasm.OpF64Gt: {ir.CCGtU, 8, true},
	wasm.OpF64Le: {ir.CCLeU, 8, true}, wasm.OpF64Ge: {ir.CCGeU, 8, true},
}

// lowerNumeric handles arithmetic, comparison, and conversion opcodes.
func (lo *lowerer) lowerNumeric(op wasm.Opcode) error {
	if d, ok := binOps[op]; ok {
		b := lo.pop()
		a := lo.pop()
		dst := lo.newV(d.t)
		i := ins(d.op)
		i.Dst = dst
		i.A = a
		i.B = b
		i.W = d.w
		lo.emit(i)
		lo.push(dst)
		return nil
	}
	if d, ok := unOps[op]; ok {
		a := lo.pop()
		dst := lo.newV(d.t)
		i := ins(d.op)
		i.Dst = dst
		i.A = a
		i.W = d.w
		lo.emit(i)
		lo.push(dst)
		return nil
	}
	if d, ok := cmpOps[op]; ok {
		b := lo.pop()
		a := lo.pop()
		dst := lo.newV(wasm.I32)
		var i ir.Ins
		if d.float {
			i = ins(ir.FCmp)
		} else {
			i = ins(ir.Cmp)
		}
		i.Dst = dst
		i.A = a
		i.B = b
		i.CC = d.cc
		i.W = d.w
		lo.emit(i)
		lo.push(dst)
		return nil
	}

	switch op {
	case wasm.OpF32Copysign, wasm.OpF64Copysign:
		// Decompose into bit operations (engines emit andp/orp sequences).
		w := uint8(8)
		ft := wasm.F64
		it := wasm.I64
		magMask := int64(0x7fffffffffffffff)
		signMask := int64(-0x8000000000000000)
		if op == wasm.OpF32Copysign {
			w, ft, it = 4, wasm.F32, wasm.I32
			magMask = 0x7fffffff
			signMask = int64(int32(-0x80000000))
		}
		b := lo.pop()
		a := lo.pop()
		ga := lo.newV(it)
		gb := lo.newV(it)
		bc := ins(ir.BitcastFI)
		bc.Dst, bc.A, bc.W = ga, a, w
		lo.emit(bc)
		bc2 := ins(ir.BitcastFI)
		bc2.Dst, bc2.A, bc2.W = gb, b, w
		lo.emit(bc2)
		ma := lo.newV(it)
		and1 := ins(ir.And)
		and1.Dst, and1.A, and1.Imm, and1.W = ma, ga, magMask, w
		lo.emit(and1)
		mb := lo.newV(it)
		and2 := ins(ir.And)
		and2.Dst, and2.A, and2.Imm, and2.W = mb, gb, signMask, w
		lo.emit(and2)
		or := ins(ir.Or)
		combined := lo.newV(it)
		or.Dst, or.A, or.B, or.W = combined, ma, mb, w
		lo.emit(or)
		dst := lo.newV(ft)
		back := ins(ir.BitcastIF)
		back.Dst, back.A, back.W = dst, combined, w
		lo.emit(back)
		lo.push(dst)
		return nil

	case wasm.OpI32Eqz, wasm.OpI64Eqz:
		a := lo.pop()
		dst := lo.newV(wasm.I32)
		i := ins(ir.Eqz)
		i.Dst = dst
		i.A = a
		if op == wasm.OpI64Eqz {
			i.W = 8
		} else {
			i.W = 4
		}
		lo.emit(i)
		lo.push(dst)

	case wasm.OpI32WrapI64:
		lo.conv(ir.Wrap, wasm.I32, 4, false)
	case wasm.OpI64ExtendI32S:
		lo.conv(ir.ExtS, wasm.I64, 8, false)
	case wasm.OpI64ExtendI32U:
		lo.conv(ir.ExtU, wasm.I64, 8, false)

	case wasm.OpI32TruncF32S:
		lo.convF2I(wasm.I32, 4, 4, false)
	case wasm.OpI32TruncF32U:
		lo.convF2I(wasm.I32, 4, 4, true)
	case wasm.OpI32TruncF64S:
		lo.convF2I(wasm.I32, 4, 8, false)
	case wasm.OpI32TruncF64U:
		lo.convF2I(wasm.I32, 4, 8, true)
	case wasm.OpI64TruncF32S:
		lo.convF2I(wasm.I64, 8, 4, false)
	case wasm.OpI64TruncF32U:
		lo.convF2I(wasm.I64, 8, 4, true)
	case wasm.OpI64TruncF64S:
		lo.convF2I(wasm.I64, 8, 8, false)
	case wasm.OpI64TruncF64U:
		lo.convF2I(wasm.I64, 8, 8, true)

	case wasm.OpF32ConvertI32S:
		lo.convI2F(wasm.F32, 4, 4, false)
	case wasm.OpF32ConvertI32U:
		lo.convI2F(wasm.F32, 4, 4, true)
	case wasm.OpF32ConvertI64S:
		lo.convI2F(wasm.F32, 4, 8, false)
	case wasm.OpF32ConvertI64U:
		lo.convI2F(wasm.F32, 4, 8, true)
	case wasm.OpF64ConvertI32S:
		lo.convI2F(wasm.F64, 8, 4, false)
	case wasm.OpF64ConvertI32U:
		lo.convI2F(wasm.F64, 8, 4, true)
	case wasm.OpF64ConvertI64S:
		lo.convI2F(wasm.F64, 8, 8, false)
	case wasm.OpF64ConvertI64U:
		lo.convI2F(wasm.F64, 8, 8, true)

	case wasm.OpF32DemoteF64:
		lo.conv(ir.F2F, wasm.F32, 4, false)
	case wasm.OpF64PromoteF32:
		lo.conv(ir.F2F, wasm.F64, 8, false)

	case wasm.OpI32ReinterpretF32:
		lo.conv(ir.BitcastFI, wasm.I32, 4, false)
	case wasm.OpI64ReinterpretF64:
		lo.conv(ir.BitcastFI, wasm.I64, 8, false)
	case wasm.OpF32ReinterpretI32:
		lo.conv(ir.BitcastIF, wasm.F32, 4, false)
	case wasm.OpF64ReinterpretI64:
		lo.conv(ir.BitcastIF, wasm.F64, 8, false)

	default:
		return fmt.Errorf("codegen: unhandled opcode %s", wasm.OpName(op))
	}
	return nil
}

func (lo *lowerer) conv(op ir.Op, to wasm.ValType, w uint8, uns bool) {
	a := lo.pop()
	dst := lo.newV(to)
	i := ins(op)
	i.Dst = dst
	i.A = a
	i.W = w
	i.Unsigned = uns
	lo.emit(i)
	lo.push(dst)
}

func (lo *lowerer) convF2I(to wasm.ValType, w, srcW uint8, uns bool) {
	a := lo.pop()
	dst := lo.newV(to)
	i := ins(ir.F2I)
	i.Dst = dst
	i.A = a
	i.W = w
	i.Imm = int64(srcW) // source float width
	i.Unsigned = uns
	lo.emit(i)
	lo.push(dst)
}

func (lo *lowerer) convI2F(to wasm.ValType, w, srcW uint8, uns bool) {
	a := lo.pop()
	dst := lo.newV(to)
	i := ins(ir.I2F)
	i.Dst = dst
	i.A = a
	i.W = w
	i.Imm = int64(srcW)
	i.Unsigned = uns
	lo.emit(i)
	lo.push(dst)
}
