package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/wasm"
)

// step lowers one reachable wasm instruction, returning the next pc.
func (lo *lowerer) step(pc int, in *wasm.Instr) (int, error) {
	switch in.Op {
	case wasm.OpNop:
	case wasm.OpUnreachable:
		lo.terminate(ins(ir.Trap))

	case wasm.OpBlock:
		fr := lctrl{op: wasm.OpBlock, follow: lo.newBlock(), stackH: len(lo.stack), resultV: ir.NoV}
		if in.Block.HasResult {
			fr.resType = in.Block.Result
			fr.resultV = lo.newV(in.Block.Result)
		}
		lo.ctrls = append(lo.ctrls, fr)

	case wasm.OpLoop:
		fr := lctrl{op: wasm.OpLoop, follow: lo.newBlock(), stackH: len(lo.stack), resultV: ir.NoV}
		if in.Block.HasResult {
			fr.resType = in.Block.Result
			fr.resultV = lo.newV(in.Block.Result)
		}
		if lo.cfg.RotateLoops {
			if seq, depth, next, ok := lo.scanRotatable(pc); ok {
				// Guard + bottom-test rotation. Push the frame first so
				// branch depths inside the test resolve correctly.
				fr.rotated = true
				fr.rotTest = seq
				fr.rotExit = depth
				fr.body = lo.newBlock()
				lo.ctrls = append(lo.ctrls, fr)
				frp := &lo.ctrls[len(lo.ctrls)-1]
				// Lower the guard: test once before entering the loop.
				for i := range seq {
					if _, err := lo.step(-1, &seq[i]); err != nil {
						return 0, err
					}
				}
				cond := lo.pop()
				exitFr := lo.frameAt(depth)
				if exitFr.resultV != ir.NoV || exitFr.op == wasm.OpLoop {
					// Cannot rotate after all; fall back (rare).
					lo.ctrls = lo.ctrls[:len(lo.ctrls)-1]
					return lo.lowerPlainLoop(pc, in)
				}
				t := lo.fuseCond(cond)
				t.Targets = lo.targets2(exitFr.follow.ID, frp.body.ID)
				lo.emit(t)
				lo.startBlock(frp.body)
				return next, nil
			}
		}
		fr.header = lo.newBlock()
		lo.ctrls = append(lo.ctrls, fr)
		lo.emitJump(fr.header)
		lo.startBlock(fr.header)

	case wasm.OpIf:
		cond := lo.pop()
		fr := lctrl{op: wasm.OpIf, follow: lo.newBlock(), elseB: lo.newBlock(), stackH: len(lo.stack), resultV: ir.NoV}
		if in.Block.HasResult {
			fr.resType = in.Block.Result
			fr.resultV = lo.newV(in.Block.Result)
		}
		thenB := lo.newBlock()
		t := lo.fuseCond(cond)
		t.Targets = lo.targets2(thenB.ID, fr.elseB.ID)
		lo.emit(t)
		lo.ctrls = append(lo.ctrls, fr)
		lo.startBlock(thenB)

	case wasm.OpElse:
		fr := &lo.ctrls[len(lo.ctrls)-1]
		fr.sawElse = true
		// Close the then-arm: move result, jump to follow.
		if fr.resultV != ir.NoV {
			mv := ins(ir.Mov)
			mv.Dst = fr.resultV
			mv.A = lo.pop()
			mv.W = widthOf(fr.resType)
			lo.emit(mv)
		}
		lo.emitJump(fr.follow)
		lo.stack = lo.stack[:fr.stackH]
		lo.startBlock(fr.elseB)

	case wasm.OpEnd:
		fr := lo.ctrls[len(lo.ctrls)-1]
		lo.ctrls = lo.ctrls[:len(lo.ctrls)-1]
		if fr.op == 0 {
			// Function end: emit return with the value on the stack.
			t := ins(ir.Ret)
			if fr.resultV != ir.NoV {
				t.A = lo.pop()
			}
			lo.emit(t)
			lo.dead = true
			return pc + 1, nil
		}
		if fr.resultV != ir.NoV {
			mv := ins(ir.Mov)
			mv.Dst = fr.resultV
			mv.A = lo.pop()
			mv.W = widthOf(fr.resType)
			lo.emit(mv)
		}
		if fr.op == wasm.OpIf && !fr.sawElse {
			// Empty else arm: jump straight to follow.
			lo.emitJump(fr.follow)
			lo.startBlock(fr.elseB)
		}
		lo.emitJump(fr.follow)
		lo.stack = lo.stack[:fr.stackH]
		lo.startBlock(fr.follow)
		if fr.resultV != ir.NoV {
			lo.push(fr.resultV)
		}

	case wasm.OpBr:
		fr := lo.frameAt(int(in.I64))
		_ = fr
		if err := lo.branchToFrame(int(in.I64)); err != nil {
			return 0, err
		}
		lo.dead = true

	case wasm.OpBrIf:
		cond := lo.pop()
		fr := lo.frameAt(int(in.I64))
		cont := lo.newBlock()
		switch {
		case fr.op == wasm.OpLoop && fr.rotated:
			// Conditional back-edge into a rotated loop: branch to a
			// trampoline that re-runs the test.
			tramp := lo.newBlock()
			t := lo.fuseCond(cond)
			t.Targets = lo.targets2(tramp.ID, cont.ID)
			lo.emit(t)
			lo.startBlock(tramp)
			if err := lo.emitRotatedBackedge(fr); err != nil {
				return 0, err
			}
			lo.startBlock(cont)
		case fr.resultV != ir.NoV:
			// Value-carrying conditional branch: trampoline does the move.
			tramp := lo.newBlock()
			t := lo.fuseCond(cond)
			t.Targets = lo.targets2(tramp.ID, cont.ID)
			lo.emit(t)
			lo.startBlock(tramp)
			mv := ins(ir.Mov)
			mv.Dst = fr.resultV
			mv.A = lo.stack[len(lo.stack)-1]
			mv.W = widthOf(fr.resType)
			lo.emit(mv)
			lo.emitJump(fr.follow)
			lo.startBlock(cont)
		default:
			var target int
			switch {
			case fr.op == wasm.OpLoop:
				target = fr.header.ID
			case fr.op == 0:
				// br_if to the function frame: conditional return.
				tramp := lo.newBlock()
				t := lo.fuseCond(cond)
				t.Targets = lo.targets2(tramp.ID, cont.ID)
				lo.emit(t)
				lo.startBlock(tramp)
				rt := ins(ir.Ret)
				if fr.resultV != ir.NoV {
					rt.A = lo.stack[len(lo.stack)-1]
				}
				lo.emit(rt)
				lo.startBlock(cont)
				return pc + 1, nil
			default:
				target = fr.follow.ID
			}
			t := lo.fuseCond(cond)
			t.Targets = lo.targets2(target, cont.ID)
			lo.emit(t)
			lo.startBlock(cont)
		}

	case wasm.OpBrTable:
		idx := lo.pop()
		t := ins(ir.BrTable)
		t.A = idx
		t.Targets = lo.sc.arena.Targets(len(in.Table))[:0]
		for _, d := range in.Table {
			fr := lo.frameAt(int(d))
			var tb int
			switch {
			case fr.op == wasm.OpLoop && fr.rotated:
				tramp := lo.newBlock()
				save := lo.cur
				lo.startBlock(tramp)
				if err := lo.emitRotatedBackedge(fr); err != nil {
					return 0, err
				}
				lo.startBlock(save)
				tb = tramp.ID
			case fr.op == wasm.OpLoop:
				tb = fr.header.ID
			case fr.op == 0:
				tramp := lo.newBlock()
				save := lo.cur
				lo.startBlock(tramp)
				rt := ins(ir.Ret)
				if fr.resultV != ir.NoV {
					rt.A = lo.stack[len(lo.stack)-1]
				}
				lo.emit(rt)
				lo.startBlock(save)
				tb = tramp.ID
			case fr.resultV != ir.NoV:
				tramp := lo.newBlock()
				save := lo.cur
				lo.startBlock(tramp)
				mv := ins(ir.Mov)
				mv.Dst = fr.resultV
				mv.A = lo.stack[len(lo.stack)-1]
				mv.W = widthOf(fr.resType)
				lo.emit(mv)
				lo.emitJump(fr.follow)
				lo.startBlock(save)
				tb = tramp.ID
			default:
				tb = fr.follow.ID
			}
			t.Targets = append(t.Targets, tb)
		}
		lo.terminate(t)

	case wasm.OpReturn:
		t := ins(ir.Ret)
		if lo.ctrls[0].resultV != ir.NoV {
			t.A = lo.pop()
		}
		lo.terminate(t)

	case wasm.OpCall:
		return pc + 1, lo.lowerCall(uint32(in.I64))

	case wasm.OpCallIndirect:
		return pc + 1, lo.lowerCallIndirect(int(in.I64))

	case wasm.OpDrop:
		lo.pop()

	case wasm.OpSelect:
		c := lo.pop()
		b := lo.pop()
		a := lo.pop()
		t := lo.vtypeOf(a)
		dst := lo.newV(t)
		s := ins(ir.Select)
		s.Dst = dst
		s.A = c
		s.B = a
		s.Extra = b
		s.W = widthOf(t)
		lo.emit(s)
		lo.push(dst)

	case wasm.OpLocalGet:
		lo.push(lo.locals[in.I64])

	case wasm.OpLocalSet:
		v := lo.locals[in.I64]
		lo.protectLocal(v)
		mv := ins(ir.Mov)
		mv.Dst = v
		mv.A = lo.pop()
		mv.W = widthOf(lo.vtypeOf(v))
		lo.emit(mv)

	case wasm.OpLocalTee:
		v := lo.locals[in.I64]
		lo.protectLocal(v)
		mv := ins(ir.Mov)
		mv.Dst = v
		mv.A = lo.stack[len(lo.stack)-1]
		mv.W = widthOf(lo.vtypeOf(v))
		lo.emit(mv)
		// The stack keeps the source value; it is equivalent to keep the
		// original vreg (it is not a local, or protectLocal copied it).

	case wasm.OpGlobalGet:
		gt, err := lo.m.GlobalTypeAt(uint32(in.I64))
		if err != nil {
			return 0, err
		}
		dst := lo.newV(gt.Type)
		g := ins(ir.GlobalLd)
		g.Dst = dst
		g.Imm = in.I64
		g.W = widthOf(gt.Type)
		lo.emit(g)
		lo.push(dst)

	case wasm.OpGlobalSet:
		gt, err := lo.m.GlobalTypeAt(uint32(in.I64))
		if err != nil {
			return 0, err
		}
		g := ins(ir.GlobalSt)
		g.A = lo.pop()
		g.Imm = in.I64
		g.W = widthOf(gt.Type)
		lo.emit(g)

	case wasm.OpMemorySize:
		dst := lo.newV(wasm.I32)
		g := ins(ir.MemSize)
		g.Dst = dst
		lo.emit(g)
		lo.push(dst)

	case wasm.OpMemoryGrow:
		dst := lo.newV(wasm.I32)
		g := ins(ir.MemGrow)
		g.Dst = dst
		g.A = lo.pop()
		lo.emit(g)
		lo.push(dst)

	case wasm.OpI32Const:
		dst := lo.newV(wasm.I32)
		c := ins(ir.Const)
		c.Dst = dst
		c.Imm = int64(int32(in.I64))
		c.W = 4
		lo.emit(c)
		lo.push(dst)

	case wasm.OpI64Const:
		dst := lo.newV(wasm.I64)
		c := ins(ir.Const)
		c.Dst = dst
		c.Imm = in.I64
		c.W = 8
		lo.emit(c)
		lo.push(dst)

	case wasm.OpF32Const:
		dst := lo.newV(wasm.F32)
		c := ins(ir.FConst)
		c.Dst = dst
		c.F64 = in.F64
		c.W = 4
		lo.emit(c)
		lo.push(dst)

	case wasm.OpF64Const:
		dst := lo.newV(wasm.F64)
		c := ins(ir.FConst)
		c.Dst = dst
		c.F64 = in.F64
		c.W = 8
		lo.emit(c)
		lo.push(dst)

	default:
		if in.Op.IsMemAccess() {
			lo.lowerMemAccess(in)
			return pc + 1, nil
		}
		if err := lo.lowerNumeric(in.Op); err != nil {
			return 0, err
		}
	}
	return pc + 1, nil
}

// lowerPlainLoop handles OpLoop without rotation (fallback path).
func (lo *lowerer) lowerPlainLoop(pc int, in *wasm.Instr) (int, error) {
	fr := lctrl{op: wasm.OpLoop, follow: lo.newBlock(), stackH: len(lo.stack), resultV: ir.NoV}
	if in.Block.HasResult {
		fr.resType = in.Block.Result
		fr.resultV = lo.newV(in.Block.Result)
	}
	fr.header = lo.newBlock()
	lo.ctrls = append(lo.ctrls, fr)
	lo.emitJump(fr.header)
	lo.startBlock(fr.header)
	return pc + 1, nil
}

// lowerCall lowers a direct call to import-space function index callee.
func (lo *lowerer) lowerCall(callee uint32) error {
	ft, err := lo.m.FuncTypeAt(callee)
	if err != nil {
		return err
	}
	nargs := len(ft.Params)
	args := lo.sc.arena.VRegs(nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = lo.pop()
	}
	c := ins(ir.Call)
	if int(callee) < lo.nimp {
		c.Op = ir.CallHost
		c.Callee = int(callee)
	} else {
		c.Callee = int(callee) - lo.nimp
	}
	c.Args = args
	if len(ft.Results) > 0 {
		dst := lo.newV(ft.Results[0])
		c.Dst = dst
		c.W = widthOf(ft.Results[0])
		lo.emit(c)
		lo.push(dst)
	} else {
		lo.emit(c)
	}
	return nil
}

// lowerCallIndirect lowers call_indirect with signature index sig.
func (lo *lowerer) lowerCallIndirect(sig int) error {
	ft := lo.m.Types[sig]
	idx := lo.pop()
	nargs := len(ft.Params)
	args := lo.sc.arena.VRegs(nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = lo.pop()
	}
	c := ins(ir.CallInd)
	c.A = idx
	c.SigID = sig
	c.Args = args
	if len(ft.Results) > 0 {
		dst := lo.newV(ft.Results[0])
		c.Dst = dst
		c.W = widthOf(ft.Results[0])
		lo.emit(c)
		lo.push(dst)
	} else {
		lo.emit(c)
	}
	return nil
}

// lowerMemAccess lowers loads and stores.
func (lo *lowerer) lowerMemAccess(in *wasm.Instr) {
	kind, vt := loadKindOf(in.Op)
	if in.Op.IsLoad() {
		addr := lo.pop()
		dst := lo.newV(vt)
		l := ins(ir.Load)
		l.Dst = dst
		l.A = addr
		l.Off = int32(in.Offset)
		l.Kind = kind
		l.W = widthOf(vt)
		lo.emit(l)
		lo.push(dst)
		return
	}
	val := lo.pop()
	addr := lo.pop()
	s := ins(ir.Store)
	s.A = addr
	s.B = val
	s.Off = int32(in.Offset)
	s.Kind = kind
	s.W = widthOf(lo.vtypeOf(val))
	lo.emit(s)
}

// loadKindOf maps a wasm memory opcode to (LoadKind, result/operand type).
func loadKindOf(op wasm.Opcode) (ir.LoadKind, wasm.ValType) {
	switch op {
	case wasm.OpI32Load, wasm.OpI32Store:
		return ir.L32, wasm.I32
	case wasm.OpI64Load, wasm.OpI64Store:
		return ir.L64, wasm.I64
	case wasm.OpF32Load, wasm.OpF32Store:
		return ir.LF32, wasm.F32
	case wasm.OpF64Load, wasm.OpF64Store:
		return ir.LF64, wasm.F64
	case wasm.OpI32Load8S:
		return ir.L8S, wasm.I32
	case wasm.OpI32Load8U, wasm.OpI32Store8:
		return ir.L8U, wasm.I32
	case wasm.OpI32Load16S:
		return ir.L16S, wasm.I32
	case wasm.OpI32Load16U, wasm.OpI32Store16:
		return ir.L16U, wasm.I32
	case wasm.OpI64Load8S:
		return ir.L8S, wasm.I64
	case wasm.OpI64Load8U, wasm.OpI64Store8:
		return ir.L8U, wasm.I64
	case wasm.OpI64Load16S:
		return ir.L16S, wasm.I64
	case wasm.OpI64Load16U, wasm.OpI64Store16:
		return ir.L16U, wasm.I64
	case wasm.OpI64Load32S:
		return ir.L32S, wasm.I64
	case wasm.OpI64Load32U, wasm.OpI64Store32:
		return ir.L32U, wasm.I64
	}
	panic(fmt.Sprintf("not a memory access: %s", wasm.OpName(op)))
}
