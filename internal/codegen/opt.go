package codegen

import (
	"math/bits"

	"repro/internal/ir"
)

// optimize runs the target-independent cleanups every engine performs:
// immediate folding into instructions, multiply-by-power-of-two strength
// reduction, address-offset folding into load/store displacements, and dead
// code elimination. Engine-specific improvements (addressing-mode fusion,
// RMW fusion, rotation) happen in lowering/emission under config control.
// All worklists live in the scratch, so steady-state passes allocate nothing.
func optimize(sc *compileScratch, f *ir.Func) {
	foldImmediates(sc, f)
	dce(sc, f)
	threadJumps(f)
	pruneUnreachable(sc, f)
}

// optimizeNative runs the extra scalar cleanups Clang performs but the
// browser baseline pipelines do not: block-local common-subexpression
// elimination (the paper's Figure 7c shows Chrome re-computing identical
// address chains that Clang CSEs away).
func optimizeNative(sc *compileScratch, f *ir.Func) {
	localCSE(sc, f)
	dce(sc, f)
}

// Optimize is optimize through a pooled scratch, for one-shot callers.
// (The passes alias nothing into f, so the scratch goes straight back.)
func Optimize(f *ir.Func) {
	sc := getScratch()
	optimize(sc, f)
	sc.release()
}

// OptimizeNative is optimizeNative through a pooled scratch.
func OptimizeNative(f *ir.Func) {
	sc := getScratch()
	optimizeNative(sc, f)
	sc.release()
}

// cseKey identifies a pure computation.
type cseKey struct {
	op   ir.Op
	a, b ir.VReg
	imm  int64
	f64  float64
	w    uint8
	cc   ir.CC
	uns  bool
}

func localCSE(sc *compileScratch, f *ir.Func) {
	// Global def counts and per-block use locality: only single-def temps
	// whose every use sits in one block are candidates for elimination.
	sc.defCount = growSlice(sc.defCount, f.NumV)
	sc.useBlock = growSlice(sc.useBlock, f.NumV)
	defCount, useBlock := sc.defCount, sc.useBlock
	for i := range useBlock {
		useBlock[i] = -1 // -2 = used in many blocks
	}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Dst != ir.NoV {
				defCount[in.Dst]++
			}
			in.VisitUses(func(v ir.VReg) {
				if useBlock[v] == -1 {
					useBlock[v] = b.ID
				} else if useBlock[v] != b.ID {
					useBlock[v] = -2
				}
			})
		}
	}
	sc.isParam = growSlice(sc.isParam, f.NumV)
	isParam := sc.isParam
	for _, p := range f.Params {
		isParam[p] = true
	}

	gen, avail, replaced := sc.gen, sc.avail, sc.replaced
	for _, b := range f.Blocks {
		clear(gen)
		clear(avail)
		clear(replaced)
		sub := func(v ir.VReg) ir.VReg {
			if r, ok := replaced[v]; ok {
				return r
			}
			return v
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.A != ir.NoV {
				in.A = sub(in.A)
			}
			if in.B != ir.NoV {
				in.B = sub(in.B)
			}
			if in.Extra != ir.NoV {
				in.Extra = sub(in.Extra)
			}
			for j := range in.Args {
				in.Args[j] = sub(in.Args[j])
			}
			if in.Dst == ir.NoV {
				continue
			}
			if !pure(in.Op) || in.Op == ir.GlobalLd || in.Op == ir.MemSize {
				gen[in.Dst]++
				continue
			}
			k := cseVerKey{
				k: cseKey{op: in.Op, a: in.A, b: in.B, imm: in.Imm, f64: in.F64, w: in.W, cc: in.CC, uns: in.Unsigned},
			}
			if in.A != ir.NoV {
				k.va = gen[in.A]
			}
			if in.B != ir.NoV {
				k.vb = gen[in.B]
			}
			dst := in.Dst
			if prev, ok := avail[k]; ok && gen[prev.v] == prev.gen &&
				defCount[dst] == 1 && useBlock[dst] == b.ID && !isParam[dst] &&
				!reassignedWithin(b, i, prev.v) {
				replaced[dst] = prev.v
				in.Op = ir.Nop
				in.Dst, in.A, in.B, in.Extra = ir.NoV, ir.NoV, ir.NoV, ir.NoV
				continue
			}
			gen[dst]++
			avail[k] = cseAvail{v: dst, gen: gen[dst]}
		}
		k := 0
		for i := range b.Ins {
			if b.Ins[i].Op == ir.Nop {
				continue
			}
			b.Ins[k] = b.Ins[i]
			k++
		}
		b.Ins = b.Ins[:k]
	}
}

// reassignedWithin reports whether v is redefined in b after position from.
func reassignedWithin(b *ir.Block, from int, v ir.VReg) bool {
	for i := from + 1; i < len(b.Ins); i++ {
		if b.Ins[i].Dst == v {
			return true
		}
	}
	return false
}

// threadJumps redirects branch targets through blocks that contain only an
// unconditional jump.
func threadJumps(f *ir.Func) {
	resolve := func(t int) int {
		for hops := 0; hops < 8; hops++ {
			b := f.Blocks[t]
			if len(b.Ins) != 1 || b.Ins[0].Op != ir.Jump {
				return t
			}
			nt := b.Ins[0].Targets[0]
			if nt == t {
				return t
			}
			t = nt
		}
		return t
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i := range t.Targets {
			t.Targets[i] = resolve(t.Targets[i])
		}
	}
}

// pruneUnreachable removes blocks not reachable from the entry and renumbers
// the remainder, compacting f.Blocks in place (dropped blocks stay owned by
// the arena, keeping their instruction capacity for the next compile).
func pruneUnreachable(sc *compileScratch, f *ir.Func) {
	sc.reach = growSlice(sc.reach, len(f.Blocks))
	sc.remap = growSlice(sc.remap, len(f.Blocks))
	reach, remap := sc.reach, sc.remap
	stack := sc.blkStack[:0]
	reach[0] = true
	stack = append(stack, 0)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	sc.blkStack = stack[:0]
	k := 0
	for i, b := range f.Blocks {
		if reach[i] {
			remap[i] = k
			b.ID = k
			f.Blocks[k] = b
			k++
		}
	}
	f.Blocks = f.Blocks[:k]
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil {
			for i := range t.Targets {
				t.Targets[i] = remap[t.Targets[i]]
			}
		}
	}
}

// useCountsInto fills buf (grown to f.NumV) with the number of uses of each
// vreg.
func useCountsInto(buf []int, f *ir.Func) []int {
	uses := growSlice(buf, f.NumV)
	for _, b := range f.Blocks {
		for i := range b.Ins {
			b.Ins[i].VisitUses(func(v ir.VReg) { uses[v]++ })
		}
	}
	return uses
}

// immOK reports whether op supports an immediate right operand.
func immOK(op ir.Op) bool {
	switch op {
	case ir.Add, ir.Sub, ir.And, ir.Or, ir.Xor, ir.Mul, ir.Cmp, ir.CondCmp,
		ir.Shl, ir.ShrS, ir.ShrU, ir.Rotl, ir.Rotr, ir.Store:
		return true
	}
	return false
}

func foldImmediates(sc *compileScratch, f *ir.Func) {
	sc.useBuf = useCountsInto(sc.useBuf, f)
	uses := sc.useBuf
	// constDef maps vreg -> index of its Const def within the current block.
	constDef := sc.constDef
	for _, b := range f.Blocks {
		clear(constDef)
		for i := range b.Ins {
			in := &b.Ins[i]

			// Fold a known-constant B operand into the immediate field.
			if in.B != ir.NoV && immOK(in.Op) && !in.Unsigned {
				if ci, ok := constDef[in.B]; ok && uses[in.B] == 1 {
					cv := b.Ins[ci].Imm
					if cv >= -1<<31 && cv < 1<<31 {
						in.Imm = cv
						uses[in.B]--
						in.B = ir.NoV
						// Shifts by constant are cheap; mul by pow2
						// becomes a shift (both engines do this).
						if in.Op == ir.Mul && cv > 0 && cv&(cv-1) == 0 {
							in.Op = ir.Shl
							in.Imm = int64(bits.TrailingZeros64(uint64(cv)))
						}
					}
				}
			}

			if in.Op == ir.Const {
				constDef[in.Dst] = i
			} else if in.Dst != ir.NoV {
				delete(constDef, in.Dst)
			}
			// Consts are immutable defs; no invalidation needed beyond
			// redefinition, which SSA-ish lowering avoids.
		}
	}
}

// pure reports whether an op has no side effects (safe to delete when dead).
func pure(op ir.Op) bool {
	switch op {
	case ir.Const, ir.FConst, ir.Mov, ir.Add, ir.Sub, ir.Mul,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.ShrS, ir.ShrU, ir.Rotl, ir.Rotr,
		ir.Clz, ir.Ctz, ir.Popcnt, ir.Eqz, ir.Cmp, ir.Select,
		ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FSqrt, ir.FAbs, ir.FNeg,
		ir.FMin, ir.FMax, ir.FCeil, ir.FFloor, ir.FTrunc, ir.FNearest,
		ir.FCmp, ir.ExtS, ir.ExtU, ir.Wrap, ir.I2F, ir.F2F,
		ir.BitcastIF, ir.BitcastFI, ir.GlobalLd, ir.MemSize:
		return true
	}
	return false
}

func dce(sc *compileScratch, f *ir.Func) {
	for round := 0; round < 4; round++ {
		sc.useBuf = useCountsInto(sc.useBuf, f)
		uses := sc.useBuf
		changed := false
		for _, b := range f.Blocks {
			k := 0
			for i := range b.Ins {
				in := b.Ins[i]
				if in.Dst != ir.NoV && uses[in.Dst] == 0 && pure(in.Op) {
					changed = true
					continue
				}
				b.Ins[k] = in
				k++
			}
			b.Ins = b.Ins[:k]
		}
		if !changed {
			return
		}
	}
}
