package codegen

import (
	"math/bits"

	"repro/internal/ir"
)

// Optimize runs the target-independent cleanups every engine performs:
// immediate folding into instructions, multiply-by-power-of-two strength
// reduction, address-offset folding into load/store displacements, and dead
// code elimination. Engine-specific improvements (addressing-mode fusion,
// RMW fusion, rotation) happen in lowering/emission under config control.
func Optimize(f *ir.Func) {
	foldImmediates(f)
	dce(f)
	threadJumps(f)
	pruneUnreachable(f)
}

// OptimizeNative runs the extra scalar cleanups Clang performs but the
// browser baseline pipelines do not: block-local common-subexpression
// elimination (the paper's Figure 7c shows Chrome re-computing identical
// address chains that Clang CSEs away).
func OptimizeNative(f *ir.Func) {
	localCSE(f)
	dce(f)
}

// cseKey identifies a pure computation.
type cseKey struct {
	op   ir.Op
	a, b ir.VReg
	imm  int64
	f64  float64
	w    uint8
	cc   ir.CC
	uns  bool
}

func localCSE(f *ir.Func) {
	// Global def counts and per-block use locality: only single-def temps
	// whose every use sits in one block are candidates for elimination.
	defCount := make([]int, f.NumV)
	useBlock := make([]int, f.NumV) // block id of sole-using block, -2 = many
	for i := range useBlock {
		useBlock[i] = -1
	}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Dst != ir.NoV {
				defCount[in.Dst]++
			}
			in.VisitUses(func(v ir.VReg) {
				if useBlock[v] == -1 {
					useBlock[v] = b.ID
				} else if useBlock[v] != b.ID {
					useBlock[v] = -2
				}
			})
		}
	}
	isParam := make([]bool, f.NumV)
	for _, p := range f.Params {
		isParam[p] = true
	}

	type verKey struct {
		k      cseKey
		va, vb int
	}
	type availVal struct {
		v   ir.VReg
		gen int // v's def version when recorded; stale when v is redefined
	}
	for _, b := range f.Blocks {
		gen := map[ir.VReg]int{}
		avail := map[verKey]availVal{}
		replaced := map[ir.VReg]ir.VReg{}
		sub := func(v ir.VReg) ir.VReg {
			if r, ok := replaced[v]; ok {
				return r
			}
			return v
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.A != ir.NoV {
				in.A = sub(in.A)
			}
			if in.B != ir.NoV {
				in.B = sub(in.B)
			}
			if in.Extra != ir.NoV {
				in.Extra = sub(in.Extra)
			}
			for j := range in.Args {
				in.Args[j] = sub(in.Args[j])
			}
			if in.Dst == ir.NoV {
				continue
			}
			if !pure(in.Op) || in.Op == ir.GlobalLd || in.Op == ir.MemSize {
				gen[in.Dst]++
				continue
			}
			k := verKey{
				k: cseKey{op: in.Op, a: in.A, b: in.B, imm: in.Imm, f64: in.F64, w: in.W, cc: in.CC, uns: in.Unsigned},
			}
			if in.A != ir.NoV {
				k.va = gen[in.A]
			}
			if in.B != ir.NoV {
				k.vb = gen[in.B]
			}
			dst := in.Dst
			if prev, ok := avail[k]; ok && gen[prev.v] == prev.gen &&
				defCount[dst] == 1 && useBlock[dst] == b.ID && !isParam[dst] &&
				!reassignedWithin(b, i, prev.v) {
				replaced[dst] = prev.v
				in.Op = ir.Nop
				in.Dst, in.A, in.B, in.Extra = ir.NoV, ir.NoV, ir.NoV, ir.NoV
				continue
			}
			gen[dst]++
			avail[k] = availVal{v: dst, gen: gen[dst]}
		}
		k := 0
		for i := range b.Ins {
			if b.Ins[i].Op == ir.Nop {
				continue
			}
			b.Ins[k] = b.Ins[i]
			k++
		}
		b.Ins = b.Ins[:k]
	}
}

// reassignedWithin reports whether v is redefined in b after position from.
func reassignedWithin(b *ir.Block, from int, v ir.VReg) bool {
	for i := from + 1; i < len(b.Ins); i++ {
		if b.Ins[i].Dst == v {
			return true
		}
	}
	return false
}

// threadJumps redirects branch targets through blocks that contain only an
// unconditional jump.
func threadJumps(f *ir.Func) {
	resolve := func(t int) int {
		for hops := 0; hops < 8; hops++ {
			b := f.Blocks[t]
			if len(b.Ins) != 1 || b.Ins[0].Op != ir.Jump {
				return t
			}
			nt := b.Ins[0].Targets[0]
			if nt == t {
				return t
			}
			t = nt
		}
		return t
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i := range t.Targets {
			t.Targets[i] = resolve(t.Targets[i])
		}
	}
}

// pruneUnreachable removes blocks not reachable from the entry and renumbers
// the remainder.
func pruneUnreachable(f *ir.Func) {
	reach := make([]bool, len(f.Blocks))
	var stack []int
	reach[0] = true
	stack = append(stack, 0)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[id].Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		if t := b.Term(); t != nil {
			for i := range t.Targets {
				t.Targets[i] = remap[t.Targets[i]]
			}
		}
	}
	f.Blocks = kept
}

// useCounts returns the number of uses of each vreg.
func useCounts(f *ir.Func) []int {
	uses := make([]int, f.NumV)
	for _, b := range f.Blocks {
		for i := range b.Ins {
			b.Ins[i].VisitUses(func(v ir.VReg) { uses[v]++ })
		}
	}
	return uses
}

// immOK reports whether op supports an immediate right operand.
func immOK(op ir.Op) bool {
	switch op {
	case ir.Add, ir.Sub, ir.And, ir.Or, ir.Xor, ir.Mul, ir.Cmp, ir.CondCmp,
		ir.Shl, ir.ShrS, ir.ShrU, ir.Rotl, ir.Rotr, ir.Store:
		return true
	}
	return false
}

func foldImmediates(f *ir.Func) {
	uses := useCounts(f)
	for _, b := range f.Blocks {
		// constDef maps vreg -> index of its Const def within this block.
		constDef := map[ir.VReg]int{}
		for i := range b.Ins {
			in := &b.Ins[i]

			// Fold a known-constant B operand into the immediate field.
			if in.B != ir.NoV && immOK(in.Op) && !in.Unsigned {
				if ci, ok := constDef[in.B]; ok && uses[in.B] == 1 {
					cv := b.Ins[ci].Imm
					if cv >= -1<<31 && cv < 1<<31 {
						in.Imm = cv
						uses[in.B]--
						in.B = ir.NoV
						// Shifts by constant are cheap; mul by pow2
						// becomes a shift (both engines do this).
						if in.Op == ir.Mul && cv > 0 && cv&(cv-1) == 0 {
							in.Op = ir.Shl
							in.Imm = int64(bits.TrailingZeros64(uint64(cv)))
						}
					}
				}
			}

			// Fold constant addends into load/store displacements.
			if (in.Op == ir.Load || in.Op == ir.Store) && in.A != ir.NoV {
				// handled in emission via addrInfo; nothing here
				_ = in
			}

			if in.Op == ir.Const {
				constDef[in.Dst] = i
			} else if in.Dst != ir.NoV {
				delete(constDef, in.Dst)
			}
			// Calls and stores end const availability conservatively?
			// Consts are immutable defs; no invalidation needed beyond
			// redefinition, which SSA-ish lowering avoids.
		}
	}
}

// pure reports whether an op has no side effects (safe to delete when dead).
func pure(op ir.Op) bool {
	switch op {
	case ir.Const, ir.FConst, ir.Mov, ir.Add, ir.Sub, ir.Mul,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.ShrS, ir.ShrU, ir.Rotl, ir.Rotr,
		ir.Clz, ir.Ctz, ir.Popcnt, ir.Eqz, ir.Cmp, ir.Select,
		ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FSqrt, ir.FAbs, ir.FNeg,
		ir.FMin, ir.FMax, ir.FCeil, ir.FFloor, ir.FTrunc, ir.FNearest,
		ir.FCmp, ir.ExtS, ir.ExtU, ir.Wrap, ir.I2F, ir.F2F,
		ir.BitcastIF, ir.BitcastFI, ir.GlobalLd, ir.MemSize:
		return true
	}
	return false
}

func dce(f *ir.Func) {
	for round := 0; round < 4; round++ {
		uses := useCounts(f)
		changed := false
		for _, b := range f.Blocks {
			k := 0
			for i := range b.Ins {
				in := b.Ins[i]
				if in.Dst != ir.NoV && uses[in.Dst] == 0 && pure(in.Op) {
					changed = true
					continue
				}
				b.Ins[k] = in
				k++
			}
			b.Ins = b.Ins[:k]
		}
		if !changed {
			return
		}
	}
}
