package codegen_test

// Pins the process-wide parallelism contract of the shared scheduler
// budget: when many modules compile concurrently (the suite cold-start
// shape), the compiles collectively borrow at most the budget's tokens —
// they do not multiply per-module fan-outs — and every artifact is still
// byte-identical to a serial reference compile.

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codegen"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestConcurrentCompilesStayWithinBudget runs 8 concurrent module compiles
// under a pinned budget and asserts two bounds, exactly:
//
//   - the budget's token high-water mark never exceeds its capacity, so the
//     compiles shared one pool rather than each spawning its own workers;
//   - the process's goroutine count never exceeds baseline + callers +
//     capacity: every scheduler-spawned worker holds a token, so the only
//     unbounded goroutines are the 8 callers the test itself creates (plus
//     its one monitor).
func TestConcurrentCompilesStayWithinBudget(t *testing.T) {
	const (
		budget  = 3
		callers = 8
	)
	prevCap := sched.SetSharedCapacity(budget)
	defer sched.SetSharedCapacity(prevCap)
	prevWorkers := codegen.Workers
	codegen.Workers = 0 // scheduler default: as wide as the budget allows
	defer func() { codegen.Workers = prevWorkers }()

	// Reference artifacts, compiled serially before the budget is measured.
	type unit struct {
		cfg  *codegen.EngineConfig
		want []byte
	}
	src := workloads.SPECCPU()[0].Source
	var units []unit
	for _, cfg := range engines() {
		m := buildModule(t, src, cfg)
		units = append(units, unit{cfg, compileAt(t, m, cfg, 1)})
	}

	sched.Shared().ResetPeak()
	baseline := runtime.NumGoroutine()

	// Monitor: samples the goroutine count while the compiles run. It is
	// itself one goroutine on top of the baseline.
	var peakGoroutines atomic.Int64
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := int64(runtime.NumGoroutine())
			for {
				p := peakGoroutines.Load()
				if n <= p || peakGoroutines.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		u := units[c%len(units)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := buildModule(t, src, u.cfg)
			cm, err := codegen.Compile(m, u.cfg)
			if err != nil {
				errs <- err
				return
			}
			cm.CompileTime = 0
			got, err := codegen.EncodeModule(cm)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, u.want) {
				t.Errorf("%s: concurrent budget-bounded compile diverged from serial reference", u.cfg.Name)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-monitorDone
	close(errs)
	for err := range errs {
		t.Fatalf("compile: %v", err)
	}

	if got := sched.Shared().Peak(); got > budget {
		t.Errorf("budget token peak %d exceeds capacity %d", got, budget)
	}
	if got := sched.Shared().InUse(); got != 0 {
		t.Errorf("tokens leaked: InUse = %d after compiles finished", got)
	}
	// baseline + monitor + callers + budget-held workers is the hard upper
	// bound on simultaneously live goroutines.
	limit := int64(baseline + 1 + callers + budget)
	if got := peakGoroutines.Load(); got > limit {
		t.Errorf("peak goroutine count %d exceeds bound %d (baseline %d + monitor 1 + callers %d + budget %d)",
			got, limit, baseline, callers, budget)
	}
}
