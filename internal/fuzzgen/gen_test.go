package fuzzgen

import (
	"bytes"
	"testing"

	"repro/internal/wasm"
)

// Every generated module must validate and survive a byte-identical
// encode/decode round trip: the corpus, the shrinker's cloneModule, and the
// cross-engine oracle all assume both.
func TestGenerateValidatesAndRoundTrips(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		for _, traps := range []bool{false, true} {
			m := Generate(seed, Options{Traps: traps})
			if err := wasm.Validate(m); err != nil {
				t.Fatalf("seed %d traps=%v: generated module invalid: %v", seed, traps, err)
			}
			enc := wasm.Encode(m)
			m2, err := wasm.Decode(enc)
			if err != nil {
				t.Fatalf("seed %d traps=%v: decode of own encoding failed: %v", seed, traps, err)
			}
			if !bytes.Equal(enc, wasm.Encode(m2)) {
				t.Fatalf("seed %d traps=%v: encode/decode round trip not byte-identical", seed, traps)
			}
		}
	}
}

// Same seed ⇒ byte-identical module. Run under -race -count=2 in CI, this
// also pins that Generate shares no mutable state between calls.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		opt := Options{Traps: seed%2 == 0}
		a := wasm.Encode(Generate(seed, opt))
		b := wasm.Encode(Generate(seed, opt))
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two Generate calls produced different bytes", seed)
		}
	}
}

// The generator must exercise its whole grammar: across a modest seed range
// we expect every structural feature to appear at least once. Guards against
// a refactor silently dropping a production (e.g. loops never emitted).
func TestGenerateCoverage(t *testing.T) {
	sawOp := map[wasm.Opcode]bool{}
	sawTrapSite := false
	for seed := uint64(1); seed <= 100; seed++ {
		m := Generate(seed, Options{Traps: true})
		for fi := range m.Funcs {
			for _, in := range m.Funcs[fi].Body {
				sawOp[in.Op] = true
				if in.Op == wasm.OpUnreachable {
					sawTrapSite = true
				}
			}
		}
	}
	for _, op := range []wasm.Opcode{
		wasm.OpBlock, wasm.OpLoop, wasm.OpBrIf, wasm.OpIf, wasm.OpSelect,
		wasm.OpCall, wasm.OpCallIndirect, wasm.OpGlobalGet, wasm.OpGlobalSet,
		wasm.OpI32Load, wasm.OpI32Store, wasm.OpI64Load, wasm.OpI64Store,
		wasm.OpI32DivS, wasm.OpI64DivS, wasm.OpF64Add, wasm.OpMemorySize,
	} {
		if !sawOp[op] {
			t.Errorf("opcode %v never generated across 100 seeds", op)
		}
	}
	if !sawTrapSite {
		t.Error("no unreachable trap site generated across 100 trap-enabled seeds")
	}
}
