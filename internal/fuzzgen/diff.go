package fuzzgen

// The differential oracle. One generated module runs through the reference
// interpreter and then, per engine configuration, through the candidate
// matrix the rest of the repo already pins pairwise:
//
//	predecode/exact   — the default micro-op engine, reference fidelity
//	legacy/exact      — the instruction-at-a-time dispatcher, same code
//	predecode/functional — the fast tier (architectural counters only)
//
// Candidates run through pipeline.Do like every other workload, so the
// oracle also exercises the build cache, the kernel, and the watchdog. The
// agreement contract:
//
//	predecode/exact vs interpreter  same exit code, same trap kind
//	legacy vs predecode (exact)     bit-identical perf counters
//	functional vs exact (predecode) identical architectural counters,
//	                                zero timing counters
//
// Trap kinds, not messages, are compared: each engine words its traps
// differently, and the checked configurations funnel their table-bounds,
// signature, and stack checks to one out-of-line ud2 stub, so a machine
// "unreachable" matches a reference indirect-call or stack trap.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/wasm"
)

// TrapKind is a normalized trap category, comparable across the
// interpreter's and the machine's message vocabularies.
type TrapKind string

// Trap kinds, in classification order.
const (
	TrapNone        TrapKind = ""
	TrapConversion  TrapKind = "bad-conversion"  // float→int of NaN or out-of-range
	TrapDivZero     TrapKind = "div-zero"        // integer division by zero
	TrapOverflow    TrapKind = "overflow"        // INT_MIN / -1
	TrapOOB         TrapKind = "oob-memory"      // linear-memory bounds
	TrapIndirect    TrapKind = "bad-indirect"    // table bounds, null entry, signature
	TrapUnreachable TrapKind = "unreachable"     // unreachable, and every engine-check ud2
	TrapStack       TrapKind = "stack-exhausted" // call depth / stack limit
	TrapFuel        TrapKind = "fuel"            // interpreter fuel or watchdog instruction limit
	TrapOther       TrapKind = "other"
)

// TrapKindOf classifies a trap message from either the reference
// interpreter (wasm.Trap) or the simulator (cpu.TrapError).
func TrapKindOf(msg string) TrapKind {
	switch {
	case msg == "":
		return TrapNone
	case strings.Contains(msg, "conversion"):
		return TrapConversion
	case strings.Contains(msg, "divide by zero"):
		return TrapDivZero
	case strings.Contains(msg, "integer overflow"):
		return TrapOverflow
	case strings.Contains(msg, "out-of-bounds"):
		return TrapOOB
	case strings.Contains(msg, "call_indirect"), strings.Contains(msg, "indirect call"),
		strings.Contains(msg, "table index"), strings.Contains(msg, "null table"),
		strings.Contains(msg, "signature mismatch"):
		return TrapIndirect
	case strings.Contains(msg, "unreachable"):
		return TrapUnreachable
	case strings.Contains(msg, "stack"):
		return TrapStack
	case strings.Contains(msg, "fuel"), strings.Contains(msg, "budget"),
		strings.Contains(msg, "instruction limit"):
		return TrapFuel
	default:
		return TrapOther
	}
}

// TrapMatches reports whether a machine trap kind is consistent with the
// reference interpreter's. Exact matches aside, the checked engine
// configurations implement table-bounds, signature, and stack checks as
// jumps to a shared ud2 stub, so those reference kinds legitimately
// surface as "unreachable" in the machine.
func TrapMatches(machine, ref TrapKind) bool {
	if machine == ref {
		return true
	}
	return machine == TrapUnreachable && (ref == TrapIndirect || ref == TrapStack)
}

// Outcome is one run's observable behavior, in either engine family.
type Outcome struct {
	ExitCode int
	TrapKind TrapKind
	TrapMsg  string
	Stdout   string
	Counters perf.Counters
	HasCtrs  bool  // counters are only observable on non-trapping runs
	Err      error // infrastructure failure (compile rejection, kernel error)
}

func (o *Outcome) String() string {
	switch {
	case o.Err != nil:
		return fmt.Sprintf("error: %v", o.Err)
	case o.TrapKind != TrapNone:
		return fmt.Sprintf("trap[%s]: %s", o.TrapKind, o.TrapMsg)
	default:
		return fmt.Sprintf("exit %d", o.ExitCode)
	}
}

// Divergence is one oracle disagreement: which candidate variant, which
// compared field, and the two sides.
type Divergence struct {
	Variant string // "engine/dispatch/fidelity"
	Field   string // "exit-code", "trap-kind", "counters", "arch-counters", "timing-counters", "stdout", "error"
	Want    string // reference / baseline side
	Got     string // candidate side
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s: %s diverged: want %s, got %s", d.Variant, d.Field, d.Want, d.Got)
}

// Verdict is the oracle's result for one module: the reference outcome,
// every candidate outcome, and the first divergence found (nil = all
// engines agree). Skipped is set when the module cannot be judged (the
// reference ran out of fuel) — not an agreement, not a failure.
type Verdict struct {
	Seed       uint64 // filled by RunSeed; 0 when diffing a raw module
	Reference  *Outcome
	Runs       map[string]*Outcome
	Divergence *Divergence
	Skipped    string
}

// OK reports agreement (a skipped module is not OK and not divergent).
func (v *Verdict) OK() bool { return v.Divergence == nil && v.Skipped == "" }

func (v *Verdict) String() string {
	switch {
	case v.Skipped != "":
		return "skipped: " + v.Skipped
	case v.Divergence != nil:
		return v.Divergence.String()
	default:
		return fmt.Sprintf("agree: %s", v.Reference)
	}
}

// DiffConfig names the candidate engine configurations to oracle against
// the interpreter.
type DiffConfig struct {
	// Engines lists stock engine names; nil means the default oracle
	// matrix (native, chrome, firefox — the asm.js configurations mask
	// addresses instead of bounds-checking, so their out-of-bounds
	// semantics legitimately differ from wasm's).
	Engines []string

	// MaxInsts bounds each candidate run (default 2e9); the reference
	// interpreter gets a proportional fuel budget. Instruction limits, not
	// wall clocks: verdicts stay deterministic under load.
	MaxInsts uint64
}

// DefaultEngines is the stock oracle matrix.
func DefaultEngines() []string { return []string{"native", "chrome", "firefox"} }

// refFuel is the interpreter step budget: generated programs finish in
// thousands of steps, so hitting this means a generator bug, and the module
// is reported Skipped rather than judged.
const refFuel = 50_000_000

// diffArgv is the argv every oracle run uses — fixed so the kernel's
// argument block (which _start folds into the checksum) is identical
// between the reference and every candidate.
var diffArgv = []string{"fuzz"}

// runReference executes the module on the interpreter, replicating the
// kernel loader's contract: the argument block at argsBase with 4-byte
// pointer slots, then _start(argc, argv).
func runReference(m *wasm.Module) (*Outcome, error) {
	inst, err := wasm.Instantiate(m, nil)
	if err != nil {
		return nil, fmt.Errorf("instantiating reference: %w", err)
	}
	inst.MaxSteps = refFuel
	const argsBase = 1024
	lin := inst.Mem.Bytes
	ptrs := argsBase
	off := argsBase + 4*(len(diffArgv)+1)
	for i, a := range diffArgv {
		putU32(lin, ptrs+4*i, uint32(off))
		copy(lin[off:], a)
		lin[off+len(a)] = 0
		off += len(a) + 1
	}
	putU32(lin, ptrs+4*len(diffArgv), 0)
	ret, err := inst.Invoke("_start", uint64(len(diffArgv)), argsBase)
	if err != nil {
		var tr *wasm.Trap
		if errors.As(err, &tr) {
			return &Outcome{ExitCode: 128, TrapKind: TrapKindOf(tr.Msg), TrapMsg: tr.Msg}, nil
		}
		return nil, err
	}
	if len(ret) != 1 {
		return nil, fmt.Errorf("reference _start returned %d values", len(ret))
	}
	return &Outcome{ExitCode: int(int32(ret[0]))}, nil
}

func putU32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

// runCandidate executes the encoded module through the pipeline under one
// engine × dispatch × fidelity variant.
func runCandidate(ctx context.Context, wasmBytes []byte, engine, dispatch, fidelity string, maxInsts uint64) *Outcome {
	req := &pipeline.Request{
		Wasm:     wasmBytes,
		Engine:   engine,
		Dispatch: dispatch,
		Fidelity: fidelity,
		Argv:     diffArgv,
		Limits:   config.Limits{MaxInsts: maxInsts},
	}
	res, err := pipeline.Do(ctx, req)
	if err != nil {
		var te *cpu.TrapError
		if errors.As(err, &te) {
			return &Outcome{ExitCode: 128, TrapKind: TrapKindOf(te.Msg), TrapMsg: te.Msg}
		}
		var to *pipeline.TimeoutError
		if errors.As(err, &to) {
			return &Outcome{ExitCode: 128, TrapKind: TrapFuel, TrapMsg: "instruction limit exceeded"}
		}
		return &Outcome{Err: err}
	}
	return &Outcome{ExitCode: res.ExitCode, Stdout: res.Stdout, Counters: res.Counters, HasCtrs: true}
}

// archEqual compares the architectural counter subset (the functional-tier
// contract: loads, stores, branches, conditional branches, instructions).
func archEqual(a, b perf.Counters) bool {
	return a.Loads == b.Loads && a.Stores == b.Stores &&
		a.Branches == b.Branches && a.CondBranches == b.CondBranches &&
		a.Instructions == b.Instructions
}

// timingZero reports whether every timing counter is zero (the functional
// tier must not fabricate cycles or miss counts).
func timingZero(c perf.Counters) bool {
	return c.Cycles == 0 && c.L1IMisses == 0 && c.L1DMisses == 0 &&
		c.L2Misses == 0 && c.BranchMiss == 0
}

// Diff runs one module through the reference interpreter and the full
// candidate matrix, returning the first divergence found. The error return
// is for oracle infrastructure problems only (an interpreter that cannot
// even instantiate the module); engine disagreements, including compile
// rejections of a valid module, are Divergences.
func Diff(ctx context.Context, m *wasm.Module, cfg DiffConfig) (*Verdict, error) {
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = DefaultEngines()
	}
	maxInsts := cfg.MaxInsts
	if maxInsts == 0 {
		maxInsts = 2_000_000_000
	}
	ref, err := runReference(m)
	if err != nil {
		return nil, err
	}
	v := &Verdict{Reference: ref, Runs: map[string]*Outcome{}}
	if ref.TrapKind == TrapFuel {
		v.Skipped = "reference interpreter ran out of fuel"
		return v, nil
	}
	bytes := wasm.Encode(m)
	diverge := func(variant, field, want, got string) {
		if v.Divergence == nil {
			v.Divergence = &Divergence{Variant: variant, Field: field, Want: want, Got: got}
		}
	}
	for _, eng := range engines {
		exact := runCandidate(ctx, bytes, eng, "predecode", "exact", maxInsts)
		legacy := runCandidate(ctx, bytes, eng, "legacy", "exact", maxInsts)
		functional := runCandidate(ctx, bytes, eng, "predecode", "functional", maxInsts)
		v.Runs[eng+"/predecode/exact"] = exact
		v.Runs[eng+"/legacy/exact"] = legacy
		v.Runs[eng+"/predecode/functional"] = functional

		// Candidate vs reference: behavior. Fixed slice order, not a map:
		// when several variants diverge, the reported one must be
		// deterministic (the shrinker keys on variant+field).
		for _, vo := range []struct {
			variant string
			o       *Outcome
		}{
			{eng + "/predecode/exact", exact},
			{eng + "/legacy/exact", legacy},
			{eng + "/predecode/functional", functional},
		} {
			variant, o := vo.variant, vo.o
			switch {
			case o.Err != nil:
				diverge(variant, "error", ref.String(), o.String())
			case !TrapMatches(o.TrapKind, ref.TrapKind):
				diverge(variant, "trap-kind", ref.String(), o.String())
			case o.TrapKind == TrapNone && o.ExitCode != ref.ExitCode:
				diverge(variant, "exit-code", ref.String(), o.String())
			case o.Stdout != "":
				diverge(variant, "stdout", `""`, fmt.Sprintf("%q", o.Stdout))
			}
		}

		// Legacy vs predecode: bit-identical counters (PR 1's contract).
		if exact.HasCtrs && legacy.HasCtrs && exact.Counters != legacy.Counters {
			diverge(eng+"/legacy/exact", "counters",
				fmt.Sprintf("%+v", exact.Counters), fmt.Sprintf("%+v", legacy.Counters))
		}

		// Functional vs exact: architectural counters identical, timing zero.
		if exact.HasCtrs && functional.HasCtrs {
			if !archEqual(exact.Counters, functional.Counters) {
				diverge(eng+"/predecode/functional", "arch-counters",
					fmt.Sprintf("%+v", exact.Counters), fmt.Sprintf("%+v", functional.Counters))
			} else if !timingZero(functional.Counters) {
				diverge(eng+"/predecode/functional", "timing-counters",
					"all zero", fmt.Sprintf("%+v", functional.Counters))
			}
		}
	}
	return v, nil
}

// RunSeed generates the module for one seed and diffs it: the fuzzing
// loop's unit of work.
func RunSeed(ctx context.Context, seed uint64, opt Options, cfg DiffConfig) (*Verdict, error) {
	v, err := Diff(ctx, Generate(seed, opt), cfg)
	if err != nil {
		return nil, err
	}
	v.Seed = seed
	return v, nil
}
