package fuzzgen

// rng is a splitmix64 stream. The generator deliberately does not use
// math/rand: the corpus and the determinism tests pin "same seed ⇒
// byte-identical module" across Go releases, so the stream must be owned by
// this package, not by the standard library's evolving generators.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangen returns a value in [lo, hi] inclusive.
func (r *rng) rangen(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance reports true pct% of the time.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

func (r *rng) i32() int32 { return int32(r.next()) }
func (r *rng) i64() int64 { return int64(r.next()) }
