package fuzzgen

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wasm"
)

func TestCorpusName(t *testing.T) {
	n := CorpusName([]byte("\x00asm\x01\x00\x00\x00"))
	if filepath.Ext(n) != ".wasm" || len(n) != 12+len(".wasm") {
		t.Fatalf("unexpected corpus name %q", n)
	}
	if n != CorpusName([]byte("\x00asm\x01\x00\x00\x00")) {
		t.Fatal("corpus name not content-stable")
	}
}

func TestWriteCorpus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "corpus")
	b := wasm.Encode(Generate(1, Options{}))
	p, err := WriteCorpus(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(b) {
		t.Fatal("corpus file does not round-trip module bytes")
	}
	if filepath.Base(p) != CorpusName(b) {
		t.Fatalf("corpus path %q not content-addressed", p)
	}
}

// TestCorpusReplay re-oracles every committed corpus module on plain
// `go test ./...`: once a divergence is minimized and committed, the fixed
// engine bug cannot quietly return. The corpus must never be empty — it is
// seeded with generator output covering clean runs and each trap family.
func TestCorpusReplay(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.wasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("regression corpus is empty; reseed testdata/corpus/")
	}
	for _, path := range entries {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := CorpusName(raw); filepath.Base(path) != want {
				t.Errorf("corpus entry misnamed: want %s", want)
			}
			m, err := wasm.Decode(raw)
			if err != nil {
				t.Fatalf("corpus entry does not decode: %v", err)
			}
			if err := wasm.Validate(m); err != nil {
				t.Fatalf("corpus entry does not validate: %v", err)
			}
			v, err := Diff(context.Background(), m, DiffConfig{})
			if err != nil {
				t.Fatalf("oracle infrastructure error: %v", err)
			}
			if !v.OK() {
				t.Errorf("corpus entry diverges: %s", v)
			}
		})
	}
}
