package fuzzgen

import (
	"context"
	"testing"
)

func TestTrapKindOf(t *testing.T) {
	cases := []struct {
		msg  string
		want TrapKind
	}{
		{"", TrapNone},
		{"integer divide by zero", TrapDivZero},
		{"integer overflow", TrapOverflow},
		// The machine words INT_MIN/-1 and bad float→int both with
		// "overflow"; "conversion" must win classification.
		{"integer overflow in conversion to integer", TrapConversion},
		{"invalid conversion to integer", TrapConversion},
		{"out-of-bounds memory access", TrapOOB},
		{"undefined element: call_indirect out of range", TrapIndirect},
		{"indirect call type mismatch", TrapIndirect},
		{"null table entry", TrapIndirect},
		{"unreachable executed (ud2)", TrapUnreachable},
		{"unreachable", TrapUnreachable},
		{"call stack exhausted", TrapStack},
		{"out of fuel", TrapFuel},
		{"some novel failure", TrapOther},
	}
	for _, c := range cases {
		if got := TrapKindOf(c.msg); got != c.want {
			t.Errorf("TrapKindOf(%q) = %s, want %s", c.msg, got, c.want)
		}
	}
}

func TestTrapMatches(t *testing.T) {
	if !TrapMatches(TrapOOB, TrapOOB) {
		t.Error("identical kinds must match")
	}
	// Engine-inserted table and stack checks funnel to a shared ud2 stub.
	if !TrapMatches(TrapUnreachable, TrapIndirect) {
		t.Error("machine ud2 must match reference indirect-call trap")
	}
	if !TrapMatches(TrapUnreachable, TrapStack) {
		t.Error("machine ud2 must match reference stack trap")
	}
	if TrapMatches(TrapIndirect, TrapUnreachable) {
		t.Error("the ud2 tolerance must not apply in reverse")
	}
	if TrapMatches(TrapOOB, TrapDivZero) {
		t.Error("distinct kinds must not match")
	}
}

// A slice of the fuzzing loop runs under plain `go test`: every seed must
// agree across the full engine × dispatch × fidelity matrix. The CI
// fuzz-smoke job pushes the same loop to 300 seeds.
func TestDiffAgreesOnSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle matrix is not short")
	}
	for seed := uint64(1); seed <= 30; seed++ {
		v, err := RunSeed(context.Background(), seed, Options{Traps: seed%2 == 0}, DiffConfig{})
		if err != nil {
			t.Fatalf("seed %d: oracle infrastructure error: %v", seed, err)
		}
		if v.Skipped != "" {
			t.Errorf("seed %d unexpectedly skipped: %s", seed, v.Skipped)
			continue
		}
		if !v.OK() {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// Same seed ⇒ the same verdict, run to run: the oracle must be as
// deterministic as the generator, or CI divergence reports would not
// reproduce locally. Run under -race -count=2 in CI.
func TestDiffDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle matrix is not short")
	}
	for _, seed := range []uint64{3, 12, 20} {
		opt := Options{Traps: seed%2 == 0}
		a, err := RunSeed(context.Background(), seed, opt, DiffConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := RunSeed(context.Background(), seed, opt, DiffConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.String() != b.String() {
			t.Errorf("seed %d: verdict not deterministic:\n  first:  %s\n  second: %s", seed, a, b)
		}
		for variant, oa := range a.Runs {
			ob := b.Runs[variant]
			if ob == nil {
				t.Errorf("seed %d: variant %s missing from second run", seed, variant)
				continue
			}
			if oa.String() != ob.String() || oa.Counters != ob.Counters {
				t.Errorf("seed %d %s: outcomes differ between runs:\n  first:  %s %+v\n  second: %s %+v",
					seed, variant, oa, oa.Counters, ob, ob.Counters)
			}
		}
	}
}
