package fuzzgen

// The shrinker. Given a diverging module and a predicate that re-runs the
// oracle, Shrink greedily minimizes while the predicate holds, in three
// stages iterated to a fixed point:
//
//	1. stub whole function bodies (indices stay stable, so no remapping)
//	2. delete single instructions and whole block spans
//	3. simplify constants toward 0/1 and memory offsets toward 0
//
// Every candidate is re-validated before the predicate sees it, so keep is
// only ever called on modules the engines are required to handle, and the
// committed corpus never contains an invalid module.

import "repro/internal/wasm"

// Shrink returns the smallest module it can reach from m for which keep
// still returns true. keep is called only on validated candidates; m itself
// is never mutated. The result is a fixed point: re-shrinking it with the
// same predicate is a no-op (pinned by TestShrinkFixedPoint).
func Shrink(m *wasm.Module, keep func(*wasm.Module) bool) *wasm.Module {
	cur := cloneModule(m)
	for changed := true; changed; {
		changed = false
		if shrinkStubFuncs(cur, keep) {
			changed = true
		}
		if shrinkDropSegments(cur, keep) {
			changed = true
		}
		if shrinkDeleteInstrs(cur, keep) {
			changed = true
		}
		if shrinkConsts(cur, keep) {
			changed = true
		}
	}
	return cur
}

// cloneModule deep-copies via the binary format: Decode(Encode(m)) is the
// one deep copy the round-trip fuzz harness already pins as faithful.
func cloneModule(m *wasm.Module) *wasm.Module {
	c, err := wasm.Decode(wasm.Encode(m))
	if err != nil {
		// Shrink's inputs come from Generate or the corpus, both of which
		// round-trip; reaching here means the encoder itself regressed.
		panic("fuzzgen: module failed to round-trip: " + err.Error())
	}
	return c
}

// accept validates cand and asks keep; on acceptance the caller adopts it.
func accept(cand *wasm.Module, keep func(*wasm.Module) bool) bool {
	if wasm.Validate(cand) != nil {
		return false
	}
	return keep(cand)
}

// stubBody is the minimal valid body for a signature: one zero constant per
// result, then the frame's end.
func stubBody(ft wasm.FuncType) []wasm.Instr {
	var body []wasm.Instr
	for _, t := range ft.Results {
		switch t {
		case wasm.I32:
			body = append(body, wasm.Instr{Op: wasm.OpI32Const})
		case wasm.I64:
			body = append(body, wasm.Instr{Op: wasm.OpI64Const})
		case wasm.F32:
			body = append(body, wasm.Instr{Op: wasm.OpF32Const})
		default:
			body = append(body, wasm.Instr{Op: wasm.OpF64Const})
		}
	}
	return append(body, wasm.Instr{Op: wasm.OpEnd})
}

func isStub(f *wasm.Func, ft wasm.FuncType) bool {
	return len(f.Locals) == 0 && len(f.Body) == len(ft.Results)+1
}

func shrinkStubFuncs(cur *wasm.Module, keep func(*wasm.Module) bool) bool {
	changed := false
	for fi := range cur.Funcs {
		ft := cur.Types[cur.Funcs[fi].TypeIdx]
		if isStub(&cur.Funcs[fi], ft) {
			continue
		}
		cand := cloneModule(cur)
		cand.Funcs[fi].Locals = nil
		cand.Funcs[fi].Body = stubBody(ft)
		if accept(cand, keep) {
			*cur = *cand
			changed = true
		}
	}
	return changed
}

func shrinkDropSegments(cur *wasm.Module, keep func(*wasm.Module) bool) bool {
	changed := false
	for di := 0; di < len(cur.Data); {
		cand := cloneModule(cur)
		cand.Data = append(cand.Data[:di:di], cand.Data[di+1:]...)
		if accept(cand, keep) {
			*cur = *cand
			changed = true
		} else {
			di++
		}
	}
	return changed
}

// blockSpan returns the index one past the End matching the block opener at
// i (which must be Block, Loop, or If), or -1 on malformed nesting.
func blockSpan(body []wasm.Instr, i int) int {
	depth := 0
	for j := i; j < len(body); j++ {
		switch body[j].Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			depth++
		case wasm.OpEnd:
			depth--
			if depth == 0 {
				return j + 1
			}
		}
	}
	return -1
}

func shrinkDeleteInstrs(cur *wasm.Module, keep func(*wasm.Module) bool) bool {
	changed := false
	for fi := range cur.Funcs {
		for i := 0; i < len(cur.Funcs[fi].Body); {
			in := cur.Funcs[fi].Body[i]
			end := i + 1
			switch in.Op {
			case wasm.OpEnd, wasm.OpElse:
				// Structural; only removable as part of their block span.
				i++
				continue
			case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
				end = blockSpan(cur.Funcs[fi].Body, i)
				if end < 0 {
					i++
					continue
				}
			}
			cand := cloneModule(cur)
			b := cand.Funcs[fi].Body
			cand.Funcs[fi].Body = append(b[:i:i], b[end:]...)
			if accept(cand, keep) {
				*cur = *cand
				changed = true
			} else {
				i++
			}
		}
	}
	return changed
}

func shrinkConsts(cur *wasm.Module, keep func(*wasm.Module) bool) bool {
	changed := false
	try := func(mutate func(m *wasm.Module)) {
		cand := cloneModule(cur)
		mutate(cand)
		if accept(cand, keep) {
			*cur = *cand
			changed = true
		}
	}
	for fi := range cur.Funcs {
		for i := range cur.Funcs[fi].Body {
			in := cur.Funcs[fi].Body[i]
			switch in.Op {
			case wasm.OpI32Const, wasm.OpI64Const:
				// 0 and 1 are terminal: a constant already there is never
				// touched again, so the stage cannot oscillate 0↔1.
				if in.I64 == 0 || in.I64 == 1 {
					break
				}
				for _, v := range []int64{0, 1} {
					fi, i, v := fi, i, v
					try(func(m *wasm.Module) { m.Funcs[fi].Body[i].I64 = v })
					if cur.Funcs[fi].Body[i].I64 == v {
						break
					}
				}
			case wasm.OpF32Const, wasm.OpF64Const:
				if in.F64 != 0 {
					fi, i := fi, i
					try(func(m *wasm.Module) { m.Funcs[fi].Body[i].F64 = 0 })
				}
			}
			if in.Op.IsMemAccess() && in.Offset != 0 {
				fi, i := fi, i
				try(func(m *wasm.Module) { m.Funcs[fi].Body[i].Offset = 0 })
			}
		}
	}
	return changed
}
