package fuzzgen

// The regression corpus. When the fuzzing loop finds a divergence, the
// shrunken module is written under internal/fuzzgen/testdata/corpus/ and
// committed; TestCorpusReplay then re-oracles every entry on plain `go
// test ./...` forever after, so a fixed engine bug cannot quietly return.
// Entry names are content-addressed, so the same divergence found twice
// lands on the same file.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
)

// CorpusName is the canonical file name for a corpus module: the first 12
// hex digits of its content hash.
func CorpusName(moduleBytes []byte) string {
	sum := sha256.Sum256(moduleBytes)
	return hex.EncodeToString(sum[:6]) + ".wasm"
}

// WriteCorpus writes an encoded module into dir under its content-addressed
// name, creating dir as needed, and returns the path.
func WriteCorpus(dir string, moduleBytes []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, CorpusName(moduleBytes))
	if err := os.WriteFile(path, moduleBytes, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
