// Package fuzzgen generates random-but-valid WebAssembly modules and checks
// them differentially across the reproduction's three execution engines: the
// reference interpreter (internal/wasm), the legacy instruction-at-a-time
// x86 simulator, and the pre-decoded micro-op engine (internal/cpu), each
// under the paper's modeled engine configurations.
//
// The generator is wasm-smith-style structured generation, not byte
// mutation: every module it emits passes wasm.Validate by construction, so
// fuzzing time is spent exercising codegen and execution semantics rather
// than the decoder's error paths (the decoder gets its own native go-fuzz
// harness in internal/wasm). Generation is fully deterministic from the
// seed — same seed, same bytes — which is what lets a divergence be
// reproduced from its seed alone and a minimized module be committed as a
// forever-replayed corpus entry.
//
// Generated programs observe their own behavior: _start folds every call
// result, every global, memory.size, and a window of linear memory into a
// 32-bit FNV-style checksum and returns it as the process exit code, so the
// differential oracle needs nothing beyond the Result every engine already
// reports. f64 values are NaN-canonicalized before folding. Programs are
// deterministic and terminating by construction: loops are counter-bounded
// with a single conditional back edge, the call graph is a DAG (_start →
// mids → leaves), and the funcref table holds only leaf functions of one
// shared signature, so an in-bounds call_indirect can never trap or recurse.
// Division and remainder operands are masked to non-zero positive divisors;
// float→int truncation appears only at deliberate trap sites.
package fuzzgen

import (
	"math"

	"repro/internal/wasm"
)

// Options tune one generated module.
type Options struct {
	// Traps allows one deliberate trap site (out-of-bounds access,
	// division trap, invalid conversion, table miss, unreachable) to be
	// planted in _start. Without it, generated programs run to completion
	// unless a real engine bug makes them trap.
	Traps bool
}

// Module layout constants shared with the differential oracle's reference
// runner.
const (
	memMinPages = 2 // linear memory at startup: 128 KiB
	memMaxPages = 4 // explicit max, so memory.grow agrees across engines

	// inBoundsMask keeps computed addresses inside the always-present
	// first two pages (offsets stay < 256, access sizes ≤ 8).
	inBoundsMask = 0xFFFF

	// oobBase is one byte past the largest possible memory (memMaxPages),
	// so a deliberate out-of-bounds access traps even after memory.grow.
	oobBase = memMaxPages * wasm.PageSize

	// canonNaN is the canonical NaN bit pattern folded in place of any NaN
	// an f64 expression produces.
	canonNaN = 0x7FF8000000000000

	// fnvPrime/fnvBasis drive the checksum fold.
	fnvPrime = 16777619
	fnvBasis = 0x811c9dc5
)

// indirectSig is the one signature every table entry shares: call_indirect
// through an in-bounds slot can therefore never signature-mismatch, which
// matters because only the checked engine configurations trap on mismatch.
var indirectSig = wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}

var valTypes = []wasm.ValType{wasm.I32, wasm.I64, wasm.F64}

type funcInfo struct {
	idx uint32
	ft  wasm.FuncType
}

type gen struct {
	r   *rng
	b   *wasm.ModuleBuilder
	opt Options

	globals   []wasm.ValType // type of each module global, by index
	tableSize int32
	leaves    []funcInfo // call nothing; table candidates
	mids      []funcInfo // call leaves, directly and through the table
}

// Generate builds one valid module from seed. Identical seed and options
// produce a byte-identical module (pinned by TestGenerateDeterministic).
func Generate(seed uint64, opt Options) *wasm.Module {
	g := &gen{r: newRNG(seed), b: wasm.NewModuleBuilder(), opt: opt}

	g.b.Memory(memMinPages, memMaxPages)
	data := make([]byte, g.r.rangen(64, 256))
	for i := range data {
		data[i] = byte(g.r.next())
	}
	g.b.Data(0, data)
	if g.r.chance(50) {
		more := make([]byte, g.r.rangen(16, 64))
		for i := range more {
			more[i] = byte(g.r.next())
		}
		g.b.Data(int32(g.r.rangen(0x100, 0x1000)), more)
	}

	// Global 0 is always a mutable i32: the native configuration promotes
	// it to the shadow-stack-pointer register, and that promotion assumes
	// an integer global there.
	g.b.GlobalI32(int32(g.r.rangen(0, 1<<16)))
	g.globals = append(g.globals, wasm.I32)
	for i, n := 0, g.r.rangen(2, 5); i < n; i++ {
		t := valTypes[g.r.intn(len(valTypes))]
		switch t {
		case wasm.I32:
			g.b.Global(wasm.I32, true, wasm.Instr{Op: wasm.OpI32Const, I64: int64(g.r.i32())})
		case wasm.I64:
			g.b.Global(wasm.I64, true, wasm.Instr{Op: wasm.OpI64Const, I64: g.r.i64()})
		case wasm.F64:
			g.b.Global(wasm.F64, true, wasm.Instr{Op: wasm.OpF64Const, F64: g.constF64()})
		}
		g.globals = append(g.globals, t)
	}

	// Leaves first (the table and the mids reference them). The first two
	// are forced to the shared indirect signature so the table is never
	// empty of candidates.
	nLeaves := g.r.rangen(3, 6)
	for i := 0; i < nLeaves; i++ {
		ft := g.randSig(3)
		if i < 2 {
			ft = indirectSig
		}
		g.leaves = append(g.leaves, g.genFunc("", ft, false, 60))
	}

	// Funcref table: power-of-two size so in-bounds indices are one mask.
	g.tableSize = int32(8 << g.r.intn(2))
	g.b.Table(uint32(g.tableSize))
	var cands []uint32
	for _, f := range g.leaves {
		if f.ft.Equal(indirectSig) {
			cands = append(cands, f.idx)
		}
	}
	fill := int(g.tableSize)
	if g.opt.Traps && g.r.chance(25) {
		// Leave a tail of null slots: hitting one is a consistent trap in
		// every engine (null entry / poisoned entry / failed sig check).
		fill -= g.r.rangen(1, 4)
	}
	slots := make([]uint32, fill)
	for i := range slots {
		slots[i] = cands[i%len(cands)]
	}
	g.b.Elem(0, slots)

	for i, n := 0, g.r.rangen(1, 3); i < n; i++ {
		g.mids = append(g.mids, g.genFunc("", g.randSig(2), true, 140))
	}

	g.genStart()
	return g.b.Module()
}

// randSig returns a random signature with up to maxParams parameters and
// exactly one result.
func (g *gen) randSig(maxParams int) wasm.FuncType {
	ft := wasm.FuncType{Results: []wasm.ValType{valTypes[g.r.intn(len(valTypes))]}}
	for i, n := 0, g.r.intn(maxParams+1); i < n; i++ {
		ft.Params = append(ft.Params, valTypes[g.r.intn(len(valTypes))])
	}
	return ft
}

func (g *gen) globalsOf(t wasm.ValType) []uint32 {
	var out []uint32
	for i, gt := range g.globals {
		if gt == t {
			out = append(out, uint32(i))
		}
	}
	return out
}

func (g *gen) constF64() float64 {
	pool := []float64{0, 1, -1, 0.5, -2.25, 3.141592653589793, 1e10, -1e-10, 65536.0}
	switch g.r.intn(10) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1 - 2*g.r.intn(2))
	case 2, 3, 4:
		// A random finite double built from a random mantissa and a tame
		// exponent, so arithmetic stays finite often enough to be
		// interesting.
		return float64(g.r.i64()%(1<<40)) / float64(1+g.r.intn(1000))
	default:
		return pool[g.r.intn(len(pool))]
	}
}

func (g *gen) constI32() int32 {
	pool := []int32{0, 1, -1, 2, 0xFF, 0x7FFF, math.MaxInt32, math.MinInt32, 0x10000}
	if g.r.chance(40) {
		return pool[g.r.intn(len(pool))]
	}
	if g.r.chance(50) {
		return int32(g.r.intn(1 << 16))
	}
	return g.r.i32()
}

func (g *gen) constI64() int64 {
	pool := []int64{0, 1, -1, 0xFFFF, math.MaxInt64, math.MinInt64, 1 << 32, -(1 << 40)}
	if g.r.chance(40) {
		return pool[g.r.intn(len(pool))]
	}
	if g.r.chance(50) {
		return int64(g.r.intn(1 << 20))
	}
	return g.r.i64()
}

// genFunc emits one leaf or mid function: a few statements, then one
// expression of the result type.
func (g *gen) genFunc(name string, ft wasm.FuncType, canCall bool, budget int) funcInfo {
	fb := g.b.Func(name, ft)
	c := g.newFctx(fb, ft, canCall, budget)
	c.stmts(g.r.rangen(1, 4))
	c.ex(ft.Results[0], g.r.rangen(2, 4))
	return funcInfo{idx: fb.Index(), ft: ft}
}

// fctx is per-function generation state.
type fctx struct {
	g       *gen
	fb      *wasm.FuncBuilder
	types   []wasm.ValType // params then locals, by index
	canCall bool
	budget  int
	labels  []bool // open statement-level labels, innermost last; true = loop
	loops   int    // current loop nesting

	// reserved marks locals random statements must not write — loop
	// counters, whose bound is the termination guarantee.
	reserved map[uint32]bool
}

func (g *gen) newFctx(fb *wasm.FuncBuilder, ft wasm.FuncType, canCall bool, budget int) *fctx {
	c := &fctx{g: g, fb: fb, canCall: canCall, budget: budget, reserved: map[uint32]bool{}}
	c.types = append(c.types, ft.Params...)
	for i, n := 0, g.r.rangen(1, 3); i < n; i++ {
		c.addLocal(valTypes[g.r.intn(len(valTypes))])
	}
	return c
}

func (c *fctx) addLocal(t wasm.ValType) uint32 {
	idx := c.fb.AddLocal(t)
	c.types = append(c.types, t)
	return idx
}

// spend charges n instructions against the budget; when it runs out,
// expression generation degenerates to terminals and statements to no-ops.
func (c *fctx) spend(n int) bool {
	c.budget -= n
	return c.budget >= 0
}

func (c *fctx) localsOf(t wasm.ValType) []uint32 {
	var out []uint32
	for i, lt := range c.types {
		if lt == t {
			out = append(out, uint32(i))
		}
	}
	return out
}

// terminal pushes one value of type t with no recursion.
func (c *fctx) terminal(t wasm.ValType) {
	r := c.g.r
	if locs := c.localsOf(t); len(locs) > 0 && r.chance(45) {
		c.fb.LocalGet(locs[r.intn(len(locs))])
		return
	}
	if globs := c.g.globalsOf(t); len(globs) > 0 && r.chance(40) {
		c.fb.GlobalGet(globs[r.intn(len(globs))])
		return
	}
	switch t {
	case wasm.I32:
		c.fb.I32Const(c.g.constI32())
	case wasm.I64:
		c.fb.I64Const(c.g.constI64())
	default:
		c.fb.F64Const(c.g.constF64())
	}
}

// ex pushes one expression of type t, recursing at most depth levels.
func (c *fctx) ex(t wasm.ValType, depth int) {
	if depth <= 0 || !c.spend(1) {
		c.terminal(t)
		return
	}
	switch t {
	case wasm.I32:
		c.exI32(depth)
	case wasm.I64:
		c.exI64(depth)
	default:
		c.exF64(depth)
	}
}

// addr pushes an in-bounds address: any i32 expression masked into the
// always-present first two pages.
func (c *fctx) addr() {
	c.ex(wasm.I32, 2)
	c.fb.I32Const(inBoundsMask)
	c.fb.Op(wasm.OpI32And)
}

func (c *fctx) memOffset() uint32 { return uint32(c.g.r.intn(256)) }

var (
	i32Bins   = []wasm.Opcode{wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor, wasm.OpI32Shl, wasm.OpI32ShrS, wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr}
	i32Divs   = []wasm.Opcode{wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU}
	i32Cmps   = []wasm.Opcode{wasm.OpI32Eq, wasm.OpI32Ne, wasm.OpI32LtS, wasm.OpI32LtU, wasm.OpI32GtS, wasm.OpI32GtU, wasm.OpI32LeS, wasm.OpI32LeU, wasm.OpI32GeS, wasm.OpI32GeU}
	i64Bins   = []wasm.Opcode{wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor, wasm.OpI64Shl, wasm.OpI64ShrS, wasm.OpI64ShrU, wasm.OpI64Rotl, wasm.OpI64Rotr}
	i64Divs   = []wasm.Opcode{wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU}
	i64Cmps   = []wasm.Opcode{wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LtU, wasm.OpI64GtS, wasm.OpI64GtU, wasm.OpI64LeS, wasm.OpI64LeU, wasm.OpI64GeS, wasm.OpI64GeU}
	f64Bins   = []wasm.Opcode{wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div, wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign}
	f64Cmps   = []wasm.Opcode{wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge}
	f64Uns    = []wasm.Opcode{wasm.OpF64Abs, wasm.OpF64Neg, wasm.OpF64Ceil, wasm.OpF64Floor, wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt}
	i32Loads  = []wasm.Opcode{wasm.OpI32Load, wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI32Load16S, wasm.OpI32Load16U}
	i64Loads  = []wasm.Opcode{wasm.OpI64Load, wasm.OpI64Load8S, wasm.OpI64Load8U, wasm.OpI64Load16S, wasm.OpI64Load16U, wasm.OpI64Load32S, wasm.OpI64Load32U}
	i32Stores = []wasm.Opcode{wasm.OpI32Store, wasm.OpI32Store8, wasm.OpI32Store16}
	i64Stores = []wasm.Opcode{wasm.OpI64Store, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32}
)

func pick(r *rng, ops []wasm.Opcode) wasm.Opcode { return ops[r.intn(len(ops))] }

// guardedDiv pushes dividend ÷ divisor where the divisor is forced into
// [1, 255]: wasm division traps on zero divisors and on INT_MIN/-1, and
// those traps belong to deliberate trap sites, not arithmetic noise.
func (c *fctx) guardedDiv(t wasm.ValType, depth int) {
	c.ex(t, depth-1)
	c.ex(t, depth-1)
	if t == wasm.I32 {
		c.fb.I32Const(0xFF)
		c.fb.Op(wasm.OpI32And)
		c.fb.I32Const(1)
		c.fb.Op(wasm.OpI32Or)
		c.fb.Op(pick(c.g.r, i32Divs))
	} else {
		c.fb.I64Const(0xFF)
		c.fb.Op(wasm.OpI64And)
		c.fb.I64Const(1)
		c.fb.Op(wasm.OpI64Or)
		c.fb.Op(pick(c.g.r, i64Divs))
	}
}

func (c *fctx) ifExpr(t wasm.ValType, depth int) {
	c.ex(wasm.I32, depth-1)
	c.fb.If(wasm.BlockOf(t))
	c.ex(t, depth-1)
	c.fb.Else()
	c.ex(t, depth-1)
	c.fb.End()
}

func (c *fctx) selectExpr(t wasm.ValType, depth int) {
	c.ex(t, depth-1)
	c.ex(t, depth-1)
	c.ex(wasm.I32, depth-1)
	c.fb.Op(wasm.OpSelect)
}

// callLeaf pushes a call to a leaf returning t; false if no such leaf.
func (c *fctx) callLeaf(t wasm.ValType, depth int) bool {
	if !c.canCall {
		return false
	}
	var cands []funcInfo
	for _, f := range c.g.leaves {
		if f.ft.Results[0] == t {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return false
	}
	f := cands[c.g.r.intn(len(cands))]
	for _, p := range f.ft.Params {
		c.ex(p, min(depth-1, 2))
	}
	c.fb.Call(f.idx)
	return true
}

// callIndirect pushes an in-bounds call through the table (shared
// signature, so it returns i32 and can never mismatch).
func (c *fctx) callIndirect(depth int) {
	c.ex(wasm.I32, min(depth-1, 2)) // the one argument
	c.ex(wasm.I32, min(depth-1, 2))
	c.fb.I32Const(c.g.tableSize - 1)
	c.fb.Op(wasm.OpI32And)
	c.fb.CallIndirect(indirectSig)
}

func (c *fctx) exI32(depth int) {
	r := c.g.r
	switch r.intn(20) {
	case 0, 1, 2, 3, 4:
		c.ex(wasm.I32, depth-1)
		c.ex(wasm.I32, depth-1)
		c.fb.Op(pick(r, i32Bins))
	case 5:
		c.guardedDiv(wasm.I32, depth)
	case 6:
		c.ex(wasm.I32, depth-1)
		c.fb.Op([]wasm.Opcode{wasm.OpI32Clz, wasm.OpI32Ctz, wasm.OpI32Popcnt, wasm.OpI32Eqz}[r.intn(4)])
	case 7:
		c.ex(wasm.I32, depth-1)
		c.ex(wasm.I32, depth-1)
		c.fb.Op(pick(r, i32Cmps))
	case 8:
		c.ex(wasm.I64, depth-1)
		c.ex(wasm.I64, depth-1)
		c.fb.Op(pick(r, i64Cmps))
	case 9:
		c.ex(wasm.F64, depth-1)
		c.ex(wasm.F64, depth-1)
		c.fb.Op(pick(r, f64Cmps))
	case 10:
		c.ex(wasm.I64, depth-1)
		c.fb.Op(wasm.OpI32WrapI64)
	case 11:
		c.ex(wasm.I64, depth-1)
		c.fb.Op(wasm.OpI64Eqz)
	case 12, 13:
		c.addr()
		c.fb.Load(pick(r, i32Loads), c.memOffset())
	case 14:
		c.selectExpr(wasm.I32, depth)
	case 15:
		c.ifExpr(wasm.I32, depth)
	case 16:
		if !c.callLeaf(wasm.I32, depth) {
			c.terminal(wasm.I32)
		}
	case 17:
		if c.canCall {
			c.callIndirect(depth)
		} else {
			c.terminal(wasm.I32)
		}
	case 18:
		c.fb.Op(wasm.OpMemorySize)
	default:
		c.terminal(wasm.I32)
	}
}

func (c *fctx) exI64(depth int) {
	r := c.g.r
	switch r.intn(16) {
	case 0, 1, 2, 3, 4:
		c.ex(wasm.I64, depth-1)
		c.ex(wasm.I64, depth-1)
		c.fb.Op(pick(r, i64Bins))
	case 5:
		c.guardedDiv(wasm.I64, depth)
	case 6:
		c.ex(wasm.I64, depth-1)
		c.fb.Op([]wasm.Opcode{wasm.OpI64Clz, wasm.OpI64Ctz, wasm.OpI64Popcnt}[r.intn(3)])
	case 7, 8:
		c.ex(wasm.I32, depth-1)
		c.fb.Op([]wasm.Opcode{wasm.OpI64ExtendI32S, wasm.OpI64ExtendI32U}[r.intn(2)])
	case 9:
		c.ex(wasm.F64, depth-1)
		c.fb.Op(wasm.OpI64ReinterpretF64)
	case 10, 11:
		c.addr()
		c.fb.Load(pick(r, i64Loads), c.memOffset())
	case 12:
		c.selectExpr(wasm.I64, depth)
	case 13:
		c.ifExpr(wasm.I64, depth)
	case 14:
		if !c.callLeaf(wasm.I64, depth) {
			c.terminal(wasm.I64)
		}
	default:
		c.terminal(wasm.I64)
	}
}

func (c *fctx) exF64(depth int) {
	r := c.g.r
	switch r.intn(16) {
	case 0, 1, 2, 3:
		c.ex(wasm.F64, depth-1)
		c.ex(wasm.F64, depth-1)
		c.fb.Op(pick(r, f64Bins))
	case 4, 5:
		c.ex(wasm.F64, depth-1)
		c.fb.Op(pick(r, f64Uns))
	case 6, 7:
		c.ex(wasm.I32, depth-1)
		c.fb.Op([]wasm.Opcode{wasm.OpF64ConvertI32S, wasm.OpF64ConvertI32U}[r.intn(2)])
	case 8:
		c.ex(wasm.I64, depth-1)
		c.fb.Op([]wasm.Opcode{wasm.OpF64ConvertI64S, wasm.OpF64ConvertI64U}[r.intn(2)])
	case 9:
		c.ex(wasm.I64, depth-1)
		c.fb.Op(wasm.OpF64ReinterpretI64)
	case 10, 11:
		c.addr()
		c.fb.Load(wasm.OpF64Load, c.memOffset())
	case 12:
		c.selectExpr(wasm.F64, depth)
	case 13:
		c.ifExpr(wasm.F64, depth)
	case 14:
		if !c.callLeaf(wasm.F64, depth) {
			c.terminal(wasm.F64)
		}
	default:
		c.terminal(wasm.F64)
	}
}

// brTargets returns the relative depths of open labels a random branch may
// target: void blocks and ifs, never loops (an extra back edge could bypass
// the counter decrement and unbound the loop).
func (c *fctx) brTargets() []uint32 {
	var out []uint32
	for d := 0; d < len(c.labels); d++ {
		if !c.labels[len(c.labels)-1-d] {
			out = append(out, uint32(d))
		}
	}
	return out
}

func (c *fctx) stmts(n int) {
	for i := 0; i < n; i++ {
		c.stmt()
	}
}

func (c *fctx) stmt() {
	r := c.g.r
	if !c.spend(3) {
		return
	}
	switch r.intn(13) {
	case 0, 1:
		var writable []uint32
		for i := range c.types {
			if !c.reserved[uint32(i)] {
				writable = append(writable, uint32(i))
			}
		}
		if len(writable) == 0 {
			c.fb.Op(wasm.OpNop)
			return
		}
		i := writable[r.intn(len(writable))]
		c.ex(c.types[i], 3)
		c.fb.LocalSet(i)
	case 2:
		gi := r.intn(len(c.g.globals))
		c.ex(c.g.globals[gi], 3)
		c.fb.GlobalSet(uint32(gi))
	case 3, 4:
		c.addr()
		switch valTypes[r.intn(len(valTypes))] {
		case wasm.I32:
			c.ex(wasm.I32, 2)
			c.fb.Store(pick(r, i32Stores), c.memOffset())
		case wasm.I64:
			c.ex(wasm.I64, 2)
			c.fb.Store(pick(r, i64Stores), c.memOffset())
		default:
			c.ex(wasm.F64, 2)
			c.fb.Store(wasm.OpF64Store, c.memOffset())
		}
	case 5:
		c.ex(valTypes[r.intn(len(valTypes))], 3)
		c.fb.Op(wasm.OpDrop)
	case 6:
		c.ex(wasm.I32, 2)
		c.fb.If(wasm.BlockVoid)
		c.labels = append(c.labels, false)
		c.stmts(r.rangen(1, 2))
		if r.chance(50) {
			c.fb.Else()
			c.stmts(r.rangen(1, 2))
		}
		c.labels = c.labels[:len(c.labels)-1]
		c.fb.End()
	case 7:
		c.fb.Block(wasm.BlockVoid)
		c.labels = append(c.labels, false)
		c.stmts(r.rangen(1, 3))
		c.labels = c.labels[:len(c.labels)-1]
		c.fb.End()
	case 8:
		if c.loops >= 2 {
			c.fb.Op(wasm.OpNop)
			return
		}
		c.boundedLoop()
	case 9:
		ts := c.brTargets()
		if len(ts) == 0 {
			c.fb.Op(wasm.OpNop)
			return
		}
		c.ex(wasm.I32, 2)
		c.fb.BrIf(ts[r.intn(len(ts))])
	case 10:
		ts := c.brTargets()
		if len(ts) == 0 {
			c.fb.Op(wasm.OpNop)
			return
		}
		tbl := make([]uint32, r.rangen(2, 4)+1) // final entry is the default
		for i := range tbl {
			tbl[i] = ts[r.intn(len(ts))]
		}
		c.ex(wasm.I32, 2)
		c.fb.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: tbl})
	case 11:
		if c.canCall && c.callLeaf(valTypes[r.intn(len(valTypes))], 3) {
			c.fb.Op(wasm.OpDrop)
			return
		}
		c.fb.Op(wasm.OpNop)
	default:
		c.fb.Op(wasm.OpNop)
	}
}

// boundedLoop emits the canonical terminating loop: a fresh counter local
// set to 1..8, a body of statements, then the single decrement-and-test
// back edge.
func (c *fctx) boundedLoop() {
	cnt := c.addLocal(wasm.I32)
	c.reserved[cnt] = true
	c.fb.I32Const(int32(c.g.r.rangen(1, 8)))
	c.fb.LocalSet(cnt)
	c.fb.Loop(wasm.BlockVoid)
	c.labels = append(c.labels, true)
	c.loops++
	c.stmts(c.g.r.rangen(1, 3))
	c.loops--
	c.fb.LocalGet(cnt)
	c.fb.I32Const(1)
	c.fb.Op(wasm.OpI32Sub)
	c.fb.LocalTee(cnt)
	c.fb.BrIf(0)
	c.labels = c.labels[:len(c.labels)-1]
	c.fb.End()
}

// trapSite plants one deliberate trap. Every kind traps in the reference
// interpreter and in both machine dispatchers under every engine
// configuration (the trap *message* differs per engine; TrapKindOf
// normalizes them).
func (c *fctx) trapSite() {
	r := c.g.r
	fb := c.fb
	switch r.intn(9) {
	case 0: // i32 division by zero
		fb.I32Const(c.g.constI32())
		fb.I32Const(0)
		fb.Op(pick(r, i32Divs))
		fb.Op(wasm.OpDrop)
	case 1: // i64 division by zero
		fb.I64Const(c.g.constI64())
		fb.I64Const(0)
		fb.Op(pick(r, i64Divs))
		fb.Op(wasm.OpDrop)
	case 2: // INT_MIN / -1 overflow
		fb.I32Const(math.MinInt32)
		fb.I32Const(-1)
		fb.Op(wasm.OpI32DivS)
		fb.Op(wasm.OpDrop)
	case 3: // INT64_MIN / -1 overflow
		fb.I64Const(math.MinInt64)
		fb.I64Const(-1)
		fb.Op(wasm.OpI64DivS)
		fb.Op(wasm.OpDrop)
	case 4: // out-of-bounds load, beyond any growable memory
		fb.I32Const(int32(oobBase + r.intn(1<<16)))
		fb.Load(pick(r, i32Loads), c.memOffset())
		fb.Op(wasm.OpDrop)
	case 5: // out-of-bounds store
		fb.I32Const(int32(oobBase + r.intn(1<<16)))
		c.ex(wasm.I32, 1)
		fb.Store(pick(r, i32Stores), c.memOffset())
	case 6: // unreachable
		fb.Op(wasm.OpUnreachable)
	case 7: // call_indirect out of table bounds
		fb.I32Const(c.g.constI32())
		fb.I32Const(c.g.tableSize + int32(r.intn(4096)))
		fb.CallIndirect(indirectSig)
		fb.Op(wasm.OpDrop)
	default: // invalid float→int conversion (NaN or overflow)
		fb.F64Const([]float64{math.NaN(), 1e300, -1e300, 3e9}[r.intn(4)])
		fb.Op([]wasm.Opcode{wasm.OpI32TruncF64S, wasm.OpI32TruncF64U}[r.intn(2)])
		fb.Op(wasm.OpDrop)
	}
}

// genStart emits the exported _start(argc, argv) → checksum entry point:
// seed the accumulator from the arguments, run random statements (and, with
// Options.Traps, possibly one deliberate trap), then fold every mid's
// result, a few leaf calls, an indirect call, every global, memory.size,
// and the first 64 bytes of linear memory. The returned i32 is the process
// exit code — the one observable the oracle compares across engines, so
// everything the program computed funnels into it.
func (g *gen) genStart() {
	ft := wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}}
	fb := g.b.Func("_start", ft)
	c := g.newFctx(fb, ft, true, 400)
	acc := c.addLocal(wasm.I32)
	ltmp := c.addLocal(wasm.I64)
	ftmp := c.addLocal(wasm.F64)
	r := g.r

	// fold: acc = (acc * FNV_prime) ^ value.
	fold := func(push func()) {
		fb.LocalGet(acc)
		fb.I32Const(fnvPrime)
		fb.Op(wasm.OpI32Mul)
		push()
		fb.Op(wasm.OpI32Xor)
		fb.LocalSet(acc)
	}
	foldI64 := func(push func()) {
		push()
		fb.LocalSet(ltmp)
		fold(func() { fb.LocalGet(ltmp); fb.Op(wasm.OpI32WrapI64) })
		fold(func() {
			fb.LocalGet(ltmp)
			fb.I64Const(32)
			fb.Op(wasm.OpI64ShrU)
			fb.Op(wasm.OpI32WrapI64)
		})
	}
	foldF64 := func(push func()) {
		push()
		fb.LocalSet(ftmp)
		foldI64(func() {
			// select(bits(v), canonical-NaN, v == v): NaN payloads are not
			// part of the oracle's contract, so canonicalize before folding.
			fb.LocalGet(ftmp)
			fb.Op(wasm.OpI64ReinterpretF64)
			fb.I64Const(canonNaN)
			fb.LocalGet(ftmp)
			fb.LocalGet(ftmp)
			fb.Op(wasm.OpF64Eq)
			fb.Op(wasm.OpSelect)
		})
	}
	foldCall := func(f funcInfo) {
		push := func() {
			for _, p := range f.ft.Params {
				c.ex(p, 2)
			}
			fb.Call(f.idx)
		}
		switch f.ft.Results[0] {
		case wasm.I32:
			fold(push)
		case wasm.I64:
			foldI64(push)
		default:
			foldF64(push)
		}
	}

	var basis uint32 = fnvBasis
	fb.I32Const(int32(basis))
	fb.LocalSet(acc)
	fold(func() { fb.LocalGet(0) }) // argc
	fold(func() {                   // first argv pointer
		fb.LocalGet(1)
		fb.I32Const(inBoundsMask)
		fb.Op(wasm.OpI32And)
		fb.Load(wasm.OpI32Load, 0)
	})

	nst := r.rangen(3, 8)
	trapAt := -1
	if g.opt.Traps && r.chance(35) {
		trapAt = r.intn(nst + 1)
	}
	for i := 0; i < nst; i++ {
		if i == trapAt {
			c.trapSite()
		}
		c.stmt()
	}
	if trapAt == nst {
		c.trapSite()
	}

	for _, f := range g.mids {
		foldCall(f)
	}
	for i, n := 0, r.rangen(1, 3); i < n; i++ {
		foldCall(g.leaves[r.intn(len(g.leaves))])
	}
	fold(func() { c.callIndirect(3) })

	for gi, t := range g.globals {
		idx := uint32(gi)
		switch t {
		case wasm.I32:
			fold(func() { fb.GlobalGet(idx) })
		case wasm.I64:
			foldI64(func() { fb.GlobalGet(idx) })
		default:
			foldF64(func() { fb.GlobalGet(idx) })
		}
	}
	fold(func() { fb.Op(wasm.OpMemorySize) })

	// Fold the first 16 words of linear memory (data segment bytes plus
	// whatever the program stored there).
	p := c.addLocal(wasm.I32)
	cnt := c.addLocal(wasm.I32)
	fb.I32Const(0)
	fb.LocalSet(p)
	fb.I32Const(16)
	fb.LocalSet(cnt)
	fb.Loop(wasm.BlockVoid)
	fold(func() { fb.LocalGet(p); fb.Load(wasm.OpI32Load, 0) })
	fb.LocalGet(p)
	fb.I32Const(4)
	fb.Op(wasm.OpI32Add)
	fb.LocalSet(p)
	fb.LocalGet(cnt)
	fb.I32Const(1)
	fb.Op(wasm.OpI32Sub)
	fb.LocalTee(cnt)
	fb.BrIf(0)
	fb.End()

	fb.LocalGet(acc)
	g.b.Export("_start", wasm.ExternFunc, fb.Index())
}
