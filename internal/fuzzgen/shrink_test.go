package fuzzgen

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/wasm"
)

// countInstrs is the shrinker's size metric for tests.
func countInstrs(m *wasm.Module) int {
	n := 0
	for fi := range m.Funcs {
		n += len(m.Funcs[fi].Body)
	}
	return n
}

// Shrinking against a behavioral predicate (the reference interpreter still
// traps with the same kind) must preserve the predicate, only ever remove
// code, and leave the input untouched.
func TestShrinkPreservesPredicate(t *testing.T) {
	// Seed 20 generates a trapping module (pinned by the corpus smoke runs);
	// scan a few in case the grammar shifts.
	var m *wasm.Module
	var kind TrapKind
	for seed := uint64(2); seed <= 40; seed += 2 {
		cand := Generate(seed, Options{Traps: true})
		o, err := runReference(cand)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if o.TrapKind != TrapNone && o.TrapKind != TrapFuel {
			m, kind = cand, o.TrapKind
			break
		}
	}
	if m == nil {
		t.Fatal("no trapping module found in 20 trap-enabled seeds")
	}

	keep := func(c *wasm.Module) bool {
		o, err := runReference(c)
		return err == nil && o.TrapKind == kind
	}
	before := wasm.Encode(m)
	small := Shrink(m, keep)

	if !bytes.Equal(before, wasm.Encode(m)) {
		t.Error("Shrink mutated its input module")
	}
	if err := wasm.Validate(small); err != nil {
		t.Fatalf("shrunken module invalid: %v", err)
	}
	if !keep(small) {
		t.Fatalf("shrunken module no longer satisfies the predicate")
	}
	if countInstrs(small) > countInstrs(m) {
		t.Errorf("shrink grew the module: %d -> %d instrs", countInstrs(m), countInstrs(small))
	}
	t.Logf("shrunk %d -> %d instrs, %d -> %d bytes",
		countInstrs(m), countInstrs(small), len(before), len(wasm.Encode(small)))

	// Fixed point: shrinking the result again changes nothing.
	again := Shrink(small, keep)
	if !bytes.Equal(wasm.Encode(small), wasm.Encode(again)) {
		t.Error("Shrink output is not a fixed point")
	}
}

// With an always-true predicate the shrinker must collapse a generated
// module to stubs — the lower bound on its aggressiveness.
func TestShrinkCollapsesUnderTruePredicate(t *testing.T) {
	m := Generate(7, Options{})
	small := Shrink(m, func(*wasm.Module) bool { return true })
	if err := wasm.Validate(small); err != nil {
		t.Fatalf("shrunken module invalid: %v", err)
	}
	for fi := range small.Funcs {
		ft := small.Types[small.Funcs[fi].TypeIdx]
		if !isStub(&small.Funcs[fi], ft) {
			t.Errorf("func %d not reduced to a stub (%d instrs)", fi, len(small.Funcs[fi].Body))
		}
	}
	if len(small.Data) != 0 {
		t.Errorf("%d data segments survived an always-true predicate", len(small.Data))
	}
}

// The end-to-end loop a real divergence would take: shrink against the full
// oracle verdict for a trapping module, then confirm the minimized module
// still exercises every engine identically (what TestCorpusReplay does for
// committed entries).
func TestShrinkThenDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle matrix is not short")
	}
	m := Generate(20, Options{Traps: true})
	ref, err := runReference(m)
	if err != nil {
		t.Fatal(err)
	}
	if ref.TrapKind == TrapNone {
		t.Skip("seed 20 no longer traps; grammar changed")
	}
	small := Shrink(m, func(c *wasm.Module) bool {
		o, err := runReference(c)
		return err == nil && o.TrapKind == ref.TrapKind
	})
	v, err := Diff(context.Background(), small, DiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Errorf("shrunken module diverges: %s", v)
	}
}
