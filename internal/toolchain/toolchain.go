// Package toolchain ties the mini-C compiler to the engine backends, the
// way Browsix-Wasm ties Emscripten to the browsers: one source program is
// built per engine, with the data model matching the target (wasm32 for the
// browser engines, x86-64 for native).
package toolchain

import (
	"fmt"
	"path"

	"repro/internal/codegen"
	"repro/internal/kernel"
	"repro/internal/minic"
	"repro/internal/wasm"
)

// ABIFor returns the data model an engine compiles.
func ABIFor(cfg *codegen.EngineConfig) minic.ABI {
	if cfg.Name == "native" {
		return minic.ABI64
	}
	return minic.ABI32
}

// Build compiles mini-C source for one engine.
func Build(src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	abi := ABIFor(cfg)
	m, err := minic.Compile(src, abi)
	if err != nil {
		return nil, err
	}
	cm, err := codegen.Compile(m, cfg)
	if err != nil {
		return nil, err
	}
	cm.PtrSize = abi.PtrSize
	return cm, nil
}

// BuildWasm compiles mini-C to a raw wasm module (browser ABI), for
// interpreter-based differential testing.
func BuildWasm(src string) (*wasm.Module, error) {
	return minic.Compile(src, minic.ABI32)
}

// RunResult captures one program execution under the kernel.
type RunResult struct {
	ExitCode int
	Stdout   string
	Proc     *kernel.Process
}

// Run builds src for cfg, registers it in a fresh kernel over fs contents,
// spawns it with argv, and waits for completion.
func Run(src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	cm, err := Build(src, cfg)
	if err != nil {
		return nil, err
	}
	return RunCompiled(cm, argv, files)
}

// RunCompiled executes an already-built binary in a fresh kernel.
func RunCompiled(cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	k := kernel.New(nil)
	for p, data := range files {
		if dir := path.Dir(p); dir != "/" && dir != "." {
			if err := k.FS.MkdirAll(dir); err != nil {
				return nil, fmt.Errorf("toolchain: mkdir %s: %w", dir, err)
			}
		}
		if err := k.FS.WriteFile(p, data); err != nil {
			return nil, fmt.Errorf("toolchain: populating %s: %w", p, err)
		}
	}
	k.RegisterBinary("/bin/prog", cm)
	if len(argv) == 0 {
		argv = []string{"prog"}
	}
	p, err := k.Spawn(nil, "/bin/prog", argv, [3]*kernel.FD{})
	if err != nil {
		return nil, err
	}
	code, err := k.WaitPID(p.PID)
	if err != nil {
		return nil, fmt.Errorf("toolchain: process failed: %w", err)
	}
	return &RunResult{ExitCode: code, Stdout: string(k.Console), Proc: p}, nil
}
