// Package toolchain ties the mini-C compiler to the engine backends, the
// way Browsix-Wasm ties Emscripten to the browsers: one source program is
// built per engine, with the data model matching the target (wasm32 for the
// browser engines, x86-64 for native). Builds and executions go through
// internal/pipeline, so every caller in one process shares the same
// content-addressed build cache and run path.
package toolchain

import (
	"context"

	"repro/internal/codegen"
	"repro/internal/minic"
	"repro/internal/pipeline"
	"repro/internal/wasm"
)

// ABIFor returns the data model an engine compiles.
func ABIFor(cfg *codegen.EngineConfig) minic.ABI { return pipeline.ABIFor(cfg) }

// Build compiles mini-C source for one engine through the shared
// content-addressed cache; identical (source, config) pairs compile once
// per process.
func Build(src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	return pipeline.Compile(context.Background(), &pipeline.Request{Module: src, Config: cfg})
}

// BuildWasm compiles mini-C to a raw wasm module (browser ABI), for
// interpreter-based differential testing.
func BuildWasm(src string) (*wasm.Module, error) {
	return minic.Compile(src, minic.ABI32)
}

// RunResult captures one program execution under the kernel.
type RunResult = pipeline.RunResult

// Run builds src for cfg (cached), registers it in a fresh kernel over fs
// contents, spawns it with argv, and waits for completion.
func Run(src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	return RunContext(context.Background(), src, cfg, argv, files)
}

// RunContext is Run under a caller context: cancellation preempts the
// simulated processes mid-run (see pipeline.Execute).
func RunContext(ctx context.Context, src string, cfg *codegen.EngineConfig, argv []string, files map[string][]byte) (*RunResult, error) {
	res, err := pipeline.Do(ctx, &pipeline.Request{Module: src, Config: cfg, Argv: argv, Files: files})
	if err != nil {
		return nil, err
	}
	return &RunResult{ExitCode: res.ExitCode, Stdout: res.Stdout, Proc: res.Proc}, nil
}

// RunCompiled executes an already-built binary in a fresh kernel.
func RunCompiled(cm *codegen.CompiledModule, argv []string, files map[string][]byte) (*RunResult, error) {
	res, err := pipeline.Execute(context.Background(), cm, &pipeline.Request{Argv: argv, Files: files})
	if err != nil {
		return nil, err
	}
	return &RunResult{ExitCode: res.ExitCode, Stdout: res.Stdout, Proc: res.Proc}, nil
}
