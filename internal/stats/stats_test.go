package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("geomean(ones) = %g", g)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %g", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %g", m)
	}
}

func TestMeanStdErr(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if se := StdErr([]float64{5}); se != 0 {
		t.Errorf("stderr single = %g", se)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max wrong: %g %g", Min(xs), Max(xs))
	}
}

func TestGeomeanBetweenMinMaxQuick(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
