// Package stats provides the aggregations the paper reports: geometric
// means, medians, means with standard error, and ratio helpers.
package stats

import (
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs (ignoring non-positive values).
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// Max returns the maximum of xs (0 when empty).
func Max(xs []float64) float64 {
	best := 0.0
	for i, x := range xs {
		if i == 0 || x > best {
			best = x
		}
	}
	return best
}

// Min returns the minimum of xs (0 when empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs {
		if x < best {
			best = x
		}
	}
	return best
}
