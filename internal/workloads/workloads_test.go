package workloads_test

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/toolchain"
	"repro/internal/workloads"
)

// runWorkload executes w on cfg, returning stdout.
func runWorkload(t *testing.T, w *workloads.Workload, cfg *codegen.EngineConfig) string {
	t.Helper()
	res, err := toolchain.Run(w.Source, cfg, append([]string{w.Name}, w.Args...), w.Files)
	if err != nil {
		t.Fatalf("%s on %s: %v", w.Name, cfg.Name, err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s on %s: exit %d, stdout %q", w.Name, cfg.Name, res.ExitCode, res.Stdout)
	}
	if res.Stdout == "" {
		t.Fatalf("%s on %s: no output", w.Name, cfg.Name)
	}
	return res.Stdout
}

// TestPolybenchDifferential runs every Polybench kernel on native and
// Chrome and requires identical output (the cmp validation). Short mode
// runs the scaled-down subset.
func TestPolybenchDifferential(t *testing.T) {
	suite := workloads.Polybench()
	if testing.Short() {
		suite = workloads.ShortPolybench()
	}
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			nat := runWorkload(t, w, codegen.Native())
			chr := runWorkload(t, w, codegen.Chrome())
			if nat != chr {
				t.Errorf("output mismatch: native %q vs chrome %q", nat, chr)
			}
		})
	}
}

// TestSPECDifferential runs every SPEC-shaped workload on native, Chrome,
// and Firefox and requires identical output. Short mode runs the
// scaled-down subset.
func TestSPECDifferential(t *testing.T) {
	suite := workloads.SPECCPU()
	if testing.Short() {
		suite = workloads.ShortSPEC()
	}
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			nat := runWorkload(t, w, codegen.Native())
			chr := runWorkload(t, w, codegen.Chrome())
			ff := runWorkload(t, w, codegen.Firefox())
			if nat != chr || nat != ff {
				t.Errorf("output mismatch: native %q chrome %q firefox %q", nat, chr, ff)
			}
		})
	}
}

func TestWorkloadCounts(t *testing.T) {
	if n := len(workloads.Polybench()); n != 23 {
		t.Errorf("polybench has %d kernels, want 23", n)
	}
	if n := len(workloads.SPECCPU()); n != 15 {
		t.Errorf("spec suite has %d benchmarks, want 15", n)
	}
}
