package workloads_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// TestMain prints the build-cache summary after the suite: with a warm
// artifact store a full run reports zero misses (every module came from
// memory or disk), which is the cheap way to spot a cold CI cache.
func TestMain(m *testing.M) {
	code := m.Run()
	pipeline.ReportTotals("workloads")
	os.Exit(code)
}

// runSuiteSharded runs every workload × engine combination through the
// degraded-capable suite runner (workloads.RunDifferential) in strict mode:
// the suite is one sharded job list with bounded parallelism, every failure
// is reported (not just the first), and differential validation compares
// the collected outputs row by row. Returns the per-suite cache traffic.
func runSuiteSharded(t *testing.T, suite []*workloads.Workload, cfgs []*codegen.EngineConfig) pipeline.CacheStats {
	t.Helper()
	rep, err := workloads.RunDifferential(context.Background(), suite, cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("suite (%d workloads × %d engines) cache: %v", len(suite), len(cfgs), rep.Cache)
	return rep.Cache
}

// TestPolybenchDifferential runs every Polybench kernel on native and
// Chrome through the pipeline scheduler and requires identical output (the
// cmp validation). Short mode runs the scaled-down subset.
func TestPolybenchDifferential(t *testing.T) {
	suite := workloads.Polybench()
	if testing.Short() {
		suite = workloads.ShortPolybench()
	}
	runSuiteSharded(t, suite, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()})
}

// TestSPECDifferential runs every SPEC-shaped workload on native, Chrome,
// and Firefox through the pipeline scheduler and requires identical output.
// Short mode runs the scaled-down subset.
func TestSPECDifferential(t *testing.T) {
	suite := workloads.SPECCPU()
	if testing.Short() {
		suite = workloads.ShortSPEC()
	}
	runSuiteSharded(t, suite, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome(), codegen.Firefox()})
}

func TestWorkloadCounts(t *testing.T) {
	if n := len(workloads.Polybench()); n != 23 {
		t.Errorf("polybench has %d kernels, want 23", n)
	}
	if n := len(workloads.SPECCPU()); n != 15 {
		t.Errorf("spec suite has %d benchmarks, want 15", n)
	}
}
