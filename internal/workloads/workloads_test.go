package workloads_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// TestMain prints the build-cache summary after the suite: with a warm
// artifact store a full run reports zero misses (every module came from
// memory or disk), which is the cheap way to spot a cold CI cache.
func TestMain(m *testing.M) {
	code := m.Run()
	pipeline.ReportTotals("workloads")
	os.Exit(code)
}

// runSuiteSharded runs every workload × engine combination through the
// pipeline scheduler (pipeline.RunJobs) instead of t.Parallel subtests: the
// suite is one sharded job list with bounded parallelism, every failure is
// reported (not just the first), and differential validation compares the
// collected outputs row by row. Returns the per-suite cache traffic.
func runSuiteSharded(t *testing.T, suite []*workloads.Workload, cfgs []*codegen.EngineConfig) pipeline.CacheStats {
	t.Helper()
	before := pipeline.Stats()
	outs := make([][]string, len(suite))
	jobs := make([]pipeline.Job, 0, len(suite)*len(cfgs))
	for wi := range suite {
		outs[wi] = make([]string, len(cfgs))
		for ci := range cfgs {
			wi, ci := wi, ci
			jobs = append(jobs, func(ctx context.Context) error {
				w, cfg := suite[wi], cfgs[ci]
				res, err := pipeline.RunContext(ctx, w.Source, cfg, append([]string{w.Name}, w.Args...), w.Files)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", w.Name, cfg.Name, err)
				}
				if res.ExitCode != 0 {
					return fmt.Errorf("%s on %s: exit %d, stdout %q", w.Name, cfg.Name, res.ExitCode, res.Stdout)
				}
				if res.Stdout == "" {
					return fmt.Errorf("%s on %s: no output", w.Name, cfg.Name)
				}
				outs[wi][ci] = res.Stdout
				return nil
			})
		}
	}
	if err := pipeline.RunJobs(context.Background(), 0, jobs); err != nil {
		t.Fatal(err)
	}
	// cmp validation: every engine must produce the reference output.
	for wi, row := range outs {
		for ci := 1; ci < len(row); ci++ {
			if row[ci] != row[0] {
				t.Errorf("%s: output mismatch: %s %q vs %s %q",
					suite[wi].Name, cfgs[0].Name, row[0], cfgs[ci].Name, row[ci])
			}
		}
	}
	d := pipeline.Stats().Sub(before)
	t.Logf("suite (%d workloads × %d engines) cache: %v", len(suite), len(cfgs), d)
	return d
}

// TestPolybenchDifferential runs every Polybench kernel on native and
// Chrome through the pipeline scheduler and requires identical output (the
// cmp validation). Short mode runs the scaled-down subset.
func TestPolybenchDifferential(t *testing.T) {
	suite := workloads.Polybench()
	if testing.Short() {
		suite = workloads.ShortPolybench()
	}
	runSuiteSharded(t, suite, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()})
}

// TestSPECDifferential runs every SPEC-shaped workload on native, Chrome,
// and Firefox through the pipeline scheduler and requires identical output.
// Short mode runs the scaled-down subset.
func TestSPECDifferential(t *testing.T) {
	suite := workloads.SPECCPU()
	if testing.Short() {
		suite = workloads.ShortSPEC()
	}
	runSuiteSharded(t, suite, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome(), codegen.Firefox()})
}

func TestWorkloadCounts(t *testing.T) {
	if n := len(workloads.Polybench()); n != 23 {
		t.Errorf("polybench has %d kernels, want 23", n)
	}
	if n := len(workloads.SPECCPU()); n != 15 {
		t.Errorf("spec suite has %d benchmarks, want 15", n)
	}
}
