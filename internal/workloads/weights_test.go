package workloads_test

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// roundWeight rounds an exact instruction count to the table's 100k
// granularity — dispatch ordering is insensitive to anything finer.
func roundWeight(n uint64) uint64 {
	const g = 100_000
	return (n + g/2) / g * g
}

// TestWeightTableFresh cross-checks the committed expectedInsts table
// against a live functional-tier measurement of the short suites. A weight
// is a dispatch hint, so the bar is loose — within 2x — but a workload whose
// problem size changed by an order of magnitude (stale table) fails here
// rather than silently serializing the suite tail.
func TestWeightTableFresh(t *testing.T) {
	suite := append(workloads.ShortPolybench(), workloads.ShortSPEC()...)
	got, err := workloads.MeasureWeights(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range suite {
		want := w.ExpectedInstructions()
		g := got[w.Name]
		if g > 2*want || want > 2*g {
			t.Errorf("%s: table says %d insts, functional tier retired %d — regenerate with %s=1",
				w.Name, want, g, config.EnvRegenWeights)
		}
	}
}

// TestRegenWeights re-measures the full dispatch-weight table on the
// functional tier and prints it in Go source form, ready to paste into
// weights.go. Skipped unless $REPRO_REGEN_WEIGHTS is set — the full suite
// is too slow for every test run, and regeneration is only needed when a
// workload's problem size changes.
func TestRegenWeights(t *testing.T) {
	if os.Getenv(config.EnvRegenWeights) == "" {
		t.Skipf("set %s=1 to re-measure the dispatch weight table", config.EnvRegenWeights)
	}
	suite := append(workloads.Polybench(), workloads.SPECCPU()...)
	got, err := workloads.MeasureWeights(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("var expectedInsts = map[string]uint64{\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "\t%q: %s,\n", n, groupDigits(roundWeight(got[n])))
	}
	sb.WriteString("}\n")
	t.Logf("refreshed weight table:\n%s", sb.String())
	for _, n := range names {
		rounded := roundWeight(got[n])
		if cur, ok := currentWeight(suite, n); ok && cur != rounded {
			t.Logf("drift: %s %d -> %d", n, cur, rounded)
		}
	}
}

// currentWeight looks up the committed table value via the public accessor.
func currentWeight(suite []*workloads.Workload, name string) (uint64, bool) {
	for _, w := range suite {
		if w.Name == name {
			return w.ExpectedInstructions(), true
		}
	}
	return 0, false
}

// groupDigits renders n with Go's underscore digit separators, matching the
// committed table's style (13_200_000).
func groupDigits(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, "_")
}
