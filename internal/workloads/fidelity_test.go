package workloads

// Sampled-accuracy pin: with the default window schedule, the sampled
// tier's extrapolated cycles and cache-miss counts must stay within 3% of
// the exact oracle on real workloads, and the architectural counters must
// be bit-identical in every tier. The kernels are chosen to retire several
// million instructions each — many sampling periods — while keeping the
// test fast; a workload short enough to fit inside the first detailed
// window would pass trivially and pin nothing.

import (
	"context"
	"testing"

	"repro/internal/codegen"
)

// fidelityKernels is the pinned measurement set: dense fp matrix work
// (2mm, gemm), bandwidth-bound vector sweeps (bicg), and a data-dependent
// triangular loop nest (trmm) — different cache and branch behavior, so
// the extrapolation is exercised on more than one traffic pattern.
var fidelityKernels = []string{"2mm", "gemm", "bicg", "trmm"}

// relErrBound is the pinned ceiling for timing-counter relative error with
// the default sampled windows. The ceiling allows some slack over the
// typical ~1-3% error because the extrapolation is sensitive to how the
// fixed window schedule happens to align with each kernel's phases: an
// unrelated codegen change that shifts the instruction stream by a few
// instructions can move a marginal kernel (bicg) by a percentage point
// without the sampling machinery itself degrading.
const relErrBound = 0.05

// errFloor ignores counters whose oracle population is tiny: relative
// error over a few hundred events measures noise, not sampling quality.
const errFloor = 1000

func TestSampledAccuracyWithinBound(t *testing.T) {
	ws := ByName(Polybench(), fidelityKernels...)
	rep, err := MeasureFidelity(context.Background(), ws, codegen.Native(),
		codegen.FidelitySampled, codegen.SampleWindows{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	for _, r := range rep.Rows {
		if !r.ArchExact() {
			t.Errorf("%s: architectural counters diverged under sampling:\n exact:   %v\n sampled: %v",
				r.Workload, r.Exact.String(), r.Approx.String())
		}
	}
	if wl, tc, rel := rep.Worst(errFloor); rel > relErrBound {
		t.Errorf("sampled %s error on %s is %.2f%% (exact %d, sampled %d), want <= %.0f%%",
			tc.Name, wl, rel*100, tc.Exact, tc.Approx, relErrBound*100)
	}
}

// TestFunctionalSuiteArchExact pins the functional tier through the full
// pipeline (kernel, syscalls, host calls — not just the bare machine): the
// architectural counters must be bit-identical to exact and the timing
// counters must be zero.
func TestFunctionalSuiteArchExact(t *testing.T) {
	ws := ByName(Polybench(), "2mm")
	rep, err := MeasureFidelity(context.Background(), ws, codegen.Native(),
		codegen.FidelityFunctional, codegen.SampleWindows{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if !r.ArchExact() {
			t.Errorf("%s: architectural counters diverged under functional tier:\n exact:      %v\n functional: %v",
				r.Workload, r.Exact.String(), r.Approx.String())
		}
		c := r.Approx
		if c.Cycles != 0 || c.L1IMisses != 0 || c.L1DMisses != 0 || c.L2Misses != 0 || c.BranchMiss != 0 {
			t.Errorf("%s: functional tier produced timing counts: %v", r.Workload, c.String())
		}
	}
}
