package workloads

// Degraded-capable differential suite runner: every workload × engine pair
// runs through the shared pipeline scheduler, failures are contained (a
// panicking or hung job becomes a failed row, not an aborted suite), and
// surviving rows are cmp-validated across engines. This is the engine
// behind both the workloads differential tests and cmd/runsuite (the CI
// fault-smoke entry point).

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

// RunFailure is one failed workload × engine execution in a differential
// suite run.
type RunFailure struct {
	Workload string
	Engine   string
	Err      error
}

// SuiteReport summarizes one RunDifferential call.
type SuiteReport struct {
	// Rows is the number of workload × engine runs attempted.
	Rows int
	// Failed lists every failed run (empty on a clean suite).
	Failed []RunFailure
	// Outputs holds each workload's per-engine stdout, indexed
	// [workload][engine]; failed cells are empty.
	Outputs [][]string
	// Cache is the build-cache traffic the suite generated.
	Cache pipeline.CacheStats
}

// Err returns nil for a clean report, or an error summarizing every
// failure (one line each; panic stacks are truncated — the full errors stay
// in Failed).
func (r *SuiteReport) Err() error {
	if len(r.Failed) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "workloads: %d of %d runs failed", len(r.Failed), r.Rows)
	for _, f := range r.Failed {
		msg := f.Err.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..."
		}
		fmt.Fprintf(&sb, "\n  %s on %s: %s", f.Workload, f.Engine, msg)
	}
	return fmt.Errorf("%s", sb.String())
}

// RunDifferential runs every workload in suite under every engine in cfgs
// through the pipeline scheduler and cmp-validates each workload's outputs
// across engines. With degraded set, individual failures — build errors,
// contained panics, watchdog timeouts, output mismatches — become Failed
// entries and the suite keeps going; the report's Err reflects them.
// Without it, the first failure aborts the run (the scheduler still reports
// every already-failed job, not just the first).
func RunDifferential(ctx context.Context, suite []*Workload, cfgs []*codegen.EngineConfig, degraded bool) (*SuiteReport, error) {
	before := pipeline.Stats()
	rep := &SuiteReport{Rows: len(suite) * len(cfgs), Outputs: make([][]string, len(suite))}
	failed := make([][]bool, len(suite))
	for wi := range suite {
		rep.Outputs[wi] = make([]string, len(cfgs))
		failed[wi] = make([]bool, len(cfgs))
	}
	var mu sync.Mutex
	jobs := make([]pipeline.WeightedJob, 0, rep.Rows)
	for wi := range suite {
		for ci := range cfgs {
			wi, ci := wi, ci
			jobs = append(jobs, pipeline.WeightedJob{Weight: suite[wi].ExpectedInstructions(), Run: func(ctx context.Context) error {
				if err := ctx.Err(); err != nil {
					return nil // the scheduler reports the cancellation
				}
				w, cfg := suite[wi], cfgs[ci]
				res, err := runContained(ctx, w, cfg)
				if err == nil {
					switch {
					case res.ExitCode != 0:
						err = fmt.Errorf("exit %d, stdout %q", res.ExitCode, res.Stdout)
					case res.Stdout == "":
						err = fmt.Errorf("no output")
					}
				}
				if err != nil {
					if !degraded {
						return fmt.Errorf("%s on %s: %w", w.Name, cfg.Name, err)
					}
					mu.Lock()
					rep.Failed = append(rep.Failed, RunFailure{w.Name, cfg.Name, err})
					failed[wi][ci] = true
					mu.Unlock()
					return nil
				}
				mu.Lock()
				rep.Outputs[wi][ci] = res.Stdout
				mu.Unlock()
				return nil
			}})
		}
	}
	err := pipeline.RunJobsWeighted(ctx, 0, jobs)
	if err != nil && !degraded {
		return nil, err
	}
	// cmp validation: every engine must produce the reference output.
	// Rows with a failed cell are skipped (there is nothing to compare);
	// a mismatch on a surviving row is itself a failure.
	for wi, row := range rep.Outputs {
		rowFailed := false
		for _, f := range failed[wi] {
			rowFailed = rowFailed || f
		}
		if rowFailed {
			continue
		}
		for ci := 1; ci < len(row); ci++ {
			if row[ci] != row[0] {
				mismatch := fmt.Errorf("output mismatch: %s %q vs %s %q",
					cfgs[0].Name, row[0], cfgs[ci].Name, row[ci])
				if !degraded {
					return nil, fmt.Errorf("%s: %w", suite[wi].Name, mismatch)
				}
				rep.Failed = append(rep.Failed, RunFailure{suite[wi].Name, cfgs[ci].Name, mismatch})
			}
		}
	}
	rep.Cache = pipeline.Stats().Sub(before)
	return rep, err
}

// runContained is pipeline.Do with scheduler-style panic containment, so a
// degraded suite can turn a panicking run into a failed row instead of a
// failed job.
func runContained(ctx context.Context, w *Workload, cfg *codegen.EngineConfig) (res *pipeline.Result, err error) {
	defer func() {
		if pe := sched.CapturePanic(w.Name+" on "+cfg.Name, recover()); pe != nil {
			res, err = nil, pe
		}
	}()
	return pipeline.Do(ctx, &pipeline.Request{
		Module: w.Source,
		Config: cfg,
		Argv:   append([]string{w.Name}, w.Args...),
		Files:  w.Files,
	})
}
