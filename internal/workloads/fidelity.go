package workloads

// Fidelity error measurement: run a workload set twice through the full
// pipeline — once at the exact tier (the oracle) and once at an
// approximating tier — and report the per-counter error (perf.FidelityReport).
// This is the harness behind the sampled-accuracy pin test and the CI
// accuracy smoke job.

import (
	"context"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/perf"
	"repro/internal/pipeline"
)

// MeasureFidelity runs every workload in suite under base at the exact tier
// and again at tier f (with window overrides w) and returns the counter
// comparison. base itself is never mutated; each run uses a copy, so the
// two tiers get distinct content-addressed cache entries.
func MeasureFidelity(ctx context.Context, suite []*Workload, base *codegen.EngineConfig, f codegen.Fidelity, w codegen.SampleWindows) (*perf.FidelityReport, error) {
	rep := &perf.FidelityReport{Tier: f.String()}
	for _, wl := range suite {
		exact, err := runCounters(ctx, wl, base, codegen.FidelityExact, codegen.SampleWindows{})
		if err != nil {
			return nil, fmt.Errorf("workloads: %s exact: %w", wl.Name, err)
		}
		approx, err := runCounters(ctx, wl, base, f, w)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s %s: %w", wl.Name, f, err)
		}
		rep.Rows = append(rep.Rows, perf.FidelityRow{Workload: wl.Name, Exact: exact, Approx: approx})
	}
	return rep, nil
}

// runCounters executes one workload at one tier and returns the machine's
// whole-run counters (kernel plus program — everything simulated).
func runCounters(ctx context.Context, w *Workload, base *codegen.EngineConfig, f codegen.Fidelity, sw codegen.SampleWindows) (perf.Counters, error) {
	cfg := *base
	cfg.ApplyFidelity(f, sw)
	res, err := pipeline.Do(ctx, &pipeline.Request{
		Module: w.Source,
		Config: &cfg,
		Argv:   append([]string{w.Name}, w.Args...),
		Files:  w.Files,
	})
	if err != nil {
		return perf.Counters{}, err
	}
	if res.ExitCode != 0 {
		return perf.Counters{}, fmt.Errorf("exit %d, stdout %q", res.ExitCode, res.Stdout)
	}
	return res.Proc.Inst.Counters, nil
}

// ByName returns the named workloads from suite, in the order given,
// panicking on an unknown name (a typo in a test or CI job, not a runtime
// condition).
func ByName(suite []*Workload, names ...string) []*Workload {
	out := make([]*Workload, 0, len(names))
	for _, n := range names {
		found := false
		for _, w := range suite {
			if w.Name == n {
				out = append(out, w)
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("workloads: no workload named %q", n))
		}
	}
	return out
}
