package workloads

import (
	"context"
	"fmt"

	"repro/internal/codegen"
)

// Expected simulated-instruction counts per workload, measured on the
// functional tier (native codegen, rounded to 100k — regenerate with the
// $REPRO_REGEN_WEIGHTS-gated TestRegenWeights). They feed weighted suite
// dispatch: jobs are claimed longest-first so a heavy SPEC program (429.mcf
// retires ~30x the instructions of trisolv) starts before the cheap
// Polybench kernels instead of serializing behind them at the tail of the
// run. The values are dispatch hints, not measurements — codegen tweaks
// drift them a few percent, which is irrelevant for ordering — so they only
// need re-measuring if a workload's problem size changes.
var expectedInsts = map[string]uint64{
	"2mm":            13_200_000,
	"3mm":            12_000_000,
	"adi":            9_700_000,
	"bicg":           5_000_000,
	"cholesky":       5_200_000,
	"correlation":    5_200_000,
	"covariance":     5_200_000,
	"doitgen":        14_200_000,
	"durbin":         3_400_000,
	"fdtd-2d":        15_300_000,
	"gemm":           14_500_000,
	"gemver":         8_100_000,
	"gesummv":        8_700_000,
	"gramschmidt":    9_600_000,
	"lu":             9_900_000,
	"ludcmp":         4_400_000,
	"mvt":            6_900_000,
	"seidel-2d":      9_300_000,
	"symm":           6_300_000,
	"syr2k":          7_600_000,
	"syrk":           8_100_000,
	"trisolv":        3_700_000,
	"trmm":           10_100_000,
	"401.bzip2":      43_700_000,
	"429.mcf":        150_300_000,
	"433.milc":       103_700_000,
	"444.namd":       33_800_000,
	"445.gobmk":      22_700_000,
	"450.soplex":     8_700_000,
	"453.povray":     5_600_000,
	"458.sjeng":      30_100_000,
	"462.libquantum": 105_900_000,
	"464.h264ref":    116_400_000,
	"470.lbm":        13_400_000,
	"473.astar":      42_200_000,
	"482.sphinx3":    6_000_000,
	"641.leela_s":    16_300_000,
	"644.nab_s":      49_600_000,
}

// defaultWeight places workloads missing from the table (new kernels not
// yet measured) in the middle of the pack rather than at either extreme.
const defaultWeight = 10_000_000

// ExpectedInstructions returns the workload's expected simulated instruction
// count, used as its scheduling weight.
func (w *Workload) ExpectedInstructions() uint64 {
	if n, ok := expectedInsts[w.Name]; ok {
		return n
	}
	return defaultWeight
}

// MeasureWeights re-measures every workload's retired-instruction count on
// the functional tier under native codegen — the same conditions the
// expectedInsts table was built from. It backs the $REPRO_REGEN_WEIGHTS
// regen test; results are exact counts, rounding to table granularity is
// the caller's job.
func MeasureWeights(ctx context.Context, suite []*Workload) (map[string]uint64, error) {
	out := make(map[string]uint64, len(suite))
	base := codegen.Native()
	for _, w := range suite {
		c, err := runCounters(ctx, w, base, codegen.FidelityFunctional, codegen.SampleWindows{})
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", w.Name, err)
		}
		out[w.Name] = c.Instructions
	}
	return out, nil
}
