// Package workloads provides the benchmark programs of the evaluation: the
// 23 PolybenchC kernels (§4.1, Figures 1 and 3a) and 15 SPEC CPU-shaped
// programs (§4.2), all written in mini-C and compiled per engine by the
// toolchain. Problem sizes are scaled down so the simulated CPU finishes in
// milliseconds; each workload's source records its scale.
package workloads

import "fmt"

// Workload is one benchmark program.
type Workload struct {
	Name string
	// Source is the mini-C program. It prints a deterministic checksum to
	// stdout; Browsix-SPEC validates it across engines with cmp.
	Source string
	// Args passed to the program (after argv[0]).
	Args []string
	// Files to place in the filesystem image.
	Files map[string][]byte
	// Traits recorded for documentation.
	Notes string
}

// polyProlog provides the deterministic initialization helpers every
// Polybench kernel uses.
const polyProlog = `
double poly_seed = 0.0;
double poly_init(int i, int j, int n) {
  return (double)((i * 31 + j * 17) % n) / (double)n + 0.5;
}
void poly_report(double s) {
  print_fixed(s);
  print_nl();
}
`

// Polybench returns the 23 PolybenchC kernels at their scaled sizes.
func Polybench() []*Workload {
	var out []*Workload
	add := func(name, body string) {
		out = append(out, &Workload{
			Name:   name,
			Source: polyProlog + body,
		})
	}

	// 2mm: D = alpha*A*B*C + beta*D
	add("2mm", `
int N = 56;
double A[56][56]; double B[56][56]; double C[56][56]; double D[56][56]; double tmp[56][56];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N);
    C[i][j] = poly_init(i + 1, j, N); D[i][j] = poly_init(i, j + 1, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    tmp[i][j] = 0.0;
    for (k = 0; k < N; k++) { tmp[i][j] += 1.5 * A[i][k] * B[k][j]; }
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    D[i][j] *= 1.2;
    for (k = 0; k < N; k++) { D[i][j] += tmp[i][k] * C[k][j]; }
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += D[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// 3mm: G = (A*B)*(C*D)
	add("3mm", `
int N = 48;
double A[48][48]; double B[48][48]; double C[48][48]; double D[48][48];
double E[48][48]; double F[48][48]; double G[48][48];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N);
    C[i][j] = poly_init(i + 2, j, N); D[i][j] = poly_init(i, j + 2, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    E[i][j] = 0.0;
    for (k = 0; k < N; k++) { E[i][j] += A[i][k] * B[k][j]; }
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    F[i][j] = 0.0;
    for (k = 0; k < N; k++) { F[i][j] += C[i][k] * D[k][j]; }
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    G[i][j] = 0.0;
    for (k = 0; k < N; k++) { G[i][j] += E[i][k] * F[k][j]; }
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += G[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// adi: alternating direction implicit solver.
	add("adi", `
int N = 96; int T = 8;
double X[96][96]; double A[96][96]; double B[96][96];
int main() {
  int t; int i; int j;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    X[i][j] = poly_init(i, j, N); A[i][j] = poly_init(j, i, N) + 1.0; B[i][j] = poly_init(i + 3, j, N) + 2.0;
  } }
  for (t = 0; t < T; t++) {
    for (i = 0; i < N; i++) { for (j = 1; j < N; j++) {
      X[i][j] = X[i][j] - X[i][j-1] * A[i][j] / B[i][j-1];
      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i][j-1];
    } }
    for (i = 1; i < N; i++) { for (j = 0; j < N; j++) {
      X[i][j] = X[i][j] - X[i-1][j] * A[i][j] / B[i-1][j];
      B[i][j] = B[i][j] - A[i][j] * A[i][j] / B[i-1][j];
    } }
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += X[i][j] / (1.0 + B[i][j]); } }
  poly_report(s);
  return 0;
}`)

	// bicg: biconjugate gradient kernel.
	add("bicg", `
int N = 220;
double A[220][220]; double p[220]; double r[220]; double q[220]; double s[220];
int main() {
  int i; int j;
  for (i = 0; i < N; i++) {
    p[i] = poly_init(i, 1, N); r[i] = poly_init(1, i, N);
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N); }
  }
  for (i = 0; i < N; i++) { s[i] = 0.0; }
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  double acc = 0.0;
  for (i = 0; i < N; i++) { acc += q[i] + s[i]; }
  poly_report(acc);
  return 0;
}`)

	// cholesky decomposition.
	add("cholesky", `
int N = 96;
double A[96][96];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N) * 0.1; }
    A[i][i] = A[i][i] + (double)N;
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++) { A[i][j] -= A[i][k] * A[j][k]; }
      A[i][j] /= A[j][j];
    }
    for (k = 0; k < i; k++) { A[i][i] -= A[i][k] * A[i][k]; }
    A[i][i] = sqrt(A[i][i]);
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j <= i; j++) { s += A[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// correlation matrix.
	add("correlation", `
int M = 64; int N = 72;
double data[72][64]; double corr[64][64]; double mean[64]; double stddev[64];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < M; j++) { data[i][j] = poly_init(i, j, M); } }
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++) { mean[j] += data[i][j]; }
    mean[j] /= (double)N;
    stddev[j] = 0.0;
    for (i = 0; i < N; i++) { stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]); }
    stddev[j] = sqrt(stddev[j] / (double)N);
    if (stddev[j] < 0.005) { stddev[j] = 1.0; }
  }
  for (i = 0; i < N; i++) { for (j = 0; j < M; j++) {
    data[i][j] = (data[i][j] - mean[j]) / (sqrt((double)N) * stddev[j]);
  } }
  for (i = 0; i < M; i++) {
    corr[i][i] = 1.0;
    for (j = i + 1; j < M; j++) {
      corr[i][j] = 0.0;
      for (k = 0; k < N; k++) { corr[i][j] += data[k][i] * data[k][j]; }
      corr[j][i] = corr[i][j];
    }
  }
  double s = 0.0;
  for (i = 0; i < M; i++) { for (j = 0; j < M; j++) { s += corr[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// covariance matrix.
	add("covariance", `
int M = 64; int N = 72;
double data[72][64]; double cov[64][64]; double mean[64];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < M; j++) { data[i][j] = poly_init(i + 1, j, M); } }
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++) { mean[j] += data[i][j]; }
    mean[j] /= (double)N;
  }
  for (i = 0; i < N; i++) { for (j = 0; j < M; j++) { data[i][j] -= mean[j]; } }
  for (i = 0; i < M; i++) { for (j = i; j < M; j++) {
    cov[i][j] = 0.0;
    for (k = 0; k < N; k++) { cov[i][j] += data[k][i] * data[k][j]; }
    cov[i][j] /= (double)(N - 1);
    cov[j][i] = cov[i][j];
  } }
  double s = 0.0;
  for (i = 0; i < M; i++) { for (j = 0; j < M; j++) { s += cov[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// doitgen: multi-resolution analysis kernel.
	add("doitgen", `
int NQ = 24; int NR = 24; int NP = 24;
double A[24][24][24]; double C4[24][24]; double sum[24];
int main() {
  int r; int q; int p; int s;
  for (r = 0; r < NR; r++) { for (q = 0; q < NQ; q++) { for (p = 0; p < NP; p++) {
    A[r][q][p] = poly_init(r * 16 + q, p, NP);
  } } }
  for (p = 0; p < NP; p++) { for (s = 0; s < NP; s++) { C4[p][s] = poly_init(p, s, NP); } }
  for (r = 0; r < NR; r++) { for (q = 0; q < NQ; q++) {
    for (p = 0; p < NP; p++) {
      sum[p] = 0.0;
      for (s = 0; s < NP; s++) { sum[p] += A[r][q][s] * C4[s][p]; }
    }
    for (p = 0; p < NP; p++) { A[r][q][p] = sum[p]; }
  } }
  double acc = 0.0;
  for (r = 0; r < NR; r++) { for (q = 0; q < NQ; q++) { for (p = 0; p < NP; p++) { acc += A[r][q][p]; } } }
  poly_report(acc);
  return 0;
}`)

	// durbin: Toeplitz system solver.
	add("durbin", `
int N = 320;
double r[320]; double y[320]; double z[320];
int main() {
  int i; int k;
  for (i = 0; i < N; i++) { r[i] = poly_init(i, 3, N) + 0.01 * (double)i; }
  y[0] = -r[0];
  double beta = 1.0; double alpha = -r[0];
  for (k = 1; k < N; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    double summ = 0.0;
    for (i = 0; i < k; i++) { summ += r[k - i - 1] * y[i]; }
    alpha = -(r[k] + summ) / beta;
    for (i = 0; i < k; i++) { z[i] = y[i] + alpha * y[k - i - 1]; }
    for (i = 0; i < k; i++) { y[i] = z[i]; }
    y[k] = alpha;
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += y[i]; }
  poly_report(s);
  return 0;
}`)

	// fdtd-2d: finite-difference time domain.
	add("fdtd-2d", `
int NX = 96; int NY = 96; int T = 12;
double ex[96][96]; double ey[96][96]; double hz[96][96];
int main() {
  int t; int i; int j;
  for (i = 0; i < NX; i++) { for (j = 0; j < NY; j++) {
    ex[i][j] = poly_init(i, j, NY); ey[i][j] = poly_init(j, i, NX); hz[i][j] = poly_init(i + 5, j, NY);
  } }
  for (t = 0; t < T; t++) {
    for (j = 0; j < NY; j++) { ey[0][j] = (double)t * 0.1; }
    for (i = 1; i < NX; i++) { for (j = 0; j < NY; j++) {
      ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
    } }
    for (i = 0; i < NX; i++) { for (j = 1; j < NY; j++) {
      ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
    } }
    for (i = 0; i < NX - 1; i++) { for (j = 0; j < NY - 1; j++) {
      hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
    } }
  }
  double s = 0.0;
  for (i = 0; i < NX; i++) { for (j = 0; j < NY; j++) { s += hz[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// gemm.
	add("gemm", `
int N = 72;
double A[72][72]; double B[72][72]; double C[72][72];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N); C[i][j] = poly_init(i + 7, j, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    C[i][j] *= 1.2;
    for (k = 0; k < N; k++) { C[i][j] += 1.5 * A[i][k] * B[k][j]; }
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += C[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// gemver: vector multiplication and matrix addition.
	add("gemver", `
int N = 220;
double A[220][220]; double u1[220]; double v1[220]; double u2[220]; double v2[220];
double w[220]; double x[220]; double y[220]; double z[220];
int main() {
  int i; int j;
  for (i = 0; i < N; i++) {
    u1[i] = poly_init(i, 0, N); v1[i] = poly_init(0, i, N);
    u2[i] = poly_init(i, 9, N); v2[i] = poly_init(9, i, N);
    y[i] = poly_init(i, 4, N); z[i] = poly_init(4, i, N);
    x[i] = 0.0; w[i] = 0.0;
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N); }
  }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    x[i] = x[i] + 1.2 * A[j][i] * y[j];
  } }
  for (i = 0; i < N; i++) { x[i] = x[i] + z[i]; }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    w[i] = w[i] + 1.5 * A[i][j] * x[j];
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += w[i]; }
  poly_report(s);
  return 0;
}`)

	// gesummv: scalar, vector and matrix multiplication.
	add("gesummv", `
int N = 250;
double A[250][250]; double B[250][250]; double x[250]; double y[250];
int main() {
  int i; int j;
  for (i = 0; i < N; i++) {
    x[i] = poly_init(i, 2, N);
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N); }
  }
  for (i = 0; i < N; i++) {
    double t1 = 0.0; double t2 = 0.0;
    for (j = 0; j < N; j++) {
      t1 += A[i][j] * x[j];
      t2 += B[i][j] * x[j];
    }
    y[i] = 1.5 * t1 + 1.2 * t2;
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += y[i]; }
  poly_report(s);
  return 0;
}`)

	// gramschmidt orthonormalization.
	add("gramschmidt", `
int N = 64;
double A[64][64]; double R[64][64]; double Q[64][64];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N) + 0.1;
    if (i == j) { A[i][j] += 2.0; }
  } }
  for (k = 0; k < N; k++) {
    double nrm = 0.0;
    for (i = 0; i < N; i++) { nrm += A[i][k] * A[i][k]; }
    R[k][k] = sqrt(nrm);
    for (i = 0; i < N; i++) { Q[i][k] = A[i][k] / R[k][k]; }
    for (j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (i = 0; i < N; i++) { R[k][j] += Q[i][k] * A[i][j]; }
      for (i = 0; i < N; i++) { A[i][j] = A[i][j] - Q[i][k] * R[k][j]; }
    }
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += Q[i][j] + R[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// lu decomposition.
	add("lu", `
int N = 96;
double A[96][96];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N) * 0.2; }
    A[i][i] += (double)N;
  }
  for (k = 0; k < N; k++) {
    for (j = k + 1; j < N; j++) { A[k][j] = A[k][j] / A[k][k]; }
    for (i = k + 1; i < N; i++) { for (j = k + 1; j < N; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    } }
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += A[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// ludcmp: LU with forward/back substitution.
	add("ludcmp", `
int N = 80;
double A[80][80]; double b[80]; double x[80]; double y[80];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) {
    b[i] = poly_init(i, 8, N);
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N) * 0.2; }
    A[i][i] += (double)N;
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      double w = A[i][j];
      for (k = 0; k < j; k++) { w -= A[i][k] * A[k][j]; }
      A[i][j] = w / A[j][j];
    }
    for (j = i; j < N; j++) {
      double w = A[i][j];
      for (k = 0; k < i; k++) { w -= A[i][k] * A[k][j]; }
      A[i][j] = w;
    }
  }
  for (i = 0; i < N; i++) {
    double w = b[i];
    for (j = 0; j < i; j++) { w -= A[i][j] * y[j]; }
    y[i] = w;
  }
  for (i = N - 1; i >= 0; i--) {
    double w = y[i];
    for (j = i + 1; j < N; j++) { w -= A[i][j] * x[j]; }
    x[i] = w / A[i][i];
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += x[i]; }
  poly_report(s);
  return 0;
}`)

	// mvt: matrix-vector product and transpose.
	add("mvt", `
int N = 240;
double A[240][240]; double x1[240]; double x2[240]; double y1[240]; double y2[240];
int main() {
  int i; int j;
  for (i = 0; i < N; i++) {
    x1[i] = poly_init(i, 11, N); x2[i] = poly_init(11, i, N);
    y1[i] = poly_init(i, 12, N); y2[i] = poly_init(12, i, N);
    for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N); }
  }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { x1[i] += A[i][j] * y1[j]; } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { x2[i] += A[j][i] * y2[j]; } }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += x1[i] + x2[i]; }
  poly_report(s);
  return 0;
}`)

	// seidel-2d stencil.
	add("seidel-2d", `
int N = 120; int T = 10;
double A[120][120];
int main() {
  int t; int i; int j;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { A[i][j] = poly_init(i, j, N); } }
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++) { for (j = 1; j < N - 1; j++) {
      A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
               + A[i][j-1] + A[i][j] + A[i][j+1]
               + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0;
    } }
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += A[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// symm: symmetric matrix multiply.
	add("symm", `
int N = 64;
double A[64][64]; double B[64][64]; double C[64][64];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N); C[i][j] = poly_init(i + 13, j, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    double acc = 0.0;
    for (k = 0; k < i; k++) {
      C[k][j] += 1.5 * B[i][j] * A[i][k];
      acc += B[k][j] * A[i][k];
    }
    C[i][j] = 1.2 * C[i][j] + 1.5 * B[i][j] * A[i][i] + 1.5 * acc;
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += C[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// syr2k: symmetric rank-2k update.
	add("syr2k", `
int N = 64;
double A[64][64]; double B[64][64]; double C[64][64];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N); C[i][j] = poly_init(i + 4, j, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j <= i; j++) {
    C[i][j] *= 1.2;
    for (k = 0; k < N; k++) {
      C[i][j] += 1.5 * A[i][k] * B[j][k] + 1.5 * B[i][k] * A[j][k];
    }
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j <= i; j++) { s += C[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// syrk: symmetric rank-k update.
	add("syrk", `
int N = 72;
double A[72][72]; double C[72][72];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); C[i][j] = poly_init(i + 6, j, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j <= i; j++) {
    C[i][j] *= 1.2;
    for (k = 0; k < N; k++) { C[i][j] += 1.5 * A[i][k] * A[j][k]; }
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j <= i; j++) { s += C[i][j]; } }
  poly_report(s);
  return 0;
}`)

	// trisolv: triangular solver.
	add("trisolv", `
int N = 300;
double L[300][300]; double b[300]; double x[300];
int main() {
  int i; int j;
  for (i = 0; i < N; i++) {
    b[i] = poly_init(i, 14, N);
    for (j = 0; j <= i; j++) { L[i][j] = poly_init(i, j, N) * 0.1; }
    L[i][i] += 2.0;
  }
  for (i = 0; i < N; i++) {
    double w = b[i];
    for (j = 0; j < i; j++) { w -= L[i][j] * x[j]; }
    x[i] = w / L[i][i];
  }
  double s = 0.0;
  for (i = 0; i < N; i++) { s += x[i]; }
  poly_report(s);
  return 0;
}`)

	// trmm: triangular matrix multiply.
	add("trmm", `
int N = 80;
double A[80][80]; double B[80][80];
int main() {
  int i; int j; int k;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    A[i][j] = poly_init(i, j, N); B[i][j] = poly_init(j, i, N);
  } }
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) {
    for (k = i + 1; k < N; k++) { B[i][j] += A[k][i] * B[k][j]; }
    B[i][j] = 1.5 * B[i][j];
  } }
  double s = 0.0;
  for (i = 0; i < N; i++) { for (j = 0; j < N; j++) { s += B[i][j]; } }
  poly_report(s);
  return 0;
}`)

	if len(out) != 23 {
		panic(fmt.Sprintf("expected 23 polybench kernels, have %d", len(out)))
	}
	return out
}
