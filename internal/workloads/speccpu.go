package workloads

import (
	"fmt"
	"strings"
)

// specProlog provides the deterministic PRNG all SPEC-shaped workloads use.
const specProlog = `
unsigned __rng = 88172645u;
unsigned rng() {
  __rng = __rng * 1664525u + 1013904223u;
  return __rng;
}
int rng_range(int n) { return (int)(rng() % (unsigned)n); }
`

// SPECCPU returns the 15 SPEC CPU2006/2017-shaped benchmarks. Each mirrors
// the structural traits that drive its original's behaviour in the paper:
// code footprint, branchiness, indirect-call density, pointer density, and
// memory-boundedness.
func SPECCPU() []*Workload {
	return []*Workload{
		bzip2(), mcf(), milc(), namd(), gobmk(), soplex(), povray(),
		sjeng(), libquantum(), h264ref(), lbm(), astar(), sphinx3(),
		leela(), nab(),
	}
}

// 401.bzip2: run-length + move-to-front + order-0 modelling over a
// compressible buffer. Integer, byte loads/stores, branchy inner loops.
func bzip2() *Workload {
	return &Workload{
		Name: "401.bzip2",
		Source: specProlog + `
int N = 98304;
char buf[98304];
char mtf[256];
int freq[256];
int main() {
  int i; int pass;
  /* Generate compressible input: runs with varying lengths. */
  i = 0;
  while (i < N) {
    int b = rng_range(64);
    int run = 1 + rng_range(24);
    int j;
    for (j = 0; j < run && i < N; j++) { buf[i] = (char)b; i++; }
  }
  long total = 0;
  for (pass = 0; pass < 3; pass++) {
    /* RLE pass. */
    int out = 0;
    i = 0;
    while (i < N) {
      int b = buf[i] & 255;
      int run = 0;
      while (i < N && (buf[i] & 255) == b && run < 255) { run++; i++; }
      out += 2;
      total += (long)(b ^ run);
    }
    /* Move-to-front transform + frequency model. */
    for (i = 0; i < 256; i++) { mtf[i] = (char)i; freq[i] = 0; }
    for (i = 0; i < N; i++) {
      int b = buf[i] & 255;
      int j = 0;
      while ((mtf[j] & 255) != b) { j++; }
      freq[j] += 1;
      while (j > 0) { mtf[j] = mtf[j-1]; j--; }
      mtf[0] = (char)b;
    }
    /* Approximate entropy accumulation (integer log2). */
    for (i = 0; i < 256; i++) {
      int f = freq[i]; int bits = 0;
      while (f > 0) { bits++; f >>= 1; }
      total += (long)(bits * freq[i]);
    }
    /* Mutate the buffer so passes differ. */
    for (i = 0; i < N; i += 97) { buf[i] = (char)(buf[i] + 1); }
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "integer, byte ops, branchy; paper slowdown 2.34x/1.97x",
	}
}

// 429.mcf: pointer-chasing network traversal. Nodes are pointer-dense
// structs, so the wasm32 build is half the size of the native build — the
// source of the paper's <1.0 anomaly (plus small hot loops fitting L1i).
func mcf() *Workload {
	return &Workload{
		Name: "429.mcf",
		Source: specProlog + `
struct Arc {
  struct Node *head;
  struct Arc *nextOut;
  struct Arc *nextIn;
  int cost;
  int flow;
};
struct Node {
  struct Node *parent;
  struct Node *child;
  struct Node *sibling;
  struct Arc *firstOut;
  struct Arc *firstIn;
  int potential;
  int depth;
};
int NNODES = 260000;
int NARCS = 260000;
struct Node *nodes;
struct Arc *arcs;
int main() {
  int i; int iter;
  nodes = (struct Node*)malloc(NNODES * sizeof(struct Node));
  arcs = (struct Arc*)malloc(NARCS * sizeof(struct Arc));
  for (i = 0; i < NNODES; i++) {
    struct Node *n = &nodes[i];
    n->parent = &nodes[rng_range(NNODES)];
    n->child = &nodes[rng_range(NNODES)];
    n->sibling = &nodes[(i + 1) % NNODES];
    n->firstOut = &arcs[rng_range(NARCS)];
    n->firstIn = &arcs[rng_range(NARCS)];
    n->potential = rng_range(1000);
    n->depth = 0;
  }
  for (i = 0; i < NARCS; i++) {
    struct Arc *a = &arcs[i];
    a->head = &nodes[rng_range(NNODES)];
    a->nextOut = &arcs[rng_range(NARCS)];
    a->nextIn = &arcs[(i * 7 + 1) % NARCS];
    a->cost = rng_range(100) - 50;
    a->flow = 0;
  }
  long total = 0;
  /* Pricing sweeps: chase pointers through the network (the mcf hot
     loop: small code, giant data). */
  for (iter = 0; iter < 16; iter++) {
    struct Node *n = &nodes[iter * 13 % NNODES];
    int steps = 0;
    while (steps < 60000) {
      struct Arc *a = n->firstOut;
      int red = n->potential + a->cost - a->head->potential;
      if (red < 0) {
        a->flow += 1;
        total += (long)red;
        n = a->head;
      } else {
        n = n->parent;
        total += 1;
      }
      n->depth = steps;
      steps++;
    }
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "pointer-dense structs; wasm32 nodes are half native size; paper 0.81x/0.83x",
	}
}

// 433.milc: lattice QCD style streaming FP over a large working set;
// memory-bound, so codegen differences wash out (paper ~0.98x/1.01x).
func milc() *Workload {
	return &Workload{
		Name: "433.milc",
		Source: specProlog + `
int SITES = 16384;
double u[16384][9];
double v[16384][9];
double w[16384][9];
int main() {
  int s; int i; int iter;
  for (s = 0; s < SITES; s++) { for (i = 0; i < 9; i++) {
    u[s][i] = (double)((s * 9 + i) % 97) * 0.01 + 0.1;
    v[s][i] = (double)((s * 9 + i) % 89) * 0.01 + 0.2;
  } }
  for (iter = 0; iter < 4; iter++) {
    /* 3x3 complex-ish matrix multiply per site, streaming. */
    for (s = 0; s < SITES; s++) {
      int r; int c; int k;
      for (r = 0; r < 3; r++) { for (c = 0; c < 3; c++) {
        double acc = 0.0;
        for (k = 0; k < 3; k++) { acc += u[s][r*3+k] * v[s][k*3+c]; }
        w[s][r*3+c] = acc;
      } }
    }
    for (s = 0; s < SITES; s++) { for (i = 0; i < 9; i++) {
      u[s][i] = 0.9 * u[s][i] + 0.1 * w[(s + 1) % SITES][i];
    } }
  }
  double total = 0.0;
  for (s = 0; s < SITES; s += 7) { total += w[s][4]; }
  print_fixed(total); print_nl();
  return 0;
}`,
		Notes: "streaming FP, memory-bound; paper 0.98x/1.01x",
	}
}

// 444.namd: molecular-dynamics force loops: FP compute over neighbor
// lists that fit in cache (compute-bound; paper 1.36x/1.38x).
func namd() *Workload {
	return &Workload{
		Name: "444.namd",
		Source: specProlog + `
int NATOM = 480;
double px[480]; double py[480]; double pz[480];
double fx[480]; double fy[480]; double fz[480];
int main() {
  int i; int j; int step;
  for (i = 0; i < NATOM; i++) {
    px[i] = (double)rng_range(1000) * 0.01;
    py[i] = (double)rng_range(1000) * 0.01;
    pz[i] = (double)rng_range(1000) * 0.01;
    fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0;
  }
  for (step = 0; step < 6; step++) {
    for (i = 0; i < NATOM; i++) {
      for (j = i + 1; j < NATOM; j++) {
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        double r2 = dx*dx + dy*dy + dz*dz + 0.01;
        if (r2 < 16.0) {
          double inv = 1.0 / r2;
          double inv3 = inv * inv * inv;
          double f = inv3 * (inv3 - 0.5) * inv;
          fx[i] += f * dx; fy[i] += f * dy; fz[i] += f * dz;
          fx[j] -= f * dx; fy[j] -= f * dy; fz[j] -= f * dz;
        }
      }
    }
    for (i = 0; i < NATOM; i++) {
      px[i] += fx[i] * 0.0001;
      py[i] += fy[i] * 0.0001;
      pz[i] += fz[i] * 0.0001;
    }
  }
  double total = 0.0;
  for (i = 0; i < NATOM; i++) { total += fx[i] + fy[i] + fz[i]; }
  print_fixed(total); print_nl();
  return 0;
}`,
		Notes: "FP compute-bound; paper 1.36x/1.38x",
	}
}

// 445.gobmk: go-position evaluation: many small branchy pattern matchers
// over a board (paper 1.53x/1.56x).
func gobmk() *Workload {
	var fns strings.Builder
	for k := 0; k < 10; k++ {
		fmt.Fprintf(&fns, `
int pattern%d(int p) {
  int s = 0; int d;
  for (d = 0; d < 4; d++) {
    int q = p + dirs[d];
    if (q < 0 || q >= 361) { continue; }
    int c = board[q];
    if (c == board[p]) { s += %d; }
    else if (c == 0) { s += %d; }
    else { s -= %d; }
    if ((q %% 19) == 0 || (q %% 19) == 18) { s -= 1; }
  }
  return s;
}
`, k, k+2, k+1, k+3)
	}
	return &Workload{
		Name: "445.gobmk",
		Source: specProlog + `
int board[361];
int dirs[4] = {1, -1, 19, -19};
int libs[361];
` + fns.String() + `
int flood_liberties(int p) {
  int stack[64]; int sp = 0; int seen = 0;
  int color = board[p];
  int count = 0;
  stack[sp] = p; sp++;
  libs[p] = 1;
  while (sp > 0 && seen < 48) {
    int cur; int d;
    sp--; cur = stack[sp]; seen++;
    for (d = 0; d < 4; d++) {
      int q = cur + dirs[d];
      if (q < 0 || q >= 361) { continue; }
      if (board[q] == 0) { count++; }
      else if (board[q] == color && libs[q] == 0 && sp < 63) {
        libs[q] = 1;
        stack[sp] = q; sp++;
      }
    }
  }
  return count;
}
int main() {
  int i; int move; long total = 0;
  for (i = 0; i < 361; i++) { board[i] = rng_range(3); }
  for (move = 0; move < 2600; move++) {
    int p = rng_range(361);
    board[p] = 1 + (move & 1);
    int score = 0;
    score += pattern0(p); score += pattern1(p); score += pattern2(p);
    score += pattern3(p); score += pattern4(p); score += pattern5(p);
    score += pattern6(p); score += pattern7(p); score += pattern8(p);
    score += pattern9(p);
    for (i = 0; i < 361; i++) { libs[i] = 0; }
    if (board[p] != 0) { score += flood_liberties(p); }
    if (score < 0) { board[p] = 0; }
    total += (long)score;
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "many small branchy functions; paper 1.53x/1.56x",
	}
}

// 450.soplex: sparse simplex-style pivoting: indirect indexing, doubles,
// and virtual-function-style dispatch through function pointers
// (paper 1.48x/1.33x; the paper calls out its indirect-call misses).
func soplex() *Workload {
	return &Workload{
		Name: "450.soplex",
		Source: specProlog + `
int ROWS = 160;
int NNZ = 12;
double vals[160][12];
int cols[160][12];
double x[160]; double y[160];
double ratio_pricer(int r) {
  double best = 1000000.0; int k;
  for (k = 0; k < NNZ; k++) {
    double v = vals[r][k];
    if (v > 0.001) {
      double cand = x[cols[r][k]] / v;
      if (cand < best) { best = cand; }
    }
  }
  return best;
}
double devex_pricer(int r) {
  double s = 0.0; int k;
  for (k = 0; k < NNZ; k++) {
    double v = vals[r][k];
    s += v * v * x[cols[r][k]];
  }
  return s + 1.0;
}
double steepest_pricer(int r) {
  double s = 0.0; int k;
  for (k = 0; k < NNZ; k++) { s += vals[r][k] * y[cols[r][k]]; }
  if (s < 0.0) { s = -s; }
  return s + 0.5;
}
int main() {
  int r; int k; int iter;
  for (r = 0; r < ROWS; r++) {
    x[r] = (double)(rng_range(100) + 1) * 0.1;
    y[r] = (double)(rng_range(100) + 1) * 0.05;
    for (k = 0; k < NNZ; k++) {
      vals[r][k] = (double)rng_range(1000) * 0.003;
      cols[r][k] = rng_range(ROWS);
    }
  }
  double total = 0.0;
  for (iter = 0; iter < 140; iter++) {
    int which = iter % 3;
    double (*pricer)(int);
    if (which == 0) { pricer = ratio_pricer; }
    else if (which == 1) { pricer = devex_pricer; }
    else { pricer = steepest_pricer; }
    double best = -1.0; int bestRow = 0;
    for (r = 0; r < ROWS; r++) {
      double v = pricer(r);
      if (v > best) { best = v; bestRow = r; }
    }
    /* pivot update */
    for (k = 0; k < NNZ; k++) {
      int c = cols[bestRow][k];
      x[c] = x[c] * 0.98 + vals[bestRow][k] * 0.01;
      y[c] = y[c] + vals[bestRow][k] * 0.002;
    }
    total += best;
  }
  print_fixed(total); print_nl();
  return 0;
}`,
		Notes: "sparse indirection + function-pointer pricers; paper 1.48x/1.33x",
	}
}

// 453.povray: ray tracing with per-shape virtual dispatch and sqrt-heavy
// intersection math. The paper's worst case (2.5x Chrome / 2.08x Firefox):
// dense calls, FP spills, indirect-call checks.
func povray() *Workload {
	return &Workload{
		Name: "453.povray",
		Source: specProlog + `
struct Shape {
  double cx; double cy; double cz;
  double r;
  double (*hit)(struct Shape*, double, double, double, double, double, double);
};
double sphere_hit(struct Shape *s, double ox, double oy, double oz,
                  double dx, double dy, double dz) {
  double lx = s->cx - ox; double ly = s->cy - oy; double lz = s->cz - oz;
  double tca = lx*dx + ly*dy + lz*dz;
  if (tca < 0.0) { return -1.0; }
  double d2 = lx*lx + ly*ly + lz*lz - tca*tca;
  double r2 = s->r * s->r;
  if (d2 > r2) { return -1.0; }
  return tca - sqrt(r2 - d2);
}
double plane_hit(struct Shape *s, double ox, double oy, double oz,
                 double dx, double dy, double dz) {
  if (dy > -0.001 && dy < 0.001) { return -1.0; }
  double t = (s->cy - oy) / dy;
  if (t < 0.0) { return -1.0; }
  return t;
}
double blob_hit(struct Shape *s, double ox, double oy, double oz,
                double dx, double dy, double dz) {
  double t = 0.4; int i;
  for (i = 0; i < 3; i++) {
    double px = ox + dx*t - s->cx;
    double py = oy + dy*t - s->cy;
    double pz = oz + dz*t - s->cz;
    double f = px*px + py*py + pz*pz - s->r*s->r;
    if (f < 0.02 && f > -0.02) { return t; }
    t = t + f * 0.1;
    if (t < 0.0) { return -1.0; }
  }
  return -1.0;
}
int NSHAPES = 24;
struct Shape shapes[24];
int main() {
  int i; int px; int py;
  for (i = 0; i < NSHAPES; i++) {
    shapes[i].cx = (double)(rng_range(200) - 100) * 0.05;
    shapes[i].cy = (double)(rng_range(200) - 100) * 0.05;
    shapes[i].cz = (double)(rng_range(100) + 20) * 0.1;
    shapes[i].r = 0.3 + (double)rng_range(100) * 0.01;
    if (i % 3 == 0) { shapes[i].hit = sphere_hit; }
    else if (i % 3 == 1) { shapes[i].hit = plane_hit; }
    else { shapes[i].hit = blob_hit; }
  }
  double img = 0.0;
  for (py = 0; py < 40; py++) {
    for (px = 0; px < 40; px++) {
      double dx = ((double)px - 20.0) / 40.0;
      double dy = ((double)py - 20.0) / 40.0;
      double dz = 1.0;
      double n = sqrt(dx*dx + dy*dy + dz*dz);
      dx /= n; dy /= n; dz /= n;
      double best = 1000000.0; int hitIdx = -1;
      for (i = 0; i < NSHAPES; i++) {
        double t = shapes[i].hit(&shapes[i], 0.0, 0.0, 0.0, dx, dy, dz);
        if (t > 0.0 && t < best) { best = t; hitIdx = i; }
      }
      if (hitIdx >= 0) {
        img += 1.0 / (1.0 + best) + 0.01 * (double)hitIdx;
      }
    }
  }
  print_fixed(img); print_nl();
  return 0;
}`,
		Notes: "virtual dispatch per shape, sqrt-heavy; paper 2.5x/2.08x (worst case)",
	}
}

// 458.sjeng: chess search with a large flat code footprint: dozens of
// distinct evaluation routines. The wasm builds inflate past the 32 KB L1
// i-cache (paper: 26.5x/18.6x more icache misses; 1.68x/1.62x slowdown).
func sjeng() *Workload {
	var fns strings.Builder
	var calls strings.Builder
	const nEvals = 20
	for k := 0; k < nEvals; k++ {
		// Each evaluator is distinct code with its own constants and
		// mix of operations, so the footprint is genuinely large.
		fmt.Fprintf(&fns, `
int eval%d(int sq) {
  int s = 0; int f = sq %% 8; int rk = sq / 8;
  int a0 = sqboard[sq]; int a1 = centers[(sq + 1) & 63]; int a2 = history[sq & 255];
  int a3 = sqboard[(sq + 2) & 63]; int a4 = centers[(sq + 3) & 63]; int a5 = sqboard[(sq + 5) & 63];
  int a6 = centers[(sq + 7) & 63]; int a7 = history[(sq + 9) & 255];
  s += (f * %d + rk * %d) %% 23;
  if (sqboard[sq] == %d) { s += %d; } else if (sqboard[sq] > 2) { s -= %d; }
  s += centers[(sq + %d) %% 64];
  if (f > 1 && f < 6) { s += sqboard[(sq + %d) %% 64] * %d; }
  if (rk == %d) { s += %d; }
  s ^= (s << %d);
  s += history[(sq * %d + %d) %% 256] %% 17;
  s += (sqboard[(sq * 3 + %d) %% 64] * centers[(sq + rk) %% 64]) %% 29;
  if ((s & 7) == %d) { s += f * rk; } else { s -= (f + rk) %% 9; }
  if (s > 90) { s = 90 - (s %% 13); }
  if (s < -90) { s = -90 + (s %% 11); }
  s += a0 * 3 + a1 - a2 + a3 * 2 - a4 + a5 - a6 * 2 + a7;
  return s;
}
`, k, k%7+1, k%5+2, k%6, k%9+3, k%4+1, k*3%64, k*5%64, k%3+1,
			k%8, k%12+4, k%5+1, k*7%13+1, k*11%251, k*13%61+1, k%8)
		fmt.Fprintf(&calls, "    if (kind == %d) { score += eval%d(sq); }\n", k, k)
	}
	return &Workload{
		Name: "458.sjeng",
		Source: specProlog + `
int sqboard[64];
int centers[64];
int history[256];
` + fns.String() + `
int evaluate(int sq, int kind) {
  int score = 0;
` + calls.String() + `
  return score;
}
int search(int depth, int alpha, int beta, int sq) {
  if (depth == 0) { return evaluate(sq % 64, (sq * 13 + depth) % ` + fmt.Sprint(nEvals) + `); }
  int best = -10000; int m;
  for (m = 0; m < 5; m++) {
    int nsq = (sq * 5 + m * 11 + depth) % 64;
    int v = -search(depth - 1, -beta, -alpha, nsq);
    if (v > best) { best = v; }
    if (best > alpha) { alpha = best; }
    if (alpha >= beta) { break; }
  }
  history[(sq + depth) % 256] += 1;
  return best;
}
int main() {
  int i; long total = 0;
  for (i = 0; i < 64; i++) { sqboard[i] = rng_range(12); centers[i] = rng_range(9) - 4; }
  for (i = 0; i < 256; i++) { history[i] = 0; }
  for (i = 0; i < 28; i++) {
    total += (long)search(6, -10000, 10000, rng_range(64));
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "huge flat code footprint; paper icache misses 26.5x/18.6x, slowdown 1.68x/1.62x",
	}
}

// 462.libquantum: quantum register simulation: bit manipulation streamed
// over a large state array (paper 1.35x/1.17x).
func libquantum() *Workload {
	return &Workload{
		Name: "462.libquantum",
		Source: specProlog + `
int N = 131072;
unsigned state[131072];
int main() {
  int i; int gate;
  for (i = 0; i < N; i++) { state[i] = rng(); }
  long total = 0;
  for (gate = 0; gate < 22; gate++) {
    int control = gate % 17;
    int target = (gate * 7 + 3) % 19;
    for (i = 0; i < N; i++) {
      unsigned v = state[i];
      if (v & (1u << control)) {
        v = v ^ (1u << target);
        v = (v << 1) | (v >> 31);
      }
      state[i] = v;
    }
    /* phase accumulation */
    unsigned acc = 0;
    for (i = 0; i < N; i += 16) { acc += state[i] >> 16; }
    total += (long)(acc & 0xffffu);
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "streaming bit ops; paper 1.35x/1.17x",
	}
}

// 464.h264ref: motion-estimation SAD loops over byte frames, plus output
// file writes (the BrowserFS append-path workload from §2; paper
// 2.07x/1.88x).
func h264ref() *Workload {
	return &Workload{
		Name: "464.h264ref",
		Source: specProlog + `
int W = 176; int H = 144;
char cur[25344];
char ref[25344];
int sad16(int cx, int cy, int rx, int ry) {
  int s = 0; int y; int x;
  for (y = 0; y < 16; y++) {
    int co = (cy + y) * W + cx;
    int ro = (ry + y) * W + rx;
    for (x = 0; x < 16; x++) {
      int d = (cur[co + x] & 255) - (ref[ro + x] & 255);
      if (d < 0) { d = -d; }
      s += d;
    }
  }
  return s;
}
int main() {
  int i; int frame;
  int out = sys_open("/out/rec.yuv", 64 | 512 | 1, 0);
  long total = 0;
  for (i = 0; i < W * H; i++) { ref[i] = (char)rng_range(220); }
  for (frame = 0; frame < 3; frame++) {
    for (i = 0; i < W * H; i++) {
      int v = (ref[i] & 255) + rng_range(9) - 4;
      if (v < 0) { v = 0; }
      if (v > 255) { v = 255; }
      cur[i] = (char)v;
    }
    int by; int bx;
    for (by = 0; by + 16 <= H; by += 16) {
      for (bx = 0; bx + 16 <= W; bx += 16) {
        int best = 1 << 30; int bmx = 0; int bmy = 0;
        int my; int mx;
        for (my = -3; my <= 3; my++) {
          for (mx = -3; mx <= 3; mx++) {
            int rx = bx + mx; int ry = by + my;
            if (rx < 0 || ry < 0 || rx + 16 > W || ry + 16 > H) { continue; }
            int s = sad16(bx, by, rx, ry);
            if (s < best) { best = s; bmx = mx; bmy = my; }
          }
        }
        total += (long)(best + bmx + bmy);
        /* write reconstructed block row by row (appends) */
        char hdr[4];
        hdr[0] = (char)bx; hdr[1] = (char)by; hdr[2] = (char)(best & 127); hdr[3] = (char)10;
        sys_write(out, hdr, 4);
      }
    }
    for (i = 0; i < W * H; i++) { ref[i] = cur[i]; }
  }
  sys_close(out);
  print_long(total); print_nl();
  return 0;
}`,
		Files: map[string][]byte{"/out/.keep": {}},
		Notes: "byte SAD loops + append-heavy output; paper 2.07x/1.88x",
	}
}

// 470.lbm: lattice-Boltzmann streaming stencil over large double arrays
// (memory-bound; paper 1.19x/1.19x).
func lbm() *Workload {
	return &Workload{
		Name: "470.lbm",
		Source: specProlog + `
int NX = 64; int NY = 64;
double f0[4096]; double f1[4096]; double f2[4096]; double f3[4096]; double f4[4096];
double g0[4096]; double g1[4096]; double g2[4096]; double g3[4096]; double g4[4096];
int main() {
  int i; int t; int x; int y;
  for (i = 0; i < NX * NY; i++) {
    f0[i] = 0.4; f1[i] = 0.15; f2[i] = 0.15; f3[i] = 0.15; f4[i] = 0.15;
    if (i % 37 == 0) { f1[i] += 0.05; }
  }
  for (t = 0; t < 14; t++) {
    for (y = 1; y < NY - 1; y++) {
      for (x = 1; x < NX - 1; x++) {
        int p = y * NX + x;
        double rho = f0[p] + f1[p] + f2[p] + f3[p] + f4[p];
        double ux = (f1[p] - f2[p]) / rho;
        double uy = (f3[p] - f4[p]) / rho;
        double usq = 1.5 * (ux*ux + uy*uy);
        g0[p] = f0[p] + 0.6 * (rho * 0.4 * (1.0 - usq) - f0[p]);
        g1[p + 1] = f1[p] + 0.6 * (rho * 0.15 * (1.0 + 3.0*ux + 4.5*ux*ux - usq) - f1[p]);
        g2[p - 1] = f2[p] + 0.6 * (rho * 0.15 * (1.0 - 3.0*ux + 4.5*ux*ux - usq) - f2[p]);
        g3[p + NX] = f3[p] + 0.6 * (rho * 0.15 * (1.0 + 3.0*uy + 4.5*uy*uy - usq) - f3[p]);
        g4[p - NX] = f4[p] + 0.6 * (rho * 0.15 * (1.0 - 3.0*uy + 4.5*uy*uy - usq) - f4[p]);
      }
    }
    for (i = 0; i < NX * NY; i++) {
      f0[i] = g0[i]; f1[i] = g1[i]; f2[i] = g2[i]; f3[i] = g3[i]; f4[i] = g4[i];
    }
  }
  double total = 0.0;
  for (i = 0; i < NX * NY; i += 5) { total += f0[i] + f1[i]; }
  print_fixed(total); print_nl();
  return 0;
}`,
		Notes: "streaming stencil, memory-bound; paper 1.19x/1.19x",
	}
}

// 473.astar: grid pathfinding with a binary heap (paper 1.59x/1.36x).
func astar() *Workload {
	return &Workload{
		Name: "473.astar",
		Source: specProlog + `
int W = 128; int H = 128;
char grid[16384];
int dist[16384];
int heap[16384]; int heapv[16384]; int hn = 0;
void hpush(int node, int d) {
  int i = hn; hn++;
  heap[i] = node; heapv[i] = d;
  while (i > 0) {
    int p = (i - 1) / 2;
    if (heapv[p] <= heapv[i]) { break; }
    int tn = heap[p]; heap[p] = heap[i]; heap[i] = tn;
    int tv = heapv[p]; heapv[p] = heapv[i]; heapv[i] = tv;
    i = p;
  }
}
int hpop() {
  int top = heap[0];
  hn--;
  heap[0] = heap[hn]; heapv[0] = heapv[hn];
  int i = 0;
  while (1) {
    int l = 2*i + 1; int r = 2*i + 2; int m = i;
    if (l < hn && heapv[l] < heapv[m]) { m = l; }
    if (r < hn && heapv[r] < heapv[m]) { m = r; }
    if (m == i) { break; }
    int tn = heap[m]; heap[m] = heap[i]; heap[i] = tn;
    int tv = heapv[m]; heapv[m] = heapv[i]; heapv[i] = tv;
    i = m;
  }
  return top;
}
int main() {
  int i; int q; long total = 0;
  for (i = 0; i < W * H; i++) { grid[i] = (char)(rng_range(100) < 22 ? 1 : 0); }
  for (q = 0; q < 10; q++) {
    int start = rng_range(W * H);
    int goal = rng_range(W * H);
    for (i = 0; i < W * H; i++) { dist[i] = 1 << 29; }
    hn = 0;
    dist[start] = 0;
    hpush(start, 0);
    int expanded = 0;
    while (hn > 0 && expanded < 24000) {
      int u = hpop();
      expanded++;
      if (u == goal) { break; }
      int ux = u % W; int uy = u / W;
      int d;
      for (d = 0; d < 4; d++) {
        int vx = ux; int vy = uy;
        if (d == 0) { vx++; } else if (d == 1) { vx--; }
        else if (d == 2) { vy++; } else { vy--; }
        if (vx < 0 || vy < 0 || vx >= W || vy >= H) { continue; }
        int v = vy * W + vx;
        if (grid[v]) { continue; }
        int nd = dist[u] + 1;
        if (nd < dist[v]) {
          dist[v] = nd;
          int hx = vx - goal % W; if (hx < 0) { hx = -hx; }
          int hy = vy - goal / W; if (hy < 0) { hy = -hy; }
          hpush(v, nd + hx + hy);
        }
      }
    }
    total += (long)(dist[goal] < (1 << 29) ? dist[goal] : -1) + (long)expanded;
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "heap + grid search; paper 1.59x/1.36x",
	}
}

// 482.sphinx3: acoustic scoring: gaussian dot products with table-driven
// log-add (paper 2.19x/1.87x).
func sphinx3() *Workload {
	return &Workload{
		Name: "482.sphinx3",
		Source: specProlog + `
int NSEN = 120; int NDIM = 32; int NFRAMES = 40;
double means[120][32];
double vars[120][32];
double feat[32];
int logtab[512];
int main() {
  int s; int d; int fno;
  for (s = 0; s < NSEN; s++) { for (d = 0; d < NDIM; d++) {
    means[s][d] = (double)(rng_range(200) - 100) * 0.01;
    vars[s][d] = 0.5 + (double)rng_range(100) * 0.01;
  } }
  for (s = 0; s < 512; s++) { logtab[s] = (512 - s) * 3 / 2; }
  long total = 0;
  for (fno = 0; fno < NFRAMES; fno++) {
    for (d = 0; d < NDIM; d++) { feat[d] = (double)(rng_range(200) - 100) * 0.01; }
    int bestScore = -(1 << 30);
    for (s = 0; s < NSEN; s++) {
      double acc = 0.0;
      for (d = 0; d < NDIM; d++) {
        double diff = feat[d] - means[s][d];
        acc += diff * diff * vars[s][d];
      }
      int score = -(int)(acc * 64.0);
      /* table-driven log-add */
      int delta = bestScore - score;
      if (delta < 0) { delta = -delta; }
      if (delta < 512) { score += logtab[delta]; }
      if (score > bestScore) { bestScore = score; }
    }
    total += (long)bestScore;
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "gaussian scoring + table lookups; paper 2.19x/1.87x",
	}
}

// 641.leela_s: Monte-Carlo tree search playouts on a small board: branchy
// integer work with some FP in the UCT formula (paper 1.77x/1.54x).
func leela() *Workload {
	return &Workload{
		Name: "641.leela_s",
		Source: specProlog + `
int board[81];
int visits[81];
double wins[81];
int playout(int start) {
  int pos = start; int steps = 0; int score = 0;
  while (steps < 60) {
    int mv = (pos * 31 + (int)(rng() & 63u)) % 81;
    if (board[mv] == 0) {
      board[mv] = 1 + (steps & 1);
      score += (board[(mv + 1) % 81] == board[mv]) ? 2 : -1;
      pos = mv;
    } else {
      pos = (pos + 7) % 81;
      score -= 1;
    }
    steps++;
  }
  /* undo */
  int i;
  for (i = 0; i < 81; i++) { if (board[i] != 9 && visits[i] == 0) { } }
  return score;
}
int main() {
  int i; int iter; long total = 0;
  for (i = 0; i < 81; i++) { board[i] = 0; visits[i] = 0; wins[i] = 0.0; }
  for (iter = 0; iter < 2400; iter++) {
    /* UCT selection */
    double bestU = -1000000.0; int best = 0;
    double logN = 1.0;
    int n = iter + 1;
    while (n > 1) { logN += 0.7; n >>= 1; }
    for (i = 0; i < 81; i += 4) {
      double u;
      if (visits[i] == 0) { u = 10000.0 - (double)i; }
      else { u = wins[i] / (double)visits[i] + 1.4 * sqrt(logN / (double)visits[i]); }
      if (u > bestU) { bestU = u; best = i; }
    }
    int sc = playout(best);
    visits[best] += 1;
    wins[best] += (double)(sc > 0 ? 1 : 0);
    total += (long)sc;
    if ((iter & 127) == 0) { for (i = 0; i < 81; i++) { board[i] = 0; } }
  }
  print_long(total); print_nl();
  return 0;
}`,
		Notes: "MCTS playouts, branchy int + UCT FP; paper 1.77x/1.54x",
	}
}

// 644.nab_s: nucleic-acid molecular mechanics: FP force kernels with
// divisions and square roots (paper 1.47x/1.55x).
func nab() *Workload {
	return &Workload{
		Name: "644.nab_s",
		Source: specProlog + `
int N = 560;
double pos[1680];
double frc[1680];
double chg[560];
int main() {
  int i; int j; int step;
  for (i = 0; i < N; i++) {
    pos[i*3] = (double)rng_range(500) * 0.02;
    pos[i*3+1] = (double)rng_range(500) * 0.02;
    pos[i*3+2] = (double)rng_range(500) * 0.02;
    chg[i] = (double)(rng_range(21) - 10) * 0.1;
    frc[i*3] = 0.0; frc[i*3+1] = 0.0; frc[i*3+2] = 0.0;
  }
  for (step = 0; step < 3; step++) {
    for (i = 0; i < N; i++) {
      for (j = i + 1; j < N; j++) {
        double dx = pos[i*3] - pos[j*3];
        double dy = pos[i*3+1] - pos[j*3+1];
        double dz = pos[i*3+2] - pos[j*3+2];
        double r2 = dx*dx + dy*dy + dz*dz + 0.04;
        double r = sqrt(r2);
        double e = chg[i] * chg[j] / r;
        double f = e / r2;
        frc[i*3] += f * dx; frc[i*3+1] += f * dy; frc[i*3+2] += f * dz;
        frc[j*3] -= f * dx; frc[j*3+1] -= f * dy; frc[j*3+2] -= f * dz;
      }
    }
    for (i = 0; i < 3 * N; i++) { pos[i] += frc[i] * 0.00001; }
  }
  double total = 0.0;
  for (i = 0; i < 3 * N; i += 3) { total += frc[i]; }
  print_fixed(total); print_nl();
  return 0;
}`,
		Notes: "FP with div/sqrt; paper 1.47x/1.55x",
	}
}
