package workloads

// Short-mode subsets: `go test -short` runs the differential suites over
// the cheapest workloads (by simulated instruction count) so the whole
// repository tests in a few seconds while still crossing every engine
// configuration and the full compile-link-simulate path. The full suites
// remain the source of truth for counter bit-identity.

// shortPolybench lists the fastest Polybench kernels.
var shortPolybench = map[string]bool{
	"durbin":   true,
	"trisolv":  true,
	"bicg":     true,
	"ludcmp":   true,
	"cholesky": true,
	"mvt":      true,
}

// shortSPEC lists the fastest SPEC-shaped workloads.
var shortSPEC = map[string]bool{
	"641.leela_s": true,
	"470.lbm":     true,
	"445.gobmk":   true,
}

// ShortPolybench returns the scaled-down Polybench suite for -short runs.
func ShortPolybench() []*Workload {
	return filter(Polybench(), shortPolybench)
}

// ShortSPEC returns the scaled-down SPEC suite for -short runs.
func ShortSPEC() []*Workload {
	return filter(SPECCPU(), shortSPEC)
}

func filter(ws []*Workload, keep map[string]bool) []*Workload {
	var out []*Workload
	for _, w := range ws {
		if keep[w.Name] {
			out = append(out, w)
		}
	}
	return out
}
