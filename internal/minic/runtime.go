package minic

// runtimeSource is the mini-C runtime linked into every program: a freelist
// allocator over the wasm heap arena, string/memory helpers, and stdio
// wrappers over the Browsix syscalls. It plays the role of Emscripten's
// musl-lite runtime.
const runtimeSource = `
char *__brk = 0;
char *__hend = 0;
char *__flist = 0;

char* malloc(int n) {
  char *p; char *prev;
  if (n < 8) { n = 8; }
  n = (n + 7) & -8;
  if (__brk == 0) { __brk = (char*)heap_base(); __hend = (char*)heap_end(); }
  p = __flist; prev = 0;
  while (p) {
    int sz = *(int*)(p - 8);
    char *next = *(char**)p;
    if (sz >= n) {
      if (prev) { *(char**)prev = next; } else { __flist = next; }
      return p;
    }
    prev = p; p = next;
  }
  if (__brk + n + 8 > __hend) {
    int need = (n + 8 + 65535) / 65536 + 16;
    if (grow_memory(need) < 0) { return 0; }
    __hend = __hend + need * 65536;
  }
  *(int*)__brk = n;
  p = __brk + 8;
  __brk = __brk + n + 8;
  return p;
}

void free(char *p) {
  if (!p) { return; }
  *(char**)p = __flist;
  __flist = p;
}

char* calloc(int n, int sz) {
  char *p = malloc(n * sz);
  if (p) { memset(p, 0, n * sz); }
  return p;
}

void memset(char *d, int v, int n) {
  long w; int i;
  w = v & 255;
  w = w | (w << 8); w = w | (w << 16); w = w | (w << 32);
  while (n >= 8) { *(long*)d = w; d += 8; n -= 8; }
  while (n > 0) { *d = (char)v; d += 1; n -= 1; }
}

void memcpy(char *d, char *s, int n) {
  while (n >= 8) { *(long*)d = *(long*)s; d += 8; s += 8; n -= 8; }
  while (n > 0) { *d = *s; d += 1; s += 1; n -= 1; }
}

int memcmp(char *a, char *b, int n) {
  while (n > 0) {
    int d = (*a & 255) - (*b & 255);
    if (d) { return d; }
    a += 1; b += 1; n -= 1;
  }
  return 0;
}

int strlen(char *s) {
  int n = 0;
  while (s[n]) { n += 1; }
  return n;
}

int strcmp(char *a, char *b) {
  while (*a && *a == *b) { a += 1; b += 1; }
  return (*a & 255) - (*b & 255);
}

void strcpy(char *d, char *s) {
  while (*s) { *d = *s; d += 1; s += 1; }
  *d = 0;
}

int atoi(char *s) {
  int v = 0; int neg = 0;
  while (*s == ' ') { s += 1; }
  if (*s == '-') { neg = 1; s += 1; }
  while (*s >= '0' && *s <= '9') { v = v * 10 + (*s - '0'); s += 1; }
  if (neg) { return -v; }
  return v;
}

void fd_puts(int fd, char *s) {
  sys_write(fd, s, strlen(s));
}

void puts(char *s) {
  fd_puts(1, s);
  sys_write(1, "\n", 1);
}

void print_str(char *s) { fd_puts(1, s); }

void fd_put_int(int fd, int v) {
  char buf[16]; int i = 15; int neg = 0;
  unsigned u;
  if (v < 0) { neg = 1; u = (unsigned)(-v); } else { u = (unsigned)v; }
  buf[15] = 0;
  if (u == 0) { i -= 1; buf[i] = '0'; }
  while (u > 0) { i -= 1; buf[i] = (char)('0' + (int)(u % 10u)); u = u / 10u; }
  if (neg) { i -= 1; buf[i] = '-'; }
  sys_write(fd, &buf[i], 15 - i);
}

void print_int(int v) { fd_put_int(1, v); }

void print_long(long v) {
  char buf[24]; int i = 23; int neg = 0;
  if (v < 0) { neg = 1; v = -v; }
  buf[23] = 0;
  if (v == 0) { i -= 1; buf[i] = '0'; }
  while (v > 0) { i -= 1; buf[i] = (char)('0' + (int)(v % 10)); v = v / 10; }
  if (neg) { i -= 1; buf[i] = '-'; }
  sys_write(1, &buf[i], 23 - i);
}

/* print_fixed prints v with 6 decimal places (enough for output
   validation with cmp). */
void print_fixed(double v) {
  long ip; double fp; long scaled;
  if (v < 0.0) { sys_write(1, "-", 1); v = -v; }
  ip = (long)v;
  fp = v - (double)ip;
  print_long(ip);
  sys_write(1, ".", 1);
  scaled = (long)(fp * 1000000.0 + 0.5);
  if (scaled >= 1000000) { scaled = 999999; }
  { char b[8]; int i;
    for (i = 5; i >= 0; i -= 1) { b[i] = (char)('0' + (int)(scaled % 10)); scaled = scaled / 10; }
    b[6] = 0;
    sys_write(1, b, 6);
  }
}

void print_nl() { sys_write(1, "\n", 1); }
`
