package minic

import (
	"repro/internal/wasm"
)

// lval describes an lvalue: either a wasm register local or a memory
// location whose address has been pushed on the wasm stack.
type lval struct {
	isLocal bool
	local   uint32
	t       *Type
}

// loadScalar emits the load for type t from [addr+off] (addr on stack).
func (fg *fgen) loadScalar(t *Type, off uint32) {
	fb := fg.fb
	switch t.Kind {
	case TChar:
		fb.Load(wasm.OpI32Load8S, off)
	case TInt, TUint:
		fb.Load(wasm.OpI32Load, off)
	case TLong, TULong:
		fb.Load(wasm.OpI64Load, off)
	case TFloat:
		fb.Load(wasm.OpF32Load, off)
	case TDouble:
		fb.Load(wasm.OpF64Load, off)
	case TPtr:
		if fg.g.abi.PtrSize == 8 {
			// Pointers are stored as 8 bytes in the native data model but
			// compute as i32.
			fb.Load(wasm.OpI64Load, off)
			fb.Op(wasm.OpI32WrapI64)
		} else {
			fb.Load(wasm.OpI32Load, off)
		}
	}
}

// storeScalar emits the store for type t to [addr+off]; stack: [addr value].
func (fg *fgen) storeScalar(t *Type, off uint32) {
	fb := fg.fb
	switch t.Kind {
	case TChar:
		fb.Store(wasm.OpI32Store8, off)
	case TInt, TUint:
		fb.Store(wasm.OpI32Store, off)
	case TLong, TULong:
		fb.Store(wasm.OpI64Store, off)
	case TFloat:
		fb.Store(wasm.OpF32Store, off)
	case TDouble:
		fb.Store(wasm.OpF64Store, off)
	case TPtr:
		if fg.g.abi.PtrSize == 8 {
			fb.Op(wasm.OpI64ExtendI32U)
			fb.Store(wasm.OpI64Store, off)
		} else {
			fb.Store(wasm.OpI32Store, off)
		}
	}
}

// convert coerces the stack top from type `from` to type `to`.
func (fg *fgen) convert(from, to *Type, line int) error {
	fb := fg.fb
	if from == nil || to == nil {
		return fg.errf(line, "internal: nil type in conversion")
	}
	if sameType(from, to) {
		return nil
	}
	// Pointer/array/int interconversion at the wasm level is free (all i32).
	fi := from.isInt() || from.Kind == TPtr || from.Kind == TArray
	ti := to.isInt() || to.Kind == TPtr
	switch {
	case fi && ti:
		f64 := from.is64()
		t64 := to.is64()
		switch {
		case f64 && !t64:
			fb.Op(wasm.OpI32WrapI64)
		case !f64 && t64:
			if from.isUnsigned() || from.Kind == TPtr || from.Kind == TArray {
				fb.Op(wasm.OpI64ExtendI32U)
			} else {
				fb.Op(wasm.OpI64ExtendI32S)
			}
		}
		if to.Kind == TChar {
			// Truncate to signed char value.
			if t64 {
				fb.Op(wasm.OpI32WrapI64)
			}
			fb.I32Const(24).Op(wasm.OpI32Shl)
			fb.I32Const(24).Op(wasm.OpI32ShrS)
			if t64 {
				fb.Op(wasm.OpI64ExtendI32S)
			}
		}
		return nil
	case fi && to.isFloat():
		var op wasm.Opcode
		switch {
		case from.is64() && to.Kind == TDouble:
			op = wasm.OpF64ConvertI64S
			if from.isUnsigned() {
				op = wasm.OpF64ConvertI64U
			}
		case from.is64():
			op = wasm.OpF32ConvertI64S
			if from.isUnsigned() {
				op = wasm.OpF32ConvertI64U
			}
		case to.Kind == TDouble:
			op = wasm.OpF64ConvertI32S
			if from.isUnsigned() || from.Kind == TPtr {
				op = wasm.OpF64ConvertI32U
			}
		default:
			op = wasm.OpF32ConvertI32S
			if from.isUnsigned() || from.Kind == TPtr {
				op = wasm.OpF32ConvertI32U
			}
		}
		fb.Op(op)
		return nil
	case from.isFloat() && ti:
		var op wasm.Opcode
		switch {
		case from.Kind == TDouble && to.is64():
			op = wasm.OpI64TruncF64S
			if to.isUnsigned() {
				op = wasm.OpI64TruncF64U
			}
		case from.Kind == TDouble:
			op = wasm.OpI32TruncF64S
			if to.isUnsigned() {
				op = wasm.OpI32TruncF64U
			}
		case to.is64():
			op = wasm.OpI64TruncF32S
			if to.isUnsigned() {
				op = wasm.OpI64TruncF32U
			}
		default:
			op = wasm.OpI32TruncF32S
			if to.isUnsigned() {
				op = wasm.OpI32TruncF32U
			}
		}
		fb.Op(op)
		if to.Kind == TChar {
			fb.I32Const(24).Op(wasm.OpI32Shl)
			fb.I32Const(24).Op(wasm.OpI32ShrS)
		}
		return nil
	case from.Kind == TFloat && to.Kind == TDouble:
		fb.Op(wasm.OpF64PromoteF32)
		return nil
	case from.Kind == TDouble && to.Kind == TFloat:
		fb.Op(wasm.OpF32DemoteF64)
		return nil
	case to.Kind == TVoid:
		return nil
	}
	return fg.errf(line, "cannot convert %s to %s", from, to)
}

// commonType computes the usual-arithmetic-conversion result.
func commonType(a, b *Type) *Type {
	if a.Kind == TDouble || b.Kind == TDouble {
		return tyDouble
	}
	if a.Kind == TFloat || b.Kind == TFloat {
		return tyFloat
	}
	if a.is64() || b.is64() {
		if a.Kind == TULong || b.Kind == TULong {
			return tyULong
		}
		return tyLong
	}
	if a.Kind == TUint || b.Kind == TUint {
		return tyUint
	}
	return tyInt
}

// binOpcode returns the wasm opcode for operator tok at type t.
func binOpcode(tok string, t *Type) (wasm.Opcode, bool) {
	type key struct {
		tok string
		cls int // 0=i32, 1=i64, 2=f32, 3=f64
	}
	cls := 0
	switch {
	case t.Kind == TFloat:
		cls = 2
	case t.Kind == TDouble:
		cls = 3
	case t.is64():
		cls = 1
	}
	uns := t.isUnsigned() || t.Kind == TPtr
	pick4 := func(a, b, c, d wasm.Opcode) (wasm.Opcode, bool) {
		return [4]wasm.Opcode{a, b, c, d}[cls], true
	}
	switch tok {
	case "+":
		return pick4(wasm.OpI32Add, wasm.OpI64Add, wasm.OpF32Add, wasm.OpF64Add)
	case "-":
		return pick4(wasm.OpI32Sub, wasm.OpI64Sub, wasm.OpF32Sub, wasm.OpF64Sub)
	case "*":
		return pick4(wasm.OpI32Mul, wasm.OpI64Mul, wasm.OpF32Mul, wasm.OpF64Mul)
	case "/":
		if cls >= 2 {
			return pick4(0, 0, wasm.OpF32Div, wasm.OpF64Div)
		}
		if uns {
			return pick4(wasm.OpI32DivU, wasm.OpI64DivU, 0, 0)
		}
		return pick4(wasm.OpI32DivS, wasm.OpI64DivS, 0, 0)
	case "%":
		if cls >= 2 {
			return 0, false
		}
		if uns {
			return pick4(wasm.OpI32RemU, wasm.OpI64RemU, 0, 0)
		}
		return pick4(wasm.OpI32RemS, wasm.OpI64RemS, 0, 0)
	case "&":
		return pick4(wasm.OpI32And, wasm.OpI64And, 0, 0)
	case "|":
		return pick4(wasm.OpI32Or, wasm.OpI64Or, 0, 0)
	case "^":
		return pick4(wasm.OpI32Xor, wasm.OpI64Xor, 0, 0)
	case "<<":
		return pick4(wasm.OpI32Shl, wasm.OpI64Shl, 0, 0)
	case ">>":
		if uns {
			return pick4(wasm.OpI32ShrU, wasm.OpI64ShrU, 0, 0)
		}
		return pick4(wasm.OpI32ShrS, wasm.OpI64ShrS, 0, 0)
	}
	return 0, false
}

// cmpOpcode returns the wasm comparison opcode for tok at operand type t.
func cmpOpcode(tok string, t *Type) (wasm.Opcode, bool) {
	uns := t.isUnsigned() || t.Kind == TPtr || t.Kind == TArray
	switch t.Kind {
	case TFloat:
		switch tok {
		case "==":
			return wasm.OpF32Eq, true
		case "!=":
			return wasm.OpF32Ne, true
		case "<":
			return wasm.OpF32Lt, true
		case ">":
			return wasm.OpF32Gt, true
		case "<=":
			return wasm.OpF32Le, true
		case ">=":
			return wasm.OpF32Ge, true
		}
	case TDouble:
		switch tok {
		case "==":
			return wasm.OpF64Eq, true
		case "!=":
			return wasm.OpF64Ne, true
		case "<":
			return wasm.OpF64Lt, true
		case ">":
			return wasm.OpF64Gt, true
		case "<=":
			return wasm.OpF64Le, true
		case ">=":
			return wasm.OpF64Ge, true
		}
	case TLong, TULong:
		switch tok {
		case "==":
			return wasm.OpI64Eq, true
		case "!=":
			return wasm.OpI64Ne, true
		case "<":
			if uns {
				return wasm.OpI64LtU, true
			}
			return wasm.OpI64LtS, true
		case ">":
			if uns {
				return wasm.OpI64GtU, true
			}
			return wasm.OpI64GtS, true
		case "<=":
			if uns {
				return wasm.OpI64LeU, true
			}
			return wasm.OpI64LeS, true
		case ">=":
			if uns {
				return wasm.OpI64GeU, true
			}
			return wasm.OpI64GeS, true
		}
	default:
		switch tok {
		case "==":
			return wasm.OpI32Eq, true
		case "!=":
			return wasm.OpI32Ne, true
		case "<":
			if uns {
				return wasm.OpI32LtU, true
			}
			return wasm.OpI32LtS, true
		case ">":
			if uns {
				return wasm.OpI32GtU, true
			}
			return wasm.OpI32GtS, true
		case "<=":
			if uns {
				return wasm.OpI32LeU, true
			}
			return wasm.OpI32LeS, true
		case ">=":
			if uns {
				return wasm.OpI32GeU, true
			}
			return wasm.OpI32GeS, true
		}
	}
	return 0, false
}

// decay converts array values to element pointers.
func decay(t *Type) *Type {
	if t.Kind == TArray {
		return ptrTo(t.Elem)
	}
	return t
}

// expr generates code pushing the expression value, returning its type.
func (fg *fgen) expr(e *Expr) (*Type, error) {
	fb := fg.fb
	switch e.Op {
	case "num":
		if e.Ival > 0x7fffffff || e.Ival < -0x80000000 {
			fb.I64Const(e.Ival)
			return tyLong, nil
		}
		fb.I32Const(int32(e.Ival))
		return tyInt, nil

	case "fnum":
		fb.F64Const(e.Fval)
		return tyDouble, nil

	case "str":
		addr := fg.g.internString(e.Sval)
		fb.I32Const(int32(addr))
		return ptrTo(tyChar), nil

	case "sizeof":
		t := e.T
		if t == nil {
			var err error
			t, err = fg.typeOf(e.X)
			if err != nil {
				return nil, err
			}
		}
		fb.I32Const(int32(t.size(fg.g.abi.PtrSize)))
		return tyInt, nil

	case "var":
		// Local or global variable, or function reference.
		if li, ok := fg.lookup(e.Name); ok {
			if li.isMem {
				if li.t.Kind == TArray || li.t.Kind == TStruct {
					// Aggregates evaluate to their address.
					fb.LocalGet(fg.spLocal)
					if li.off != 0 {
						fb.I32Const(int32(li.off)).Op(wasm.OpI32Add)
					}
					return decayAggregate(li.t), nil
				}
				fb.LocalGet(fg.spLocal)
				fg.loadScalar(li.t, uint32(li.off))
				return li.t, nil
			}
			fb.LocalGet(li.local)
			return li.t, nil
		}
		if addr, ok := fg.g.globalAddr[e.Name]; ok {
			t := fg.g.globalType[e.Name]
			if t.Kind == TArray || t.Kind == TStruct {
				fb.I32Const(int32(addr))
				return decayAggregate(t), nil
			}
			fb.I32Const(int32(addr))
			fg.loadScalar(t, 0)
			return t, nil
		}
		if fi, ok := fg.g.funcs[e.Name]; ok {
			slot, err := fg.g.tableIndexOf(e.Name)
			if err != nil {
				return nil, err
			}
			fb.I32Const(int32(slot))
			return &Type{Kind: TPtr, Fn: fi.sig}, nil
		}
		return nil, fg.errf(e.Line, "undefined identifier %q", e.Name)

	case "call":
		return fg.call(e)

	case "bin":
		return fg.binary(e)

	case "un":
		return fg.unary(e)

	case "assign":
		return fg.assign(e)

	case "post":
		return fg.postIncDec(e)

	case "cond":
		if err := fg.cond(e.X); err != nil {
			return nil, err
		}
		// Determine the common result type by dry-typing both arms.
		at, err := fg.typeOf(e.Y)
		if err != nil {
			return nil, err
		}
		bt, err := fg.typeOf(e.Z)
		if err != nil {
			return nil, err
		}
		rt := decay(at)
		if !sameType(decay(at), decay(bt)) {
			rt = commonType(decay(at), decay(bt))
		}
		fb.If(wasm.BlockOf(fg.g.valType(rt)))
		t1, err := fg.expr(e.Y)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(t1), rt, e.Line); err != nil {
			return nil, err
		}
		fb.Else()
		t2, err := fg.expr(e.Z)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(t2), rt, e.Line); err != nil {
			return nil, err
		}
		fb.End()
		return rt, nil

	case "index", "member":
		lv, err := fg.lvalue(e)
		if err != nil {
			return nil, err
		}
		if lv.t.Kind == TArray || lv.t.Kind == TStruct {
			// Address already on stack.
			return decayAggregate(lv.t), nil
		}
		fg.loadScalar(lv.t, 0)
		return lv.t, nil

	case "cast":
		t, err := fg.expr(e.X)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(t), e.T, e.Line); err != nil {
			return nil, err
		}
		return e.T, nil
	}
	return nil, fg.errf(e.Line, "unhandled expression %q", e.Op)
}

// decayAggregate returns the value type of an aggregate used as a value.
func decayAggregate(t *Type) *Type {
	if t.Kind == TArray {
		return ptrTo(t.Elem)
	}
	return ptrTo(t) // struct lvalue used as value: its address
}

// lvalue generates an lvalue. For memory lvalues the address is pushed.
func (fg *fgen) lvalue(e *Expr) (lval, error) {
	fb := fg.fb
	switch e.Op {
	case "var":
		if li, ok := fg.lookup(e.Name); ok {
			if li.isMem {
				fb.LocalGet(fg.spLocal)
				if li.off != 0 {
					fb.I32Const(int32(li.off)).Op(wasm.OpI32Add)
				}
				return lval{t: li.t}, nil
			}
			return lval{isLocal: true, local: li.local, t: li.t}, nil
		}
		if addr, ok := fg.g.globalAddr[e.Name]; ok {
			fb.I32Const(int32(addr))
			return lval{t: fg.g.globalType[e.Name]}, nil
		}
		return lval{}, fg.errf(e.Line, "undefined identifier %q", e.Name)

	case "un":
		if e.Tok == "*" {
			t, err := fg.expr(e.X)
			if err != nil {
				return lval{}, err
			}
			t = decay(t)
			if t.Kind != TPtr || t.Elem == nil {
				return lval{}, fg.errf(e.Line, "dereference of non-pointer %s", t)
			}
			return lval{t: t.Elem}, nil
		}

	case "index":
		bt, err := fg.expr(e.X)
		if err != nil {
			return lval{}, err
		}
		bt = decay(bt)
		if bt.Kind != TPtr || bt.Elem == nil {
			return lval{}, fg.errf(e.Line, "indexing non-pointer %s", bt)
		}
		it, err := fg.expr(e.Y)
		if err != nil {
			return lval{}, err
		}
		if !it.isInt() {
			return lval{}, fg.errf(e.Line, "non-integer index")
		}
		if it.is64() {
			fb.Op(wasm.OpI32WrapI64)
		}
		fg.scaleIndex(bt.Elem)
		fb.Op(wasm.OpI32Add)
		return lval{t: bt.Elem}, nil

	case "member":
		var st *Type
		if e.Tok == "->" {
			t, err := fg.expr(e.X)
			if err != nil {
				return lval{}, err
			}
			t = decay(t)
			if t.Kind != TPtr || t.Elem == nil || t.Elem.Kind != TStruct {
				return lval{}, fg.errf(e.Line, "-> on non-struct-pointer %s", t)
			}
			st = t.Elem
		} else {
			lv, err := fg.lvalue(e.X)
			if err != nil {
				return lval{}, err
			}
			if lv.isLocal || lv.t.Kind != TStruct {
				// Struct values always live in memory; a "." on a pointer-
				// valued expression is invalid.
				if lv.t.Kind == TPtr && lv.t.Elem != nil && lv.t.Elem.Kind == TStruct {
					// Allow p.x as sugar? No: require ->.
					return lval{}, fg.errf(e.Line, ". on pointer; use ->")
				}
				if lv.t.Kind != TStruct {
					return lval{}, fg.errf(e.Line, ". on non-struct %s", lv.t)
				}
			}
			st = lv.t
		}
		off, ft, ok := st.S.fieldOffset(e.Name, fg.g.abi.PtrSize)
		if !ok {
			return lval{}, fg.errf(e.Line, "no field %q in struct %s", e.Name, st.S.Name)
		}
		if off != 0 {
			fb.I32Const(int32(off)).Op(wasm.OpI32Add)
		}
		return lval{t: ft}, nil
	}
	return lval{}, fg.errf(e.Line, "not an lvalue")
}

// scaleIndex multiplies the i32 on the stack by the element size.
func (fg *fgen) scaleIndex(elem *Type) {
	sz := elem.size(fg.g.abi.PtrSize)
	switch sz {
	case 1:
	case 2, 4, 8:
		shift := map[int]int32{2: 1, 4: 2, 8: 3}[sz]
		fg.fb.I32Const(shift).Op(wasm.OpI32Shl)
	default:
		fg.fb.I32Const(int32(sz)).Op(wasm.OpI32Mul)
	}
}
