package minic

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/wasm"
)

// ABI selects the target data model. Browsers compile the 4-byte-pointer
// build; the native backend compiles the 8-byte-pointer build, mirroring
// wasm32 vs x86-64 data layout (the paper's mcf/milc pointer-density effect).
type ABI struct {
	PtrSize int
	// StackSize is the shadow stack reservation.
	StackSize int
	// HeapSize is the initial heap arena.
	HeapSize int
}

// ABI32 is the wasm32 (Emscripten) data model.
var ABI32 = ABI{PtrSize: 4, StackSize: 1 << 20, HeapSize: 1 << 22}

// ABI64 is the native x86-64 data model.
var ABI64 = ABI{PtrSize: 8, StackSize: 1 << 20, HeapSize: 1 << 22}

// dataBase is where globals and literals start (below: null guard + argv).
const dataBase = 4096

// syscallImports lists the Browsix syscall ABI in fixed import order.
var syscallImports = []struct {
	name string
	sig  *FuncSig
}{
	{"sys_open", &FuncSig{Params: []*Type{ptrTo(tyChar), tyInt, tyInt}, Ret: tyInt}},
	{"sys_close", &FuncSig{Params: []*Type{tyInt}, Ret: tyInt}},
	{"sys_read", &FuncSig{Params: []*Type{tyInt, ptrTo(tyChar), tyInt}, Ret: tyInt}},
	{"sys_write", &FuncSig{Params: []*Type{tyInt, ptrTo(tyChar), tyInt}, Ret: tyInt}},
	{"sys_lseek", &FuncSig{Params: []*Type{tyInt, tyInt, tyInt}, Ret: tyInt}},
	{"sys_stat_size", &FuncSig{Params: []*Type{ptrTo(tyChar)}, Ret: tyInt}},
	{"sys_unlink", &FuncSig{Params: []*Type{ptrTo(tyChar)}, Ret: tyInt}},
	{"sys_mkdir", &FuncSig{Params: []*Type{ptrTo(tyChar)}, Ret: tyInt}},
	{"sys_pipe", &FuncSig{Params: []*Type{ptrTo(tyInt)}, Ret: tyInt}},
	{"sys_dup2", &FuncSig{Params: []*Type{tyInt, tyInt}, Ret: tyInt}},
	{"sys_spawn", &FuncSig{Params: []*Type{ptrTo(tyChar), ptrTo(ptrTo(tyChar))}, Ret: tyInt}},
	{"sys_wait", &FuncSig{Params: []*Type{tyInt}, Ret: tyInt}},
	{"sys_exit", &FuncSig{Params: []*Type{tyInt}, Ret: tyInt}},
	{"sys_getpid", &FuncSig{Params: []*Type{}, Ret: tyInt}},
	{"sys_now", &FuncSig{Params: []*Type{}, Ret: tyInt}},
	{"perf_begin", &FuncSig{Params: []*Type{}, Ret: tyInt}},
	{"perf_end", &FuncSig{Params: []*Type{}, Ret: tyInt}},
}

// gen is module-level code generation state.
type gen struct {
	prog *Program
	abi  ABI
	b    *wasm.ModuleBuilder

	data       []byte // image starting at dataBase
	globalAddr map[string]int64
	globalType map[string]*Type
	strAddr    map[string]int64

	funcs   map[string]*funcInfo
	imports map[string]uint32

	table     []string // function names by table slot (slot 0 = null)
	tableSlot map[string]int

	spGlobal   uint32
	heapGlobal uint32
	heapEndG   uint32
}

type funcInfo struct {
	decl *FuncDecl
	idx  uint32
	sig  *FuncSig
}

// Compile compiles mini-C source (with the runtime prelude) to a validated
// wasm module under the given ABI.
func Compile(src string, abi ABI) (*wasm.Module, error) {
	prog, err := Parse(src + "\n" + runtimeSource)
	if err != nil {
		return nil, err
	}
	g := &gen{
		prog:       prog,
		abi:        abi,
		b:          wasm.NewModuleBuilder(),
		globalAddr: map[string]int64{},
		globalType: map[string]*Type{},
		strAddr:    map[string]int64{},
		funcs:      map[string]*funcInfo{},
		imports:    map[string]uint32{},
		tableSlot:  map[string]int{},
		table:      []string{""}, // slot 0 reserved (null)
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	m := g.b.Module()
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("minic: internal error: generated module invalid: %w", err)
	}
	return m, nil
}

func (g *gen) run() error {
	// Imports first (the builder requires it).
	for _, im := range syscallImports {
		g.imports[im.name] = g.b.ImportFunc("env", im.name, g.wasmSig(im.sig))
	}

	// Lay out globals.
	for _, gd := range g.prog.Globals {
		if gd.Type.Kind == TFunc || gd.Type.Kind == TVoid {
			return fmt.Errorf("minic: line %d: bad global type", gd.Line)
		}
		a := gd.Type.alignof(g.abi.PtrSize)
		off := alignUp(dataBase+len(g.data), a) - dataBase
		sz := gd.Type.size(g.abi.PtrSize)
		g.data = append(g.data, make([]byte, off+sz-len(g.data))...)
		g.globalAddr[gd.Name] = int64(dataBase + off)
		g.globalType[gd.Name] = gd.Type
	}
	// Global initializers (constant folding only).
	for _, gd := range g.prog.Globals {
		if err := g.initGlobal(gd); err != nil {
			return err
		}
	}

	// Intern string literals and assign function indices/table slots.
	// (Strings are interned lazily during expression generation; function
	// indices must be known up front for direct calls.)
	nimp := uint32(len(syscallImports))
	for i, fd := range g.prog.Funcs {
		if _, dup := g.funcs[fd.Name]; dup {
			return fmt.Errorf("minic: line %d: function %s redefined", fd.Line, fd.Name)
		}
		sig := &FuncSig{Ret: fd.Ret}
		for _, p := range fd.Params {
			if !p.Type.isScalar() {
				return fmt.Errorf("minic: line %d: %s: aggregate parameters are not supported (pass pointers)", fd.Line, fd.Name)
			}
			sig.Params = append(sig.Params, p.Type)
		}
		g.funcs[fd.Name] = &funcInfo{decl: fd, idx: nimp + uint32(i), sig: sig}
	}

	// Memory layout: after data comes the shadow stack, then the heap.
	stackBase := alignUp(dataBase+len(g.data), 16)
	stackTop := stackBase + g.abi.StackSize
	heapBase := stackTop
	heapEnd := heapBase + g.abi.HeapSize
	pages := uint32((heapEnd + wasm.PageSize - 1) / wasm.PageSize)
	g.b.Memory(pages, 16384) // max 1 GiB, the paper's TOTAL_MEMORY

	// Wasm globals: 0 = shadow stack pointer, 1 = heap pointer, 2 = heap end.
	g.spGlobal = g.b.GlobalI32(int32(stackTop))
	g.heapGlobal = g.b.GlobalI32(int32(heapBase))
	g.heapEndG = g.b.GlobalI32(int32(heapEnd))

	// Generate functions.
	for _, fd := range g.prog.Funcs {
		if err := g.genFunc(fd); err != nil {
			return err
		}
	}

	// _start(argc, argv) calls main and returns its result.
	mainFn, ok := g.funcs["main"]
	if !ok {
		return fmt.Errorf("minic: no main function")
	}
	fb := g.b.Func("_start", wasm.FuncType{
		Params:  []wasm.ValType{wasm.I32, wasm.I32},
		Results: []wasm.ValType{wasm.I32},
	}, wasm.I32)
	// The userspace runtime brackets main with the Browsix-SPEC perf
	// marks (the XHRs of Figure 2 steps 4 and 6).
	fb.Call(g.imports["perf_begin"]).Op(wasm.OpDrop)
	switch len(mainFn.sig.Params) {
	case 0:
		fb.Call(mainFn.idx)
	case 2:
		fb.LocalGet(0).LocalGet(1).Call(mainFn.idx)
	default:
		return fmt.Errorf("minic: main must take 0 or 2 parameters")
	}
	if mainFn.sig.Ret.Kind == TVoid {
		fb.I32Const(0)
	}
	fb.LocalSet(2)
	fb.Call(g.imports["perf_end"]).Op(wasm.OpDrop)
	fb.LocalGet(2)
	g.b.Export("_start", wasm.ExternFunc, fb.Index())

	// Data segment + function table.
	if len(g.data) > 0 {
		g.b.Data(dataBase, g.data)
	}
	g.b.Table(uint32(len(g.table)))
	var elems []uint32
	for _, name := range g.table[1:] {
		elems = append(elems, g.funcs[name].idx)
	}
	if len(elems) > 0 {
		g.b.Elem(1, elems)
	}
	return nil
}

// wasmSig converts a mini-C signature to a wasm function type.
func (g *gen) wasmSig(sig *FuncSig) wasm.FuncType {
	var ft wasm.FuncType
	for _, p := range sig.Params {
		ft.Params = append(ft.Params, g.valType(p))
	}
	if sig.Ret != nil && sig.Ret.Kind != TVoid {
		ft.Results = []wasm.ValType{g.valType(sig.Ret)}
	}
	return ft
}

// valType maps a scalar mini-C type to a wasm value type. Pointers compute
// as i32 regardless of their storage size.
func (g *gen) valType(t *Type) wasm.ValType {
	switch t.Kind {
	case TLong, TULong:
		return wasm.I64
	case TFloat:
		return wasm.F32
	case TDouble:
		return wasm.F64
	}
	return wasm.I32
}

// internString places a NUL-terminated literal in the data image.
func (g *gen) internString(s string) int64 {
	if a, ok := g.strAddr[s]; ok {
		return a
	}
	addr := int64(dataBase + len(g.data))
	g.data = append(g.data, s...)
	g.data = append(g.data, 0)
	g.strAddr[s] = addr
	return addr
}

// tableIndexOf assigns (or returns) the table slot for a function.
func (g *gen) tableIndexOf(name string) (int, error) {
	if s, ok := g.tableSlot[name]; ok {
		return s, nil
	}
	if _, ok := g.funcs[name]; !ok {
		return 0, fmt.Errorf("minic: unknown function %q", name)
	}
	slot := len(g.table)
	g.table = append(g.table, name)
	g.tableSlot[name] = slot
	return slot, nil
}

// initGlobal writes constant initializers into the data image.
func (g *gen) initGlobal(gd *GlobalDecl) error {
	base := g.globalAddr[gd.Name] - dataBase
	write := func(off int64, t *Type, e *Expr) error {
		iv, fv, isF, err := g.constEval(e)
		if err != nil {
			return fmt.Errorf("minic: line %d: global %s: %w", gd.Line, gd.Name, err)
		}
		switch {
		case t.Kind == TDouble:
			v := fv
			if !isF {
				v = float64(iv)
			}
			binary.LittleEndian.PutUint64(g.data[off:], math.Float64bits(v))
		case t.Kind == TFloat:
			v := fv
			if !isF {
				v = float64(iv)
			}
			binary.LittleEndian.PutUint32(g.data[off:], math.Float32bits(float32(v)))
		case t.is64():
			binary.LittleEndian.PutUint64(g.data[off:], uint64(iv))
		case t.Kind == TChar:
			g.data[off] = byte(iv)
		case t.Kind == TPtr && g.abi.PtrSize == 8:
			binary.LittleEndian.PutUint64(g.data[off:], uint64(iv))
		default:
			binary.LittleEndian.PutUint32(g.data[off:], uint32(iv))
		}
		return nil
	}
	if gd.Init != nil {
		return write(base, gd.Type, gd.Init)
	}
	if gd.InitList != nil {
		if gd.Type.Kind != TArray {
			return fmt.Errorf("minic: line %d: initializer list on non-array", gd.Line)
		}
		esz := int64(gd.Type.Elem.size(g.abi.PtrSize))
		for i, e := range gd.InitList {
			if err := write(base+int64(i)*esz, gd.Type.Elem, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// constEval evaluates a constant expression.
func (g *gen) constEval(e *Expr) (int64, float64, bool, error) {
	switch e.Op {
	case "num":
		return e.Ival, 0, false, nil
	case "fnum":
		return 0, e.Fval, true, nil
	case "str":
		return g.internString(e.Sval), 0, false, nil
	case "sizeof":
		if e.T != nil {
			return int64(e.T.size(g.abi.PtrSize)), 0, false, nil
		}
		return 0, 0, false, fmt.Errorf("sizeof(expr) not constant here")
	case "un":
		iv, fv, isF, err := g.constEval(e.X)
		if err != nil {
			return 0, 0, false, err
		}
		switch e.Tok {
		case "-":
			return -iv, -fv, isF, nil
		case "~":
			return ^iv, 0, false, nil
		}
	case "bin":
		a, af, aF, err := g.constEval(e.X)
		if err != nil {
			return 0, 0, false, err
		}
		b, bf, bF, err := g.constEval(e.Y)
		if err != nil {
			return 0, 0, false, err
		}
		if aF || bF {
			if !aF {
				af = float64(a)
			}
			if !bF {
				bf = float64(b)
			}
			switch e.Tok {
			case "+":
				return 0, af + bf, true, nil
			case "-":
				return 0, af - bf, true, nil
			case "*":
				return 0, af * bf, true, nil
			case "/":
				return 0, af / bf, true, nil
			}
			return 0, 0, false, fmt.Errorf("bad constant float op %q", e.Tok)
		}
		switch e.Tok {
		case "+":
			return a + b, 0, false, nil
		case "-":
			return a - b, 0, false, nil
		case "*":
			return a * b, 0, false, nil
		case "/":
			if b == 0 {
				return 0, 0, false, fmt.Errorf("constant division by zero")
			}
			return a / b, 0, false, nil
		case "%":
			if b == 0 {
				return 0, 0, false, fmt.Errorf("constant division by zero")
			}
			return a % b, 0, false, nil
		case "<<":
			return a << uint(b), 0, false, nil
		case ">>":
			return a >> uint(b), 0, false, nil
		case "|":
			return a | b, 0, false, nil
		case "&":
			return a & b, 0, false, nil
		case "^":
			return a ^ b, 0, false, nil
		}
	case "cast":
		return g.constEval(e.X)
	}
	return 0, 0, false, fmt.Errorf("not a constant expression")
}
