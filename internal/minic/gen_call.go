package minic

import (
	"repro/internal/wasm"
)

// intrinsics map directly to wasm instructions.
var intrinsics = map[string]struct {
	op  wasm.Opcode
	arg *Type
	ret *Type
}{
	"sqrt":  {wasm.OpF64Sqrt, tyDouble, tyDouble},
	"fabs":  {wasm.OpF64Abs, tyDouble, tyDouble},
	"floor": {wasm.OpF64Floor, tyDouble, tyDouble},
	"ceil":  {wasm.OpF64Ceil, tyDouble, tyDouble},
	"trunc": {wasm.OpF64Trunc, tyDouble, tyDouble},
	"sqrtf": {wasm.OpF32Sqrt, tyFloat, tyFloat},
	"fabsf": {wasm.OpF32Abs, tyFloat, tyFloat},
}

// call generates function calls: intrinsics, syscalls, direct calls, and
// indirect calls through function pointers.
func (fg *fgen) call(e *Expr) (*Type, error) {
	fb := fg.fb

	if e.X.Op == "var" {
		name := e.X.Name

		// Wasm intrinsics.
		if in, ok := intrinsics[name]; ok {
			if len(e.Args) != 1 {
				return nil, fg.errf(e.Line, "%s takes 1 argument", name)
			}
			t, err := fg.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if err := fg.convert(decay(t), in.arg, e.Line); err != nil {
				return nil, err
			}
			fb.Op(in.op)
			return in.ret, nil
		}
		if name == "fmin" || name == "fmax" {
			if len(e.Args) != 2 {
				return nil, fg.errf(e.Line, "%s takes 2 arguments", name)
			}
			for _, a := range e.Args {
				t, err := fg.expr(a)
				if err != nil {
					return nil, err
				}
				if err := fg.convert(decay(t), tyDouble, e.Line); err != nil {
					return nil, err
				}
			}
			if name == "fmin" {
				fb.Op(wasm.OpF64Min)
			} else {
				fb.Op(wasm.OpF64Max)
			}
			return tyDouble, nil
		}
		if name == "mem_pages" {
			fb.Op(wasm.OpMemorySize)
			return tyInt, nil
		}
		if name == "heap_base" {
			fb.GlobalGet(fg.g.heapGlobal)
			return tyInt, nil
		}
		if name == "heap_end" {
			fb.GlobalGet(fg.g.heapEndG)
			return tyInt, nil
		}
		if name == "grow_memory" {
			if len(e.Args) != 1 {
				return nil, fg.errf(e.Line, "grow_memory takes 1 argument")
			}
			t, err := fg.expr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if err := fg.convert(decay(t), tyInt, e.Line); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpMemoryGrow)
			return tyInt, nil
		}

		// Syscall imports.
		for _, im := range syscallImports {
			if im.name == name {
				if err := fg.pushArgs(e, im.sig); err != nil {
					return nil, err
				}
				fb.Call(fg.g.imports[name])
				return im.sig.Ret, nil
			}
		}

		// Direct call.
		if fi, ok := fg.g.funcs[name]; ok {
			if err := fg.pushArgs(e, fi.sig); err != nil {
				return nil, err
			}
			fb.Call(fi.idx)
			if fi.sig.Ret == nil {
				return tyVoid, nil
			}
			return fi.sig.Ret, nil
		}
	}

	// Indirect call through a function-pointer value.
	ft, err := fg.typeOf(e.X)
	if err != nil {
		return nil, err
	}
	if ft.Kind != TPtr || ft.Fn == nil {
		return nil, fg.errf(e.Line, "call of non-function %s", ft)
	}
	sig := ft.Fn
	if len(e.Args) != len(sig.Params) {
		return nil, fg.errf(e.Line, "wrong argument count: got %d, want %d", len(e.Args), len(sig.Params))
	}
	for i, a := range e.Args {
		t, err := fg.expr(a)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(t), sig.Params[i], a.Line); err != nil {
			return nil, err
		}
	}
	if _, err := fg.expr(e.X); err != nil {
		return nil, err
	}
	fb.CallIndirect(fg.g.wasmSig(sig))
	if sig.Ret == nil {
		return tyVoid, nil
	}
	return sig.Ret, nil
}

// pushArgs evaluates call arguments converted to the signature.
func (fg *fgen) pushArgs(e *Expr, sig *FuncSig) error {
	if len(e.Args) != len(sig.Params) {
		return fg.errf(e.Line, "wrong argument count: got %d, want %d", len(e.Args), len(sig.Params))
	}
	for i, a := range e.Args {
		t, err := fg.expr(a)
		if err != nil {
			return err
		}
		if err := fg.convert(decay(t), sig.Params[i], a.Line); err != nil {
			return err
		}
	}
	return nil
}

// typeOf computes an expression's type without emitting code.
func (fg *fgen) typeOf(e *Expr) (*Type, error) {
	switch e.Op {
	case "num":
		if e.Ival > 0x7fffffff || e.Ival < -0x80000000 {
			return tyLong, nil
		}
		return tyInt, nil
	case "fnum":
		return tyDouble, nil
	case "str":
		return ptrTo(tyChar), nil
	case "sizeof":
		return tyInt, nil
	case "var":
		if li, ok := fg.lookup(e.Name); ok {
			if li.t.Kind == TArray || li.t.Kind == TStruct {
				return decayAggregate(li.t), nil
			}
			return li.t, nil
		}
		if t, ok := fg.g.globalType[e.Name]; ok {
			if t.Kind == TArray || t.Kind == TStruct {
				return decayAggregate(t), nil
			}
			return t, nil
		}
		if fi, ok := fg.g.funcs[e.Name]; ok {
			return &Type{Kind: TPtr, Fn: fi.sig}, nil
		}
		return nil, fg.errf(e.Line, "undefined identifier %q", e.Name)
	case "call":
		if e.X.Op == "var" {
			name := e.X.Name
			if in, ok := intrinsics[name]; ok {
				return in.ret, nil
			}
			if name == "fmin" || name == "fmax" {
				return tyDouble, nil
			}
			if name == "mem_pages" || name == "grow_memory" || name == "heap_base" || name == "heap_end" {
				return tyInt, nil
			}
			for _, im := range syscallImports {
				if im.name == name {
					return im.sig.Ret, nil
				}
			}
			if fi, ok := fg.g.funcs[name]; ok {
				if fi.sig.Ret == nil {
					return tyVoid, nil
				}
				return fi.sig.Ret, nil
			}
		}
		ft, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		if ft.Kind == TPtr && ft.Fn != nil {
			if ft.Fn.Ret == nil {
				return tyVoid, nil
			}
			return ft.Fn.Ret, nil
		}
		return nil, fg.errf(e.Line, "call of non-function")
	case "bin":
		switch e.Tok {
		case ",", "":
			return fg.typeOf(e.Y)
		case "&&", "||", "==", "!=", "<", ">", "<=", ">=":
			return tyInt, nil
		}
		at, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		bt, err := fg.typeOf(e.Y)
		if err != nil {
			return nil, err
		}
		at, bt = decay(at), decay(bt)
		if e.Tok == "+" || e.Tok == "-" {
			if at.Kind == TPtr && bt.Kind == TPtr {
				return tyInt, nil
			}
			if at.Kind == TPtr {
				return at, nil
			}
			if bt.Kind == TPtr {
				return bt, nil
			}
		}
		return commonType(at, bt), nil
	case "un":
		switch e.Tok {
		case "!":
			return tyInt, nil
		case "-", "~":
			t, err := fg.typeOf(e.X)
			if err != nil {
				return nil, err
			}
			t = decay(t)
			if t.isFloat() {
				return t, nil
			}
			if t.is64() {
				return t, nil
			}
			return tyInt, nil
		case "*":
			t, err := fg.typeOf(e.X)
			if err != nil {
				return nil, err
			}
			t = decay(t)
			if t.Kind != TPtr || t.Elem == nil {
				return nil, fg.errf(e.Line, "dereference of non-pointer")
			}
			if t.Elem.Kind == TArray || t.Elem.Kind == TStruct {
				return decayAggregate(t.Elem), nil
			}
			return t.Elem, nil
		case "&":
			t, err := fg.typeOf(e.X)
			if err != nil {
				return nil, err
			}
			return ptrTo(t), nil
		}
	case "assign":
		return fg.lvalueTypeOf(e.X)
	case "post":
		return fg.lvalueTypeOf(e.X)
	case "cond":
		at, err := fg.typeOf(e.Y)
		if err != nil {
			return nil, err
		}
		bt, err := fg.typeOf(e.Z)
		if err != nil {
			return nil, err
		}
		if sameType(decay(at), decay(bt)) {
			return decay(at), nil
		}
		return commonType(decay(at), decay(bt)), nil
	case "index":
		t, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		t = decay(t)
		if t.Kind != TPtr || t.Elem == nil {
			return nil, fg.errf(e.Line, "indexing non-pointer")
		}
		if t.Elem.Kind == TArray || t.Elem.Kind == TStruct {
			return decayAggregate(t.Elem), nil
		}
		return t.Elem, nil
	case "member":
		var st *Type
		t, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		if e.Tok == "->" {
			t = decay(t)
			if t.Kind != TPtr || t.Elem == nil || t.Elem.Kind != TStruct {
				return nil, fg.errf(e.Line, "-> on non-struct-pointer")
			}
			st = t.Elem
		} else {
			// "." on a struct lvalue; typeOf sees its decayed pointer.
			if t.Kind == TPtr && t.Elem != nil && t.Elem.Kind == TStruct {
				st = t.Elem
			} else if t.Kind == TStruct {
				st = t
			} else {
				return nil, fg.errf(e.Line, ". on non-struct")
			}
		}
		_, ft, ok := st.S.fieldOffset(e.Name, fg.g.abi.PtrSize)
		if !ok {
			return nil, fg.errf(e.Line, "no field %q", e.Name)
		}
		if ft.Kind == TArray || ft.Kind == TStruct {
			return decayAggregate(ft), nil
		}
		return ft, nil
	case "cast":
		return e.T, nil
	}
	return nil, fg.errf(e.Line, "cannot type expression %q", e.Op)
}

// lvalueTypeOf types an lvalue expression without emitting.
func (fg *fgen) lvalueTypeOf(e *Expr) (*Type, error) {
	switch e.Op {
	case "var":
		if li, ok := fg.lookup(e.Name); ok {
			return li.t, nil
		}
		if t, ok := fg.g.globalType[e.Name]; ok {
			return t, nil
		}
		return nil, fg.errf(e.Line, "undefined identifier %q", e.Name)
	}
	return fg.typeOf(e)
}
