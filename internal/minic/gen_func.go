package minic

import (
	"fmt"

	"repro/internal/wasm"
)

// localInfo is the storage of one local declaration.
type localInfo struct {
	isMem bool
	local uint32 // wasm local index (scalar register locals)
	off   int    // frame offset (memory locals)
	t     *Type
}

// loopCtx records branch targets for break/continue. Depths are absolute
// builder depths captured right after the target block was opened.
type loopCtx struct {
	breakDepth    int
	continueDepth int // -1 in switches
	isSwitch      bool
}

// fgen generates one function.
type fgen struct {
	g  *gen
	fd *FuncDecl
	fb *wasm.FuncBuilder

	scopes    []map[string]localInfo
	addressed map[string]bool
	frameSize int
	hasFrame  bool
	spLocal   uint32
	loops     []loopCtx

	// genFrameOff mirrors the prescan's allocation order during statement
	// generation so offsets line up.
	genFrameOff int

	scratch map[wasm.ValType][]uint32
}

func (g *gen) genFunc(fd *FuncDecl) error {
	fi := g.funcs[fd.Name]
	fg := &fgen{
		g: g, fd: fd,
		addressed: map[string]bool{},
		scratch:   map[wasm.ValType][]uint32{},
	}
	fg.fb = g.b.Func(fd.Name, g.wasmSig(fi.sig))
	if fg.fb.Index() != fi.idx {
		return fmt.Errorf("minic: internal: function index mismatch for %s", fd.Name)
	}

	// Find address-taken locals (conservatively, by name).
	markAddressed(fd.Body, fg.addressed)

	fg.pushScope()
	for i, p := range fd.Params {
		if fg.addressed[p.Name] {
			// Spill the parameter into the frame.
			off := fg.allocFrame(p.Type)
			fg.scopes[0][p.Name] = localInfo{isMem: true, off: off, t: p.Type}
		} else {
			fg.scopes[0][p.Name] = localInfo{local: uint32(i), t: p.Type}
		}
	}

	// Pre-size the frame by scanning declarations; generation re-allocates
	// in the same order starting after the parameter slots.
	fg.genFrameOff = fg.frameSize
	fg.prescanFrame(fd.Body)

	if fg.frameSize > 0 {
		fg.hasFrame = true
		fg.frameSize = alignUp(fg.frameSize, 16)
		fg.spLocal = fg.fb.AddLocal(wasm.I32)
		// sp = g0 - frame; g0 = sp
		fg.fb.GlobalGet(g.spGlobal).I32Const(int32(fg.frameSize)).Op(wasm.OpI32Sub)
		fg.fb.LocalTee(fg.spLocal).GlobalSet(g.spGlobal)
		// Copy addressed params into their slots.
		for i, p := range fd.Params {
			li := fg.scopes[0][p.Name]
			if !li.isMem {
				continue
			}
			fg.fb.LocalGet(fg.spLocal)
			fg.fb.LocalGet(uint32(i))
			fg.storeScalar(p.Type, uint32(li.off))
		}
	}

	if err := fg.stmt(fd.Body); err != nil {
		return err
	}

	// Implicit return (void or zero).
	fg.epilogue()
	if fd.Ret.Kind != TVoid {
		fg.pushZero(fd.Ret)
	}
	return nil
}

// markAddressed finds &name occurrences.
func markAddressed(s *Stmt, out map[string]bool) {
	if s == nil {
		return
	}
	var walkE func(e *Expr)
	walkE = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Op == "un" && e.Tok == "&" && e.X != nil && e.X.Op == "var" {
			out[e.X.Name] = true
		}
		walkE(e.X)
		walkE(e.Y)
		walkE(e.Z)
		for _, a := range e.Args {
			walkE(a)
		}
	}
	var walkS func(st *Stmt)
	walkS = func(st *Stmt) {
		if st == nil {
			return
		}
		walkE(st.E)
		walkE(st.Cond)
		walkE(st.Post)
		walkE(st.DeclInit)
		walkS(st.Init)
		walkS(st.Body)
		walkS(st.Else)
		for _, c := range st.Stmts {
			walkS(c)
		}
		for _, c := range st.Cases {
			for _, cs := range c.Stmts {
				walkS(cs)
			}
		}
	}
	walkS(s)
}

// prescanFrame sizes the frame for memory locals.
func (fg *fgen) prescanFrame(s *Stmt) {
	if s == nil {
		return
	}
	if s.Op == "decl" {
		t := s.DeclType
		if t.Kind == TArray || t.Kind == TStruct || fg.addressed[s.DeclName] {
			fg.allocFrame(t)
		}
	}
	fg.prescanFrame(s.Init)
	fg.prescanFrame(s.Body)
	fg.prescanFrame(s.Else)
	for _, c := range s.Stmts {
		fg.prescanFrame(c)
	}
	for _, c := range s.Cases {
		for _, cs := range c.Stmts {
			fg.prescanFrame(cs)
		}
	}
}

// allocFrame reserves frame space and returns the offset.
func (fg *fgen) allocFrame(t *Type) int {
	a := t.alignof(fg.g.abi.PtrSize)
	fg.frameSize = alignUp(fg.frameSize, a)
	off := fg.frameSize
	fg.frameSize += t.size(fg.g.abi.PtrSize)
	return off
}

func (fg *fgen) pushScope() { fg.scopes = append(fg.scopes, map[string]localInfo{}) }
func (fg *fgen) popScope()  { fg.scopes = fg.scopes[:len(fg.scopes)-1] }

func (fg *fgen) lookup(name string) (localInfo, bool) {
	for i := len(fg.scopes) - 1; i >= 0; i-- {
		if li, ok := fg.scopes[i][name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

// frameOffsets tracks allocation during generation: the prescan sized the
// whole frame; generation re-allocates in the same order. To keep offsets
// consistent we simply allocate fresh slots during generation too, but from
// a second counter bounded by frameSize.
// (allocFrame is reused; prescan and gen walk declarations in identical
// order, so offsets line up.)

func (fg *fgen) errf(line int, format string, args ...any) error {
	return fmt.Errorf("minic: line %d (%s): %s", line, fg.fd.Name, fmt.Sprintf(format, args...))
}

// epilogue restores the shadow stack pointer.
func (fg *fgen) epilogue() {
	if fg.hasFrame {
		fg.fb.LocalGet(fg.spLocal).I32Const(int32(fg.frameSize)).Op(wasm.OpI32Add)
		fg.fb.GlobalSet(fg.g.spGlobal)
	}
}

// getScratch returns a scratch wasm local of the given type.
func (fg *fgen) getScratch(t wasm.ValType) uint32 {
	pool := fg.scratch[t]
	if len(pool) > 0 {
		v := pool[len(pool)-1]
		fg.scratch[t] = pool[:len(pool)-1]
		return v
	}
	return fg.fb.AddLocal(t)
}

func (fg *fgen) putScratch(t wasm.ValType, l uint32) {
	fg.scratch[t] = append(fg.scratch[t], l)
}

// pushZero pushes the zero value of a scalar type.
func (fg *fgen) pushZero(t *Type) {
	switch fg.g.valType(t) {
	case wasm.I64:
		fg.fb.I64Const(0)
	case wasm.F32:
		fg.fb.Emit(wasm.Instr{Op: wasm.OpF32Const})
	case wasm.F64:
		fg.fb.F64Const(0)
	default:
		fg.fb.I32Const(0)
	}
}

// stmt generates one statement.
func (fg *fgen) stmt(s *Stmt) error {
	if s == nil {
		return nil
	}
	switch s.Op {
	case "block":
		fg.pushScope()
		for _, c := range s.Stmts {
			if err := fg.stmt(c); err != nil {
				return err
			}
		}
		fg.popScope()
		return nil

	case "decl":
		return fg.declStmt(s)

	case "expr":
		t, err := fg.expr(s.E)
		if err != nil {
			return err
		}
		if t.Kind != TVoid {
			fg.fb.Op(wasm.OpDrop)
		}
		return nil

	case "if":
		if err := fg.cond(s.Cond); err != nil {
			return err
		}
		fg.fb.If(wasm.BlockVoid)
		if err := fg.stmt(s.Body); err != nil {
			return err
		}
		if s.Else != nil {
			fg.fb.Else()
			if err := fg.stmt(s.Else); err != nil {
				return err
			}
		}
		fg.fb.End()
		return nil

	case "while":
		return fg.loop(nil, s.Cond, nil, s.Body, false)

	case "for":
		fg.pushScope()
		if s.Init != nil {
			if err := fg.stmt(s.Init); err != nil {
				return err
			}
		}
		err := fg.loop(nil, s.Cond, s.Post, s.Body, false)
		fg.popScope()
		return err

	case "do":
		return fg.loop(nil, s.Cond, nil, s.Body, true)

	case "return":
		if s.E != nil {
			t, err := fg.expr(s.E)
			if err != nil {
				return err
			}
			if err := fg.convert(t, fg.fd.Ret, s.Line); err != nil {
				return err
			}
		} else if fg.fd.Ret.Kind != TVoid {
			fg.pushZero(fg.fd.Ret)
		}
		fg.epilogue()
		fg.fb.Return()
		return nil

	case "break":
		for i := len(fg.loops) - 1; i >= 0; i-- {
			lc := fg.loops[i]
			fg.fb.Br(uint32(fg.fb.Depth() - lc.breakDepth))
			return nil
		}
		return fg.errf(s.Line, "break outside loop/switch")

	case "continue":
		for i := len(fg.loops) - 1; i >= 0; i-- {
			lc := fg.loops[i]
			if lc.isSwitch {
				continue
			}
			fg.fb.Br(uint32(fg.fb.Depth() - lc.continueDepth))
			return nil
		}
		return fg.errf(s.Line, "continue outside loop")

	case "switch":
		return fg.switchStmt(s)
	}
	return fg.errf(s.Line, "unhandled statement %q", s.Op)
}

func (fg *fgen) declStmt(s *Stmt) error {
	t := s.DeclType
	scope := fg.scopes[len(fg.scopes)-1]
	if t.Kind == TArray || t.Kind == TStruct || fg.addressed[s.DeclName] {
		off := fg.genFrameOff
		// Recompute the offset with the same policy as the prescan.
		a := t.alignof(fg.g.abi.PtrSize)
		off = alignUp(off, a)
		fg.genFrameOff = off + t.size(fg.g.abi.PtrSize)
		scope[s.DeclName] = localInfo{isMem: true, off: off, t: t}
		if s.DeclInit != nil {
			if !t.isScalar() {
				return fg.errf(s.Line, "initializer on aggregate local")
			}
			fg.fb.LocalGet(fg.spLocal)
			it, err := fg.expr(s.DeclInit)
			if err != nil {
				return err
			}
			if err := fg.convert(it, t, s.Line); err != nil {
				return err
			}
			fg.storeScalar(t, uint32(off))
		}
		return nil
	}
	if !t.isScalar() {
		return fg.errf(s.Line, "bad local type %s", t)
	}
	l := fg.fb.AddLocal(fg.g.valType(t))
	scope[s.DeclName] = localInfo{local: l, t: t}
	if s.DeclInit != nil {
		it, err := fg.expr(s.DeclInit)
		if err != nil {
			return err
		}
		if err := fg.convert(it, t, s.Line); err != nil {
			return err
		}
		fg.fb.LocalSet(l)
	}
	return nil
}

// genFrameOff tracks frame allocation during generation (mirrors prescan).
// It lives on fgen via this field accessor pattern.

func (fg *fgen) loop(init *Stmt, cond *Expr, post *Expr, body *Stmt, isDoWhile bool) error {
	fb := fg.fb
	fb.Block(wasm.BlockVoid) // $break
	breakDepth := fb.Depth()
	fb.Loop(wasm.BlockVoid) // $top

	if !isDoWhile && cond != nil {
		// Emscripten shape: test at top, exit via br_if, back-jump at
		// bottom. The native backend's loop rotation recognizes this.
		if err := fg.cond(cond); err != nil {
			return err
		}
		fb.Op(wasm.OpI32Eqz)
		fb.BrIf(uint32(fb.Depth() - breakDepth))
	}

	fb.Block(wasm.BlockVoid) // $continue
	contDepth := fb.Depth()
	fg.loops = append(fg.loops, loopCtx{breakDepth: breakDepth, continueDepth: contDepth})
	fg.pushScope()
	err := fg.stmt(body)
	fg.popScope()
	fg.loops = fg.loops[:len(fg.loops)-1]
	if err != nil {
		return err
	}
	fb.End() // $continue

	if post != nil {
		t, err := fg.expr(post)
		if err != nil {
			return err
		}
		if t.Kind != TVoid {
			fb.Op(wasm.OpDrop)
		}
	}
	if isDoWhile {
		if err := fg.cond(cond); err != nil {
			return err
		}
		fb.BrIf(0) // back to $top when true
	} else {
		fb.Br(0)
	}
	fb.End() // loop
	fb.End() // $break
	return nil
}

// cond emits an i32 truth value for an expression.
func (fg *fgen) cond(e *Expr) error {
	t, err := fg.expr(e)
	if err != nil {
		return err
	}
	return fg.truthify(t, e.Line)
}

// truthify converts the top of stack to an i32 boolean-compatible value.
func (fg *fgen) truthify(t *Type, line int) error {
	switch {
	case t.isFloat():
		if t.Kind == TFloat {
			fg.fb.Emit(wasm.Instr{Op: wasm.OpF32Const})
			fg.fb.Op(wasm.OpF32Ne)
		} else {
			fg.fb.F64Const(0)
			fg.fb.Op(wasm.OpF64Ne)
		}
	case t.is64():
		fg.fb.I64Const(0)
		fg.fb.Op(wasm.OpI64Ne)
	case t.Kind == TVoid:
		return fg.errf(line, "void value in condition")
	}
	// i32/pointer values are already usable as conditions.
	return nil
}

func (fg *fgen) switchStmt(s *Stmt) error {
	fb := fg.fb
	t, err := fg.expr(s.Cond)
	if err != nil {
		return err
	}
	if !t.isInt() {
		return fg.errf(s.Line, "switch on non-integer")
	}
	if t.is64() {
		fb.Op(wasm.OpI32WrapI64)
	}
	sel := fg.getScratch(wasm.I32)
	fb.LocalSet(sel)
	defer fg.putScratch(wasm.I32, sel)

	// Outer break block.
	fb.Block(wasm.BlockVoid)
	breakDepth := fb.Depth()
	fg.loops = append(fg.loops, loopCtx{breakDepth: breakDepth, continueDepth: -1, isSwitch: true})
	defer func() { fg.loops = fg.loops[:len(fg.loops)-1] }()

	// Determine table shape.
	var min, max int64
	first := true
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.IsDefault {
			defaultIdx = i
			continue
		}
		if first {
			min, max = c.Val, c.Val
			first = false
		} else {
			if c.Val < min {
				min = c.Val
			}
			if c.Val > max {
				max = c.Val
			}
		}
	}
	n := len(s.Cases)
	useTable := !first && n >= 3 && max-min < 512

	// Open one block per case, innermost = first case.
	for i := n - 1; i >= 0; i-- {
		fb.Block(wasm.BlockVoid)
		_ = i
	}
	caseDepth := func(i int) uint32 {
		// Case i's block closes after its statements; relative depth from
		// the current position (inside all n blocks) is i.
		return uint32(i)
	}

	if useTable {
		span := int(max - min + 1)
		table := make([]uint32, span+1)
		defRel := uint32(n) // break block
		if defaultIdx >= 0 {
			defRel = caseDepth(defaultIdx)
		}
		for j := 0; j < span; j++ {
			table[j] = defRel
		}
		for i, c := range s.Cases {
			if !c.IsDefault {
				table[c.Val-min] = caseDepth(i)
			}
		}
		table[span] = defRel
		fb.LocalGet(sel)
		if min != 0 {
			fb.I32Const(int32(min)).Op(wasm.OpI32Sub)
		}
		fb.Emit(wasm.Instr{Op: wasm.OpBrTable, Table: table})
	} else {
		for i, c := range s.Cases {
			if c.IsDefault {
				continue
			}
			fb.LocalGet(sel).I32Const(int32(c.Val)).Op(wasm.OpI32Eq)
			fb.BrIf(caseDepth(i))
		}
		if defaultIdx >= 0 {
			fb.Br(caseDepth(defaultIdx))
		} else {
			fb.Br(uint32(n)) // to break block
		}
	}

	// Emit case bodies; each End closes that case's block, and execution
	// falls through into the next case (C semantics).
	for _, c := range s.Cases {
		fb.End()
		fg.pushScope()
		for _, st := range c.Stmts {
			if err := fg.stmt(st); err != nil {
				fg.popScope()
				return err
			}
		}
		fg.popScope()
	}
	fb.End() // break block
	return nil
}
