package minic

// Binary operator precedence (C-like). Higher binds tighter.
var binPrec = map[string]int{
	"*": 10, "/": 10, "%": 10,
	"+": 9, "-": 9,
	"<<": 8, ">>": 8,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"==": 6, "!=": 6,
	"&": 5, "^": 4, "|": 3,
	"&&": 2, "||": 1,
}

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() (*Expr, error) {
	e, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	for p.tok().kind == tPunct && p.tok().text == "," {
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		e = &Expr{Op: "bin", Tok: ",", X: e, Y: rhs, Line: e.Line}
	}
	return e, nil
}

func (p *parser) parseAssign() (*Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.kind == tPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=":
			p.pos++
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &Expr{Op: "assign", Tok: t.text, X: lhs, Y: rhs, Line: t.line}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseTernary() (*Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &Expr{Op: "cond", X: cond, Y: a, Z: b, Line: cond.Line}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(minPrec int) (*Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Op: "bin", Tok: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.tok()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Op: "un", Tok: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// ++x => x += 1
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			return &Expr{Op: "assign", Tok: op, X: x,
				Y: &Expr{Op: "num", Ival: 1, Line: t.line}, Line: t.line}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.peek(1).kind == tKeyword && p.isTypeStartAt(1) {
				p.pos++
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				ct := base
				for p.accept("*") {
					ct = ptrTo(ct)
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Expr{Op: "cast", T: ct, X: x, Line: t.line}, nil
			}
		}
	}
	if t.kind == tKeyword && t.text == "sizeof" {
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.isTypeStart() {
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			st := base
			for p.accept("*") {
				st = ptrTo(st)
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Op: "sizeof", T: st, Line: t.line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Expr{Op: "sizeof", X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) isTypeStartAt(i int) bool {
	t := p.peek(i)
	if t.kind != tKeyword {
		return false
	}
	switch t.text {
	case "int", "long", "char", "double", "float", "void", "unsigned", "struct", "const":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tPunct {
			return e, nil
		}
		switch t.text {
		case "(":
			p.pos++
			call := &Expr{Op: "call", X: e, Line: t.line}
			if !p.accept(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			e = call
		case "[":
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Expr{Op: "index", X: e, Y: idx, Line: t.line}
		case ".", "->":
			p.pos++
			name := p.tok()
			if name.kind != tIdent {
				return nil, p.errf("expected member name")
			}
			p.pos++
			e = &Expr{Op: "member", Tok: t.text, X: e, Name: name.text, Line: t.line}
		case "++", "--":
			p.pos++
			e = &Expr{Op: "post", Tok: t.text, X: e, Line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.tok()
	switch t.kind {
	case tInt:
		p.pos++
		return &Expr{Op: "num", Ival: t.ival, Line: t.line}, nil
	case tChar:
		p.pos++
		return &Expr{Op: "num", Ival: t.ival, Line: t.line}, nil
	case tFloat:
		p.pos++
		return &Expr{Op: "fnum", Fval: t.fval, Line: t.line}, nil
	case tString:
		p.pos++
		return &Expr{Op: "str", Sval: t.text, Line: t.line}, nil
	case tIdent:
		p.pos++
		return &Expr{Op: "var", Name: t.text, Line: t.line}, nil
	case tPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token in expression")
}
