package minic_test

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/minic"
	"repro/internal/toolchain"
	"repro/internal/wasm"
)

// engines under differential test.
func engines() []*codegen.EngineConfig {
	return []*codegen.EngineConfig{
		codegen.Native(), codegen.Chrome(), codegen.Firefox(), codegen.AsmJSChrome(),
	}
}

// runAll runs src on every engine and checks stdout and exit code agree with
// want (and across engines).
func runAll(t *testing.T, src, wantOut string, wantCode int) {
	t.Helper()
	for _, cfg := range engines() {
		res, err := toolchain.Run(src, cfg, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Stdout != wantOut {
			t.Errorf("%s: stdout = %q, want %q", cfg.Name, res.Stdout, wantOut)
		}
		if res.ExitCode != wantCode {
			t.Errorf("%s: exit = %d, want %d", cfg.Name, res.ExitCode, wantCode)
		}
	}
}

func TestCompileValidates(t *testing.T) {
	src := `int main() { return 42; }`
	for _, abi := range []minic.ABI{minic.ABI32, minic.ABI64} {
		m, err := minic.Compile(src, abi)
		if err != nil {
			t.Fatal(err)
		}
		if err := wasm.Validate(m); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

func TestReturnCode(t *testing.T) {
	runAll(t, `int main() { return 42; }`, "", 42)
}

func TestArith(t *testing.T) {
	src := `
int main() {
  int a = 7; int b = 3;
  print_int(a + b); print_nl();
  print_int(a - b); print_nl();
  print_int(a * b); print_nl();
  print_int(a / b); print_nl();
  print_int(a % b); print_nl();
  print_int(a << 2); print_nl();
  print_int(-a >> 1); print_nl();
  print_int(a & b); print_nl();
  print_int(a | 8); print_nl();
  print_int(a ^ b); print_nl();
  return 0;
}`
	runAll(t, src, "10\n4\n21\n2\n1\n28\n-4\n3\n15\n4\n", 0)
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps++;
  }
  return steps;
}
int main() {
  print_int(collatz(27)); print_nl();
  int s = 0; int i;
  for (i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 8) break;
    s += i;
  }
  print_int(s); print_nl();
  do { s += 100; } while (0);
  print_int(s); print_nl();
  return 0;
}`
	runAll(t, src, "111\n25\n125\n", 0)
}

func TestPointersAndArrays(t *testing.T) {
	src := `
int g[10];
int sum(int *p, int n) {
  int s = 0; int i;
  for (i = 0; i < n; i++) { s += p[i]; }
  return s;
}
int main() {
  int i;
  int local[5];
  for (i = 0; i < 10; i++) { g[i] = i * i; }
  for (i = 0; i < 5; i++) { local[i] = i + 1; }
  print_int(sum(g, 10)); print_nl();
  print_int(sum(local, 5)); print_nl();
  int *p = g + 2;
  print_int(*p); print_nl();
  print_int(p[3]); print_nl();
  p++;
  print_int(*p); print_nl();
  print_int((int)(p - g)); print_nl();
  return 0;
}`
	runAll(t, src, "285\n15\n4\n25\n9\n3\n", 0)
}

func TestStructs(t *testing.T) {
	src := `
struct Node {
  int value;
  struct Node *next;
};
int main() {
  struct Node *head = 0;
  int i;
  for (i = 0; i < 10; i++) {
    struct Node *n = (struct Node*)malloc(sizeof(struct Node));
    n->value = i;
    n->next = head;
    head = n;
  }
  int s = 0;
  struct Node *p = head;
  while (p) { s += p->value; p = p->next; }
  print_int(s); print_nl();
  print_int(head->value); print_nl();
  return 0;
}`
	runAll(t, src, "45\n9\n", 0)
}

func TestStructSizeDiffersByABI(t *testing.T) {
	src := `
struct Node { int v; struct Node *next; };
int main() { return sizeof(struct Node); }`
	res32, err := toolchain.Run(src, codegen.Chrome(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res64, err := toolchain.Run(src, codegen.Native(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res32.ExitCode != 8 {
		t.Errorf("wasm32 sizeof(Node) = %d, want 8", res32.ExitCode)
	}
	if res64.ExitCode != 16 {
		t.Errorf("native sizeof(Node) = %d, want 16", res64.ExitCode)
	}
}

func TestDoubles(t *testing.T) {
	src := `
double poly(double x) { return 3.0 * x * x - 2.0 * x + 1.0; }
int main() {
  print_fixed(poly(2.0)); print_nl();
  print_fixed(sqrt(2.0)); print_nl();
  print_fixed(fabs(-2.5)); print_nl();
  print_fixed(floor(2.7)); print_nl();
  double d = 10.0; int i = (int)(d / 3.0);
  print_int(i); print_nl();
  return 0;
}`
	runAll(t, src, "9.000000\n1.414214\n2.500000\n2.000000\n3\n", 0)
}

func TestLongArith(t *testing.T) {
	src := `
int main() {
  long a = 1000000007;
  long b = a * a % 998244353;
  print_long(b); print_nl();
  long big = 1;
  int i;
  for (i = 0; i < 40; i++) { big = big * 2; }
  print_long(big); print_nl();
  unsigned long u = 0;
  u = u - 1;
  print_long((long)(u >> 32)); print_nl();
  return 0;
}`
	res, err := toolchain.Run(src, codegen.Native(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Stdout
	if !strings.Contains(want, "1099511627776") {
		t.Fatalf("unexpected native output %q", want)
	}
	runAll(t, src, want, 0)
}

func TestFunctionPointers(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
int main() {
  int (*op)(int, int);
  op = add;
  print_int(apply(op, 3, 4)); print_nl();
  op = mul;
  print_int(apply(op, 3, 4)); print_nl();
  print_int(op(5, 6)); print_nl();
  return 0;
}`
	runAll(t, src, "7\n12\n30\n", 0)
}

func TestSwitch(t *testing.T) {
	src := `
int classify(int c) {
  switch (c) {
  case 0: return 100;
  case 1:
  case 2: return 200;
  case 3: { int x = c * 2; return x; }
  case 7: break;
  default: return 400;
  }
  return 500;
}
int main() {
  print_int(classify(0)); print_nl();
  print_int(classify(1)); print_nl();
  print_int(classify(2)); print_nl();
  print_int(classify(3)); print_nl();
  print_int(classify(7)); print_nl();
  print_int(classify(99)); print_nl();
  return 0;
}`
	runAll(t, src, "100\n200\n200\n6\n500\n400\n", 0)
}

func TestStringsAndChars(t *testing.T) {
	src := `
int main() {
  char *s = "hello";
  print_int(strlen(s)); print_nl();
  char buf[32];
  strcpy(buf, s);
  buf[0] = 'H';
  puts(buf);
  print_int(strcmp("abc", "abd")); print_nl();
  print_int(atoi("-1234")); print_nl();
  return 0;
}`
	runAll(t, src, "5\nHello\n-1\n-1234\n", 0)
}

func TestMallocFree(t *testing.T) {
	src := `
int main() {
  int i; int total = 0;
  for (i = 0; i < 100; i++) {
    int *p = (int*)malloc(40);
    int j;
    for (j = 0; j < 10; j++) { p[j] = i + j; }
    total += p[9];
    free((char*)p);
  }
  print_int(total); print_nl();
  return 0;
}`
	runAll(t, src, "5850\n", 0)
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int table[5] = {10, 20, 30, 40, 50};
double pi = 3.14159;
char *msg = "hi";
int factor = 6 * 7;
int main() {
  int i; int s = 0;
  for (i = 0; i < 5; i++) { s += table[i]; }
  print_int(s); print_nl();
  print_int(factor); print_nl();
  puts(msg);
  print_fixed(pi); print_nl();
  return 0;
}`
	runAll(t, src, "150\n42\nhi\n3.141590\n", 0)
}

func TestRecursionAndTernary(t *testing.T) {
	src := `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() {
  print_int(fib(20)); print_nl();
  int x = 5;
  int y = x > 3 ? (x > 4 ? 100 : 50) : 0;
  print_int(y); print_nl();
  return 0;
}`
	runAll(t, src, "6765\n100\n", 0)
}

func TestLogicalOps(t *testing.T) {
	src := `
int sideEffect(int *c, int v) { *c = *c + 1; return v; }
int main() {
  int calls = 0;
  int r = sideEffect(&calls, 0) && sideEffect(&calls, 1);
  print_int(r); print_int(calls); print_nl();
  calls = 0;
  r = sideEffect(&calls, 1) || sideEffect(&calls, 0);
  print_int(r); print_int(calls); print_nl();
  print_int(!5); print_int(!0); print_nl();
  return 0;
}`
	runAll(t, src, "01\n11\n01\n", 0)
}

func TestUnsigned(t *testing.T) {
	src := `
int main() {
  unsigned a = 0;
  a = a - 1;
  print_int(a > 100u); print_nl();
  print_int((int)(a >> 16)); print_nl();
  unsigned b = 7u / 2u;
  print_int((int)b); print_nl();
  return 0;
}`
	runAll(t, src, "1\n65535\n3\n", 0)
}

func TestArgv(t *testing.T) {
	src := `
int main(int argc, char **argv) {
  int i;
  print_int(argc); print_nl();
  for (i = 0; i < argc; i++) { puts(argv[i]); }
  return 0;
}`
	for _, cfg := range engines() {
		res, err := toolchain.Run(src, cfg, []string{"prog", "alpha", "beta"}, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		want := "3\nprog\nalpha\nbeta\n"
		if res.Stdout != want {
			t.Errorf("%s: stdout = %q, want %q", cfg.Name, res.Stdout, want)
		}
	}
}

func TestFileIO(t *testing.T) {
	src := `
int main() {
  int fd = sys_open("/data/in.txt", 0, 0);
  if (fd < 0) { return 1; }
  char buf[64];
  int n = sys_read(fd, buf, 63);
  buf[n] = 0;
  sys_close(fd);
  int out = sys_open("/data/out.txt", 64 | 512 | 1, 0);
  sys_write(out, buf, n);
  sys_write(out, "!", 1);
  sys_close(out);
  print_int(n); print_nl();
  return 0;
}`
	for _, cfg := range engines() {
		cm, err := toolchain.Build(src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		res, err := toolchain.RunCompiled(cm, nil, map[string][]byte{"/data/in.txt": []byte("hello file")})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Stdout != "10\n" || res.ExitCode != 0 {
			t.Errorf("%s: stdout=%q code=%d", cfg.Name, res.Stdout, res.ExitCode)
		}
	}
}

func TestMultiDimArrays(t *testing.T) {
	src := `
double m[4][4];
int main() {
  int i; int j;
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) { m[i][j] = (double)(i * 4 + j); }
  }
  double tr = 0.0;
  for (i = 0; i < 4; i++) { tr += m[i][i]; }
  print_fixed(tr); print_nl();
  return 0;
}`
	runAll(t, src, "30.000000\n", 0)
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`int main() { return x; }`,
		`int main() { int a = "str" }`,
		`int main() { if (1) }`,
		`int f(struct S s) { return 0; } int main() { return 0; }`,
		`int main() { break; }`,
	}
	for _, src := range cases {
		if _, err := minic.Compile(src, minic.ABI32); err == nil {
			t.Errorf("expected error compiling %q", src)
		}
	}
}
