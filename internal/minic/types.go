package minic

import "fmt"

// TypeKind classifies mini-C types.
type TypeKind int

// Type kinds.
const (
	TVoid   TypeKind = iota
	TChar            // 1 byte, signed
	TInt             // 4 bytes, signed
	TUint            // 4 bytes, unsigned
	TLong            // 8 bytes, signed
	TULong           // 8 bytes, unsigned
	TFloat           // 4 bytes
	TDouble          // 8 bytes
	TPtr
	TArray
	TStruct
	TFunc // function designator (not an object type)
)

// Type is a mini-C type.
type Type struct {
	Kind TypeKind
	Elem *Type // pointee / element
	N    int   // array length
	S    *StructType
	Fn   *FuncSig // for TPtr-to-func (Elem nil, Fn set) and TFunc
}

// FuncSig is a function signature.
type FuncSig struct {
	Params []*Type
	Ret    *Type
}

// StructType is a struct definition.
type StructType struct {
	Name   string
	Fields []Field
	// size/align are computed per ABI at layout time.
	size  map[int]int // ptrSize -> size
	offs  map[int][]int
	align map[int]int
}

// Field is one struct member.
type Field struct {
	Name string
	Type *Type
}

// Singleton basic types.
var (
	tyVoid   = &Type{Kind: TVoid}
	tyChar   = &Type{Kind: TChar}
	tyInt    = &Type{Kind: TInt}
	tyUint   = &Type{Kind: TUint}
	tyLong   = &Type{Kind: TLong}
	tyULong  = &Type{Kind: TULong}
	tyFloat  = &Type{Kind: TFloat}
	tyDouble = &Type{Kind: TDouble}
)

func ptrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TChar:
		return "char"
	case TInt:
		return "int"
	case TUint:
		return "unsigned"
	case TLong:
		return "long"
	case TULong:
		return "unsigned long"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TPtr:
		if t.Fn != nil {
			return "fnptr"
		}
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.N)
	case TStruct:
		return "struct " + t.S.Name
	case TFunc:
		return "func"
	}
	return "?"
}

// isInt reports whether t is an integer type (incl. char, excl. pointers).
func (t *Type) isInt() bool {
	switch t.Kind {
	case TChar, TInt, TUint, TLong, TULong:
		return true
	}
	return false
}

// isFloat reports float/double.
func (t *Type) isFloat() bool { return t.Kind == TFloat || t.Kind == TDouble }

// isUnsigned reports unsigned integer types.
func (t *Type) isUnsigned() bool { return t.Kind == TUint || t.Kind == TULong }

// is64 reports 8-byte integer types.
func (t *Type) is64() bool { return t.Kind == TLong || t.Kind == TULong }

// isScalar reports types that fit a wasm value.
func (t *Type) isScalar() bool {
	return t.isInt() || t.isFloat() || t.Kind == TPtr
}

// size returns the storage size under the given pointer size.
func (t *Type) size(ptrSize int) int {
	switch t.Kind {
	case TChar:
		return 1
	case TInt, TUint, TFloat:
		return 4
	case TLong, TULong, TDouble:
		return 8
	case TPtr:
		return ptrSize
	case TArray:
		return t.N * t.Elem.size(ptrSize)
	case TStruct:
		return t.S.layoutSize(ptrSize)
	}
	return 0
}

// alignof returns alignment under the given pointer size.
func (t *Type) alignof(ptrSize int) int {
	switch t.Kind {
	case TChar:
		return 1
	case TInt, TUint, TFloat:
		return 4
	case TLong, TULong, TDouble:
		return 8
	case TPtr:
		return ptrSize
	case TArray:
		return t.Elem.alignof(ptrSize)
	case TStruct:
		return t.S.layoutAlign(ptrSize)
	}
	return 1
}

func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }

func (s *StructType) layout(ptrSize int) {
	if s.size == nil {
		s.size = map[int]int{}
		s.offs = map[int][]int{}
		s.align = map[int]int{}
	}
	if _, ok := s.size[ptrSize]; ok {
		return
	}
	off := 0
	maxAlign := 1
	offs := make([]int, len(s.Fields))
	for i, f := range s.Fields {
		a := f.Type.alignof(ptrSize)
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		offs[i] = off
		off += f.Type.size(ptrSize)
	}
	s.size[ptrSize] = alignUp(off, maxAlign)
	s.offs[ptrSize] = offs
	s.align[ptrSize] = maxAlign
}

func (s *StructType) layoutSize(ptrSize int) int {
	s.layout(ptrSize)
	return s.size[ptrSize]
}

func (s *StructType) layoutAlign(ptrSize int) int {
	s.layout(ptrSize)
	return s.align[ptrSize]
}

// fieldOffset returns the byte offset and type of the named field.
func (s *StructType) fieldOffset(name string, ptrSize int) (int, *Type, bool) {
	s.layout(ptrSize)
	for i, f := range s.Fields {
		if f.Name == name {
			return s.offs[ptrSize][i], f.Type, true
		}
	}
	return 0, nil, false
}

// sameType reports structural type equality.
func sameType(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TPtr:
		if (a.Fn == nil) != (b.Fn == nil) {
			return false
		}
		if a.Fn != nil {
			return sameSig(a.Fn, b.Fn)
		}
		return sameType(a.Elem, b.Elem)
	case TArray:
		return a.N == b.N && sameType(a.Elem, b.Elem)
	case TStruct:
		return a.S == b.S
	}
	return true
}

func sameSig(a, b *FuncSig) bool {
	if len(a.Params) != len(b.Params) {
		return false
	}
	if !sameType(a.Ret, b.Ret) {
		return false
	}
	for i := range a.Params {
		if !sameType(a.Params[i], b.Params[i]) {
			return false
		}
	}
	return true
}
