package minic

// Expr is an expression node.
type Expr struct {
	Op   string // node kind: "num","fnum","str","var","call","bin","un","assign","cond","index","member","cast","sizeof","post","fnref","calli"
	Line int

	// Literals.
	Ival int64
	Fval float64
	Sval string

	// Identifiers.
	Name string

	// Operator text for bin/un/assign/post.
	Tok string

	X, Y, Z *Expr
	Args    []*Expr

	// Cast / sizeof type.
	T *Type

	// Resolved by the code generator.
	typ *Type
}

// Stmt is a statement node.
type Stmt struct {
	Op   string // "expr","decl","if","while","do","for","return","break","continue","block","switch","case","default"
	Line int

	E          *Expr
	Init       *Stmt
	Cond, Post *Expr
	Body       *Stmt
	Else       *Stmt
	Stmts      []*Stmt

	// Declarations.
	DeclName string
	DeclType *Type
	DeclInit *Expr

	// Switch support.
	Cases   []*SwitchCase
	CaseVal int64
}

// SwitchCase is one case arm.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Stmts     []*Stmt
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *Type
	Body   *Stmt
	Line   int
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name string
	Type *Type
	Init *Expr // constant initializer or nil
	// InitList for arrays: constant element initializers.
	InitList []*Expr
	Line     int
}

// Program is a parsed translation unit.
type Program struct {
	Structs map[string]*StructType
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
