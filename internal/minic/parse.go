package minic

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	structs map[string]*StructType
	prog    *Program
}

// Parse builds the AST for a translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:    toks,
		structs: map[string]*StructType{},
		prog:    &Program{Structs: map[string]*StructType{}},
	}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	p.prog.Structs = p.structs
	return p.prog, nil
}

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) peek(i int) token {
	if p.pos+i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+i]
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("minic: line %d: near %q: %s", p.tok().line, p.tok().String(), fmt.Sprintf(format, args...))
}

func (p *parser) accept(text string) bool {
	t := p.tok()
	if (t.kind == tPunct || t.kind == tKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q", text)
	}
	return nil
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.tok()
	if t.kind != tKeyword {
		return false
	}
	switch t.text {
	case "int", "long", "char", "double", "float", "void", "unsigned", "struct", "const", "static":
		return true
	}
	return false
}

// parseBaseType parses a type specifier (no declarator).
func (p *parser) parseBaseType() (*Type, error) {
	for p.accept("const") || p.accept("static") {
	}
	t := p.tok()
	if t.kind != tKeyword {
		return nil, p.errf("expected type")
	}
	switch t.text {
	case "void":
		p.pos++
		return tyVoid, nil
	case "char":
		p.pos++
		return tyChar, nil
	case "int":
		p.pos++
		return tyInt, nil
	case "float":
		p.pos++
		return tyFloat, nil
	case "double":
		p.pos++
		return tyDouble, nil
	case "long":
		p.pos++
		p.accept("long")
		p.accept("int")
		return tyLong, nil
	case "unsigned":
		p.pos++
		switch {
		case p.accept("long"):
			p.accept("long")
			p.accept("int")
			return tyULong, nil
		case p.accept("char"):
			return tyChar, nil // treated as char (signedness simplified)
		default:
			p.accept("int")
			return tyUint, nil
		}
	case "struct":
		p.pos++
		name := p.tok()
		if name.kind != tIdent {
			return nil, p.errf("expected struct name")
		}
		p.pos++
		st, ok := p.structs[name.text]
		if !ok {
			st = &StructType{Name: name.text}
			p.structs[name.text] = st
		}
		return &Type{Kind: TStruct, S: st}, nil
	}
	return nil, p.errf("expected type")
}

// parseDeclarator parses pointer stars, a name, optional function-pointer
// form (*name)(params), and array suffixes.
func (p *parser) parseDeclarator(base *Type) (string, *Type, error) {
	t := base
	for p.accept("*") {
		t = ptrTo(t)
	}
	// Function pointer: (*name)(params)
	if p.tok().kind == tPunct && p.tok().text == "(" && p.peek(1).text == "*" {
		p.pos += 2
		name := p.tok()
		if name.kind != tIdent {
			return "", nil, p.errf("expected function pointer name")
		}
		p.pos++
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		sig, err := p.parseParamSig(t)
		if err != nil {
			return "", nil, err
		}
		return name.text, &Type{Kind: TPtr, Fn: sig}, nil
	}
	name := p.tok()
	if name.kind != tIdent {
		return "", nil, p.errf("expected identifier in declarator")
	}
	p.pos++
	// Array suffixes (possibly multi-dimensional).
	var dims []int
	for p.accept("[") {
		n := p.tok()
		if n.kind != tInt {
			return "", nil, p.errf("array length must be an integer literal")
		}
		p.pos++
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
		dims = append(dims, int(n.ival))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = &Type{Kind: TArray, Elem: t, N: dims[i]}
	}
	return name.text, t, nil
}

// parseParamSig parses "(T a, T b)" after a function-pointer declarator.
func (p *parser) parseParamSig(ret *Type) (*FuncSig, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	sig := &FuncSig{Ret: ret}
	if p.accept(")") {
		return sig, nil
	}
	if p.tok().kind == tKeyword && p.tok().text == "void" && p.peek(1).text == ")" {
		p.pos += 2
		return sig, nil
	}
	for {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		t := base
		for p.accept("*") {
			t = ptrTo(t)
		}
		// Parameter name optional in signatures.
		if p.tok().kind == tIdent {
			p.pos++
		}
		sig.Params = append(sig.Params, t)
		if !p.accept(",") {
			break
		}
	}
	return sig, p.expect(")")
}

// parseUnit parses top-level declarations.
func (p *parser) parseUnit() error {
	for p.tok().kind != tEOF {
		// struct S { ... };
		if p.tok().kind == tKeyword && p.tok().text == "struct" && p.peek(2).text == "{" {
			if err := p.parseStructDef(); err != nil {
				return err
			}
			continue
		}
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		if p.accept(";") {
			continue // bare struct declaration
		}
		name, t, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		// Function definition?
		if p.tok().kind == tPunct && p.tok().text == "(" && t.Kind != TPtr || (t.Kind == TPtr && t.Fn == nil && p.tok().text == "(") {
			if p.tok().text == "(" {
				if err := p.parseFunc(name, t); err != nil {
					return err
				}
				continue
			}
		}
		// Global variable(s).
		for {
			g := &GlobalDecl{Name: name, Type: t, Line: p.tok().line}
			if p.accept("=") {
				if p.tok().text == "{" {
					lst, err := p.parseInitList()
					if err != nil {
						return err
					}
					g.InitList = lst
				} else {
					e, err := p.parseAssign()
					if err != nil {
						return err
					}
					g.Init = e
				}
			}
			p.prog.Globals = append(p.prog.Globals, g)
			if p.accept(",") {
				name, t, err = p.parseDeclarator(base)
				if err != nil {
					return err
				}
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseInitList() ([]*Expr, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []*Expr
	for !p.accept("}") {
		e, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(",") {
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			break
		}
	}
	return out, nil
}

func (p *parser) parseStructDef() error {
	p.pos++ // struct
	name := p.tok().text
	p.pos++
	st, ok := p.structs[name]
	if !ok {
		st = &StructType{Name: name}
		p.structs[name] = st
	}
	if len(st.Fields) > 0 {
		return p.errf("struct %s redefined", name)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		for {
			fname, ft, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: ft})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	return p.expect(";")
}

func (p *parser) parseFunc(name string, ret *Type) error {
	fd := &FuncDecl{Name: name, Ret: ret, Line: p.tok().line}
	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		if p.tok().kind == tKeyword && p.tok().text == "void" && p.peek(1).text == ")" {
			p.pos += 2
		} else {
			for {
				base, err := p.parseBaseType()
				if err != nil {
					return err
				}
				pname, pt, err := p.parseDeclarator(base)
				if err != nil {
					return err
				}
				if pt.Kind == TArray {
					pt = ptrTo(pt.Elem) // arrays decay in params
				}
				fd.Params = append(fd.Params, Param{Name: pname, Type: pt})
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
		}
	}
	// Prototype only?
	if p.accept(";") {
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	p.prog.Funcs = append(p.prog.Funcs, fd)
	return nil
}

func (p *parser) parseBlock() (*Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &Stmt{Op: "block", Line: p.tok().line}
	for !p.accept("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	t := p.tok()
	line := t.line
	switch {
	case t.kind == tPunct && t.text == "{":
		return p.parseBlock()
	case t.kind == tKeyword && t.text == "if":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Op: "if", Cond: cond, Body: body, Line: line}
		if p.accept("else") {
			s.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case t.kind == tKeyword && t.text == "while":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Op: "while", Cond: cond, Body: body, Line: line}, nil
	case t.kind == tKeyword && t.text == "do":
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Op: "do", Cond: cond, Body: body, Line: line}, nil
	case t.kind == tKeyword && t.text == "for":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Stmt{Op: "for", Line: line}
		if !p.accept(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Post = post
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil
	case t.kind == tKeyword && t.text == "return":
		p.pos++
		s := &Stmt{Op: "return", Line: line}
		if !p.accept(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.E = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return s, nil
	case t.kind == tKeyword && t.text == "break":
		p.pos++
		return &Stmt{Op: "break", Line: line}, p.expect(";")
	case t.kind == tKeyword && t.text == "continue":
		p.pos++
		return &Stmt{Op: "continue", Line: line}, p.expect(";")
	case t.kind == tKeyword && t.text == "switch":
		return p.parseSwitch()
	case t.kind == tPunct && t.text == ";":
		p.pos++
		return &Stmt{Op: "block", Line: line}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	return s, p.expect(";")
}

// parseSimpleStmt parses a declaration or expression statement (no
// terminating semicolon).
func (p *parser) parseSimpleStmt() (*Stmt, error) {
	if p.isTypeStart() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		blk := &Stmt{Op: "block", Line: p.tok().line}
		for {
			name, t, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			d := &Stmt{Op: "decl", DeclName: name, DeclType: t, Line: p.tok().line}
			if p.accept("=") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.DeclInit = e
			}
			blk.Stmts = append(blk.Stmts, d)
			if !p.accept(",") {
				break
			}
		}
		if len(blk.Stmts) == 1 {
			return blk.Stmts[0], nil
		}
		return blk, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Stmt{Op: "expr", E: e, Line: e.Line}, nil
}

func (p *parser) parseSwitch() (*Stmt, error) {
	line := p.tok().line
	p.pos++ // switch
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	s := &Stmt{Op: "switch", Cond: cond, Line: line}
	var cur *SwitchCase
	for !p.accept("}") {
		switch {
		case p.accept("case"):
			neg := p.accept("-")
			v := p.tok()
			if v.kind != tInt && v.kind != tChar {
				return nil, p.errf("case value must be an integer literal")
			}
			p.pos++
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			val := v.ival
			if neg {
				val = -val
			}
			cur = &SwitchCase{Val: val}
			s.Cases = append(s.Cases, cur)
		case p.accept("default"):
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			cur = &SwitchCase{IsDefault: true}
			s.Cases = append(s.Cases, cur)
		default:
			if cur == nil {
				return nil, p.errf("statement before first case")
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Stmts = append(cur.Stmts, st)
		}
	}
	return s, nil
}
