package minic

import (
	"repro/internal/wasm"
)

// binary generates binary operators.
func (fg *fgen) binary(e *Expr) (*Type, error) {
	fb := fg.fb
	switch e.Tok {
	case ",":
		t, err := fg.expr(e.X)
		if err != nil {
			return nil, err
		}
		if t.Kind != TVoid {
			fb.Op(wasm.OpDrop)
		}
		return fg.expr(e.Y)

	case "&&", "||":
		if err := fg.cond(e.X); err != nil {
			return nil, err
		}
		fb.If(wasm.BlockOf(wasm.I32))
		if e.Tok == "&&" {
			if err := fg.cond(e.Y); err != nil {
				return nil, err
			}
			fb.I32Const(0).Op(wasm.OpI32Ne)
			fb.Else()
			fb.I32Const(0)
		} else {
			fb.I32Const(1)
			fb.Else()
			if err := fg.cond(e.Y); err != nil {
				return nil, err
			}
			fb.I32Const(0).Op(wasm.OpI32Ne)
		}
		fb.End()
		return tyInt, nil

	case "==", "!=", "<", ">", "<=", ">=":
		at, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		bt, err := fg.typeOf(e.Y)
		if err != nil {
			return nil, err
		}
		at, bt = decay(at), decay(bt)
		var ct *Type
		if at.Kind == TPtr || bt.Kind == TPtr {
			ct = tyUint // pointer comparison is unsigned 32-bit
		} else {
			ct = commonType(at, bt)
		}
		xt, err := fg.expr(e.X)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(xt), ct, e.Line); err != nil {
			return nil, err
		}
		yt, err := fg.expr(e.Y)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(yt), ct, e.Line); err != nil {
			return nil, err
		}
		op, ok := cmpOpcode(e.Tok, ct)
		if !ok {
			return nil, fg.errf(e.Line, "bad comparison %q on %s", e.Tok, ct)
		}
		fb.Op(op)
		return tyInt, nil
	}

	// Arithmetic (with pointer cases).
	at, err := fg.typeOf(e.X)
	if err != nil {
		return nil, err
	}
	bt, err := fg.typeOf(e.Y)
	if err != nil {
		return nil, err
	}
	at, bt = decay(at), decay(bt)

	// ptr +/- int, int + ptr, ptr - ptr.
	if e.Tok == "+" || e.Tok == "-" {
		switch {
		case at.Kind == TPtr && bt.isInt():
			if _, err := fg.expr(e.X); err != nil {
				return nil, err
			}
			it, err := fg.expr(e.Y)
			if err != nil {
				return nil, err
			}
			if it.is64() {
				fb.Op(wasm.OpI32WrapI64)
			}
			fg.scaleIndex(at.Elem)
			if e.Tok == "+" {
				fb.Op(wasm.OpI32Add)
			} else {
				fb.Op(wasm.OpI32Sub)
			}
			return at, nil
		case at.isInt() && bt.Kind == TPtr && e.Tok == "+":
			it, err := fg.expr(e.X)
			if err != nil {
				return nil, err
			}
			if it.is64() {
				fb.Op(wasm.OpI32WrapI64)
			}
			fg.scaleIndex(bt.Elem)
			if _, err := fg.expr(e.Y); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpI32Add)
			return bt, nil
		case at.Kind == TPtr && bt.Kind == TPtr && e.Tok == "-":
			if _, err := fg.expr(e.X); err != nil {
				return nil, err
			}
			if _, err := fg.expr(e.Y); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpI32Sub)
			sz := at.Elem.size(fg.g.abi.PtrSize)
			if sz > 1 {
				fb.I32Const(int32(sz)).Op(wasm.OpI32DivS)
			}
			return tyInt, nil
		}
	}

	ct := commonType(at, bt)
	xt, err := fg.expr(e.X)
	if err != nil {
		return nil, err
	}
	if err := fg.convert(decay(xt), ct, e.Line); err != nil {
		return nil, err
	}
	yt, err := fg.expr(e.Y)
	if err != nil {
		return nil, err
	}
	// Shift counts keep the left operand's width.
	if e.Tok == "<<" || e.Tok == ">>" {
		if err := fg.convert(decay(yt), ct, e.Line); err != nil {
			return nil, err
		}
	} else if err := fg.convert(decay(yt), ct, e.Line); err != nil {
		return nil, err
	}
	op, ok := binOpcode(e.Tok, ct)
	if !ok {
		return nil, fg.errf(e.Line, "bad operator %q on %s", e.Tok, ct)
	}
	fb.Op(op)
	return ct, nil
}

// unary generates unary operators.
func (fg *fgen) unary(e *Expr) (*Type, error) {
	fb := fg.fb
	switch e.Tok {
	case "-":
		t, err := fg.typeOf(e.X)
		if err != nil {
			return nil, err
		}
		t = decay(t)
		switch {
		case t.Kind == TDouble:
			if _, err := fg.expr(e.X); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpF64Neg)
			return tyDouble, nil
		case t.Kind == TFloat:
			if _, err := fg.expr(e.X); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpF32Neg)
			return tyFloat, nil
		case t.is64():
			fb.I64Const(0)
			if _, err := fg.expr(e.X); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpI64Sub)
			return t, nil
		default:
			fb.I32Const(0)
			xt, err := fg.expr(e.X)
			if err != nil {
				return nil, err
			}
			if err := fg.convert(decay(xt), tyInt, e.Line); err != nil {
				return nil, err
			}
			fb.Op(wasm.OpI32Sub)
			return tyInt, nil
		}
	case "!":
		t, err := fg.expr(e.X)
		if err != nil {
			return nil, err
		}
		if err := fg.truthify(t, e.Line); err != nil {
			return nil, err
		}
		fb.Op(wasm.OpI32Eqz)
		return tyInt, nil
	case "~":
		t, err := fg.expr(e.X)
		if err != nil {
			return nil, err
		}
		if t.is64() {
			fb.I64Const(-1).Op(wasm.OpI64Xor)
			return t, nil
		}
		fb.I32Const(-1).Op(wasm.OpI32Xor)
		return tyInt, nil
	case "*":
		lv, err := fg.lvalue(e)
		if err != nil {
			return nil, err
		}
		if lv.t.Kind == TArray || lv.t.Kind == TStruct {
			return decayAggregate(lv.t), nil
		}
		fg.loadScalar(lv.t, 0)
		return lv.t, nil
	case "&":
		lv, err := fg.lvalue(e.X)
		if err != nil {
			return nil, err
		}
		if lv.isLocal {
			return nil, fg.errf(e.Line, "internal: address of register local %v", e.X.Name)
		}
		return ptrTo(lv.t), nil
	}
	return nil, fg.errf(e.Line, "unhandled unary %q", e.Tok)
}

// assign handles = and compound assignment, yielding the stored value.
func (fg *fgen) assign(e *Expr) (*Type, error) {
	fb := fg.fb
	lv, err := fg.lvalue(e.X)
	if err != nil {
		return nil, err
	}
	simple := e.Tok == "="

	if lv.isLocal {
		if simple {
			rt, err := fg.expr(e.Y)
			if err != nil {
				return nil, err
			}
			if err := fg.convert(decay(rt), lv.t, e.Line); err != nil {
				return nil, err
			}
			fb.LocalTee(lv.local)
			return lv.t, nil
		}
		// x op= y  =>  x = x op y, with pointer scaling for += / -=.
		op := e.Tok[:len(e.Tok)-1]
		fb.LocalGet(lv.local)
		if lv.t.Kind == TPtr && (op == "+" || op == "-") {
			it, err := fg.expr(e.Y)
			if err != nil {
				return nil, err
			}
			if it.is64() {
				fb.Op(wasm.OpI32WrapI64)
			}
			fg.scaleIndex(lv.t.Elem)
			if op == "+" {
				fb.Op(wasm.OpI32Add)
			} else {
				fb.Op(wasm.OpI32Sub)
			}
			fb.LocalTee(lv.local)
			return lv.t, nil
		}
		rt0, err := fg.typeOf(e.Y)
		if err != nil {
			return nil, err
		}
		ct := commonType(lv.t, decay(rt0))
		if err := fg.convert(lv.t, ct, e.Line); err != nil {
			return nil, err
		}
		rt, err := fg.expr(e.Y)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(rt), ct, e.Line); err != nil {
			return nil, err
		}
		opc, ok := binOpcode(op, ct)
		if !ok {
			return nil, fg.errf(e.Line, "bad operator %q on %s", op, ct)
		}
		fb.Op(opc)
		if err := fg.convert(ct, lv.t, e.Line); err != nil {
			return nil, err
		}
		fb.LocalTee(lv.local)
		return lv.t, nil
	}

	// Memory lvalue: the address is on the stack.
	vt := fg.g.valType(lv.t)
	if simple {
		rt, err := fg.expr(e.Y)
		if err != nil {
			return nil, err
		}
		if err := fg.convert(decay(rt), lv.t, e.Line); err != nil {
			return nil, err
		}
		vS := fg.getScratch(vt)
		fb.LocalTee(vS)
		fg.storeScalar(lv.t, 0)
		fb.LocalGet(vS)
		fg.putScratch(vt, vS)
		return lv.t, nil
	}
	op := e.Tok[:len(e.Tok)-1]
	aS := fg.getScratch(wasm.I32)
	fb.LocalSet(aS) // address
	fb.LocalGet(aS) // for the store
	fb.LocalGet(aS)
	fg.loadScalar(lv.t, 0)
	if lv.t.Kind == TPtr && (op == "+" || op == "-") {
		it, err := fg.expr(e.Y)
		if err != nil {
			return nil, err
		}
		if it.is64() {
			fb.Op(wasm.OpI32WrapI64)
		}
		fg.scaleIndex(lv.t.Elem)
		if op == "+" {
			fb.Op(wasm.OpI32Add)
		} else {
			fb.Op(wasm.OpI32Sub)
		}
		vS := fg.getScratch(wasm.I32)
		fb.LocalTee(vS)
		fg.storeScalar(lv.t, 0)
		fb.LocalGet(vS)
		fg.putScratch(wasm.I32, vS)
		fg.putScratch(wasm.I32, aS)
		return lv.t, nil
	}
	rt0, err := fg.typeOf(e.Y)
	if err != nil {
		return nil, err
	}
	ct := commonType(lv.t, decay(rt0))
	if err := fg.convert(lv.t, ct, e.Line); err != nil {
		return nil, err
	}
	rt, err := fg.expr(e.Y)
	if err != nil {
		return nil, err
	}
	if err := fg.convert(decay(rt), ct, e.Line); err != nil {
		return nil, err
	}
	opc, ok := binOpcode(op, ct)
	if !ok {
		return nil, fg.errf(e.Line, "bad operator %q on %s", op, ct)
	}
	fb.Op(opc)
	if err := fg.convert(ct, lv.t, e.Line); err != nil {
		return nil, err
	}
	vS := fg.getScratch(vt)
	fb.LocalTee(vS)
	fg.storeScalar(lv.t, 0)
	fb.LocalGet(vS)
	fg.putScratch(vt, vS)
	fg.putScratch(wasm.I32, aS)
	return lv.t, nil
}

// postIncDec handles x++ / x-- yielding the old value.
func (fg *fgen) postIncDec(e *Expr) (*Type, error) {
	fb := fg.fb
	lv, err := fg.lvalue(e.X)
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if lv.t.Kind == TPtr {
		step = int64(lv.t.Elem.size(fg.g.abi.PtrSize))
	}
	add := e.Tok == "++"

	if lv.isLocal {
		fb.LocalGet(lv.local) // old value (result)
		fb.LocalGet(lv.local)
		fg.pushStep(lv.t, step)
		fg.addSub(lv.t, add)
		fb.LocalSet(lv.local)
		return lv.t, nil
	}
	aS := fg.getScratch(wasm.I32)
	fb.LocalSet(aS)
	vt := fg.g.valType(lv.t)
	oldS := fg.getScratch(vt)
	fb.LocalGet(aS)
	fg.loadScalar(lv.t, 0)
	fb.LocalSet(oldS)
	fb.LocalGet(aS)
	fb.LocalGet(oldS)
	fg.pushStep(lv.t, step)
	fg.addSub(lv.t, add)
	fg.storeScalar(lv.t, 0)
	fb.LocalGet(oldS)
	fg.putScratch(vt, oldS)
	fg.putScratch(wasm.I32, aS)
	return lv.t, nil
}

func (fg *fgen) pushStep(t *Type, step int64) {
	switch {
	case t.Kind == TDouble:
		fg.fb.F64Const(float64(step))
	case t.Kind == TFloat:
		fg.fb.Emit(wasm.Instr{Op: wasm.OpF32Const, F64: float64(step)})
	case t.is64():
		fg.fb.I64Const(step)
	default:
		fg.fb.I32Const(int32(step))
	}
}

func (fg *fgen) addSub(t *Type, add bool) {
	var op wasm.Opcode
	switch {
	case t.Kind == TDouble:
		op = wasm.OpF64Add
		if !add {
			op = wasm.OpF64Sub
		}
	case t.Kind == TFloat:
		op = wasm.OpF32Add
		if !add {
			op = wasm.OpF32Sub
		}
	case t.is64():
		op = wasm.OpI64Add
		if !add {
			op = wasm.OpI64Sub
		}
	default:
		op = wasm.OpI32Add
		if !add {
			op = wasm.OpI32Sub
		}
	}
	fg.fb.Op(op)
}
