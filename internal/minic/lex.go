// Package minic compiles a C subset to WebAssembly, standing in for the
// paper's Emscripten toolchain. It produces exactly the module shape
// Emscripten produces: linear memory with globals and string literals in
// data segments, a shadow-stack pointer in wasm global 0, a function table
// for address-taken functions, and Browsix syscall imports.
//
// The target ABI is parameterized by pointer size: browsers compile the
// 4-byte-pointer (wasm32) build, the native backend compiles an 8-byte-
// pointer build — reproducing the pointer-density effects behind the
// paper's 429.mcf/433.milc anomaly.
package minic

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt    // integer literal
	tFloat  // floating literal
	tString // string literal
	tChar   // character literal
	tPunct  // operators and punctuation
	tKeyword
)

var keywords = map[string]bool{
	"int": true, "long": true, "char": true, "double": true, "float": true,
	"void": true, "unsigned": true, "struct": true, "if": true, "else": true,
	"while": true, "for": true, "do": true, "return": true, "break": true,
	"continue": true, "sizeof": true, "static": true, "const": true,
	"switch": true, "case": true, "default": true,
}

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "<eof>"
	}
	return t.text
}

// lexer tokenizes mini-C source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, t)
		if t.kind == tEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("minic: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekc() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) at(i int) byte {
	if lx.pos+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+i]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (lx *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for {
		c := lx.peekc()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '\n':
			lx.pos++
			lx.line++
		case c == '/' && lx.at(1) == '/':
			for lx.peekc() != '\n' && lx.peekc() != 0 {
				lx.pos++
			}
		case c == '/' && lx.at(1) == '*':
			lx.pos += 2
			for !(lx.peekc() == '*' && lx.at(1) == '/') {
				if lx.peekc() == 0 {
					return token{}, lx.errf("unterminated comment")
				}
				if lx.peekc() == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		case c == '#':
			// Preprocessor lines are ignored (workload sources use none).
			for lx.peekc() != '\n' && lx.peekc() != 0 {
				lx.pos++
			}
		default:
			goto lexed
		}
	}
lexed:
	c := lx.peekc()
	if c == 0 {
		return token{kind: tEOF, line: lx.line}, nil
	}

	// Identifiers / keywords.
	if isAlpha(c) {
		start := lx.pos
		for isAlpha(lx.peekc()) || isDigit(lx.peekc()) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		k := tIdent
		if keywords[text] {
			k = tKeyword
		}
		return token{kind: k, text: text, line: lx.line}, nil
	}

	// Numbers.
	if isDigit(c) || (c == '.' && isDigit(lx.at(1))) {
		return lx.lexNumber()
	}

	// Strings.
	if c == '"' {
		return lx.lexString()
	}
	if c == '\'' {
		return lx.lexChar()
	}

	// Punctuation: longest match first.
	three := []string{"<<=", ">>=", "..."}
	two := []string{
		"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
		"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	}
	for _, p := range three {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += 3
			return token{kind: tPunct, text: p, line: lx.line}, nil
		}
	}
	for _, p := range two {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += 2
			return token{kind: tPunct, text: p, line: lx.line}, nil
		}
	}
	lx.pos++
	return token{kind: tPunct, text: string(c), line: lx.line}, nil
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	isFloat := false
	if lx.peekc() == '0' && (lx.at(1) == 'x' || lx.at(1) == 'X') {
		lx.pos += 2
		for isHex(lx.peekc()) {
			lx.pos++
		}
		var v int64
		fmt.Sscanf(lx.src[start:lx.pos], "%v", &v)
		_, err := fmt.Sscanf(lx.src[start+2:lx.pos], "%x", &v)
		if err != nil {
			return token{}, lx.errf("bad hex literal %q", lx.src[start:lx.pos])
		}
		lx.skipIntSuffix()
		return token{kind: tInt, text: lx.src[start:lx.pos], ival: v, line: lx.line}, nil
	}
	for isDigit(lx.peekc()) {
		lx.pos++
	}
	if lx.peekc() == '.' {
		isFloat = true
		lx.pos++
		for isDigit(lx.peekc()) {
			lx.pos++
		}
	}
	if lx.peekc() == 'e' || lx.peekc() == 'E' {
		isFloat = true
		lx.pos++
		if lx.peekc() == '+' || lx.peekc() == '-' {
			lx.pos++
		}
		for isDigit(lx.peekc()) {
			lx.pos++
		}
	}
	text := lx.src[start:lx.pos]
	if isFloat || lx.peekc() == 'f' || lx.peekc() == 'F' {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, lx.errf("bad float literal %q", text)
		}
		if lx.peekc() == 'f' || lx.peekc() == 'F' {
			lx.pos++
		}
		return token{kind: tFloat, text: text, fval: f, line: lx.line}, nil
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return token{}, lx.errf("bad int literal %q", text)
	}
	lx.skipIntSuffix()
	return token{kind: tInt, text: text, ival: v, line: lx.line}, nil
}

func (lx *lexer) skipIntSuffix() {
	for lx.peekc() == 'l' || lx.peekc() == 'L' || lx.peekc() == 'u' || lx.peekc() == 'U' {
		lx.pos++
	}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *lexer) lexString() (token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for {
		c := lx.peekc()
		if c == 0 || c == '\n' {
			return token{}, lx.errf("unterminated string")
		}
		if c == '"' {
			lx.pos++
			break
		}
		if c == '\\' {
			lx.pos++
			e, err := lx.escape()
			if err != nil {
				return token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return token{kind: tString, text: sb.String(), line: lx.line}, nil
}

func (lx *lexer) lexChar() (token, error) {
	lx.pos++ // opening quote
	var v byte
	c := lx.peekc()
	if c == '\\' {
		lx.pos++
		e, err := lx.escape()
		if err != nil {
			return token{}, err
		}
		v = e
	} else {
		v = c
		lx.pos++
	}
	if lx.peekc() != '\'' {
		return token{}, lx.errf("unterminated char literal")
	}
	lx.pos++
	return token{kind: tChar, ival: int64(v), text: string(v), line: lx.line}, nil
}

func (lx *lexer) escape() (byte, error) {
	c := lx.peekc()
	lx.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, lx.errf("unknown escape \\%c", c)
}
