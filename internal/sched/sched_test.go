package sched

// Tests for the shared worker budget and the budget-aware job runner: the
// token accounting, the inline-progress guarantee that makes nested
// fan-outs deadlock-free, the process-wide goroutine bound, and the
// error-aggregation and cancellation semantics RunJobs has always had.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withCapacity pins the shared budget's capacity for one test and restores
// it on cleanup.
func withCapacity(t *testing.T, n int) {
	t.Helper()
	prev := SetSharedCapacity(n)
	Shared().ResetPeak()
	t.Cleanup(func() { SetSharedCapacity(prev) })
}

func TestBudgetWeightedAcquire(t *testing.T) {
	b := NewBudget(4)
	if got := b.Capacity(); got != 4 {
		t.Fatalf("Capacity = %d, want 4", got)
	}
	if !b.TryAcquire(3) {
		t.Fatal("TryAcquire(3) on an empty 4-token budget failed")
	}
	if b.TryAcquire(2) {
		t.Fatal("TryAcquire(2) with 1 free token succeeded")
	}
	if got := b.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	if got := b.Available(); got != 1 {
		t.Fatalf("Available = %d, want 1", got)
	}
	if !b.TryAcquire(1) {
		t.Fatal("TryAcquire(1) with 1 free token failed")
	}
	b.Release(3)
	if !b.TryAcquire(2) {
		t.Fatal("TryAcquire(2) after Release(3) failed")
	}
	if got := b.Peak(); got != 4 {
		t.Fatalf("Peak = %d, want 4", got)
	}
	b.Release(2)
	b.Release(1)
	b.ResetPeak()
	if got := b.Peak(); got != 0 {
		t.Fatalf("Peak after ResetPeak = %d, want 0", got)
	}
}

func TestBudgetReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without acquire did not panic")
		}
	}()
	NewBudget(2).Release(1)
}

// TestRunJobsInlineProgressWithExhaustedBudget pins the deadlock-freedom
// guarantee: with every token held elsewhere, RunJobs still completes all
// jobs (on the calling goroutine), with parallelism exactly 1.
func TestRunJobsInlineProgressWithExhaustedBudget(t *testing.T) {
	withCapacity(t, 2)
	if !Shared().TryAcquire(2) {
		t.Fatal("could not drain the budget")
	}
	defer Shared().Release(2)

	var inFlight, peak, ran atomic.Int64
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = func(context.Context) error {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			ran.Add(1)
			return nil
		}
	}
	if err := RunJobs(context.Background(), 8, jobs); err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if ran.Load() != 16 {
		t.Fatalf("ran %d jobs, want 16", ran.Load())
	}
	if peak.Load() != 1 {
		t.Fatalf("peak parallelism %d with exhausted budget, want 1", peak.Load())
	}
}

// TestRunJobsParallelismWithinBudget pins the token bound: concurrency
// never exceeds the budget capacity even when the requested worker count
// is far larger, and the budget's own high-water mark stays at capacity.
func TestRunJobsParallelismWithinBudget(t *testing.T) {
	const capacity = 3
	withCapacity(t, capacity)

	var inFlight, peak atomic.Int64
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = func(context.Context) error {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			return nil
		}
	}
	if err := RunJobs(context.Background(), 32, jobs); err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	// The caller holds one token for itself, so even its inline slot is
	// charged: total parallelism == capacity, not capacity+1.
	if peak.Load() > capacity {
		t.Fatalf("peak parallelism %d exceeds budget capacity %d", peak.Load(), capacity)
	}
	if got := Shared().Peak(); got > capacity {
		t.Fatalf("budget peak %d exceeds capacity %d", got, capacity)
	}
	if got := Shared().InUse(); got != 0 {
		t.Fatalf("tokens leaked: InUse = %d after RunJobs", got)
	}
}

// TestRunJobsNestedStaysWithinBudget fans out a suite whose jobs each fan
// out again, the shape of a cold suite start (RunJobs -> per-function
// compile). Total parallelism across both layers must respect the one
// shared budget.
func TestRunJobsNestedStaysWithinBudget(t *testing.T) {
	const capacity = 4
	withCapacity(t, capacity)

	var inFlight, peak atomic.Int64
	leaf := func(context.Context) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	}
	outer := make([]Job, 8)
	for i := range outer {
		outer[i] = func(ctx context.Context) error {
			inner := make([]Job, 16)
			for j := range inner {
				inner[j] = leaf
			}
			return RunJobs(ctx, 8, inner)
		}
	}
	if err := RunJobs(context.Background(), 8, outer); err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	// Every leaf-running goroutine is either the top-level caller (free
	// slot) or holds a budget token, so leaf parallelism is bounded by
	// capacity + 1 at any nesting depth.
	if peak.Load() > capacity+1 {
		t.Fatalf("nested peak parallelism %d exceeds capacity+1 = %d", peak.Load(), capacity+1)
	}
	if got := Shared().Peak(); got > capacity {
		t.Fatalf("budget peak %d exceeds capacity %d", got, capacity)
	}
	if got := Shared().InUse(); got != 0 {
		t.Fatalf("tokens leaked: InUse = %d", got)
	}
}

// TestRunJobsAggregatesAllErrors pins the multi-failure contract: every
// failing job appears in the aggregate, in job order.
func TestRunJobsAggregatesAllErrors(t *testing.T) {
	withCapacity(t, 4)
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) error {
			if i%3 == 0 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		}
	}
	err := RunJobs(context.Background(), 4, jobs)
	if err == nil {
		t.Fatal("RunJobs returned nil with failing jobs")
	}
	for _, want := range []string{"job 0 failed", "job 3 failed", "job 6 failed", "job 9 failed"} {
		if !errorsContains(err, want) {
			t.Errorf("aggregate error missing %q: %v", want, err)
		}
	}
}

// TestRunJobsCancellation pins that cancellation stops dispatch and appears
// in the aggregate.
func TestRunJobsCancellation(t *testing.T) {
	withCapacity(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		}
	}
	err := RunJobs(ctx, 2, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate error does not include cancellation: %v", err)
	}
	if ran.Load() == 100 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

// TestRunJobsConcurrentFanoutsShareBudget runs several top-level fan-outs
// at once; the token high-water mark across all of them must still respect
// the single shared budget.
func TestRunJobsConcurrentFanoutsShareBudget(t *testing.T) {
	const capacity = 3
	withCapacity(t, capacity)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]Job, 32)
			for i := range jobs {
				jobs[i] = func(context.Context) error {
					time.Sleep(50 * time.Microsecond)
					return nil
				}
			}
			if err := RunJobs(context.Background(), 8, jobs); err != nil {
				t.Errorf("RunJobs: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := Shared().Peak(); got > capacity {
		t.Fatalf("budget peak %d across concurrent fan-outs exceeds capacity %d", got, capacity)
	}
	if got := Shared().InUse(); got != 0 {
		t.Fatalf("tokens leaked: InUse = %d", got)
	}
}

func errorsContains(err error, substr string) bool {
	return err != nil && strings.Contains(err.Error(), substr)
}

// TestRunJobsContainsPanics covers the containment boundary on every worker
// path: the serial loop (workers=1), the caller's inline loop, and helper
// goroutines (workers>1). A panicking job must surface as a JobPanicError in
// the aggregate while every other job still runs.
func TestRunJobsContainsPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran atomic.Int64
			jobs := make([]Job, 16)
			for i := range jobs {
				i := i
				jobs[i] = func(context.Context) error {
					if i == 5 {
						panic("boom-5")
					}
					ran.Add(1)
					return nil
				}
			}
			err := RunJobs(context.Background(), workers, jobs)
			var pe *JobPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want JobPanicError", err)
			}
			if pe.Value != "boom-5" {
				t.Errorf("panic value = %v, want boom-5", pe.Value)
			}
			if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "sched") {
				t.Errorf("stack not captured: %q", pe.Stack)
			}
			if got := ran.Load(); got != 15 {
				t.Errorf("ran %d non-faulted jobs, want 15", got)
			}
			if got := Shared().InUse(); got != 0 {
				t.Errorf("tokens leaked after panic: InUse = %d", got)
			}
		})
	}
}

// TestRunJobsPanicJoinedWithErrors: a panic and an ordinary error from
// different jobs must both appear in the errors.Join aggregate.
func TestRunJobsPanicJoinedWithErrors(t *testing.T) {
	jobs := []Job{
		func(context.Context) error { return nil },
		func(context.Context) error { panic("pow") },
		func(context.Context) error { return errors.New("plain failure") },
	}
	err := RunJobs(context.Background(), 2, jobs)
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("aggregate %v missing JobPanicError", err)
	}
	if !errorsContains(err, "plain failure") {
		t.Errorf("aggregate %v missing the ordinary error", err)
	}
}

func TestCapturePanicNil(t *testing.T) {
	if pe := CapturePanic("x", nil); pe != nil {
		t.Fatalf("CapturePanic(nil) = %v, want nil", pe)
	}
	pe := CapturePanic("durbin", "bad")
	if pe == nil || !strings.Contains(pe.Error(), "durbin") {
		t.Fatalf("labeled panic error = %v, want label in message", pe)
	}
}

func TestParseTokens(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{in: "", want: 0},
		{in: "4", want: 4},
		{in: "1", want: 1},
		{in: "0", wantErr: true},
		{in: "-2", wantErr: true},
		{in: "four", wantErr: true},
		{in: "4.5", wantErr: true},
		{in: " 4", wantErr: true},
	}
	for _, tc := range cases {
		n, err := parseTokens(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseTokens(%q): no error, want one", tc.in)
			}
			continue
		}
		if err != nil || n != tc.want {
			t.Errorf("parseTokens(%q) = %d, %v; want %d, nil", tc.in, n, err, tc.want)
		}
	}
}

// TestRunJobsWeightedDispatchOrder pins longest-job-first claiming: with a
// single worker, jobs start strictly in descending weight order regardless
// of slice order. Errors still aggregate in slice order.
func TestRunJobsWeightedDispatchOrder(t *testing.T) {
	withCapacity(t, 1)
	var mu sync.Mutex
	var started []int
	weights := []uint64{10, 500, 50, 1000, 1}
	jobs := make([]WeightedJob, len(weights))
	for i, w := range weights {
		i, w := i, w
		jobs[i] = WeightedJob{Weight: w, Run: func(context.Context) error {
			mu.Lock()
			started = append(started, i)
			mu.Unlock()
			if i == 2 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		}}
	}
	err := RunJobsWeighted(context.Background(), 1, jobs)
	want := []int{3, 1, 2, 0, 4} // descending weight: 1000, 500, 50, 10, 1
	if fmt.Sprint(started) != fmt.Sprint(want) {
		t.Errorf("dispatch order = %v, want %v", started, want)
	}
	if err == nil || !errorsContains(err, "job 2 failed") {
		t.Errorf("aggregate error missing job 2 failure: %v", err)
	}
}

// TestRunJobsWeightedStableTies pins that equal weights preserve slice
// order (stable sort), keeping runs deterministic.
func TestRunJobsWeightedStableTies(t *testing.T) {
	withCapacity(t, 1)
	var mu sync.Mutex
	var started []int
	jobs := make([]WeightedJob, 6)
	for i := range jobs {
		i := i
		jobs[i] = WeightedJob{Weight: uint64(7), Run: func(context.Context) error {
			mu.Lock()
			started = append(started, i)
			mu.Unlock()
			return nil
		}}
	}
	if err := RunJobsWeighted(context.Background(), 1, jobs); err != nil {
		t.Fatalf("RunJobsWeighted: %v", err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if fmt.Sprint(started) != fmt.Sprint(want) {
		t.Errorf("tie dispatch order = %v, want %v", started, want)
	}
}
