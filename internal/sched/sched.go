// Package sched is the process-wide scheduler every fan-out in the
// reproduction shares: suite sharding in internal/pipeline and per-function
// module compilation in internal/codegen. It owns two things — a bounded
// job runner (RunJobs) and a weighted token Budget that caps how many extra
// worker goroutines exist across *all* concurrent fan-outs at once, at any
// nesting depth. It is a leaf package (importing only internal/config, the
// std-only knob registry) so the compiler can draw from the same budget the
// pipeline layers on top of it.
//
// The token protocol: a goroutine that calls RunJobs always works through
// the job list itself (its slot is "free" — it exists whether or not the
// scheduler helps it), and extra workers are spawned only while a token can
// be borrowed from the shared Budget without blocking. Helpers return their
// token when the job list runs dry. Because acquisition never blocks and
// inline progress is always possible, nested fan-outs (a suite job whose
// compile fans out per function) cannot deadlock, and the process-wide
// count of scheduler-spawned goroutines never exceeds the budget capacity
// (default GOMAXPROCS; $REPRO_SCHED_TOKENS overrides).
package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/config"
)

// Job is one unit of work. Jobs receive the scheduler's context and should
// return early when it is cancelled; long-running jobs that ignore it still
// finish, but no further jobs are dispatched after cancellation.
type Job func(ctx context.Context) error

// JobPanicError is a panic contained at a scheduler job boundary (or, via
// the kernel, at a simulated-process boundary): the panic value plus the
// goroutine stack captured at recovery. RunJobs converts every job panic
// into one of these and aggregates it with ordinary job errors, so one
// panicking job — a compiler bug, an injected fault — fails its own slot
// in the errors.Join result instead of killing the process and losing
// every other job's work.
type JobPanicError struct {
	// Job labels the panicking unit when the container knows a name (the
	// kernel uses the process path); RunJobs leaves it empty.
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery —
	// it includes the frames between the panic site and the job boundary.
	Stack []byte
}

func (e *JobPanicError) Error() string {
	if e.Job != "" {
		return fmt.Sprintf("sched: %s panicked: %v\n%s", e.Job, e.Value, e.Stack)
	}
	return fmt.Sprintf("sched: job panicked: %v\n%s", e.Value, e.Stack)
}

// CapturePanic converts a recovered panic value (from recover()) into a
// JobPanicError with the current stack. Containment boundaries outside the
// scheduler — the kernel's process goroutines, degraded suite runners —
// share this so every contained panic is reported in one shape. Returns
// nil for a nil recover value, so it can be called unconditionally in a
// deferred recovery block.
func CapturePanic(job string, v any) *JobPanicError {
	if v == nil {
		return nil
	}
	return &JobPanicError{Job: job, Value: v, Stack: debug.Stack()}
}

// DefaultWorkers is the scheduler's default parallelism: the machine's
// GOMAXPROCS, instead of a hardcoded width.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// TokensEnv overrides the shared budget's capacity (a positive integer;
// anything else is ignored). The default is DefaultWorkers.
const TokensEnv = config.EnvSchedTokens

// Budget is a weighted token pool bounding worker parallelism. Tokens are
// borrowed with TryAcquire — never a blocking wait, which is what makes the
// budget safe to share between nested fan-outs — and returned with Release.
// The zero Budget is unusable; use NewBudget.
type Budget struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	peak     int
}

// NewBudget returns a budget holding capacity tokens; capacity < 1 selects
// DefaultWorkers.
func NewBudget(capacity int) *Budget {
	if capacity < 1 {
		capacity = DefaultWorkers()
	}
	return &Budget{capacity: capacity}
}

// TryAcquire borrows w tokens if at least w are free, without blocking.
// w must be positive.
func (b *Budget) TryAcquire(w int) bool {
	if w < 1 {
		panic("sched: TryAcquire weight must be positive")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inUse+w > b.capacity {
		return false
	}
	b.inUse += w
	if b.inUse > b.peak {
		b.peak = b.inUse
	}
	return true
}

// Release returns w tokens borrowed with TryAcquire.
func (b *Budget) Release(w int) {
	if w < 1 {
		panic("sched: Release weight must be positive")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inUse -= w
	if b.inUse < 0 {
		panic("sched: Release without matching TryAcquire")
	}
}

// Capacity reports the budget's token count.
func (b *Budget) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// InUse reports how many tokens are currently borrowed.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Available reports how many tokens are currently free. The value is a
// snapshot — it can be stale by the time the caller acts on it — so it is
// only good for fast-path checks ("skip the fan-out machinery entirely"),
// never for reservation.
func (b *Budget) Available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity - b.inUse
}

// Peak reports the high-water mark of borrowed tokens since the last
// ResetPeak; by construction it never exceeds Capacity. Tests pin the
// goroutine bound with it.
func (b *Budget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// ResetPeak clears the high-water mark.
func (b *Budget) ResetPeak() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peak = b.inUse
}

// sharedBudget is the process-wide budget, sized once at init from
// $REPRO_SCHED_TOKENS or GOMAXPROCS.
var sharedBudget = NewBudget(capacityFromEnv())

// parseTokens parses a $REPRO_SCHED_TOKENS value (the shared contract lives
// in internal/config). An empty value selects the default (ok with n == 0);
// anything that is not a positive integer is an error — the caller decides
// whether to warn, but never silently treats a typo as "use the default".
func parseTokens(v string) (n int, err error) {
	return config.ParseSchedTokens(v)
}

func capacityFromEnv() int {
	n, err := parseTokens(os.Getenv(TokensEnv))
	if err != nil {
		// Warn instead of silently defaulting: a user who set the knob and
		// mistyped it would otherwise run at GOMAXPROCS and never know.
		// (Once per process by construction — this runs at init.)
		fmt.Fprintf(os.Stderr, "%v; using default %d\n", err, DefaultWorkers())
	}
	if n < 1 {
		return DefaultWorkers()
	}
	return n
}

// Shared returns the process-wide budget that RunJobs and
// codegen.Compile borrow workers from.
func Shared() *Budget { return sharedBudget }

// SetSharedCapacity resizes the process-wide budget and returns the
// previous capacity (tests; restore with a deferred call). Outstanding
// tokens are unaffected: shrinking below the in-use count just means no
// new acquisitions succeed until enough are released.
func SetSharedCapacity(n int) (prev int) {
	b := sharedBudget
	b.mu.Lock()
	defer b.mu.Unlock()
	prev = b.capacity
	if n >= 1 {
		b.capacity = n
	}
	return prev
}

// poolCtxKey marks the context RunJobs hands its jobs, so a nested RunJobs
// reached through that context knows its goroutine is already charged
// against the budget (caller self-token or helper token) and skips the
// best-effort self acquisition — double-charging would only waste capacity,
// never overshoot, but wasted tokens are wasted parallelism.
type poolCtxKey struct{}

// RunJobs executes jobs with bounded parallelism and returns every failure,
// joined with errors.Join in job order (not completion order). workers <= 0
// selects DefaultWorkers; the effective width is also capped by the shared
// Budget: the calling goroutine always participates, and each extra worker
// must hold a token borrowed (non-blocking) from the budget, so concurrent
// and nested RunJobs calls collectively stay within one process-wide bound
// instead of multiplying fan-outs. When ctx is cancelled, undispatched jobs
// are abandoned, in-flight jobs see the cancelled context, and ctx's error
// is included in the aggregate.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	return runJobs(ctx, workers, jobs, nil)
}

// WeightedJob is a job with a scheduling weight — the expected amount of
// work, in whatever unit the caller uses consistently (the suites use
// expected simulated instructions). Weights order dispatch; they do not
// change how many budget tokens a job holds.
type WeightedJob struct {
	Weight uint64
	Run    Job
}

// RunJobsWeighted is RunJobs with longest-job-first dispatch: jobs are
// claimed in descending Weight order (ties keep slice order), so one heavy
// job starts immediately instead of serializing behind a queue of cheap
// ones it happened to be listed after. Error aggregation is unchanged —
// joined in slice order, not dispatch or completion order.
func RunJobsWeighted(ctx context.Context, workers int, jobs []WeightedJob) error {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Weight > jobs[order[b]].Weight
	})
	plain := make([]Job, len(jobs))
	for i, j := range jobs {
		plain[i] = j.Run
	}
	return runJobs(ctx, workers, plain, order)
}

// runJobs is the shared dispatch core. order, when non-nil, is the claim
// order (a permutation of job indices); error slots always stay in slice
// order.
func runJobs(ctx context.Context, workers int, jobs []Job, order []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return ctx.Err()
	}

	// One error slot per job keeps the aggregate deterministic regardless
	// of scheduling order; errors.Join drops the nils.
	errs := make([]error, len(jobs)+1)
	jobCtx := ctx
	if workers > 1 && ctx.Value(poolCtxKey{}) == nil {
		jobCtx = context.WithValue(ctx, poolCtxKey{}, true)
	}
	var next atomic.Int64
	// call runs one job with panic containment: a panicking job fails its
	// own error slot with a JobPanicError (stack captured at the boundary)
	// instead of unwinding the worker goroutine — which for a helper would
	// kill the whole process, and for the caller would tear down every
	// sibling fan-out above it.
	call := func(i int) (err error) {
		defer func() {
			if pe := CapturePanic("", recover()); pe != nil {
				err = pe
			}
		}()
		return jobs[i](jobCtx)
	}
	// run is the worker loop shared by the caller and every helper: claim
	// the next job index, optionally top the helper pool back up (topUp),
	// run the job. The standalone Done check makes cancellation
	// deterministic: once ctx is done, no worker claims another job.
	run := func(topUp func()) {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			if order != nil {
				i = order[i]
			}
			if topUp != nil {
				topUp()
			}
			errs[i] = call(i)
		}
	}

	if workers <= 1 {
		run(nil)
		errs[len(jobs)] = ctx.Err()
		return errors.Join(errs...)
	}

	b := Shared()
	// The caller charges its own slot against the budget too (best-effort:
	// if no token is free it proceeds anyway — inline progress is the
	// deadlock-freedom guarantee). This makes a top-level suite fan-out
	// occupy exactly `workers` tokens, so nested compiles inside its jobs
	// see an exhausted budget and run serially instead of oversubscribing.
	// A nested call reached through a scheduler-owned context skips the
	// self charge: its goroutine is already counted.
	if ctx.Value(poolCtxKey{}) == nil && b.TryAcquire(1) {
		defer b.Release(1)
	}
	var wg sync.WaitGroup
	var helpers atomic.Int64
	// spawn tops the helper pool up to the remaining work, borrowing one
	// token per helper. Every worker — the caller and the helpers — calls
	// it between jobs, so tokens released by another fan-out are picked up
	// mid-run even while the caller is deep inside a long job. A helper's
	// wg.Add is safe relative to the caller's wg.Wait because the helper
	// has not run its own wg.Done yet (the counter cannot be zero).
	var spawn func()
	spawn = func() {
		for {
			h := helpers.Load()
			if int(h) >= workers-1 || int(h) >= len(jobs)-int(next.Load()) {
				return
			}
			if !helpers.CompareAndSwap(h, h+1) {
				continue
			}
			if !b.TryAcquire(1) {
				helpers.Add(-1)
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer b.Release(1)
				run(spawn)
			}()
		}
	}
	run(spawn)
	wg.Wait()
	errs[len(jobs)] = ctx.Err()
	return errors.Join(errs...)
}
