// Package sched is the bounded job scheduler shared by every fan-out in the
// reproduction: suite sharding in internal/pipeline and per-function module
// compilation in internal/codegen. It is a leaf package (no repro imports) so
// the compiler can use the same worker pool the pipeline layers on top of it.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Job is one unit of work. Jobs receive the scheduler's context and should
// return early when it is cancelled; long-running jobs that ignore it still
// finish, but no further jobs are dispatched after cancellation.
type Job func(ctx context.Context) error

// DefaultWorkers is the scheduler's default parallelism: the machine's
// GOMAXPROCS, instead of a hardcoded width.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunJobs executes jobs on a bounded worker pool and returns every failure,
// joined with errors.Join in job order (not completion order). workers <= 0
// selects DefaultWorkers. When ctx is cancelled, queued jobs are abandoned,
// in-flight jobs see the cancelled context, and ctx's error is included in
// the aggregate.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 0 {
		return ctx.Err()
	}

	type task struct {
		i  int
		fn Job
	}
	// One error slot per job keeps the aggregate deterministic regardless
	// of scheduling order; errors.Join drops the nils.
	errs := make([]error, len(jobs)+1)
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				errs[t.i] = t.fn(ctx)
			}
		}()
	}
feed:
	for i, fn := range jobs {
		// The standalone check makes cancellation deterministic: once ctx
		// is done, at most the one dispatch already racing in the send
		// select below goes out, never the rest of the queue.
		select {
		case <-ctx.Done():
			break feed
		default:
		}
		select {
		case ch <- task{i, fn}:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	errs[len(jobs)] = ctx.Err()
	return errors.Join(errs...)
}
