// Package x86 models the x86-64 subset targeted by the reproduction's code
// generators: general-purpose and SSE registers, the flag register, memory
// operands with the full addressing-mode range, and approximate instruction
// encodings (byte sizes) so that code footprint and L1 instruction cache
// behaviour can be simulated faithfully.
package x86

import "fmt"

// Reg is a machine register. 0-15 are the GPRs, 16-31 are XMM0-XMM15.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// SSE registers.
const (
	XMM0 Reg = 16 + iota
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
)

// NoReg marks an absent register field.
const NoReg Reg = 0xff

// IsXMM reports whether r is an SSE register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

var gpNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var gpNames32 = [...]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "<none>"
	case r.IsXMM():
		return fmt.Sprintf("xmm%d", r-XMM0)
	case int(r) < len(gpNames):
		return gpNames[r]
	}
	return fmt.Sprintf("reg%d", r)
}

// Name32 returns the 32-bit name of a GPR (eax, r8d, ...).
func (r Reg) Name32() string {
	if int(r) < len(gpNames32) {
		return gpNames32[r]
	}
	return r.String()
}

// CC is a condition code for Jcc/SETcc/CMOVcc.
type CC uint8

// Condition codes.
const (
	CCNone CC = iota
	CCE       // equal / zero
	CCNE      // not equal
	CCL       // less (signed)
	CCLE
	CCG
	CCGE
	CCB // below (unsigned)
	CCBE
	CCA
	CCAE
	CCS  // sign
	CCNS // no sign
	CCP  // parity (unordered float compare)
	CCNP
)

var ccNames = [...]string{"", "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns", "p", "np"}

func (c CC) String() string {
	if int(c) < len(ccNames) {
		return ccNames[c]
	}
	return fmt.Sprintf("cc%d", c)
}

// Negate returns the inverse condition.
func (c CC) Negate() CC {
	switch c {
	case CCE:
		return CCNE
	case CCNE:
		return CCE
	case CCL:
		return CCGE
	case CCLE:
		return CCG
	case CCG:
		return CCLE
	case CCGE:
		return CCL
	case CCB:
		return CCAE
	case CCBE:
		return CCA
	case CCA:
		return CCBE
	case CCAE:
		return CCB
	case CCS:
		return CCNS
	case CCNS:
		return CCS
	case CCP:
		return CCNP
	case CCNP:
		return CCP
	}
	return CCNone
}

// Op is an instruction mnemonic.
type Op uint8

// Instruction set. The width of integer operations comes from Inst.W.
const (
	ONop     Op = iota
	OMov        // mov dst, src
	OMovImm     // mov dst, imm
	OMovZX8     // movzx dst, src8
	OMovZX16    // movzx dst, src16
	OMovSX8     // movsx
	OMovSX16
	OMovSXD // movsxd dst, src32 (sign-extend 32->64)
	OLea    // lea dst, [mem]
	OAdd
	OSub
	OImul
	OAnd
	OOr
	OXor
	OShl // shift counts in CL or imm
	OSar
	OShr
	ORol
	ORor
	ONeg
	ONot
	OBsr // bit scan reverse (for clz)
	OBsf // bit scan forward (ctz)
	OPopcnt
	OCdq  // sign-extend rax into rdx (cdq/cqo)
	OIdiv // signed divide rdx:rax by operand
	ODiv  // unsigned divide
	OCmp
	OTest
	OSet   // setcc dst8
	OCmov  // cmovcc dst, src
	OJmp   // unconditional jump
	OJcc   // conditional jump
	OCall  // direct call
	OCallR // indirect call through register/memory
	ORet
	OPush
	OPop
	OUd2      // trap
	OCallHost // pseudo: call into the host runtime (syscall shim)

	// SSE scalar double/single ops. W selects 4 (ss) or 8 (sd).
	OMovsd // movsd/movss xmm<->xmm/mem
	OAddsd // addsd/addss
	OSubsd
	OMulsd
	ODivsd
	OSqrtsd
	OMinsd
	OMaxsd
	OUcomisd  // sets flags from float compare
	OCvtsi2sd // int -> float (W = int width; F selects float width)
	OCvttsd2si
	OCvtsd2ss
	OCvtss2sd
	OMovq  // xmm <-> gp raw bits
	OAndpd // bitwise float ops (abs/neg via masks)
	OXorpd
	ORound    // roundsd with mode in Imm: 0=nearest 1=floor 2=ceil 3=trunc
	OJmpTable // indirect jump through an inline jump table (TableTargets)
)

var opNames = map[Op]string{
	ONop: "nop", OMov: "mov", OMovImm: "mov", OMovZX8: "movzx", OMovZX16: "movzx",
	OMovSX8: "movsx", OMovSX16: "movsx", OMovSXD: "movsxd", OLea: "lea",
	OAdd: "add", OSub: "sub", OImul: "imul", OAnd: "and", OOr: "or", OXor: "xor",
	OShl: "shl", OSar: "sar", OShr: "shr", ORol: "rol", ORor: "ror",
	ONeg: "neg", ONot: "not", OBsr: "bsr", OBsf: "bsf", OPopcnt: "popcnt",
	OCdq: "cdq", OIdiv: "idiv", ODiv: "div", OCmp: "cmp", OTest: "test",
	OSet: "set", OCmov: "cmov", OJmp: "jmp", OJcc: "j", OCall: "call",
	OCallR: "call", ORet: "ret", OPush: "push", OPop: "pop", OUd2: "ud2",
	OCallHost: "callhost",
	OMovsd:    "movsd", OAddsd: "addsd", OSubsd: "subsd", OMulsd: "mulsd",
	ODivsd: "divsd", OSqrtsd: "sqrtsd", OMinsd: "minsd", OMaxsd: "maxsd",
	OUcomisd: "ucomisd", OCvtsi2sd: "cvtsi2sd", OCvttsd2si: "cvttsd2si",
	OCvtsd2ss: "cvtsd2ss", OCvtss2sd: "cvtss2sd", OMovq: "movq",
	OAndpd: "andpd", OXorpd: "xorpd", ORound: "roundsd", OJmpTable: "jmp",
}

// Mem is a memory operand [Base + Index*Scale + Disp]. Base or Index may be
// NoReg. Scale is 1, 2, 4, or 8.
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8
	Disp  int32
}

func (m Mem) String() string {
	s := "["
	first := true
	if m.Base != NoReg {
		s += m.Base.String()
		first = false
	}
	if m.Index != NoReg {
		if !first {
			s += "+"
		}
		s += m.Index.String()
		if m.Scale > 1 {
			s += fmt.Sprintf("*%d", m.Scale)
		}
		first = false
	}
	if m.Disp != 0 || first {
		if m.Disp >= 0 && !first {
			s += "+"
		}
		s += fmt.Sprintf("%#x", m.Disp)
	}
	return s + "]"
}

// OperandKind distinguishes the shapes of Inst operands.
type OperandKind uint8

// Operand kinds.
const (
	KNone OperandKind = iota
	KReg
	KImm
	KMem
)

// Operand is a register, immediate, or memory operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  Mem
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: KReg, Reg: r} }

// Imm makes an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KImm, Imm: v} }

// M makes a memory operand.
func M(m Mem) Operand { return Operand{Kind: KMem, Mem: m} }

// MB makes a base+disp memory operand.
func MB(base Reg, disp int32) Operand {
	return Operand{Kind: KMem, Mem: Mem{Base: base, Index: NoReg, Disp: disp}}
}

func (o Operand) String() string {
	switch o.Kind {
	case KReg:
		return o.Reg.String()
	case KImm:
		return fmt.Sprintf("%#x", o.Imm)
	case KMem:
		return o.Mem.String()
	}
	return "<none>"
}

// Inst is one machine instruction. Dst is the first (destination) operand in
// Intel syntax; Src the second. Jump/call targets are symbolic label ids
// resolved by Program layout.
type Inst struct {
	Op  Op
	W   uint8 // operation width in bytes: 1, 2, 4, or 8
	CC  CC
	Dst Operand
	Src Operand

	// Target is a label id for OJmp/OJcc/OCall.
	Target int
	// TableTargets holds OJmpTable label ids (resolved like Target).
	TableTargets []int
	// Host is the host-function index for OCallHost. Negative values are
	// engine builtins (see cpu package).
	Host int
	// Uns marks unsigned conversion variants (cvt with unsigned fixup).
	Uns bool

	// Comment annotates listings (Fig 7 style).
	Comment string

	// Addr and Size are filled in by layout.
	Addr uint32
	Size uint8
}

func (in Inst) String() string {
	name := opNames[in.Op]
	switch in.Op {
	case OJcc:
		name = "j" + in.CC.String()
	case OSet:
		name = "set" + in.CC.String()
	case OCmov:
		name = "cmov" + in.CC.String()
	case OMovsd:
		if in.W == 4 {
			name = "movss"
		}
	case OAddsd, OSubsd, OMulsd, ODivsd, OSqrtsd, OMinsd, OMaxsd, OUcomisd:
		if in.W == 4 {
			name = name[:len(name)-1] + "s"
		}
	}
	s := name
	switch in.Op {
	case OJmp, OJcc, OCall:
		s += fmt.Sprintf(" L%d", in.Target)
	case OCallHost:
		s += fmt.Sprintf(" host%d", in.Host)
	default:
		if in.Dst.Kind != KNone {
			s += " " + in.operandStr(in.Dst)
		}
		if in.Src.Kind != KNone {
			s += ", " + in.operandStr(in.Src)
		}
	}
	if in.Comment != "" {
		s += " # " + in.Comment
	}
	return s
}

func (in Inst) operandStr(o Operand) string {
	if o.Kind == KReg && !o.Reg.IsXMM() && in.W == 4 {
		return o.Reg.Name32()
	}
	return o.String()
}

// EncodedSize approximates the x86-64 encoding length of the instruction in
// bytes. The estimate follows the usual encoding structure: opcode bytes +
// REX + ModRM + SIB + displacement + immediate.
func (in *Inst) EncodedSize() uint8 {
	switch in.Op {
	case ONop:
		return 1
	case ORet:
		return 1
	case OCdq:
		return 2
	case OUd2:
		return 2
	case OPush, OPop:
		return 2
	case OJmp:
		return 5 // jmp rel32 (conservative)
	case OJcc:
		return 6 // jcc rel32
	case OCall:
		return 5
	case OCallHost:
		return 7 // mov imm + call-through shim, folded
	case OJmpTable:
		return 7 // jmp [base + idx*8]
	case ORound:
		return 6 // 66 0F 3A 0B /r ib
	}

	var n uint8 = 2 // opcode + modrm
	if in.W == 8 {
		n++ // REX.W
	}
	// Extended registers need REX too; approximate: count if any reg >= R8.
	if needsREX(in.Dst) || needsREX(in.Src) {
		if in.W != 8 {
			n++
		}
	}
	// Two-byte opcodes (0F xx): movzx/movsx, setcc, cmov, bsr/bsf, popcnt, SSE.
	switch in.Op {
	case OMovZX8, OMovZX16, OMovSX8, OMovSX16, OSet, OCmov, OBsr, OBsf, OPopcnt,
		OMovsd, OAddsd, OSubsd, OMulsd, ODivsd, OSqrtsd, OMinsd, OMaxsd,
		OUcomisd, OCvtsi2sd, OCvttsd2si, OCvtsd2ss, OCvtss2sd, OMovq, OAndpd, OXorpd:
		n++
	}
	// SSE prefix byte (F2/F3/66).
	switch in.Op {
	case OMovsd, OAddsd, OSubsd, OMulsd, ODivsd, OSqrtsd, OMinsd, OMaxsd,
		OCvtsi2sd, OCvttsd2si, OCvtsd2ss, OCvtss2sd, OMovq, OUcomisd, OAndpd, OXorpd, OPopcnt:
		n++
	}
	n += memExtra(in.Dst)
	n += memExtra(in.Src)
	if in.Src.Kind == KImm || in.Op == OMovImm {
		v := in.Src.Imm
		if in.Op == OMovImm {
			v = in.Src.Imm
		}
		switch {
		case v >= -128 && v < 128:
			n++
		case in.W == 8 && (v > 0x7fffffff || v < -0x80000000):
			n += 8
		default:
			n += 4
		}
	}
	return n
}

func needsREX(o Operand) bool {
	switch o.Kind {
	case KReg:
		return (o.Reg >= R8 && o.Reg <= R15) || (o.Reg >= XMM8 && o.Reg <= XMM15)
	case KMem:
		return (o.Mem.Base >= R8 && o.Mem.Base <= R15) ||
			(o.Mem.Index >= R8 && o.Mem.Index <= R15)
	}
	return false
}

func memExtra(o Operand) uint8 {
	if o.Kind != KMem {
		return 0
	}
	var n uint8
	if o.Mem.Index != NoReg || o.Mem.Base == RSP || o.Mem.Base == R12 {
		n++ // SIB byte
	}
	switch {
	case o.Mem.Disp == 0 && o.Mem.Base != RBP && o.Mem.Base != R13:
	case o.Mem.Disp >= -128 && o.Mem.Disp < 128:
		n++
	default:
		n += 4
	}
	return n
}

// ReadsMem reports whether the instruction reads a memory operand.
func (in *Inst) ReadsMem() bool {
	if in.Op == OLea {
		return false
	}
	if in.Op == OPop || in.Op == ORet {
		return true // stack read
	}
	if in.Op == OJmpTable {
		return true // jump-table entry load
	}
	if in.Src.Kind == KMem {
		return true
	}
	// Read-modify-write destination memory (add [m], r etc.).
	if in.Dst.Kind == KMem {
		switch in.Op {
		case OAdd, OSub, OAnd, OOr, OXor, OImul, ONeg, ONot, OShl, OSar, OShr, OCmp, OTest:
			return true
		}
	}
	if (in.Op == OCallR || in.Op == OIdiv || in.Op == ODiv || in.Op == OUcomisd) && in.Dst.Kind == KMem {
		return true
	}
	return false
}

// WritesMem reports whether the instruction writes a memory operand.
func (in *Inst) WritesMem() bool {
	if in.Op == OPush || in.Op == OCall || in.Op == OCallR {
		return true // stack write
	}
	if in.Dst.Kind != KMem {
		return false
	}
	switch in.Op {
	case OCmp, OTest, OUcomisd, OIdiv, ODiv:
		return false
	}
	return true
}

// IsBranch reports whether the instruction redirects control flow.
func (in *Inst) IsBranch() bool {
	switch in.Op {
	case OJmp, OJcc, OCall, OCallR, ORet, OJmpTable:
		return true
	}
	return false
}
