package x86

import (
	"fmt"
	"strings"
)

// FuncInfo describes one compiled function inside a Program.
type FuncInfo struct {
	Name  string
	Label int // entry label id
	// Start/End delimit the function's instructions (indices into Code).
	Start, End int
	SigID      int // signature id for indirect-call checks
}

// Program is a laid-out machine program: a flat instruction stream, label
// definitions, and per-function metadata.
type Program struct {
	Code   []Inst
	Funcs  []FuncInfo
	labels map[int]int // label id -> instruction index

	// FuncByLabel maps entry label ids to function numbers.
	FuncByLabel map[int]int

	// CodeBytes is the total encoded size after layout.
	CodeBytes uint32

	// HostSigs records, for each host-function index, the number of i64
	// argument slots it takes (used by the simulator's calling convention).
	HostNames []string

	// Predecoded caches a consumer-specific predecoded view of Code: the
	// cpu package stores its micro-op translation here so that every
	// Machine instantiated from one laid-out Program (the spec harness
	// memoizes builds) shares a single decode. The field is owned and
	// synchronized entirely by the consumer; Program itself never reads it.
	Predecoded any
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{labels: map[int]int{}, FuncByLabel: map[int]int{}}
}

// Reset clears the program for reuse, keeping the instruction slice and
// label-table capacity. Used by the compiler's pooled per-function fragment
// programs.
func (p *Program) Reset() {
	p.Code = p.Code[:0]
	p.Funcs = p.Funcs[:0]
	clear(p.labels)
	clear(p.FuncByLabel)
	p.CodeBytes = 0
	p.HostNames = nil
	p.Predecoded = nil
}

// Append adds an instruction and returns its index.
func (p *Program) Append(in Inst) int {
	p.Code = append(p.Code, in)
	return len(p.Code) - 1
}

// Bind associates label id with the next instruction index.
func (p *Program) Bind(label int) {
	p.labels[label] = len(p.Code)
}

// BindAt associates label id with an explicit instruction index. Decoders
// rebuilding a laid-out program use it to restore function entry labels.
func (p *Program) BindAt(label, idx int) {
	p.labels[label] = idx
}

// LabelTarget resolves a label to an instruction index.
func (p *Program) LabelTarget(label int) (int, bool) {
	idx, ok := p.labels[label]
	return idx, ok
}

// Layout assigns code addresses and sizes. Call after all code is appended.
func (p *Program) Layout() {
	addr := uint32(0x1000) // text base
	for i := range p.Code {
		in := &p.Code[i]
		in.Size = in.EncodedSize()
		in.Addr = addr
		addr += uint32(in.Size)
	}
	p.CodeBytes = addr - 0x1000
}

// ResolveTargets converts label-id targets into instruction indices, storing
// them back into Target. It must run after all labels are bound.
func (p *Program) ResolveTargets() error {
	for i := range p.Code {
		in := &p.Code[i]
		switch in.Op {
		case OJmp, OJcc, OCall:
			idx, ok := p.labels[in.Target]
			if !ok {
				return fmt.Errorf("x86: undefined label L%d at %d", in.Target, i)
			}
			in.Target = idx
		case OJmpTable:
			for k, t := range in.TableTargets {
				idx, ok := p.labels[t]
				if !ok {
					return fmt.Errorf("x86: undefined jump-table label L%d at %d", t, i)
				}
				in.TableTargets[k] = idx
			}
		}
	}
	return nil
}

// FuncEntry returns the instruction index of the function's entry.
func (p *Program) FuncEntry(fn int) int {
	idx, _ := p.labels[p.Funcs[fn].Label]
	return idx
}

// Disasm renders the instructions of function fn as an assembly listing with
// local labels, in the style of the paper's Figure 7.
func (p *Program) Disasm(fn int) string {
	f := p.Funcs[fn]
	// Collect branch targets inside the function for label printing.
	targets := map[int]int{}
	next := 1
	for i := f.Start; i < f.End; i++ {
		in := &p.Code[i]
		if in.Op == OJmp || in.Op == OJcc {
			if in.Target >= f.Start && in.Target <= f.End {
				if _, ok := targets[in.Target]; !ok {
					targets[in.Target] = next
					next++
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:  # %d instructions, %d bytes\n", f.Name, f.End-f.Start, p.funcBytes(fn))
	for i := f.Start; i < f.End; i++ {
		in := p.Code[i]
		if l, ok := targets[i]; ok {
			fmt.Fprintf(&sb, "L%d:\n", l)
		}
		s := in.String()
		if in.Op == OJmp || in.Op == OJcc {
			if l, ok := targets[in.Target]; ok {
				s = strings.Replace(s, fmt.Sprintf("L%d", in.Target), fmt.Sprintf("L%d", l), 1)
			}
		}
		fmt.Fprintf(&sb, "    %s\n", s)
	}
	return sb.String()
}

func (p *Program) funcBytes(fn int) uint32 {
	f := p.Funcs[fn]
	var n uint32
	for i := f.Start; i < f.End; i++ {
		n += uint32(p.Code[i].Size)
	}
	return n
}

// FuncInstCount returns the instruction count of function fn (including nops).
func (p *Program) FuncInstCount(fn int) int {
	f := p.Funcs[fn]
	return f.End - f.Start
}

// FindFunc returns the function number with the given name.
func (p *Program) FindFunc(name string) (int, bool) {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i, true
		}
	}
	return 0, false
}
