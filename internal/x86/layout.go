package x86

// Simulated process address-space layout. Linear (wasm) memory occupies low
// addresses so that wasm pointers are process addresses; engine-managed
// structures (globals area, indirect-call table, stack limit word, constant
// pool) and the native machine stack live in a high region that guard-page
// checking keeps out of reach of linear memory.
const (
	// LinearBase is the base of wasm linear memory.
	LinearBase = 0x0

	// LinearMax caps linear memory (1 GiB, mirroring the paper's
	// TOTAL_MEMORY=1073741824 Emscripten flag).
	LinearMax = 0x4000_0000

	// GlobalsBase is the engine's wasm-globals area (8 bytes per global).
	GlobalsBase = 0xE000_0000

	// TableBase is the indirect-call table: 16 bytes per entry,
	// [signature id: 8][code entry: 8].
	TableBase = 0xE010_0000

	// TableEntrySize is the byte size of one indirect-call table entry.
	TableEntrySize = 16

	// StackLimitAddr holds the machine stack limit used by the per-function
	// stack-overflow checks the paper describes in §6.2.2.
	StackLimitAddr = 0xE020_0000

	// MemPagesAddr holds the current linear-memory size in pages.
	MemPagesAddr = 0xE020_0008

	// RodataBase is the constant pool (f64 literals, jump tables).
	RodataBase = 0xE030_0000

	// StackTop is the initial RSP; the machine stack grows down.
	StackTop = 0xF000_0000

	// StackSize is the machine stack reservation (8 MiB).
	StackSize = 8 << 20

	// TextBase is where code layout starts (i-cache simulation only).
	TextBase = 0x1000
)
