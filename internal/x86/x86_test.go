package x86

import "testing"

func TestCCNegate(t *testing.T) {
	pairs := map[CC]CC{
		CCE: CCNE, CCL: CCGE, CCLE: CCG, CCB: CCAE, CCBE: CCA, CCS: CCNS, CCP: CCNP,
	}
	for a, b := range pairs {
		if a.Negate() != b || b.Negate() != a {
			t.Errorf("negate %v <-> %v broken", a, b)
		}
	}
}

func TestEncodedSizesReasonable(t *testing.T) {
	cases := []struct {
		in       Inst
		min, max uint8
	}{
		{Inst{Op: ONop}, 1, 1},
		{Inst{Op: ORet}, 1, 1},
		{Inst{Op: OMov, W: 8, Dst: R(RAX), Src: R(RCX)}, 3, 3},
		{Inst{Op: OMov, W: 4, Dst: R(RAX), Src: R(RCX)}, 2, 2},
		{Inst{Op: OJcc, CC: CCE}, 6, 6},
		{Inst{Op: OAdd, W: 4, Dst: R(RAX), Src: Imm(1)}, 3, 3},
		{Inst{Op: OAdd, W: 4, Dst: R(RAX), Src: Imm(100000)}, 6, 6},
		{Inst{Op: OMov, W: 8, Dst: R(RAX), Src: MB(RBP, -8)}, 4, 4},
	}
	for _, c := range cases {
		got := c.in.EncodedSize()
		if got < c.min || got > c.max {
			t.Errorf("%s: size %d, want [%d,%d]", c.in.String(), got, c.min, c.max)
		}
	}
}

func TestMemStringAndClassify(t *testing.T) {
	in := Inst{Op: OAdd, W: 4, Dst: M(Mem{Base: RDI, Index: RCX, Scale: 4, Disp: 0x1130}), Src: R(RBX)}
	if !in.ReadsMem() || !in.WritesMem() {
		t.Error("add [mem], reg is read-modify-write")
	}
	cmp := Inst{Op: OCmp, W: 4, Dst: M(Mem{Base: RDI, Index: NoReg}), Src: Imm(1)}
	if cmp.WritesMem() {
		t.Error("cmp must not write memory")
	}
	if s := in.Dst.String(); s == "" {
		t.Error("empty operand string")
	}
	jmp := Inst{Op: OJmp}
	if !jmp.IsBranch() {
		t.Error("jmp is a branch")
	}
}

func TestProgramLabels(t *testing.T) {
	p := NewProgram()
	p.Append(Inst{Op: OJmp, Target: 7})
	p.Bind(7)
	p.Append(Inst{Op: ORet})
	if err := p.ResolveTargets(); err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 1 {
		t.Errorf("jmp resolved to %d, want 1", p.Code[0].Target)
	}
	p.Layout()
	if p.Code[1].Addr <= p.Code[0].Addr {
		t.Error("layout addresses must increase")
	}
}
