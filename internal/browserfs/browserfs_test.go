package browserfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCreateReadWrite(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/f.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b/c/f.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
	names, err := fs.ReadDir("/a/b/c")
	if err != nil || len(names) != 1 || names[0] != "f.txt" {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if _, err := fs.Open("/a/b/missing"); err != ErrNotExist {
		t.Errorf("want ErrNotExist, got %v", err)
	}
	if err := fs.Unlink("/a/b/c/f.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/a/b/c/f.txt"); err != ErrNotExist {
		t.Errorf("want ErrNotExist after unlink, got %v", err)
	}
}

func TestWriteFileAll(t *testing.T) {
	fs := New()
	if err := fs.WriteFileAll("/spec/inputs/deep/in.dat", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/spec/inputs/deep/in.dat")
	if err != nil || string(got) != "x" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	// Root-level files need no directories.
	if err := fs.WriteFileAll("/top.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Existing directories are fine; contents are replaced.
	if err := fs.WriteFileAll("/spec/inputs/deep/in.dat", []byte("zz")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/spec/inputs/deep/in.dat"); string(got) != "zz" {
		t.Fatalf("overwrite: %q", got)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/y")
	if err != nil || string(got) != "data" {
		t.Fatalf("after rename: %q %v", got, err)
	}
}

func TestAppendPolicies(t *testing.T) {
	for _, policy := range []GrowthPolicy{GrowExact, GrowChunked} {
		fs := NewWithPolicy(policy)
		ino, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		var off int64
		var want bytes.Buffer
		for i := 0; i < 500; i++ {
			chunk := []byte{byte(i), byte(i >> 8), byte(i * 3)}
			ino.WriteAt(chunk, off, policy)
			off += int64(len(chunk))
			want.Write(chunk)
		}
		got := make([]byte, ino.Size())
		ino.ReadAt(got, 0)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("policy %d: content mismatch", policy)
		}
	}
}

func TestChunkedCopiesFewerBytes(t *testing.T) {
	run := func(p GrowthPolicy) uint64 {
		fs := NewWithPolicy(p)
		ino, _ := fs.Create("/f")
		var off int64
		for i := 0; i < 4000; i++ {
			ino.WriteAt(make([]byte, 16), off, p)
			off += 16
		}
		return ino.GrowBytes
	}
	exact := run(GrowExact)
	chunked := run(GrowChunked)
	if exact < 100*chunked {
		t.Errorf("exact policy copied %d bytes, chunked %d; expected >=100x gap (the paper's 25s->1.5s fix)", exact, chunked)
	}
}

func TestSparseWriteQuick(t *testing.T) {
	f := func(off uint16, val byte) bool {
		fs := New()
		ino, _ := fs.Create("/q")
		ino.WriteAt([]byte{val}, int64(off), fs.Policy)
		b := make([]byte, 1)
		ino.ReadAt(b, int64(off))
		return b[0] == val && ino.Size() == int(off)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
