// Package browserfs is the reproduction's BrowserFS: the in-memory
// filesystem shared by Browsix-Wasm processes. It implements the two append
// strategies the paper discusses in §2 — the original
// reallocate-on-every-append behaviour, and the fixed ≥4 KiB growth policy
// whose introduction cut 464.h264ref's in-kernel time from 25 s to under
// 1.5 s. The growth policy is selectable so the ablation benchmark can
// measure both.
package browserfs

import (
	"errors"
	"path"
	"sort"
	"strings"
	"sync"
)

// GrowthPolicy selects how file buffers grow on append.
type GrowthPolicy int

// Growth policies.
const (
	// GrowExact reallocates a buffer of exactly the needed size on every
	// append (the original BrowserFS behaviour the paper fixed).
	GrowExact GrowthPolicy = iota
	// GrowChunked grows by at least 4 KiB (doubling up to a cap), the
	// paper's optimization.
	GrowChunked
)

// Common errors mirror the Unix error names the kernel translates to errnos.
var (
	ErrNotExist = errors.New("no such file or directory")
	ErrExist    = errors.New("file exists")
	ErrIsDir    = errors.New("is a directory")
	ErrNotDir   = errors.New("not a directory")
	ErrNotEmpty = errors.New("directory not empty")
)

// FileMode distinguishes files and directories.
type FileMode uint32

// Mode bits.
const (
	ModeDir FileMode = 1 << 31
)

// IsDir reports whether the mode describes a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// Inode is one filesystem object.
type Inode struct {
	Mode FileMode
	data []byte
	size int
	// children maps names to inodes for directories.
	children map[string]*Inode
	// CopyStats tracks bytes copied by append growth (the ablation metric).
	GrowCopies uint64
	GrowBytes  uint64
}

// FS is an in-memory filesystem.
type FS struct {
	mu     sync.Mutex
	root   *Inode
	Policy GrowthPolicy
}

// New returns an empty filesystem with the paper's chunked growth policy.
func New() *FS {
	return &FS{
		root:   &Inode{Mode: ModeDir, children: map[string]*Inode{}},
		Policy: GrowChunked,
	}
}

// NewWithPolicy returns a filesystem using the given growth policy.
func NewWithPolicy(p GrowthPolicy) *FS {
	fs := New()
	fs.Policy = p
	return fs
}

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the inode for p.
func (fs *FS) lookup(p string) (*Inode, error) {
	cur := fs.root
	for _, part := range splitPath(p) {
		if !cur.Mode.IsDir() {
			return nil, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// lookupParent walks to the parent directory of p, returning it and the leaf
// name.
func (fs *FS) lookupParent(p string) (*Inode, string, error) {
	parts := splitPath(p)
	if len(parts) == 0 {
		return nil, "", ErrExist
	}
	cur := fs.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok {
			return nil, "", ErrNotExist
		}
		if !next.Mode.IsDir() {
			return nil, "", ErrNotDir
		}
		cur = next
	}
	return cur, parts[len(parts)-1], nil
}

// Create makes (or truncates) a file and returns its inode.
func (fs *FS) Create(p string) (*Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupParent(p)
	if err != nil {
		return nil, err
	}
	if ino, ok := dir.children[name]; ok {
		if ino.Mode.IsDir() {
			return nil, ErrIsDir
		}
		ino.size = 0
		return ino, nil
	}
	ino := &Inode{}
	dir.children[name] = ino
	return ino, nil
}

// Open returns the inode for p.
func (fs *FS) Open(p string) (*Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lookup(p)
}

// OpenOrCreate opens p, creating it when absent.
func (fs *FS) OpenOrCreate(p string) (*Inode, error) {
	fs.mu.Lock()
	ino, err := fs.lookup(p)
	fs.mu.Unlock()
	if err == nil {
		return ino, nil
	}
	return fs.Create(p)
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	if _, ok := dir.children[name]; ok {
		return ErrExist
	}
	dir.children[name] = &Inode{Mode: ModeDir, children: map[string]*Inode{}}
	return nil
}

// MkdirAll creates p and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	parts := splitPath(p)
	cur := "/"
	for _, part := range parts {
		cur = path.Join(cur, part)
		if err := fs.Mkdir(cur); err != nil && err != ErrExist {
			return err
		}
	}
	return nil
}

// Unlink removes a file.
func (fs *FS) Unlink(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	ino, ok := dir.children[name]
	if !ok {
		return ErrNotExist
	}
	if ino.Mode.IsDir() {
		if len(ino.children) > 0 {
			return ErrNotEmpty
		}
	}
	delete(dir.children, name)
	return nil
}

// Rename moves a file or directory.
func (fs *FS) Rename(from, to string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fdir, fname, err := fs.lookupParent(from)
	if err != nil {
		return err
	}
	ino, ok := fdir.children[fname]
	if !ok {
		return ErrNotExist
	}
	tdir, tname, err := fs.lookupParent(to)
	if err != nil {
		return err
	}
	tdir.children[tname] = ino
	if !(fdir == tdir && fname == tname) {
		delete(fdir.children, fname)
	}
	return nil
}

// ReadDir lists directory entries in sorted order.
func (fs *FS) ReadDir(p string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !ino.Mode.IsDir() {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(ino.children))
	for n := range ino.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile replaces the contents of p.
func (fs *FS) WriteFile(p string, data []byte) error {
	ino, err := fs.OpenOrCreate(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino.data = append([]byte(nil), data...)
	ino.size = len(data)
	return nil
}

// WriteFileAll replaces the contents of p, creating any missing parent
// directories first. This is the one place run paths materialize filesystem
// images from host-side maps (workload inputs, test fixtures).
func (fs *FS) WriteFileAll(p string, data []byte) error {
	if dir := path.Dir(path.Clean("/" + p)); dir != "/" {
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	return fs.WriteFile(p, data)
}

// ReadFile returns a copy of p's contents.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	ino, err := fs.Open(p)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if ino.Mode.IsDir() {
		return nil, ErrIsDir
	}
	return append([]byte(nil), ino.data[:ino.size]...), nil
}

// Size returns the file size.
func (ino *Inode) Size() int { return ino.size }

// ReadAt copies file bytes at off into buf, returning the count.
func (ino *Inode) ReadAt(buf []byte, off int64) int {
	if off >= int64(ino.size) {
		return 0
	}
	return copy(buf, ino.data[off:ino.size])
}

// WriteAt writes buf at off, growing the file as needed per the policy, and
// returns the bytes copied due to buffer growth (the §2 ablation metric).
func (ino *Inode) WriteAt(buf []byte, off int64, policy GrowthPolicy) int {
	end := int(off) + len(buf)
	if end > len(ino.data) {
		var ncap int
		switch policy {
		case GrowExact:
			// Original BrowserFS: allocate exactly, copy everything.
			ncap = end
		default:
			ncap = len(ino.data) * 2
			if ncap < end {
				ncap = end
			}
			if ncap-len(ino.data) < 4096 {
				ncap = len(ino.data) + 4096
			}
		}
		nd := make([]byte, ncap)
		copy(nd, ino.data[:ino.size])
		ino.GrowCopies++
		ino.GrowBytes += uint64(ino.size)
		ino.data = nd
	}
	copy(ino.data[off:], buf)
	if end > ino.size {
		ino.size = end
	}
	return len(buf)
}

// Truncate sets the file size.
func (ino *Inode) Truncate(n int64) {
	if int(n) > len(ino.data) {
		nd := make([]byte, n)
		copy(nd, ino.data[:ino.size])
		ino.data = nd
	}
	ino.size = int(n)
}
