package leb128

import (
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 624485, 1<<32 - 1, 1<<64 - 1}
	for _, v := range cases {
		b := AppendUint(nil, v)
		got, n, err := Uint(b, 64)
		if err != nil {
			t.Fatalf("Uint(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Errorf("round trip %d: got %d (n=%d, len=%d)", v, got, n, len(b))
		}
		if n != UintSize(v) {
			t.Errorf("UintSize(%d) = %d, want %d", v, UintSize(v), n)
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, 64, -64, -65, 127, 128, -128, 1<<31 - 1, -1 << 31, 1<<62 - 1, -1 << 62}
	for _, v := range cases {
		b := AppendInt(nil, v)
		got, n, err := Int(b, 64)
		if err != nil {
			t.Fatalf("Int(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Errorf("round trip %d: got %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUint(nil, v)
		got, n, err := Uint(b, 64)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		b := AppendInt(nil, v)
		got, n, err := Int(b, 64)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32RangeQuick(t *testing.T) {
	f := func(v int32) bool {
		b := AppendInt(nil, int64(v))
		got, _, err := Int(b, 32)
		return err == nil && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintTruncated(t *testing.T) {
	b := AppendUint(nil, 624485)
	if _, _, err := Uint(b[:1], 32); err == nil {
		t.Error("expected error for truncated input")
	}
}

func TestUintOverflow(t *testing.T) {
	// 2^32 does not fit in 32 bits.
	b := AppendUint(nil, 1<<32)
	if _, _, err := Uint(b, 32); err == nil {
		t.Error("expected overflow decoding 2^32 with 32-bit width")
	}
	// Max u32 does fit.
	b = AppendUint(nil, 1<<32-1)
	if v, _, err := Uint(b, 32); err != nil || v != 1<<32-1 {
		t.Errorf("max u32: got %d, %v", v, err)
	}
}

func TestIntOverflow(t *testing.T) {
	b := AppendInt(nil, 1<<31) // does not fit in i32
	if _, _, err := Int(b, 32); err == nil {
		t.Error("expected overflow decoding 2^31 with 32-bit width")
	}
}

func TestEmptyInput(t *testing.T) {
	if _, _, err := Uint(nil, 32); err == nil {
		t.Error("expected error for empty input")
	}
	if _, _, err := Int(nil, 32); err == nil {
		t.Error("expected error for empty input")
	}
}
