// Package leb128 implements the variable-length integer encoding used by the
// WebAssembly binary format (LEB128, both unsigned and signed flavors).
package leb128

import (
	"errors"
	"io"
)

// ErrOverflow is returned when a varint does not terminate within the number
// of bytes permitted for its declared bit width.
var ErrOverflow = errors.New("leb128: value overflows integer width")

// AppendUint appends the unsigned LEB128 encoding of v to dst.
func AppendUint(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
		} else {
			return append(dst, b)
		}
	}
}

// AppendInt appends the signed LEB128 encoding of v to dst.
func AppendInt(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// Uint decodes an unsigned LEB128 value of at most bits bits from p.
// It returns the value and the number of bytes consumed.
func Uint(p []byte, bits uint) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(p); i++ {
		b := p[i]
		if shift >= bits {
			return 0, 0, ErrOverflow
		}
		if shift+7 > bits {
			// The final byte may only use the low bits-shift bits.
			if b>>(bits-shift) != 0 && b&0x80 == 0 {
				return 0, 0, ErrOverflow
			}
			if b&0x80 != 0 {
				return 0, 0, ErrOverflow
			}
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Int decodes a signed LEB128 value of at most bits bits from p.
// It returns the value and the number of bytes consumed.
func Int(p []byte, bits uint) (int64, int, error) {
	var v int64
	var shift uint
	for i := 0; i < len(p); i++ {
		b := p[i]
		if shift >= bits+7 {
			return 0, 0, ErrOverflow
		}
		v |= int64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift // sign extend
			}
			// Range check against the declared width.
			if bits < 64 {
				min := int64(-1) << (bits - 1)
				max := int64(1)<<(bits-1) - 1
				if v < min || v > max {
					return 0, 0, ErrOverflow
				}
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// UintSize reports the number of bytes AppendUint would emit for v.
func UintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
