package config

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestStringResolution pins the knob precedence: flag > env > default.
func TestStringResolution(t *testing.T) {
	const env = "REPRO_TEST_KNOB"
	t.Setenv(env, "from-env")
	if got := String("from-flag", env, "def"); got != "from-flag" {
		t.Errorf("flag must win: got %q", got)
	}
	if got := String("", env, "def"); got != "from-env" {
		t.Errorf("env must beat default: got %q", got)
	}
	t.Setenv(env, "")
	if got := String("", env, "def"); got != "def" {
		t.Errorf("default must apply last: got %q", got)
	}
}

// TestDurationJSON pins both accepted wire spellings and the canonical
// output form.
func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(300 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"300ms"` {
		t.Errorf("marshal = %s, want \"300ms\"", b)
	}
	for _, in := range []string{`"300ms"`, `300000000`} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", in, err)
		}
		if d.Std() != 300*time.Millisecond {
			t.Errorf("unmarshal %s = %v, want 300ms", in, d.Std())
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"yesterday"`), &d); err == nil {
		t.Error("malformed duration must not unmarshal")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("non-string non-number duration must not unmarshal")
	}
}

// TestLimitsFromEnv pins the watchdog knob parsing, including the
// warn-and-disable contract for malformed values.
func TestLimitsFromEnv(t *testing.T) {
	t.Setenv(EnvJobTimeout, "250ms")
	t.Setenv(EnvJobMaxInsts, "1000000")
	l, errs := LimitsFromEnv()
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if l.Timeout.Std() != 250*time.Millisecond || l.MaxInsts != 1000000 {
		t.Errorf("limits = %+v", l)
	}
	if l.IsZero() {
		t.Error("armed limits must not be zero")
	}

	t.Setenv(EnvJobTimeout, "soon")
	t.Setenv(EnvJobMaxInsts, "")
	l, errs = LimitsFromEnv()
	if len(errs) != 1 {
		t.Fatalf("want one error for the malformed timeout, got %v", errs)
	}
	if !l.IsZero() {
		t.Errorf("malformed knob must leave its limit disabled, got %+v", l)
	}
}

// TestParsePositiveKnobs pins the shared contract of the integer knobs:
// empty selects the default (n == 0, no error), positives are honored,
// everything else errors.
func TestParsePositiveKnobs(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"8", 8, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"many", 0, true},
	}
	for _, tc := range cases {
		nb, err := ParseCacheMaxBytes(tc.in)
		if (err != nil) != tc.wantErr || nb != tc.want {
			t.Errorf("ParseCacheMaxBytes(%q) = %d, %v; want %d, err=%v", tc.in, nb, err, tc.want, tc.wantErr)
		}
		nt, err := ParseSchedTokens(tc.in)
		if (err != nil) != tc.wantErr || int64(nt) != tc.want {
			t.Errorf("ParseSchedTokens(%q) = %d, %v; want %d, err=%v", tc.in, nt, err, tc.want, tc.wantErr)
		}
	}
}

// TestParseRemoteKnobs pins the remote-tier tuning contract: empty selects
// the default (signaled as zero), positive values are honored, and
// non-positive or malformed values are errors naming the knob — the env
// reader warns once and falls back to the default rather than disabling
// the tier.
func TestParseRemoteKnobs(t *testing.T) {
	if d, err := ParseRemoteTimeout(""); err != nil || d != 0 {
		t.Errorf("empty timeout: %v, %v", d, err)
	}
	if d, err := ParseRemoteTimeout("750ms"); err != nil || d != 750*time.Millisecond {
		t.Errorf("ParseRemoteTimeout(750ms) = %v, %v", d, err)
	}
	for _, bad := range []string{"0", "-1s", "fast", "10"} {
		if _, err := ParseRemoteTimeout(bad); err == nil {
			t.Errorf("ParseRemoteTimeout(%q) must fail", bad)
		} else if !strings.Contains(err.Error(), EnvRemoteTimeout) {
			t.Errorf("error must name the knob: %v", err)
		}
	}
	if n, err := ParseBreakerFails(""); err != nil || n != 0 {
		t.Errorf("empty fails: %v, %v", n, err)
	}
	if n, err := ParseBreakerFails("5"); err != nil || n != 5 {
		t.Errorf("ParseBreakerFails(5) = %v, %v", n, err)
	}
	for _, bad := range []string{"0", "-2", "lots"} {
		if _, err := ParseBreakerFails(bad); err == nil {
			t.Errorf("ParseBreakerFails(%q) must fail", bad)
		}
	}
	if d, err := ParseBreakerCooldown(""); err != nil || d != 0 {
		t.Errorf("empty cooldown: %v, %v", d, err)
	}
	if d, err := ParseBreakerCooldown("30s"); err != nil || d != 30*time.Second {
		t.Errorf("ParseBreakerCooldown(30s) = %v, %v", d, err)
	}
	for _, bad := range []string{"0", "-5s", "soon"} {
		if _, err := ParseBreakerCooldown(bad); err == nil {
			t.Errorf("ParseBreakerCooldown(%q) must fail", bad)
		}
	}
}

// TestTenantWeights pins the fairness-weight grammar and its round-trip.
func TestTenantWeights(t *testing.T) {
	w, err := ParseTenantWeights("alice=4, bob=1")
	if err != nil {
		t.Fatal(err)
	}
	if w["alice"] != 4 || w["bob"] != 1 || len(w) != 2 {
		t.Errorf("weights = %v", w)
	}
	if got := FormatTenantWeights(w); got != "alice=4,bob=1" {
		t.Errorf("round-trip = %q", got)
	}
	for _, bad := range []string{"alice", "alice=0", "alice=-1", "=4", "alice=fast"} {
		if _, err := ParseTenantWeights(bad); err == nil {
			t.Errorf("ParseTenantWeights(%q) must fail", bad)
		}
	}
	if w, err := ParseTenantWeights(""); err != nil || w != nil {
		t.Errorf("empty spec must be nil map, got %v, %v", w, err)
	}
}

// TestParseFuzzKnobs pins the fuzzer knob contract: empty selects the
// default (signaled as zero), positive values are honored, and zero,
// negative, or malformed values are errors naming the knob.
func TestParseFuzzKnobs(t *testing.T) {
	cases := []struct {
		in      string
		want    uint64
		wantErr bool
	}{
		{"", 0, false},
		{"300", 300, false},
		{"1", 1, false},
		{"0", 0, true},
		{"-2", 0, true},
		{"lots", 0, true},
	}
	for _, tc := range cases {
		n, err := ParseFuzzSeeds(tc.in)
		if (err != nil) != tc.wantErr || uint64(n) != tc.want {
			t.Errorf("ParseFuzzSeeds(%q) = %d, %v; want %d, err=%v", tc.in, n, err, tc.want, tc.wantErr)
		}
		s, err := ParseFuzzSeed(tc.in)
		if (err != nil) != tc.wantErr || s != tc.want {
			t.Errorf("ParseFuzzSeed(%q) = %d, %v; want %d, err=%v", tc.in, s, err, tc.want, tc.wantErr)
		}
		if tc.wantErr {
			if err == nil || !strings.Contains(err.Error(), EnvFuzzSeed) {
				t.Errorf("ParseFuzzSeed(%q) error %v does not name the knob", tc.in, err)
			}
		}
	}
}
