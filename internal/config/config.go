// Package config is the single registry for the reproduction's runtime
// knobs. Every `$REPRO_*` environment variable is named here exactly once,
// every parser for a knob's value lives here, and every layer that accepts
// the same knob from more than one source (a CLI flag, the environment, an
// HTTP request field) resolves it through the same rule:
//
//	flag > environment > default
//
// The packages that consume a knob (sched's token budget, pipeline's
// artifact store and watchdog, codegen's fidelity tier, the repro-serve
// daemon) keep their own semantics — config only owns names, parsing, and
// precedence, so a knob spelled on the command line, exported in CI, or
// carried in a pipeline.Request can never drift into three dialects.
//
// config is a leaf package (standard library only) so that every layer,
// including internal/sched underneath the compiler, can import it without
// cycles.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Environment knob names. These are the canonical spellings; consumer
// packages re-export aliases where their public API already named them.
const (
	// EnvFidelity selects the simulation tier (exact, functional, sampled);
	// the EnvSample* knobs override the sampled tier's window schedule in
	// retired instructions.
	EnvFidelity     = "REPRO_FIDELITY"
	EnvSamplePeriod = "REPRO_SAMPLE_PERIOD"
	EnvSampleDetail = "REPRO_SAMPLE_DETAIL"
	EnvSampleWarmup = "REPRO_SAMPLE_WARMUP"

	// EnvCacheDir locates the disk artifact store ("off", "0", "none"
	// disable it); EnvCacheMaxBytes bounds its size; EnvCacheSummary names
	// a file per-process cache totals are appended to for CI.
	EnvCacheDir      = "REPRO_CACHE_DIR"
	EnvCacheMaxBytes = "REPRO_CACHE_MAX_BYTES"
	EnvCacheSummary  = "REPRO_CACHE_SUMMARY"

	// EnvSchedTokens overrides the process-wide scheduler budget's
	// capacity (default GOMAXPROCS).
	EnvSchedTokens = "REPRO_SCHED_TOKENS"

	// EnvJobTimeout / EnvJobMaxInsts arm the per-job watchdog: a wall-clock
	// deadline (a time.Duration string) and a retired-instruction ceiling.
	EnvJobTimeout  = "REPRO_JOB_TIMEOUT"
	EnvJobMaxInsts = "REPRO_JOB_MAX_INSTS"

	// EnvFaults arms deterministic fault-injection rules (internal/fault's
	// site[@match]=kind[:count][:arg] grammar).
	EnvFaults = "REPRO_FAULTS"

	// EnvServeAddr / EnvServeTenants / EnvServeQueue configure the
	// repro-serve daemon: listen address, per-tenant fairness weights
	// ("alice=4,bob=1"), and the admission queue depth.
	EnvServeAddr    = "REPRO_SERVE_ADDR"
	EnvServeTenants = "REPRO_SERVE_TENANTS"
	EnvServeQueue   = "REPRO_SERVE_QUEUE"

	// EnvRemoteCache points the artifact store's remote tier at a shared
	// cache (a repro-serve /artifact endpoint); empty or "off" disables it.
	// EnvRemoteTimeout bounds each remote call; the breaker knobs tune the
	// circuit breaker that contains a flaky or dead remote (consecutive
	// failed calls before the breaker opens, and how long it stays open
	// before admitting a half-open probe).
	EnvRemoteCache           = "REPRO_REMOTE_CACHE"
	EnvRemoteTimeout         = "REPRO_REMOTE_TIMEOUT"
	EnvRemoteBreakerFails    = "REPRO_REMOTE_BREAKER_FAILS"
	EnvRemoteBreakerCooldown = "REPRO_REMOTE_BREAKER_COOLDOWN"

	// EnvRegenWeights gates the skipped-by-default test that re-measures
	// the workloads.expectedInsts dispatch table on the functional tier.
	EnvRegenWeights = "REPRO_REGEN_WEIGHTS"

	// EnvFuzzSeeds / EnvFuzzSeed configure the differential wasm fuzzer
	// (cmd/wasmfuzz and the CI fuzz-smoke job): how many seeds one run
	// covers and the first seed of the range.
	EnvFuzzSeeds = "REPRO_FUZZ_SEEDS"
	EnvFuzzSeed  = "REPRO_FUZZ_SEED"
)

// Remote-tier defaults. The timeout is deliberately short: a remote hit
// saves a compile (tens of ms to seconds), so waiting longer than ~2s for
// the network is already a loss, and a hung remote must never stall a
// build longer than this per attempt.
const (
	DefaultRemoteTimeout         = 2 * time.Second
	DefaultRemoteBreakerFails    = 3
	DefaultRemoteBreakerCooldown = 15 * time.Second
)

// String resolves a string knob: an explicit flag value wins, then the
// environment, then the default.
func String(flagVal, envName, def string) string {
	if flagVal != "" {
		return flagVal
	}
	if v := os.Getenv(envName); v != "" {
		return v
	}
	return def
}

// Duration is a time.Duration that serializes as the human spelling
// ("300ms", "2m") instead of a bare nanosecond count, so wire requests and
// golden fixtures stay readable. Unmarshalling accepts both forms.
type Duration time.Duration

// MarshalJSON encodes the duration as its String spelling.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string ("30s") or a number of
// nanoseconds (what a naive encoder of time.Duration produces).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("config: %q is not a duration: %w", x, err)
		}
		*d = Duration(dd)
		return nil
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	}
	return fmt.Errorf("config: duration must be a string or nanosecond count, got %T", v)
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Limits are the per-job watchdog bounds: a wall-clock deadline and a
// retired-instruction ceiling. Zero fields disable the corresponding limit.
// Limits travel on pipeline.Request, so a serving client can bound one run
// tighter than the process default.
type Limits struct {
	Timeout  Duration `json:"timeout,omitempty"`
	MaxInsts uint64   `json:"max_insts,omitempty"`
}

// IsZero reports whether no limit is armed.
func (l Limits) IsZero() bool { return l.Timeout == 0 && l.MaxInsts == 0 }

// ParseJobTimeout parses an EnvJobTimeout value: empty disables, otherwise
// a non-negative time.Duration string.
func ParseJobTimeout(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("config: %s=%q is not a duration", EnvJobTimeout, v)
	}
	return d, nil
}

// ParseJobMaxInsts parses an EnvJobMaxInsts value: empty disables,
// otherwise a non-negative instruction count.
func ParseJobMaxInsts(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("config: %s=%q is not an instruction count", EnvJobMaxInsts, v)
	}
	return n, nil
}

// LimitsFromEnv reads the watchdog knobs. Each malformed knob is reported
// in errs and its limit left disabled, mirroring the watchdog's
// warn-and-run-unguarded behavior (the caller decides where the warning
// goes).
func LimitsFromEnv() (l Limits, errs []error) {
	d, err := ParseJobTimeout(os.Getenv(EnvJobTimeout))
	if err != nil {
		errs = append(errs, err)
	} else {
		l.Timeout = Duration(d)
	}
	n, err := ParseJobMaxInsts(os.Getenv(EnvJobMaxInsts))
	if err != nil {
		errs = append(errs, err)
	} else {
		l.MaxInsts = n
	}
	return l, errs
}

// ParseCacheMaxBytes parses an EnvCacheMaxBytes value. Empty selects the
// default (ok with n == 0); anything that is not a positive integer is an
// error — the caller decides whether to warn, but never silently treats a
// typo as "use the default".
func ParseCacheMaxBytes(v string) (n int64, err error) {
	if v == "" {
		return 0, nil
	}
	n, err = strconv.ParseInt(v, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("config: %s=%q is not a positive byte count", EnvCacheMaxBytes, v)
	}
	return n, nil
}

// ParseSchedTokens parses an EnvSchedTokens value. Empty selects the
// default (ok with n == 0); anything that is not a positive integer is an
// error.
func ParseSchedTokens(v string) (n int, err error) {
	if v == "" {
		return 0, nil
	}
	n, err = strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("config: %s=%q is not a positive integer", EnvSchedTokens, v)
	}
	return n, nil
}

// ParseRemoteTimeout parses an EnvRemoteTimeout value: empty selects the
// default (signaled as 0), otherwise a positive time.Duration string.
func ParseRemoteTimeout(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("config: %s=%q is not a positive duration", EnvRemoteTimeout, v)
	}
	return d, nil
}

// ParseBreakerFails parses an EnvRemoteBreakerFails value: empty selects
// the default (signaled as 0), otherwise a positive failure count.
func ParseBreakerFails(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("config: %s=%q is not a positive integer", EnvRemoteBreakerFails, v)
	}
	return n, nil
}

// ParseBreakerCooldown parses an EnvRemoteBreakerCooldown value: empty
// selects the default (signaled as 0), otherwise a positive duration.
func ParseBreakerCooldown(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("config: %s=%q is not a positive duration", EnvRemoteBreakerCooldown, v)
	}
	return d, nil
}

// ParseTenantWeights parses an EnvServeTenants value: a comma-separated
// list of name=weight pairs with positive integer weights ("alice=4,bob=1").
// Tenants not listed default to weight 1 at the consumer. Empty input is an
// empty (nil) map.
func ParseTenantWeights(v string) (map[string]int, error) {
	if v == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(v, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("config: %s entry %q is not name=positive-weight", EnvServeTenants, pair)
		}
		out[name] = w
	}
	return out, nil
}

// ParseFuzzSeeds parses an EnvFuzzSeeds value: empty selects the default
// (signaled as 0), otherwise a positive seed count.
func ParseFuzzSeeds(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("config: %s=%q is not a positive seed count", EnvFuzzSeeds, v)
	}
	return n, nil
}

// ParseFuzzSeed parses an EnvFuzzSeed value: empty selects the default
// (signaled as 0), otherwise a positive starting seed. Seed 0 is reserved
// as the "unset" sentinel so flag/env/default resolution can distinguish it.
func ParseFuzzSeed(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("config: %s=%q is not a positive seed", EnvFuzzSeed, v)
	}
	return n, nil
}

// FormatTenantWeights renders a weight map back to the knob syntax in
// deterministic (sorted) order; the inverse of ParseTenantWeights.
func FormatTenantWeights(w map[string]int) string {
	names := make([]string, 0, len(w))
	for n := range w {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, w[n])
	}
	return strings.Join(parts, ",")
}
