package perf

import "testing"

func TestCountersSubAndGet(t *testing.T) {
	a := Counters{Loads: 100, Stores: 50, Cycles: 1000, Instructions: 400}
	b := Counters{Loads: 30, Stores: 10, Cycles: 200, Instructions: 100}
	d := a.Sub(&b)
	if d.Loads != 70 || d.Stores != 40 || d.Cycles != 800 {
		t.Errorf("sub wrong: %+v", d)
	}
	if d.Get(AllLoadsRetired) != 70 || d.Get(CPUCycles) != 800 {
		t.Error("get wrong")
	}
}

func TestRecorder(t *testing.T) {
	cur := Counters{}
	r := NewRecorder(func() Counters { return cur })
	r.Start()
	cur.Instructions = 500
	cur.Cycles = 900
	r.Stop()
	got := r.Result()
	if got.Instructions != 500 || got.Cycles != 900 {
		t.Errorf("recorder delta: %+v", got)
	}
}

func TestRawPMU(t *testing.T) {
	if RawPMU(AllLoadsRetired) != "r81d0" || RawPMU(InstructionsRetired) != "r1c0" {
		t.Error("raw descriptors wrong")
	}
	if RawPMU(CPUCycles) != "" {
		t.Error("cpu-cycles has no raw descriptor in the paper")
	}
}

func TestSeconds(t *testing.T) {
	c := Counters{Cycles: 3_500_000_000}
	if s := c.Seconds(); s != 1.0 {
		t.Errorf("3.5G cycles = %g s, want 1", s)
	}
}
