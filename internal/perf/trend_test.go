package perf

import (
	"testing"
)

func report(benches ...Benchmark) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Benchmarks: benches}
}

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

// findDelta returns the delta for (bench, metric), failing the test when it
// is absent.
func findDelta(t *testing.T, tr *Trend, b, m string) TrendDelta {
	t.Helper()
	for _, d := range tr.Deltas {
		if d.Bench == b && d.Metric == m {
			return d
		}
	}
	t.Fatalf("no delta for %s %s in %+v", b, m, tr.Deltas)
	return TrendDelta{}
}

// TestCompareBench is the trend table test: improvements, regressions at
// and around the threshold in both metric directions, missing metrics and
// benchmarks, zero baselines, and new-only coverage.
func TestCompareBench(t *testing.T) {
	const threshold = 0.10
	cases := []struct {
		name     string
		old, new Benchmark
		metric   string
		// expectations for the (bench, metric) delta:
		regressed, improved, missing bool
	}{
		{
			name:      "throughput drop of exactly the threshold regresses",
			old:       bench("SimThroughput", map[string]float64{"sim-inst/s": 200e6}),
			new:       bench("SimThroughput", map[string]float64{"sim-inst/s": 180e6}),
			metric:    "sim-inst/s",
			regressed: true,
		},
		{
			name:   "throughput drop under the threshold is neutral",
			old:    bench("SimThroughput", map[string]float64{"sim-inst/s": 200e6}),
			new:    bench("SimThroughput", map[string]float64{"sim-inst/s": 195e6}),
			metric: "sim-inst/s",
		},
		{
			name:     "throughput gain past the threshold improves",
			old:      bench("SimThroughput", map[string]float64{"sim-inst/s": 200e6}),
			new:      bench("SimThroughput", map[string]float64{"sim-inst/s": 240e6}),
			metric:   "sim-inst/s",
			improved: true,
		},
		{
			name:      "cost rise of exactly the threshold regresses",
			old:       bench("CompileAllocs", map[string]float64{"allocs/op": 100}),
			new:       bench("CompileAllocs", map[string]float64{"allocs/op": 110}),
			metric:    "allocs/op",
			regressed: true,
		},
		{
			name:     "cost drop past the threshold improves",
			old:      bench("CompileAllocs", map[string]float64{"ns/op": 5000}),
			new:      bench("CompileAllocs", map[string]float64{"ns/op": 3000}),
			metric:   "ns/op",
			improved: true,
		},
		{
			name:    "metric present only in old is missing, never a regression",
			old:     bench("CompileAllocs", map[string]float64{"allocs/op": 100, "ns/op": 5000}),
			new:     bench("CompileAllocs", map[string]float64{"ns/op": 5000}),
			metric:  "allocs/op",
			missing: true,
		},
		{
			name:    "benchmark present only in old is missing",
			old:     bench("SpawnAllocs", map[string]float64{"B/op": 2500}),
			new:     bench("Renamed", map[string]float64{"B/op": 2500}),
			metric:  "B/op",
			missing: true,
		},
		{
			name:      "cost appearing from a zero baseline regresses at any threshold",
			old:       bench("CompileAllocs", map[string]float64{"allocs/op": 0}),
			new:       bench("CompileAllocs", map[string]float64{"allocs/op": 50}),
			metric:    "allocs/op",
			regressed: true,
		},
		{
			name:     "throughput appearing from a zero baseline improves",
			old:      bench("SimThroughput", map[string]float64{"sim-inst/s": 0}),
			new:      bench("SimThroughput", map[string]float64{"sim-inst/s": 100}),
			metric:   "sim-inst/s",
			improved: true,
		},
		{
			name:   "zero to zero is neutral",
			old:    bench("ColdMisses", map[string]float64{"misses/op": 0}),
			new:    bench("ColdMisses", map[string]float64{"misses/op": 0}),
			metric: "misses/op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := CompareBench(report(tc.old), report(tc.new), threshold)
			d := findDelta(t, tr, tc.old.Name, tc.metric)
			if d.Regressed != tc.regressed || d.Improved != tc.improved || d.Missing != tc.missing {
				t.Fatalf("delta = regressed=%v improved=%v missing=%v, want %v/%v/%v (worse=%g)",
					d.Regressed, d.Improved, d.Missing, tc.regressed, tc.improved, tc.missing, d.Worse)
			}
			wantReg, wantImp, wantMiss := 0, 0, 0
			if tc.regressed {
				wantReg = 1
			}
			if tc.improved {
				wantImp = 1
			}
			if tc.missing {
				wantMiss = 1
			}
			if tr.Regressions != wantReg || tr.Improvements != wantImp || tr.Missing != wantMiss {
				t.Fatalf("counts = %d/%d/%d, want %d/%d/%d",
					tr.Regressions, tr.Improvements, tr.Missing, wantReg, wantImp, wantMiss)
			}
		})
	}
}

// TestCompareBenchZeroThreshold pins the -threshold 0 boundary: an
// unchanged metric is never flagged, while any strict worsening or
// improvement is.
func TestCompareBenchZeroThreshold(t *testing.T) {
	oldR := report(bench("A", map[string]float64{"ns/op": 100, "B/op": 50, "sim-inst/s": 1000}))
	newR := report(bench("A", map[string]float64{"ns/op": 100, "B/op": 51, "sim-inst/s": 1001}))
	tr := CompareBench(oldR, newR, 0)
	if d := findDelta(t, tr, "A", "ns/op"); d.Regressed || d.Improved {
		t.Errorf("unchanged metric flagged at threshold 0: %+v", d)
	}
	if d := findDelta(t, tr, "A", "B/op"); !d.Regressed {
		t.Errorf("strict cost rise not flagged at threshold 0: %+v", d)
	}
	if d := findDelta(t, tr, "A", "sim-inst/s"); !d.Improved {
		t.Errorf("strict throughput gain not flagged at threshold 0: %+v", d)
	}
}

// TestCompareBenchIgnoresNewCoverage pins that benchmarks and metrics that
// exist only in the new report do not produce deltas.
func TestCompareBenchIgnoresNewCoverage(t *testing.T) {
	oldR := report(bench("A", map[string]float64{"ns/op": 100}))
	newR := report(
		bench("A", map[string]float64{"ns/op": 100, "allocs/op": 5}),
		bench("B", map[string]float64{"ns/op": 10}),
	)
	tr := CompareBench(oldR, newR, 0.10)
	if len(tr.Deltas) != 1 || tr.Compared != 1 {
		t.Fatalf("deltas = %+v (compared %d), want exactly the one shared metric", tr.Deltas, tr.Compared)
	}
}

func TestParseBenchReport(t *testing.T) {
	good := []byte(`{"schema":"repro-bench/v1","benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":5}}]}`)
	r, err := ParseBenchReport(good)
	if err != nil {
		t.Fatalf("ParseBenchReport: %v", err)
	}
	if b := r.Find("X"); b == nil || b.Metrics["ns/op"] != 5 {
		t.Fatalf("Find(X) = %+v", b)
	}
	if r.Find("Y") != nil {
		t.Fatal("Find(Y) found a nonexistent benchmark")
	}
	if _, err := ParseBenchReport([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ParseBenchReport([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestHigherIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"sim-inst/s": true,
		"MB/s":       true,
		"ns/op":      false,
		"B/op":       false,
		"allocs/op":  false,
	} {
		if got := HigherIsBetter(unit); got != want {
			t.Errorf("HigherIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

// TestMedianBaseline pins the rolling-window collapse: odd windows take the
// middle value, even windows the mean of the middle two, partial coverage
// uses the values that exist, and benchmark order follows first appearance.
func TestMedianBaseline(t *testing.T) {
	r1 := report(
		bench("Sim", map[string]float64{"sim-inst/s": 100, "ns/op": 10}),
		bench("Compile", map[string]float64{"allocs/op": 7}),
	)
	r2 := report(
		bench("Sim", map[string]float64{"sim-inst/s": 300, "ns/op": 30}),
	)
	r3 := report(
		bench("Sim", map[string]float64{"sim-inst/s": 120, "ns/op": 20}),
		bench("Compile", map[string]float64{"allocs/op": 9}),
	)
	m := MedianBaseline([]*BenchReport{r1, r2, r3})
	if len(m.Benchmarks) != 2 || m.Benchmarks[0].Name != "Sim" || m.Benchmarks[1].Name != "Compile" {
		t.Fatalf("benchmarks = %+v, want Sim then Compile", m.Benchmarks)
	}
	sim := m.Find("Sim")
	if got := sim.Metrics["sim-inst/s"]; got != 120 {
		t.Errorf("median sim-inst/s = %v, want 120 (middle of 100,300,120)", got)
	}
	if got := sim.Metrics["ns/op"]; got != 20 {
		t.Errorf("median ns/op = %v, want 20", got)
	}
	// Compile appears in only two reports: even window, mean of middle two.
	if got := m.Find("Compile").Metrics["allocs/op"]; got != 8 {
		t.Errorf("median allocs/op = %v, want 8 (mean of 7,9)", got)
	}
}

// TestMedianBaselineDiscardsOneOutlier is the property the CI gate relies
// on: a single wildly-noisy run in a 3-report window does not shift the
// gate's baseline.
func TestMedianBaselineDiscardsOneOutlier(t *testing.T) {
	steady := func(v float64) *BenchReport {
		return report(bench("Sim", map[string]float64{"sim-inst/s": v}))
	}
	m := MedianBaseline([]*BenchReport{steady(200), steady(1e12), steady(210)})
	if got := m.Find("Sim").Metrics["sim-inst/s"]; got != 210 {
		t.Errorf("median with outlier = %v, want 210", got)
	}
	tr := CompareBench(m, steady(195), 0.10)
	if tr.Regressions != 0 {
		t.Errorf("7%% drop against outlier-robust median flagged as regression: %+v", tr.Deltas)
	}
}
