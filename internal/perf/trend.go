package perf

// Bench-artifact trend support: the JSON schema cmd/benchjson produces
// (BENCH_ci.json, one per CI run) and the cross-run comparison
// cmd/benchtrend gates on. Both binaries share these types, so the producer
// and the consumer of the artifact can never drift apart.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// BenchSchema is the artifact format identifier; ParseBenchReport rejects
// documents carrying anything else.
const BenchSchema = "repro-bench/v1"

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the bench line reported.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value (ns/op, sim-inst/s, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the top-level BENCH_ci.json document.
type BenchReport struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ParseBenchReport decodes and validates one BENCH_ci.json document.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: decoding bench report: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("perf: unsupported bench schema %q (want %q)", r.Schema, BenchSchema)
	}
	return &r, nil
}

// Find returns the named benchmark, or nil.
func (r *BenchReport) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// HigherIsBetter reports whether a larger value of the metric unit is an
// improvement. Rate units (sim-inst/s, anything per second) are throughput;
// everything else go's bench output produces (ns/op, B/op, allocs/op,
// custom .../op costs) is a cost where smaller wins.
func HigherIsBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

// TrendDelta is one (benchmark, metric) comparison between two reports.
type TrendDelta struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
	// Ratio is New/Old (0 when Old is 0 or the metric is missing).
	Ratio float64
	// Worse is the fractional worsening in the metric's cost direction:
	// positive means the new run is worse, negative better, by that
	// fraction of the old value.
	Worse float64
	// Missing marks a metric (or whole benchmark) present in the old
	// report but absent from the new one — lost coverage, reported but
	// never treated as a regression.
	Missing bool
	// Regressed and Improved mark deltas past the comparison threshold.
	Regressed bool
	Improved  bool
}

// Trend is the full comparison of two bench reports.
type Trend struct {
	// Threshold is the fractional change past which a delta is flagged.
	Threshold float64
	// Deltas holds every (benchmark, metric) pair of the old report, in
	// benchmark order, metrics sorted by unit.
	Deltas []TrendDelta
	// Regressions, Improvements, and Missing count the flagged deltas.
	Regressions  int
	Improvements int
	Missing      int
	// Compared counts the metric pairs present in both reports.
	Compared int
}

// MedianBaseline collapses a rolling window of baseline reports into one
// synthetic report: each (benchmark, metric) carries the median of its
// values across the reports where it appears, and benchmarks keep
// first-appearance order. With three baselines the median discards a single
// noisy CI run in either direction, so a gate against the result is robust
// to one outlier where a gate against the single previous run is not. A
// metric absent from some window members is the median of the values that
// do exist — partial coverage shrinks the sample instead of dropping the
// metric.
func MedianBaseline(reports []*BenchReport) *BenchReport {
	out := &BenchReport{Schema: BenchSchema}
	type acc struct {
		iters   int64
		metrics map[string][]float64
	}
	idx := make(map[string]*acc)
	var order []string
	for _, r := range reports {
		for _, b := range r.Benchmarks {
			a := idx[b.Name]
			if a == nil {
				a = &acc{metrics: make(map[string][]float64)}
				idx[b.Name] = a
				order = append(order, b.Name)
			}
			if b.Iterations > a.iters {
				a.iters = b.Iterations
			}
			for u, v := range b.Metrics {
				a.metrics[u] = append(a.metrics[u], v)
			}
		}
	}
	for _, name := range order {
		a := idx[name]
		m := make(map[string]float64, len(a.metrics))
		for u, vs := range a.metrics {
			m[u] = median(vs)
		}
		out.Benchmarks = append(out.Benchmarks, Benchmark{Name: name, Iterations: a.iters, Metrics: m})
	}
	return out
}

// median returns the middle value of vs (mean of the middle two for even
// counts). vs must be non-empty; it is not modified.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// trendEps absorbs float rounding at the threshold boundary, so a change of
// exactly the threshold fraction (a 10% drop against threshold 0.10) always
// flags regardless of how the division rounded.
const trendEps = 1e-9

// CompareBench compares every metric of old against new. A metric is a
// regression when it worsens by at least threshold (relative to the old
// value) in its cost direction — throughput units ("/s" suffix) must not
// fall, cost units must not rise. Metrics or benchmarks present only in new
// are ignored (new coverage can't regress); present only in old they are
// counted as Missing. A zero old value has no meaningful relative change,
// so the threshold cannot apply — but a cost appearing from a zero
// baseline (allocs/op going from fully-pooled 0 back to N) is flagged as a
// regression at any threshold, and new throughput from zero as an
// improvement; Worse is ±Inf for these. Only a 0 -> 0 pair is neutral.
func CompareBench(oldR, newR *BenchReport, threshold float64) *Trend {
	tr := &Trend{Threshold: threshold}
	for _, ob := range oldR.Benchmarks {
		nb := newR.Find(ob.Name)
		units := make([]string, 0, len(ob.Metrics))
		for u := range ob.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			d := TrendDelta{Bench: ob.Name, Metric: u, Old: ob.Metrics[u]}
			nv, ok := 0.0, false
			if nb != nil {
				nv, ok = nb.Metrics[u]
			}
			if !ok {
				d.Missing = true
				tr.Missing++
				tr.Deltas = append(tr.Deltas, d)
				continue
			}
			d.New = nv
			tr.Compared++
			switch {
			case d.Old != 0:
				d.Ratio = d.New / d.Old
				if HigherIsBetter(u) {
					d.Worse = (d.Old - d.New) / d.Old
				} else {
					d.Worse = (d.New - d.Old) / d.Old
				}
				// The strict-sign check keeps threshold 0 honest: "flag
				// any worsening" must not flag an unchanged metric that
				// the epsilon alone would let through.
				if d.Worse > 0 && d.Worse >= threshold-trendEps {
					d.Regressed = true
					tr.Regressions++
				} else if d.Worse < 0 && -d.Worse >= threshold-trendEps {
					d.Improved = true
					tr.Improvements++
				}
			case d.New != 0:
				// Zero baseline: infinite relative change in whichever
				// direction the unit's cost sense gives it.
				if HigherIsBetter(u) {
					d.Worse = math.Inf(-1)
					d.Improved = true
					tr.Improvements++
				} else {
					d.Worse = math.Inf(1)
					d.Regressed = true
					tr.Regressions++
				}
			}
			tr.Deltas = append(tr.Deltas, d)
		}
	}
	return tr
}
