package perf

// Fidelity-error measurement: per-counter relative error of an
// approximating simulation tier (functional, sampled) against the exact
// oracle. The architectural counters — loads, stores, branches,
// conditional branches, instructions — are exact by construction in every
// tier, so any divergence there is a bug, not an approximation; the
// timing-derived counters are where sampling trades accuracy for speed and
// what the error report quantifies.

import (
	"fmt"
	"math"
	"strings"
)

// TimingCounter names one timing-derived counter in a FidelityRow.
type TimingCounter struct {
	Name          string
	Exact, Approx uint64
}

// Rel returns the relative error |approx-exact| / exact. A zero oracle
// with a nonzero approximation is reported as +Inf; 0/0 is 0.
func (t TimingCounter) Rel() float64 {
	if t.Exact == 0 {
		if t.Approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	d := float64(t.Approx) - float64(t.Exact)
	return math.Abs(d) / float64(t.Exact)
}

// FidelityRow is one workload's counter comparison.
type FidelityRow struct {
	Workload      string
	Exact, Approx Counters
}

// ArchExact reports whether the architectural counter subset is
// bit-identical — the invariant every tier must uphold.
func (r FidelityRow) ArchExact() bool {
	return r.Exact.Loads == r.Approx.Loads &&
		r.Exact.Stores == r.Approx.Stores &&
		r.Exact.Branches == r.Approx.Branches &&
		r.Exact.CondBranches == r.Approx.CondBranches &&
		r.Exact.Instructions == r.Approx.Instructions
}

// Timing returns the timing-derived counters in presentation order.
func (r FidelityRow) Timing() []TimingCounter {
	return []TimingCounter{
		{"cycles", r.Exact.Cycles, r.Approx.Cycles},
		{"L1i-misses", r.Exact.L1IMisses, r.Approx.L1IMisses},
		{"L1d-misses", r.Exact.L1DMisses, r.Approx.L1DMisses},
		{"L2-misses", r.Exact.L2Misses, r.Approx.L2Misses},
		{"branch-misses", r.Exact.BranchMiss, r.Approx.BranchMiss},
	}
}

// WorstTiming returns the timing counter with the largest relative error,
// considering only counters whose oracle value is at least floor: relative
// error on a near-empty population (a workload with a handful of L2 misses)
// measures noise, not sampling quality. floor 0 considers everything.
func (r FidelityRow) WorstTiming(floor uint64) (TimingCounter, float64) {
	var worst TimingCounter
	worstRel := -1.0
	for _, t := range r.Timing() {
		if t.Exact < floor {
			continue
		}
		if rel := t.Rel(); rel > worstRel {
			worst, worstRel = t, rel
		}
	}
	if worstRel < 0 {
		return TimingCounter{}, 0
	}
	return worst, worstRel
}

// FidelityReport aggregates rows across a workload suite.
type FidelityReport struct {
	Tier string
	Rows []FidelityRow
}

// Worst returns the suite-wide worst timing error (floor as in
// FidelityRow.WorstTiming) and the workload/counter it occurred on.
func (rep *FidelityReport) Worst(floor uint64) (workload string, tc TimingCounter, rel float64) {
	for _, r := range rep.Rows {
		if t, e := r.WorstTiming(floor); e > rel || workload == "" {
			workload, tc, rel = r.Workload, t, e
		}
	}
	return workload, tc, rel
}

// String renders the per-workload error table.
func (rep *FidelityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fidelity error vs. exact (%s tier)\n", rep.Tier)
	fmt.Fprintf(&sb, "%-14s %-14s %14s %14s %9s\n", "workload", "counter", "exact", rep.Tier, "rel.err")
	for _, r := range rep.Rows {
		if !r.ArchExact() {
			fmt.Fprintf(&sb, "%-14s ARCHITECTURAL COUNTER MISMATCH\n", r.Workload)
		}
		for _, t := range r.Timing() {
			fmt.Fprintf(&sb, "%-14s %-14s %14d %14d %8.3f%%\n",
				r.Workload, t.Name, t.Exact, t.Approx, t.Rel()*100)
		}
	}
	return sb.String()
}
