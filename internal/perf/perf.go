// Package perf defines the hardware performance counters the paper records
// through Linux perf (Table 3) and the counter sets produced by the CPU
// simulator; event names and raw PMU descriptors match the paper. It also
// owns the repository's own performance trajectory: the BENCH_ci.json
// bench-artifact schema shared by cmd/benchjson (producer) and
// cmd/benchtrend (consumer), and the cross-run trend comparison
// (CompareBench) CI gates regressions with.
package perf

import (
	"fmt"
	"sort"
	"strings"
)

// Event identifies one performance counter.
type Event string

// The paper's Table 3 events.
const (
	AllLoadsRetired     Event = "all-loads-retired"    // r81d0
	AllStoresRetired    Event = "all-stores-retired"   // r82d0
	BranchesRetired     Event = "branches-retired"     // r00c4
	ConditionalBranches Event = "conditional-branches" // r01c4
	InstructionsRetired Event = "instructions-retired" // r1c0
	CPUCycles           Event = "cpu-cycles"
	L1ICacheLoadMisses  Event = "L1-icache-load-misses"
	L1DCacheLoadMisses  Event = "L1-dcache-load-misses"
	BranchMisses        Event = "branch-misses"
)

// RawPMU returns the raw event descriptor the paper lists for ev, or "".
func RawPMU(ev Event) string {
	switch ev {
	case AllLoadsRetired:
		return "r81d0"
	case AllStoresRetired:
		return "r82d0"
	case BranchesRetired:
		return "r00c4"
	case ConditionalBranches:
		return "r01c4"
	case InstructionsRetired:
		return "r1c0"
	}
	return ""
}

// Table3 lists the events with the paper's summary column.
func Table3() []struct{ Event, Raw, Summary string } {
	return []struct{ Event, Raw, Summary string }{
		{string(AllLoadsRetired), "r81d0", "Increased register pressure"},
		{string(AllStoresRetired), "r82d0", "Increased register pressure"},
		{string(BranchesRetired), "r00c4", "More branch statements"},
		{string(ConditionalBranches), "r01c4", "More branch statements"},
		{string(InstructionsRetired), "r1c0", "Increased code size"},
		{string(CPUCycles), "", "Increased code size"},
		{string(L1ICacheLoadMisses), "", "Increased code size"},
	}
}

// Counters is a snapshot of the simulated PMU.
type Counters struct {
	Loads        uint64
	Stores       uint64
	Branches     uint64
	CondBranches uint64
	Instructions uint64
	Cycles       uint64
	L1IMisses    uint64
	L1DMisses    uint64
	L2Misses     uint64
	BranchMiss   uint64
}

// Get returns the value of the named event.
func (c *Counters) Get(ev Event) uint64 {
	switch ev {
	case AllLoadsRetired:
		return c.Loads
	case AllStoresRetired:
		return c.Stores
	case BranchesRetired:
		return c.Branches
	case ConditionalBranches:
		return c.CondBranches
	case InstructionsRetired:
		return c.Instructions
	case CPUCycles:
		return c.Cycles
	case L1ICacheLoadMisses:
		return c.L1IMisses
	case L1DCacheLoadMisses:
		return c.L1DMisses
	case BranchMisses:
		return c.BranchMiss
	}
	return 0
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Branches += o.Branches
	c.CondBranches += o.CondBranches
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.L1IMisses += o.L1IMisses
	c.L1DMisses += o.L1DMisses
	c.L2Misses += o.L2Misses
	c.BranchMiss += o.BranchMiss
}

// Sub returns c - o (for interval measurements).
func (c *Counters) Sub(o *Counters) Counters {
	return Counters{
		Loads:        c.Loads - o.Loads,
		Stores:       c.Stores - o.Stores,
		Branches:     c.Branches - o.Branches,
		CondBranches: c.CondBranches - o.CondBranches,
		Instructions: c.Instructions - o.Instructions,
		Cycles:       c.Cycles - o.Cycles,
		L1IMisses:    c.L1IMisses - o.L1IMisses,
		L1DMisses:    c.L1DMisses - o.L1DMisses,
		L2Misses:     c.L2Misses - o.L2Misses,
		BranchMiss:   c.BranchMiss - o.BranchMiss,
	}
}

// Seconds converts cycles to wall time at the simulated clock (3.5 GHz,
// matching the paper's Xeon E5-1650 v3).
func (c *Counters) Seconds() float64 { return float64(c.Cycles) / 3.5e9 }

func (c *Counters) String() string {
	type kv struct {
		k string
		v uint64
	}
	rows := []kv{
		{"instructions", c.Instructions}, {"cycles", c.Cycles},
		{"loads", c.Loads}, {"stores", c.Stores},
		{"branches", c.Branches}, {"cond-branches", c.CondBranches},
		{"L1i-misses", c.L1IMisses}, {"L1d-misses", c.L1DMisses},
		{"branch-misses", c.BranchMiss},
	}
	var parts []string
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s=%d", r.k, r.v))
	}
	return strings.Join(parts, " ")
}

// Recorder mimics attaching `perf record` to a process: it snapshots the
// counters at start/stop marks (the XHR begin/end in Figure 2) and reports
// the delta.
type Recorder struct {
	src     func() Counters
	started bool
	base    Counters
	result  Counters
}

// NewRecorder wraps a counter source.
func NewRecorder(src func() Counters) *Recorder { return &Recorder{src: src} }

// Start snapshots the baseline (step 4 in Figure 2).
func (r *Recorder) Start() {
	r.base = r.src()
	r.started = true
}

// Stop records the interval (step 6 in Figure 2).
func (r *Recorder) Stop() {
	if !r.started {
		return
	}
	cur := r.src()
	r.result = cur.Sub(&r.base)
	r.started = false
}

// Result returns the recorded interval counters.
func (r *Recorder) Result() Counters { return r.result }

// Ratio computes per-event ratios of a over b, for the Figure 9/10 plots.
func Ratio(a, b *Counters) map[Event]float64 {
	events := []Event{
		AllLoadsRetired, AllStoresRetired, BranchesRetired, ConditionalBranches,
		InstructionsRetired, CPUCycles, L1ICacheLoadMisses,
	}
	out := map[Event]float64{}
	for _, ev := range events {
		bv := b.Get(ev)
		if bv == 0 {
			bv = 1
		}
		out[ev] = float64(a.Get(ev)) / float64(bv)
	}
	return out
}

// SortedEvents returns the Figure 9/10 event list in presentation order.
func SortedEvents() []Event {
	evs := []Event{
		AllLoadsRetired, AllStoresRetired, BranchesRetired, ConditionalBranches,
		InstructionsRetired, CPUCycles, L1ICacheLoadMisses,
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}
