package spec

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// SuiteResults bundles a full run of one suite across engines: rows are
// workloads, columns follow the engine order passed to RunSuite.
type SuiteResults struct {
	Workloads []*workloads.Workload
	Engines   []*codegen.EngineConfig
	R         [][]*Result
}

// applyFidelity stamps the harness's tier selection onto a fresh config
// set. Config constructors are pure; the tier is harness state so that one
// -fidelity flag (or $REPRO_FIDELITY) reaches every suite the binary runs.
func (h *Harness) applyFidelity(cfgs []*codegen.EngineConfig) []*codegen.EngineConfig {
	for _, cfg := range cfgs {
		cfg.ApplyFidelity(h.Fidelity, h.SampleWindows)
	}
	return cfgs
}

// RunSPEC runs the SPEC-shaped suite on native/Chrome/Firefox.
func (h *Harness) RunSPEC() (*SuiteResults, error) {
	ws := workloads.SPECCPU()
	cfgs := h.applyFidelity(EngineSet())
	r, err := h.RunSuite(ws, cfgs)
	if r == nil {
		return nil, err
	}
	// err may be a *SuiteFailure from a degraded run: the results are
	// usable (failed rows are Err-marked), the run still reads as failed.
	return &SuiteResults{Workloads: ws, Engines: cfgs, R: r}, err
}

// RunPolybench runs the PolybenchC suite on native/Chrome/Firefox.
func (h *Harness) RunPolybench() (*SuiteResults, error) {
	ws := workloads.Polybench()
	cfgs := h.applyFidelity(EngineSet())
	r, err := h.RunSuite(ws, cfgs)
	if r == nil {
		return nil, err
	}
	// err may be a *SuiteFailure from a degraded run: the results are
	// usable (failed rows are Err-marked), the run still reads as failed.
	return &SuiteResults{Workloads: ws, Engines: cfgs, R: r}, err
}

// RunAsmJS runs the SPEC suite on the asm.js configurations.
func (h *Harness) RunAsmJS() (*SuiteResults, error) {
	ws := workloads.SPECCPU()
	cfgs := h.applyFidelity(AsmJSEngines())
	r, err := h.RunSuite(ws, cfgs)
	if r == nil {
		return nil, err
	}
	// err may be a *SuiteFailure from a degraded run: the results are
	// usable (failed rows are Err-marked), the run still reads as failed.
	return &SuiteResults{Workloads: ws, Engines: cfgs, R: r}, err
}

// Relative returns, per workload, time(engine col)/time(col 0).
func (s *SuiteResults) Relative(col int) []float64 {
	out := make([]float64, len(s.R))
	for i, row := range s.R {
		out[i] = row[col].Seconds / row[0].Seconds
	}
	return out
}

// Fig3 renders the relative-execution-time figure for a suite (3a for
// Polybench, 3b for SPEC).
func Fig3(s *SuiteResults, title string) string {
	f := NewFig3Stream(title, len(s.R))
	s.Feed(f)
	return f.Render()
}

// Table1 renders the SPEC absolute-times table. Simulated times are in
// milliseconds (problem sizes are scaled down; see EXPERIMENTS.md).
func Table1(s *SuiteResults) string {
	t := NewTable1Stream(len(s.R))
	s.Feed(t)
	return t.Render()
}

// Table2 renders compile times: "Clang" is the native pipeline (mini-C
// frontend + optimizing backend), "Chrome" the V8 backend alone (the wasm
// module arrives pre-compiled, as in the paper).
func (h *Harness) Table2() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 2 — compile times (ms)\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s\n", "benchmark", "clang", "chrome")
	for _, w := range workloads.SPECCPU() {
		nat, err := h.build(context.Background(), w.Name, w.Source, codegen.Native())
		if err != nil {
			return "", err
		}
		chr, err := h.build(context.Background(), w.Name, w.Source, codegen.Chrome())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-16s %12.2f %12.2f\n", w.Name,
			nat.CompileTime.Seconds()*1000, chr.CompileTime.Seconds()*1000)
	}
	return sb.String(), nil
}

// Fig4 renders the Browsix-overhead figure: % of time in Browsix syscalls
// (Firefox column, like the paper).
func Fig4(s *SuiteResults) string {
	f := NewFig4Stream(len(s.R))
	s.Feed(f)
	return f.Render()
}

// Fig5 renders asm.js-vs-wasm relative time per browser.
func Fig5(wasmRes, asmRes *SuiteResults) string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — asm.js relative to WebAssembly (wasm = 1.0)\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "benchmark", "chrome", "firefox")
	var rc, rf []float64
	for i, w := range wasmRes.Workloads {
		if !RowOK(wasmRes.R[i]) || !RowOK(asmRes.R[i]) {
			fmt.Fprintf(&sb, "%-16s %10s\n", w.Name, "FAILED")
			continue
		}
		c := asmRes.R[i][0].Seconds / wasmRes.R[i][1].Seconds
		f := asmRes.R[i][1].Seconds / wasmRes.R[i][2].Seconds
		rc = append(rc, c)
		rf = append(rf, f)
		fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", w.Name, c, f)
	}
	fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", "geomean", stats.Geomean(rc), stats.Geomean(rf))
	return sb.String()
}

// Fig6 renders best-asm.js vs best-wasm relative time.
func Fig6(wasmRes, asmRes *SuiteResults) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — best asm.js relative to best WebAssembly\n")
	var ratios []float64
	for i, w := range wasmRes.Workloads {
		if !RowOK(wasmRes.R[i]) || !RowOK(asmRes.R[i]) {
			fmt.Fprintf(&sb, "%-16s %10s\n", w.Name, "FAILED")
			continue
		}
		bestWasm := stats.Min([]float64{wasmRes.R[i][1].Seconds, wasmRes.R[i][2].Seconds})
		bestAsm := stats.Min([]float64{asmRes.R[i][0].Seconds, asmRes.R[i][1].Seconds})
		r := bestAsm / bestWasm
		ratios = append(ratios, r)
		fmt.Fprintf(&sb, "%-16s %10.2f\n", w.Name, r)
	}
	fmt.Fprintf(&sb, "%-16s %10.2f\n", "geomean", stats.Geomean(ratios))
	return sb.String()
}

// Fig9Events lists the counter panels of Figure 9 in order (a)-(f).
var Fig9Events = []perf.Event{
	perf.AllLoadsRetired, perf.AllStoresRetired, perf.BranchesRetired,
	perf.ConditionalBranches, perf.InstructionsRetired, perf.CPUCycles,
}

// CounterRatios returns per-benchmark event ratios engine-col/native for ev.
func (s *SuiteResults) CounterRatios(ev perf.Event, col int) []float64 {
	out := make([]float64, len(s.R))
	for i, row := range s.R {
		n := row[0].Counters.Get(ev)
		if n == 0 {
			n = 1
		}
		out[i] = float64(row[col].Counters.Get(ev)) / float64(n)
	}
	return out
}

// Fig9 renders the six counter panels.
func Fig9(s *SuiteResults) string {
	f := NewFig9Stream(len(s.R))
	s.Feed(f)
	return f.Render()
}

// Fig10 renders L1 icache miss ratios.
func Fig10(s *SuiteResults) string {
	f := NewFig10Stream(len(s.R))
	s.Feed(f)
	return f.Render()
}

// Table3 renders the perf-event table.
func Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3 — performance counters (raw PMU descriptors as in the paper)\n")
	fmt.Fprintf(&sb, "%-26s %-8s %s\n", "perf event", "raw", "summary")
	for _, row := range perf.Table3() {
		raw := row.Raw
		if raw == "" {
			raw = "-"
		}
		fmt.Fprintf(&sb, "%-26s %-8s %s\n", row.Event, raw, row.Summary)
	}
	return sb.String()
}

// Table4 renders the geomean counter increases.
func Table4(s *SuiteResults) string {
	t := NewTable4Stream(len(s.R))
	s.Feed(t)
	return t.Render()
}

// Fig1Historical holds the thresholds series the paper shows for earlier
// measurements (read from Figure 1; the 1.1x values are stated in the text).
var Fig1Historical = []struct {
	Label  string
	Counts map[float64]int
}{
	{"PLDI 2017", map[float64]int{1.1: 7, 1.5: 17, 2.0: 22, 2.5: 24}},
	{"April 2018", map[float64]int{1.1: 11, 1.5: 18, 2.0: 23, 2.5: 24}},
}

// Fig1 counts Polybench kernels within each threshold of native (best
// browser per kernel) and renders the comparison with the historical series.
func Fig1(s *SuiteResults) string {
	f := NewFig1Stream(len(s.R))
	s.Feed(f)
	return f.Render()
}

// MatmulSource returns the §5 case-study kernel at the given sizes.
func MatmulSource(ni, nk, nj int) string {
	return fmt.Sprintf(`
int NI = %d; int NK = %d; int NJ = %d;
int A[%d]; int B[%d]; int C[%d];
void matmul() {
  int i; int k; int j;
  for (i = 0; i < NI; i++) {
    for (k = 0; k < NK; k++) {
      for (j = 0; j < NJ; j++) {
        C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
      }
    }
  }
}
int main() {
  int i;
  for (i = 0; i < NI * NK; i++) { A[i] = (i * 7 + 3) %% 251; }
  for (i = 0; i < NK * NJ; i++) { B[i] = (i * 5 + 1) %% 241; }
  for (i = 0; i < NI * NJ; i++) { C[i] = 0; }
  matmul();
  int s = 0;
  for (i = 0; i < NI * NJ; i++) { s += C[i]; }
  print_int(s); print_nl();
  return 0;
}`, ni, nk, nj, ni*nk, nk*nj, ni*nj)
}

// Fig7 returns the case-study listings: the matmul codegen of Clang vs
// Chrome with instruction counts (the paper's Figure 7b/7c).
func Fig7() (string, error) {
	src := MatmulSource(16, 18, 19)
	var sb strings.Builder
	sb.WriteString("Figure 7 — matmul code generation\n\n")
	for _, cfg := range []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()} {
		cm, err := pipeline.Compile(context.Background(), &pipeline.Request{Module: src, Config: cfg})
		if err != nil {
			return "", err
		}
		d, ok := cm.DisasmFunc("matmul")
		if !ok {
			return "", fmt.Errorf("spec: no matmul function")
		}
		fmt.Fprintf(&sb, "--- %s ---\n%s\n", cfg.Name, d)
	}
	return sb.String(), nil
}

// Fig8Sizes are the scaled matmul sweep sizes (the paper sweeps
// 200x220x240 .. 2000x2200x2400; the 10:11:12 ratio is preserved).
var Fig8Sizes = [][3]int{
	{10, 11, 12}, {20, 22, 24}, {30, 33, 36}, {40, 44, 48}, {50, 55, 60},
	{60, 66, 72}, {70, 77, 84}, {80, 88, 96}, {90, 99, 108}, {100, 110, 120},
}

// Fig8 runs the matmul sweep and renders relative times.
func (h *Harness) Fig8() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 8 — matmul relative execution time across sizes (native = 1.0)\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "size (NIxNKxNJ)", "chrome", "firefox")
	for _, sz := range Fig8Sizes {
		w := &workloads.Workload{
			Name:   fmt.Sprintf("matmul-%dx%dx%d", sz[0], sz[1], sz[2]),
			Source: MatmulSource(sz[0], sz[1], sz[2]),
		}
		rs, err := h.RunSuite([]*workloads.Workload{w}, EngineSet())
		if err != nil {
			return "", err
		}
		n := rs[0][0].Seconds
		fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n",
			fmt.Sprintf("%dx%dx%d", sz[0], sz[1], sz[2]),
			rs[0][1].Seconds/n, rs[0][2].Seconds/n)
	}
	return sb.String(), nil
}
