package spec

// Streaming figure builders. Each implements RowSink and accumulates one
// figure incrementally, so a suite run can feed results row by row as
// workloads complete — Harness.RunSuiteRows never materializes the full
// [][]*Result matrix (per-workload rows are dropped the moment every sink
// has seen them). The matrix-based helpers in figures.go are thin wrappers
// that replay a SuiteResults through these builders, so both paths render
// byte-identical figures.

import (
	"fmt"
	"strings"

	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RowSink consumes one validated suite row: workload wi's results across
// the engine set, in engine order. Rows arrive in completion order, not
// workload order; sinks index by wi so rendered output stays ordered.
// AddRow must not retain the row slice.
type RowSink interface {
	AddRow(wi int, w *workloads.Workload, row []*Result)
}

// RowOK reports whether a row is measurable: every engine produced a real
// result (non-nil, no Err). Degraded suite runs deliver failed rows too, so
// every sink guards with this and renders FAILED lines instead of plotting
// zeros — and keeps failed rows out of its geomean inputs.
func RowOK(row []*Result) bool {
	if len(row) == 0 {
		return false
	}
	for _, r := range row {
		if r == nil || r.Err != nil {
			return false
		}
	}
	return true
}

// failedLine is the rendered form of a failed row in line-based figures.
func failedLine(name string) string {
	return fmt.Sprintf("%-16s %10s\n", name, "FAILED")
}

// okFilter selects vals at positions marked ok, in workload order: the
// aggregate inputs for a figure with failed rows. Positional (not appended
// at AddRow time) so the aggregation order — and therefore the rendered
// floating-point digits — never depends on row completion order.
func okFilter(vals []float64, ok []bool) []float64 {
	out := make([]float64, 0, len(vals))
	for i, v := range vals {
		if ok[i] {
			out = append(out, v)
		}
	}
	return out
}

// rel returns row[col]'s time relative to the native column.
func rel(row []*Result, col int) float64 { return row[col].Seconds / row[0].Seconds }

// counterRatio returns row[col]'s event count relative to native.
func counterRatio(row []*Result, ev perf.Event, col int) float64 {
	n := row[0].Counters.Get(ev)
	if n == 0 {
		n = 1
	}
	return float64(row[col].Counters.Get(ev)) / float64(n)
}

// Fig3Stream accumulates the relative-execution-time figure (3a Polybench,
// 3b SPEC).
type Fig3Stream struct {
	title           string
	lines           []string
	ok              []bool
	chrome, firefox []float64
}

// NewFig3Stream sizes the builder for n workloads.
func NewFig3Stream(title string, n int) *Fig3Stream {
	return &Fig3Stream{title: title, lines: make([]string, n), ok: make([]bool, n),
		chrome: make([]float64, n), firefox: make([]float64, n)}
}

// AddRow implements RowSink.
func (f *Fig3Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		f.lines[wi] = failedLine(w.Name)
		return
	}
	c, fx := rel(row, 1), rel(row, 2)
	f.ok[wi] = true
	f.chrome[wi], f.firefox[wi] = c, fx
	f.lines[wi] = fmt.Sprintf("%-16s %10.2f %10.2f\n", w.Name, c, fx)
}

// Render emits the figure.
func (f *Fig3Stream) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — relative execution time (native = 1.0)\n", f.title)
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "benchmark", "chrome", "firefox")
	for _, l := range f.lines {
		sb.WriteString(l)
	}
	fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", "geomean",
		stats.Geomean(okFilter(f.chrome, f.ok)), stats.Geomean(okFilter(f.firefox, f.ok)))
	return sb.String()
}

// Table1Stream accumulates the SPEC absolute-times table.
type Table1Stream struct {
	lines           []string
	ok              []bool
	chrome, firefox []float64
}

// NewTable1Stream sizes the builder for n workloads.
func NewTable1Stream(n int) *Table1Stream {
	return &Table1Stream{lines: make([]string, n), ok: make([]bool, n),
		chrome: make([]float64, n), firefox: make([]float64, n)}
}

// AddRow implements RowSink.
func (t *Table1Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		t.lines[wi] = fmt.Sprintf("%-16s %12s %12s %12s\n", w.Name, "FAILED", "-", "-")
		return
	}
	n := row[0].Seconds * 1000
	c := row[1].Seconds * 1000
	f := row[2].Seconds * 1000
	t.ok[wi] = true
	t.chrome[wi], t.firefox[wi] = c/n, f/n
	t.lines[wi] = fmt.Sprintf("%-16s %12.2f %12.2f %12.2f\n", w.Name, n, c, f)
}

// Render emits the table.
func (t *Table1Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1 — SPEC CPU execution times (simulated ms)\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s\n", "benchmark", "native", "chrome", "firefox")
	for _, l := range t.lines {
		sb.WriteString(l)
	}
	chrome, firefox := okFilter(t.chrome, t.ok), okFilter(t.firefox, t.ok)
	fmt.Fprintf(&sb, "%-16s %12s %11.2fx %11.2fx\n", "Slowdown: geomean", "-", stats.Geomean(chrome), stats.Geomean(firefox))
	fmt.Fprintf(&sb, "%-16s %12s %11.2fx %11.2fx\n", "Slowdown: median", "-", stats.Median(chrome), stats.Median(firefox))
	return sb.String()
}

// Fig4Stream accumulates the Browsix-overhead figure.
type Fig4Stream struct {
	lines  []string
	ok     []bool
	shares []float64
}

// NewFig4Stream sizes the builder for n workloads.
func NewFig4Stream(n int) *Fig4Stream {
	return &Fig4Stream{lines: make([]string, n), ok: make([]bool, n), shares: make([]float64, n)}
}

// AddRow implements RowSink.
func (f *Fig4Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		f.lines[wi] = failedLine(w.Name)
		return
	}
	share := row[2].BrowsixShare * 100
	f.ok[wi] = true
	f.shares[wi] = share
	f.lines[wi] = fmt.Sprintf("%-16s %8.3f%%   (%d syscalls)\n", w.Name, share, row[2].Syscalls)
}

// Render emits the figure.
func (f *Fig4Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — % of time spent in Browsix (Firefox)\n")
	for _, l := range f.lines {
		sb.WriteString(l)
	}
	fmt.Fprintf(&sb, "%-16s %8.3f%%\n", "average", stats.Mean(okFilter(f.shares, f.ok)))
	return sb.String()
}

// Fig9Stream accumulates the six counter panels.
type Fig9Stream struct {
	names   []string
	ok      []bool
	chrome  [][]float64 // [panel][workload]
	firefox [][]float64
}

// NewFig9Stream sizes the builder for n workloads.
func NewFig9Stream(n int) *Fig9Stream {
	f := &Fig9Stream{names: make([]string, n), ok: make([]bool, n),
		chrome: make([][]float64, len(Fig9Events)), firefox: make([][]float64, len(Fig9Events))}
	for i := range Fig9Events {
		f.chrome[i] = make([]float64, n)
		f.firefox[i] = make([]float64, n)
	}
	return f
}

// AddRow implements RowSink.
func (f *Fig9Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	f.names[wi] = w.Name
	if !RowOK(row) {
		return
	}
	f.ok[wi] = true
	for pi, ev := range Fig9Events {
		f.chrome[pi][wi] = counterRatio(row, ev, 1)
		f.firefox[pi][wi] = counterRatio(row, ev, 2)
	}
}

// Render emits the figure.
func (f *Fig9Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9 — performance counters relative to native (native = 1.0)\n")
	for pi, ev := range Fig9Events {
		fmt.Fprintf(&sb, "\n(%c) %s\n", 'a'+pi, ev)
		fmt.Fprintf(&sb, "%-16s %10s %10s\n", "benchmark", "chrome", "firefox")
		for wi, name := range f.names {
			if !f.ok[wi] {
				sb.WriteString(failedLine(name))
				continue
			}
			fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", name, f.chrome[pi][wi], f.firefox[pi][wi])
		}
		fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", "geomean",
			stats.Geomean(okFilter(f.chrome[pi], f.ok)), stats.Geomean(okFilter(f.firefox[pi], f.ok)))
	}
	return sb.String()
}

// Fig10Stream accumulates the L1-icache miss-ratio figure.
type Fig10Stream struct {
	lines           []string
	ok              []bool
	chrome, firefox []float64
}

// NewFig10Stream sizes the builder for n workloads.
func NewFig10Stream(n int) *Fig10Stream {
	return &Fig10Stream{lines: make([]string, n), ok: make([]bool, n),
		chrome: make([]float64, n), firefox: make([]float64, n)}
}

// AddRow implements RowSink.
func (f *Fig10Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		f.lines[wi] = failedLine(w.Name)
		return
	}
	c := counterRatio(row, perf.L1ICacheLoadMisses, 1)
	fx := counterRatio(row, perf.L1ICacheLoadMisses, 2)
	f.ok[wi] = true
	f.chrome[wi], f.firefox[wi] = c, fx
	f.lines[wi] = fmt.Sprintf("%-16s %10.2f %10.2f\n", w.Name, c, fx)
}

// Render emits the figure.
func (f *Fig10Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 10 — L1-icache-load-misses relative to native\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "benchmark", "chrome", "firefox")
	for _, l := range f.lines {
		sb.WriteString(l)
	}
	fmt.Fprintf(&sb, "%-16s %10.2f %10.2f\n", "geomean",
		stats.Geomean(okFilter(f.chrome, f.ok)), stats.Geomean(okFilter(f.firefox, f.ok)))
	return sb.String()
}

// table4Events lists the Table 4 counters: the Figure 9 panels plus icache
// misses.
func table4Events() []perf.Event {
	return append(append([]perf.Event{}, Fig9Events...), perf.L1ICacheLoadMisses)
}

// Table4Stream accumulates the geomean counter-increase table.
type Table4Stream struct {
	ok      []bool
	chrome  [][]float64 // [event][workload]
	firefox [][]float64
}

// NewTable4Stream sizes the builder for n workloads.
func NewTable4Stream(n int) *Table4Stream {
	evs := table4Events()
	t := &Table4Stream{ok: make([]bool, n),
		chrome: make([][]float64, len(evs)), firefox: make([][]float64, len(evs))}
	for i := range evs {
		t.chrome[i] = make([]float64, n)
		t.firefox[i] = make([]float64, n)
	}
	return t
}

// AddRow implements RowSink.
func (t *Table4Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		return
	}
	t.ok[wi] = true
	for ei, ev := range table4Events() {
		t.chrome[ei][wi] = counterRatio(row, ev, 1)
		t.firefox[ei][wi] = counterRatio(row, ev, 2)
	}
}

// Render emits the table.
func (t *Table4Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4 — geomean of counter increases (SPEC, wasm vs native)\n")
	fmt.Fprintf(&sb, "%-26s %10s %10s\n", "counter", "chrome", "firefox")
	for ei, ev := range table4Events() {
		fmt.Fprintf(&sb, "%-26s %9.2fx %9.2fx\n", ev,
			stats.Geomean(okFilter(t.chrome[ei], t.ok)), stats.Geomean(okFilter(t.firefox[ei], t.ok)))
	}
	return sb.String()
}

// Fig1Stream accumulates the within-threshold counts of Figure 1.
type Fig1Stream struct {
	n      int
	counts map[float64]int
}

// NewFig1Stream sizes the builder for n workloads.
func NewFig1Stream(n int) *Fig1Stream {
	return &Fig1Stream{n: n, counts: map[float64]int{}}
}

// AddRow implements RowSink.
func (f *Fig1Stream) AddRow(wi int, w *workloads.Workload, row []*Result) {
	if !RowOK(row) {
		return
	}
	best := stats.Min([]float64{rel(row, 1), rel(row, 2)})
	for _, th := range []float64{1.1, 1.5, 2.0, 2.5} {
		if best < th {
			f.counts[th]++
		}
	}
}

// Render emits the figure.
func (f *Fig1Stream) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1 — # PolybenchC benchmarks within x of native\n")
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %8s\n", "series", "<1.1x", "<1.5x", "<2x", "<2.5x")
	for _, h := range Fig1Historical {
		fmt.Fprintf(&sb, "%-12s %8d %8d %8d %8d   (of 24; recorded from the paper)\n",
			h.Label, h.Counts[1.1], h.Counts[1.5], h.Counts[2.0], h.Counts[2.5])
	}
	fmt.Fprintf(&sb, "%-12s %8d %8d %8d %8d   (of %d; measured)\n",
		"This paper", f.counts[1.1], f.counts[1.5], f.counts[2.0], f.counts[2.5], f.n)
	return sb.String()
}

// Feed replays an already-materialized suite through sinks, in workload
// order. It is how the matrix-based figure helpers share the streaming
// renderers.
func (s *SuiteResults) Feed(sinks ...RowSink) {
	for wi, row := range s.R {
		for _, sk := range sinks {
			sk.AddRow(wi, s.Workloads[wi], row)
		}
	}
}
