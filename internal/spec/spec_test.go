package spec_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// TestMain prints the build-cache summary after the suite; a warm artifact
// store reports zero misses here.
func TestMain(m *testing.M) {
	code := m.Run()
	pipeline.ReportTotals("spec")
	os.Exit(code)
}

// TestRunSuiteAggregatesFailures is the regression test for the old
// first-error-only channel select: when several workloads fail, every
// failure must appear in the returned error.
func TestRunSuiteAggregatesFailures(t *testing.T) {
	h := spec.NewHarness()
	bad := func(name string, code int) *workloads.Workload {
		return &workloads.Workload{
			Name:   name,
			Source: fmt.Sprintf("int main() { return %d; }", code),
		}
	}
	ws := []*workloads.Workload{bad("bad-exit-a", 3), bad("bad-exit-b", 4)}
	_, err := h.RunSuite(ws, []*codegen.EngineConfig{codegen.Native()})
	if err == nil {
		t.Fatal("failing workloads must error")
	}
	for _, want := range []string{"bad-exit-a", "bad-exit-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate error missing %s: %v", want, err)
		}
	}
}

// TestHarnessResultsKeyedByConfigContent checks the result memo is
// content-addressed like the build cache: an ablated config under the stock
// engine name must get its own measurement, not the cached stock one.
func TestHarnessResultsKeyedByConfigContent(t *testing.T) {
	h := spec.NewHarness()
	w := &workloads.Workload{Name: "memo-probe", Source: spec.MatmulSource(10, 11, 12)}
	stock, err := h.Run(w, codegen.Chrome())
	if err != nil {
		t.Fatal(err)
	}
	ablated := codegen.Chrome() // same Name, different codegen
	ablated.StackCheck = false
	abl, err := h.Run(w, ablated)
	if err != nil {
		t.Fatal(err)
	}
	if stock.Counters.Instructions == abl.Counters.Instructions {
		t.Error("ablated config returned the stock engine's memoized result")
	}
}

// TestHarnessSingleBenchmark runs one benchmark through the full Figure 2
// chain (runspec -> specinvoke -> benchmark) and checks the recording.
func TestHarnessSingleBenchmark(t *testing.T) {
	h := spec.NewHarness()
	w := workloads.SPECCPU()[3] // 444.namd: medium-sized
	for _, cfg := range spec.EngineSet() {
		r, err := h.Run(w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if r.Seconds <= 0 {
			t.Errorf("%s: no time recorded", cfg.Name)
		}
		if r.Counters.Instructions == 0 {
			t.Errorf("%s: no instructions recorded", cfg.Name)
		}
		if r.Output == "" {
			t.Errorf("%s: no output", cfg.Name)
		}
	}
}

// TestWasmSlowerThanNativeOnSPEC checks the paper's headline direction:
// geomean slowdown > 1 for both browsers on a compute-bound subset.
func TestWasmSlowerThanNativeOnSPEC(t *testing.T) {
	h := spec.NewHarness()
	h.Logf = t.Logf // per-suite cache reporting
	names := map[string]bool{"444.namd": true, "453.povray": true, "473.astar": true}
	if testing.Short() {
		names = map[string]bool{"473.astar": true}
	}
	subset := []*workloads.Workload{}
	for _, w := range workloads.SPECCPU() {
		if names[w.Name] {
			subset = append(subset, w)
		}
	}
	rs, err := h.RunSuite(subset, spec.EngineSet())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range subset {
		n := rs[i][0].Seconds
		c := rs[i][1].Seconds
		f := rs[i][2].Seconds
		t.Logf("%s: native=%.2fms chrome=%.2fx firefox=%.2fx", w.Name, n*1000, c/n, f/n)
		if c <= n {
			t.Errorf("%s: chrome (%.3fms) not slower than native (%.3fms)", w.Name, c*1000, n*1000)
		}
		if f <= n {
			t.Errorf("%s: firefox (%.3fms) not slower than native (%.3fms)", w.Name, f*1000, n*1000)
		}
	}
}

// TestBrowsixOverheadSmall checks the Figure 4 claim: kernel time is a tiny
// share of a compute benchmark.
func TestBrowsixOverheadSmall(t *testing.T) {
	h := spec.NewHarness()
	w := workloads.SPECCPU()[3] // namd: few syscalls
	r, err := h.Run(w, codegen.Firefox())
	if err != nil {
		t.Fatal(err)
	}
	if r.BrowsixShare > 0.05 {
		t.Errorf("browsix share %.2f%% exceeds 5%%", r.BrowsixShare*100)
	}
}

func TestFig7Listings(t *testing.T) {
	s, err := spec.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "native") || !strings.Contains(s, "chrome") {
		t.Errorf("missing engines in fig7 output")
	}
	if !strings.Contains(s, "matmul") {
		t.Errorf("missing matmul listing")
	}
}

func TestTable3(t *testing.T) {
	s := spec.Table3()
	for _, want := range []string{"r81d0", "r82d0", "r00c4", "r01c4", "r1c0", "L1-icache-load-misses"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

// TestMcfAnomaly checks the paper's §6.3 anomaly: mcf runs at or below
// native speed in wasm because wasm32 pointers halve its working set.
func TestMcfAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("mcf is the largest workload")
	}
	h := spec.NewHarness()
	var mcf *workloads.Workload
	for _, w := range workloads.SPECCPU() {
		if w.Name == "429.mcf" {
			mcf = w
		}
	}
	rs, err := h.RunSuite([]*workloads.Workload{mcf}, spec.EngineSet())
	if err != nil {
		t.Fatal(err)
	}
	n := rs[0][0].Seconds
	c := rs[0][1].Seconds
	t.Logf("mcf: chrome/native = %.2f", c/n)
	if c/n > 1.15 {
		t.Errorf("mcf chrome slowdown %.2f; expected near or below 1.0 (pointer density)", c/n)
	}
}

// TestStreamingFiguresMatchMatrix runs a small suite both ways — streamed
// row by row through the figure builders via RunSuiteRows, and materialized
// through RunSuite + the matrix formatters — and demands byte-identical
// renderings. It also checks rows arrive exactly once per workload.
func TestStreamingFiguresMatchMatrix(t *testing.T) {
	h := spec.NewHarness()
	ws := workloads.Polybench()[:3]
	cfgs := spec.EngineSet()

	n := len(ws)
	fig1 := spec.NewFig1Stream(n)
	fig3 := spec.NewFig3Stream("Figure 3a — PolybenchC", n)
	tbl1 := spec.NewTable1Stream(n)
	fig4 := spec.NewFig4Stream(n)
	fig9 := spec.NewFig9Stream(n)
	fig10 := spec.NewFig10Stream(n)
	tbl4 := spec.NewTable4Stream(n)
	seen := make([]int, n)
	counter := rowCounter{seen: seen}
	if err := h.RunSuiteRows(context.Background(), ws, cfgs,
		fig1, fig3, tbl1, fig4, fig9, fig10, tbl4, counter); err != nil {
		t.Fatal(err)
	}
	for wi, c := range seen {
		if c != 1 {
			t.Errorf("workload %d delivered %d times, want 1", wi, c)
		}
	}

	// The matrix path reuses the harness's memoized results, so this adds
	// no simulation time.
	r, err := h.RunSuite(ws, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	s := &spec.SuiteResults{Workloads: ws, Engines: cfgs, R: r}
	checks := []struct {
		name, stream, matrix string
	}{
		{"fig1", fig1.Render(), spec.Fig1(s)},
		{"fig3", fig3.Render(), spec.Fig3(s, "Figure 3a — PolybenchC")},
		{"table1", tbl1.Render(), spec.Table1(s)},
		{"fig4", fig4.Render(), spec.Fig4(s)},
		{"fig9", fig9.Render(), spec.Fig9(s)},
		{"fig10", fig10.Render(), spec.Fig10(s)},
		{"table4", tbl4.Render(), spec.Table4(s)},
	}
	for _, c := range checks {
		if c.stream != c.matrix {
			t.Errorf("%s: streamed rendering differs from matrix rendering:\n--- stream\n%s\n--- matrix\n%s",
				c.name, c.stream, c.matrix)
		}
	}
}

// rowCounter counts deliveries per workload index.
type rowCounter struct{ seen []int }

func (c rowCounter) AddRow(wi int, w *workloads.Workload, row []*spec.Result) { c.seen[wi]++ }
