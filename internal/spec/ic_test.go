package spec_test

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/spec"
	"repro/internal/workloads"
)

func TestSjengICache(t *testing.T) {
	if testing.Short() {
		t.Skip("sjeng triple-engine run is slow")
	}
	h := spec.NewHarness()
	var w *workloads.Workload
	for _, x := range workloads.SPECCPU() {
		if x.Name == "458.sjeng" {
			w = x
		}
	}
	var miss [3]uint64
	var secs [3]float64
	for i, cfg := range []*codegen.EngineConfig{codegen.Native(), codegen.Chrome(), codegen.Firefox()} {
		r, err := h.Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		miss[i] = r.Counters.L1IMisses
		secs[i] = r.Seconds
	}
	t.Logf("L1I misses: native=%d chrome=%d (%.1fx) firefox=%d (%.1fx)",
		miss[0], miss[1], float64(miss[1])/float64(miss[0]), miss[2], float64(miss[2])/float64(miss[0]))
	t.Logf("time: chrome %.2fx firefox %.2fx", secs[1]/secs[0], secs[2]/secs[0])
	// The paper's §6.3 call-out: sjeng's wasm builds overflow the 32 KB L1
	// i-cache that the native build fits in (26.5x/18.6x more misses).
	if miss[1] < 10*miss[0] {
		t.Errorf("chrome L1I misses only %dx native; expected a blow-up", miss[1]/(miss[0]+1))
	}
	if miss[1] < miss[2] {
		t.Errorf("chrome should miss more than firefox (larger code)")
	}
}
