package spec_test

// The acceptance shape of the failure-containment work, end to end: with a
// panic injected into one workload's compile and a hang injected into
// another's exec, a degraded suite run completes — the two faulted
// workloads come back as typed failed rows (JobPanicError with a stack,
// TimeoutError with partial counters), every other row is bit-identical to
// a fault-free run, and the suite-level error is a SuiteFailure.
//
// The workload sources carry marker comments: comments lex away (identical
// artifacts) but change the pipeline cache key, so the fault-poisoned cache
// entries this test creates can never be served to the real suites.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workloads"
)

// degradedSrc builds a distinct spin workload: the marker comment isolates
// this test's cache keys, and the loop retires well past one watchdog poll
// interval so an armed deadline is actually observed.
func degradedSrc(name, marker string) string {
	return fmt.Sprintf(`/* degraded-suite-test %s %s */
int spin(int n) {
  int i; int acc;
  acc = 0;
  for (i = 0; i < n; i++) { acc += i * 3 + 1; }
  return acc;
}
int main() {
  int r; int k;
  r = 0;
  for (k = 0; k < 500; k++) { r += spin(10000); }
  print_int(r);
  print_nl();
  return 0;
}`, name, marker)
}

func degradedSuite(marker string) []*workloads.Workload {
	mk := func(name string) *workloads.Workload {
		return &workloads.Workload{Name: name, Source: degradedSrc(name, marker)}
	}
	return []*workloads.Workload{mk("deg-a"), mk("deg-b"), mk("deg-c"), mk("deg-d")}
}

func TestDegradedSuiteContainsInjectedFaults(t *testing.T) {
	if testing.Short() {
		// The wall-clock watchdog margin below assumes full-speed
		// simulation; under -race (CI runs it with -short) honest rows blow
		// the deadline too. Containment under race is covered by the codegen
		// fault stress test; this end-to-end shape runs in the full tier.
		t.Skip("wall-clock watchdog margins are not race-detector safe")
	}
	cfgs := []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()}

	// Fault-free reference run. deg-b gets a different marker here so the
	// faulted run's compile is a cache miss (the fault site lives inside the
	// build path; a memory hit would never reach it). Comments don't change
	// the artifact, so this does not perturb any measurement.
	base := degradedSuite("baseline")
	base[1].Source = degradedSrc("deg-b", "baseline-only")
	h0 := spec.NewHarness()
	baseRes, err := h0.RunSuite(base, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	disarm, err := fault.ArmSpec("compile@deg-b=panic:*,exec@deg-c=delay:*:4s")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	restore := pipeline.SetJobLimits(2*time.Second, 0)
	defer restore()

	faulted := degradedSuite("baseline")
	faulted[1].Source = degradedSrc("deg-b", "faulted-only")
	h1 := spec.NewHarness()
	h1.Degraded = true
	out, err := h1.RunSuiteContext(context.Background(), faulted, cfgs)
	if err == nil {
		t.Fatal("degraded run with armed faults must return an error")
	}
	var sf *spec.SuiteFailure
	if !errors.As(err, &sf) {
		t.Fatalf("error is not a SuiteFailure: %v", err)
	}
	if len(sf.Failures) != 4 || sf.Total != 8 {
		t.Fatalf("want 4 of 8 runs failed, got %d of %d: %v", len(sf.Failures), sf.Total, err)
	}
	if out == nil {
		t.Fatal("degraded run must still return the partial result matrix")
	}

	for wi, w := range faulted {
		for ci := range cfgs {
			r := out[wi][ci]
			switch w.Name {
			case "deg-b": // injected compile panic
				var pe *sched.JobPanicError
				if r.Err == nil || !errors.As(r.Err, &pe) {
					t.Errorf("%s/%s: want JobPanicError, got %v", w.Name, cfgs[ci].Name, r.Err)
					continue
				}
				if len(pe.Stack) == 0 {
					t.Errorf("%s/%s: contained panic lost its stack", w.Name, cfgs[ci].Name)
				}
			case "deg-c": // injected exec hang, killed by the watchdog
				var te *pipeline.TimeoutError
				if r.Err == nil || !errors.As(r.Err, &te) {
					t.Errorf("%s/%s: want TimeoutError, got %v", w.Name, cfgs[ci].Name, r.Err)
					continue
				}
				if !te.Wall {
					t.Errorf("%s/%s: watchdog kill should be wall-clock, got %+v", w.Name, cfgs[ci].Name, te)
				}
				if te.Partial.Instructions == 0 {
					t.Errorf("%s/%s: TimeoutError lost its partial counters", w.Name, cfgs[ci].Name)
				}
			default: // surviving rows: bit-identical to the fault-free run
				if r.Err != nil {
					t.Errorf("%s/%s: unfaulted run failed: %v", w.Name, cfgs[ci].Name, r.Err)
					continue
				}
				if !reflect.DeepEqual(r, baseRes[wi][ci]) {
					t.Errorf("%s/%s: result differs from fault-free run:\n got %+v\nwant %+v",
						w.Name, cfgs[ci].Name, r, baseRes[wi][ci])
				}
			}
		}
	}
}
