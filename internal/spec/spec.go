// Package spec implements Browsix-SPEC: the benchmark harness of §3 and
// Figure 2. It builds each workload per engine, constructs the filesystem
// image (speccmds.cmd plus inputs), spawns the runspec → specinvoke →
// benchmark process chain inside a Browsix-Wasm kernel, attaches the perf
// recorder between the runtime's perf_begin/perf_end marks, validates
// outputs across engines with a cmp equivalent, and aggregates results into
// the paper's tables and figures.
package spec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// runspecSrc is the runspec driver: it spawns specinvoke on the command
// file, mirroring the SPEC tooling chain of Figure 2 step 3.
const runspecSrc = `
int main(int argc, char **argv) {
  char *args[3];
  args[0] = "specinvoke";
  args[1] = argc > 1 ? argv[1] : "/spec/speccmds.cmd";
  args[2] = (char*)0;
  int pid = sys_spawn("/bin/specinvoke", args);
  if (pid < 0) { return 120; }
  return sys_wait(pid);
}`

// specinvokeSrc reads speccmds.cmd and spawns the benchmark with its
// arguments (SPEC's specinvoke, compiled from C sources in the paper).
const specinvokeSrc = `
char cmdbuf[1024];
char *argvv[16];
int main(int argc, char **argv) {
  if (argc < 2) { return 121; }
  int fd = sys_open(argv[1], 0, 0);
  if (fd < 0) { return 122; }
  int n = sys_read(fd, cmdbuf, 1023);
  sys_close(fd);
  if (n <= 0) { return 123; }
  cmdbuf[n] = 0;
  int i = 0; int na = 0;
  while (cmdbuf[i] && cmdbuf[i] != '\n' && na < 15) {
    while (cmdbuf[i] == ' ') { cmdbuf[i] = 0; i++; }
    if (cmdbuf[i] == 0 || cmdbuf[i] == '\n') { break; }
    argvv[na] = &cmdbuf[i];
    na++;
    while (cmdbuf[i] && cmdbuf[i] != ' ' && cmdbuf[i] != '\n') { i++; }
  }
  if (cmdbuf[i] == '\n') { cmdbuf[i] = 0; }
  argvv[na] = (char*)0;
  if (na == 0) { return 124; }
  int pid = sys_spawn(argvv[0], argvv);
  if (pid < 0) { return 125; }
  return sys_wait(pid);
}`

// Result is one benchmark execution under one engine.
type Result struct {
	Bench  string
	Engine string
	// Err marks a failed run in a degraded suite: the workload/engine pair
	// that failed and why (a JobPanicError, a pipeline.TimeoutError, an
	// ordinary build or run error). All measurement fields are zero when Err
	// is set; sinks render such rows as FAILED instead of plotting them.
	Err error
	// Seconds is simulated wall time between the perf marks.
	Seconds float64
	// Counters are the perf-recorded interval counters.
	Counters perf.Counters
	// BrowsixShare is time spent in the kernel/transport (Figure 4).
	BrowsixShare float64
	Syscalls     uint64
	// Output is the validated program output (console).
	Output string
	// CompileSeconds is the engine's code-generation time (Table 2).
	CompileSeconds float64
	// CodeBytes is the generated text size.
	CodeBytes uint32
}

// Harness memoizes runs (executions are deterministic). Builds are not
// harness state: they come from the process-wide content-addressed cache in
// internal/pipeline, so concurrent harnesses share compiles.
type Harness struct {
	// Workers bounds suite parallelism; 0 selects the scheduler default
	// (GOMAXPROCS).
	Workers int

	// Fidelity and SampleWindows select the simulation tier for the
	// harness-owned suites (RunSPEC, RunPolybench, RunAsmJS). The zero value
	// is the exact tier — today's behavior. Callers that pass their own
	// configs to RunSuite set the tier on the configs instead
	// (codegen.EngineConfig.ApplyFidelity).
	Fidelity      codegen.Fidelity
	SampleWindows codegen.SampleWindows

	// Logf, when set, receives per-suite reporting (the build-cache traffic
	// a RunSuite generated: memory hits, disk hits, compiles). Wire it to
	// t.Logf / b.Logf in tests and benchmarks.
	Logf func(format string, args ...any)

	// Degraded makes suite runs survive individual failures: a workload ×
	// engine run that fails (build error, panic, watchdog timeout, output
	// mismatch) becomes a Result with Err set, its row is still delivered
	// to the sinks (rendered as FAILED), and RunSuiteRows returns a
	// *SuiteFailure summarizing every failure — nonzero exit, zero lost
	// rows. Without it, the first failure aborts the suite (the historical
	// strict behavior tests rely on).
	Degraded bool

	mu      sync.Mutex
	results map[string]*Result
}

// FailedRun is one failed workload × engine execution in a degraded suite.
type FailedRun struct {
	Bench  string
	Engine string
	Err    error
}

// SuiteFailure is the error a degraded suite run returns when any run
// failed: the suite completed (every surviving row was measured, validated,
// and delivered) but the run as a whole must not read as clean.
type SuiteFailure struct {
	Failures []FailedRun
	// Total is the number of workload × engine runs attempted.
	Total int
}

func (e *SuiteFailure) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "spec: %d of %d runs failed (degraded suite)", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		msg := f.Err.Error()
		// Keep the summary one line per failure; panic stacks stay
		// available through errors.As on the Failures slice.
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..."
		}
		fmt.Fprintf(&sb, "\n  %s on %s: %s", f.Bench, f.Engine, msg)
	}
	return sb.String()
}

// NewHarness returns an empty harness.
func NewHarness() *Harness {
	return &Harness{
		results: map[string]*Result{},
	}
}

// EngineSet returns the paper's engines in presentation order.
func EngineSet() []*codegen.EngineConfig {
	return []*codegen.EngineConfig{
		codegen.Native(), codegen.Chrome(), codegen.Firefox(),
	}
}

// AsmJSEngines returns the asm.js configurations (Figures 5 and 6).
func AsmJSEngines() []*codegen.EngineConfig {
	return []*codegen.EngineConfig{codegen.AsmJSChrome(), codegen.AsmJSFirefox()}
}

// build compiles src for cfg through the shared pipeline cache; key is only
// used for error context, and ctx only for scheduler-budget accounting
// (see pipeline.Compile).
func (h *Harness) build(ctx context.Context, key, src string, cfg *codegen.EngineConfig) (*codegen.CompiledModule, error) {
	cm, err := pipeline.Compile(ctx, &pipeline.Request{Module: src, Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("spec: building %s for %s: %w", key, cfg.Name, err)
	}
	return cm, nil
}

// Run executes workload w under engine cfg through the full Figure 2 chain
// and returns the measurement. Results are memoized under the same content
// address as builds, so configs that differ in any field — not just the
// name — never share a measurement.
func (h *Harness) Run(w *workloads.Workload, cfg *codegen.EngineConfig) (*Result, error) {
	return h.RunContext(context.Background(), w, cfg)
}

// RunContext is Run under a caller context: the whole process chain
// (runspec, specinvoke, the benchmark) polls ctx while simulating, so
// cancellation preempts an in-flight measurement, not just queued ones.
// The per-job watchdog (pipeline.JobLimits) rides the same polling; a
// tripped limit returns a pipeline.TimeoutError with partial counters.
func (h *Harness) RunContext(ctx context.Context, w *workloads.Workload, cfg *codegen.EngineConfig) (*Result, error) {
	if fault.Enabled() && fault.LabelOf(ctx) == "" {
		// Key the compile/exec fault sites under this run by workload name,
		// so a rule can target one workload out of the suite.
		ctx = fault.WithLabel(ctx, w.Name)
	}
	key := w.Name + "/" + pipeline.Key(w.Source, cfg)
	h.mu.Lock()
	if r, ok := h.results[key]; ok {
		h.mu.Unlock()
		return r, nil
	}
	h.mu.Unlock()

	benchBin, err := h.build(ctx, w.Name, w.Source, cfg)
	if err != nil {
		return nil, err
	}
	runspecBin, err := h.build(ctx, "runspec", runspecSrc, cfg)
	if err != nil {
		return nil, err
	}
	specinvBin, err := h.build(ctx, "specinvoke", specinvokeSrc, cfg)
	if err != nil {
		return nil, err
	}

	// Filesystem image: command file plus workload inputs.
	k := kernel.New(nil)
	k.Ctx = ctx
	timeout, maxInsts := pipeline.JobLimits()
	if timeout > 0 {
		// One deadline for the whole process chain: when the watchdog kills
		// the hung benchmark, runspec (blocked in sys_wait) resumes and
		// trips the same deadline at its own next poll, so the WaitPID below
		// surfaces the kill no matter which process hung.
		k.Deadline = time.Now().Add(timeout)
	}
	k.MaxInsts = maxInsts
	// The exec fault site sits after the deadline is armed: an injected
	// delay ("hang") burns the job's wall-clock budget, and the watchdog
	// kills the run at its first interrupt poll — partial counters included.
	if err := fault.Check(fault.SiteExec, w.Name); err != nil {
		return nil, fmt.Errorf("spec: %s on %s: %w", w.Name, cfg.Name, err)
	}
	if err := k.FS.MkdirAll("/spec"); err != nil {
		return nil, err
	}
	cmdline := "/bin/" + w.Name
	for _, a := range w.Args {
		cmdline += " " + a
	}
	if err := k.FS.WriteFile("/spec/speccmds.cmd", []byte(cmdline+"\n")); err != nil {
		return nil, err
	}
	for p, data := range w.Files {
		if err := k.FS.WriteFileAll(p, data); err != nil {
			return nil, err
		}
	}
	k.RegisterBinary("/bin/"+w.Name, benchBin)
	k.RegisterBinary("/bin/runspec", runspecBin)
	k.RegisterBinary("/bin/specinvoke", specinvBin)

	// Perf recorder between the benchmark's perf marks (Figure 2 steps
	// 4-6). Only the benchmark process is recorded, not runspec/specinvoke.
	res := &Result{Bench: w.Name, Engine: cfg.Name}
	var base perf.Counters
	var browsixBase uint64
	benchPath := "/bin/" + w.Name
	k.Hooks = kernel.PerfHooks{
		Begin: func(p *kernel.Process) {
			if p.Path != benchPath {
				return
			}
			p.Inst.FlushCycles()
			base = p.Inst.Counters
			browsixBase = p.BrowsixCycles
		},
		End: func(p *kernel.Process) {
			if p.Path != benchPath {
				return
			}
			p.Inst.FlushCycles()
			res.Counters = p.Inst.Counters.Sub(&base)
			res.Seconds = res.Counters.Seconds()
			browsix := p.BrowsixCycles - browsixBase
			if res.Counters.Cycles > 0 {
				res.BrowsixShare = float64(browsix) / float64(res.Counters.Cycles)
			}
			res.Syscalls = p.Syscalls
		},
	}

	proc, err := k.Spawn(nil, "/bin/runspec", []string{"runspec", "/spec/speccmds.cmd"}, [3]*kernel.FD{})
	if err != nil {
		return nil, err
	}
	code, err := k.WaitPID(proc.PID)
	if err != nil {
		var we *kernel.WatchdogError
		if errors.As(err, &we) {
			// Partial is the waited root's counters (runspec): the killed
			// benchmark's own counters die with its process, but the
			// interval data up to the kill is real — flushed on the
			// interrupt path — and enough to show how far the job got.
			return nil, &pipeline.TimeoutError{
				Label:    w.Name,
				Wall:     we.Wall,
				Timeout:  timeout,
				MaxInsts: maxInsts,
				Partial:  proc.Inst.Counters,
			}
		}
		return nil, fmt.Errorf("spec: %s on %s: %w", w.Name, cfg.Name, err)
	}
	if code != 0 {
		return nil, fmt.Errorf("spec: %s on %s: exit code %d (output %q)", w.Name, cfg.Name, code, string(k.Console))
	}
	res.Output = string(k.Console)
	res.CompileSeconds = benchBin.CompileTime.Seconds()
	res.CodeBytes = benchBin.Prog.CodeBytes

	h.mu.Lock()
	h.results[key] = res
	h.mu.Unlock()
	return res, nil
}

// RunSuite runs every workload in ws under every engine in cfgs, validating
// outputs across engines with the cmp check, and returns results indexed
// [workload][engine].
func (h *Harness) RunSuite(ws []*workloads.Workload, cfgs []*codegen.EngineConfig) ([][]*Result, error) {
	return h.RunSuiteContext(context.Background(), ws, cfgs)
}

// RunSuiteContext is RunSuite under a caller context: cancellation stops the
// suite early. Executions run in parallel on the pipeline scheduler (each is
// fully isolated in its own kernel), bounded by h.Workers, and every failing
// workload/engine pair is reported in the returned error, not just the
// first. The matrix is collected from the streaming core (RunSuiteRows);
// callers that only need figures can use RunSuiteRows directly and skip the
// materialization.
func (h *Harness) RunSuiteContext(ctx context.Context, ws []*workloads.Workload, cfgs []*codegen.EngineConfig) ([][]*Result, error) {
	out := make([][]*Result, len(ws))
	err := h.RunSuiteRows(ctx, ws, cfgs, rowCollector(out))
	var sf *SuiteFailure
	if err != nil && !errors.As(err, &sf) {
		return nil, err
	}
	// A degraded run returns the partial matrix alongside the SuiteFailure:
	// surviving rows are real measurements, failed rows carry Err-marked
	// entries, and the caller decides whether to render despite the error.
	return out, err
}

// rowCollector is the RowSink that materializes the [][]*Result matrix for
// the compatibility API.
type rowCollector [][]*Result

// AddRow implements RowSink.
func (c rowCollector) AddRow(wi int, w *workloads.Workload, row []*Result) {
	c[wi] = append([]*Result(nil), row...)
}

// RunSuiteRows runs every workload in ws under every engine in cfgs and
// streams each workload's validated row (results across cfgs, in engine
// order) into the sinks as it completes, instead of materializing the full
// [][]*Result matrix: a row is delivered once — under a lock, in completion
// order, cmp-validated across engines — and dropped immediately after, so
// peak memory is bounded by the rows in flight, not the suite size. Sinks
// index by the workload position wi to reassemble ordered output (the
// figure builders in figures_stream.go do exactly that).
func (h *Harness) RunSuiteRows(ctx context.Context, ws []*workloads.Workload, cfgs []*codegen.EngineConfig, sinks ...RowSink) error {
	before := pipeline.Stats()
	type rowState struct {
		row  []*Result
		left int
	}
	states := make([]rowState, len(ws))
	for wi := range states {
		states[wi] = rowState{row: make([]*Result, len(cfgs)), left: len(cfgs)}
	}
	var mu sync.Mutex
	var failures []FailedRun
	jobs := make([]pipeline.WeightedJob, 0, len(ws)*len(cfgs))
	for wi := range ws {
		for ci := range cfgs {
			wi, ci := wi, ci
			jobs = append(jobs, pipeline.WeightedJob{Weight: ws[wi].ExpectedInstructions(), Run: func(ctx context.Context) error {
				if err := ctx.Err(); err != nil {
					return nil // the scheduler reports the cancellation
				}
				r, err := h.runContained(ctx, ws[wi], cfgs[ci])
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if !h.Degraded {
						return err
					}
					// Degraded: the failure becomes a marked row entry and a
					// summary line; the suite keeps going.
					failures = append(failures, FailedRun{ws[wi].Name, cfgs[ci].Name, err})
					r = &Result{Bench: ws[wi].Name, Engine: cfgs[ci].Name, Err: err}
				}
				st := &states[wi]
				st.row[ci] = r
				st.left--
				if st.left > 0 {
					return nil
				}
				// Last engine in: validate, deliver, drop. A row with a
				// failed entry skips cmp validation (there is nothing to
				// compare) but is still delivered so sinks render it FAILED.
				row := st.row
				st.row = nil
				if RowOK(row) {
					for i := 1; i < len(row); i++ {
						if row[i].Output != row[0].Output {
							err := fmt.Errorf("spec: %s: output mismatch between %s and %s",
								ws[wi].Name, row[0].Engine, row[i].Engine)
							if !h.Degraded {
								return err
							}
							failures = append(failures, FailedRun{ws[wi].Name, row[i].Engine, err})
							// Mark the whole row: a mismatch impeaches the
							// comparison, not one engine's measurement.
							marked := make([]*Result, len(row))
							for j, rr := range row {
								marked[j] = &Result{Bench: rr.Bench, Engine: rr.Engine, Err: err}
							}
							row = marked
							break
						}
					}
				}
				for _, sk := range sinks {
					sk.AddRow(wi, ws[wi], row)
				}
				return nil
			}})
		}
	}
	// Weighted dispatch: heavy workloads (by expected simulated
	// instructions) are claimed first, so one long SPEC program overlaps
	// the cheap Polybench kernels instead of starting after them.
	err := pipeline.RunJobsWeighted(ctx, h.Workers, jobs)
	if h.Logf != nil {
		h.Logf("spec suite (%d workloads × %d engines) cache: %v",
			len(ws), len(cfgs), pipeline.Stats().Sub(before))
		if len(failures) > 0 {
			h.Logf("spec suite: %d of %d runs failed (degraded)", len(failures), len(jobs))
		}
	}
	if len(failures) > 0 {
		err = errors.Join(err, &SuiteFailure{Failures: failures, Total: len(jobs)})
	}
	return err
}

// runContained is RunContext with the same panic containment the scheduler
// applies at job boundaries, so a degraded suite can turn a panicking run —
// an injected compile fault, an engine bug — into a failed row instead of a
// failed job (which would abandon the whole row's accounting).
func (h *Harness) runContained(ctx context.Context, w *workloads.Workload, cfg *codegen.EngineConfig) (r *Result, err error) {
	defer func() {
		if pe := sched.CapturePanic(w.Name+" on "+cfg.Name, recover()); pe != nil {
			r, err = nil, pe
		}
	}()
	return h.RunContext(ctx, w, cfg)
}
