package cpu

// Sampled-fidelity engine: SMARTS-style interval sampling. Execution
// alternates between the functional fast path (exec_functional.go) and
// detailed windows run on the exact engine, on a deterministic schedule
// measured in retired instructions — so two runs of the same program
// produce identical counters regardless of host timing or scheduling.
//
// Each period of samplePeriod instructions is laid out as
//
//	[ warm-up (exact, timing discarded) | detailed window (exact, measured) |
//	  functional fast-forward ]
//
// except the first, which has no warm-up: at program start the exact tier's
// caches and predictor are just as cold, so a program shorter than one
// detailed window retires entirely inside the first measured window and the
// sampled tier is bit-identical to exact. Fast-forward segments use SMARTS
// functional warming: loads, stores, and conditional branches update cache
// tags, LRU order, and predictor direction counters (Machine.warm) without
// charging any timing, so a detailed window measures warm-structure rates
// rather than re-paying compulsory misses after every gap. The exact-mode
// warm-up prefix before each later window then settles the short-lived
// state warming does not model (the way-predictor MRU, the last-line
// registers); its timing contribution is discarded.
//
// Cycles (and the icache misses feeding them) are extrapolated: at the end
// of each measured window the window's per-instruction rates are scaled
// over the instructions retired since the previous window's end (the
// fast-forwarded gap plus the warm-up), and any tail after the last window
// is scaled from the whole-run measured averages. Data-cache misses and
// branch mispredicts are NOT extrapolated — warming counts them exactly —
// and architectural counters (instructions, loads, stores, branches) are
// exact by construction in every tier.

import "repro/internal/codegen"

// Fidelity re-exports the codegen knob so machine-level code and tests can
// name tiers without importing codegen.
type Fidelity = codegen.Fidelity

// Fidelity tiers (see codegen.Fidelity).
const (
	FidelityExact      = codegen.FidelityExact
	FidelityFunctional = codegen.FidelityFunctional
	FidelitySampled    = codegen.FidelitySampled
)

// Default sampled-tier schedule, in retired instructions: a 50k-instruction
// detailed window preceded by a 25k warm-up out of every 500k instructions
// — a 10% detailed duty cycle. The period is deliberately short: with the
// cache and predictor misses counted exactly by warming, cycle error is
// dominated by how well the windows sample the program's instruction-mix
// phases, and halving the period from 1M cut worst-case cycle error on the
// Polybench measurement set from ~6.4% to ~1.5%.
const (
	DefaultSamplePeriod = 500_000
	DefaultSampleDetail = 50_000
	DefaultSampleWarmup = 25_000
)

// SetFidelity selects the simulation tier and, for the sampled tier, the
// window schedule (0 picks the defaults). Call before execution; switching
// tiers mid-run is not supported. The schedule is clamped so one period
// always fits its warm-up and detailed window.
func (m *Machine) SetFidelity(f Fidelity, period, detail, warmup uint64) {
	m.fid = f
	m.noTime = f == FidelityFunctional
	if f != FidelitySampled {
		return
	}
	if period == 0 {
		period = DefaultSamplePeriod
	}
	if detail == 0 {
		detail = DefaultSampleDetail
	}
	if warmup == 0 {
		warmup = DefaultSampleWarmup
	}
	if detail > period {
		detail = period
	}
	if warmup > period-detail {
		warmup = period - detail
	}
	m.samplePeriod, m.sampleDetail, m.sampleWarmup = period, detail, warmup
}

// timing is the counter subset the sampled tier actually samples: measured
// in detailed windows, discarded over warm-ups, extrapolated over
// functional gaps. It is cycles plus the icache misses feeding them — the
// data caches and the branch predictor are simulated always-on (functional
// warming counts their misses exactly; see Machine.dwarm), so those
// counters never pass through here.
type timing struct {
	cycles, l1i uint64
}

func (m *Machine) timingSnap() timing {
	return timing{m.Counters.Cycles, m.Counters.L1IMisses}
}

func (m *Machine) timingRestore(t timing) {
	m.Counters.Cycles, m.Counters.L1IMisses = t.cycles, t.l1i
}

func (t timing) sub(o timing) timing {
	return timing{t.cycles - o.cycles, t.l1i - o.l1i}
}

func (t *timing) add(o timing) {
	t.cycles += o.cycles
	t.l1i += o.l1i
}

// runSampled drives the warm-up / detailed-window / fast-forward schedule.
// Extrapolation state (smpStamp, smpMeas) persists across run() entries, so
// a module invoked several times (the Browsix chain) keeps one consistent
// measurement stream.
func (m *Machine) runSampled() error {
	defer func() {
		m.stopAt = ^uint64(0)
		m.noTime = false
		m.warm = false
	}()
	// No warm-up before the first window ever: exact starts cold too.
	warmed := m.Counters.Instructions > 0
	for !m.halted {
		pStart := m.Counters.Instructions
		if warmed {
			m.stopAt = pStart + m.sampleWarmup
			snap := m.timingSnap()
			err := m.runExact()
			m.timingRestore(snap)
			if err != nil {
				m.extrapolateTail()
				return err
			}
			if m.halted {
				break
			}
		}
		wStart := m.Counters.Instructions
		snap := m.timingSnap()
		m.stopAt = wStart + m.sampleDetail
		err := m.runExact()
		delta := m.timingSnap().sub(snap)
		w := m.Counters.Instructions - wStart
		m.smpMeasInsts += w
		m.smpMeas.add(delta)
		m.stampExtrapolate(delta, w)
		if err != nil {
			return err
		}
		if m.halted {
			break
		}
		m.stopAt = pStart + m.samplePeriod
		m.noTime = true
		m.warm = true
		err = m.runFunctional()
		m.noTime = false
		m.warm = false
		if err != nil {
			m.extrapolateTail()
			return err
		}
		warmed = true
	}
	m.extrapolateTail()
	return nil
}

// stampExtrapolate scales a just-measured window's timing counters over the
// instructions retired since the previous stamp (the fast-forwarded gap and
// the discarded warm-up). Integer scaling keeps the result deterministic;
// truncation error is at most one count per counter per window.
func (m *Machine) stampExtrapolate(delta timing, w uint64) {
	now := m.Counters.Instructions
	span := now - m.smpStamp
	if w > 0 && span > w {
		un := span - w
		m.Counters.Cycles += delta.cycles * un / w
		m.Counters.L1IMisses += delta.l1i * un / w
	}
	m.smpStamp = now
}

// extrapolateTail covers instructions retired since the last stamp (a final
// fast-forward segment, or an error/halt inside a warm-up) using the whole
// run's measured per-instruction averages.
func (m *Machine) extrapolateTail() {
	now := m.Counters.Instructions
	un := now - m.smpStamp
	if un > 0 && m.smpMeasInsts > 0 {
		m.Counters.Cycles += m.smpMeas.cycles * un / m.smpMeasInsts
		m.Counters.L1IMisses += m.smpMeas.l1i * un / m.smpMeasInsts
	}
	m.smpStamp = now
}
