package cpu

// Functional-fidelity engine: retires the same pre-decoded micro-op stream
// as the exact engine (exec.go) and produces bit-identical architectural
// state and exact-by-construction counters — Instructions, Loads, Stores,
// Branches, CondBranches — but models no icache, dcache, branch predictor,
// or cycles. That is the whole speedup: no per-instruction line compare, no
// cache walks, no quarter-cycle accumulation, and the hot loop carries only
// two values in locals — rip and a signed countdown to the next
// machine-level event — so both stay enregistered across the dispatch
// switch. Counter fields are bumped directly on m.Counters (an L1-resident
// memory add, exactly like the exact engine) except Instructions, which is
// reconstructed from the countdown at sync points: Instructions =
// limit - rem, so its per-instruction cost is the decrement the loop
// condition needs anyway.
//
// Structure: runFunctional is the outer loop. It computes how far the inner
// chunk may run without observing machine-level events — the segment stop
// (stopAt, set by the sampled driver), the interrupt poll point (pollAt),
// and the instruction budget — and funcChunk then pays exactly one
// countdown decrement per instruction for all three. Chunk boundaries re-check the events with
// the same semantics as the exact engine's per-instruction checks.
//
// Unspecialized shapes fall back to the legacy single-instruction
// interpreter (m.exec), exactly like the exact engine's uSlow arm; the
// noTime gates in dcache/branchTo/FlushCycles keep that path — and every
// generic load/store — free of timing side effects.

import (
	"repro/internal/x86"

	"encoding/binary"
	"math"
)

func (m *Machine) runFunctional() error {
	ops := m.uops
	for !m.halted {
		limit := m.stopAt
		if m.pollAt < limit {
			limit = m.pollAt
		}
		budget := ^uint64(0)
		if m.MaxInstructions > 0 {
			budget = m.MaxInstructions
			if budget < limit {
				limit = budget
			}
		}
		// Bound the chunk span so the countdown fits comfortably in int64
		// even when every limit is the ^0 "disabled" sentinel; the outer
		// loop re-enters cheaply. A clamped limit is below the budget by
		// construction, so fused pairs cannot cross the budget mid-chunk.
		tight := budget == limit
		const maxChunk = 1 << 30
		if n := m.Counters.Instructions; limit-n > maxChunk {
			limit = n + maxChunk
			tight = false
		}
		if err := m.funcChunk(ops, limit, tight); err != nil {
			m.FlushCycles()
			return err
		}
		if m.halted {
			break
		}
		n := m.Counters.Instructions
		if n >= m.stopAt {
			m.FlushCycles()
			return nil
		}
		if n >= budget {
			// Match the exact engine's budget semantics: the instruction
			// that would exceed the budget is counted but not executed, and
			// the trap carries its PC.
			m.Counters.Instructions++
			return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
		}
		if n >= m.pollAt {
			m.pollAt = n + m.pollEvery
			if err := m.interrupt(); err != nil {
				m.FlushCycles()
				return err
			}
		}
	}
	m.FlushCycles()
	return nil
}

// funcChunk retires micro-ops until Instructions reaches limit, an error
// occurs, or the program halts. The instruction count is carried as the
// signed countdown rem = limit - Instructions: the loop condition and the
// per-instruction decrement are one operation, and a fused
// compare-and-branch pair may legitimately drive it to -1 (the pair's
// second retirement crossing the limit), which the signed exit arithmetic
// folds back into the counter. budgetTight reports that limit IS the
// instruction budget, so the fused arms' mid-dispatch budget check reduces
// to a sign test. m.rip is synced before any call-out that can observe
// machine state (host calls, the uSlow fallback, generic loads/stores that
// trap with m.rip).
func (m *Machine) funcChunk(ops []uop, limit uint64, budgetTight bool) error {
	rip := m.rip
	rem := int64(limit - m.Counters.Instructions)
	warm := m.warm // sampled fast-forward: keep caches and BP state hot
	var err error

loop:
	for rem > 0 {
		if uint(rip) >= uint(len(ops)) {
			err = &TrapError{Msg: "execution left code segment", PC: rip}
			break loop
		}
		u := &ops[rip]
		rem--

		switch u.kind {
		case uSlow:
			// Sync rip and the count: the legacy interpreter traps with
			// m.rip, and an OCallHost shape would let perf hooks snapshot
			// counters.
			m.rip = rip
			m.Counters.Instructions = limit - uint64(rem)
			if err = m.exec(&m.Prog.Code[rip]); err != nil {
				break loop
			}
			rip = m.rip
			if m.halted {
				break loop
			}

		case uNop:
			rip++

		case uMovRR:
			v := m.Regs[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uMovRI:
			m.Regs[u.dst] = u.imm
			rip++

		case uMovLoad:
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Regs[u.dst] = v
			rip++

		case uMovStore:
			m.rip = rip
			if err = m.store(m.uea(u), u.w, m.Regs[u.src]); err != nil {
				break loop
			}
			rip++

		case uMovStoreI:
			m.rip = rip
			if err = m.store(m.uea(u), u.w, u.imm); err != nil {
				break loop
			}
			rip++

		case uExtR:
			v := extend(m.Regs[u.src], u.alu)
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uExtM:
			a := m.uea(u)
			w := extWidth[u.alu]
			if s, off, ok := m.fastSlab(a, uint32(w)); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				var v uint64
				switch w {
				case 1:
					v = uint64(s[off])
				case 2:
					v = uint64(binary.LittleEndian.Uint16(s[off:]))
				default:
					v = uint64(binary.LittleEndian.Uint32(s[off:]))
				}
				v = extend(v, u.alu)
				if u.w == 4 {
					v = uint64(uint32(v))
				}
				m.Regs[u.dst] = v
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, w); err != nil {
					break loop
				}
				v = extend(v, u.alu)
				if u.w == 4 {
					v = uint64(uint32(v))
				}
				m.Regs[u.dst] = v
				rip++
			}

		case uLea:
			v := uint64(m.uea(u))
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uAluRR:
			m.Regs[u.dst] = funcAluOp(u, m.Regs[u.dst], m.Regs[u.src])
			rip++

		case uAluRI:
			m.Regs[u.dst] = funcAluOp(u, m.Regs[u.dst], u.imm)
			rip++

		case uAluRM:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, uint32(u.w)); ok && u.w >= 4 {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				var b uint64
				if u.w == 4 {
					b = uint64(binary.LittleEndian.Uint32(s[off:]))
				} else {
					b = binary.LittleEndian.Uint64(s[off:])
				}
				m.Regs[u.dst] = funcAluOp(u, m.Regs[u.dst], b)
				rip++
			} else {
				m.rip = rip
				var b uint64
				if b, err = m.load(a, u.w); err != nil {
					break loop
				}
				m.Regs[u.dst] = funcAluOp(u, m.Regs[u.dst], b)
				rip++
			}

		case uAluMR:
			m.rip = rip
			ea := m.uea(u)
			var a uint64
			if a, err = m.load(ea, u.w); err != nil {
				break loop
			}
			if err = m.store(ea, u.w, funcAluOp(u, a, m.Regs[u.src])); err != nil {
				break loop
			}
			rip++

		case uAluMI:
			m.rip = rip
			ea := m.uea(u)
			var a uint64
			if a, err = m.load(ea, u.w); err != nil {
				break loop
			}
			if err = m.store(ea, u.w, funcAluOp(u, a, u.imm)); err != nil {
				break loop
			}
			rip++

		case uShiftR:
			var s uint
			if u.w == 4 {
				s = uint(m.Regs[u.src] & 31)
			} else {
				s = uint(m.Regs[u.src] & 63)
			}
			m.Regs[u.dst] = shiftOp(u, m.Regs[u.dst], s)
			rip++

		case uShiftI:
			m.Regs[u.dst] = shiftOp(u, m.Regs[u.dst], uint(u.imm))
			rip++

		case uNegR:
			v := -m.Regs[u.dst]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uNotR:
			v := ^m.Regs[u.dst]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uBitR:
			m.Regs[u.dst] = bitOp(u, m.Regs[u.src])
			rip++

		case uBitM:
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Regs[u.dst] = bitOp(u, v)
			rip++

		case uCdq:
			m.execCdq(u.w)
			rip++

		case uDivR:
			m.rip = rip
			d := m.Regs[u.dst]
			if u.w == 4 {
				d = uint64(uint32(d))
			}
			if err = m.execDiv(d, u.w, u.alu == 1); err != nil {
				break loop
			}
			rip++

		case uDivM:
			m.rip = rip
			var d uint64
			if d, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			if err = m.execDiv(d, u.w, u.alu == 1); err != nil {
				break loop
			}
			rip++

		case uCmpRR:
			m.setCmpFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			rip++

		case uCmpRI:
			m.setCmpFlags(m.Regs[u.dst], u.imm, u.w)
			rip++

		case uCmpRM:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, uint32(u.w)); ok && u.w >= 4 {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				var b uint64
				if u.w == 4 {
					b = uint64(binary.LittleEndian.Uint32(s[off:]))
				} else {
					b = binary.LittleEndian.Uint64(s[off:])
				}
				m.setCmpFlags(m.Regs[u.dst], b, u.w)
				rip++
			} else {
				m.rip = rip
				var b uint64
				if b, err = m.load(a, u.w); err != nil {
					break loop
				}
				m.setCmpFlags(m.Regs[u.dst], b, u.w)
				rip++
			}

		case uCmpMR:
			m.rip = rip
			var a uint64
			if a, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.setCmpFlags(a, m.Regs[u.src], u.w)
			rip++

		case uCmpMI:
			m.rip = rip
			var a uint64
			if a, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.setCmpFlags(a, u.imm, u.w)
			rip++

		case uTestRR:
			m.setTestFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			rip++

		case uTestRI:
			m.setTestFlags(m.Regs[u.dst], u.imm, u.w)
			rip++

		case uSet:
			var v uint64
			if m.cc(u.cc) {
				v = 1
			}
			m.Regs[u.dst] = (m.Regs[u.dst] &^ 0xff) | v
			rip++

		case uCmovRR:
			if m.cc(u.cc) {
				v := m.Regs[u.src]
				if u.w == 4 {
					v = uint64(uint32(v))
				}
				m.Regs[u.dst] = v
			}
			rip++

		case uCmovRM:
			// cmov with a memory source performs the load either way.
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			if m.cc(u.cc) {
				m.Regs[u.dst] = v
			}
			rip++

		case uJmp:
			m.Counters.Branches++
			rip = int(u.tgt)

		case uJcc:
			m.Counters.Branches++
			m.Counters.CondBranches++
			taken := m.cc(u.cc)
			if warm && !m.BP.Predict(uint32(u.imm), taken) {
				m.Counters.BranchMiss++
			}
			if taken {
				rip = int(u.tgt)
			} else {
				rip++
			}

		case uJmpTable:
			targets := m.Prog.Code[rip].TableTargets
			idx := int(uint32(m.Regs[u.dst]))
			if idx < 0 || idx >= len(targets) {
				err = &TrapError{Msg: "jump table index out of range", PC: rip}
				break loop
			}
			m.Counters.Loads++ // table entry fetch
			m.Counters.Branches++
			rip = targets[idx]

		case uCall:
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint64(s[off:], uint64(rip+1))
			} else {
				m.rip = rip
				if err = m.store(a, 8, uint64(rip+1)); err != nil {
					break loop
				}
			}
			m.Counters.Branches++
			rip = int(u.tgt)

		case uCallR, uCallM:
			var t uint64
			if u.kind == uCallR {
				t = m.Regs[u.dst]
			} else {
				m.rip = rip
				if t, err = m.load(m.uea(u), 8); err != nil {
					break loop
				}
			}
			if t >= uint64(len(ops)) {
				err = &TrapError{Msg: "indirect call to invalid target", PC: rip}
				break loop
			}
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint64(s[off:], uint64(rip+1))
			} else {
				m.rip = rip
				if err = m.store(a, 8, uint64(rip+1)); err != nil {
					break loop
				}
			}
			m.Counters.Branches++
			rip = int(t)

		case uRet:
			a := uint32(m.Regs[x86.RSP])
			var ra uint64
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				ra = binary.LittleEndian.Uint64(s[off:])
			} else {
				m.rip = rip
				if ra, err = m.load(a, 8); err != nil {
					break loop
				}
			}
			m.Regs[x86.RSP] += 8
			m.Counters.Branches++
			if ra == haltSentinel {
				m.halted = true
				break loop
			}
			rip = int(ra)

		case uPushR:
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Regs[u.src])
				rip++
			} else {
				m.rip = rip
				if err = m.store(a, 8, m.Regs[u.src]); err != nil {
					break loop
				}
				rip++
			}

		case uPushI:
			m.rip = rip
			m.Regs[x86.RSP] -= 8
			if err = m.store(uint32(m.Regs[x86.RSP]), 8, u.imm); err != nil {
				break loop
			}
			rip++

		case uPushM:
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), 8); err != nil {
				break loop
			}
			m.Regs[x86.RSP] -= 8
			if err = m.store(uint32(m.Regs[x86.RSP]), 8, v); err != nil {
				break loop
			}
			rip++

		case uPop:
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				m.Regs[x86.RSP] += 8
				m.Regs[u.dst] = binary.LittleEndian.Uint64(s[off:])
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, 8); err != nil {
					break loop
				}
				m.Regs[x86.RSP] += 8
				m.Regs[u.dst] = v
				rip++
			}

		case uUd2:
			err = &TrapError{Msg: "unreachable executed (ud2)", PC: rip}
			break loop

		case uCallHost:
			if m.Host == nil {
				err = &TrapError{Msg: "host call with no host bound", PC: rip}
				break loop
			}
			m.Counters.Branches++
			// Host handlers (syscalls, perf hooks) observe machine state:
			// sync rip and the count before the call.
			m.rip = rip
			m.Counters.Instructions = limit - uint64(rem)
			if err = m.Host(m, int(u.tgt)); err != nil {
				break loop
			}
			rip++

		case uMovsdRR:
			m.Xmm[u.dst] = m.Xmm[u.src]
			rip++

		case uMovsdLoad:
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Xmm[u.dst] = v
			rip++

		case uMovsdStore:
			m.rip = rip
			if err = m.store(m.uea(u), u.w, m.Xmm[u.src]); err != nil {
				break loop
			}
			rip++

		case uFAluRR:
			m.Xmm[u.dst] = bitsOf(funcFAluOp(u, f64of(m.Xmm[u.dst], u.w), f64of(m.Xmm[u.src], u.w)), u.w)
			rip++

		case uFAluRM:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, uint32(u.w)); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				var bv uint64
				if u.w == 4 {
					bv = uint64(binary.LittleEndian.Uint32(s[off:]))
				} else {
					bv = binary.LittleEndian.Uint64(s[off:])
				}
				m.Xmm[u.dst] = bitsOf(funcFAluOp(u, f64of(m.Xmm[u.dst], u.w), f64of(bv, u.w)), u.w)
				rip++
			} else {
				m.rip = rip
				var bv uint64
				if bv, err = m.load(a, u.w); err != nil {
					break loop
				}
				m.Xmm[u.dst] = bitsOf(funcFAluOp(u, f64of(m.Xmm[u.dst], u.w), f64of(bv, u.w)), u.w)
				rip++
			}

		case uSqrtR:
			m.Xmm[u.dst] = bitsOf(math.Sqrt(f64of(m.Xmm[u.src], u.w)), u.w)
			rip++

		case uSqrtM:
			m.rip = rip
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Xmm[u.dst] = bitsOf(math.Sqrt(f64of(bv, u.w)), u.w)
			rip++

		case uUcomiR:
			m.setUcomiFlags(f64of(m.Xmm[u.dst], u.w), f64of(m.Xmm[u.src], u.w))
			rip++

		case uUcomiM:
			m.rip = rip
			a := f64of(m.Xmm[u.dst], u.w)
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.setUcomiFlags(a, f64of(bv, u.w))
			rip++

		case uCvtSI2SDR:
			m.Xmm[u.dst] = math.Float64bits(cvtIntToF64(m.Regs[u.src], u.w, u.uns))
			rip++

		case uCvtSI2SDM:
			m.rip = rip
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Xmm[u.dst] = math.Float64bits(cvtIntToF64(v, u.w, u.uns))
			rip++

		case uCvtTSD2SIR:
			m.rip = rip
			var r uint64
			if r, err = m.cvtF64ToInt(f64of(m.Xmm[u.src], u.alu), u.w, u.uns); err != nil {
				break loop
			}
			m.Regs[u.dst] = r
			rip++

		case uCvtTSD2SIM:
			m.rip = rip
			var bv uint64
			if bv, err = m.load(m.uea(u), u.alu); err != nil {
				break loop
			}
			var r uint64
			if r, err = m.cvtF64ToInt(f64of(bv, u.alu), u.w, u.uns); err != nil {
				break loop
			}
			m.Regs[u.dst] = r
			rip++

		case uCvtSD2SSR:
			m.Xmm[u.dst] = cvtSD2SS(m.Xmm[u.src])
			rip++

		case uCvtSD2SSM:
			m.rip = rip
			var bv uint64
			if bv, err = m.load(m.uea(u), 8); err != nil {
				break loop
			}
			m.Xmm[u.dst] = cvtSD2SS(bv)
			rip++

		case uCvtSS2SDR:
			m.Xmm[u.dst] = cvtSS2SD(m.Xmm[u.src])
			rip++

		case uCvtSS2SDM:
			m.rip = rip
			var bv uint64
			if bv, err = m.load(m.uea(u), 4); err != nil {
				break loop
			}
			m.Xmm[u.dst] = cvtSS2SD(bv)
			rip++

		case uMovqXR:
			v := m.Regs[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Xmm[u.dst] = v
			rip++

		case uMovqRX:
			v := m.Xmm[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			rip++

		case uLogicXX:
			if u.alu == 0 {
				m.Xmm[u.dst] &= m.Xmm[u.src]
			} else {
				m.Xmm[u.dst] ^= m.Xmm[u.src]
			}
			rip++

		case uLogicXM:
			m.rip = rip
			var b uint64
			if b, err = m.load(m.uea(u), 8); err != nil {
				break loop
			}
			if u.alu == 0 {
				m.Xmm[u.dst] &= b
			} else {
				m.Xmm[u.dst] ^= b
			}
			rip++

		case uRoundR:
			m.Xmm[u.dst] = bitsOf(roundMode(f64of(m.Xmm[u.src], u.w), u.alu), u.w)
			rip++

		case uRoundM:
			m.rip = rip
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err != nil {
				break loop
			}
			m.Xmm[u.dst] = bitsOf(roundMode(f64of(bv, u.w), u.alu), u.w)
			rip++

		case uMovLoad64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				m.Regs[u.dst] = binary.LittleEndian.Uint64(s[off:])
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, 8); err != nil {
					break loop
				}
				m.Regs[u.dst] = v
				rip++
			}

		case uMovLoad32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				m.Regs[u.dst] = uint64(binary.LittleEndian.Uint32(s[off:]))
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, 4); err != nil {
					break loop
				}
				m.Regs[u.dst] = v
				rip++
			}

		case uMovStore64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Regs[u.src])
				rip++
			} else {
				m.rip = rip
				if err = m.store(a, 8, m.Regs[u.src]); err != nil {
					break loop
				}
				rip++
			}

		case uMovStore32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint32(s[off:], uint32(m.Regs[u.src]))
				rip++
			} else {
				m.rip = rip
				if err = m.store(a, 4, m.Regs[u.src]); err != nil {
					break loop
				}
				rip++
			}

		case uFLoad64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				m.Xmm[u.dst] = binary.LittleEndian.Uint64(s[off:])
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, 8); err != nil {
					break loop
				}
				m.Xmm[u.dst] = v
				rip++
			}

		case uFLoad32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Loads++
				if warm {
					m.dwarm(a)
				}
				m.Xmm[u.dst] = uint64(binary.LittleEndian.Uint32(s[off:]))
				rip++
			} else {
				m.rip = rip
				var v uint64
				if v, err = m.load(a, 4); err != nil {
					break loop
				}
				m.Xmm[u.dst] = v
				rip++
			}

		case uFStore64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Xmm[u.src])
				rip++
			} else {
				m.rip = rip
				if err = m.store(a, 8, m.Xmm[u.src]); err != nil {
					break loop
				}
				rip++
			}

		case uFStore32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Stores++
				if warm {
					m.dwarm(a)
				}
				binary.LittleEndian.PutUint32(s[off:], uint32(m.Xmm[u.src]))
				rip++
			} else {
				m.rip = rip
				if err = m.store(a, 4, m.Xmm[u.src]); err != nil {
					break loop
				}
				rip++
			}

		case uCmpRRJcc:
			m.setCmpFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			rem--
			if budgetTight && rem < 0 {
				rip++
				err = &TrapError{Msg: "instruction budget exhausted", PC: rip}
				break loop
			}
			m.Counters.Branches++
			m.Counters.CondBranches++
			taken := m.cc(u.cc)
			if warm && !m.BP.Predict(uint32(u.disp), taken) {
				m.Counters.BranchMiss++
			}
			if taken {
				rip = int(u.tgt)
			} else {
				rip += 2
			}

		case uCmpRIJcc:
			m.setCmpFlags(m.Regs[u.dst], u.imm, u.w)
			rem--
			if budgetTight && rem < 0 {
				rip++
				err = &TrapError{Msg: "instruction budget exhausted", PC: rip}
				break loop
			}
			m.Counters.Branches++
			m.Counters.CondBranches++
			taken := m.cc(u.cc)
			if warm && !m.BP.Predict(uint32(u.disp), taken) {
				m.Counters.BranchMiss++
			}
			if taken {
				rip = int(u.tgt)
			} else {
				rip += 2
			}

		case uTestRRJcc:
			m.setTestFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			rem--
			if budgetTight && rem < 0 {
				rip++
				err = &TrapError{Msg: "instruction budget exhausted", PC: rip}
				break loop
			}
			m.Counters.Branches++
			m.Counters.CondBranches++
			taken := m.cc(u.cc)
			if warm && !m.BP.Predict(uint32(u.disp), taken) {
				m.Counters.BranchMiss++
			}
			if taken {
				rip = int(u.tgt)
			} else {
				rip += 2
			}
		}
	}

	m.rip = rip
	// rem is -1 when a fused pair's second retirement crossed the limit; the
	// unsigned subtraction folds the overshoot back in (mod 2^64).
	m.Counters.Instructions = limit - uint64(rem)
	return err
}

// funcAluOp and funcFAluOp are the exact engine's ALU helpers minus the
// cycle-cost accumulation — the functional tier discards qacc anyway, and
// as pure functions they inline into the dispatch arms.
func funcAluOp(u *uop, a, b uint64) uint64 {
	var r uint64
	switch u.alu {
	case aluAdd:
		r = a + b
	case aluSub:
		r = a - b
	case aluAnd:
		r = a & b
	case aluOr:
		r = a | b
	case aluXor:
		r = a ^ b
	case aluImul:
		r = a * b
	}
	if u.w == 4 {
		r = uint64(uint32(r))
	}
	return r
}

func funcFAluOp(u *uop, a, b float64) float64 {
	var r float64
	switch u.alu {
	case fAdd:
		r = a + b
	case fSub:
		r = a - b
	case fMul:
		r = a * b
	case fDiv:
		r = a / b
	case fMin:
		r = wasmMin(a, b)
	case fMax:
		r = wasmMax(a, b)
	}
	if u.w == 4 {
		// float32 rounding at each step
		r = float64(float32(r))
	}
	return r
}
