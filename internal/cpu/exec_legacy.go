package cpu

// Legacy instruction-at-a-time interpreter. This is the original engine,
// retained for two reasons: it is the differential-testing oracle for the
// pre-decoded micro-op engine (see TestPredecodeMatchesLegacy), and it is
// the fallback executor for operand shapes the decoder does not specialize
// (micro-op kind uSlow). Counter and cycle accounting here is the reference
// semantics; the micro-op engine must match it bit-for-bit.

import (
	"math"
	"math/bits"

	"repro/internal/x86"
)

// runLegacy is the original fetch-decode-execute loop.
func (m *Machine) runLegacy() error {
	code := m.Prog.Code
	for !m.halted {
		if m.rip < 0 || m.rip >= len(code) {
			return &TrapError{Msg: "execution left code segment", PC: m.rip}
		}
		in := &code[m.rip]
		m.Counters.Instructions++ // qBase is charged in FlushCycles
		m.icache(in.Addr)
		if m.MaxInstructions > 0 && m.Counters.Instructions > m.MaxInstructions {
			return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
		}
		if m.Counters.Instructions >= m.pollAt {
			m.pollAt = m.Counters.Instructions + m.pollEvery
			if err := m.interrupt(); err != nil {
				m.FlushCycles()
				return err
			}
		}
		if err := m.exec(in); err != nil {
			m.FlushCycles()
			return err
		}
	}
	m.FlushCycles()
	return nil
}

func (m *Machine) exec(in *x86.Inst) error {
	switch in.Op {
	case x86.ONop:
		m.rip++

	case x86.OMov:
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		if in.Dst.Kind == x86.KMem {
			if err := m.store(m.ea(&in.Dst.Mem), in.W, v); err != nil {
				return err
			}
		} else {
			m.writeGP(in.Dst.Reg, in.W, v)
		}
		m.rip++

	case x86.OMovImm:
		m.writeGP(in.Dst.Reg, in.W, uint64(in.Src.Imm))
		m.rip++

	case x86.OMovZX8, x86.OMovZX16, x86.OMovSX8, x86.OMovSX16, x86.OMovSXD:
		var rw uint8 = 1
		switch in.Op {
		case x86.OMovZX16, x86.OMovSX16:
			rw = 2
		case x86.OMovSXD:
			rw = 4
		}
		v, err := m.readOperand(&in.Src, rw)
		if err != nil {
			return err
		}
		switch in.Op {
		case x86.OMovSX8:
			v = uint64(int64(int8(v)))
		case x86.OMovSX16:
			v = uint64(int64(int16(v)))
		case x86.OMovSXD:
			v = uint64(int64(int32(v)))
		case x86.OMovZX8:
			v &= 0xff
		case x86.OMovZX16:
			v &= 0xffff
		}
		m.writeGP(in.Dst.Reg, in.W, v)
		m.rip++

	case x86.OLea:
		m.writeGP(in.Dst.Reg, in.W, uint64(m.ea(&in.Src.Mem)))
		m.rip++

	case x86.OAdd, x86.OSub, x86.OAnd, x86.OOr, x86.OXor, x86.OImul:
		var a uint64
		var err error
		memDst := in.Dst.Kind == x86.KMem
		var ea uint32
		if memDst {
			ea = m.ea(&in.Dst.Mem)
			a, err = m.load(ea, in.W)
		} else {
			a, err = m.readOperand(&in.Dst, in.W)
		}
		if err != nil {
			return err
		}
		b, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		var r uint64
		switch in.Op {
		case x86.OAdd:
			r = a + b
		case x86.OSub:
			r = a - b
		case x86.OAnd:
			r = a & b
		case x86.OOr:
			r = a | b
		case x86.OXor:
			r = a ^ b
		case x86.OImul:
			r = a * b
			m.q(qMul)
		}
		if memDst {
			if err := m.store(ea, in.W, r); err != nil {
				return err
			}
		} else {
			m.writeGP(in.Dst.Reg, in.W, r)
		}
		m.rip++

	case x86.OShl, x86.OSar, x86.OShr, x86.ORol, x86.ORor:
		a, err := m.readOperand(&in.Dst, in.W)
		if err != nil {
			return err
		}
		b, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		var mask uint64 = 63
		if in.W == 4 {
			mask = 31
		}
		s := uint(b & mask)
		var r uint64
		switch in.Op {
		case x86.OShl:
			r = a << s
		case x86.OShr:
			if in.W == 4 {
				r = uint64(uint32(a) >> s)
			} else {
				r = a >> s
			}
		case x86.OSar:
			if in.W == 4 {
				r = uint64(uint32(int32(uint32(a)) >> s))
			} else {
				r = uint64(int64(a) >> s)
			}
		case x86.ORol:
			if in.W == 4 {
				r = uint64(bits.RotateLeft32(uint32(a), int(s)))
			} else {
				r = bits.RotateLeft64(a, int(s))
			}
		case x86.ORor:
			if in.W == 4 {
				r = uint64(bits.RotateLeft32(uint32(a), -int(s)))
			} else {
				r = bits.RotateLeft64(a, -int(s))
			}
		}
		m.writeGP(in.Dst.Reg, in.W, r)
		m.rip++

	case x86.ONeg:
		a, _ := m.readOperand(&in.Dst, in.W)
		m.writeGP(in.Dst.Reg, in.W, -a)
		m.rip++

	case x86.ONot:
		a, _ := m.readOperand(&in.Dst, in.W)
		m.writeGP(in.Dst.Reg, in.W, ^a)
		m.rip++

	case x86.OBsr: // modeled as lzcnt
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		var r uint64
		if in.W == 4 {
			r = uint64(bits.LeadingZeros32(uint32(v)))
		} else {
			r = uint64(bits.LeadingZeros64(v))
		}
		m.writeGP(in.Dst.Reg, in.W, r)
		m.rip++

	case x86.OBsf: // modeled as tzcnt
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		var r uint64
		if in.W == 4 {
			r = uint64(bits.TrailingZeros32(uint32(v)))
		} else {
			r = uint64(bits.TrailingZeros64(v))
		}
		m.writeGP(in.Dst.Reg, in.W, r)
		m.rip++

	case x86.OPopcnt:
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		if in.W == 4 {
			v = uint64(bits.OnesCount32(uint32(v)))
		} else {
			v = uint64(bits.OnesCount64(v))
		}
		m.writeGP(in.Dst.Reg, in.W, v)
		m.rip++

	case x86.OCdq:
		m.execCdq(in.W)
		m.rip++

	case x86.OIdiv, x86.ODiv:
		d, err := m.readOperand(&in.Dst, in.W)
		if err != nil {
			return err
		}
		if err := m.execDiv(d, in.W, in.Op == x86.OIdiv); err != nil {
			return err
		}
		m.rip++

	case x86.OCmp:
		a, err := m.readOperand(&in.Dst, in.W)
		if err != nil {
			return err
		}
		b, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.setCmpFlags(a, b, in.W)
		m.rip++

	case x86.OTest:
		a, err := m.readOperand(&in.Dst, in.W)
		if err != nil {
			return err
		}
		b, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.setTestFlags(a, b, in.W)
		m.rip++

	case x86.OSet:
		var v uint64
		if m.cc(in.CC) {
			v = 1
		}
		r := in.Dst.Reg
		m.Regs[r] = (m.Regs[r] &^ 0xff) | v
		m.rip++

	case x86.OCmov:
		if m.cc(in.CC) {
			v, err := m.readOperand(&in.Src, in.W)
			if err != nil {
				return err
			}
			m.writeGP(in.Dst.Reg, in.W, v)
		} else if in.Src.Kind == x86.KMem {
			// cmov with a memory source still performs the load.
			if _, err := m.load(m.ea(&in.Src.Mem), in.W); err != nil {
				return err
			}
		}
		m.rip++

	case x86.OJmp:
		m.branchTo(in.Target, false, true, in.Addr)

	case x86.OJcc:
		m.branchTo(in.Target, true, m.cc(in.CC), in.Addr)

	case x86.OJmpTable:
		idx := int(uint32(m.Regs[in.Dst.Reg]))
		if idx < 0 || idx >= len(in.TableTargets) {
			return &TrapError{Msg: "jump table index out of range", PC: m.rip}
		}
		m.Counters.Loads++ // table entry fetch
		m.q(qLoad)
		m.branchTo(in.TableTargets[idx], false, true, in.Addr)

	case x86.OCall:
		m.Regs[x86.RSP] -= 8
		if err := m.store(uint32(m.Regs[x86.RSP]), 8, uint64(m.rip+1)); err != nil {
			return err
		}
		m.branchTo(in.Target, false, true, in.Addr)

	case x86.OCallR:
		t, err := m.readOperand(&in.Dst, 8)
		if err != nil {
			return err
		}
		if t >= uint64(len(m.Prog.Code)) {
			return &TrapError{Msg: "indirect call to invalid target", PC: m.rip}
		}
		m.Regs[x86.RSP] -= 8
		if err := m.store(uint32(m.Regs[x86.RSP]), 8, uint64(m.rip+1)); err != nil {
			return err
		}
		m.branchTo(int(t), false, true, in.Addr)

	case x86.ORet:
		ra, err := m.load(uint32(m.Regs[x86.RSP]), 8)
		if err != nil {
			return err
		}
		m.Regs[x86.RSP] += 8
		if ra == haltSentinel {
			m.halted = true
			m.Counters.Branches++
			return nil
		}
		m.branchTo(int(ra), false, true, in.Addr)

	case x86.OPush:
		v, err := m.readOperand(&in.Dst, 8)
		if err != nil {
			return err
		}
		m.Regs[x86.RSP] -= 8
		if err := m.store(uint32(m.Regs[x86.RSP]), 8, v); err != nil {
			return err
		}
		m.rip++

	case x86.OPop:
		v, err := m.load(uint32(m.Regs[x86.RSP]), 8)
		if err != nil {
			return err
		}
		m.Regs[x86.RSP] += 8
		m.writeGP(in.Dst.Reg, 8, v)
		m.rip++

	case x86.OUd2:
		return &TrapError{Msg: "unreachable executed (ud2)", PC: m.rip}

	case x86.OCallHost:
		if m.Host == nil {
			return &TrapError{Msg: "host call with no host bound", PC: m.rip}
		}
		m.Counters.Branches++
		m.q(qCallHost)
		if err := m.Host(m, in.Host); err != nil {
			return err
		}
		m.rip++

	default:
		return m.execSSE(in)
	}
	return nil
}

func (m *Machine) execSSE(in *x86.Inst) error {
	switch in.Op {
	case x86.OMovsd:
		if in.Dst.Kind == x86.KMem {
			v := m.Xmm[in.Src.Reg-x86.XMM0]
			if err := m.store(m.ea(&in.Dst.Mem), in.W, v); err != nil {
				return err
			}
			m.rip++
			return nil
		}
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.Xmm[in.Dst.Reg-x86.XMM0] = v
		m.rip++

	case x86.OAddsd, x86.OSubsd, x86.OMulsd, x86.ODivsd, x86.OMinsd, x86.OMaxsd:
		a := f64of(m.Xmm[in.Dst.Reg-x86.XMM0], in.W)
		bv, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		b := f64of(bv, in.W)
		var r float64
		switch in.Op {
		case x86.OAddsd:
			r = a + b
			m.q(qFALU)
		case x86.OSubsd:
			r = a - b
			m.q(qFALU)
		case x86.OMulsd:
			r = a * b
			m.q(qFALU)
		case x86.ODivsd:
			r = a / b
			m.q(qFDiv)
		case x86.OMinsd:
			r = wasmMin(a, b)
			m.q(qFALU)
		case x86.OMaxsd:
			r = wasmMax(a, b)
			m.q(qFALU)
		}
		if in.W == 4 {
			// float32 rounding at each step
			r = float64(float32(r))
		}
		m.Xmm[in.Dst.Reg-x86.XMM0] = bitsOf(r, in.W)
		m.rip++

	case x86.OSqrtsd:
		bv, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.q(qFSqrt)
		m.Xmm[in.Dst.Reg-x86.XMM0] = bitsOf(math.Sqrt(f64of(bv, in.W)), in.W)
		m.rip++

	case x86.OUcomisd:
		a := f64of(m.Xmm[in.Dst.Reg-x86.XMM0], in.W)
		bv, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.setUcomiFlags(a, f64of(bv, in.W))
		m.rip++

	case x86.OCvtsi2sd:
		v, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.q(qCvt)
		m.Xmm[in.Dst.Reg-x86.XMM0] = math.Float64bits(cvtIntToF64(v, in.W, in.Uns))
		m.rip++

	case x86.OCvttsd2si:
		srcW := uint8(in.Target)
		if srcW == 0 {
			srcW = 8
		}
		bv, err := m.readOperand(&in.Src, srcW)
		if err != nil {
			return err
		}
		r, err := m.cvtF64ToInt(f64of(bv, srcW), in.W, in.Uns)
		if err != nil {
			return err
		}
		m.writeGP(in.Dst.Reg, in.W, r)
		m.rip++

	case x86.OCvtsd2ss:
		bv, err := m.readOperand(&in.Src, 8)
		if err != nil {
			return err
		}
		m.q(qCvt)
		m.Xmm[in.Dst.Reg-x86.XMM0] = cvtSD2SS(bv)
		m.rip++

	case x86.OCvtss2sd:
		bv, err := m.readOperand(&in.Src, 4)
		if err != nil {
			return err
		}
		m.q(qCvt)
		m.Xmm[in.Dst.Reg-x86.XMM0] = cvtSS2SD(bv)
		m.rip++

	case x86.OMovq:
		if in.Dst.Reg.IsXMM() {
			v, err := m.readOperand(&in.Src, in.W)
			if err != nil {
				return err
			}
			m.Xmm[in.Dst.Reg-x86.XMM0] = v
		} else {
			m.writeGP(in.Dst.Reg, in.W, m.Xmm[in.Src.Reg-x86.XMM0])
		}
		m.rip++

	case x86.OAndpd, x86.OXorpd:
		a := m.Xmm[in.Dst.Reg-x86.XMM0]
		var b uint64
		var err error
		if in.Src.Kind == x86.KReg && in.Src.Reg.IsXMM() {
			b = m.Xmm[in.Src.Reg-x86.XMM0]
		} else {
			b, err = m.readOperand(&in.Src, 8)
			if err != nil {
				return err
			}
		}
		if in.Op == x86.OAndpd {
			m.Xmm[in.Dst.Reg-x86.XMM0] = a & b
		} else {
			m.Xmm[in.Dst.Reg-x86.XMM0] = a ^ b
		}
		m.rip++

	case x86.ORound:
		bv, err := m.readOperand(&in.Src, in.W)
		if err != nil {
			return err
		}
		m.q(qCvt)
		m.Xmm[in.Dst.Reg-x86.XMM0] = bitsOf(roundMode(f64of(bv, in.W), uint8(in.Target)), in.W)
		m.rip++

	default:
		return &TrapError{Msg: "unimplemented opcode " + in.String(), PC: m.rip}
	}
	return nil
}

// wasmMin/Max implement Wasm float semantics (NaN-propagating, signed zero).
func wasmMin(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.NaN()
	}
	if x == 0 && y == 0 {
		if math.Signbit(x) {
			return x
		}
		return y
	}
	return math.Min(x, y)
}

func wasmMax(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.NaN()
	}
	if x == 0 && y == 0 {
		if !math.Signbit(x) {
			return x
		}
		return y
	}
	return math.Max(x, y)
}
