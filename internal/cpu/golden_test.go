package cpu

// Golden counter test: a small hand-built program exercising loads, stores,
// ALU ops, shifts, division, SSE arithmetic, conditional branches, calls,
// and the jump table. The final counter snapshot is pinned bit-for-bit, so
// any engine rewrite that perturbs counter semantics fails here in
// milliseconds instead of in the 40-second differential suites.

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/x86"
)

// buildGoldenProgram assembles:
//
//	main: sum = 0; for i in 0..63: mem[i*8] = i*3; sum += mem[i*8]
//	      sum += helper(sum)  (doubles its argument)
//	      plus one float accumulation loop and a 3-way jump table
func buildGoldenProgram() *x86.Program {
	p := x86.NewProgram()
	const (
		lMain = iota
		lLoop1
		lLoop1End
		lLoop2
		lLoop2End
		lHelper
		lCase0
		lCase1
		lCase2
		lDone
	)
	ap := func(in x86.Inst) { p.Append(in) }

	p.Bind(lMain)
	// rcx = i = 0, rbx = base addr 512
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(0)})
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RBX), Src: x86.Imm(512)})
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RSI), Src: x86.Imm(0)}) // sum

	p.Bind(lLoop1)
	ap(x86.Inst{Op: x86.OCmp, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(64)})
	ap(x86.Inst{Op: x86.OJcc, CC: x86.CCGE, Target: lLoop1End})
	// rax = i*3 via lea [rcx + rcx*2]
	ap(x86.Inst{Op: x86.OLea, W: 8, Dst: x86.R(x86.RAX),
		Src: x86.M(x86.Mem{Base: x86.RCX, Index: x86.RCX, Scale: 2})})
	// mem[rbx + rcx*8] = rax
	ap(x86.Inst{Op: x86.OMov, W: 8,
		Dst: x86.M(x86.Mem{Base: x86.RBX, Index: x86.RCX, Scale: 8}),
		Src: x86.R(x86.RAX)})
	// sum += mem[rbx + rcx*8]  (RMW-style load)
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSI),
		Src: x86.M(x86.Mem{Base: x86.RBX, Index: x86.RCX, Scale: 8})})
	// a 32-bit op, shift, and bit op for coverage
	ap(x86.Inst{Op: x86.OAdd, W: 4, Dst: x86.R(x86.RDI), Src: x86.R(x86.RCX)})
	ap(x86.Inst{Op: x86.OShl, W: 8, Dst: x86.R(x86.RDI), Src: x86.Imm(1)})
	ap(x86.Inst{Op: x86.OShr, W: 8, Dst: x86.R(x86.RDI), Src: x86.Imm(1)})
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(1)})
	ap(x86.Inst{Op: x86.OJmp, Target: lLoop1})

	p.Bind(lLoop1End)
	// sum = helper(sum) twice: call overhead, stack traffic
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RDI), Src: x86.R(x86.RSI)})
	ap(x86.Inst{Op: x86.OCall, Target: lHelper})
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RDI), Src: x86.R(x86.RAX)})
	ap(x86.Inst{Op: x86.OCall, Target: lHelper})
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RSI), Src: x86.R(x86.RAX)})

	// float loop: xmm0 = 0.0; for i in 0..15: xmm0 = (xmm0 + i) * 1.5ish
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(0)})
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RAX), Src: x86.Imm(0)})
	ap(x86.Inst{Op: x86.OMovq, W: 8, Dst: x86.R(x86.XMM0), Src: x86.R(x86.RAX)})
	p.Bind(lLoop2)
	ap(x86.Inst{Op: x86.OCmp, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(16)})
	ap(x86.Inst{Op: x86.OJcc, CC: x86.CCGE, Target: lLoop2End})
	ap(x86.Inst{Op: x86.OCvtsi2sd, W: 8, Dst: x86.R(x86.XMM1), Src: x86.R(x86.RCX)})
	ap(x86.Inst{Op: x86.OAddsd, W: 8, Dst: x86.R(x86.XMM0), Src: x86.R(x86.XMM1)})
	ap(x86.Inst{Op: x86.OMulsd, W: 8, Dst: x86.R(x86.XMM0), Src: x86.R(x86.XMM1)})
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RCX), Src: x86.Imm(1)})
	ap(x86.Inst{Op: x86.OJmp, Target: lLoop2})
	p.Bind(lLoop2End)
	ap(x86.Inst{Op: x86.OCvttsd2si, W: 8, Dst: x86.R(x86.RDX), Src: x86.R(x86.XMM0)})
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSI), Src: x86.R(x86.RDX)})

	// sum %= 3 via div, then dispatch through a jump table
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RSI)})
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.RDX), Src: x86.Imm(0)})
	ap(x86.Inst{Op: x86.OMovImm, W: 8, Dst: x86.R(x86.R8), Src: x86.Imm(3)})
	ap(x86.Inst{Op: x86.ODiv, W: 8, Dst: x86.R(x86.R8)})
	ap(x86.Inst{Op: x86.OJmpTable, Dst: x86.R(x86.RDX),
		TableTargets: []int{lCase0, lCase1, lCase2}})
	p.Bind(lCase0)
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSI), Src: x86.Imm(100)})
	ap(x86.Inst{Op: x86.OJmp, Target: lDone})
	p.Bind(lCase1)
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSI), Src: x86.Imm(200)})
	ap(x86.Inst{Op: x86.OJmp, Target: lDone})
	p.Bind(lCase2)
	ap(x86.Inst{Op: x86.OAdd, W: 8, Dst: x86.R(x86.RSI), Src: x86.Imm(300)})
	p.Bind(lDone)
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RSI)})
	ap(x86.Inst{Op: x86.ORet})

	// helper(rdi) = rdi*2, with stack push/pop and a movzx for coverage
	p.Bind(lHelper)
	ap(x86.Inst{Op: x86.OPush, Dst: x86.R(x86.RBP)})
	ap(x86.Inst{Op: x86.OMov, W: 8, Dst: x86.R(x86.RAX), Src: x86.R(x86.RDI)})
	ap(x86.Inst{Op: x86.OMovZX8, W: 8, Dst: x86.R(x86.RBP), Src: x86.R(x86.RDI)})
	ap(x86.Inst{Op: x86.OImul, W: 8, Dst: x86.R(x86.RAX), Src: x86.Imm(2)})
	ap(x86.Inst{Op: x86.OPop, Dst: x86.R(x86.RBP)})
	ap(x86.Inst{Op: x86.ORet})

	p.Layout()
	if err := p.ResolveTargets(); err != nil {
		panic(err)
	}
	return p
}

// goldenCounters is the seed engine's counter snapshot for the program
// above. Any deviation means counter semantics changed.
var goldenCounters = perf.Counters{
	Loads:        70,
	Stores:       68,
	Branches:     169,
	CondBranches: 82,
	Instructions: 790,
	Cycles:       1612,
	L1IMisses:    4,
	L1DMisses:    9,
	L2Misses:     9,
	BranchMiss:   2,
}

func runGolden(t *testing.T, legacy bool) (uint64, perf.Counters) {
	t.Helper()
	m := NewMachine(buildGoldenProgram(), 1, 1)
	m.NoPredecode = legacy
	ret, err := m.Call(0)
	if err != nil {
		t.Fatalf("golden program trapped: %v", err)
	}
	return ret, m.Counters
}

func TestGoldenCounters(t *testing.T) {
	ret, got := runGolden(t, false)
	if want := uint64(7109254968427); ret != want {
		t.Errorf("golden program returned %d, want %d", ret, want)
	}
	if got != goldenCounters {
		t.Errorf("counters diverged:\n got:  %v\n want: %v", got.String(), goldenCounters.String())
	}
}

// TestPredecodeMatchesLegacy runs the program under both the pre-decoded
// micro-op engine and the legacy interpreter and demands identical results.
func TestPredecodeMatchesLegacy(t *testing.T) {
	r1, c1 := runGolden(t, false)
	r2, c2 := runGolden(t, true)
	if r1 != r2 {
		t.Errorf("return values differ: predecoded %d, legacy %d", r1, r2)
	}
	if c1 != c2 {
		t.Errorf("counters differ:\n predecoded: %v\n legacy:     %v", c1.String(), c2.String())
	}
}
