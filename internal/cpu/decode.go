package cpu

// Pre-decoder: translates a laid-out x86.Program into a flat micro-op
// stream consumed by the machine's dispatch loop. Decoding happens once per
// program (cached on x86.Program.Predecoded) instead of re-interpreting
// operand kinds, register classes, and addressing modes on every executed
// instruction.
//
// Micro-ops are 1:1 with instructions, so instruction indices (rip values,
// branch targets, the halt protocol) are unchanged. Each micro-op carries a
// dense handler kind that already encodes the operand shape — register,
// immediate, or memory — plus pre-resolved register numbers (XMM registers
// pre-offset to their array index), a pre-extracted effective-address
// template, and the precomputed instruction-cache line number. Shapes the
// decoder does not specialize fall back to uSlow, which executes the
// original instruction through the legacy interpreter with identical
// semantics.

import (
	"sync"

	"repro/internal/x86"
)

// uopKind is the dense handler class. The dispatch switch in exec.go is
// ordered identically, so it compiles to a single jump table.
type uopKind uint8

const (
	uSlow uopKind = iota // fallback: legacy-interpret Prog.Code[rip]
	uNop
	uMovRR     // gp <- gp
	uMovRI     // gp <- imm
	uMovLoad   // gp <- [ea]
	uMovStore  // [ea] <- gp
	uMovStoreI // [ea] <- imm
	uExtR      // gp <- zx/sx(gp), alu = ext mode
	uExtM      // gp <- zx/sx([ea])
	uLea       // gp <- ea
	uAluRR     // gp <- gp op gp, alu = aluAdd..aluImul
	uAluRI     // gp <- gp op imm
	uAluRM     // gp <- gp op [ea]
	uAluMR     // [ea] <- [ea] op gp
	uAluMI     // [ea] <- [ea] op imm
	uShiftR    // gp <- gp shift cl-style reg, alu = shfShl..shfRor
	uShiftI    // gp <- gp shift imm (count pre-masked)
	uNegR
	uNotR
	uBitR // bsr/bsf/popcnt gp src, alu = bitBsr..bitPopcnt
	uBitM
	uCdq
	uDivR // divisor in gp, alu = 1 for signed
	uDivM // divisor in [ea]
	uCmpRR
	uCmpRI
	uCmpRM
	uCmpMR
	uCmpMI
	uTestRR
	uTestRI
	uSet
	uCmovRR
	uCmovRM
	uJmp
	uJcc
	uJmpTable
	uCall
	uCallR // target in gp
	uCallM // target in [ea]
	uRet
	uPushR
	uPushI
	uPushM
	uPop
	uUd2
	uCallHost
	uMovsdRR    // xmm <- xmm
	uMovsdLoad  // xmm <- [ea]
	uMovsdStore // [ea] <- xmm
	uFAluRR     // xmm <- xmm fop xmm, alu = fAdd..fMax
	uFAluRM
	uSqrtR
	uSqrtM
	uUcomiR
	uUcomiM
	uCvtSI2SDR
	uCvtSI2SDM
	uCvtTSD2SIR // alu = source float width
	uCvtTSD2SIM
	uCvtSD2SSR
	uCvtSD2SSM
	uCvtSS2SDR
	uCvtSS2SDM
	uMovqXR  // xmm <- gp bits
	uMovqRX  // gp <- xmm bits
	uLogicXX // andpd/xorpd, alu = 0 and / 1 xor
	uLogicXM
	uRoundR // alu = rounding mode
	uRoundM

	// Width-specialized variants of the four hottest memory kinds. Their
	// dispatch arms inline the whole linear-memory fast path: bounds check,
	// load/store counter, dcache memo, and the fixed-width access.
	uMovLoad32
	uMovLoad64
	uMovStore32
	uMovStore64
	uFLoad32
	uFLoad64
	uFStore32
	uFStore64

	// Macro-fused compare-and-branch kinds (see fusePairs): the flag-setting
	// op and the following uJcc retire in one dispatch. The uop carries the
	// compare's operands plus the branch's cc, target, and predictor index
	// (in disp). Fusion requires both instructions on one icache line, so
	// the fused branch's fetch is a guaranteed same-line skip.
	uCmpRRJcc
	uCmpRIJcc
	uTestRRJcc
)

// ALU sub-operation codes (uop.alu).
const (
	aluAdd = iota
	aluSub
	aluAnd
	aluOr
	aluXor
	aluImul
)

// Shift sub-operation codes.
const (
	shfShl = iota
	shfShr
	shfSar
	shfRol
	shfRor
)

// Zero/sign-extension modes.
const (
	extZX8 = iota
	extZX16
	extSX8
	extSX16
	extSXD
)

// Bit-scan sub-operations.
const (
	bitBsr = iota
	bitBsf
	bitPopcnt
)

// Float ALU sub-operations.
const (
	fAdd = iota
	fSub
	fMul
	fDiv
	fMin
	fMax
)

// uop is one pre-decoded micro-op. 32 bytes, flat, no pointers: ~3x denser
// than x86.Inst and scanned strictly sequentially by the dispatch loop.
// There is no full instruction address: every cache level uses 64-byte
// lines, so the icache walk only ever consumes addr>>6, which is exactly
// the precomputed line field. The one consumer of a finer-grained address —
// the branch predictor's table index — gets the real address via the imm
// field, which is unused by conditional jumps.
type uop struct {
	kind  uopKind
	alu   uint8 // sub-operation / ext mode / source width / rounding mode
	w     uint8
	cc    x86.CC
	dst   uint8 // destination register (XMM pre-offset to 0-15)
	src   uint8 // source register (XMM pre-offset to 0-15)
	base  uint8 // EA base register, 0xff = none
	idx   uint8 // EA index register, 0xff = none
	scale uint8
	uns   bool   // unsigned conversion variant
	line  uint32 // precomputed icache line (addr >> 6)
	disp  int32
	tgt   int32  // branch target index / host-function id
	imm   uint64 // immediate / branch address for uJcc
}

// decodedProgram is the predecoded view cached on x86.Program.
type decodedProgram struct {
	ops []uop
}

var predecodeMu sync.Mutex

// predecode returns the micro-op stream for p, decoding and caching it on
// first use. Safe for concurrent machines sharing one program.
func predecode(p *x86.Program) []uop {
	predecodeMu.Lock()
	if d, ok := p.Predecoded.(*decodedProgram); ok && len(d.ops) == len(p.Code) {
		predecodeMu.Unlock()
		return d.ops
	}
	predecodeMu.Unlock()

	ops := make([]uop, len(p.Code))
	for i := range p.Code {
		decodeInst(&p.Code[i], &ops[i])
	}
	fusePairs(ops)

	predecodeMu.Lock()
	defer predecodeMu.Unlock()
	if d, ok := p.Predecoded.(*decodedProgram); ok && len(d.ops) == len(p.Code) {
		return d.ops
	}
	p.Predecoded = &decodedProgram{ops: ops}
	return ops
}

func isGP(o *x86.Operand) bool  { return o.Kind == x86.KReg && !o.Reg.IsXMM() }
func isXMM(o *x86.Operand) bool { return o.Kind == x86.KReg && o.Reg.IsXMM() }

// setEA copies the addressing-mode template. x86.NoReg is 0xff, which is
// exactly the "absent" encoding the executor tests for.
func (u *uop) setEA(mem *x86.Mem) {
	u.base = uint8(mem.Base)
	u.idx = uint8(mem.Index)
	u.scale = mem.Scale
	u.disp = mem.Disp
}

func decodeInst(in *x86.Inst, u *uop) {
	u.kind = uSlow
	u.w = in.W
	u.cc = in.CC
	u.line = in.Addr >> 6
	u.tgt = int32(in.Target)
	u.uns = in.Uns

	dst, src := &in.Dst, &in.Src
	switch in.Op {
	case x86.ONop:
		u.kind = uNop

	case x86.OMov:
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uMovRR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KImm:
			u.kind, u.dst = uMovRI, uint8(dst.Reg)
			u.imm = movImm(uint64(src.Imm), in.W)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uMovLoad, uint8(dst.Reg)
			if in.W == 8 {
				u.kind = uMovLoad64
			} else if in.W == 4 {
				u.kind = uMovLoad32
			}
			u.setEA(&src.Mem)
		case dst.Kind == x86.KMem && isGP(src):
			u.kind, u.src = uMovStore, uint8(src.Reg)
			if in.W == 8 {
				u.kind = uMovStore64
			} else if in.W == 4 {
				u.kind = uMovStore32
			}
			u.setEA(&dst.Mem)
		case dst.Kind == x86.KMem && src.Kind == x86.KImm:
			u.kind, u.imm = uMovStoreI, uint64(src.Imm)
			u.setEA(&dst.Mem)
		}

	case x86.OMovImm:
		if isGP(dst) {
			u.kind, u.dst = uMovRI, uint8(dst.Reg)
			u.imm = movImm(uint64(src.Imm), in.W)
		}

	case x86.OMovZX8, x86.OMovZX16, x86.OMovSX8, x86.OMovSX16, x86.OMovSXD:
		switch in.Op {
		case x86.OMovZX8:
			u.alu = extZX8
		case x86.OMovZX16:
			u.alu = extZX16
		case x86.OMovSX8:
			u.alu = extSX8
		case x86.OMovSX16:
			u.alu = extSX16
		case x86.OMovSXD:
			u.alu = extSXD
		}
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uExtR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uExtM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		}

	case x86.OLea:
		if isGP(dst) && src.Kind == x86.KMem {
			u.kind, u.dst = uLea, uint8(dst.Reg)
			u.setEA(&src.Mem)
		}

	case x86.OAdd, x86.OSub, x86.OAnd, x86.OOr, x86.OXor, x86.OImul:
		switch in.Op {
		case x86.OAdd:
			u.alu = aluAdd
		case x86.OSub:
			u.alu = aluSub
		case x86.OAnd:
			u.alu = aluAnd
		case x86.OOr:
			u.alu = aluOr
		case x86.OXor:
			u.alu = aluXor
		case x86.OImul:
			u.alu = aluImul
		}
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uAluRR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KImm:
			u.kind, u.dst, u.imm = uAluRI, uint8(dst.Reg), uint64(src.Imm)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uAluRM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		case dst.Kind == x86.KMem && isGP(src):
			u.kind, u.src = uAluMR, uint8(src.Reg)
			u.setEA(&dst.Mem)
		case dst.Kind == x86.KMem && src.Kind == x86.KImm:
			u.kind, u.imm = uAluMI, uint64(src.Imm)
			u.setEA(&dst.Mem)
		}

	case x86.OShl, x86.OSar, x86.OShr, x86.ORol, x86.ORor:
		switch in.Op {
		case x86.OShl:
			u.alu = shfShl
		case x86.OShr:
			u.alu = shfShr
		case x86.OSar:
			u.alu = shfSar
		case x86.ORol:
			u.alu = shfRol
		case x86.ORor:
			u.alu = shfRor
		}
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uShiftR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KImm:
			u.kind, u.dst = uShiftI, uint8(dst.Reg)
			if in.W == 4 {
				u.imm = uint64(src.Imm) & 31
			} else {
				u.imm = uint64(src.Imm) & 63
			}
		}

	case x86.ONeg:
		if isGP(dst) {
			u.kind, u.dst = uNegR, uint8(dst.Reg)
		}
	case x86.ONot:
		if isGP(dst) {
			u.kind, u.dst = uNotR, uint8(dst.Reg)
		}

	case x86.OBsr, x86.OBsf, x86.OPopcnt:
		switch in.Op {
		case x86.OBsr:
			u.alu = bitBsr
		case x86.OBsf:
			u.alu = bitBsf
		case x86.OPopcnt:
			u.alu = bitPopcnt
		}
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uBitR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uBitM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		}

	case x86.OCdq:
		u.kind = uCdq

	case x86.OIdiv, x86.ODiv:
		if in.Op == x86.OIdiv {
			u.alu = 1
		}
		switch {
		case isGP(dst):
			u.kind, u.dst = uDivR, uint8(dst.Reg)
		case dst.Kind == x86.KMem:
			u.kind = uDivM
			u.setEA(&dst.Mem)
		}

	case x86.OCmp:
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uCmpRR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KImm:
			u.kind, u.dst, u.imm = uCmpRI, uint8(dst.Reg), uint64(src.Imm)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCmpRM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		case dst.Kind == x86.KMem && isGP(src):
			u.kind, u.src = uCmpMR, uint8(src.Reg)
			u.setEA(&dst.Mem)
		case dst.Kind == x86.KMem && src.Kind == x86.KImm:
			u.kind, u.imm = uCmpMI, uint64(src.Imm)
			u.setEA(&dst.Mem)
		}

	case x86.OTest:
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uTestRR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KImm:
			u.kind, u.dst, u.imm = uTestRI, uint8(dst.Reg), uint64(src.Imm)
		}

	case x86.OSet:
		if isGP(dst) {
			u.kind, u.dst = uSet, uint8(dst.Reg)
		}

	case x86.OCmov:
		switch {
		case isGP(dst) && isGP(src):
			u.kind, u.dst, u.src = uCmovRR, uint8(dst.Reg), uint8(src.Reg)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCmovRM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		}

	case x86.OJmp:
		u.kind = uJmp
	case x86.OJcc:
		u.kind = uJcc
		u.imm = uint64(in.Addr) // branch-predictor index
	case x86.OJmpTable:
		if isGP(dst) {
			u.kind, u.dst = uJmpTable, uint8(dst.Reg)
		}
	case x86.OCall:
		u.kind = uCall
	case x86.OCallR:
		switch {
		case isGP(dst):
			u.kind, u.dst = uCallR, uint8(dst.Reg)
		case dst.Kind == x86.KMem:
			u.kind = uCallM
			u.setEA(&dst.Mem)
		}
	case x86.ORet:
		u.kind = uRet
	case x86.OPush:
		switch {
		case isGP(dst):
			u.kind, u.src = uPushR, uint8(dst.Reg)
		case dst.Kind == x86.KImm:
			u.kind, u.imm = uPushI, uint64(dst.Imm)
		case dst.Kind == x86.KMem:
			u.kind = uPushM
			u.setEA(&dst.Mem)
		}
	case x86.OPop:
		if isGP(dst) {
			u.kind, u.dst = uPop, uint8(dst.Reg)
		}
	case x86.OUd2:
		u.kind = uUd2
	case x86.OCallHost:
		u.kind = uCallHost
		u.tgt = int32(in.Host)

	case x86.OMovsd:
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uMovsdRR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uMovsdLoad, uint8(dst.Reg-x86.XMM0)
			if in.W == 8 {
				u.kind = uFLoad64
			} else if in.W == 4 {
				u.kind = uFLoad32
			}
			u.setEA(&src.Mem)
		case dst.Kind == x86.KMem && isXMM(src):
			u.kind, u.src = uMovsdStore, uint8(src.Reg-x86.XMM0)
			if in.W == 8 {
				u.kind = uFStore64
			} else if in.W == 4 {
				u.kind = uFStore32
			}
			u.setEA(&dst.Mem)
		}

	case x86.OAddsd, x86.OSubsd, x86.OMulsd, x86.ODivsd, x86.OMinsd, x86.OMaxsd:
		switch in.Op {
		case x86.OAddsd:
			u.alu = fAdd
		case x86.OSubsd:
			u.alu = fSub
		case x86.OMulsd:
			u.alu = fMul
		case x86.ODivsd:
			u.alu = fDiv
		case x86.OMinsd:
			u.alu = fMin
		case x86.OMaxsd:
			u.alu = fMax
		}
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uFAluRR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uFAluRM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.OSqrtsd:
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uSqrtR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uSqrtM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.OUcomisd:
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uUcomiR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uUcomiM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.OCvtsi2sd:
		switch {
		case isXMM(dst) && isGP(src):
			u.kind, u.dst, u.src = uCvtSI2SDR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCvtSI2SDM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.OCvttsd2si:
		srcW := uint8(in.Target)
		if srcW == 0 {
			srcW = 8
		}
		u.alu = srcW
		switch {
		case isGP(dst) && isXMM(src):
			u.kind, u.dst, u.src = uCvtTSD2SIR, uint8(dst.Reg), uint8(src.Reg-x86.XMM0)
		case isGP(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCvtTSD2SIM, uint8(dst.Reg)
			u.setEA(&src.Mem)
		}

	case x86.OCvtsd2ss:
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uCvtSD2SSR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCvtSD2SSM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}
	case x86.OCvtss2sd:
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uCvtSS2SDR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uCvtSS2SDM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.OMovq:
		switch {
		case isXMM(dst) && isGP(src):
			u.kind, u.dst, u.src = uMovqXR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg)
		case isGP(dst) && isXMM(src):
			u.kind, u.dst, u.src = uMovqRX, uint8(dst.Reg), uint8(src.Reg-x86.XMM0)
		}

	case x86.OAndpd, x86.OXorpd:
		if in.Op == x86.OXorpd {
			u.alu = 1
		}
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uLogicXX, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uLogicXM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}

	case x86.ORound:
		u.alu = uint8(in.Target)
		switch {
		case isXMM(dst) && isXMM(src):
			u.kind, u.dst, u.src = uRoundR, uint8(dst.Reg-x86.XMM0), uint8(src.Reg-x86.XMM0)
		case isXMM(dst) && src.Kind == x86.KMem:
			u.kind, u.dst = uRoundM, uint8(dst.Reg-x86.XMM0)
			u.setEA(&src.Mem)
		}
	}
}

// fusePairs rewrites cmp/test+jcc pairs into single fused micro-ops. The
// jcc's own slot keeps its unfused uop (it may be a branch target); only
// sequential execution takes the fused path. Pairs that straddle an icache
// line are left unfused so per-instruction fetch modeling is preserved.
func fusePairs(ops []uop) {
	for i := 0; i+1 < len(ops); i++ {
		u, j := &ops[i], &ops[i+1]
		if j.kind != uJcc || j.line != u.line {
			continue
		}
		switch u.kind {
		case uCmpRR:
			u.kind = uCmpRRJcc
		case uCmpRI:
			u.kind = uCmpRIJcc
		case uTestRR:
			u.kind = uTestRRJcc
		default:
			continue
		}
		u.cc = j.cc
		u.tgt = j.tgt
		u.disp = int32(uint32(j.imm)) // branch-predictor index
	}
}

// movImm reproduces readOperand(KImm) + writeGP masking at decode time.
func movImm(v uint64, w uint8) uint64 {
	if w == 4 {
		return uint64(uint32(v))
	}
	return v
}
