package cpu

// Cache simulates a set-associative cache with LRU replacement. It tracks
// hits and misses only (contents are not modeled).
type Cache struct {
	sets     [][]line
	setMask  uint32
	lineBits uint32
	tick     uint64
	Misses   uint64
	Accesses uint64
}

type line struct {
	tag   uint64
	valid bool
	used  uint64
}

// NewCache builds a cache of size bytes with the given line size and
// associativity. Sizes must be powers of two.
func NewCache(size, lineSize, ways int) *Cache {
	nsets := size / lineSize / ways
	c := &Cache{
		sets:    make([][]line, nsets),
		setMask: uint32(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	for lineSize > 1 {
		lineSize >>= 1
		c.lineBits++
	}
	return c
}

// Access touches addr, returning true on hit.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	c.tick++
	lineAddr := uint64(addr >> c.lineBits)
	set := c.sets[uint32(lineAddr)&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.tick
			return true
		}
	}
	c.Misses++
	// Replace LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = line{tag: lineAddr, valid: true, used: c.tick}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.Misses, c.Accesses, c.tick = 0, 0, 0
}

// BranchPredictor is a bimodal predictor of 2-bit saturating counters.
type BranchPredictor struct {
	table  []uint8
	mask   uint32
	Misses uint64
	Total  uint64
}

// NewBranchPredictor builds a predictor with entries slots (power of two).
func NewBranchPredictor(entries int) *BranchPredictor {
	return &BranchPredictor{table: make([]uint8, entries), mask: uint32(entries - 1)}
}

// Predict consumes the outcome of a conditional branch at addr, returning
// true if it was predicted correctly.
func (p *BranchPredictor) Predict(addr uint32, taken bool) bool {
	p.Total++
	i := (addr >> 2) & p.mask
	ctr := p.table[i]
	pred := ctr >= 2
	if taken && ctr < 3 {
		p.table[i] = ctr + 1
	} else if !taken && ctr > 0 {
		p.table[i] = ctr - 1
	}
	if pred != taken {
		p.Misses++
		return false
	}
	return true
}
