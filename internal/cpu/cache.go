package cpu

// Cache simulates a set-associative cache with LRU replacement. It tracks
// hits and misses only (contents are not modeled).
//
// The storage layout is optimized for the simulator's hot path: all lines
// live in one flat backing array indexed set-major (set s occupies
// lines[s*ways : (s+1)*ways]), and a per-set MRU index implements way
// prediction — the common repeat hit to a set is a single tag compare
// instead of an associative scan. Replacement decisions, hit/miss outcomes,
// and statistics are bit-identical to the straightforward LRU model: a line
// with used == 0 is invalid, ticks start at 1, and the victim scan's strict
// minimum over used picks the first invalid way when one exists, exactly as
// an explicit invalid-first scan would.
type Cache struct {
	lines    []line   // nsets * ways, way-stride 1
	mru      []uint32 // per-set absolute index of the most recently used line
	setMask  uint32
	ways     uint32
	lineBits uint32
	tick     uint64
	Misses   uint64
	Accesses uint64
}

type line struct {
	tag  uint64
	used uint64 // last-touch tick; 0 marks an invalid line
}

// NewCache builds a cache of size bytes with the given line size and
// associativity. Sizes must be powers of two.
func NewCache(size, lineSize, ways int) *Cache {
	nsets := size / lineSize / ways
	c := &Cache{
		lines:   make([]line, nsets*ways),
		mru:     make([]uint32, nsets),
		setMask: uint32(nsets - 1),
		ways:    uint32(ways),
	}
	for i := range c.mru {
		c.mru[i] = uint32(i) * c.ways
	}
	for lineSize > 1 {
		lineSize >>= 1
		c.lineBits++
	}
	return c
}

// Access touches addr, returning true on hit. The way-predicted MRU check
// is kept small enough to inline at call sites; the associative scan and
// replacement live in accessSlow.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	c.tick++
	lineAddr := uint64(addr >> c.lineBits)
	set := uint32(lineAddr) & c.setMask
	if l := &c.lines[c.mru[set]]; l.tag == lineAddr && l.used != 0 {
		l.used = c.tick
		return true
	}
	return c.accessSlow(lineAddr, set)
}

// accessSlow scans the set associatively, tracking the LRU victim in the
// same pass so a miss costs one sweep, and replaces it on miss.
func (c *Cache) accessSlow(lineAddr uint64, set uint32) bool {
	base := set * c.ways
	ways := c.lines[base : base+c.ways]
	victim := 0
	for i := range ways {
		if ways[i].used != 0 && ways[i].tag == lineAddr {
			ways[i].used = c.tick
			c.mru[set] = base + uint32(i)
			return true
		}
		// Invalid ways have used 0 and therefore win the strict-minimum
		// scan, reproducing an explicit invalid-first policy.
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	c.Misses++
	ways[victim] = line{tag: lineAddr, used: c.tick}
	c.mru[set] = base + uint32(victim)
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.mru {
		c.mru[i] = uint32(i) * c.ways
	}
	c.Misses, c.Accesses, c.tick = 0, 0, 0
}

// BranchPredictor is a bimodal predictor of 2-bit saturating counters.
type BranchPredictor struct {
	table  []uint8
	mask   uint32
	Misses uint64
	Total  uint64
}

// NewBranchPredictor builds a predictor with entries slots (power of two).
func NewBranchPredictor(entries int) *BranchPredictor {
	return &BranchPredictor{table: make([]uint8, entries), mask: uint32(entries - 1)}
}

// Reset clears the predictor's counters and statistics.
func (p *BranchPredictor) Reset() {
	clear(p.table)
	p.Misses, p.Total = 0, 0
}

// Predict consumes the outcome of a conditional branch at addr, returning
// true if it was predicted correctly.
func (p *BranchPredictor) Predict(addr uint32, taken bool) bool {
	p.Total++
	i := (addr >> 2) & p.mask
	ctr := p.table[i]
	pred := ctr >= 2
	if taken && ctr < 3 {
		p.table[i] = ctr + 1
	} else if !taken && ctr > 0 {
		p.table[i] = ctr - 1
	}
	if pred != taken {
		p.Misses++
		return false
	}
	return true
}
