package cpu

// Tests for the machine-memory recycle pool: a machine built from a pooled
// image must be bit-identical to one built from fresh allocations — same
// results, same counters, fully zeroed memory — and growth paths must never
// expose stale bytes from a previous process.

import (
	"testing"

	"repro/internal/x86"
)

// TestMachineMemoryRecycling runs the golden program repeatedly, releasing
// each machine's memory back to the pool, and demands the exact same return
// value and counter snapshot every time.
func TestMachineMemoryRecycling(t *testing.T) {
	prog := buildGoldenProgram()
	var first *Machine
	for i := 0; i < 5; i++ {
		m := NewMachine(prog, 1, 1)
		ret, err := m.Call(0)
		if err != nil {
			t.Fatalf("iteration %d trapped: %v", i, err)
		}
		if want := uint64(7109254968427); ret != want {
			t.Fatalf("iteration %d returned %d, want %d", i, ret, want)
		}
		if m.Counters != goldenCounters {
			t.Fatalf("iteration %d counters diverged:\n got:  %v\n want: %v",
				i, m.Counters.String(), goldenCounters.String())
		}
		if first == nil {
			first = m
		}
		m.ReleaseMemory()
		if m.Linear != nil || m.L1D != nil || m.BP != nil {
			t.Fatal("release must detach the memory image")
		}
		m.ReleaseMemory() // double release is a no-op
	}
	// Counters survive release: results outlive processes.
	if first.Counters != goldenCounters {
		t.Error("released machine lost its counters")
	}
}

// TestRecycledMemoryIsZero dirties every pooled region, releases, and checks
// a reused image reads as all-zero, including linear growth into recycled
// spare capacity.
func TestRecycledMemoryIsZero(t *testing.T) {
	prog := buildGoldenProgram()
	m := NewMachine(prog, 2, 4)
	for i := range m.Linear {
		m.Linear[i] = 0xAB
	}
	m.SetGlobal(7, ^uint64(0))
	m.SetTableEntry(3, 123, 456)
	// Dirty the stack through the store path, forcing window growth.
	if err := m.store(uint32(x86.StackTop)-200*1024, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	m.ReleaseMemory()

	r := NewMachine(prog, 1, 4)
	for i, b := range r.Linear {
		if b != 0 {
			t.Fatalf("recycled linear memory dirty at %d: %#x", i, b)
		}
	}
	if g := r.Global(7); g != 0 {
		t.Fatalf("recycled globals dirty: %#x", g)
	}
	if old := r.GrowLinear(2); old != 1 {
		t.Fatalf("grow returned %d", old)
	}
	for i, b := range r.Linear {
		if b != 0 {
			t.Fatalf("grown linear memory dirty at %d: %#x", i, b)
		}
	}
	if v, err := r.load(uint32(x86.StackTop)-200*1024, 8); err != nil || v != 0 {
		t.Fatalf("recycled stack dirty: %#x (err %v)", v, err)
	}
	r.ReleaseMemory()
}

// TestPooledSpawnAllocations proves machine construction from the pool does
// not re-allocate the memory image.
func TestPooledSpawnAllocations(t *testing.T) {
	if raceEnabled {
		// Under the race detector sync.Pool intentionally drops a random
		// fraction of puts, so the allocation count is nondeterministic.
		t.Skip("sync.Pool is randomized under the race detector")
	}
	prog := buildGoldenProgram()
	// Discard images left behind by other tests (their shapes may not fit
	// this program), then warm the pool and the predecode cache.
	drainPool()
	NewMachine(prog, 1, 1).ReleaseMemory()
	avg := testing.AllocsPerRun(20, func() {
		m := NewMachine(prog, 1, 1)
		if _, err := m.Call(0); err != nil {
			t.Fatal(err)
		}
		m.ReleaseMemory()
	})
	// A fresh image is hundreds of allocations' worth of cache lines plus
	// multi-MB buffers; a pooled run is the Machine struct and little else.
	if avg > 8 {
		t.Errorf("pooled machine run allocates %.0f objects per spawn", avg)
	}
}

// drainPool empties the recycle pool, returning the last image seen (nil if
// the pool was empty).
func drainPool() *machineMem {
	var last *machineMem
	for {
		v := memPool.Get()
		if v == nil {
			return last
		}
		last = v.(*machineMem)
	}
}

// releaseAndDrain releases machines built by mk until the pool yields an
// image. Under the race detector sync.Pool deliberately drops a fraction of
// Puts, so a single release is not guaranteed to be observable; repeated
// attempts make the drop probability vanish. Skips if the pool never
// retains (pathological scheduling).
func releaseAndDrain(t *testing.T, mk func() *Machine) *machineMem {
	t.Helper()
	for i := 0; i < 32; i++ {
		mk().ReleaseMemory()
		if mm := drainPool(); mm != nil {
			return mm
		}
	}
	t.Skip("sync.Pool retained nothing after 32 releases (race-mode drops)")
	return nil
}

// TestOversizedImagesAreNotPooled releases a machine whose linear memory and
// stack window grew past the retention caps and checks the pool drops those
// buffers (while keeping the rest of the image), so one large workload
// cannot pin its high-water footprint for the process lifetime.
func TestOversizedImagesAreNotPooled(t *testing.T) {
	prog := buildGoldenProgram()
	drainPool()

	// Within the caps: both buffers are retained.
	mm := releaseAndDrain(t, func() *Machine { return NewMachine(prog, 2, 4) })
	if mm.linear == nil || mm.stack == nil {
		t.Fatal("in-cap buffers must be pooled")
	}

	// Past the caps: linear and stack are dropped, the rest survives.
	pages := uint32(maxPooledLinear/65536 + 1)
	mm = releaseAndDrain(t, func() *Machine {
		m := NewMachine(prog, pages, pages)
		if err := m.store(uint32(x86.StackTop)-2*maxPooledStack, 8, 1); err != nil {
			t.Fatal(err)
		}
		if cap(m.stack) <= maxPooledStack {
			t.Fatalf("stack window did not grow past the cap (cap=%d)", cap(m.stack))
		}
		return m
	})
	if mm.linear != nil {
		t.Errorf("oversized linear buffer (cap %d) was pooled", cap(mm.linear))
	}
	if mm.stack != nil {
		t.Errorf("oversized stack buffer (cap %d) was pooled", cap(mm.stack))
	}
	if mm.globals == nil || mm.tableMem == nil || mm.l1d == nil || mm.bp == nil {
		t.Error("fixed-size image parts must still be pooled")
	}

	// A machine built from the capped image allocates fresh in-cap buffers.
	memPool.Put(mm)
	r := NewMachine(prog, 1, 1)
	if len(r.Linear) != 65536 || len(r.stack) != 64*1024 {
		t.Fatalf("rebuilt machine has linear=%d stack=%d", len(r.Linear), len(r.stack))
	}
	if ret, err := r.Call(0); err != nil || ret != 7109254968427 {
		t.Fatalf("rebuilt machine misbehaved: ret=%d err=%v", ret, err)
	}
	r.ReleaseMemory()
}
