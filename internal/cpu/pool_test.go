package cpu

// Tests for the machine-memory recycle pool: a machine built from a pooled
// image must be bit-identical to one built from fresh allocations — same
// results, same counters, fully zeroed memory — and growth paths must never
// expose stale bytes from a previous process.

import (
	"testing"

	"repro/internal/x86"
)

// TestMachineMemoryRecycling runs the golden program repeatedly, releasing
// each machine's memory back to the pool, and demands the exact same return
// value and counter snapshot every time.
func TestMachineMemoryRecycling(t *testing.T) {
	prog := buildGoldenProgram()
	var first *Machine
	for i := 0; i < 5; i++ {
		m := NewMachine(prog, 1, 1)
		ret, err := m.Call(0)
		if err != nil {
			t.Fatalf("iteration %d trapped: %v", i, err)
		}
		if want := uint64(7109254968427); ret != want {
			t.Fatalf("iteration %d returned %d, want %d", i, ret, want)
		}
		if m.Counters != goldenCounters {
			t.Fatalf("iteration %d counters diverged:\n got:  %v\n want: %v",
				i, m.Counters.String(), goldenCounters.String())
		}
		if first == nil {
			first = m
		}
		m.ReleaseMemory()
		if m.Linear != nil || m.L1D != nil || m.BP != nil {
			t.Fatal("release must detach the memory image")
		}
		m.ReleaseMemory() // double release is a no-op
	}
	// Counters survive release: results outlive processes.
	if first.Counters != goldenCounters {
		t.Error("released machine lost its counters")
	}
}

// TestRecycledMemoryIsZero dirties every pooled region, releases, and checks
// a reused image reads as all-zero, including linear growth into recycled
// spare capacity.
func TestRecycledMemoryIsZero(t *testing.T) {
	prog := buildGoldenProgram()
	m := NewMachine(prog, 2, 4)
	for i := range m.Linear {
		m.Linear[i] = 0xAB
	}
	m.SetGlobal(7, ^uint64(0))
	m.SetTableEntry(3, 123, 456)
	// Dirty the stack through the store path, forcing window growth.
	if err := m.store(uint32(x86.StackTop)-200*1024, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	m.ReleaseMemory()

	r := NewMachine(prog, 1, 4)
	for i, b := range r.Linear {
		if b != 0 {
			t.Fatalf("recycled linear memory dirty at %d: %#x", i, b)
		}
	}
	if g := r.Global(7); g != 0 {
		t.Fatalf("recycled globals dirty: %#x", g)
	}
	if old := r.GrowLinear(2); old != 1 {
		t.Fatalf("grow returned %d", old)
	}
	for i, b := range r.Linear {
		if b != 0 {
			t.Fatalf("grown linear memory dirty at %d: %#x", i, b)
		}
	}
	if v, err := r.load(uint32(x86.StackTop)-200*1024, 8); err != nil || v != 0 {
		t.Fatalf("recycled stack dirty: %#x (err %v)", v, err)
	}
	r.ReleaseMemory()
}

// TestPooledSpawnAllocations proves machine construction from the pool does
// not re-allocate the memory image.
func TestPooledSpawnAllocations(t *testing.T) {
	prog := buildGoldenProgram()
	// Warm the pool and the predecode cache.
	NewMachine(prog, 1, 1).ReleaseMemory()
	avg := testing.AllocsPerRun(20, func() {
		m := NewMachine(prog, 1, 1)
		if _, err := m.Call(0); err != nil {
			t.Fatal(err)
		}
		m.ReleaseMemory()
	})
	// A fresh image is hundreds of allocations' worth of cache lines plus
	// multi-MB buffers; a pooled run is the Machine struct and little else.
	if avg > 8 {
		t.Errorf("pooled machine run allocates %.0f objects per spawn", avg)
	}
}
