// Package cpu executes the modeled x86-64 programs produced by
// internal/codegen against a simulated memory hierarchy, collecting the
// hardware performance counters the paper analyzes: retired loads, stores,
// branches, conditional branches, instructions, cycles, and L1 instruction
// cache misses.
package cpu

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/perf"
	"repro/internal/x86"
)

// TrapError is a runtime trap (the wasm-level traps plus machine faults).
type TrapError struct {
	Msg string
	PC  int
}

func (t *TrapError) Error() string { return fmt.Sprintf("cpu trap at %d: %s", t.PC, t.Msg) }

// Cost model in quarter-cycles. The base cost reflects a 4-wide superscalar
// core; memory and branch penalties are amortized effective latencies.
const (
	qBase     = 2
	qLoad     = 1
	qStore    = 1
	qBranch   = 1
	qMul      = 8
	qDiv32    = 80
	qDiv64    = 140
	qFALU     = 4
	qFDiv     = 52
	qFSqrt    = 60
	qCvt      = 8
	qMispred  = 56
	qL1DMiss  = 40
	qL2DMiss  = 120
	qL3DMiss  = 400
	qL1IMiss  = 36
	qL2IMiss  = 110
	qCallHost = 8
)

// Flags is the simulated EFLAGS subset.
type Flags struct {
	ZF, SF, CF, OF, PF bool
}

// HostFunc services OCallHost instructions. Negative ids are engine
// builtins (-1 = memory.grow). Arguments are read from the machine's
// argument registers by the callee; results go in RAX.
type HostFunc func(m *Machine, host int) error

// Machine is one simulated hardware thread executing a Program.
type Machine struct {
	Prog  *x86.Program
	Regs  [16]uint64
	Xmm   [16]uint64
	Flags Flags

	// Memory regions.
	Linear   []byte // wasm linear memory at address 0
	MaxPages uint32
	globals  []byte
	tableMem []byte
	rodata   []byte
	// stack covers [stackLow, StackTop): it grows downward on demand so a
	// fresh machine does not zero the full 8 MiB reservation. Lazily
	// materialized pages read as zero, exactly like the eager allocation.
	stack    []byte
	stackLow uint32
	misc     [64]byte // stack limit + mem pages words

	Counters perf.Counters
	L1I      *Cache
	L1D      *Cache
	L2       *Cache
	// L3 is allocated lazily on the first L2 data miss (its metadata is
	// ~4 MB and short-lived processes often never reach it), so it is nil
	// until then.
	L3 *Cache
	BP *BranchPredictor

	Host HostFunc

	rip       int
	halted    bool
	lastLine  uint32 // legacy engine: line of the last fetch, ^0 after branches
	lastILine uint32 // micro-op engine: line of the last real L1I probe
	lastDLine uint32 // line of the last dcache access (same-line fast path)
	qacc      uint64
	qInstBase uint64 // Instructions value at the last cycle flush

	// Fidelity tier state (see fidelity in exec_sampled.go). noTime is true
	// whenever timing modeling is suppressed: the whole run in the
	// functional tier, the fast-forward segments of the sampled tier. It
	// gates the generic dcache path, branch prediction, and cycle flushing,
	// so the uSlow/legacy fallbacks stay architecturally exact without
	// touching timing structures. stopAt ends the current execution segment
	// when Counters.Instructions reaches it (^0 = no segment boundary, the
	// same always-false-compare trick as pollAt); the run loops return nil
	// with rip preserved, and the tier driver resumes or switches engines.
	// warm enables SMARTS functional warming while noTime is set: loads,
	// stores, and conditional branches still update cache and predictor
	// STATE (tags, LRU order, direction counters) without charging cycles or
	// counting misses, so detailed windows measure warm-structure rates
	// instead of re-paying compulsory misses after every fast-forward gap.
	// Only the sampled tier sets it; the standalone functional tier keeps
	// warming off and touches no timing structures at all.
	fid    Fidelity
	noTime bool
	warm   bool
	stopAt uint64
	// Sampled-tier schedule (instructions) and extrapolation accumulators.
	samplePeriod uint64
	sampleDetail uint64
	sampleWarmup uint64
	smpMeasInsts uint64 // instructions retired inside measured windows
	smpMeas      timing // timing-counter deltas measured inside windows
	smpStamp     uint64 // Instructions at the last extrapolation stamp

	// uops is the pre-decoded micro-op stream (1:1 with Prog.Code), shared
	// across machines running the same program.
	uops []uop

	// interrupt, when installed via SetInterrupt, is polled every pollEvery
	// retired instructions; a non-nil return aborts execution with that
	// error. pollAt is the next Instructions value to poll at (^0 when
	// disabled, so the hot loop pays one always-false compare).
	interrupt func() error
	pollEvery uint64
	pollAt    uint64

	// MaxInstructions bounds execution (0 = unlimited).
	MaxInstructions uint64

	// NoPredecode forces the legacy instruction-at-a-time interpreter
	// instead of the pre-decoded micro-op engine. The two are bit-identical
	// in all counters; the legacy path exists as a differential-testing
	// oracle and debugging aid.
	NoPredecode bool
}

// Region base helpers.
const (
	stackBase = uint32(x86.StackTop - x86.StackSize)
)

// machineMem is the recyclable memory image of one machine: the big buffers
// and the cache/predictor metadata. Buffers in the pool are fully scrubbed
// (zero over their whole length, caches and predictor reset), so a machine
// built from a pooled image is bit-identical to a freshly allocated one —
// only the allocations are saved. This mirrors the kernel's aux-buffer pool:
// the Browsix-SPEC chain spawns three processes per run, and without
// recycling each spawn allocates tens of MB of linear memory, globals,
// table, and stack.
type machineMem struct {
	linear, globals, tableMem, stack []byte
	l1i, l1d, l2, l3                 *Cache
	bp                               *BranchPredictor
}

var memPool = sync.Pool{}

// grow0 resizes b to n bytes, reusing capacity when possible. Any byte the
// caller can observe is zero: the region beyond b's previous length is
// cleared explicitly (pool scrubbing guarantees [0:len(b)] already is).
func grow0(b []byte, n int) []byte {
	if n <= cap(b) {
		old := len(b)
		b = b[:n]
		if n > old {
			clear(b[old:])
		}
		return b
	}
	return make([]byte, n)
}

// NewMachine builds a machine for prog with the given initial linear memory
// pages, drawing the memory image from the recycle pool when one is
// available.
func NewMachine(prog *x86.Program, pages, maxPages uint32) *Machine {
	m := &Machine{
		Prog:     prog,
		MaxPages: maxPages,
		stackLow: uint32(x86.StackTop) - 64*1024,
	}
	if v := memPool.Get(); v != nil {
		mm := v.(*machineMem)
		// A nil buffer was dropped at release for exceeding its retention
		// cap; allocate fresh at this machine's own size.
		m.Linear = grow0(mm.linear, int(pages)*65536)
		m.globals = mm.globals
		m.tableMem = mm.tableMem
		if mm.stack != nil {
			m.stack = mm.stack[:64*1024]
		} else {
			m.stack = make([]byte, 64*1024)
		}
		m.L1I, m.L1D, m.L2, m.L3 = mm.l1i, mm.l1d, mm.l2, mm.l3
		m.BP = mm.bp
	} else {
		m.Linear = make([]byte, int(pages)*65536)
		m.globals = make([]byte, 64*1024)
		m.tableMem = make([]byte, 256*1024)
		m.stack = make([]byte, 64*1024)
		m.L1I = NewCache(32*1024, 64, 8)
		m.L1D = NewCache(32*1024, 64, 8)
		m.L2 = NewCache(256*1024, 64, 8)
		m.BP = NewBranchPredictor(4096)
	}
	// L3 metadata is ~4 MB; it is only reachable through L2 misses, and
	// short-lived processes (the Browsix-SPEC runspec/specinvoke chain)
	// often never miss L2, so it is allocated on first use in dcacheWalk
	// (and then travels with the pooled image).
	m.uops = predecode(prog)
	m.lastDLine = ^uint32(0)
	m.pollAt = ^uint64(0)
	m.stopAt = ^uint64(0)
	m.setMisc()
	m.Regs[x86.RSP] = uint64(x86.StackTop - 64)
	return m
}

// Retention caps for the recycle pool. One outsized workload must not pin
// its high-water memory image for the process lifetime: a buffer whose
// capacity exceeds its cap is dropped on release (the next machine
// allocates fresh at its own size) instead of being pooled. The caps are
// generous multiples of the common workload footprint — eviction is the
// exception, reuse the rule.
const (
	// maxPooledLinear bounds the retained linear-memory image (64 MiB; the
	// suites' workloads run in a few MiB, LinearMax is 1 GiB).
	maxPooledLinear = 64 << 20
	// maxPooledStack bounds the retained materialized stack window (1 MiB;
	// the window starts at 64 KiB and grows only on deep recursion).
	maxPooledStack = 1 << 20
)

// ReleaseMemory scrubs the machine's memory image and returns it to the
// recycle pool. The machine keeps its counters (results outlive processes)
// but loses its memory: it must not execute again. Safe to call more than
// once. Oversized linear/stack buffers (see maxPooledLinear) are dropped
// rather than pooled, so the pool's retained capacity stays bounded.
func (m *Machine) ReleaseMemory() {
	if m.globals == nil {
		return
	}
	clear(m.Linear)
	clear(m.stack)
	clear(m.globals)
	clear(m.tableMem)
	m.L1I.Reset()
	m.L1D.Reset()
	m.L2.Reset()
	if m.L3 != nil {
		m.L3.Reset()
	}
	m.BP.Reset()
	linear, stack := m.Linear, m.stack
	if cap(linear) > maxPooledLinear {
		linear = nil
	}
	if cap(stack) > maxPooledStack {
		stack = nil
	}
	memPool.Put(&machineMem{
		linear: linear, globals: m.globals, tableMem: m.tableMem,
		stack: stack,
		l1i:   m.L1I, l1d: m.L1D, l2: m.L2, l3: m.L3,
		bp: m.BP,
	})
	m.Linear, m.globals, m.tableMem, m.stack, m.rodata = nil, nil, nil, nil, nil
	m.L1I, m.L1D, m.L2, m.L3, m.BP = nil, nil, nil, nil, nil
	m.uops = nil
}

// SetInterrupt installs fn to be polled every `every` retired instructions
// (both execution engines). A non-nil return from fn aborts the run with
// that error — this is how the scheduler's context cancellation preempts
// in-flight simulations instead of only queued ones. Polling never touches
// counters or cycles, so an uninterrupted run is bit-identical with or
// without an interrupt installed. A nil fn (or zero interval) disables
// polling.
func (m *Machine) SetInterrupt(every uint64, fn func() error) {
	if fn == nil || every == 0 {
		m.interrupt = nil
		m.pollEvery = 0
		m.pollAt = ^uint64(0)
		return
	}
	m.interrupt = fn
	m.pollEvery = every
	m.pollAt = m.Counters.Instructions + every
}

func (m *Machine) setMisc() {
	// Stack limit: leave 64 KiB of headroom like the engines do.
	binary.LittleEndian.PutUint64(m.misc[0:], uint64(stackBase)+64*1024)
	binary.LittleEndian.PutUint32(m.misc[8:], uint32(len(m.Linear)/65536))
}

// SetRodata installs the constant pool.
func (m *Machine) SetRodata(b []byte) { m.rodata = append([]byte(nil), b...) }

// SetTableEntry writes an indirect-call table slot: sig id and entry
// (instruction index).
func (m *Machine) SetTableEntry(slot int, sig int64, entry int64) {
	off := slot * x86.TableEntrySize
	binary.LittleEndian.PutUint64(m.tableMem[off:], uint64(sig))
	binary.LittleEndian.PutUint64(m.tableMem[off+8:], uint64(entry))
}

// SetGlobal writes the 8-byte global slot idx.
func (m *Machine) SetGlobal(idx int, v uint64) {
	binary.LittleEndian.PutUint64(m.globals[idx*8:], v)
}

// Global reads global slot idx.
func (m *Machine) Global(idx int) uint64 {
	return binary.LittleEndian.Uint64(m.globals[idx*8:])
}

// GrowLinear adds delta pages, returning the old page count or -1. Growth
// reuses spare capacity from the recycle pool when available, zeroing only
// the newly exposed region.
func (m *Machine) GrowLinear(delta uint32) int32 {
	old := uint32(len(m.Linear) / 65536)
	if uint64(old)+uint64(delta) > uint64(m.MaxPages) {
		return -1
	}
	oldLen := len(m.Linear)
	need := oldLen + int(delta)*65536
	if need <= cap(m.Linear) {
		m.Linear = m.Linear[:need]
		clear(m.Linear[oldLen:])
	} else {
		nb := make([]byte, need)
		copy(nb, m.Linear)
		m.Linear = nb
	}
	m.setMisc()
	return int32(old)
}

// AddCycles charges host-side work (the Browsix syscall shim) to the
// simulated clock, in quarter-cycles. While timing is suppressed
// (functional tier, sampled fast-forward) the charge is dropped: the
// functional tier's contract is zero timing counters, and the sampled
// tier's window extrapolation already scales up the host charges it
// observes inside measured windows.
func (m *Machine) AddCycles(q uint64) {
	if m.noTime {
		return
	}
	m.Counters.Cycles += q / 4
}

// fastSlab resolves the two hot regions — linear memory and the machine
// stack — and is small enough to inline; ok=false routes everything else
// (globals, tables, rodata, misc, faults, unmaterialized stack) to the
// generic path.
func (m *Machine) fastSlab(addr uint32, size uint32) ([]byte, uint32, bool) {
	if int(addr)+int(size) <= len(m.Linear) {
		return m.Linear, addr, true
	}
	// The end-of-range compare is done in uint64: addr+size would wrap for
	// wild guest pointers near 4 GiB and alias into the stack window.
	if addr >= m.stackLow && uint64(addr)+uint64(size) <= uint64(x86.StackTop) {
		return m.stack, addr - m.stackLow, true
	}
	return nil, 0, false
}

// slab resolves an address to a memory region.
func (m *Machine) slab(addr uint32, size uint32) ([]byte, uint32, bool) {
	if s, off, ok := m.fastSlab(addr, size); ok {
		return s, off, true
	}
	return m.slabSlow(addr, size)
}

// slabSlow resolves addresses outside linear memory (stack, globals,
// tables, rodata, misc words).
func (m *Machine) slabSlow(addr uint32, size uint32) ([]byte, uint32, bool) {
	switch {
	case addr >= stackBase && uint64(addr)+uint64(size) <= uint64(x86.StackTop):
		// Below the materialized window (fastSlab handles the rest of the
		// stack range): extend it downward first.
		if addr < m.stackLow {
			m.growStack(addr)
		}
		return m.stack, addr - m.stackLow, true
	case addr >= uint32(x86.GlobalsBase) && int(addr-uint32(x86.GlobalsBase))+int(size) <= len(m.globals):
		return m.globals, addr - uint32(x86.GlobalsBase), true
	case addr >= uint32(x86.TableBase) && int(addr-uint32(x86.TableBase))+int(size) <= len(m.tableMem):
		return m.tableMem, addr - uint32(x86.TableBase), true
	case addr >= uint32(x86.StackLimitAddr) && int(addr-uint32(x86.StackLimitAddr))+int(size) <= len(m.misc):
		return m.misc[:], addr - uint32(x86.StackLimitAddr), true
	case addr >= uint32(x86.RodataBase) && int(addr-uint32(x86.RodataBase))+int(size) <= len(m.rodata):
		return m.rodata, addr - uint32(x86.RodataBase), true
	}
	return nil, 0, false
}

func (m *Machine) load(addr uint32, w uint8) (uint64, error) {
	s, off, ok := m.slab(addr, uint32(w))
	if !ok {
		return 0, &TrapError{Msg: fmt.Sprintf("out-of-bounds load at %#x", addr), PC: m.rip}
	}
	m.Counters.Loads++
	m.dcache(addr)
	switch w {
	case 1:
		return uint64(s[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(s[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(s[off:])), nil
	}
	return binary.LittleEndian.Uint64(s[off:]), nil
}

func (m *Machine) store(addr uint32, w uint8, v uint64) error {
	s, off, ok := m.slab(addr, uint32(w))
	if !ok {
		return &TrapError{Msg: fmt.Sprintf("out-of-bounds store at %#x", addr), PC: m.rip}
	}
	m.Counters.Stores++
	m.dcache(addr)
	switch w {
	case 1:
		s[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(s[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(s[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(s[off:], v)
	}
	return nil
}

// growStack extends the materialized stack window down to cover addr,
// doubling to amortize the copy of the already-live top portion. A pooled
// buffer with enough spare capacity is grown in place: the live top of the
// window shifts to the end (memmove semantics) and the vacated prefix is
// zeroed, which is exactly the state a freshly allocated window would have.
func (m *Machine) growStack(addr uint32) {
	size := uint32(len(m.stack))
	for uint32(x86.StackTop)-size > addr {
		size *= 2
	}
	if size > uint32(x86.StackSize) {
		size = uint32(x86.StackSize)
	}
	old := uint32(len(m.stack))
	if int(size) <= cap(m.stack) {
		ns := m.stack[:size]
		copy(ns[size-old:], ns[:old])
		// The window at least doubled, so the vacated prefix covers every
		// byte the old window occupied; beyond old, pool scrubbing keeps
		// spare capacity zero.
		clear(ns[:size-old])
		m.stack = ns
	} else {
		ns := make([]byte, size)
		copy(ns[size-old:], m.stack)
		m.stack = ns
	}
	m.stackLow = uint32(x86.StackTop) - size
}

// dcache walks the data-cache hierarchy for addr and charges cycles. A
// repeat access to the immediately preceding line is known to hit L1D (the
// previous access either hit or installed the line, and nothing else can
// evict it in between), so the common stack/struct locality case charges
// the hit cost without an associative probe. LRU state is unaffected:
// dropping consecutive duplicate touches of one line never changes the
// relative last-use order of any two lines in a set.
func (m *Machine) dcache(addr uint32) {
	if m.noTime {
		// Functional fidelity: no data-cache timing. This gate covers every
		// generic load/store (including the uSlow/legacy fallback paths);
		// the exact engine's inlined fast paths call dcacheWalk directly and
		// are never reached while noTime is set. Under sampled fast-forward
		// the access still warms cache state.
		if m.warm {
			m.dwarm(addr)
		}
		return
	}
	if addr>>6 == m.lastDLine {
		m.qacc += qLoad
		return
	}
	m.dcacheWalk(addr)
}

// dcacheWalk probes L1D/L2/L3 in order, charging the first level that hits.
// The L1D way-predicted probe is hand-inlined (this is the hottest cache
// path in the simulator); L2/L3 stay behind calls on the miss path.
func (m *Machine) dcacheWalk(addr uint32) {
	m.lastDLine = addr >> 6
	c := m.L1D
	c.Accesses++
	c.tick++
	lineAddr := uint64(addr >> c.lineBits)
	set := uint32(lineAddr) & c.setMask
	// The &(len-1) is purely a bounds-check-elimination hint: mru entries
	// are always in range and line counts are powers of two, so the mask is
	// a no-op that lets the compiler drop the slice bounds check.
	if l := &c.lines[c.mru[set]&uint32(len(c.lines)-1)]; l.tag == lineAddr && l.used != 0 {
		l.used = c.tick
		m.qacc += qLoad
		return
	}
	if c.accessSlow(lineAddr, set) {
		m.qacc += qLoad
		return
	}
	m.Counters.L1DMisses++
	if m.L2.Access(addr) {
		m.q(qL1DMiss)
		return
	}
	m.Counters.L2Misses++
	if m.L3 == nil {
		m.L3 = NewCache(15*1024*1024, 64, 16)
	}
	if m.L3.Access(addr) {
		m.q(qL2DMiss)
		return
	}
	m.q(qL3DMiss)
}

// dwarm walks the data-cache hierarchy for addr during sampled
// fast-forward: tags, LRU order, AND miss counters move exactly as
// dcache/dcacheWalk would move them — only the cycle charges are omitted.
// Because the warmed access stream is identical to the one the exact
// engine would issue, the data-cache miss counters stay exact (not
// extrapolated) across fast-forward gaps; per SMARTS, the caches and
// branch predictor are simulated always-on and only cycle timing is
// sampled.
func (m *Machine) dwarm(addr uint32) {
	if addr>>6 == m.lastDLine {
		return
	}
	m.lastDLine = addr >> 6
	if m.L1D.Access(addr) {
		return
	}
	m.Counters.L1DMisses++
	if m.L2.Access(addr) {
		return
	}
	m.Counters.L2Misses++
	if m.L3 == nil {
		m.L3 = NewCache(15*1024*1024, 64, 16)
	}
	m.L3.Access(addr)
}

// icache fetches the instruction at addr.
func (m *Machine) icache(addr uint32) {
	line := addr >> 6
	if line == m.lastLine {
		return
	}
	m.lastLine = line
	if m.L1I.Access(addr) {
		return
	}
	m.Counters.L1IMisses++
	if m.L2.Access(addr) {
		m.q(qL1IMiss)
		return
	}
	m.q(qL2IMiss)
}

// q charges quarter-cycles; they are folded into Counters.Cycles lazily.
func (m *Machine) q(n uint64) { m.qacc += n }

// FlushCycles folds accumulated quarter-cycles into the cycle counter. The
// per-instruction base cost is not charged in the fetch loop at all: every
// instruction costs exactly qBase, so it is reconstructed here from the
// retired-instruction count since the previous flush. While timing is
// suppressed (functional tier, sampled fast-forward) the flush is a
// discard-and-rebase instead: stray quarter-cycle charges from shared
// helpers (imul/div/fp costs) are dropped and the qBase reconstruction is
// re-based, so functional instructions never turn into cycles (AddCycles
// host charges are likewise dropped while noTime is set).
func (m *Machine) FlushCycles() {
	if m.noTime {
		m.qacc = 0
		m.qInstBase = m.Counters.Instructions
		return
	}
	m.qacc += (m.Counters.Instructions - m.qInstBase) * qBase
	m.qInstBase = m.Counters.Instructions
	m.Counters.Cycles += m.qacc / 4
	m.qacc %= 4
}

// ea computes the effective address of a memory operand. Base-less operands
// zero-extend the displacement (the engine's absolute structures live above
// 2 GiB).
func (m *Machine) ea(mem *x86.Mem) uint32 {
	var a uint64
	if mem.Base != x86.NoReg {
		a = m.Regs[mem.Base] + uint64(int64(mem.Disp))
	} else {
		a = uint64(uint32(mem.Disp))
	}
	if mem.Index != x86.NoReg {
		a += m.Regs[mem.Index] * uint64(mem.Scale)
	}
	return uint32(a)
}

func (m *Machine) readOperand(o *x86.Operand, w uint8) (uint64, error) {
	switch o.Kind {
	case x86.KReg:
		if o.Reg.IsXMM() {
			return m.Xmm[o.Reg-x86.XMM0], nil
		}
		v := m.Regs[o.Reg]
		if w == 4 {
			v = uint64(uint32(v))
		}
		return v, nil
	case x86.KImm:
		return uint64(o.Imm), nil
	case x86.KMem:
		return m.load(m.ea(&o.Mem), w)
	}
	return 0, &TrapError{Msg: "bad operand", PC: m.rip}
}

func (m *Machine) writeGP(r x86.Reg, w uint8, v uint64) {
	if w == 4 {
		v = uint64(uint32(v))
	}
	m.Regs[r] = v
}

// cc evaluates a condition code against the flags.
func (m *Machine) cc(c x86.CC) bool {
	f := &m.Flags
	switch c {
	case x86.CCE:
		return f.ZF
	case x86.CCNE:
		return !f.ZF
	case x86.CCL:
		return f.SF != f.OF
	case x86.CCLE:
		return f.ZF || f.SF != f.OF
	case x86.CCG:
		return !f.ZF && f.SF == f.OF
	case x86.CCGE:
		return f.SF == f.OF
	case x86.CCB:
		return f.CF
	case x86.CCBE:
		return f.CF || f.ZF
	case x86.CCA:
		return !f.CF && !f.ZF
	case x86.CCAE:
		return !f.CF
	case x86.CCS:
		return f.SF
	case x86.CCNS:
		return !f.SF
	case x86.CCP:
		return f.PF
	case x86.CCNP:
		return !f.PF
	}
	return false
}

func (m *Machine) setCmpFlags(a, b uint64, w uint8) {
	var r uint64
	if w == 4 {
		a32, b32 := uint32(a), uint32(b)
		r32 := a32 - b32
		m.Flags.ZF = r32 == 0
		m.Flags.SF = int32(r32) < 0
		m.Flags.CF = a32 < b32
		m.Flags.OF = (int32(a32) < 0) != (int32(b32) < 0) && (int32(r32) < 0) != (int32(a32) < 0)
		m.Flags.PF = false
		return
	}
	r = a - b
	m.Flags.ZF = r == 0
	m.Flags.SF = int64(r) < 0
	m.Flags.CF = a < b
	m.Flags.OF = (int64(a) < 0) != (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0)
	m.Flags.PF = false
}

func (m *Machine) setTestFlags(a, b uint64, w uint8) {
	r := a & b
	if w == 4 {
		r = uint64(uint32(r))
		m.Flags.SF = int32(uint32(r)) < 0
	} else {
		m.Flags.SF = int64(r) < 0
	}
	m.Flags.ZF = r == 0
	m.Flags.CF = false
	m.Flags.OF = false
	m.Flags.PF = false
}

// f64of interprets xmm bits at width w as a float64.
func f64of(bits uint64, w uint8) float64 {
	if w == 4 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

// Canonical quiet-NaN bit patterns. Wasm leaves NaN payload bits
// nondeterministic, and Go inherits whatever the hardware happens to
// propagate — which can differ between two compilations of the same
// a+b expression. Any NaN that escapes into the integer domain (stored to
// memory, reinterpreted) would then diverge between engines, so every
// arithmetic result is canonicalized to one fixed pattern. The reference
// interpreter applies the same rule; abs/neg stay raw in both because they
// compile to pure sign-bit operations.
const (
	canonNaN64 = uint64(0x7ff8000000000000)
	canonNaN32 = uint64(0x7fc00000)
)

// bitsOf converts a float64 back to xmm bits at width w, canonicalizing
// NaN payloads.
func bitsOf(v float64, w uint8) uint64 {
	if v != v {
		if w == 4 {
			return canonNaN32
		}
		return canonNaN64
	}
	if w == 4 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// cvtSD2SS demotes f64 bits to f32 bits (cvtsd2ss), canonicalizing NaN.
func cvtSD2SS(bits uint64) uint64 {
	f := float32(math.Float64frombits(bits))
	if f != f {
		return canonNaN32
	}
	return uint64(math.Float32bits(f))
}

// cvtSS2SD promotes f32 bits to f64 bits (cvtss2sd), canonicalizing NaN.
func cvtSS2SD(bits uint64) uint64 {
	f := float64(math.Float32frombits(uint32(bits)))
	if f != f {
		return canonNaN64
	}
	return math.Float64bits(f)
}
