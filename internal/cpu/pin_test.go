package cpu

// Pinning tests for the memory-hierarchy and branch-predictor models. These
// lock down the exact observable behavior (hit/miss sequences, eviction
// decisions, counter values, cycle charges) so that engine rewrites can be
// checked for bit-identity at the unit level, not only by the slow
// differential suites.

import (
	"testing"

	"repro/internal/x86"
)

// TestLRUEvictionSequence pins the per-access hit/miss outcomes of a 2-way
// set under LRU, including the eviction order after recency updates.
func TestLRUEvictionSequence(t *testing.T) {
	c := NewCache(1024, 64, 2) // 8 sets; addresses 0, 1024, 2048... share set 0
	seq := []struct {
		addr uint32
		hit  bool
	}{
		{0, false},    // cold miss, A resident
		{1024, false}, // cold miss, B resident
		{0, true},     // A hit; recency now B < A
		{2048, false}, // C evicts LRU = B
		{0, true},     // A survived
		{1024, false}, // B was evicted; reinsert evicts LRU = C
		{2048, false}, // C was evicted by B's reinsertion
		{0, false},    // A was evicted by C's reinsertion (LRU after B touch)
	}
	for i, s := range seq {
		if got := c.Access(s.addr); got != s.hit {
			t.Fatalf("access %d (addr %d): got hit=%v, want %v", i, s.addr, got, s.hit)
		}
	}
	if c.Accesses != 8 || c.Misses != 6 {
		t.Errorf("accesses=%d misses=%d, want 8/6", c.Accesses, c.Misses)
	}
}

// TestCacheSameLineHits pins that all addresses within one 64-byte line hit
// after the line is resident.
func TestCacheSameLineHits(t *testing.T) {
	c := NewCache(32*1024, 64, 8)
	if c.Access(640) {
		t.Fatal("cold access should miss")
	}
	for off := uint32(0); off < 64; off++ {
		if !c.Access(640 - 640%64 + off) {
			t.Fatalf("offset %d within resident line should hit", off)
		}
	}
}

// TestCacheAssociativityFill pins that a W-way set holds exactly W distinct
// conflicting lines before evictions begin.
func TestCacheAssociativityFill(t *testing.T) {
	c := NewCache(32*1024, 64, 8) // 64 sets; stride 4096 conflicts in set 0
	for i := uint32(0); i < 8; i++ {
		if c.Access(i * 4096) {
			t.Fatalf("fill access %d should miss", i)
		}
	}
	for i := uint32(0); i < 8; i++ {
		if !c.Access(i * 4096) {
			t.Fatalf("all 8 ways should be resident, lost way %d", i)
		}
	}
	// The 9th line evicts exactly one way (the LRU, which is line 0 after
	// the in-order re-touch above).
	if c.Access(8 * 4096) {
		t.Fatal("9th conflicting line should miss")
	}
	if c.Access(0) {
		t.Fatal("line 0 should have been the LRU victim")
	}
	if !c.Access(2 * 4096) {
		t.Fatal("line 2 should still be resident")
	}
}

// TestDcacheHierarchySequence pins the L1D/L2/L3 walk: which level services
// each access, the per-level miss counters, and the quarter-cycle charges.
func TestDcacheHierarchySequence(t *testing.T) {
	m := NewMachine(x86.NewProgram(), 1, 1)
	type step struct {
		addr                 uint32
		l1dMiss, l2Miss, qor uint64 // counter deltas and q charge
	}
	steps := []step{
		{0, 1, 1, qL3DMiss},    // cold: misses everywhere
		{0, 0, 0, qLoad},       // L1D hit
		{32, 0, 0, qLoad},      // same line
		{4096, 1, 1, qL3DMiss}, // new line, conflicting L1D set, cold L2/L3
		{8192, 1, 1, qL3DMiss},
	}
	for i, s := range steps {
		base := m.Counters
		m.qacc = 0
		m.dcache(s.addr)
		if d := m.Counters.L1DMisses - base.L1DMisses; d != s.l1dMiss {
			t.Errorf("step %d (addr %d): L1D miss delta %d, want %d", i, s.addr, d, s.l1dMiss)
		}
		if d := m.Counters.L2Misses - base.L2Misses; d != s.l2Miss {
			t.Errorf("step %d (addr %d): L2 miss delta %d, want %d", i, s.addr, d, s.l2Miss)
		}
		if m.qacc != s.qor {
			t.Errorf("step %d (addr %d): charged %d quarter-cycles, want %d", i, s.addr, m.qacc, s.qor)
		}
	}
	// Fill the rest of L1D set 0 (64 sets, 8 ways; stride 4096).
	for i := uint32(3); i < 8; i++ {
		m.dcache(i * 4096)
	}
	// The 9th conflicting line evicts line 0 (the LRU) from L1D, but L2
	// (512 sets) still holds it: the re-access is an L1D miss serviced by
	// L2 at the qL1DMiss charge.
	m.dcache(8 * 4096)
	m.qacc = 0
	m.Counters.L1DMisses, m.Counters.L2Misses = 0, 0
	m.dcache(0)
	if m.Counters.L1DMisses != 1 || m.Counters.L2Misses != 0 {
		t.Errorf("evicted line reload: L1D misses=%d L2 misses=%d, want 1/0",
			m.Counters.L1DMisses, m.Counters.L2Misses)
	}
	if m.qacc != qL1DMiss {
		t.Errorf("evicted line reload charged %d quarter-cycles, want %d", m.qacc, qL1DMiss)
	}
}

// TestIcacheMemo pins the icache fast path: consecutive fetches from one
// line probe the cache once, and a taken branch forces a re-probe.
func TestIcacheMemo(t *testing.T) {
	m := NewMachine(x86.NewProgram(), 1, 1)
	m.icache(0x1000)
	if m.Counters.L1IMisses != 1 {
		t.Fatalf("cold fetch: L1I misses=%d, want 1", m.Counters.L1IMisses)
	}
	probes := m.L1I.Accesses
	m.icache(0x1004)
	m.icache(0x103f)
	if m.L1I.Accesses != probes {
		t.Error("same-line fetches must not probe the L1I")
	}
	m.icache(0x1040)
	if m.L1I.Accesses != probes+1 || m.Counters.L1IMisses != 2 {
		t.Error("next line must probe and miss")
	}
	// Simulate a taken branch back into the first line: the memo is
	// invalidated, the probe happens, and it hits this time.
	m.lastLine = ^uint32(0)
	m.icache(0x1000)
	if m.L1I.Accesses != probes+2 {
		t.Error("post-branch fetch must re-probe")
	}
	if m.Counters.L1IMisses != 2 {
		t.Error("post-branch fetch of a resident line must hit")
	}
}

// TestBranchPredictorTransitions pins the 2-bit saturating counter state
// machine: predictions and counter movement from the cold state.
func TestBranchPredictorTransitions(t *testing.T) {
	p := NewBranchPredictor(64)
	seq := []struct {
		taken   bool
		correct bool
	}{
		{true, false},  // ctr 0: predict not-taken, actual taken -> 1
		{true, false},  // ctr 1: predict not-taken -> 2
		{true, true},   // ctr 2: predict taken -> 3
		{true, true},   // ctr 3: saturated
		{false, false}, // ctr 3: predict taken, actual not -> 2
		{true, true},   // ctr 2: predict taken -> 3 (hysteresis survives one miss)
		{false, false}, // 3 -> 2
		{false, false}, // ctr 2 still predicts taken: miss -> 1
		{false, true},  // ctr 1: predict not-taken -> 0
	}
	for i, s := range seq {
		if got := p.Predict(0x40, s.taken); got != s.correct {
			t.Fatalf("branch %d (taken=%v): predicted-correct=%v, want %v", i, s.taken, got, s.correct)
		}
	}
	if p.Total != 9 || p.Misses != 5 {
		t.Errorf("total=%d misses=%d, want 9/5", p.Total, p.Misses)
	}
}

// TestWildPointerTraps pins that accesses near the top of the 4 GiB
// address space fault cleanly instead of wrapping into the stack window
// and panicking the host.
func TestWildPointerTraps(t *testing.T) {
	m := NewMachine(x86.NewProgram(), 1, 1)
	for _, addr := range []uint32{0xFFFFFFFC, 0xFFFFFFFF, uint32(x86.StackTop) - 4} {
		if _, err := m.load(addr, 8); err == nil {
			t.Errorf("8-byte load at %#x should trap", addr)
		}
		if err := m.store(addr, 8, 1); err == nil {
			t.Errorf("8-byte store at %#x should trap", addr)
		}
	}
	// A straddling 8-byte access just below StackTop faults; an aligned one
	// inside the window succeeds.
	if _, err := m.load(uint32(x86.StackTop)-8, 8); err != nil {
		t.Errorf("in-window load should succeed: %v", err)
	}
}

// TestBranchPredictorAliasing pins the table indexing: branches 4 bytes
// apart use different counters; branches table-size*4 apart alias.
func TestBranchPredictorAliasing(t *testing.T) {
	p := NewBranchPredictor(64)
	for i := 0; i < 4; i++ {
		p.Predict(0x100, true)
	}
	if p.Predict(0x104, true) {
		t.Error("adjacent branch has its own cold counter")
	}
	if !p.Predict(0x100+64*4, true) {
		t.Error("aliased branch shares the warmed counter")
	}
}
