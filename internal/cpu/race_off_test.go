//go:build !race

package cpu

// raceEnabled reports whether the race detector is active (see pool_test).
const raceEnabled = false
