package cpu

import (
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 64, 2) // 8 sets, 2 ways
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(32) {
		t.Error("same line should hit")
	}
	// Two distinct tags mapping to set 0 fit in 2 ways.
	c.Access(1024)
	if !c.Access(0) || !c.Access(1024) {
		t.Error("both ways should be resident")
	}
	// A third evicts LRU (addr 0 is more recently used than 1024? order:
	// after the hits above, 1024 is most recent; insert 2048 evicts 0).
	c.Access(2048)
	if c.Access(0) && c.Access(1024) && c.Access(2048) {
		t.Error("one of three tags must have been evicted from a 2-way set")
	}
}

func TestCacheThrashing(t *testing.T) {
	// Cyclic access over a footprint larger than the cache misses every
	// time under LRU — the sjeng i-cache mechanism.
	c := NewCache(1024, 64, 2)
	for round := 0; round < 4; round++ {
		for a := uint32(0); a < 2048; a += 64 {
			c.Access(a)
		}
	}
	missRate := float64(c.Misses) / float64(c.Accesses)
	if missRate < 0.99 {
		t.Errorf("cyclic overflow should thrash: miss rate %.2f", missRate)
	}
}

func TestBranchPredictorLearns(t *testing.T) {
	p := NewBranchPredictor(64)
	for i := 0; i < 100; i++ {
		p.Predict(0x100, true)
	}
	before := p.Misses
	for i := 0; i < 100; i++ {
		p.Predict(0x100, true)
	}
	if p.Misses != before {
		t.Errorf("always-taken branch should be fully predicted after warmup")
	}
}

func TestCacheDeterministicQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		c1 := NewCache(4096, 64, 4)
		c2 := NewCache(4096, 64, 4)
		for _, a := range addrs {
			c1.Access(uint32(a))
		}
		for _, a := range addrs {
			c2.Access(uint32(a))
		}
		return c1.Misses == c2.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
