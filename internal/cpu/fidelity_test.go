package cpu

// Fidelity-tier tests: the functional fast path must be architecturally
// bit-identical to the exact engine (same return value, memory image,
// registers, and architectural counters — with timing counters untouched),
// and the sampled tier must be deterministic and collapse to exact for
// programs that fit inside the first detailed window.

import (
	"testing"

	"repro/internal/perf"
)

// runGoldenFidelity runs the golden program under a tier and returns the
// finished machine for state inspection.
func runGoldenFidelity(t *testing.T, f Fidelity, period, detail, warmup uint64) (uint64, *Machine) {
	t.Helper()
	m := NewMachine(buildGoldenProgram(), 1, 1)
	m.SetFidelity(f, period, detail, warmup)
	ret, err := m.Call(0)
	if err != nil {
		t.Fatalf("golden program trapped under %v: %v", f, err)
	}
	return ret, m
}

// archCounters extracts the architectural (non-timing) counter subset.
func archCounters(c perf.Counters) perf.Counters {
	return perf.Counters{
		Loads:        c.Loads,
		Stores:       c.Stores,
		Branches:     c.Branches,
		CondBranches: c.CondBranches,
		Instructions: c.Instructions,
	}
}

// TestFunctionalMatchesExact demands bit-identical architectural results
// from the functional tier: return value, registers, linear memory, and the
// architectural counters — while all timing counters stay zero.
func TestFunctionalMatchesExact(t *testing.T) {
	retE, me := runGoldenFidelity(t, FidelityExact, 0, 0, 0)
	retF, mf := runGoldenFidelity(t, FidelityFunctional, 0, 0, 0)
	if retE != retF {
		t.Errorf("return values differ: exact %d, functional %d", retE, retF)
	}
	if me.Regs != mf.Regs {
		t.Errorf("integer registers differ:\n exact:      %v\n functional: %v", me.Regs, mf.Regs)
	}
	if me.Xmm != mf.Xmm {
		t.Errorf("xmm registers differ")
	}
	if string(me.Linear) != string(mf.Linear) {
		t.Errorf("linear memory images differ")
	}
	if ae, af := archCounters(me.Counters), archCounters(mf.Counters); ae != af {
		t.Errorf("architectural counters diverged:\n exact:      %v\n functional: %v",
			ae.String(), af.String())
	}
	c := mf.Counters
	if c.Cycles != 0 || c.L1IMisses != 0 || c.L1DMisses != 0 || c.L2Misses != 0 || c.BranchMiss != 0 {
		t.Errorf("functional tier produced timing counts: %v", c.String())
	}
}

// TestFunctionalBudgetTrap pins that the instruction-budget trap fires at
// the same instruction count and PC in both tiers.
func TestFunctionalBudgetTrap(t *testing.T) {
	trap := func(f Fidelity) (uint64, int) {
		m := NewMachine(buildGoldenProgram(), 1, 1)
		m.SetFidelity(f, 0, 0, 0)
		m.MaxInstructions = 100
		_, err := m.Call(0)
		te, ok := err.(*TrapError)
		if !ok {
			t.Fatalf("budget run under %v: got %v, want trap", f, err)
		}
		return m.Counters.Instructions, te.PC
	}
	ie, pce := trap(FidelityExact)
	if_, pcf := trap(FidelityFunctional)
	if ie != if_ || pce != pcf {
		t.Errorf("budget trap diverged: exact insts=%d pc=%d, functional insts=%d pc=%d",
			ie, pce, if_, pcf)
	}
}

// TestSampledShortProgramIsExact pins that a program shorter than the first
// detailed window is bit-identical to exact under the sampled tier — the
// first period has no warm-up and never leaves the exact engine.
func TestSampledShortProgramIsExact(t *testing.T) {
	retE, me := runGoldenFidelity(t, FidelityExact, 0, 0, 0)
	retS, ms := runGoldenFidelity(t, FidelitySampled, 0, 0, 0)
	if retE != retS {
		t.Errorf("return values differ: exact %d, sampled %d", retE, retS)
	}
	if me.Counters != ms.Counters {
		t.Errorf("counters diverged:\n exact:   %v\n sampled: %v",
			me.Counters.String(), ms.Counters.String())
	}
}

// TestSampledDeterminism runs the sampled tier with windows small enough
// that the golden program spans several periods (and so alternates engines)
// and demands identical counters and results across runs.
func TestSampledDeterminism(t *testing.T) {
	const period, detail, warmup = 150, 40, 20
	ret1, m1 := runGoldenFidelity(t, FidelitySampled, period, detail, warmup)
	ret2, m2 := runGoldenFidelity(t, FidelitySampled, period, detail, warmup)
	if ret1 != ret2 {
		t.Errorf("return values differ across runs: %d vs %d", ret1, ret2)
	}
	if m1.Counters != m2.Counters {
		t.Errorf("sampled counters nondeterministic:\n run1: %v\n run2: %v",
			m1.Counters.String(), m2.Counters.String())
	}
	// Architectural counters must still equal exact's, whatever the windows.
	_, me := runGoldenFidelity(t, FidelityExact, 0, 0, 0)
	if ae, as := archCounters(me.Counters), archCounters(m1.Counters); ae != as {
		t.Errorf("sampled architectural counters diverged from exact:\n exact:   %v\n sampled: %v",
			ae.String(), as.String())
	}
	if ret1 != 7109254968427 {
		t.Errorf("sampled run returned %d, want 7109254968427", ret1)
	}
	// The sampled run did model some timing (detailed windows ran).
	if m1.Counters.Cycles == 0 {
		t.Error("sampled tier produced zero cycles; detailed windows never ran")
	}
}
