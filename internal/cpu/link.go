package cpu

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/wasm"
	"repro/internal/x86"
)

// Instance is a loaded CompiledModule ready to run: a Machine whose memory
// image (linear memory, globals, indirect-call table, rodata) has been
// initialized from the module.
type Instance struct {
	*Machine
	CM *codegen.CompiledModule
}

// Load instantiates cm into a fresh machine.
func Load(cm *codegen.CompiledModule) (*Instance, error) {
	pages := cm.MemPages
	maxPages := cm.MemMax
	if maxPages == 0 {
		maxPages = x86.LinearMax / wasm.PageSize
	}
	m := NewMachine(cm.Prog, pages, maxPages)
	m.SetFidelity(cm.Engine.Fidelity, cm.Engine.SamplePeriod, cm.Engine.SampleDetail, cm.Engine.SampleWarmup)
	m.SetRodata(cm.Rodata)

	for i, v := range cm.GlobalInit {
		m.SetGlobal(i, v)
	}
	if cm.Engine.ShadowSP != x86.NoReg && len(cm.GlobalInit) > 0 {
		// The native config keeps wasm global 0 (the Emscripten shadow
		// stack pointer) in a dedicated register.
		m.Regs[cm.Engine.ShadowSP] = cm.GlobalInit[0]
	}
	// Poison every table slot (guard semantics: indirect calls through
	// unset slots leave the code segment and trap), then fill real entries.
	invalid := int64(len(cm.Prog.Code))
	for slot := 0; slot < len(m.tableMem)/x86.TableEntrySize; slot++ {
		m.SetTableEntry(slot, -1, invalid)
	}
	for slot, te := range cm.Table {
		if te.FuncIdx < 0 {
			continue
		}
		m.SetTableEntry(slot, int64(te.SigID), int64(cm.Entries[te.FuncIdx]))
	}
	for _, d := range cm.Data {
		off := int(d.Offset.I64)
		if d.Offset.Op != wasm.OpI32Const {
			return nil, fmt.Errorf("cpu: non-constant data offset")
		}
		if off < 0 || off+len(d.Bytes) > len(m.Linear) {
			return nil, fmt.Errorf("cpu: data segment out of bounds")
		}
		copy(m.Linear[off:], d.Bytes)
	}

	// Builtin host handler for memory.grow wraps any user handler.
	return &Instance{Machine: m, CM: cm}, nil
}

// BindHost installs the host-call handler, routing builtin ids internally.
// fn receives the import index and reads arguments from the machine's
// argument registers per the engine convention.
func (inst *Instance) BindHost(fn func(m *Machine, imp int) error) {
	argReg := inst.CM.Engine.ArgGP[0]
	inst.Machine.Host = func(m *Machine, host int) error {
		if host == -1 { // memory.grow
			delta := uint32(m.Regs[argReg])
			m.Regs[x86.RAX] = uint64(uint32(m.GrowLinear(delta)))
			return nil
		}
		if fn == nil {
			return &TrapError{Msg: fmt.Sprintf("unbound host import %d", host), PC: m.rip}
		}
		return fn(m, host)
	}
}

// Invoke calls the exported function name. Arguments are raw 64-bit values
// (i32 zero-extended, floats as IEEE bits) and are placed in the engine's
// argument registers according to the function's signature.
func (inst *Instance) Invoke(name string, args ...uint64) (uint64, error) {
	fi, ok := inst.CM.FindExport(name)
	if !ok {
		return 0, fmt.Errorf("cpu: no exported function %q", name)
	}
	cfg := inst.CM.Engine
	mod := inst.CM.Module
	ft := mod.Types[mod.Funcs[fi].TypeIdx]
	if len(args) != len(ft.Params) {
		return 0, fmt.Errorf("cpu: %s takes %d args, got %d", name, len(ft.Params), len(args))
	}
	gi, fj := 0, 0
	for i, a := range args {
		if ft.Params[i].IsFloat() {
			if fj >= len(cfg.ArgFP) {
				return 0, fmt.Errorf("cpu: too many float args for register convention")
			}
			inst.Xmm[cfg.ArgFP[fj]-x86.XMM0] = a
			fj++
		} else {
			if gi >= len(cfg.ArgGP) {
				return 0, fmt.Errorf("cpu: too many int args for register convention")
			}
			inst.Regs[cfg.ArgGP[gi]] = a
			gi++
		}
	}
	ret, err := inst.Call(inst.CM.Entries[fi])
	if err != nil {
		return 0, err
	}
	if len(ft.Results) > 0 && ft.Results[0].IsFloat() {
		return inst.Xmm[0], nil
	}
	return ret, nil
}

// ArgRegs returns the engine's integer argument registers (for host shims).
func (inst *Instance) ArgRegs() []x86.Reg { return inst.CM.Engine.ArgGP }
